(* Documentation lint for .mli files and the markdown guides.

   odoc is not part of this repository's toolchain, so `dune build
   @doc` alone cannot prove the interfaces are documented.  This tool
   enforces the contract mechanically: every [.mli] passed on the
   command line must open with a module-level [(** ... *)] header, and
   every top-level [val] must carry a doc comment — either ending on
   the line above the declaration or opening after it, before the next
   top-level declaration.

   Files ending in [.md] get a different check: every relative
   markdown link [text](target) must point at a file that exists next
   to the document (external http/https/mailto links and in-page
   #anchors are skipped, a #fragment suffix is stripped first).  This
   keeps the cross-references between README, ARCHITECTURE, MODELING,
   and EXPERIMENTS from rotting silently.

   Usage: doc_lint.exe FILE...   (exit 1 and a per-item report on any
   undocumented surface or broken link; no output when clean) *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        Array.of_list (List.rev acc)
  in
  go []

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_toplevel_decl line =
  List.exists
    (fun p -> starts_with p line)
    [ "val "; "type "; "module "; "exception "; "external "; "include " ]

let ends_with_comment_close line =
  let t = String.trim line in
  let n = String.length t in
  n >= 2 && String.sub t (n - 2) 2 = "*)"

let contains_doc_open line =
  let rec go i =
    if i + 2 >= String.length line then false
    else if line.[i] = '(' && line.[i + 1] = '*' && line.[i + 2] = '*' then true
    else go (i + 1)
  in
  go 0

(* A val at [i] is documented when the nearest non-blank line above
   ends a comment, or a doc-comment opens between the declaration and
   the next top-level declaration. *)
let val_documented lines i =
  let above =
    let rec go k =
      if k < 0 then false
      else if String.trim lines.(k) = "" then go (k - 1)
      else ends_with_comment_close lines.(k)
    in
    go (i - 1)
  in
  above
  ||
  let n = Array.length lines in
  let rec go k =
    if k >= n then false
    else if k > i && is_toplevel_decl lines.(k) then false
    else if contains_doc_open lines.(k) then true
    else go (k + 1)
  in
  go (i + 1)

let module_header lines =
  let n = Array.length lines in
  let rec go k =
    if k >= n then false
    else if String.trim lines.(k) = "" then go (k + 1)
    else starts_with "(**" (String.trim lines.(k))
  in
  go 0

(* Inline links on one line: every [text](target) pair.  Reference
   definitions and autolinks are not used in this repository's docs,
   so the inline form is the whole surface. *)
let md_link_targets line =
  let n = String.length line in
  let targets = ref [] in
  let rec scan i =
    if i >= n then ()
    else if line.[i] = ']' && i + 1 < n && line.[i + 1] = '(' then begin
      (match String.index_from_opt line (i + 2) ')' with
      | Some close ->
          targets := String.sub line (i + 2) (close - i - 2) :: !targets;
          scan (close + 1)
      | None -> ())
    end
    else scan (i + 1)
  in
  scan 0;
  List.rev !targets

let external_link t =
  starts_with "http://" t || starts_with "https://" t
  || starts_with "mailto:" t
  || starts_with "#" t

let lint_markdown path =
  let lines = read_lines path in
  let dir = Filename.dirname path in
  let problems = ref [] in
  Array.iteri
    (fun i line ->
      List.iter
        (fun target ->
          if not (external_link target) then begin
            let file =
              match String.index_opt target '#' with
              | Some k -> String.sub target 0 k
              | None -> target
            in
            if file <> "" && not (Sys.file_exists (Filename.concat dir file))
            then
              problems :=
                Printf.sprintf "%s:%d: broken link: %s" path (i + 1) target
                :: !problems
          end)
        (md_link_targets line))
    lines;
  List.rev !problems

let lint_mli path =
  let lines = read_lines path in
  let problems = ref [] in
  if not (module_header lines) then
    problems := Printf.sprintf "%s:1: missing module-level (** ... *) header" path :: !problems;
  Array.iteri
    (fun i line ->
      if starts_with "val " line && not (val_documented lines i) then
        problems :=
          Printf.sprintf "%s:%d: undocumented: %s" path (i + 1)
            (String.trim line)
          :: !problems)
    lines;
  List.rev !problems

let lint path =
  if Filename.check_suffix path ".md" then lint_markdown path
  else lint_mli path

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: doc_lint FILE...";
    exit 2
  end;
  let problems = List.concat_map lint files in
  if problems <> [] then begin
    List.iter prerr_endline problems;
    Printf.eprintf "doc_lint: %d problem(s) in %d file(s)\n"
      (List.length problems) (List.length files);
    exit 1
  end
