(* Documentation lint for .mli files.

   odoc is not part of this repository's toolchain, so `dune build
   @doc` alone cannot prove the interfaces are documented.  This tool
   enforces the contract mechanically: every [.mli] passed on the
   command line must open with a module-level [(** ... *)] header, and
   every top-level [val] must carry a doc comment — either ending on
   the line above the declaration or opening after it, before the next
   top-level declaration.

   Usage: doc_lint.exe FILE.mli...   (exit 1 and a per-item report on
   any undocumented surface; no output when clean) *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        Array.of_list (List.rev acc)
  in
  go []

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_toplevel_decl line =
  List.exists
    (fun p -> starts_with p line)
    [ "val "; "type "; "module "; "exception "; "external "; "include " ]

let ends_with_comment_close line =
  let t = String.trim line in
  let n = String.length t in
  n >= 2 && String.sub t (n - 2) 2 = "*)"

let contains_doc_open line =
  let rec go i =
    if i + 2 >= String.length line then false
    else if line.[i] = '(' && line.[i + 1] = '*' && line.[i + 2] = '*' then true
    else go (i + 1)
  in
  go 0

(* A val at [i] is documented when the nearest non-blank line above
   ends a comment, or a doc-comment opens between the declaration and
   the next top-level declaration. *)
let val_documented lines i =
  let above =
    let rec go k =
      if k < 0 then false
      else if String.trim lines.(k) = "" then go (k - 1)
      else ends_with_comment_close lines.(k)
    in
    go (i - 1)
  in
  above
  ||
  let n = Array.length lines in
  let rec go k =
    if k >= n then false
    else if k > i && is_toplevel_decl lines.(k) then false
    else if contains_doc_open lines.(k) then true
    else go (k + 1)
  in
  go (i + 1)

let module_header lines =
  let n = Array.length lines in
  let rec go k =
    if k >= n then false
    else if String.trim lines.(k) = "" then go (k + 1)
    else starts_with "(**" (String.trim lines.(k))
  in
  go 0

let lint path =
  let lines = read_lines path in
  let problems = ref [] in
  if not (module_header lines) then
    problems := Printf.sprintf "%s:1: missing module-level (** ... *) header" path :: !problems;
  Array.iteri
    (fun i line ->
      if starts_with "val " line && not (val_documented lines i) then
        problems :=
          Printf.sprintf "%s:%d: undocumented: %s" path (i + 1)
            (String.trim line)
          :: !problems)
    lines;
  List.rev !problems

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: doc_lint FILE.mli...";
    exit 2
  end;
  let problems = List.concat_map lint files in
  if problems <> [] then begin
    List.iter prerr_endline problems;
    Printf.eprintf "doc_lint: %d undocumented item(s) in %d file(s)\n"
      (List.length problems) (List.length files);
    exit 1
  end
