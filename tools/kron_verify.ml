(* Kron smoke gate: the implicit (lazy Kronecker operator) stationary
   solve and the materialized CSR reference must agree on a deep
   instance — the cross-check behind DESIGN.md decision 13, run at a
   depth (Q = 2000) where the two paths take visibly different routes:
   the CSR sweep grinds through ~3k index-order iterations while the
   implicit path does ~13 flow-ordered sweeps from the product-form
   hint.  Exits nonzero when the distributions disagree beyond 1e-6
   in the infinity norm. *)

open Dpm_core

let tolerance = 1e-6
let capacity = 2000

let () =
  let sys =
    Sys_model.create
      ~sp:(Paper_instance.service_provider ())
      ~queue_capacity:capacity ~arrival_rate:Paper_instance.arrival_rate ()
  in
  let action = Paper_instance.active in
  let sparse =
    let g = Sys_model.generator_of_actions sys ~actions:(fun _ -> action) in
    Dpm_linalg.Iterative.gauss_seidel_steady (Dpm_ctmc.Generator.to_sparse g)
  in
  let implicit =
    Dpm_ctmc.Steady_state.implicit
      ~init:(Sys_model.stationary_hint sys ~action)
      ~order:(Sys_model.sweep_order sys)
      (Sys_model.operator sys ~action)
  in
  if not sparse.Dpm_linalg.Iterative.converged then begin
    prerr_endline "kron-verify: CSR reference solve did not converge";
    exit 1
  end;
  if not implicit.Dpm_linalg.Iterative.converged then begin
    prerr_endline "kron-verify: implicit operator solve did not converge";
    exit 1
  end;
  let diff =
    Dpm_linalg.Vec.norm_inf
      (Dpm_linalg.Vec.sub sparse.Dpm_linalg.Iterative.solution
         implicit.Dpm_linalg.Iterative.solution)
  in
  Printf.printf
    "kron-verify: Q=%d (%d states), |pi_csr - pi_implicit|_inf = %.3g \
     (csr %d sweeps, implicit %d sweeps)\n"
    capacity (Sys_model.num_states sys) diff
    sparse.Dpm_linalg.Iterative.iterations
    implicit.Dpm_linalg.Iterative.iterations;
  if not (diff <= tolerance) then begin
    Printf.eprintf "kron-verify: disagreement %.3g exceeds %.1g\n" diff
      tolerance;
    exit 1
  end
