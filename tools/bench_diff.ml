(* bench_diff: the perf regression gate.

   Usage:
     bench_diff [--threshold FRAC] [--series NAME=FRAC]... BASELINE CANDIDATE

   BASELINE and CANDIDATE are bench metrics documents -- either a bare
   Dpm_obs.Report.to_json dump or the stamped {"meta", "metrics"}
   envelope written by bench/main.exe.  Series are flattened and
   compared by Dpm_trace.Regress: time-like series must not grow,
   rate-like series must not shrink, by more than the threshold
   (default 10%, overridable per series with --series).

   Exit codes: 0 no regressions, 1 at least one regression, 2 usage or
   parse error. *)

let usage () =
  prerr_endline
    "usage: bench_diff [--threshold FRAC] [--series NAME=FRAC]... \
     BASELINE.json CANDIDATE.json";
  exit 2

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg ->
      prerr_endline msg;
      exit 2
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s

let parse_doc path =
  match Dpm_trace.Json.parse (read_file path) with
  | Ok doc -> doc
  | Error msg ->
      Printf.eprintf "bench_diff: %s: %s\n" path msg;
      exit 2

let positive_fraction flag v =
  match float_of_string_opt v with
  | Some t when t > 0.0 && Float.is_finite t -> t
  | _ ->
      Printf.eprintf "bench_diff: %s expects a positive fraction, got %S\n"
        flag v;
      exit 2

let () =
  let threshold = ref 0.10 in
  let overrides = ref [] in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | [ ("--threshold" | "--series") ] -> usage ()
    | "--threshold" :: v :: rest ->
        threshold := positive_fraction "--threshold" v;
        parse rest
    | "--series" :: v :: rest -> (
        match String.index_opt v '=' with
        | Some i ->
            let name = String.sub v 0 i in
            let frac = String.sub v (i + 1) (String.length v - i - 1) in
            overrides := (name, positive_fraction "--series" frac) :: !overrides;
            parse rest
        | None ->
            Printf.eprintf "bench_diff: --series expects NAME=FRAC, got %S\n" v;
            exit 2)
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        Printf.eprintf "bench_diff: unknown option %s\n" arg;
        usage ()
    | arg :: rest ->
        files := arg :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline; candidate ] ->
      let before = Dpm_trace.Regress.extract (parse_doc baseline) in
      let after = Dpm_trace.Regress.extract (parse_doc candidate) in
      let rows =
        Dpm_trace.Regress.compare_series ~threshold:!threshold
          ~overrides:!overrides before after
      in
      print_string (Dpm_trace.Regress.render rows);
      if Dpm_trace.Regress.regressions rows <> [] then exit 1
  | _ -> usage ()
