(* serve_chaos: process-level chaos drill for the serving daemon.

   Usage:  serve_chaos DPM_CLI_EXE

   Two rounds against a real `dpm_cli serve` child process over
   stdin/stdout pipes, sharing one checkpoint file:

   - Round 1 (fault storm): DPM_FAULTS=stall plus a 1 ms watchdog
     budget makes every re-solve fail by deadline.  The drill streams
     arrivals interleaved with decide queries; every query must be
     answered with an action while the daemon degrades.  The round
     ends with SIGKILL mid-run -- no quit, no final checkpoint beyond
     the periodic/explicit ones already taken.

   - Round 2 (recovery): a fresh daemon on the same checkpoint path,
     no faults.  It must report restored=true, answer every query,
     and exit 0 on quit.

   Measured and printed (the bench_metrics.json series of the same
   names are produced in-process by `bench/main.exe serve`):
     throughput        commands per wall-second across both rounds
     p99_latency_us    decide round-trip, 99th percentile
     recovery_ms       respawn to first answered command
     degraded_fraction sim-time not Healthy, from round 1's health line

   Exit 0 when every invariant held; 1 otherwise, with a diagnostic on
   stderr. *)

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "serve_chaos: FAIL %s\n%!" msg)
    fmt

type daemon = {
  pid : int;
  to_child : out_channel;
  from_child : in_channel;
}

let spawn exe ~faults args =
  let stdin_r, stdin_w = Unix.pipe ~cloexec:false () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:false () in
  let env = Array.to_list (Unix.environment ()) in
  let env = List.filter (fun kv -> not (String.length kv >= 11 && String.sub kv 0 11 = "DPM_FAULTS=")) env in
  let env = if faults then "DPM_FAULTS=stall" :: env else env in
  let pid =
    Unix.create_process_env exe
      (Array.of_list (exe :: args))
      (Array.of_list env) stdin_r stdout_w Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  {
    pid;
    to_child = Unix.out_channel_of_descr stdin_w;
    from_child = Unix.in_channel_of_descr stdout_r;
  }

let send d fmt =
  Printf.ksprintf
    (fun line ->
      output_string d.to_child line;
      output_char d.to_child '\n';
      flush d.to_child)
    fmt

let recv d =
  match input_line d.from_child with
  | line -> Some line
  | exception End_of_file -> None

(* One decide round-trip; returns the latency in microseconds. *)
let decide d ~mode ~queue =
  let t0 = Unix.gettimeofday () in
  send d "decide %d %d" mode queue;
  let dt = ref 0.0 in
  (match recv d with
  | Some line when String.length line >= 7 && String.sub line 0 7 = "action " ->
      dt := (Unix.gettimeofday () -. t0) *. 1e6
  | Some line -> fail "decide %d %d answered %S" mode queue line
  | None -> fail "decide %d %d: daemon hung up" mode queue);
  !dt

(* key=value scrape out of a health/stats response line. *)
let field line key =
  let prefix = key ^ "=" in
  List.find_map
    (fun w ->
      let n = String.length prefix in
      if String.length w > n && String.sub w 0 n = prefix then
        Some (String.sub w n (String.length w - n))
      else None)
    (String.split_on_char ' ' line)

let serve_args ~checkpoint ~deadline =
  [ "serve"; "--checkpoint"; checkpoint; "--checkpoint-every"; "16";
    "--cooldown"; "5"; "--min-observations"; "10"; "--weight"; "1" ]
  @ (match deadline with
    | Some d -> [ "--resolve-deadline"; string_of_float d ]
    | None -> [])

let () =
  let exe =
    match Sys.argv with
    | [| _; exe |] -> exe
    | _ ->
        prerr_endline "usage: serve_chaos DPM_CLI_EXE";
        exit 2
  in
  let checkpoint = Filename.temp_file "serve_chaos_ck" ".json" in
  Sys.remove checkpoint;
  let latencies = ref [] in
  let commands = ref 0 in
  let t_start = Unix.gettimeofday () in

  (* --- Round 1: fault storm, killed mid-run ------------------------ *)
  let d = spawn exe ~faults:true (serve_args ~checkpoint ~deadline:(Some 0.001)) in
  for i = 1 to 400 do
    send d "arrival %d" i;
    incr commands;
    if i mod 10 = 0 then begin
      let lat = decide d ~mode:(i / 10 mod 3) ~queue:(i / 30 mod 3) in
      incr commands;
      latencies := lat :: !latencies
    end
  done;
  send d "health";
  incr commands;
  let degraded_fraction =
    match recv d with
    | Some line ->
        (match field line "failures" with
        | Some f when int_of_string_opt f <> None && int_of_string f >= 1 -> ()
        | _ -> fail "no re-solve failures under the fault storm: %S" line);
        if not (String.length line >= 15 && String.sub line 7 8 = "degraded") then
          fail "daemon not degraded under the fault storm: %S" line;
        (match Option.bind (field line "degraded_fraction") float_of_string_opt with
        | Some f when f > 0.0 && f < 1.0 -> f
        | _ ->
            fail "implausible degraded_fraction: %S" line;
            0.0)
    | None ->
        fail "health: daemon hung up";
        0.0
  in
  send d "checkpoint";
  incr commands;
  (match recv d with
  | Some line when String.length line >= 3 && String.sub line 0 3 = "ok " -> ()
  | Some line -> fail "checkpoint refused: %S" line
  | None -> fail "checkpoint: daemon hung up");
  (* kill -9, mid-conversation: no quit, no graceful teardown. *)
  Unix.kill d.pid Sys.sigkill;
  (match Unix.waitpid [] d.pid with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _, status ->
      fail "round 1 daemon ended oddly (%s)"
        (match status with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s));
  close_out_noerr d.to_child;
  close_in_noerr d.from_child;

  (* --- Round 2: recovery from the checkpoint, no faults ------------ *)
  let t_respawn = Unix.gettimeofday () in
  let d = spawn exe ~faults:false (serve_args ~checkpoint ~deadline:None) in
  send d "stats";
  incr commands;
  let recovery_ms =
    match recv d with
    | Some line ->
        let ms = (Unix.gettimeofday () -. t_respawn) *. 1e3 in
        (match field line "restored" with
        | Some "true" -> ()
        | _ -> fail "respawned daemon did not restore: %S" line);
        (match Option.bind (field line "events") int_of_string_opt with
        | Some n when n >= 400 -> ()
        | _ -> fail "restored counters lost the ingestion history: %S" line);
        ms
    | None ->
        fail "stats after respawn: daemon hung up";
        0.0
  in
  for i = 401 to 600 do
    send d "arrival %d" i;
    incr commands;
    if i mod 10 = 0 then begin
      let lat = decide d ~mode:(i / 10 mod 3) ~queue:(i / 30 mod 3) in
      incr commands;
      latencies := lat :: !latencies
    end
  done;
  send d "health";
  incr commands;
  (match recv d with
  | Some line ->
      if not (String.length line >= 14 && String.sub line 7 7 = "healthy") then
        fail "daemon not healthy after fault-free recovery: %S" line
  | None -> fail "health after recovery: daemon hung up");
  send d "quit";
  incr commands;
  (match recv d with
  | Some "bye" -> ()
  | Some line -> fail "quit answered %S" line
  | None -> fail "quit: daemon hung up");
  (match Unix.waitpid [] d.pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> fail "round 2 daemon exited %d" c
  | _, _ -> fail "round 2 daemon killed unexpectedly");
  close_out_noerr d.to_child;
  close_in_noerr d.from_child;
  (try Sys.remove checkpoint with Sys_error _ -> ());

  (* --- Report ------------------------------------------------------ *)
  let wall = Unix.gettimeofday () -. t_start in
  let lats = Array.of_list !latencies in
  Array.sort compare lats;
  let p99 =
    if Array.length lats = 0 then 0.0
    else lats.(min (Array.length lats - 1)
                (int_of_float (0.99 *. float_of_int (Array.length lats))))
  in
  Printf.printf
    "serve_chaos: %d commands in %.3f s (%.0f/s), %d decides answered\n\
     serve_chaos: p99_latency_us=%.1f recovery_ms=%.1f degraded_fraction=%.3f\n\
     serve_chaos: %s\n"
    !commands wall
    (float_of_int !commands /. wall)
    (Array.length lats) p99 recovery_ms degraded_fraction
    (if !failures = 0 then "OK (survived fault storm + kill -9, restored, healthy)"
     else Printf.sprintf "FAILED (%d invariant violations)" !failures);
  exit (if !failures = 0 then 0 else 1)
