(** LU factorization with partial pivoting and related direct solvers.

    Used by the policy-iteration evaluation step (relative value
    equations) and by the dense steady-state solver.  The factorization
    is Doolittle LU with row partial pivoting; singular systems are
    reported through the [Singular] exception, carrying the pivot
    column at which elimination broke down. *)

exception Singular of int
(** Raised when a zero (or numerically negligible) pivot is met; the
    payload is the elimination step. *)

type t
(** A factorization [P A = L U] of a square matrix [A]. *)

val decompose : ?pivot_tol:float -> Matrix.t -> t
(** [decompose a] factorizes the square matrix [a].  Raises
    {!Singular} when a pivot's absolute value falls below
    [pivot_tol] (default [1e-13] scaled by the largest entry of [a]).
    Raises [Invalid_argument] if [a] is not square. *)

val solve_factored : t -> Vec.t -> Vec.t
(** [solve_factored lu b] solves [A x = b] using the factorization. *)

val solve : ?pivot_tol:float -> Matrix.t -> Vec.t -> Vec.t
(** [solve a b] is [solve_factored (decompose a) b]. *)

val solve_many : ?pivot_tol:float -> Matrix.t -> Vec.t list -> Vec.t list
(** [solve_many a bs] solves for several right-hand sides, factoring
    [a] only once. *)

val det : t -> float
(** [det lu] is the determinant of the factored matrix (product of the
    pivots with the permutation sign). *)

val inverse : ?pivot_tol:float -> Matrix.t -> Matrix.t
(** [inverse a] is the matrix inverse computed column by column.
    Raises {!Singular} when [a] is singular. *)

val residual_norm : Matrix.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b] is [norm_inf (a x - b)], a cheap a
    posteriori accuracy check used throughout the test suite. *)
