lib/linalg/expm.ml: Array Float Lu Matrix
