lib/linalg/sparse.ml: Array Format Hashtbl List Matrix Option Printf Vec
