lib/linalg/lu.mli: Matrix Vec
