lib/linalg/matrix.mli: Format Vec
