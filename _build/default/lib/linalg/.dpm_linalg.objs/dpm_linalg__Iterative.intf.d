lib/linalg/iterative.mli: Sparse Vec
