lib/linalg/simplex.mli: Matrix Vec
