lib/linalg/tensor.ml: Matrix Printf Sparse
