lib/linalg/tensor.mli: Matrix Sparse
