lib/linalg/expm.mli: Matrix
