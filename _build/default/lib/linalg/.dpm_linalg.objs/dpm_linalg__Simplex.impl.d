lib/linalg/simplex.ml: Array Float Lu Matrix Vec
