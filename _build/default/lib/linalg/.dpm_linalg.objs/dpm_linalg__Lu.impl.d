lib/linalg/lu.ml: Array Float List Matrix Vec
