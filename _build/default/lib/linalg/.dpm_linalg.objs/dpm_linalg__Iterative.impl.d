lib/linalg/iterative.ml: Array Printf Sparse Vec
