lib/linalg/sparse.mli: Format Matrix Vec
