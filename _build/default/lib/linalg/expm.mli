(** Matrix exponential.

    [e^{tG}] of a generator gives the exact transition-probability
    matrix of a CTMC — an independent cross-check for the
    uniformization-based transient solver (they must agree to solver
    tolerance, and the test suite verifies they do).

    The implementation is the classic scaling-and-squaring method with
    a diagonal Pade(6,6) approximant: scale [A] by [2^-s] so its
    1-norm drops below 0.5, evaluate the Pade approximant, and square
    [s] times. *)

val expm : Matrix.t -> Matrix.t
(** [expm a] is [e^a] for a square matrix.  Raises [Invalid_argument]
    if [a] is not square, [Failure] if the internal linear solve
    breaks down (entries of wildly mixed magnitude can defeat the
    Pade denominator; generators scaled by reasonable times are
    fine). *)

val transition_matrix : Matrix.t -> t:float -> Matrix.t
(** [transition_matrix g ~t] is [e^{tG}] — for a generator [g], the
    matrix of transition probabilities over a window of length [t]. *)
