(** Dense vectors of floats.

    A thin layer over [float array] providing the numerical-kernel
    operations needed by the CTMC/CTMDP solvers: BLAS-1 style
    arithmetic, norms, and a few reductions.  All operations raise
    [Invalid_argument] on dimension mismatch; none of them alias their
    result with an input unless the name says [_inplace]. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val make : int -> float -> t
(** [make n x] is the dimension-[n] vector with every entry [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [[| f 0; ...; f (n-1) |]]. *)

val dim : t -> int
(** [dim v] is the number of entries of [v]. *)

val copy : t -> t
(** [copy v] is a fresh vector equal to [v]. *)

val of_list : float list -> t
(** [of_list xs] converts a list to a vector. *)

val to_list : t -> float list
(** [to_list v] converts a vector to a list. *)

val fill : t -> float -> unit
(** [fill v x] sets every entry of [v] to [x]. *)

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] copies [src] into [dst]. *)

val map : (float -> float) -> t -> t
(** [map f v] applies [f] entrywise. *)

val mapi : (int -> float -> float) -> t -> t
(** [mapi f v] applies [f] entrywise with the index. *)

val map2 : (float -> float -> float) -> t -> t -> t
(** [map2 f u v] combines [u] and [v] entrywise. *)

val add : t -> t -> t
(** [add u v] is the entrywise sum. *)

val sub : t -> t -> t
(** [sub u v] is the entrywise difference. *)

val scale : float -> t -> t
(** [scale a v] is [a * v]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float
(** [dot u v] is the inner product. *)

val sum : t -> float
(** [sum v] is the sum of all entries. *)

val norm_inf : t -> float
(** [norm_inf v] is the maximum absolute entry. *)

val norm1 : t -> float
(** [norm1 v] is the sum of absolute entries. *)

val norm2 : t -> float
(** [norm2 v] is the Euclidean norm. *)

val span : t -> float
(** [span v] is [max v - min v], the span seminorm used as the
    stopping criterion of relative value iteration. *)

val max_index : t -> int
(** [max_index v] is the index of the largest entry (first on ties).
    Raises [Invalid_argument] on the empty vector. *)

val min_index : t -> int
(** [min_index v] is the index of the smallest entry (first on ties).
    Raises [Invalid_argument] on the empty vector. *)

val normalize1 : t -> t
(** [normalize1 v] rescales [v] so its entries sum to 1.  Raises
    [Invalid_argument] if the entry sum is zero (or not finite). *)

val approx_equal : ?tol:float -> t -> t -> bool
(** [approx_equal ~tol u v] is true when [u] and [v] have the same
    dimension and agree entrywise within absolute tolerance [tol]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer, e.g. [[0.25; 0.75]]. *)
