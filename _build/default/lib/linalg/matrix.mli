(** Dense, row-major matrices of floats.

    This is the workhorse representation for the small-to-medium
    generator matrices of the paper's system model (a few tens to a few
    hundreds of states).  Larger state spaces use {!Sparse}.

    Entries are stored in a single flat [float array]; [get]/[set] are
    bounds-checked through the array primitives.  All binary operations
    raise [Invalid_argument] on dimension mismatch. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix of shape [rows x cols]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at row [i], column [j]. *)

val identity : int -> t
(** [identity n] is the [n x n] identity matrix. *)

val diag : Vec.t -> t
(** [diag v] is the square matrix with [v] on the diagonal. *)

val of_arrays : float array array -> t
(** [of_arrays rows] builds a matrix from an array of equal-length
    rows.  Raises [Invalid_argument] if rows are ragged or empty. *)

val to_arrays : t -> float array array
(** [to_arrays m] is the inverse of {!of_arrays}. *)

val rows : t -> int
(** Number of rows. *)

val cols : t -> int
(** Number of columns. *)

val get : t -> int -> int -> float
(** [get m i j] is entry [(i, j)]. *)

val set : t -> int -> int -> float -> unit
(** [set m i j x] stores [x] at entry [(i, j)]. *)

val update : t -> int -> int -> (float -> float) -> unit
(** [update m i j f] replaces entry [(i, j)] by [f] of itself. *)

val copy : t -> t
(** [copy m] is a fresh matrix equal to [m]. *)

val row : t -> int -> Vec.t
(** [row m i] is a fresh copy of row [i]. *)

val col : t -> int -> Vec.t
(** [col m j] is a fresh copy of column [j]. *)

val set_row : t -> int -> Vec.t -> unit
(** [set_row m i v] overwrites row [i] with [v]. *)

val transpose : t -> t
(** [transpose m] is the transposed matrix. *)

val map : (float -> float) -> t -> t
(** [map f m] applies [f] entrywise. *)

val mapi : (int -> int -> float -> float) -> t -> t
(** [mapi f m] applies [f i j] entrywise. *)

val add : t -> t -> t
(** Entrywise sum. *)

val sub : t -> t -> t
(** Entrywise difference. *)

val scale : float -> t -> t
(** [scale a m] multiplies every entry by [a]. *)

val mul : t -> t -> t
(** [mul a b] is the matrix product [a * b]. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec m v] is the matrix-vector product [m v]. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul v m] is the row-vector product [v m] (used for the
    steady-state equation [p G = 0]). *)

val iter_row : (int -> float -> unit) -> t -> int -> unit
(** [iter_row f m i] applies [f j x] to every entry [x] of row [i],
    including zeros. *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
(** [fold f acc m] folds over all entries in row-major order. *)

val row_sums : t -> Vec.t
(** [row_sums m] is the vector of row sums. *)

val max_abs : t -> float
(** [max_abs m] is the largest absolute entry (0 for empty matrices). *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison within absolute tolerance [tol]
    (default [1e-9]); false on shape mismatch. *)

val pp : Format.formatter -> t -> unit
(** Multi-line pretty-printer with aligned [%g] entries. *)
