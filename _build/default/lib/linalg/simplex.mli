(** Linear programming: dense two-phase primal simplex.

    Built to reproduce the paper's efficiency claim against the linear
    programming formulation of policy optimization used by the
    DAC'98 baseline [11] (see {!Dpm_ctmdp.Lp_solver}); the problems
    there are small (tens of variables), so a dense tableau method
    with Bland's anti-cycling rule is entirely adequate — and easy to
    verify.

    Problems are in standard equality form:

    {v minimize c . x   subject to   A x = b,  x >= 0 v}

    Inequalities are the caller's business (add slack variables). *)

type outcome =
  | Optimal of {
      x : Vec.t;  (** an optimal vertex *)
      objective : float;  (** [c . x] at the optimum *)
      dual : Vec.t;
          (** one dual variable per equality constraint; for the MDP
              LP these are the relative values / gain *)
    }
  | Infeasible  (** no [x >= 0] satisfies [A x = b] *)
  | Unbounded  (** the objective decreases without bound *)

val minimize :
  ?max_pivots:int -> ?tol:float -> c:Vec.t -> a:Matrix.t -> Vec.t -> outcome
(** [minimize ~c ~a b] solves the standard-form program.  [tol]
    (default 1e-9) separates zero from nonzero in ratio tests and
    feasibility checks; [max_pivots] (default 100_000) guards against
    pathological cycling (Bland's rule makes cycling impossible in
    exact arithmetic, the cap is a floating-point safety net — hitting
    it raises [Failure]).  Raises [Invalid_argument] on shape
    mismatches. *)

val check_feasible : ?tol:float -> a:Matrix.t -> b:Vec.t -> Vec.t -> bool
(** [check_feasible ~a ~b x] tests [A x = b] (within [tol], default
    1e-7) and [x >= -tol] — used by the tests and available to
    callers wanting a posteriori verification. *)
