type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative shape";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.init: negative shape";
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Vec.dim v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let of_arrays arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length arr.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Matrix.of_arrays: ragged rows")
    arr;
  init rows cols (fun i j -> arr.(i).(j))

let rows m = m.rows
let cols m = m.cols

let check_index m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d,%d) out of shape %dx%d" i j m.rows
         m.cols)

let get m i j =
  check_index m i j;
  m.data.((i * m.cols) + j)

let set m i j x =
  check_index m i j;
  m.data.((i * m.cols) + j) <- x

let update m i j f = set m i j (f (get m i j))

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }
let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i v =
  if Vec.dim v <> m.cols then invalid_arg "Matrix.set_row: dimension mismatch";
  Array.blit v 0 m.data (i * m.cols) m.cols

let transpose m = init m.cols m.rows (fun i j -> get m j i)
let map f m = { m with data = Array.map f m.data }
let mapi f m = init m.rows m.cols (fun i j -> f i j (get m i j))

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Matrix.%s: shape mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same_shape "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same_shape "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale a m = map (fun x -> a *. x) m

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Matrix.mul: shape mismatch (%dx%d * %dx%d)" a.rows
         a.cols b.rows b.cols);
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_vec m v =
  if Vec.dim v <> m.cols then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Vec.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let vec_mul v m =
  if Vec.dim v <> m.rows then invalid_arg "Matrix.vec_mul: dimension mismatch";
  let out = Vec.create m.cols in
  for i = 0 to m.rows - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (vi *. m.data.((i * m.cols) + j))
      done
  done;
  out

let iter_row f m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.iter_row: bad row";
  for j = 0 to m.cols - 1 do
    f j m.data.((i * m.cols) + j)
  done

let fold f acc m = Array.fold_left f acc m.data

let row_sums m =
  Vec.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. m.data.((i * m.cols) + j)
      done;
      !acc)

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  Array.iteri
    (fun k x -> if Float.abs (x -. b.data.(k)) > tol then ok := false)
    a.data;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%10g" (get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
