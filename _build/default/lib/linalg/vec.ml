type t = float array

let create n = Array.make n 0.0
let make n x = Array.make n x
let init = Array.init
let dim = Array.length
let copy = Array.copy
let of_list = Array.of_list
let to_list = Array.to_list
let fill v x = Array.fill v 0 (Array.length v) x

let check_same_dim name u v =
  if Array.length u <> Array.length v then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length u) (Array.length v))

let blit ~src ~dst =
  check_same_dim "blit" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let map = Array.map
let mapi = Array.mapi

let map2 f u v =
  check_same_dim "map2" u v;
  Array.init (Array.length u) (fun i -> f u.(i) v.(i))

let add u v = map2 ( +. ) u v
let sub u v = map2 ( -. ) u v
let scale a v = Array.map (fun x -> a *. x) v

let axpy a x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot u v =
  check_same_dim "dot" u v;
  let acc = ref 0.0 in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

let sum v = Array.fold_left ( +. ) 0.0 v
let norm_inf v = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0.0 v
let norm1 v = Array.fold_left (fun m x -> m +. Float.abs x) 0.0 v
let norm2 v = sqrt (dot v v)

let span v =
  if Array.length v = 0 then 0.0
  else begin
    let lo = ref v.(0) and hi = ref v.(0) in
    Array.iter
      (fun x ->
        if x < !lo then lo := x;
        if x > !hi then hi := x)
      v;
    !hi -. !lo
  end

let extremum_index name better v =
  if Array.length v = 0 then invalid_arg (Printf.sprintf "Vec.%s: empty" name);
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if better v.(i) v.(!best) then best := i
  done;
  !best

let max_index v = extremum_index "max_index" ( > ) v
let min_index v = extremum_index "min_index" ( < ) v

let normalize1 v =
  let s = sum v in
  if s = 0.0 || not (Float.is_finite s) then
    invalid_arg "Vec.normalize1: entry sum is zero or not finite";
  scale (1.0 /. s) v

let approx_equal ?(tol = 1e-9) u v =
  Array.length u = Array.length v
  &&
  let ok = ref true in
  for i = 0 to Array.length u - 1 do
    if Float.abs (u.(i) -. v.(i)) > tol then ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    v
