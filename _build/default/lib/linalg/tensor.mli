(** Kronecker (tensor) product and sum.

    Section III of the paper assembles the generator of the composed
    power-managed system from the SP and SQ generators with the tensor
    product [A (x) B] and tensor sum [A (+) B = A (x) I + I (x) B]
    (Definition 4.4).  Both dense and sparse variants are provided; the
    index convention is the standard one: entry
    [((i1*n2 + i2), (j1*m2 + j2))] of [A (x) B] is [A(i1,j1) * B(i2,j2)]
    where [B] is [n2 x m2]. *)

val product : Matrix.t -> Matrix.t -> Matrix.t
(** [product a b] is the Kronecker product [a (x) b]. *)

val sum : Matrix.t -> Matrix.t -> Matrix.t
(** [sum a b] is the Kronecker sum [a (x) I_nb + I_na (x) b].  Raises
    [Invalid_argument] unless both matrices are square. *)

val sparse_product : Sparse.t -> Sparse.t -> Sparse.t
(** Sparse Kronecker product. *)

val sparse_sum : Sparse.t -> Sparse.t -> Sparse.t
(** Sparse Kronecker sum; raises [Invalid_argument] unless both are
    square. *)

val pair_index : inner_dim:int -> int -> int -> int
(** [pair_index ~inner_dim i1 i2] is the flat index [i1*inner_dim + i2]
    of the pair [(i1, i2)] in a tensor-structured state space. *)

val split_index : inner_dim:int -> int -> int * int
(** [split_index ~inner_dim k] inverts {!pair_index}. *)
