let product a b =
  let ra = Matrix.rows a and ca = Matrix.cols a in
  let rb = Matrix.rows b and cb = Matrix.cols b in
  Matrix.init (ra * rb) (ca * cb) (fun i j ->
      Matrix.get a (i / rb) (j / cb) *. Matrix.get b (i mod rb) (j mod cb))

let check_square name m r c =
  if r <> c then invalid_arg (Printf.sprintf "Tensor.%s: matrix not square" name)
  else ignore m

let sum a b =
  check_square "sum" a (Matrix.rows a) (Matrix.cols a);
  check_square "sum" b (Matrix.rows b) (Matrix.cols b);
  let na = Matrix.rows a and nb = Matrix.rows b in
  Matrix.add (product a (Matrix.identity nb)) (product (Matrix.identity na) b)

let sparse_product a b =
  let rb = Sparse.rows b and cb = Sparse.cols b in
  let ts = ref [] in
  Sparse.iter a (fun i1 j1 x ->
      Sparse.iter b (fun i2 j2 y ->
          ts := ((i1 * rb) + i2, (j1 * cb) + j2, x *. y) :: !ts));
  Sparse.of_triplets ~rows:(Sparse.rows a * rb) ~cols:(Sparse.cols a * cb) !ts

let sparse_sum a b =
  if Sparse.rows a <> Sparse.cols a || Sparse.rows b <> Sparse.cols b then
    invalid_arg "Tensor.sparse_sum: matrix not square";
  let na = Sparse.rows a and nb = Sparse.rows b in
  Sparse.add
    (sparse_product a (Sparse.identity nb))
    (sparse_product (Sparse.identity na) b)

let pair_index ~inner_dim i1 i2 = (i1 * inner_dim) + i2
let split_index ~inner_dim k = (k / inner_dim, k mod inner_dim)
