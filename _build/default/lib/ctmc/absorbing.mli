(** First-passage and absorption analysis.

    For power management these answer latency questions the stationary
    distribution cannot: "starting asleep with one queued request, how
    long until the first service completes?", or "how likely is the
    queue to fill before the server wakes?".  The machinery is the
    standard one: make the target set absorbing and solve the linear
    systems of the transient sub-generator. *)

open Dpm_linalg

val mean_hitting_times : Generator.t -> targets:int list -> Vec.t
(** [mean_hitting_times g ~targets] is the vector of expected times to
    first reach any state of [targets] from each state ([0.] on the
    targets themselves).  Entries are [infinity] for states that
    cannot reach the target set.  Raises [Invalid_argument] on an
    empty or out-of-range target list. *)

val hitting_probabilities :
  Generator.t -> targets:int list -> avoid:int list -> Vec.t
(** [hitting_probabilities g ~targets ~avoid] is, per start state, the
    probability of reaching [targets] before [avoid] (both made
    absorbing; they must be disjoint).  Targets map to [1.], avoided
    states to [0.]. *)

val expected_visits : Generator.t -> targets:int list -> Matrix.t
(** [expected_visits g ~targets] is the fundamental-matrix analogue
    for CTMCs: entry [(i, j)] is the expected total {e time} spent in
    transient state [j] before absorption into [targets], starting
    from [i].  Rows/columns are indexed by the original state numbers
    with target rows/columns zero. *)
