open Dpm_linalg

let check_rates name rates =
  Array.iteri
    (fun i r ->
      if not (r > 0.0 && Float.is_finite r) then
        invalid_arg
          (Printf.sprintf "Birth_death: %s.(%d) = %g must be positive" name i r))
    rates

let check_shapes births deaths =
  check_rates "births" births;
  check_rates "deaths" deaths;
  if Array.length births <> Array.length deaths then
    invalid_arg "Birth_death: births and deaths must have the same length";
  if Array.length births = 0 then invalid_arg "Birth_death: empty chain"

let generator ~births ~deaths =
  check_shapes births deaths;
  let n = Array.length births in
  let rates = ref [] in
  for i = 0 to n - 1 do
    rates := (i, i + 1, births.(i)) :: (i + 1, i, deaths.(i)) :: !rates
  done;
  Generator.of_rates ~dim:(n + 1) !rates

let stationary ~births ~deaths =
  check_shapes births deaths;
  let n = Array.length births in
  let p = Vec.create (n + 1) in
  p.(0) <- 1.0;
  for i = 0 to n - 1 do
    p.(i + 1) <- p.(i) *. births.(i) /. deaths.(i)
  done;
  Vec.normalize1 p

module Mm1k = struct
  type metrics = {
    occupancy : Vec.t;
    mean_number : float;
    loss_probability : float;
    throughput : float;
    mean_sojourn : float;
    utilization : float;
  }

  let eval ~lambda ~mu ~k =
    if lambda <= 0.0 || mu <= 0.0 then
      invalid_arg "Mm1k.eval: rates must be positive";
    if k < 1 then invalid_arg "Mm1k.eval: capacity must be at least 1";
    let rho = lambda /. mu in
    let occupancy =
      if Float.abs (rho -. 1.0) < 1e-12 then
        Vec.make (k + 1) (1.0 /. float_of_int (k + 1))
      else
        Vec.normalize1 (Vec.init (k + 1) (fun i -> rho ** float_of_int i))
    in
    let mean_number =
      let acc = ref 0.0 in
      Array.iteri (fun i p -> acc := !acc +. (float_of_int i *. p)) occupancy;
      !acc
    in
    let loss_probability = occupancy.(k) in
    let throughput = lambda *. (1.0 -. loss_probability) in
    let mean_sojourn = mean_number /. throughput in
    let utilization = 1.0 -. occupancy.(0) in
    { occupancy; mean_number; loss_probability; throughput; mean_sojourn; utilization }
end

module Mm1 = struct
  let check lambda mu =
    if lambda <= 0.0 || mu <= 0.0 then invalid_arg "Mm1: rates must be positive";
    if lambda >= mu then invalid_arg "Mm1: requires lambda < mu (stability)"

  let mean_number ~lambda ~mu =
    check lambda mu;
    let rho = lambda /. mu in
    rho /. (1.0 -. rho)

  let mean_sojourn ~lambda ~mu =
    check lambda mu;
    1.0 /. (mu -. lambda)

  let prob_n ~lambda ~mu n =
    check lambda mu;
    if n < 0 then 0.0
    else
      let rho = lambda /. mu in
      (1.0 -. rho) *. (rho ** float_of_int n)
end
