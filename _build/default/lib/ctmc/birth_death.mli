(** Birth-death chains and their closed forms.

    The SQ is a decorated birth-death process, and queueing closed
    forms (M/M/1, M/M/1/K) are the yardstick for validating both the
    analytic pipeline and the simulator.  This module builds general
    birth-death generators and evaluates their product-form stationary
    distributions without going through a linear solve. *)

open Dpm_linalg

val generator : births:float array -> deaths:float array -> Generator.t
(** [generator ~births ~deaths] is the chain on [{0..n}] with
    up-rates [births.(i) : i -> i+1] (length [n]) and down-rates
    [deaths.(i) : i+1 -> i] (length [n]).  Rates must be positive and
    finite; raises [Invalid_argument] otherwise (zero rates would
    disconnect the chain — build those with {!Generator.of_rates}
    directly). *)

val stationary : births:float array -> deaths:float array -> Vec.t
(** Product form: [pi_{i+1} / pi_i = births.(i) / deaths.(i)],
    normalized.  Matches [Steady_state.solve (generator ...)] to
    rounding. *)

(** M/M/1/K closed forms (K = system capacity, arrival [lambda],
    service [mu]). *)
module Mm1k : sig
  type metrics = {
    occupancy : Vec.t;  (** distribution of the number in system *)
    mean_number : float;  (** L *)
    loss_probability : float;  (** P(system full) = blocked fraction *)
    throughput : float;  (** accepted = served rate *)
    mean_sojourn : float;  (** W, by Little's law on the accepted rate *)
    utilization : float;  (** fraction of time the server is busy *)
  }

  val eval : lambda:float -> mu:float -> k:int -> metrics
  (** [eval ~lambda ~mu ~k] evaluates the stationary M/M/1/K.
      Handles [lambda = mu] (the [rho = 1] uniform case) exactly.
      Raises [Invalid_argument] on nonpositive parameters. *)
end

(** M/M/1 (infinite queue) closed forms; requires [lambda < mu]. *)
module Mm1 : sig
  val mean_number : lambda:float -> mu:float -> float
  (** [L = rho / (1 - rho)]. *)

  val mean_sojourn : lambda:float -> mu:float -> float
  (** [W = 1 / (mu - lambda)]. *)

  val prob_n : lambda:float -> mu:float -> int -> float
  (** [P(N = n) = (1 - rho) rho^n]. *)
end
