(** Structural analysis of Markov chains.

    Definitions 2.3-2.6 of the paper: accessibility, communicating
    classes, irreducibility, recurrence.  The action-validity
    constraints of Section III exist precisely to keep the composed
    system a connected Markov process, so the test suite checks every
    expressible policy with {!is_irreducible}. *)

open Dpm_linalg

val communicating_classes : Generator.t -> int list list
(** [communicating_classes g] is the partition of states into
    communicating classes (strongly connected components of the
    transition graph), in reverse topological order (classes reachable
    from others come first in successor order; Tarjan output order). *)

val is_irreducible : Generator.t -> bool
(** True when all states form a single communicating class
    (Definition 2.5). *)

val reachable_from : Generator.t -> int -> bool array
(** [reachable_from g i] marks every state accessible from [i]
    (Definition 2.4), including [i] itself. *)

val recurrent_classes : Generator.t -> int list list
(** [recurrent_classes g] lists the closed communicating classes —
    the classes with no transition leaving them.  In a finite chain
    these are exactly the positive-recurrent classes; states outside
    them are transient (Definition 2.3). *)

val transient_states : Generator.t -> int list
(** States that belong to no closed class. *)

val is_connected_graph : Sparse.t -> bool
(** [is_connected_graph adj] checks weak connectivity of an arbitrary
    sparse adjacency/rate matrix (Definition 2.6's "connected Markov
    process" is on the underlying undirected graph). *)
