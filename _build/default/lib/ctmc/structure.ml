open Dpm_linalg

let adjacency g =
  let n = Generator.dim g in
  let succ = Array.make n [] in
  Generator.iter_off_diagonal g (fun i j _ -> succ.(i) <- j :: succ.(i));
  Array.map (fun l -> Array.of_list (List.rev l)) succ

(* Iterative Tarjan SCC: explicit stack to survive deep graphs (the
   queue-capacity ablation builds chains thousands of states long). *)
let tarjan_scc n succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let sccs = ref [] in
  let visit root =
    (* Each frame: (state, next successor offset). *)
    let call_stack = ref [ (root, ref 0) ] in
    index.(root) <- !next_index;
    lowlink.(root) <- !next_index;
    incr next_index;
    stack := root :: !stack;
    on_stack.(root) <- true;
    while !call_stack <> [] do
      match !call_stack with
      | [] -> ()
      | (v, k) :: rest ->
          if !k < Array.length succ.(v) then begin
            let w = succ.(v).(!k) in
            incr k;
            if index.(w) = -1 then begin
              index.(w) <- !next_index;
              lowlink.(w) <- !next_index;
              incr next_index;
              stack := w :: !stack;
              on_stack.(w) <- true;
              call_stack := (w, ref 0) :: !call_stack
            end
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
          end
          else begin
            call_stack := rest;
            (match rest with
            | (parent, _) :: _ -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
            | [] -> ());
            if lowlink.(v) = index.(v) then begin
              (* Pop the component rooted at v. *)
              let comp = ref [] in
              let continue_pop = ref true in
              while !continue_pop do
                match !stack with
                | [] -> continue_pop := false
                | w :: tl ->
                    stack := tl;
                    on_stack.(w) <- false;
                    comp := w :: !comp;
                    if w = v then continue_pop := false
              done;
              sccs := !comp :: !sccs
            end
          end
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  !sccs

let communicating_classes g = tarjan_scc (Generator.dim g) (adjacency g)

let is_irreducible g =
  match communicating_classes g with [ _ ] -> true | _ -> false

let reachable_from g i =
  let n = Generator.dim g in
  if i < 0 || i >= n then invalid_arg "Structure.reachable_from: bad state";
  let succ = adjacency g in
  let seen = Array.make n false in
  let rec walk frontier =
    match frontier with
    | [] -> ()
    | v :: rest ->
        let next =
          Array.fold_left
            (fun acc w ->
              if seen.(w) then acc
              else begin
                seen.(w) <- true;
                w :: acc
              end)
            rest succ.(v)
        in
        walk next
  in
  seen.(i) <- true;
  walk [ i ];
  seen

let recurrent_classes g =
  let succ = adjacency g in
  let classes = communicating_classes g in
  let n = Generator.dim g in
  let class_of = Array.make n (-1) in
  List.iteri (fun c members -> List.iter (fun v -> class_of.(v) <- c) members) classes;
  List.filteri
    (fun c members ->
      List.for_all
        (fun v -> Array.for_all (fun w -> class_of.(w) = c) succ.(v))
        members)
    classes

let transient_states g =
  let closed = recurrent_classes g in
  let n = Generator.dim g in
  let recurrent = Array.make n false in
  List.iter (List.iter (fun v -> recurrent.(v) <- true)) closed;
  List.filter (fun v -> not recurrent.(v)) (List.init n (fun v -> v))

let is_connected_graph adj =
  let n = Sparse.rows adj in
  if n = 0 then true
  else begin
    (* Undirected reachability over the union of the sparsity patterns
       of the matrix and its transpose. *)
    let neighbours = Array.make n [] in
    Sparse.iter adj (fun i j x ->
        if i <> j && x <> 0.0 then begin
          neighbours.(i) <- j :: neighbours.(i);
          neighbours.(j) <- i :: neighbours.(j)
        end);
    let seen = Array.make n false in
    let rec walk = function
      | [] -> ()
      | v :: rest ->
          let next =
            List.fold_left
              (fun acc w ->
                if seen.(w) then acc
                else begin
                  seen.(w) <- true;
                  w :: acc
                end)
              rest neighbours.(v)
          in
          walk next
    in
    seen.(0) <- true;
    walk [ 0 ];
    Array.for_all (fun b -> b) seen
  end
