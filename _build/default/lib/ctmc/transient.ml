open Dpm_linalg

let check_p0 g p0 =
  if Vec.dim p0 <> Generator.dim g then
    invalid_arg "Transient: initial distribution dimension mismatch";
  Array.iter
    (fun x ->
      if x < 0.0 || not (Float.is_finite x) then
        invalid_arg "Transient: initial distribution has invalid entries")
    p0;
  Vec.normalize1 p0

(* Truncated Poisson window around the mode, with stable recurrences;
   returns (k_lo, weights) where weights.(i) = P(N = k_lo + i). *)
let poisson_window ~mean ~eps =
  let mode = int_of_float mean in
  let log_pmf k =
    let acc = ref ((float_of_int k *. log mean) -. mean) in
    for i = 2 to k do
      acc := !acc -. log (float_of_int i)
    done;
    !acc
  in
  let p_mode = exp (log_pmf mode) in
  let lo = ref mode and hi = ref mode in
  let p_lo = ref p_mode and p_hi = ref p_mode in
  let mass = ref p_mode in
  while !mass < 1.0 -. eps do
    let next_lo = if !lo > 0 then !p_lo *. float_of_int !lo /. mean else 0.0 in
    let next_hi = !p_hi *. mean /. float_of_int (!hi + 1) in
    if next_lo >= next_hi && !lo > 0 then begin
      decr lo;
      p_lo := next_lo;
      mass := !mass +. next_lo
    end
    else begin
      incr hi;
      p_hi := next_hi;
      mass := !mass +. next_hi
    end
  done;
  let w = Array.make (!hi - !lo + 1) 0.0 in
  let p = ref !p_lo in
  for k = !lo to !hi do
    w.(k - !lo) <- !p;
    p := !p *. mean /. float_of_int (k + 1)
  done;
  (!lo, w)

let probabilities ?(eps = 1e-10) g ~p0 ~t =
  if t < 0.0 then invalid_arg "Transient: negative time";
  let p0 = check_p0 g p0 in
  let u = Generator.uniformization_rate g in
  if t = 0.0 || u = 0.0 then p0
  else begin
    let lam = 1.02 *. u in
    let mean = lam *. t in
    let k_lo, weights = poisson_window ~mean ~eps in
    let k_hi = k_lo + Array.length weights - 1 in
    let p_sparse = Generator.uniformized_sparse ~rate:lam g in
    let acc = Vec.create (Generator.dim g) in
    let x = ref p0 in
    for k = 0 to k_hi do
      if k >= k_lo then Vec.axpy weights.(k - k_lo) !x acc;
      if k < k_hi then x := Sparse.vec_mul !x p_sparse
    done;
    (* Compensate the truncated tail mass. *)
    if Vec.sum acc > 0.0 then Vec.normalize1 acc else acc
  end

let probability_trajectory ?eps g ~p0 ~times =
  List.map (fun t -> probabilities ?eps g ~p0 ~t) times

(* Expected occupancy: int_0^t p(u) du
   = sum_{k>=0} (1/L) * P(N > k) * p0 P^k   with N ~ Poisson(Lt). *)
let mean_state_occupancy ?(eps = 1e-10) g ~p0 ~t =
  if t < 0.0 then invalid_arg "Transient: negative time";
  let p0 = check_p0 g p0 in
  let n = Generator.dim g in
  let u = Generator.uniformization_rate g in
  if t = 0.0 then Vec.create n
  else if u = 0.0 then Vec.scale t p0
  else begin
    let lam = 1.02 *. u in
    let mean = lam *. t in
    let k_lo, weights = poisson_window ~mean ~eps in
    let k_hi = k_lo + Array.length weights - 1 in
    let p_sparse = Generator.uniformized_sparse ~rate:lam g in
    let acc = Vec.create n in
    let x = ref p0 in
    let cumulative = ref 0.0 in
    for k = 0 to k_hi do
      if k >= k_lo then cumulative := !cumulative +. weights.(k - k_lo);
      let tail = Float.max 0.0 (1.0 -. !cumulative) in
      Vec.axpy (tail /. lam) !x acc;
      if k < k_hi then x := Sparse.vec_mul !x p_sparse
    done;
    (* Occupancies must sum to t by definition; rescale away the
       truncation error. *)
    let s = Vec.sum acc in
    if s > 0.0 then Vec.scale (t /. s) acc else acc
  end

let accumulated_rewards ?eps g ~p0 ~rewards ~t =
  if Vec.dim rewards <> Generator.dim g then
    invalid_arg "Transient.accumulated_rewards: reward dimension mismatch";
  Vec.dot (mean_state_occupancy ?eps g ~p0 ~t) rewards
