let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let of_generator ?(name = "ctmc") ?state_label ?rate_label g =
  let state_label = Option.value state_label ~default:(Printf.sprintf "s%d") in
  let rate_label =
    Option.value rate_label ~default:(fun _ _ r -> Printf.sprintf "%g" r)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle];\n";
  for i = 0 to Generator.dim g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"];\n" i (escape (state_label i)))
  done;
  Generator.iter_off_diagonal g (fun i j r ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" i j
           (escape (rate_label i j r))));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_edges ?(name = "graph") ~nodes ~edges () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=circle];\n";
  List.iter
    (fun (i, label) ->
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" i (escape label)))
    nodes;
  List.iter
    (fun (i, j, label) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s\"];\n" i j (escape label)))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
