(** Markov processes with rewards — Section II of the paper.

    A reward structure attaches a rate reward [r_ii] (earned per unit
    time in state [i]) and transition rewards [r_ij] (earned on each
    [i -> j] jump).  The "earning rate" of a state combines both:

    {v r_i = r_ii + sum_{j<>i} s_ij * r_ij v}

    The expected total reward [v_i(t)] obeys the linear ODE system of
    Eqn. (2.5); the long-run average reward of an irreducible chain is
    the stationary expectation of the earning rates.  The paper's cost
    function is exactly such a structure with power as the rate reward
    and switching energy as the transition reward (negated, since the
    paper minimizes cost). *)

open Dpm_linalg

type t
(** A chain together with its reward structure. *)

val create :
  ?transition_rewards:(int * int * float) list ->
  Generator.t ->
  rate_rewards:Vec.t ->
  t
(** [create g ~rate_rewards ~transition_rewards] attaches rewards to
    the chain [g].  [rate_rewards.(i)] is [r_ii]; each
    [(i, j, r)] in [transition_rewards] is [r_ij] (indices must be
    valid and [i <> j]).  Raises [Invalid_argument] on dimension or
    index errors. *)

val generator : t -> Generator.t
(** The underlying chain. *)

val earning_rate : t -> int -> float
(** [earning_rate t i] is [r_i] as defined above. *)

val earning_rates : t -> Vec.t
(** All earning rates as a vector. *)

val long_run_average : t -> float
(** [long_run_average t] is [sum_i p_i r_i] with [p] the stationary
    distribution — the limiting average reward per unit time
    (Section II, alternative (1)). *)

val expected_total : t -> t0:Vec.t -> horizon:float -> float
(** [expected_total t ~t0 ~horizon] integrates the ODE (2.5): the
    expected reward accumulated over [[0, horizon]] from the initial
    distribution [t0], computed by uniformization. *)

val value_trajectory : t -> state:int -> times:float list -> float list
(** [value_trajectory t ~state ~times] is [v_state] evaluated at each
    epoch — the per-start-state solution of Eqn. (2.5). *)

val discounted_values : t -> discount:float -> Vec.t
(** [discounted_values t ~discount] is the vector
    [v = (aI - G)^{-1} r] of expected discounted rewards (Section II,
    alternative (2)), [discount > 0]. *)
