(** Generator (transition-rate) matrices of continuous-time Markov
    chains — Section II of the paper, Eqns. (2.1)-(2.4).

    A generator [G] is a square matrix whose off-diagonal entries
    [s_ij >= 0] are transition rates and whose diagonal entries make
    every row sum to zero ([s_ii = -sum_{j<>i} s_ij], the paper's
    "differential matrix" property).  The smart constructors enforce
    these invariants so the solvers can rely on them. *)

open Dpm_linalg

type t
(** An immutable, validated generator. *)

exception Invalid of string
(** Raised by the validating constructors with a human-readable
    description of the violated invariant. *)

val of_rates : dim:int -> (int * int * float) list -> t
(** [of_rates ~dim rates] builds a generator from off-diagonal
    transition rates [(i, j, rate)], computing the diagonal.
    Raises {!Invalid} on negative rates, out-of-range indices, or
    [i = j] entries (self-rates are implied, not stored). *)

val of_matrix : ?tol:float -> Matrix.t -> t
(** [of_matrix m] validates a full matrix: square, nonnegative
    off-diagonal, row sums within [tol] (default [1e-9]) of zero.
    The row sums are then corrected exactly by recomputing the
    diagonal.  Raises {!Invalid} otherwise. *)

val of_sparse : ?tol:float -> Sparse.t -> t
(** Same as {!of_matrix} for a sparse input; large generators keep a
    sparse backing and never densify. *)

val dim : t -> int
(** Number of states. *)

val get : t -> int -> int -> float
(** [get g i j] is the rate entry [(i, j)] (negative on the
    diagonal). *)

val exit_rate : t -> int -> float
(** [exit_rate g i] is [-get g i i], the total rate out of state
    [i]. *)

val iter_off_diagonal : t -> (int -> int -> float -> unit) -> unit
(** [iter_off_diagonal g f] applies [f i j rate] to every positive
    off-diagonal rate. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row g i f] applies [f j rate] to every positive
    off-diagonal rate leaving state [i]. *)

val to_matrix : t -> Matrix.t
(** Dense copy of the full generator (with diagonal). *)

val to_sparse : t -> Sparse.t
(** Sparse copy of the full generator (with diagonal). *)

val is_dense_backed : t -> bool
(** True when the generator stores a dense matrix internally (affects
    which steady-state solver is the default). *)

val uniformization_rate : t -> float
(** [uniformization_rate g] is [max_i exit_rate g i], the smallest
    valid uniformization constant. *)

val uniformized : ?rate:float -> t -> Matrix.t
(** [uniformized ~rate g] is the row-stochastic matrix
    [P = I + G/rate] of the uniformized discrete-time chain.  [rate]
    defaults to [1.02 * uniformization_rate g] (strictly above the
    maximum exit rate, so the chain is aperiodic).  Raises
    [Invalid_argument] if [rate] is not at least the uniformization
    rate. *)

val uniformized_sparse : ?rate:float -> t -> Sparse.t
(** Sparse variant of {!uniformized}. *)

val embedded_dtmc : t -> Matrix.t
(** [embedded_dtmc g] is the jump-chain matrix: row [i] is
    [s_ij / exit_rate i]; absorbing states ([exit_rate = 0]) get a
    self-loop of probability 1. *)

val scale : float -> t -> t
(** [scale a g] multiplies every rate by [a > 0] (time rescaling);
    raises [Invalid_argument] for [a <= 0]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer (dense rendering). *)
