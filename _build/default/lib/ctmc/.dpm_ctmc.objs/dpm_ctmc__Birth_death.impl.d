lib/ctmc/birth_death.ml: Array Dpm_linalg Float Generator Printf Vec
