lib/ctmc/lumping.mli: Dpm_linalg Generator Vec
