lib/ctmc/dot.mli: Generator
