lib/ctmc/transient.ml: Array Dpm_linalg Float Generator List Sparse Vec
