lib/ctmc/birth_death.mli: Dpm_linalg Generator Vec
