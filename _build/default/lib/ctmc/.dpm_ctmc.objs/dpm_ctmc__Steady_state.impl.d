lib/ctmc/steady_state.ml: Array Dpm_linalg Generator Hashtbl Iterative List Lu Matrix Printf Sparse Structure Vec
