lib/ctmc/structure.ml: Array Dpm_linalg Generator List Sparse
