lib/ctmc/structure.mli: Dpm_linalg Generator Sparse
