lib/ctmc/absorbing.ml: Array Dpm_linalg Generator Hashtbl List Lu Matrix Printf Structure Vec
