lib/ctmc/dot.ml: Buffer Generator List Option Printf String
