lib/ctmc/absorbing.mli: Dpm_linalg Generator Matrix Vec
