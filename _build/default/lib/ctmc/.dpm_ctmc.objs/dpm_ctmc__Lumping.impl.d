lib/ctmc/lumping.ml: Array Dpm_linalg Float Generator Hashtbl Int64 List Option Vec
