lib/ctmc/steady_state.mli: Dpm_linalg Generator Iterative Vec
