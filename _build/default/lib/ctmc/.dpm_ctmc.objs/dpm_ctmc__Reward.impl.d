lib/ctmc/reward.ml: Array Dpm_linalg Generator List Lu Matrix Printf Steady_state Transient Vec
