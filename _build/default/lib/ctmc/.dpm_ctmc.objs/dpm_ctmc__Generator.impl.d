lib/ctmc/generator.ml: Array Dpm_linalg Float Format List Matrix Sparse
