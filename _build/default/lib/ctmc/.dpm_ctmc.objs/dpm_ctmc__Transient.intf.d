lib/ctmc/transient.mli: Dpm_linalg Generator Vec
