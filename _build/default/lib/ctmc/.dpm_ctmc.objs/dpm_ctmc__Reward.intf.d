lib/ctmc/reward.mli: Dpm_linalg Generator Vec
