lib/ctmc/generator.mli: Dpm_linalg Format Matrix Sparse
