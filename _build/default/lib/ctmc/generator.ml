open Dpm_linalg

exception Invalid of string

type backing = Dense of Matrix.t | Csr of Sparse.t

type t = { n : int; backing : backing }

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let of_rates ~dim rates =
  if dim <= 0 then invalid "of_rates: dimension must be positive (got %d)" dim;
  List.iter
    (fun (i, j, r) ->
      if i < 0 || i >= dim || j < 0 || j >= dim then
        invalid "of_rates: rate (%d,%d) out of range for %d states" i j dim;
      if i = j then invalid "of_rates: self-rate at state %d (diagonal is implied)" i;
      if r < 0.0 || not (Float.is_finite r) then
        invalid "of_rates: rate (%d,%d) is %g, must be finite and >= 0" i j r)
    rates;
  (* Heuristic: small systems go dense, larger ones stay sparse. *)
  if dim <= 256 then begin
    let m = Matrix.create dim dim in
    List.iter (fun (i, j, r) -> Matrix.update m i j (fun x -> x +. r)) rates;
    for i = 0 to dim - 1 do
      let out = ref 0.0 in
      for j = 0 to dim - 1 do
        if j <> i then out := !out +. Matrix.get m i j
      done;
      Matrix.set m i i (-. !out)
    done;
    { n = dim; backing = Dense m }
  end
  else begin
    let off = Sparse.of_triplets ~rows:dim ~cols:dim rates in
    let sums = Sparse.row_sums off in
    let diag = List.init dim (fun i -> (i, i, -.sums.(i))) in
    let full = Sparse.of_triplets ~rows:dim ~cols:dim (diag @ rates) in
    { n = dim; backing = Csr full }
  end

let validate_full ~tol ~dims ~get_entry ~row_sum n =
  let rows, cols = dims in
  if rows <> cols then invalid "of_matrix: not square (%dx%d)" rows cols;
  if rows = 0 then invalid "of_matrix: empty matrix";
  for i = 0 to n - 1 do
    let s = row_sum i in
    if Float.abs s > tol then
      invalid "of_matrix: row %d sums to %g (tolerance %g)" i s tol
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let x = get_entry i j in
      if not (Float.is_finite x) then invalid "of_matrix: entry (%d,%d) not finite" i j;
      if i <> j && x < 0.0 then
        invalid "of_matrix: negative off-diagonal %g at (%d,%d)" x i j
    done
  done

let of_matrix ?(tol = 1e-9) m =
  let n = Matrix.rows m in
  validate_full ~tol
    ~dims:(Matrix.rows m, Matrix.cols m)
    ~get_entry:(Matrix.get m)
    ~row_sum:(fun i ->
      let s = ref 0.0 in
      Matrix.iter_row (fun _ x -> s := !s +. x) m i;
      !s)
    n;
  (* Recompute the diagonal so row sums are exactly zero. *)
  let fixed = Matrix.copy m in
  for i = 0 to n - 1 do
    let out = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i then out := !out +. Matrix.get fixed i j
    done;
    Matrix.set fixed i i (-. !out)
  done;
  { n; backing = Dense fixed }

let of_sparse ?(tol = 1e-9) s =
  let n = Sparse.rows s in
  if Sparse.cols s <> n then invalid "of_sparse: not square";
  if n = 0 then invalid "of_sparse: empty matrix";
  let sums = Sparse.row_sums s in
  Array.iteri
    (fun i x ->
      if Float.abs x > tol then
        invalid "of_sparse: row %d sums to %g (tolerance %g)" i x tol)
    sums;
  Sparse.iter s (fun i j x ->
      if not (Float.is_finite x) then invalid "of_sparse: entry (%d,%d) not finite" i j;
      if i <> j && x < 0.0 then
        invalid "of_sparse: negative off-diagonal %g at (%d,%d)" x i j);
  (* Rebuild with an exact diagonal. *)
  let off = ref [] in
  Sparse.iter s (fun i j x -> if i <> j && x <> 0.0 then off := (i, j, x) :: !off);
  let out = Array.make n 0.0 in
  List.iter (fun (i, _, x) -> out.(i) <- out.(i) +. x) !off;
  let diag = List.init n (fun i -> (i, i, -.out.(i))) in
  { n; backing = Csr (Sparse.of_triplets ~rows:n ~cols:n (diag @ !off)) }

let dim g = g.n

let get g i j =
  match g.backing with Dense m -> Matrix.get m i j | Csr s -> Sparse.get s i j

let exit_rate g i = -.get g i i

let iter_off_diagonal g f =
  match g.backing with
  | Dense m ->
      for i = 0 to g.n - 1 do
        Matrix.iter_row (fun j x -> if i <> j && x > 0.0 then f i j x) m i
      done
  | Csr s -> Sparse.iter s (fun i j x -> if i <> j && x > 0.0 then f i j x)

let iter_row g i f =
  match g.backing with
  | Dense m -> Matrix.iter_row (fun j x -> if j <> i && x > 0.0 then f j x) m i
  | Csr s -> Sparse.iter_row s i (fun j x -> if j <> i && x > 0.0 then f j x)

let to_matrix g =
  match g.backing with Dense m -> Matrix.copy m | Csr s -> Sparse.to_dense s

let to_sparse g =
  match g.backing with Dense m -> Sparse.of_dense m | Csr s -> s

let is_dense_backed g = match g.backing with Dense _ -> true | Csr _ -> false

let uniformization_rate g =
  let rate = ref 0.0 in
  for i = 0 to g.n - 1 do
    rate := Float.max !rate (exit_rate g i)
  done;
  !rate

let effective_rate g = function
  | Some r ->
      if r < uniformization_rate g then
        invalid_arg "Generator.uniformized: rate below the maximum exit rate";
      r
  | None ->
      let u = uniformization_rate g in
      if u = 0.0 then 1.0 else 1.02 *. u

let uniformized ?rate g =
  let lam = effective_rate g rate in
  let m = to_matrix g in
  Matrix.mapi (fun i j x -> (if i = j then 1.0 else 0.0) +. (x /. lam)) m

let uniformized_sparse ?rate g =
  let lam = effective_rate g rate in
  let ts = ref [] in
  let diag_extra = Array.make g.n 1.0 in
  iter_off_diagonal g (fun i j x -> ts := (i, j, x /. lam) :: !ts);
  for i = 0 to g.n - 1 do
    diag_extra.(i) <- 1.0 -. (exit_rate g i /. lam);
    ts := (i, i, diag_extra.(i)) :: !ts
  done;
  Sparse.of_triplets ~rows:g.n ~cols:g.n !ts

let embedded_dtmc g =
  Matrix.init g.n g.n (fun i j ->
      let out = exit_rate g i in
      if out = 0.0 then if i = j then 1.0 else 0.0
      else if i = j then 0.0
      else get g i j /. out)

let scale a g =
  if a <= 0.0 then invalid_arg "Generator.scale: factor must be positive";
  match g.backing with
  | Dense m -> { g with backing = Dense (Matrix.scale a m) }
  | Csr s -> { g with backing = Csr (Sparse.scale a s) }

let pp ppf g = Matrix.pp ppf (to_matrix g)
