open Dpm_linalg

type partition = int array

let num_blocks p = 1 + Array.fold_left max (-1) p

let check_partition g p =
  if Array.length p <> Generator.dim g then
    invalid_arg "Lumping: partition length mismatch";
  let nb = num_blocks p in
  if nb <= 0 then invalid_arg "Lumping: empty partition";
  let seen = Array.make nb false in
  Array.iter
    (fun b ->
      if b < 0 || b >= nb then invalid_arg "Lumping: negative block id";
      seen.(b) <- true)
    p;
  if not (Array.for_all (fun x -> x) seen) then
    invalid_arg "Lumping: block ids must be contiguous 0..nblocks-1";
  nb

(* Rate from state s into each block (off-diagonal only). *)
let block_rates g p nb s =
  let out = Vec.create nb in
  Generator.iter_row g s (fun j r -> out.(p.(j)) <- out.(p.(j)) +. r);
  (* Internal rates within the state's own block do not count toward
     the lumpability test between distinct blocks, but keeping them
     and comparing whole vectors except the own-block entry is
     simpler; callers mask it. *)
  out

let is_lumpable ?(tol = 1e-9) g p =
  let nb = check_partition g p in
  let n = Generator.dim g in
  (* Representative block-rate vector per block. *)
  let reps = Array.make nb None in
  let ok = ref true in
  for s = 0 to n - 1 do
    if !ok then begin
      let b = p.(s) in
      let rates = block_rates g p nb s in
      match reps.(b) with
      | None -> reps.(b) <- Some rates
      | Some r ->
          for b' = 0 to nb - 1 do
            if b' <> b && Float.abs (rates.(b') -. r.(b')) > tol then ok := false
          done
    end
  done;
  !ok

let quotient ?(tol = 1e-9) g p =
  if not (is_lumpable ~tol g p) then
    invalid_arg "Lumping.quotient: partition is not lumpable";
  let nb = check_partition g p in
  let n = Generator.dim g in
  (* Take any representative per block. *)
  let rep = Array.make nb (-1) in
  for s = n - 1 downto 0 do
    rep.(p.(s)) <- s
  done;
  let rates = ref [] in
  for b = 0 to nb - 1 do
    let r = block_rates g p nb rep.(b) in
    for b' = 0 to nb - 1 do
      if b' <> b && r.(b') > 0.0 then rates := (b, b', r.(b')) :: !rates
    done
  done;
  Generator.of_rates ~dim:nb !rates

let coarsest_refinement ?(tol = 1e-9) g p =
  ignore (check_partition g p);
  let n = Generator.dim g in
  (* Iteratively split blocks by their block-rate signatures until
     stable.  Quadratic, fine at the state-space sizes this library
     targets. *)
  let current = ref (Array.copy p) in
  let changed = ref true in
  while !changed do
    changed := false;
    let nb = num_blocks !current in
    (* Signature: rates into each block, own-block entry masked,
       discretized by tol to make grouping well-defined. *)
    let signature s =
      let r = block_rates g !current nb s in
      let b = !current.(s) in
      ( b,
        Array.to_list
          (Array.mapi
             (fun b' x ->
               if b' = b then 0L
               else Int64.of_float (Float.round (x /. tol)))
             r) )
    in
    let groups = Hashtbl.create 64 in
    for s = 0 to n - 1 do
      let key = signature s in
      let members = Option.value (Hashtbl.find_opt groups key) ~default:[] in
      Hashtbl.replace groups key (s :: members)
    done;
    if Hashtbl.length groups > nb then begin
      changed := true;
      (* Assign fresh contiguous ids by group, keeping determinism by
         ordering groups by their smallest member. *)
      let group_list =
        Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
        |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
      in
      let next = Array.make n 0 in
      List.iteri (fun id members -> List.iter (fun s -> next.(s) <- id) members)
        group_list;
      current := next
    end
  done;
  !current

let lift p q =
  Array.map (fun b ->
      if b < 0 || b >= Vec.dim q then invalid_arg "Lumping.lift: block out of range"
      else q.(b))
    p
