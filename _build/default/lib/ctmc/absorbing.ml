open Dpm_linalg

let check_targets g targets =
  if targets = [] then invalid_arg "Absorbing: empty target set";
  List.iter
    (fun s ->
      if s < 0 || s >= Generator.dim g then
        invalid_arg (Printf.sprintf "Absorbing: target %d out of range" s))
    targets

(* States outside [special], in ascending order. *)
let complement g special =
  let n = Generator.dim g in
  let is_special = Array.make n false in
  List.iter (fun s -> is_special.(s) <- true) special;
  Array.of_list
    (List.filter (fun s -> not is_special.(s)) (List.init n (fun s -> s)))

(* Sub-generator restricted to [transient] states: rates into the
   absorbing set are dropped while the diagonal keeps the full exit
   rate, so the restricted system is strictly diagonally dominant
   whenever every state can leak into the absorbing set. *)
let transient_matrix g transient =
  let m = Array.length transient in
  let pos = Hashtbl.create m in
  Array.iteri (fun k s -> Hashtbl.replace pos s k) transient;
  let a = Matrix.create m m in
  Array.iteri
    (fun k s ->
      Matrix.set a k k (-.Generator.exit_rate g s);
      Generator.iter_row g s (fun j r ->
          match Hashtbl.find_opt pos j with
          | Some k' -> Matrix.update a k k' (fun x -> x +. r)
          | None -> ()))
    transient;
  a

(* States that can reach the target set at all. *)
let can_reach g targets s =
  let seen = Structure.reachable_from g s in
  List.exists (fun t -> seen.(t)) targets

let mean_hitting_times g ~targets =
  check_targets g targets;
  let n = Generator.dim g in
  let result = Vec.create n in
  (* States that cannot reach the targets hit in infinite time; they
     are excluded from the linear system (keeping them would make it
     singular). *)
  let blocked =
    Array.to_list (complement g targets)
    |> List.filter (fun s -> not (can_reach g targets s))
  in
  List.iter (fun s -> result.(s) <- infinity) blocked;
  let transient = complement g (targets @ blocked) in
  if Array.length transient > 0 then begin
    let a = transient_matrix g transient in
    (* E[T_i] solves  sum_j Q_ij E[T_j] = -1  on the solvable states. *)
    let b = Vec.make (Array.length transient) (-1.0) in
    let x = Lu.solve a b in
    Array.iteri (fun k s -> result.(s) <- x.(k)) transient
  end;
  result

let hitting_probabilities g ~targets ~avoid =
  check_targets g targets;
  List.iter
    (fun s ->
      if List.mem s targets then
        invalid_arg "Absorbing: targets and avoid sets intersect")
    avoid;
  let n = Generator.dim g in
  let result = Vec.create n in
  List.iter (fun s -> result.(s) <- 1.0) targets;
  (* States that can reach neither set stay at probability 0 only if
     they cannot reach the targets; exclude states that can reach
     neither to keep the system nonsingular. *)
  let absorbing = targets @ avoid in
  let stuck =
    Array.to_list (complement g absorbing)
    |> List.filter (fun s -> not (can_reach g absorbing s))
  in
  let transient = complement g (absorbing @ stuck) in
  if Array.length transient > 0 then begin
    let a = transient_matrix g transient in
    let b =
      Vec.init (Array.length transient) (fun k ->
          let s = transient.(k) in
          let into_targets = ref 0.0 in
          Generator.iter_row g s (fun j r ->
              if List.mem j targets then into_targets := !into_targets +. r);
          -. !into_targets)
    in
    let x = Lu.solve a b in
    Array.iteri (fun k s -> result.(s) <- x.(k)) transient
  end;
  result

let expected_visits g ~targets =
  check_targets g targets;
  let n = Generator.dim g in
  let out = Matrix.create n n in
  let transient = complement g targets in
  if Array.length transient > 0 then begin
    List.iter
      (fun s ->
        if not (can_reach g targets s) then
          invalid_arg
            (Printf.sprintf
               "Absorbing.expected_visits: state %d never reaches the targets" s))
      (Array.to_list transient);
    let a = transient_matrix g transient in
    (* N = (-Q_T)^{-1}: entry (i, j) is the expected time spent in j
       before absorption when starting in i. *)
    let inv = Lu.inverse (Matrix.scale (-1.0) a) in
    Array.iteri
      (fun k s ->
        Array.iteri
          (fun k' s' -> Matrix.set out s s' (Matrix.get inv k k'))
          transient)
      transient
  end;
  out
