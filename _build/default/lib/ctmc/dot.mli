(** Graphviz DOT export of Markov chains.

    Figures 1 and 2 of the paper are state-transition diagrams of the
    SP and SQ processes; this module regenerates them (and any other
    chain) as DOT source.  Self-loops are omitted, matching the
    paper's drawing convention. *)

val of_generator :
  ?name:string ->
  ?state_label:(int -> string) ->
  ?rate_label:(int -> int -> float -> string) ->
  Generator.t ->
  string
(** [of_generator g] renders the chain as a [digraph].  [state_label]
    defaults to ["s<i>"]; [rate_label] defaults to printing the rate
    with [%g]. *)

val of_edges :
  ?name:string ->
  nodes:(int * string) list ->
  edges:(int * int * string) list ->
  unit ->
  string
(** [of_edges ~nodes ~edges ()] renders an arbitrary labeled digraph —
    used for policy visualizations where edges are actions, not
    rates. *)
