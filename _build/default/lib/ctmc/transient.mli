(** Transient analysis by uniformization (Jensen's method).

    The state distribution at time [t] of a chain with generator [G]
    started from [p0] is

    {v p(t) = sum_k e^{-Lt} (Lt)^k / k!  *  p0 P^k v}

    with [P = I + G/L] the uniformized chain and [L] at least the
    maximum exit rate.  The Poisson tail is truncated to a requested
    [eps]; all arithmetic stays in probability space (no subtractive
    cancellation), which is why uniformization is the method of choice
    over matrix exponentials for generators. *)

open Dpm_linalg

val probabilities :
  ?eps:float -> Generator.t -> p0:Vec.t -> t:float -> Vec.t
(** [probabilities g ~p0 ~t] is the distribution at time [t] from the
    initial distribution [p0] (must be nonnegative and sum to about
    1; it is renormalized).  [eps] (default [1e-10]) bounds the
    truncated Poisson mass.  [t < 0] raises [Invalid_argument]. *)

val probability_trajectory :
  ?eps:float -> Generator.t -> p0:Vec.t -> times:float list -> Vec.t list
(** [probability_trajectory g ~p0 ~times] evaluates {!probabilities}
    at several (nonnegative, not necessarily sorted) epochs, reusing
    the initial distribution. *)

val accumulated_rewards :
  ?eps:float -> Generator.t -> p0:Vec.t -> rewards:Vec.t -> t:float -> float
(** [accumulated_rewards g ~p0 ~rewards ~t] is
    [int_0^t p(u) . rewards du], the expected reward accumulated over
    [[0, t]] when state [i] earns [rewards.(i)] per unit time — the
    integral form of the paper's total expected reward (Section II). *)

val mean_state_occupancy :
  ?eps:float -> Generator.t -> p0:Vec.t -> t:float -> Vec.t
(** [mean_state_occupancy g ~p0 ~t] is the vector of expected total
    times spent in each state during [[0, t]]; its entries sum to
    [t]. *)
