(** Exact (ordinary) lumpability of CTMCs.

    A partition of the state space is {e lumpable} when, for every
    block and every state in it, the total rate into each other block
    is the same for all states of the block; the quotient chain on
    blocks is then an exact reduction — steady-state probabilities of
    blocks equal the summed member probabilities.

    Power-managed systems often carry such symmetries (e.g. two
    power modes with identical rates and costs are indistinguishable),
    and lumping them shrinks every solver's input. *)

open Dpm_linalg

type partition = int array
(** [partition.(state) = block id]; block ids must cover
    [0 .. nblocks-1]. *)

val is_lumpable : ?tol:float -> Generator.t -> partition -> bool
(** [is_lumpable g p] checks the ordinary-lumpability condition within
    [tol] (default 1e-9).  Raises [Invalid_argument] on a malformed
    partition (wrong length, non-contiguous block ids). *)

val quotient : ?tol:float -> Generator.t -> partition -> Generator.t
(** [quotient g p] is the lumped chain.  Raises [Invalid_argument] if
    the partition is not lumpable (use {!is_lumpable} to probe). *)

val coarsest_refinement : ?tol:float -> Generator.t -> partition -> partition
(** [coarsest_refinement g p] refines the initial partition [p] until
    it becomes lumpable (partition-refinement a la Paige-Tarjan,
    quadratic implementation): the result is the coarsest lumpable
    partition refining [p].  Note the all-in-one partition is
    trivially lumpable (every rate is internal), so start from a
    partition that separates the states you must distinguish —
    typically by cost/reward class — and the refinement will split
    only where the dynamics force it. *)

val lift : partition -> Vec.t -> Vec.t
(** [lift p q] expands a block-indexed vector to states
    ([result.(s) = q.(p.(s))]) — e.g. to compare quotient steady
    states against the full chain's block sums. *)
