open Dpm_linalg

type t = {
  gen : Generator.t;
  rate_rewards : Vec.t;
  transition_rewards : (int * int * float) list;
  earning : Vec.t; (* cached r_i *)
}

let create ?(transition_rewards = []) gen ~rate_rewards =
  let n = Generator.dim gen in
  if Vec.dim rate_rewards <> n then
    invalid_arg "Reward.create: rate reward dimension mismatch";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= n || j < 0 || j >= n || i = j then
        invalid_arg
          (Printf.sprintf "Reward.create: bad transition reward index (%d,%d)" i j))
    transition_rewards;
  let earning = Vec.copy rate_rewards in
  List.iter
    (fun (i, j, r) -> earning.(i) <- earning.(i) +. (Generator.get gen i j *. r))
    transition_rewards;
  { gen; rate_rewards; transition_rewards; earning }

let generator t = t.gen
let earning_rate t i = t.earning.(i)
let earning_rates t = Vec.copy t.earning

let long_run_average t =
  let p = Steady_state.solve t.gen in
  Vec.dot p t.earning

let expected_total t ~t0 ~horizon =
  Transient.accumulated_rewards t.gen ~p0:t0 ~rewards:t.earning ~t:horizon

let value_trajectory t ~state ~times =
  let n = Generator.dim t.gen in
  if state < 0 || state >= n then invalid_arg "Reward.value_trajectory: bad state";
  let p0 = Vec.create n in
  p0.(state) <- 1.0;
  List.map (fun horizon -> expected_total t ~t0:p0 ~horizon) times

let discounted_values t ~discount =
  if discount <= 0.0 then
    invalid_arg "Reward.discounted_values: discount must be positive";
  let n = Generator.dim t.gen in
  (* v solves (aI - G) v = r. *)
  let a =
    Matrix.sub
      (Matrix.scale discount (Matrix.identity n))
      (Generator.to_matrix t.gen)
  in
  Lu.solve a t.earning
