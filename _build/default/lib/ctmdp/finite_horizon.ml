open Dpm_linalg

type result = {
  values : Vec.t;
  schedule : (float * Policy.t) list;
  steps : int;
}

let solve ?terminal ?(steps_per_mean = 8) ?(max_steps = 2_000_000) m ~horizon =
  if horizon <= 0.0 || not (Float.is_finite horizon) then
    invalid_arg "Finite_horizon.solve: horizon must be positive and finite";
  if steps_per_mean < 1 then
    invalid_arg "Finite_horizon.solve: steps_per_mean must be >= 1";
  let n = Model.num_states m in
  let terminal =
    match terminal with
    | None -> Vec.create n
    | Some v ->
        if Vec.dim v <> n then
          invalid_arg "Finite_horizon.solve: terminal cost dimension mismatch";
        Vec.copy v
  in
  let u = Model.max_exit_rate m in
  let lam = Float.max 1e-9 (1.05 *. u) *. float_of_int steps_per_mean in
  let steps =
    int_of_float (Float.ceil (lam *. horizon)) |> max 1
  in
  if steps > max_steps then
    invalid_arg
      (Printf.sprintf
         "Finite_horizon.solve: %d steps needed (rate %g x horizon %g); the \
          model is too stiff for uniformized backward induction — see the \
          stiffness caveat in the interface"
         steps lam horizon);
  let dt = horizon /. float_of_int steps in
  let rate_scale = dt (* per-step cost = c * dt; transition prob = rate * dt *) in
  let backup v i k =
    let c = Model.choice m i k in
    List.fold_left
      (fun acc (j, r) -> acc +. (r *. rate_scale *. (v.(j) -. v.(i))))
      ((c.Model.cost *. rate_scale) +. v.(i))
      c.Model.rates
  in
  let v = ref terminal in
  (* Collect the greedy policy per step (backwards), then compress
     runs into the piecewise-stationary schedule. *)
  let policies = Array.make steps [||] in
  for k = steps - 1 downto 0 do
    let greedy = Array.make n 0 in
    let next =
      Vec.init n (fun i ->
          let best = ref (backup !v i 0) and best_k = ref 0 in
          for c = 1 to Model.num_choices m i - 1 do
            let value = backup !v i c in
            if value < !best -. 1e-15 then begin
              best := value;
              best_k := c
            end
          done;
          greedy.(i) <- !best_k;
          !best)
    in
    policies.(k) <- greedy;
    v := next
  done;
  (* Walk forward in time; a schedule entry marks each change point. *)
  let schedule = ref [] in
  let last = ref [||] in
  for k = 0 to steps - 1 do
    if policies.(k) <> !last then begin
      schedule :=
        (float_of_int k *. dt, Policy.of_choice_indices m policies.(k))
        :: !schedule;
      last := policies.(k)
    end
  done;
  { values = !v; schedule = List.rev !schedule; steps }

let value_at r ~state =
  if state < 0 || state >= Vec.dim r.values then
    invalid_arg "Finite_horizon.value_at: bad state";
  r.values.(state)
