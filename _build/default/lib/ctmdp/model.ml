type choice = { action : int; rates : (int * float) list; cost : float }

type t = { n : int; table : choice array array }

let validate_choice ~n ~state c =
  if not (Float.is_finite c.cost) then
    invalid_arg
      (Printf.sprintf "Ctmdp.Model: state %d action %d has non-finite cost" state
         c.action);
  List.iter
    (fun (j, r) ->
      if j < 0 || j >= n then
        invalid_arg
          (Printf.sprintf "Ctmdp.Model: state %d action %d targets state %d (of %d)"
             state c.action j n);
      if j = state then
        invalid_arg
          (Printf.sprintf "Ctmdp.Model: state %d action %d has a self-rate" state
             c.action);
      if r < 0.0 || not (Float.is_finite r) then
        invalid_arg
          (Printf.sprintf
             "Ctmdp.Model: state %d action %d has invalid rate %g to %d" state
             c.action r j))
    c.rates

let create ~num_states choices_of =
  if num_states <= 0 then invalid_arg "Ctmdp.Model.create: no states";
  let table =
    Array.init num_states (fun i ->
        match choices_of i with
        | [] ->
            invalid_arg
              (Printf.sprintf "Ctmdp.Model.create: state %d has no actions" i)
        | cs ->
            List.iter (validate_choice ~n:num_states ~state:i) cs;
            let labels = List.map (fun c -> c.action) cs in
            let sorted = List.sort_uniq compare labels in
            if List.length sorted <> List.length labels then
              invalid_arg
                (Printf.sprintf
                   "Ctmdp.Model.create: state %d has duplicate action labels" i);
            Array.of_list cs)
  in
  { n = num_states; table }

let num_states m = m.n
let num_choices m i = Array.length m.table.(i)

let choice m i k =
  if i < 0 || i >= m.n then invalid_arg "Ctmdp.Model.choice: bad state";
  if k < 0 || k >= Array.length m.table.(i) then
    invalid_arg
      (Printf.sprintf "Ctmdp.Model.choice: state %d has no choice %d" i k);
  m.table.(i).(k)

let choices m i =
  if i < 0 || i >= m.n then invalid_arg "Ctmdp.Model.choices: bad state";
  Array.to_list m.table.(i)

let find_choice m i ~action =
  let rec scan k =
    if k >= Array.length m.table.(i) then None
    else if m.table.(i).(k).action = action then Some k
    else scan (k + 1)
  in
  if i < 0 || i >= m.n then invalid_arg "Ctmdp.Model.find_choice: bad state";
  scan 0

let total_choices m =
  Array.fold_left (fun acc row -> acc + Array.length row) 0 m.table

let exit_rate c = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 c.rates

let max_exit_rate m =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc c -> Float.max acc (exit_rate c)) acc row)
    0.0 m.table

let map_costs f m =
  {
    m with
    table =
      Array.mapi
        (fun i row -> Array.map (fun c -> { c with cost = f i c }) row)
        m.table;
  }

let pp ppf m =
  Format.fprintf ppf "CTMDP: %d states, %d state-action pairs, max exit rate %g"
    m.n (total_choices m) (max_exit_rate m)
