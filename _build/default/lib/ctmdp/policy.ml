open Dpm_linalg
open Dpm_ctmc

type t = { selection : int array }

let of_choice_indices m idx =
  if Array.length idx <> Model.num_states m then
    invalid_arg "Policy.of_choice_indices: dimension mismatch";
  Array.iteri
    (fun i k ->
      if k < 0 || k >= Model.num_choices m i then
        invalid_arg
          (Printf.sprintf "Policy.of_choice_indices: state %d has no choice %d" i k))
    idx;
  { selection = Array.copy idx }

let of_actions m labels =
  if Array.length labels <> Model.num_states m then
    invalid_arg "Policy.of_actions: dimension mismatch";
  let selection =
    Array.mapi
      (fun i label ->
        match Model.find_choice m i ~action:label with
        | Some k -> k
        | None ->
            invalid_arg
              (Printf.sprintf "Policy.of_actions: state %d offers no action %d" i
                 label))
      labels
  in
  { selection }

let uniform_first m = { selection = Array.make (Model.num_states m) 0 }

let choice_index p i = p.selection.(i)

let action m p i = (Model.choice m i p.selection.(i)).Model.action

let actions m p = Array.init (Model.num_states m) (action m p)

let equal a b = a.selection = b.selection

let generator m p =
  let n = Model.num_states m in
  let rates = ref [] in
  for i = 0 to n - 1 do
    let c = Model.choice m i p.selection.(i) in
    List.iter
      (fun (j, r) -> if r > 0.0 then rates := (i, j, r) :: !rates)
      c.Model.rates
  done;
  Generator.of_rates ~dim:n !rates

let cost_vector m p =
  Vec.init (Model.num_states m) (fun i ->
      (Model.choice m i p.selection.(i)).Model.cost)

let enumerate m =
  let n = Model.num_states m in
  (* Odometer over per-state choice counts. *)
  let next sel =
    let sel = Array.copy sel in
    let rec bump i =
      if i < 0 then None
      else if sel.(i) + 1 < Model.num_choices m i then begin
        sel.(i) <- sel.(i) + 1;
        Some sel
      end
      else begin
        sel.(i) <- 0;
        bump (i - 1)
      end
    in
    bump (n - 1)
  in
  let rec seq sel () =
    Seq.Cons ({ selection = Array.copy sel }, fun () ->
        match next sel with None -> Seq.Nil | Some sel' -> seq sel' ())
  in
  seq (Array.make n 0)

let count m =
  let acc = ref 1.0 in
  for i = 0 to Model.num_states m - 1 do
    acc := !acc *. float_of_int (Model.num_choices m i)
  done;
  !acc

let pp m ppf p =
  Format.fprintf ppf "@[<v>";
  for i = 0 to Model.num_states m - 1 do
    Format.fprintf ppf "%d -> %d@," i (action m p i)
  done;
  Format.fprintf ppf "@]"
