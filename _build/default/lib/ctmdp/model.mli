(** Continuous-time Markov decision processes.

    A CTMDP (Section II of the paper: a controllable Markov process
    with rewards/costs) is, per state [i], a finite set of actions
    [A_i]; each action [a] selects an off-diagonal rate row
    [s_ij(a)] and a cost rate [c_i^a].  The cost rate is expected to
    already combine occupancy cost and rate-weighted transition
    costs, as in the paper's
    [c_s = pow(s) + sum_{s'} s_{s,s'}(a) ene(s,s')]; the {!Choice}
    record carries them pre-combined.

    Action labels are arbitrary integers chosen by the caller (the
    DPM layer uses the target power mode's index); the solvers treat
    them as opaque. *)

type choice = {
  action : int;  (** caller-chosen label *)
  rates : (int * float) list;
      (** off-diagonal transition rates [(target, rate)] *)
  cost : float;  (** expected cost rate [c_i^a] *)
}

type t

val create : num_states:int -> (int -> choice list) -> t
(** [create ~num_states choices_of] materializes and validates a
    CTMDP.  For every state, [choices_of state] must be a nonempty
    list of choices with: finite nonnegative rates, targets in
    [[0, num_states)] and different from the state itself, finite
    costs, and pairwise-distinct action labels.  Raises
    [Invalid_argument] otherwise. *)

val num_states : t -> int
(** Number of states. *)

val num_choices : t -> int -> int
(** [num_choices m i] is [|A_i|]. *)

val choice : t -> int -> int -> choice
(** [choice m i k] is the [k]-th choice of state [i]
    (0-based; raises [Invalid_argument] out of range). *)

val choices : t -> int -> choice list
(** All choices of a state. *)

val find_choice : t -> int -> action:int -> int option
(** [find_choice m i ~action] is the index of the choice labeled
    [action] in state [i], if any. *)

val total_choices : t -> int
(** Sum over states of [|A_i|] — the size of the policy space's
    "alphabet" (the policy space itself has [prod |A_i|] members). *)

val max_exit_rate : t -> float
(** The largest total exit rate over all states and actions — the
    uniformization constant for the whole decision process. *)

val map_costs : (int -> choice -> float) -> t -> t
(** [map_costs f m] replaces each choice's cost by [f state choice] —
    used to re-weight the power/performance trade-off without
    rebuilding the transition structure. *)

val pp : Format.formatter -> t -> unit
(** Summary printer: states, choices, exit-rate range. *)
