(** Exact constrained policy optimization (Section IV of the paper).

    The paper's primary problem statement is {e constrained}: minimize
    average power subject to a bound on the average number of waiting
    requests.  The weighted-sum route ({!Dpm_core.Optimize.constrained}
    bisecting on [w]) only reaches policies on the {e lower convex
    hull} of the power/delay frontier; the LP over occupation measures
    solves the constrained problem exactly, at the price of an
    optimal policy that may be {e randomized} in at most one state
    (a classical result for a single constraint):

    {v minimize    sum x_{i,a} c1_i^a
       subject to  balance + normalization (as in Lp_solver)
                   sum x_{i,a} c2_i^a <= bound,   x >= 0 v}

    The returned per-state action distributions are the conditional
    measures [x_{i,a} / sum_a x_{i,a}]; zero-measure (transient)
    states fall back to the greedy action under the Lagrangian cost
    [c1 + lambda* c2], with [lambda*] read off the bound constraint's
    dual — the completion that keeps the policy optimal. *)

type result = {
  objective : float;  (** optimal average primary cost *)
  secondary : float;  (** the achieved average secondary cost *)
  distributions : float array array;
      (** [distributions.(i).(k)]: probability of choice [k] in state
          [i]; rows sum to 1 *)
  lagrange_multiplier : float;
      (** the bound constraint's shadow price (>= 0): the marginal
          primary cost of tightening the bound *)
  randomized_states : int list;
      (** states where the optimal policy genuinely mixes (at most
          one for a single constraint, barring degeneracy) *)
}

val solve :
  Model.t -> secondary:(int -> int -> float) -> bound:float -> result option
(** [solve m ~secondary ~bound] minimizes the model's cost subject to
    the stationary average of [secondary state choice_index] being at
    most [bound].  [None] when no stationary (possibly randomized)
    policy meets the bound. *)

val mixed_generator :
  Model.t -> float array array -> Dpm_ctmc.Generator.t * Dpm_linalg.Vec.t
(** [mixed_generator m distributions] is the closed-loop chain of a
    randomized stationary policy together with its mixed primary
    cost-rate vector — rate rows and costs averaged under each
    state's action distribution. *)
