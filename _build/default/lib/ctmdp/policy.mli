(** Stationary policies (Definition 2.8).

    Theorems 2.2 and 2.3 justify restricting the optimization to
    stationary (time-independent) policies, so a policy here is just
    one choice per state.  Internally a policy stores choice
    {e indices} into the model's per-state choice arrays; action
    labels are recovered through the model. *)

open Dpm_linalg
open Dpm_ctmc

type t

val of_choice_indices : Model.t -> int array -> t
(** [of_choice_indices m idx] builds a policy selecting choice
    [idx.(i)] in state [i].  Raises [Invalid_argument] on bad
    dimensions or out-of-range indices. *)

val of_actions : Model.t -> int array -> t
(** [of_actions m labels] resolves per-state action labels.  Raises
    [Invalid_argument] when some state does not offer the requested
    label. *)

val uniform_first : Model.t -> t
(** The policy picking each state's first listed choice — the
    conventional policy-iteration starting point. *)

val choice_index : t -> int -> int
(** [choice_index p i] is the selected choice's index in state [i]. *)

val action : Model.t -> t -> int -> int
(** [action m p i] is the selected action's label in state [i]. *)

val actions : Model.t -> t -> int array
(** All selected labels, indexed by state. *)

val equal : t -> t -> bool
(** Structural equality of the selections. *)

val generator : Model.t -> t -> Generator.t
(** [generator m p] is the CTMC induced by following [p]
    (the paper's [G^p]). *)

val cost_vector : Model.t -> t -> Vec.t
(** [cost_vector m p] is the state-indexed cost-rate vector
    [c_i^{p(i)}]. *)

val enumerate : Model.t -> t Seq.t
(** [enumerate m] lazily lists every stationary policy — usable only
    on tiny models (the count is [prod_i |A_i|]); the test suite uses
    it to brute-force-check optimality. *)

val count : Model.t -> float
(** [count m] is [prod_i |A_i|] as a float (may be huge). *)

val pp : Model.t -> Format.formatter -> t -> unit
(** Prints [state -> action] pairs. *)
