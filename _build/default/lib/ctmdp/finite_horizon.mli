(** Finite-planning-horizon CTMDPs — Miller [8] in the paper's
    bibliography.

    Over a finite horizon the optimal policy is piecewise-stationary
    (Definition 2.9): the action may depend on the time remaining.
    We compute it by backward induction on the uniformized chain: with
    rate [L >= max exit rate], the value function obeys

    {v v_{k-1}(i) = min_a ( c_i^a / L + sum_j P^a_ij v_k(j) ) v}

    over [N ~ L * horizon * steps_per_mean] steps, which converges to
    the continuous-time optimum as the step count grows (the step
    error is O(1/steps_per_mean)).

    Stiffness caveat: models whose rates span many orders of magnitude
    (e.g. a big-M self-switch rate) force [L], and hence the step
    count, sky-high — the same effect that stalls value iteration in
    the ABL3 ablation.  Use the average-cost {!Policy_iteration} for
    the paper's DPM models; this solver is for genuinely
    finite-horizon questions on well-scaled models. *)

open Dpm_linalg

type result = {
  values : Vec.t;
      (** expected total cost over the horizon from each start state,
          including the terminal cost *)
  schedule : (float * Policy.t) list;
      (** piecewise-stationary optimal policy: [(t, p)] means "use [p]
          from time [t] on", ascending in [t], first entry at 0. *)
  steps : int;  (** backward-induction steps used *)
}

val solve :
  ?terminal:Vec.t ->
  ?steps_per_mean:int ->
  ?max_steps:int ->
  Model.t ->
  horizon:float ->
  result
(** [solve m ~horizon] computes the finite-horizon optimum.
    [terminal] is the cost collected at the horizon (default zeros);
    [steps_per_mean] (default 8) sets the time resolution as a
    multiple of the uniformization rate; [max_steps] (default
    2_000_000) guards against stiff models — exceeding it raises
    [Invalid_argument] with a pointer to the stiffness caveat. *)

val value_at : result -> state:int -> float
(** Convenience accessor into {!result.values}. *)
