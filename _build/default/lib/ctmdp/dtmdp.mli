(** Discrete-time Markov decision processes (average cost).

    The baseline formulation of Paleologo et al. [11], which the paper
    argues against: time is sliced into intervals of length [L], the
    system changes state only at slice boundaries, and the power
    manager issues a command {e every} slice.  This module provides
    the generic solver; {!Dpm_core.Discrete_baseline} builds the
    DPM-specific model.

    Policy iteration for the average-cost criterion on unichain
    models: evaluation solves [g + v_i = c_i + sum_j P_ij v_j] with
    [v_ref = 0]; improvement is greedy in
    [c_i^a + sum_j P^a_ij v_j]. *)

open Dpm_linalg

type choice = {
  action : int;  (** caller-chosen label *)
  probs : (int * float) list;
      (** full transition row [(target, probability)], including the
          self-transition; must be nonnegative and sum to 1 within
          1e-9 (duplicates are summed) *)
  cost : float;  (** cost incurred per slice *)
}

type t

val create : num_states:int -> (int -> choice list) -> t
(** [create ~num_states choices_of] materializes and validates the
    model (nonempty action sets, valid targets, stochastic rows,
    distinct labels).  Raises [Invalid_argument] otherwise. *)

val num_states : t -> int
(** Number of states. *)

val num_choices : t -> int -> int
(** Size of a state's action set. *)

val choice : t -> int -> int -> choice
(** [choice m i k] is the [k]-th choice of state [i]. *)

type policy = int array
(** Choice index per state. *)

val policy_of_actions : t -> int array -> policy
(** Resolve per-state action labels to choice indices. *)

val actions_of_policy : t -> policy -> int array
(** The labels selected by a policy. *)

type evaluation = { gain : float; bias : Vec.t }

val evaluate : ?ref_state:int -> t -> policy -> evaluation
(** Average cost per slice and relative values of a fixed policy.
    Raises [Lu.Singular] on multichain policies. *)

val transition_matrix : t -> policy -> Matrix.t
(** The row-stochastic closed-loop matrix of a policy. *)

val stationary_distribution : t -> policy -> Vec.t
(** Stationary distribution of the policy's chain (unichain), via the
    embedded CTMC trick [Q = P - I]. *)

type result = { policy : policy; gain : float; bias : Vec.t; iterations : int }

val solve : ?ref_state:int -> ?max_iter:int -> ?init:policy -> t -> result
(** Average-cost policy iteration to a fixed point. *)
