open Dpm_linalg

type result = {
  objective : float;
  secondary : float;
  distributions : float array array;
  lagrange_multiplier : float;
  randomized_states : int list;
}

let mixed_generator m distributions =
  let n = Model.num_states m in
  if Array.length distributions <> n then
    invalid_arg "Constrained_lp.mixed_generator: dimension mismatch";
  let rates = ref [] in
  let costs = Vec.create n in
  for i = 0 to n - 1 do
    let dist = distributions.(i) in
    if Array.length dist <> Model.num_choices m i then
      invalid_arg "Constrained_lp.mixed_generator: distribution shape mismatch";
    Array.iteri
      (fun k p ->
        if p < -1e-12 then
          invalid_arg "Constrained_lp.mixed_generator: negative probability";
        if p > 0.0 then begin
          let c = Model.choice m i k in
          costs.(i) <- costs.(i) +. (p *. c.Model.cost);
          List.iter
            (fun (j, r) -> if r > 0.0 then rates := (i, j, p *. r) :: !rates)
            c.Model.rates
        end)
      dist
  done;
  (Dpm_ctmc.Generator.of_rates ~dim:n !rates, costs)

let solve m ~secondary ~bound =
  let n = Model.num_states m in
  let ref_state = 0 in
  (* LP variables: one per (state, choice), plus the slack of the
     bound constraint. *)
  let var_of = Array.make n [||] in
  let pairs = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    var_of.(i) <-
      Array.init (Model.num_choices m i) (fun k ->
          let v = !count in
          incr count;
          pairs := (i, k) :: !pairs;
          v)
  done;
  let pairs = Array.of_list (List.rev !pairs) in
  let nv = !count + 1 (* + slack *) in
  let slack = !count in
  (* Rows: balance for all states but ref, normalization, bound. *)
  let row_of_state = Array.make n (-1) in
  let next = ref 0 in
  for j = 0 to n - 1 do
    if j <> ref_state then begin
      row_of_state.(j) <- !next;
      incr next
    end
  done;
  let norm_row = n - 1 and bound_row = n in
  let nrows = n + 1 in
  let a = Matrix.create nrows nv in
  let c = Vec.create nv in
  Array.iteri
    (fun v (i, k) ->
      let choice = Model.choice m i k in
      c.(v) <- choice.Model.cost;
      Matrix.set a norm_row v 1.0;
      Matrix.set a bound_row v (secondary i k);
      let exit = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 choice.Model.rates in
      if i <> ref_state then
        Matrix.update a row_of_state.(i) v (fun x -> x -. exit);
      List.iter
        (fun (j, r) ->
          if j <> ref_state then
            Matrix.update a row_of_state.(j) v (fun x -> x +. r))
        choice.Model.rates)
    pairs;
  Matrix.set a bound_row slack 1.0;
  let b = Vec.create nrows in
  b.(norm_row) <- 1.0;
  b.(bound_row) <- bound;
  match Simplex.minimize ~c ~a b with
  | Simplex.Infeasible -> None
  | Simplex.Unbounded -> failwith "Constrained_lp.solve: unbounded (model bug?)"
  | Simplex.Optimal { x; objective; dual } ->
      let mass = Array.map (fun vars -> Array.fold_left (fun acc v -> acc +. x.(v)) 0.0 vars) var_of in
      (* Lagrange multiplier: shadow price of the bound row.  With the
         <=-as-slack-equality convention and minimization, tightening
         the bound raises cost, so the multiplier is the negated
         dual, floored at 0 against rounding. *)
      let lambda = Float.max 0.0 (-.dual.(bound_row)) in
      (* Bias from the balance duals, for completing transient
         states under the Lagrangian cost. *)
      let bias =
        Vec.init n (fun j ->
            if j = ref_state then 0.0 else -.dual.(row_of_state.(j)))
      in
      let lagrangian_value i k =
        let ch = Model.choice m i k in
        List.fold_left
          (fun acc (j, r) -> acc +. (r *. (bias.(j) -. bias.(i))))
          (ch.Model.cost +. (lambda *. secondary i k))
          ch.Model.rates
      in
      let distributions =
        Array.init n (fun i ->
            let kcount = Model.num_choices m i in
            if mass.(i) > 1e-9 then
              Array.init kcount (fun k -> Float.max 0.0 x.(var_of.(i).(k)) /. mass.(i))
            else begin
              (* Transient state: deterministic greedy under the
                 Lagrangian. *)
              let best = ref 0 and best_value = ref (lagrangian_value i 0) in
              for k = 1 to kcount - 1 do
                let v = lagrangian_value i k in
                if v < !best_value -. 1e-12 then begin
                  best := k;
                  best_value := v
                end
              done;
              Array.init kcount (fun k -> if k = !best then 1.0 else 0.0)
            end)
      in
      let secondary_value =
        let acc = ref 0.0 in
        Array.iteri (fun v (i, k) -> acc := !acc +. (x.(v) *. secondary i k)) pairs;
        !acc
      in
      let randomized_states =
        List.filter
          (fun i ->
            Array.fold_left (fun k p -> if p > 1e-6 then k + 1 else k) 0
              distributions.(i)
            > 1)
          (List.init n (fun i -> i))
      in
      Some
        {
          objective;
          secondary = secondary_value;
          distributions;
          lagrange_multiplier = lambda;
          randomized_states;
        }
