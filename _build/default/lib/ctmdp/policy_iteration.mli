(** Average-cost policy iteration for CTMDPs — the paper's solver
    (Section IV, Figure 3; the algorithm of Howard [10] extended to
    continuous time by Miller [9]).

    The evaluation step solves the relative-value (bias) equations of
    the policy's chain,

    {v c_i - g + sum_j G^p_ij v_j = 0,   v_ref = 0 v}

    for the gain [g] (average cost per unit time) and relative values
    [v]; the improvement step replaces each state's action by one
    minimizing the test quantity [c_i^a + sum_j s^a_ij v_j], keeping
    the incumbent on ties.  On a finite unichain model this converges
    to an average-cost-optimal stationary policy in finitely many
    iterations. *)

open Dpm_linalg

type evaluation = {
  gain : float;  (** average cost per unit time, [g] *)
  bias : Vec.t;  (** relative values [v], [v_ref = 0] *)
}

type step = {
  iteration : int;
  policy_actions : int array;  (** action labels, by state *)
  evaluation : evaluation;
  changed_states : int;  (** states whose action the improvement changed *)
}

type result = {
  policy : Policy.t;
  gain : float;
  bias : Vec.t;
  iterations : int;
  trace : step list;  (** chronological *)
}

val evaluate : ?ref_state:int -> Model.t -> Policy.t -> evaluation
(** [evaluate m p] solves the relative-value equations of policy [p].
    [ref_state] (default 0) is the state pinned to bias 0.  Raises
    [Lu.Singular] if the policy's chain is not unichain (the DPM
    action constraints rule this out for models built by
    [Dpm_core]). *)

val evaluate_robust : ?ref_state:int -> Model.t -> Policy.t -> evaluation
(** Like {!evaluate}, but when the policy's chain is multichain (the
    exact system is singular) it re-solves with a tiny restart rate
    toward the reference state, which restores unichain structure at
    an O(1e-9)-relative bias error.  {!solve} uses this internally so
    multichain policies encountered mid-iteration do not abort the
    optimization. *)

val improve : Model.t -> evaluation -> incumbent:Policy.t -> Policy.t * int
(** [improve m eval ~incumbent] returns the greedy policy with
    respect to [eval.bias] and the number of states whose action
    changed.  Ties (within an absolute tolerance of 1e-9) keep the
    incumbent's choice, which guarantees termination. *)

val solve : ?ref_state:int -> ?max_iter:int -> ?init:Policy.t -> Model.t -> result
(** [solve m] runs policy iteration from [init] (default: each
    state's first choice) until the policy is stable.  [max_iter]
    defaults to 1000; exceeding it raises [Failure] (it indicates a
    modeling bug — PI must terminate on finite models). *)

val brute_force : Model.t -> Policy.t * float
(** [brute_force m] evaluates every stationary policy and returns a
    gain-minimal one.  Exponential; only for cross-checking tiny
    models in tests.  Policies whose chain is multichain (evaluation
    fails) are skipped. *)
