lib/ctmdp/value_iteration.ml: Array Dpm_linalg Float List Model Policy Vec
