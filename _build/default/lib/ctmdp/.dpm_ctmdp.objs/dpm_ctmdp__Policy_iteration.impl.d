lib/ctmdp/policy_iteration.ml: Array Dpm_ctmc Dpm_linalg Float Generator List Logs Lu Matrix Model Policy Printf Seq Vec
