lib/ctmdp/dtmdp.ml: Array Dpm_ctmc Dpm_linalg Float Hashtbl List Lu Matrix Option Printf Vec
