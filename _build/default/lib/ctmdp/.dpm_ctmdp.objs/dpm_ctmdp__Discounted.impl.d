lib/ctmdp/discounted.ml: Array Dpm_ctmc Dpm_linalg Float Generator List Lu Matrix Model Policy Vec
