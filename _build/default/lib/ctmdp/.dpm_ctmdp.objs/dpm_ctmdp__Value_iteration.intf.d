lib/ctmdp/value_iteration.mli: Dpm_linalg Model Policy Vec
