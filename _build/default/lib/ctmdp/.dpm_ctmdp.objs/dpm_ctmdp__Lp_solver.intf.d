lib/ctmdp/lp_solver.mli: Dpm_linalg Model Policy Vec
