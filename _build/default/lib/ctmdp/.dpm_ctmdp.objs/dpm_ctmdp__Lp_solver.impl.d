lib/ctmdp/lp_solver.ml: Array Dpm_linalg List Matrix Model Policy Simplex Vec
