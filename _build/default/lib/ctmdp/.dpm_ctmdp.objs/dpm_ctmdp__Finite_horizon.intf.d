lib/ctmdp/finite_horizon.mli: Dpm_linalg Model Policy Vec
