lib/ctmdp/policy.mli: Dpm_ctmc Dpm_linalg Format Generator Model Seq Vec
