lib/ctmdp/policy_iteration.mli: Dpm_linalg Model Policy Vec
