lib/ctmdp/policy.ml: Array Dpm_ctmc Dpm_linalg Format Generator List Model Printf Seq Vec
