lib/ctmdp/finite_horizon.ml: Array Dpm_linalg Float List Model Policy Printf Vec
