lib/ctmdp/model.mli: Format
