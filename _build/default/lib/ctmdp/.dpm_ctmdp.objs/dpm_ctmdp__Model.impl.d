lib/ctmdp/model.ml: Array Float Format List Printf
