lib/ctmdp/discounted.mli: Dpm_linalg Model Policy Vec
