lib/ctmdp/dtmdp.mli: Dpm_linalg Matrix Vec
