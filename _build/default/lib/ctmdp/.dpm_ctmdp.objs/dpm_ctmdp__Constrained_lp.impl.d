lib/ctmdp/constrained_lp.ml: Array Dpm_ctmc Dpm_linalg Float List Matrix Model Simplex Vec
