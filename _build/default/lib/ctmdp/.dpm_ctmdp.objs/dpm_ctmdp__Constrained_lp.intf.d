lib/ctmdp/constrained_lp.mli: Dpm_ctmc Dpm_linalg Model
