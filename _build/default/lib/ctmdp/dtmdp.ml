open Dpm_linalg

type choice = { action : int; probs : (int * float) list; cost : float }

type t = { n : int; table : choice array array }

let validate_choice ~n ~state c =
  if not (Float.is_finite c.cost) then
    invalid_arg
      (Printf.sprintf "Dtmdp: state %d action %d has non-finite cost" state c.action);
  let total = ref 0.0 in
  List.iter
    (fun (j, p) ->
      if j < 0 || j >= n then
        invalid_arg
          (Printf.sprintf "Dtmdp: state %d action %d targets %d (of %d)" state
             c.action j n);
      if p < -1e-12 || not (Float.is_finite p) then
        invalid_arg
          (Printf.sprintf "Dtmdp: state %d action %d has probability %g" state
             c.action p);
      total := !total +. p)
    c.probs;
  if Float.abs (!total -. 1.0) > 1e-9 then
    invalid_arg
      (Printf.sprintf "Dtmdp: state %d action %d row sums to %.12g" state
         c.action !total)

(* Merge duplicate targets so downstream code can assume unique keys. *)
let normalize_probs probs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (j, p) ->
      Hashtbl.replace tbl j (p +. Option.value (Hashtbl.find_opt tbl j) ~default:0.0))
    probs;
  List.sort compare (Hashtbl.fold (fun j p acc -> (j, p) :: acc) tbl [])

let create ~num_states choices_of =
  if num_states <= 0 then invalid_arg "Dtmdp.create: no states";
  let table =
    Array.init num_states (fun i ->
        match choices_of i with
        | [] -> invalid_arg (Printf.sprintf "Dtmdp.create: state %d has no actions" i)
        | cs ->
            List.iter (validate_choice ~n:num_states ~state:i) cs;
            let labels = List.map (fun c -> c.action) cs in
            if List.length (List.sort_uniq compare labels) <> List.length labels
            then
              invalid_arg
                (Printf.sprintf "Dtmdp.create: state %d has duplicate labels" i);
            Array.of_list
              (List.map (fun c -> { c with probs = normalize_probs c.probs }) cs))
  in
  { n = num_states; table }

let num_states m = m.n
let num_choices m i = Array.length m.table.(i)

let choice m i k =
  if i < 0 || i >= m.n then invalid_arg "Dtmdp.choice: bad state";
  if k < 0 || k >= Array.length m.table.(i) then
    invalid_arg (Printf.sprintf "Dtmdp.choice: state %d has no choice %d" i k);
  m.table.(i).(k)

type policy = int array

let policy_of_actions m labels =
  if Array.length labels <> m.n then
    invalid_arg "Dtmdp.policy_of_actions: dimension mismatch";
  Array.mapi
    (fun i label ->
      let rec scan k =
        if k >= Array.length m.table.(i) then
          invalid_arg
            (Printf.sprintf "Dtmdp.policy_of_actions: state %d offers no action %d"
               i label)
        else if m.table.(i).(k).action = label then k
        else scan (k + 1)
      in
      scan 0)
    labels

let actions_of_policy m p = Array.mapi (fun i k -> (choice m i k).action) p

type evaluation = { gain : float; bias : Vec.t }

let transition_matrix m p =
  let mat = Matrix.create m.n m.n in
  Array.iteri
    (fun i k ->
      List.iter (fun (j, pr) -> Matrix.update mat i j (fun x -> x +. pr))
        (choice m i k).probs)
    p;
  mat

let evaluate ?(ref_state = 0) m p =
  if Array.length p <> m.n then invalid_arg "Dtmdp.evaluate: dimension mismatch";
  if ref_state < 0 || ref_state >= m.n then
    invalid_arg "Dtmdp.evaluate: bad reference state";
  let pm = transition_matrix m p in
  (* Unknowns: x_j = v_j (j <> ref), x_ref = g.
     Equation i:  v_i - sum_j P_ij v_j + g = c_i  with v_ref = 0. *)
  let a =
    Matrix.init m.n m.n (fun i j ->
        if j = ref_state then 1.0
        else (if i = j then 1.0 else 0.0) -. Matrix.get pm i j)
  in
  let b = Vec.init m.n (fun i -> (choice m i p.(i)).cost) in
  let x = Lu.solve a b in
  let bias = Vec.init m.n (fun j -> if j = ref_state then 0.0 else x.(j)) in
  { gain = x.(ref_state); bias }

let stationary_distribution m p =
  let pm = transition_matrix m p in
  (* P - I is a generator (rows sum to 0, off-diagonal >= 0); its
     stationary distribution equals the DTMC's. *)
  let q =
    Dpm_ctmc.Generator.of_matrix ~tol:1e-7
      (Matrix.mapi (fun i j x -> if i = j then x -. 1.0 else x) pm)
  in
  Dpm_ctmc.Steady_state.solve q

let improve m (e : evaluation) ~incumbent =
  let changed = ref 0 in
  let next =
    Array.mapi
      (fun i current ->
        let q_value k =
          let c = choice m i k in
          List.fold_left
            (fun acc (j, pr) -> acc +. (pr *. e.bias.(j)))
            c.cost c.probs
        in
        let best = ref current and best_value = ref (q_value current) in
        for k = 0 to num_choices m i - 1 do
          if k <> current then begin
            let v = q_value k in
            if v < !best_value -. 1e-9 then begin
              best := k;
              best_value := v
            end
          end
        done;
        if !best <> current then incr changed;
        !best)
      incumbent
  in
  (next, !changed)

type result = { policy : policy; gain : float; bias : Vec.t; iterations : int }

let solve ?ref_state ?(max_iter = 1000) ?init m =
  let init = match init with Some p -> Array.copy p | None -> Array.make m.n 0 in
  let rec loop iteration p =
    if iteration > max_iter then failwith "Dtmdp.solve: no convergence";
    let e = evaluate ?ref_state m p in
    let next, changed = improve m e ~incumbent:p in
    if changed = 0 then { policy = p; gain = e.gain; bias = e.bias; iterations = iteration }
    else loop (iteration + 1) next
  in
  loop 1 init
