(** Discounted-cost CTMDP solver.

    Section II's second optimality criterion: minimize
    [int_0^inf e^{-at} c(t) dt] for a discount rate [a > 0].
    Theorem 2.2 guarantees a stationary a-optimal policy.  The
    continuous-time problem reduces to a discounted discrete-time MDP
    by uniformization: with rate [L], discount factor
    [beta = L / (a + L)] and per-step cost [c^a / (a + L)], and is
    then solved by policy iteration (evaluation by direct LU solve of
    [(I - beta P^p) v = c^p]).

    Theorem 2.3's limit claim — as [a -> 0] the a-optimal policy
    maximizes the average criterion — is exercised in the test suite
    by comparing this solver at small [a] against
    {!Policy_iteration}. *)

open Dpm_linalg

type result = {
  policy : Policy.t;
  values : Vec.t;  (** expected discounted cost from each state *)
  iterations : int;
}

val evaluate : Model.t -> discount:float -> Policy.t -> Vec.t
(** [evaluate m ~discount p] is the discounted value vector of a
    fixed policy.  [discount] must be positive. *)

val solve : ?max_iter:int -> ?init:Policy.t -> Model.t -> discount:float -> result
(** [solve m ~discount] runs discounted policy iteration to the exact
    optimum (finite convergence).  [max_iter] defaults to 1000. *)
