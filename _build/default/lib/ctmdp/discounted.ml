open Dpm_linalg
open Dpm_ctmc

type result = { policy : Policy.t; values : Vec.t; iterations : int }

let check_discount discount =
  if discount <= 0.0 || not (Float.is_finite discount) then
    invalid_arg "Discounted: discount rate must be positive and finite"

(* v_i = c_i/(a+L) + (L/(a+L)) sum_j P_ij v_j  with P = I + Q/L.
   Equivalently (a+L) v_i - L v_i - sum_j Q_ij v_j = c_i, i.e.
   (aI - Q) v = c — so we can skip uniformization for evaluation and
   solve the continuous system directly. *)
let evaluate m ~discount p =
  check_discount discount;
  let n = Model.num_states m in
  let g = Policy.generator m p in
  let a =
    Matrix.init n n (fun i j ->
        (if i = j then discount else 0.0) -. Generator.get g i j)
  in
  Lu.solve a (Policy.cost_vector m p)

let greedy m ~discount values =
  let n = Model.num_states m in
  let q_value (c : Model.choice) =
    (* One-step lookahead in continuous time: the state is left after
       Exp(exit) at discounted weight exit/(a+exit); staying costs
       c/(a+exit).  Expressed uniformly:
       v = (c + sum_j rate_ij v_j) / (a + exit_i). *)
    let exit = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 c.Model.rates in
    let flow =
      List.fold_left (fun acc (j, r) -> acc +. (r *. values.(j))) 0.0 c.Model.rates
    in
    (c.Model.cost +. flow) /. (discount +. exit)
  in
  Array.init n (fun i ->
      let best = ref 0 and best_value = ref (q_value (Model.choice m i 0)) in
      for k = 1 to Model.num_choices m i - 1 do
        let v = q_value (Model.choice m i k) in
        if v < !best_value -. 1e-12 then begin
          best := k;
          best_value := v
        end
      done;
      !best)

let solve ?(max_iter = 1000) ?init m ~discount =
  check_discount discount;
  let rec loop iteration policy =
    if iteration > max_iter then
      failwith "Discounted.solve: no convergence (model bug?)";
    let values = evaluate m ~discount policy in
    let next = Policy.of_choice_indices m (greedy m ~discount values) in
    if Policy.equal next policy then { policy; values; iterations = iteration }
    else loop (iteration + 1) next
  in
  let init = match init with Some p -> p | None -> Policy.uniform_first m in
  loop 1 init
