lib/prob/stat.ml: Array Float Format List Printf
