lib/prob/dist.ml: Array Float Printf Rng
