lib/prob/rng.mli:
