lib/prob/stat.mli: Format
