(** Probability distributions: sampling and densities.

    The paper's model is built entirely from exponential clocks
    (Poisson arrivals, exponential service and switching times); the
    Poisson pmf additionally drives the uniformization weights of the
    transient CTMC solver. *)

val exponential_sample : Rng.t -> rate:float -> float
(** [exponential_sample rng ~rate] draws [Exp(rate)] by inversion;
    mean [1/rate].  Raises [Invalid_argument] unless [rate > 0]. *)

val exponential_pdf : rate:float -> float -> float
(** [exponential_pdf ~rate x] is the density at [x] ([0.] for
    [x < 0]). *)

val exponential_cdf : rate:float -> float -> float
(** [exponential_cdf ~rate x] is [P(X <= x)]. *)

val uniform_sample : Rng.t -> lo:float -> hi:float -> float
(** [uniform_sample rng ~lo ~hi] is uniform on [[lo, hi)].  Raises
    [Invalid_argument] if [hi < lo]. *)

val poisson_pmf : mean:float -> int -> float
(** [poisson_pmf ~mean k] is [P(N = k)] for [N ~ Poisson(mean)],
    computed in log space to stay finite for large [mean]. *)

val poisson_sample : Rng.t -> mean:float -> int
(** [poisson_sample rng ~mean] draws a Poisson variate: Knuth's
    product method for small means, normal-approximation-free
    inversion by summing exponential gaps for larger ones.  Raises
    [Invalid_argument] unless [mean >= 0]. *)

val poisson_weights : mean:float -> eps:float -> int * float array
(** [poisson_weights ~mean ~eps] is [(k_lo, w)] where
    [w.(i) = P(N = k_lo + i)] and the tails dropped on each side carry
    probability at most [eps] in total.  Used by uniformization. *)

val geometric_sample : Rng.t -> p:float -> int
(** [geometric_sample rng ~p] is the number of failures before the
    first success, [p] in (0, 1]. *)

val categorical_sample : Rng.t -> float array -> int
(** [categorical_sample rng weights] draws index [i] with probability
    proportional to [weights.(i)] (nonnegative, not all zero). *)

val erlang_sample : Rng.t -> k:int -> rate:float -> float
(** [erlang_sample rng ~k ~rate] is the sum of [k] independent
    [Exp(rate)] draws — handy for smoother synthetic service times in
    the examples. *)
