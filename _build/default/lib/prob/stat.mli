(** Streaming statistics.

    The simulator reports two kinds of averages: per-event averages
    (e.g. waiting time per request) accumulated with Welford's
    algorithm, and time-weighted averages (e.g. power, queue length)
    accumulated as integrals over the simulated clock. *)

(** Per-sample accumulator (Welford). *)
module Welford : sig
  type t

  val create : unit -> t
  (** A fresh, empty accumulator. *)

  val add : t -> float -> unit
  (** [add t x] folds one observation in. *)

  val count : t -> int
  (** Number of observations so far. *)

  val mean : t -> float
  (** Running mean; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [nan] with fewer than two samples. *)

  val std_dev : t -> float
  (** Square root of {!variance}. *)

  val std_error : t -> float
  (** Standard error of the mean. *)

  val confidence95 : t -> float * float
  (** [confidence95 t] is the normal-approximation 95% confidence
      interval for the mean, [(lo, hi)]. *)

  val merge : t -> t -> t
  (** [merge a b] combines two accumulators (Chan's parallel update). *)
end

(** Time-weighted accumulator for piecewise-constant signals. *)
module Time_weighted : sig
  type t

  val create : ?at:float -> float -> t
  (** [create ~at v] starts observing a signal with value [v] at time
      [at] (default [0.]). *)

  val update : t -> at:float -> float -> unit
  (** [update t ~at v] records that the signal changed to [v] at time
      [at].  Raises [Invalid_argument] if the clock moves backwards. *)

  val add_impulse : t -> float -> unit
  (** [add_impulse t x] adds a point mass [x] to the integral — e.g.
      a switching-energy impulse on top of a power signal. *)

  val integral : t -> upto:float -> float
  (** [integral t ~upto] is the integral of the signal from the start
      time to [upto] (including impulses). *)

  val average : t -> upto:float -> float
  (** [average t ~upto] is [integral / elapsed]; [nan] when no time
      has elapsed. *)

  val current : t -> float
  (** The signal's current value. *)
end

(** Fixed-bin histogram over [[lo, hi)]. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** [create ~lo ~hi ~bins] allocates [bins] equal-width bins plus
      underflow/overflow counters.  Raises [Invalid_argument] when
      [hi <= lo] or [bins <= 0]. *)

  val add : t -> float -> unit
  (** Record one observation. *)

  val count : t -> int
  (** Total observations, including under/overflow. *)

  val bin_count : t -> int -> int
  (** [bin_count t i] is the count of bin [i]. *)

  val underflow : t -> int
  (** Observations below [lo]. *)

  val overflow : t -> int
  (** Observations at or above [hi]. *)

  val quantile : t -> float -> float
  (** [quantile t q] estimates the [q]-quantile (0 <= q <= 1) from
      bin midpoints.  [nan] when empty. *)

  val pp : Format.formatter -> t -> unit
  (** ASCII rendering, one row per non-empty bin. *)
end

val mean : float list -> float
(** Arithmetic mean of a list; [nan] on empty. *)

val relative_error : actual:float -> approx:float -> float
(** [relative_error ~actual ~approx] is
    [(approx - actual) / actual * 100.], the signed percentage used in
    Table 1 of the paper. *)
