let require_positive_rate name rate =
  if not (rate > 0.0 && Float.is_finite rate) then
    invalid_arg (Printf.sprintf "Dist.%s: rate must be positive and finite" name)

let exponential_sample rng ~rate =
  require_positive_rate "exponential_sample" rate;
  -.log (Rng.float_positive rng) /. rate

let exponential_pdf ~rate x =
  require_positive_rate "exponential_pdf" rate;
  if x < 0.0 then 0.0 else rate *. exp (-.rate *. x)

let exponential_cdf ~rate x =
  require_positive_rate "exponential_cdf" rate;
  if x < 0.0 then 0.0 else 1.0 -. exp (-.rate *. x)

let uniform_sample rng ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform_sample: hi < lo";
  lo +. ((hi -. lo) *. Rng.float rng)

let log_factorial =
  (* Stirling with correction terms beyond the small-n table. *)
  let table = Array.make 128 0.0 in
  for n = 2 to 127 do
    table.(n) <- table.(n - 1) +. log (float_of_int n)
  done;
  fun n ->
    if n < 0 then invalid_arg "Dist.log_factorial: negative"
    else if n < 128 then table.(n)
    else
      let x = float_of_int n +. 1.0 in
      ((x -. 0.5) *. log x) -. x
      +. (0.5 *. log (2.0 *. Float.pi))
      +. (1.0 /. (12.0 *. x))
      -. (1.0 /. (360.0 *. (x ** 3.0)))

let poisson_pmf ~mean k =
  if mean < 0.0 then invalid_arg "Dist.poisson_pmf: negative mean";
  if k < 0 then 0.0
  else if mean = 0.0 then if k = 0 then 1.0 else 0.0
  else exp ((float_of_int k *. log mean) -. mean -. log_factorial k)

let poisson_sample rng ~mean =
  if mean < 0.0 then invalid_arg "Dist.poisson_sample: negative mean";
  if mean = 0.0 then 0
  else if mean < 30.0 then begin
    (* Knuth: count uniforms until the product drops below e^-mean. *)
    let limit = exp (-.mean) in
    let rec count k prod =
      let prod = prod *. Rng.float_positive rng in
      if prod <= limit then k else count (k + 1) prod
    in
    count 0 1.0
  end
  else begin
    (* Count Exp(1) gaps fitting in [mean]; exact, O(mean) draws. *)
    let rec count k acc =
      let acc = acc +. (-.log (Rng.float_positive rng)) in
      if acc > mean then k else count (k + 1) acc
    in
    count 0 0.0
  end

let poisson_weights ~mean ~eps =
  if mean < 0.0 then invalid_arg "Dist.poisson_weights: negative mean";
  if eps <= 0.0 || eps >= 1.0 then
    invalid_arg "Dist.poisson_weights: eps must be in (0,1)";
  if mean = 0.0 then (0, [| 1.0 |])
  else begin
    let mode = int_of_float mean in
    (* Walk outward from the mode until the captured mass reaches
       1 - eps.  Recurrences keep each step O(1). *)
    let p_mode = poisson_pmf ~mean mode in
    let lo = ref mode and hi = ref mode in
    let p_lo = ref p_mode and p_hi = ref p_mode in
    let mass = ref p_mode in
    while !mass < 1.0 -. eps do
      (* Extend on the side with the larger next term. *)
      let next_lo = if !lo > 0 then !p_lo *. float_of_int !lo /. mean else 0.0 in
      let next_hi = !p_hi *. mean /. float_of_int (!hi + 1) in
      if next_lo >= next_hi && !lo > 0 then begin
        decr lo;
        p_lo := next_lo;
        mass := !mass +. next_lo
      end
      else begin
        incr hi;
        p_hi := next_hi;
        mass := !mass +. next_hi
      end
    done;
    let w = Array.make (!hi - !lo + 1) 0.0 in
    let p = ref !p_lo in
    for k = !lo to !hi do
      w.(k - !lo) <- !p;
      p := !p *. mean /. float_of_int (k + 1)
    done;
    (!lo, w)
  end

let geometric_sample rng ~p =
  if not (p > 0.0 && p <= 1.0) then
    invalid_arg "Dist.geometric_sample: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = Rng.float_positive rng in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let categorical_sample rng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (total > 0.0) then
    invalid_arg "Dist.categorical_sample: weights must have positive sum";
  Array.iter
    (fun w -> if w < 0.0 then invalid_arg "Dist.categorical_sample: negative weight")
    weights;
  let target = Rng.float rng *. total in
  let rec scan i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let erlang_sample rng ~k ~rate =
  if k <= 0 then invalid_arg "Dist.erlang_sample: k must be positive";
  require_positive_rate "erlang_sample" rate;
  let acc = ref 0.0 in
  for _ = 1 to k do
    acc := !acc +. exponential_sample rng ~rate
  done;
  !acc
