module Welford = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then Float.nan else t.mean

  let variance t =
    if t.n < 2 then Float.nan else t.m2 /. float_of_int (t.n - 1)

  let std_dev t = sqrt (variance t)

  let std_error t =
    if t.n < 2 then Float.nan else std_dev t /. sqrt (float_of_int t.n)

  let confidence95 t =
    let half = 1.959964 *. std_error t in
    (mean t -. half, mean t +. half)

  let merge a b =
    if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
    else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
      in
      { n; mean; m2 }
    end
end

module Time_weighted = struct
  type t = {
    start : float;
    mutable last_time : float;
    mutable value : float;
    mutable area : float;
  }

  let create ?(at = 0.0) v = { start = at; last_time = at; value = v; area = 0.0 }

  let update t ~at v =
    if at < t.last_time then
      invalid_arg
        (Printf.sprintf "Time_weighted.update: clock moved backwards (%g < %g)"
           at t.last_time);
    t.area <- t.area +. (t.value *. (at -. t.last_time));
    t.last_time <- at;
    t.value <- v

  let add_impulse t x = t.area <- t.area +. x

  let integral t ~upto =
    if upto < t.last_time then
      invalid_arg "Time_weighted.integral: upto precedes last update";
    t.area +. (t.value *. (upto -. t.last_time))

  let average t ~upto =
    let elapsed = upto -. t.start in
    if elapsed <= 0.0 then Float.nan else integral t ~upto /. elapsed

  let current t = t.value
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    bins : int array;
    mutable under : int;
    mutable over : int;
    mutable total : int;
  }

  let create ~lo ~hi ~bins =
    if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
    if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
    { lo; hi; bins = Array.make bins 0; under = 0; over = 0; total = 0 }

  let add t x =
    t.total <- t.total + 1;
    if x < t.lo then t.under <- t.under + 1
    else if x >= t.hi then t.over <- t.over + 1
    else begin
      let width = (t.hi -. t.lo) /. float_of_int (Array.length t.bins) in
      let i = int_of_float ((x -. t.lo) /. width) in
      let i = min i (Array.length t.bins - 1) in
      t.bins.(i) <- t.bins.(i) + 1
    end

  let count t = t.total

  let bin_count t i =
    if i < 0 || i >= Array.length t.bins then
      invalid_arg "Histogram.bin_count: bad bin";
    t.bins.(i)

  let underflow t = t.under
  let overflow t = t.over

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q out of [0,1]";
    if t.total = 0 then Float.nan
    else begin
      let target = q *. float_of_int t.total in
      let width = (t.hi -. t.lo) /. float_of_int (Array.length t.bins) in
      let rec scan i acc =
        if i >= Array.length t.bins then t.hi
        else
          let acc' = acc +. float_of_int t.bins.(i) in
          if acc' >= target then t.lo +. ((float_of_int i +. 0.5) *. width)
          else scan (i + 1) acc'
      in
      scan 0 (float_of_int t.under)
    end

  let pp ppf t =
    let width = (t.hi -. t.lo) /. float_of_int (Array.length t.bins) in
    Format.fprintf ppf "@[<v>";
    if t.under > 0 then Format.fprintf ppf "  < %g: %d@," t.lo t.under;
    Array.iteri
      (fun i c ->
        if c > 0 then
          Format.fprintf ppf "[%g, %g): %d@,"
            (t.lo +. (float_of_int i *. width))
            (t.lo +. (float_of_int (i + 1) *. width))
            c)
      t.bins;
    if t.over > 0 then Format.fprintf ppf " >= %g: %d@," t.hi t.over;
    Format.fprintf ppf "@]"
end

let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let relative_error ~actual ~approx = (approx -. actual) /. actual *. 100.0
