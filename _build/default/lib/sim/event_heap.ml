type handle = { mutable alive : bool }

type 'a entry = { time : float; seq : int; handle : handle; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* array-backed binary heap *)
  mutable length : int;
  mutable next_seq : int;
  mutable live : int; (* entries neither cancelled nor popped *)
}

let create () = { heap = [||]; length = 0; next_seq = 0; live = 0 }

let is_empty h = h.live = 0
let size h = h.live

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let t = h.heap.(i) in
  h.heap.(i) <- h.heap.(j);
  h.heap.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier h.heap.(i) h.heap.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.length && earlier h.heap.(l) h.heap.(!smallest) then smallest := l;
  if r < h.length && earlier h.heap.(r) h.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~time payload =
  if Float.is_nan time then invalid_arg "Event_heap.push: NaN time";
  let handle = { alive = true } in
  let entry = { time; seq = h.next_seq; handle; payload } in
  h.next_seq <- h.next_seq + 1;
  if h.length >= Array.length h.heap then begin
    let cap = max 16 (2 * Array.length h.heap) in
    let bigger = Array.make cap entry in
    Array.blit h.heap 0 bigger 0 h.length;
    h.heap <- bigger
  end;
  h.heap.(h.length) <- entry;
  h.length <- h.length + 1;
  h.live <- h.live + 1;
  sift_up h (h.length - 1);
  handle

let cancel h handle =
  if handle.alive then begin
    handle.alive <- false;
    h.live <- h.live - 1
  end

let rec pop h =
  if h.length = 0 then None
  else begin
    let top = h.heap.(0) in
    h.length <- h.length - 1;
    if h.length > 0 then begin
      h.heap.(0) <- h.heap.(h.length);
      sift_down h 0
    end;
    if top.handle.alive then begin
      top.handle.alive <- false;
      h.live <- h.live - 1;
      Some (top.time, top.payload)
    end
    else pop h (* cancelled: drop silently *)
  end

let rec peek_time h =
  if h.length = 0 then None
  else begin
    let top = h.heap.(0) in
    if top.handle.alive then Some top.time
    else begin
      (* Drop the dead event and look again. *)
      h.length <- h.length - 1;
      if h.length > 0 then begin
        h.heap.(0) <- h.heap.(h.length);
        sift_down h 0
      end;
      peek_time h
    end
  end
