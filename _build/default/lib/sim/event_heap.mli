(** Binary min-heap of timestamped events with O(log n) insertion and
    extraction and O(1) (lazy) cancellation.

    Ties in time are broken by insertion order, which keeps
    simulations deterministic: two events scheduled for the same
    instant fire in the order they were scheduled. *)

type 'a t

type handle
(** Names a scheduled event so it can be cancelled. *)

val create : unit -> 'a t
(** An empty heap. *)

val is_empty : 'a t -> bool
(** No live (non-cancelled) events remain. *)

val size : 'a t -> int
(** Number of live events. *)

val push : 'a t -> time:float -> 'a -> handle
(** [push h ~time e] schedules [e]; raises [Invalid_argument] on a
    NaN time. *)

val cancel : 'a t -> handle -> unit
(** [cancel h k] removes the event named by [k]; cancelling twice or
    cancelling an already-fired event is a silent no-op. *)

val pop : 'a t -> (float * 'a) option
(** [pop h] extracts the earliest live event as [(time, payload)];
    [None] when empty. *)

val peek_time : 'a t -> float option
(** The earliest live event's time without extracting it. *)
