lib/sim/summary.mli: Format Power_sim
