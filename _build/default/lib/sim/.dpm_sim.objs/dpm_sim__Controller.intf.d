lib/sim/controller.mli: Dpm_core
