lib/sim/power_sim.ml: Array Controller Dist Dpm_core Dpm_prob Event_heap Format List Option Queue Rng Service_provider Stat Sys_model Workload
