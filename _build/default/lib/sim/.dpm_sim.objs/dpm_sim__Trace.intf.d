lib/sim/trace.mli: Power_sim
