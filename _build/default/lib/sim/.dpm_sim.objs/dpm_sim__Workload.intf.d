lib/sim/workload.mli: Dpm_prob Rng
