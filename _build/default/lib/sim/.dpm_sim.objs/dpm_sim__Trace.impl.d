lib/sim/trace.ml: Array Buffer List Power_sim Printf
