lib/sim/power_sim.mli: Controller Dpm_core Format Workload
