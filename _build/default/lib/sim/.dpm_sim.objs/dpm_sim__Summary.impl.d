lib/sim/summary.ml: Dpm_prob Float Format List Power_sim Stat
