lib/sim/workload.ml: Array Dist Dpm_prob Float List Rng
