lib/sim/controller.ml: Dpm_core Float List Optimize Printf Service_provider Sys_model
