(** Request workloads (the Service Requestor of the paper, and
    richer sources for the examples).

    The paper's SR is a single-mode Poisson source.  Beyond it we
    provide a piecewise-stationary source (the paper's Section III
    remark about a PM estimating the input rate of a slowly varying
    workload), a two-phase MMPP (bursty traffic), and trace replay.
    A workload is a stateful stream of absolute arrival times. *)

open Dpm_prob

type t

val poisson : rate:float -> t
(** Stationary Poisson arrivals; [rate > 0]. *)

val piecewise : segments:(float * float) list -> final_rate:float -> t
(** [piecewise ~segments ~final_rate] changes rate over time:
    [(until, rate)] pairs with strictly increasing [until] apply
    [rate] up to each boundary; [final_rate] applies afterwards.
    Rates must be positive.  Sampling is by thinning against the
    maximum rate, so boundaries need not align with arrivals. *)

val mmpp : rates:float array -> switch_rate:float array array -> t
(** A Markov-modulated Poisson process: [rates.(k)] while the
    modulating chain occupies phase [k], [switch_rate] its generator
    off-diagonals (diagonal ignored).  Starts in phase 0. *)

val trace : float list -> t
(** Replay absolute arrival times (strictly increasing, positive).
    The stream ends when the trace does. *)

val next_arrival : t -> Rng.t -> now:float -> float option
(** [next_arrival w rng ~now] draws the first arrival strictly after
    [now]; [None] when the source is exhausted (only for {!trace}).
    Calls must have nondecreasing [now] — the workload is a stream,
    not a random-access process. *)

val mean_rate_hint : t -> float
(** A representative rate (exact for {!poisson}; time- or
    phase-averaged otherwise) — used by examples to size time-out
    values the way the paper does (n = inter-arrival time, n = half
    of it). *)
