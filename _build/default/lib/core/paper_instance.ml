let active = 0
let waiting = 1
let sleeping = 2

let service_provider () =
  Service_provider.create
    ~names:[| "active"; "waiting"; "sleeping" |]
    ~switch_time:[| [| 0.0; 0.1; 0.2 |]; [| 0.5; 0.0; 0.1 |]; [| 1.1; 0.5; 0.0 |] |]
    ~service_rate:[| 1.0 /. 1.5; 0.0; 0.0 |]
    ~power:[| 40.0; 15.0; 0.1 |]
    ~switch_energy:
      [| [| 0.0; 0.2; 0.5 |]; [| 1.0; 0.0; 0.1 |]; [| 11.0; 25.0; 0.0 |] |]

let arrival_rate = 1.0 /. 6.0
let service_rate = 1.0 /. 1.5
let queue_capacity = 5
let num_requests = 50_000

let system_at ~arrival_rate =
  Sys_model.create ~sp:(service_provider ()) ~queue_capacity ~arrival_rate ()

let system () = system_at ~arrival_rate

let sweep_rates =
  [ 1.0 /. 8.0; 1.0 /. 7.0; 1.0 /. 6.0; 1.0 /. 5.0; 1.0 /. 4.0; 1.0 /. 3.0 ]
