let defaults ?sleep_mode ?active_mode sys =
  let sp = Sys_model.sp sys in
  let sleep =
    match sleep_mode with Some s -> s | None -> Service_provider.deepest_sleep sp
  in
  let active =
    match active_mode with Some a -> a | None -> Service_provider.fastest_active sp
  in
  if not (Service_provider.is_active sp active) then
    invalid_arg "Policies: active_mode is not an active mode";
  if Service_provider.is_active sp sleep then
    invalid_arg "Policies: sleep_mode is an active mode";
  (sleep, active)

let always_on sys x =
  let sp = Sys_model.sp sys in
  match x with
  | Sys_model.Stable (s, _) ->
      if Service_provider.is_active sp s then s
      else Service_provider.fastest_active sp
  | Sys_model.Transfer (s, _) -> s

let greedy ?sleep_mode ?active_mode sys x =
  let sleep, active = defaults ?sleep_mode ?active_mode sys in
  let sp = Sys_model.sp sys in
  match x with
  | Sys_model.Stable (s, i) ->
      if Service_provider.is_active sp s then s
      else if i >= 1 then active
      else s
  | Sys_model.Transfer (s, i) -> if i = 1 then sleep else s

let n_policy ?sleep_mode ?active_mode sys ~n x =
  let sleep, active = defaults ?sleep_mode ?active_mode sys in
  let sp = Sys_model.sp sys in
  let n = max 1 (min n (Sys_model.queue_capacity sys)) in
  match x with
  | Sys_model.Stable (s, i) ->
      if Service_provider.is_active sp s then s
      else if i >= n then active
      else s
  | Sys_model.Transfer (s, i) -> if i = 1 then sleep else s

let actions_array sys policy =
  Array.map policy (Sys_model.states sys)

let check_valid sys policy =
  let states = Sys_model.states sys in
  let rec scan k =
    if k >= Array.length states then Ok ()
    else begin
      let x = states.(k) in
      let a = policy x in
      if List.mem a (Sys_model.valid_actions sys x) then scan (k + 1)
      else
        Error
          (Format.asprintf "action %d invalid in state %a" a (Sys_model.pp_state sys)
             x)
    end
  in
  scan 0

let to_ctmdp_policy sys model policy =
  (match check_valid sys policy with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Policies.to_ctmdp_policy: " ^ msg));
  Dpm_ctmdp.Policy.of_actions model (actions_array sys policy)
