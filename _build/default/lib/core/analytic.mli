(** Analytic ("functional") steady-state metrics — the model-side
    numbers the paper compares against simulation at the end of its
    first experiment.

    Given the closed-loop chain of a policy, the stationary
    distribution [p] (Theorem 2.1) turns every cost rate into a
    long-run average: power is [sum_x p_x C_pow(x, a_x)], the average
    number of waiting requests is [sum_x p_x C_sq(x)], and waiting
    time follows by Little's law. *)

open Dpm_linalg

type metrics = {
  power : float;
      (** average power in watts, including rate-weighted switching
          energy *)
  avg_waiting_requests : float;  (** stationary mean of [C_sq] *)
  throughput : float;  (** service completions per unit time *)
  loss_rate : float;  (** requests lost (full queue) per unit time *)
  loss_probability : float;  (** fraction of arrivals lost *)
  avg_waiting_time : float;
      (** mean sojourn (arrival to completion) of an {e accepted}
          request, by Little's law on the accepted rate *)
  avg_waiting_time_paper : float;
      (** the paper's Table 1 approximation: waiting requests divided
          by the {e raw} input rate *)
  mode_residency : float array;
      (** fraction of time the SP spends in each mode (transfer
          states count for their source mode) *)
  state_probabilities : Vec.t;  (** the stationary distribution *)
}

val of_actions : Sys_model.t -> actions:(Sys_model.state -> int) -> metrics
(** [of_actions sys ~actions] solves the closed-loop chain under the
    given state-to-action map and reads off the metrics.  The map is
    not validity-checked (callers validate separately) but must
    induce a chain with a unique stationary distribution. *)

val of_mixed :
  Sys_model.t -> gen:Dpm_ctmc.Generator.t -> power_rates:Vec.t -> metrics
(** [of_mixed sys ~gen ~power_rates] reads the metrics off an
    arbitrary closed-loop chain over [sys]'s state space — used for
    the {e randomized} stationary policies of
    {!Optimize.constrained_exact}, whose generator blends several
    actions' rates ({!Dpm_ctmdp.Constrained_lp.mixed_generator}).
    [power_rates.(k)] is the (mixed) power draw of state index [k]. *)

val of_action_array : Sys_model.t -> int array -> metrics
(** Same, with the actions tabulated by state index (the format
    produced by the optimizer and {!Policies.actions_array}). *)

val energy_per_request : metrics -> float
(** [power / throughput] — joules per serviced request, a derived
    figure of merit used in the examples. *)

val pp : Format.formatter -> metrics -> unit
(** One-line summary: power, queue, waiting time, loss. *)
