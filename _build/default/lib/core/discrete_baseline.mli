(** The discrete-time baseline of Paleologo et al. [11].

    The paper's introduction criticizes the DAC'98 discrete-time
    formulation on four counts: (1) time is sliced, so the model is an
    approximation of the continuous dynamics; (2) busy and idle are
    lumped into one "power-up" state, so (3) the SP and SQ transitions
    are treated as independent; and (4) the PM must issue a command
    every slice, which costs signal traffic and power.  This module
    implements that baseline faithfully so the criticisms can be
    measured (bench section EXT1):

    - state space [S x {0..Q}] — {e no transfer states};
    - per-slice transition probabilities composed {e independently}
      from the exponential rates: arrival w.p. [1 - exp(-lambda L)],
      service completion w.p. [1 - exp(-mu(s) L)], commanded switch
      completion w.p. [1 - exp(-chi(s,a) L)];
    - per-slice cost [C_pow * L + w * C_sq * L] (expressed per slice;
      gains are reported back per unit time);
    - the PM decides once per slice (the paper's criticism (4)); the
      {!controller} re-evaluates on a [slice]-period timer and can
      charge an energy overhead per decision through
      {!Dpm_sim.Power_sim.run}'s [decision_energy]. *)

type t

val build : Sys_model.t -> slice:float -> weight:float -> t
(** [build sys ~slice ~weight] discretizes the system.  Raises
    [Invalid_argument] for a nonpositive slice, or one so long that
    first-order event probabilities degenerate
    ([lambda * L >= 1] or [mu * L >= 1]). *)

val slice : t -> float
(** The time-slice length [L]. *)

val num_states : t -> int
(** [S * (Q + 1)]. *)

val solve : t -> Dpm_ctmdp.Dtmdp.result
(** Average-cost policy iteration on the discretized model.  The
    reported gain is per {e slice}; divide by {!slice} for a rate. *)

val gain_per_unit_time : t -> Dpm_ctmdp.Dtmdp.result -> float
(** The solved average cost converted back to cost per unit time. *)

val predicted_metrics : t -> Dpm_ctmdp.Dtmdp.result -> float * float
(** [(power, waiting_requests)] as the {e discrete} model predicts
    them from its own stationary distribution — compare with the
    simulated truth to quantify the paper's accuracy criticism. *)

val action_of : t -> Dpm_ctmdp.Dtmdp.result -> mode:int -> queue:int -> int
(** The optimized command for an observed (mode, queue) pair.  Wire it
    into the simulator with {!Dpm_sim.Controller.periodic} at the
    slice period (the layering keeps [dpm_core] independent of
    [dpm_sim], so the adapter lives on the simulator side). *)
