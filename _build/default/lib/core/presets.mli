(** Ready-made service-provider models.

    The paper's three-mode server plus a few devices from the DPM
    literature the intro motivates (event-driven components: disks,
    network interfaces, embedded CPUs).  Numbers are representative
    magnitudes for late-90s-era hardware, chosen so every preset
    exercises a distinct structure: {!paper} has a shallow/deep sleep
    pair, {!disk} four modes with expensive spin-up, {!wlan_nic} a
    cheap fast doze, and {!dvs_cpu} two {e active} speeds (the
    multi-active case of the model). *)

val paper : unit -> Service_provider.t
(** The DAC'99 instance (Eqn. 4.1): active/waiting/sleeping,
    40/15/0.1 W. *)

val disk : unit -> Service_provider.t
(** Four-mode disk: active/idle/standby/sleep, 2.5/1/0.4/0.05 W,
    slow spin-up (up to 2.5 s) with a large energy penalty. *)

val wlan_nic : unit -> Service_provider.t
(** Wireless interface: rx_tx/doze/off.  Doze wakes in ~10 ms;
    off in ~300 ms. *)

val dvs_cpu : unit -> Service_provider.t
(** Voltage-scaled CPU with two active speeds (full and half) and a
    sleep mode — exercises the multi-active-mode constraints (1) and
    (3). *)

val all : unit -> (string * Service_provider.t) list
(** All presets with their names, for CLI lookup. *)

val find : string -> Service_provider.t
(** [find name] resolves a preset by name; raises [Not_found]. *)
