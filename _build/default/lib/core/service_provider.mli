(** The Service Provider (SP) — Section III of the paper.

    The SP is a stationary continuous-time controllable Markov process
    over power modes, described by the paper's quadruple
    [(chi, mu, pow, ene)]:

    - [chi]: the switching-speed matrix; the switch from mode [s] to
      mode [s'] takes exponentially distributed time with mean
      [1 / chi(s, s')];
    - [mu(s)]: the service rate in mode [s] (requests per unit time);
      modes with [mu > 0] are {e active}, the rest {e inactive};
    - [pow(s)]: power drawn while occupying mode [s];
    - [ene(s, s')]: energy spent by the [s -> s'] switch.

    The paper's example instance (Example 4.1 / Eqn. 4.1) is a
    three-mode server [{active, waiting, sleeping}]; see
    {!Paper_instance}. *)

type t

val create :
  names:string array ->
  switch_time:float array array ->
  service_rate:float array ->
  power:float array ->
  switch_energy:float array array ->
  t
(** [create ~names ~switch_time ~service_rate ~power ~switch_energy]
    validates and builds an SP with [S = Array.length names] modes.

    [switch_time.(i).(j)] is the {e mean} switching time from mode
    [i] to mode [j] (the paper's experimental [tr_time] format);
    diagonal entries are ignored (self-switches are instantaneous,
    [chi(s,s) = infinity] in the paper).  Requirements, checked with
    [Invalid_argument]: at least 2 modes; distinct nonempty names;
    strictly positive finite off-diagonal switch times; nonnegative
    service rates with at least one strictly positive; nonnegative
    finite powers and switch energies; all matrices S x S. *)

val num_modes : t -> int
(** Number of power modes, [S]. *)

val name : t -> int -> string
(** [name sp s] is the label of mode [s]. *)

val mode_of_name : t -> string -> int
(** [mode_of_name sp n] resolves a label; raises [Not_found]. *)

val is_active : t -> int -> bool
(** [is_active sp s] is [mu(s) > 0]. *)

val active_modes : t -> int list
(** Modes with positive service rate, ascending. *)

val inactive_modes : t -> int list
(** Modes with zero service rate, ascending. *)

val service_rate : t -> int -> float
(** [service_rate sp s] is [mu(s)]. *)

val power : t -> int -> float
(** [power sp s] is [pow(s)]. *)

val switch_rate : t -> int -> int -> float
(** [switch_rate sp s s'] is [chi(s, s') = 1 / switch_time], for
    [s <> s'].  Raises [Invalid_argument] on [s = s'] (the self-switch
    rate is a system-model parameter, not an SP property). *)

val switch_time : t -> int -> int -> float
(** [switch_time sp s s'] is the mean [s -> s'] switching time. *)

val switch_energy : t -> int -> int -> float
(** [switch_energy sp s s'] is [ene(s, s')]; [0.] when [s = s']. *)

val wakeup_time : t -> int -> float
(** [wakeup_time sp s] is the fastest mean switch from mode [s] to
    any active mode ([0.] if [s] is itself active) — the quantity
    compared by the paper's action-validity constraint (2). *)

val fastest_active : t -> int
(** The active mode with the highest service rate (ties: lowest
    index). *)

val deepest_sleep : t -> int
(** The inactive mode with the lowest power (ties: lowest index).
    Raises [Not_found] when every mode is active. *)

val generator : t -> action_of:(int -> int) -> Dpm_ctmc.Generator.t
(** [generator sp ~action_of] is the SP-only chain [G_SP] under the
    mode-indexed command map [action_of] (the paper's
    [s_{si,sj}(a) = delta(sj, a) chi_{si,sj}]): from each mode [s],
    the single transition [s -> action_of s] at the switching rate
    (none if [action_of s = s]). *)

val to_dot : t -> action_of:(int -> int) -> string
(** DOT rendering of {!generator} — regenerates Figure 1 of the
    paper for a given policy fragment. *)

val pp : Format.formatter -> t -> unit
(** Mode table: name, service rate, power. *)
