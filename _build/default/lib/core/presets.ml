let paper () = Paper_instance.service_provider ()

let disk () =
  Service_provider.create
    ~names:[| "active"; "idle"; "standby"; "sleep" |]
    ~switch_time:
      [|
        [| 0.0; 0.05; 0.6; 1.0 |];
        [| 0.04; 0.0; 0.5; 0.9 |];
        [| 1.2; 1.0; 0.0; 0.3 |];
        [| 2.5; 2.2; 0.4; 0.0 |];
      |]
    ~service_rate:[| 8.0; 0.0; 0.0; 0.0 |]
    ~power:[| 2.5; 1.0; 0.4; 0.05 |]
    ~switch_energy:
      [|
        [| 0.0; 0.05; 0.3; 0.6 |];
        [| 0.1; 0.0; 0.25; 0.5 |];
        [| 3.0; 2.6; 0.0; 0.2 |];
        [| 6.5; 6.0; 0.7; 0.0 |];
      |]

let wlan_nic () =
  Service_provider.create
    ~names:[| "rx_tx"; "doze"; "off" |]
    ~switch_time:
      [| [| 0.0; 0.002; 0.01 |]; [| 0.01; 0.0; 0.008 |]; [| 0.3; 0.25; 0.0 |] |]
    ~service_rate:[| 200.0; 0.0; 0.0 |] (* 5 ms per frame *)
    ~power:[| 1.4; 0.045; 0.0 |]
    ~switch_energy:
      [| [| 0.0; 0.001; 0.002 |]; [| 0.005; 0.0; 0.001 |]; [| 0.15; 0.12; 0.0 |] |]

let dvs_cpu () =
  Service_provider.create
    ~names:[| "full"; "half"; "sleep" |]
      (* Voltage/frequency transitions are fast; waking from sleep is
         not. *)
    ~switch_time:
      [| [| 0.0; 0.001; 0.005 |]; [| 0.001; 0.0; 0.004 |]; [| 0.05; 0.04; 0.0 |] |]
    ~service_rate:[| 100.0; 50.0; 0.0 |]
    ~power:[| 0.9; 0.3; 0.005 |] (* quadratic-ish voltage scaling *)
    ~switch_energy:
      [| [| 0.0; 0.0005; 0.001 |]; [| 0.0005; 0.0; 0.001 |]; [| 0.02; 0.015; 0.0 |] |]

let all () =
  [
    ("paper", paper ());
    ("disk", disk ());
    ("wlan", wlan_nic ());
    ("cpu", dvs_cpu ());
  ]

let find name =
  match List.assoc_opt name (all ()) with
  | Some sp -> sp
  | None -> raise Not_found
