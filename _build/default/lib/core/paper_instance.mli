(** The paper's experimental setup (Section V).

    A three-mode server [{active, waiting, sleeping}] with:

    - request inter-arrival time Exp with mean 6 s
      ([lambda = 1/6 ~ 0.167]);
    - service time Exp with mean 1.5 s ([mu_active = 1/1.5 ~ 0.667]);
    - queue capacity 5;
    - powers 40 W / 15 W / 0.1 W;
    - switching times and energies of Eqn. (4.1):

    {v            tr_time (s)                tr_energy (J)
            A      W      S             A      W      S
      A     -     0.1    0.2      A     -     0.2    0.5
      W    0.5     -     0.1      W    1.0     -     0.1
      S    1.1    0.5     -       S   11.0   25.0     -     v}

    50,000 requests per simulation; the Figure 5 / Table 1 sweeps use
    input rates 1/8 .. 1/3. *)

val active : int
(** Mode index 0. *)

val waiting : int
(** Mode index 1. *)

val sleeping : int
(** Mode index 2. *)

val service_provider : unit -> Service_provider.t
(** A fresh copy of the paper's three-mode SP. *)

val arrival_rate : float
(** [1 / 6]. *)

val service_rate : float
(** [1 / 1.5]. *)

val queue_capacity : int
(** [5]. *)

val num_requests : int
(** [50_000] — the simulation length of Section V. *)

val system : unit -> Sys_model.t
(** The composed SYS at the default arrival rate. *)

val system_at : arrival_rate:float -> Sys_model.t
(** The composed SYS at a swept arrival rate (Table 1, Figure 5). *)

val sweep_rates : float list
(** [1/8; 1/7; 1/6; 1/5; 1/4; 1/3] — the input rates of Table 1 and
    Figure 5. *)
