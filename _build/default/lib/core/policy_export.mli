(** Rendering, exporting and comparing policies.

    A policy over the composed state space reads best as a
    mode-by-queue table (rows: SP mode / transfer level; columns:
    queue length), which is also how the paper presents its examples.
    This module renders that table, exports machine-readable forms,
    and diffs two policies — the tool used to inspect how the optimum
    moves along the trade-off curve. *)

val table : Sys_model.t -> (Sys_model.state -> int) -> string
(** Human-readable grid of commanded modes; stable states first, then
    the transfer rows of each active mode. *)

val to_csv : Sys_model.t -> (Sys_model.state -> int) -> string
(** [state_kind,mode,queue,command] rows, one per state. *)

val to_dot : Sys_model.t -> (Sys_model.state -> int) -> string
(** The closed-loop chain under the policy as a Graphviz digraph with
    the paper's state labels. *)

val diff :
  Sys_model.t ->
  (Sys_model.state -> int) ->
  (Sys_model.state -> int) ->
  (Sys_model.state * int * int) list
(** [diff sys a b] lists the states where the two policies disagree,
    with both commands, in state-index order. *)

val agreement : Sys_model.t -> (Sys_model.state -> int) -> (Sys_model.state -> int) -> float
(** Fraction of states on which the two policies agree. *)
