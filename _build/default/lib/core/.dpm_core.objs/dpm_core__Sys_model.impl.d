lib/core/sys_model.ml: Array Dpm_ctmc Dpm_ctmdp Dpm_linalg Float Format Generator List Matrix Printf Service_provider Service_queue Tensor
