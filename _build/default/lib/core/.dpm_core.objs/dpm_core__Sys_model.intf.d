lib/core/sys_model.mli: Dpm_ctmc Dpm_ctmdp Dpm_linalg Format Matrix Service_provider
