lib/core/presets.ml: List Paper_instance Service_provider
