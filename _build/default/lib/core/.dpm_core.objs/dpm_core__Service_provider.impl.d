lib/core/service_provider.ml: Array Dot Dpm_ctmc Float Format Generator List Printf
