lib/core/policy_export.ml: Array Buffer Dpm_ctmc Format List Printf Service_provider String Sys_model
