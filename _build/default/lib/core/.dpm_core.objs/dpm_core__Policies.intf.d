lib/core/policies.mli: Dpm_ctmdp Sys_model
