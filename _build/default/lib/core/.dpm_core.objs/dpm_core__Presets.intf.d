lib/core/presets.mli: Service_provider
