lib/core/analytic.ml: Array Dpm_ctmc Dpm_linalg Float Format Service_provider Steady_state Sys_model Vec
