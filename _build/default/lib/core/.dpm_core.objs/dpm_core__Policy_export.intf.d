lib/core/policy_export.mli: Sys_model
