lib/core/sensitivity.mli: Analytic Sys_model
