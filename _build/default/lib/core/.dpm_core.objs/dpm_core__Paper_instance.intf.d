lib/core/paper_instance.mli: Service_provider Sys_model
