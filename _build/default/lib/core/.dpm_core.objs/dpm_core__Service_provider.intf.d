lib/core/service_provider.mli: Dpm_ctmc Format
