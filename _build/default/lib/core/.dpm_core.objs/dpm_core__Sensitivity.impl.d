lib/core/sensitivity.ml: Analytic Array Float List Optimize Sys_model
