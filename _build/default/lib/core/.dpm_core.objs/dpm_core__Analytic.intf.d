lib/core/analytic.mli: Dpm_ctmc Dpm_linalg Format Sys_model Vec
