lib/core/policies.ml: Array Dpm_ctmdp Format List Service_provider Sys_model
