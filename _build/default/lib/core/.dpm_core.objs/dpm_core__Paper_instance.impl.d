lib/core/paper_instance.ml: Service_provider Sys_model
