lib/core/discrete_baseline.ml: Array Dpm_ctmdp Dtmdp Float List Service_provider Sys_model
