lib/core/service_queue.mli: Dpm_ctmc Dpm_linalg Matrix
