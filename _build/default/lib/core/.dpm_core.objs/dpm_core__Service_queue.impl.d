lib/core/service_queue.ml: Dot Dpm_ctmc Dpm_linalg Float Generator Matrix Printf
