lib/core/optimize.ml: Analytic Array Dpm_ctmc Dpm_ctmdp List Policies Sys_model
