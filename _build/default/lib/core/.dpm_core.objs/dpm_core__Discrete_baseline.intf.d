lib/core/discrete_baseline.mli: Dpm_ctmdp Sys_model
