lib/core/optimize.mli: Analytic Sys_model
