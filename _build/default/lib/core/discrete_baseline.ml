open Dpm_ctmdp

type t = {
  sys : Sys_model.t;
  slice : float;
  weight : float;
  model : Dtmdp.t;
}

(* State indexing: (mode s, queue i) <-> s * (Q + 1) + i. *)
let index sys s i = (s * (Sys_model.queue_capacity sys + 1)) + i

let mode_of sys k = k / (Sys_model.queue_capacity sys + 1)
let queue_of sys k = k mod (Sys_model.queue_capacity sys + 1)

let slice_actions sys s i =
  let sp = Sys_model.sp sys in
  let q = Sys_model.queue_capacity sys in
  (* Keep the chain unichain: a powered-down SP facing a full queue
     must wake ([11]'s formulation needs the analogous guard). *)
  if (not (Service_provider.is_active sp s)) && i = q then
    Service_provider.active_modes sp
  else List.init (Service_provider.num_modes sp) (fun a -> a)

let build sys ~slice ~weight =
  if slice <= 0.0 || not (Float.is_finite slice) then
    invalid_arg "Discrete_baseline.build: slice must be positive and finite";
  let sp = Sys_model.sp sys in
  let q = Sys_model.queue_capacity sys in
  let lam = Sys_model.arrival_rate sys in
  if lam *. slice >= 1.0 then
    invalid_arg "Discrete_baseline.build: slice too long for the arrival rate";
  List.iter
    (fun s ->
      if Service_provider.service_rate sp s *. slice >= 1.0 then
        invalid_arg "Discrete_baseline.build: slice too long for the service rate")
    (Service_provider.active_modes sp);
  let n_modes = Service_provider.num_modes sp in
  let num_states = n_modes * (q + 1) in
  let p_arrival = 1.0 -. exp (-.lam *. slice) in
  let choices_of k =
    let s = mode_of sys k and i = queue_of sys k in
    let p_service =
      if Service_provider.is_active sp s && i >= 1 then
        1.0 -. exp (-.Service_provider.service_rate sp s *. slice)
      else 0.0
    in
    List.map
      (fun a ->
        let p_switch =
          if a = s then 0.0
          else 1.0 -. exp (-.Service_provider.switch_rate sp s a *. slice)
        in
        (* Independent composition of the three events — exactly the
           assumption the paper criticizes. *)
        let queue_outcomes =
          [
            (min q (i + 1) , p_arrival *. (1.0 -. p_service));
            (max 0 (i - 1), (1.0 -. p_arrival) *. p_service);
            (i, (p_arrival *. p_service) +. ((1.0 -. p_arrival) *. (1.0 -. p_service)));
          ]
        in
        let mode_outcomes = [ (a, p_switch); (s, 1.0 -. p_switch) ] in
        let probs =
          List.concat_map
            (fun (i', pq) ->
              List.map (fun (s', pm) -> (index sys s' i', pq *. pm)) mode_outcomes)
            queue_outcomes
        in
        let power =
          Sys_model.power_cost sys (Sys_model.Stable (s, i)) ~action:a
        in
        {
          Dtmdp.action = a;
          probs;
          cost = ((power +. (weight *. float_of_int i)) *. slice);
        })
      (slice_actions sys s i)
  in
  { sys; slice; weight; model = Dtmdp.create ~num_states choices_of }

let slice t = t.slice
let num_states t = Dtmdp.num_states t.model
let solve t = Dtmdp.solve t.model

let gain_per_unit_time t (r : Dtmdp.result) = r.Dtmdp.gain /. t.slice

let predicted_metrics t (r : Dtmdp.result) =
  let p = Dtmdp.stationary_distribution t.model r.Dtmdp.policy in
  let power = ref 0.0 and waiting = ref 0.0 in
  Array.iteri
    (fun k pk ->
      let s = mode_of t.sys k and i = queue_of t.sys k in
      let a = (Dtmdp.choice t.model k r.Dtmdp.policy.(k)).Dtmdp.action in
      power :=
        !power +. (pk *. Sys_model.power_cost t.sys (Sys_model.Stable (s, i)) ~action:a);
      waiting := !waiting +. (pk *. float_of_int i))
    p;
  (!power, !waiting)

let action_of t (r : Dtmdp.result) ~mode ~queue =
  let q = Sys_model.queue_capacity t.sys in
  let queue = max 0 (min queue q) in
  (Dtmdp.choice t.model (index t.sys mode queue) r.Dtmdp.policy.(index t.sys mode queue)).Dtmdp.action
