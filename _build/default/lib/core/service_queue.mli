(** The Service Queue (SQ) — Section III of the paper.

    An M/M/1/Q-style queue extended with {e transfer states}: when a
    service completes, the SQ enters [q_{i -> i-1}] and stays there
    while the SP performs its (possibly instantaneous) mode switch;
    it leaves to the stable state [q_{i-1}] exactly when the switch
    completes.  A request arriving to a full queue is lost.

    This module models the SQ {e conditioned on} a fixed SP mode [s]
    and PM action [a]; the four transition families of Section III:

    + [q_i -> q_{i+1}] at the arrival rate [lambda] (i < Q);
    + [q_i -> q_{i -> i-1}] at the service rate [mu(s)] (i >= 1);
    + [q_{i -> i-1} -> q_{i-1}] at the switching rate [chi(s, s')]
      where [s'] is the destination of [a];
    + [q_{i -> i-1} -> q_{i+1 -> i}] at [lambda] (i < Q).

    The state indexing is [q_i <-> i] for [0 <= i <= Q] and
    [q_{i -> i-1} <-> Q + i] for [1 <= i <= Q] ([dim = 2Q + 1]). *)

open Dpm_linalg

type state =
  | Stable of int  (** [q_i]: [i] requests queued, [0 <= i <= Q] *)
  | Transfer of int
      (** [q_{i -> i-1}]: a service just completed with [i] requests
          present; [1 <= i <= Q] *)

val dim : capacity:int -> int
(** [dim ~capacity] is [2 * capacity + 1]. *)

val index : capacity:int -> state -> int
(** Flat index of a state; raises [Invalid_argument] out of range. *)

val state_of_index : capacity:int -> int -> state
(** Inverse of {!index}. *)

val waiting_requests : state -> int
(** The paper's delay cost [C_sq]: [i] for [q_i], [i - 1] for
    [q_{i -> i-1}] (the departing request no longer waits). *)

val generator :
  capacity:int ->
  arrival_rate:float ->
  service_rate:float ->
  switch_out_rate:float ->
  Dpm_ctmc.Generator.t
(** [generator ~capacity ~arrival_rate ~service_rate ~switch_out_rate]
    is [G_SQ(s, a)] for the conditioning mode/action: [service_rate]
    is [mu(s)] ([0.] for an inactive mode, removing family (2)), and
    [switch_out_rate] is the rate at which transfer states resolve
    (the [chi(s, s')] of the commanded switch, or the big-M
    self-switch rate).  Raises [Invalid_argument] on nonpositive
    [capacity] or negative rates. *)

val blocks :
  capacity:int ->
  arrival_rate:float ->
  service_rate:float ->
  switch_out_rate:float ->
  Matrix.t * Matrix.t * Matrix.t * Matrix.t
(** [blocks ...] is [(ss, st, ts, tt)] — the four blocks of
    [G_SQ(s,a)] split by stable/transfer as in Section III
    ([G_SQ^SS] is [(Q+1) x (Q+1)], [G_SQ^ST] is [(Q+1) x Q],
    [G_SQ^TS] is [Q x (Q+1)], [G_SQ^TT] is [Q x Q]).  Diagonals carry
    the negated row sums of the {e whole} generator, so reassembling
    the blocks gives exactly {!generator}'s matrix. *)

val to_dot :
  capacity:int ->
  arrival_rate:float ->
  service_rate:float ->
  switch_out_rate:float ->
  string
(** DOT rendering — regenerates Figure 2 of the paper. *)
