open Dpm_ctmc

type t = {
  names : string array;
  switch_time : float array array; (* mean s -> s' switching time, s <> s' *)
  service_rate : float array;
  power : float array;
  switch_energy : float array array;
}

let check_square name s m =
  if Array.length m <> s then
    invalid_arg (Printf.sprintf "Service_provider: %s has %d rows, expected %d" name (Array.length m) s);
  Array.iteri
    (fun i row ->
      if Array.length row <> s then
        invalid_arg
          (Printf.sprintf "Service_provider: %s row %d has %d columns, expected %d"
             name i (Array.length row) s))
    m

let create ~names ~switch_time ~service_rate ~power ~switch_energy =
  let s = Array.length names in
  if s < 2 then invalid_arg "Service_provider.create: need at least 2 modes";
  Array.iter
    (fun n -> if n = "" then invalid_arg "Service_provider.create: empty mode name")
    names;
  let sorted = List.sort_uniq compare (Array.to_list names) in
  if List.length sorted <> s then
    invalid_arg "Service_provider.create: duplicate mode names";
  check_square "switch_time" s switch_time;
  check_square "switch_energy" s switch_energy;
  if Array.length service_rate <> s then
    invalid_arg "Service_provider.create: service_rate length mismatch";
  if Array.length power <> s then
    invalid_arg "Service_provider.create: power length mismatch";
  for i = 0 to s - 1 do
    for j = 0 to s - 1 do
      if i <> j then begin
        let t = switch_time.(i).(j) in
        if not (t > 0.0 && Float.is_finite t) then
          invalid_arg
            (Printf.sprintf
               "Service_provider.create: switch_time %s->%s is %g, must be > 0"
               names.(i) names.(j) t);
        let e = switch_energy.(i).(j) in
        if e < 0.0 || not (Float.is_finite e) then
          invalid_arg
            (Printf.sprintf
               "Service_provider.create: switch_energy %s->%s is %g, must be >= 0"
               names.(i) names.(j) e)
      end
    done
  done;
  Array.iteri
    (fun i mu ->
      if mu < 0.0 || not (Float.is_finite mu) then
        invalid_arg
          (Printf.sprintf "Service_provider.create: service rate of %s is %g"
             names.(i) mu))
    service_rate;
  if not (Array.exists (fun mu -> mu > 0.0) service_rate) then
    invalid_arg "Service_provider.create: no active mode (all service rates 0)";
  Array.iteri
    (fun i p ->
      if p < 0.0 || not (Float.is_finite p) then
        invalid_arg
          (Printf.sprintf "Service_provider.create: power of %s is %g" names.(i) p))
    power;
  {
    names = Array.copy names;
    switch_time = Array.map Array.copy switch_time;
    service_rate = Array.copy service_rate;
    power = Array.copy power;
    switch_energy = Array.map Array.copy switch_energy;
  }

let num_modes sp = Array.length sp.names

let check_mode sp s =
  if s < 0 || s >= num_modes sp then
    invalid_arg (Printf.sprintf "Service_provider: mode %d out of range" s)

let name sp s =
  check_mode sp s;
  sp.names.(s)

let mode_of_name sp n =
  let rec scan i =
    if i >= num_modes sp then raise Not_found
    else if sp.names.(i) = n then i
    else scan (i + 1)
  in
  scan 0

let is_active sp s =
  check_mode sp s;
  sp.service_rate.(s) > 0.0

let modes_where sp pred =
  List.filter (pred sp) (List.init (num_modes sp) (fun s -> s))

let active_modes sp = modes_where sp is_active
let inactive_modes sp = modes_where sp (fun sp s -> not (is_active sp s))

let service_rate sp s =
  check_mode sp s;
  sp.service_rate.(s)

let power sp s =
  check_mode sp s;
  sp.power.(s)

let switch_time sp s s' =
  check_mode sp s;
  check_mode sp s';
  if s = s' then invalid_arg "Service_provider.switch_time: s = s'";
  sp.switch_time.(s).(s')

let switch_rate sp s s' = 1.0 /. switch_time sp s s'

let switch_energy sp s s' =
  check_mode sp s;
  check_mode sp s';
  if s = s' then 0.0 else sp.switch_energy.(s).(s')

let wakeup_time sp s =
  check_mode sp s;
  if is_active sp s then 0.0
  else
    List.fold_left
      (fun acc a -> Float.min acc sp.switch_time.(s).(a))
      infinity (active_modes sp)

let fastest_active sp =
  let best = ref (-1) in
  for s = num_modes sp - 1 downto 0 do
    if is_active sp s && (!best < 0 || sp.service_rate.(s) >= sp.service_rate.(!best))
    then best := s
  done;
  !best

let deepest_sleep sp =
  match
    List.fold_left
      (fun acc s ->
        match acc with
        | Some best when sp.power.(best) <= sp.power.(s) -> acc
        | _ -> Some s)
      None (inactive_modes sp)
  with
  | Some s -> s
  | None -> raise Not_found

let generator sp ~action_of =
  let s = num_modes sp in
  let rates = ref [] in
  for i = 0 to s - 1 do
    let a = action_of i in
    check_mode sp a;
    if a <> i then rates := (i, a, switch_rate sp i a) :: !rates
  done;
  Generator.of_rates ~dim:s !rates

let to_dot sp ~action_of =
  Dot.of_generator ~name:"service_provider"
    ~state_label:(fun s -> sp.names.(s))
    ~rate_label:(fun _ _ r -> Printf.sprintf "%g" r)
    (generator sp ~action_of)

let pp ppf sp =
  Format.fprintf ppf "@[<v>";
  for s = 0 to num_modes sp - 1 do
    Format.fprintf ppf "%-10s mu=%-8g pow=%-8g %s@," sp.names.(s)
      sp.service_rate.(s) sp.power.(s)
      (if is_active sp s then "active" else "inactive")
  done;
  Format.fprintf ppf "@]"
