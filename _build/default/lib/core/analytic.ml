open Dpm_linalg
open Dpm_ctmc

type metrics = {
  power : float;
  avg_waiting_requests : float;
  throughput : float;
  loss_rate : float;
  loss_probability : float;
  avg_waiting_time : float;
  avg_waiting_time_paper : float;
  mode_residency : float array;
  state_probabilities : Vec.t;
}

(* Common metric extraction: any closed-loop generator over the SYS
   state space plus a per-state power rate. *)
let of_generator sys ~gen ~power_of_index =
  let p = Steady_state.solve gen in
  let sp = Sys_model.sp sys in
  let lam = Sys_model.arrival_rate sys in
  let states = Sys_model.states sys in
  let expect f =
    let acc = ref 0.0 in
    Array.iteri (fun k x -> acc := !acc +. (p.(k) *. f x)) states;
    !acc
  in
  let power =
    let acc = ref 0.0 in
    Array.iteri (fun k pk -> acc := !acc +. (pk *. power_of_index k)) p;
    !acc
  in
  let avg_waiting_requests =
    expect (fun x -> float_of_int (Sys_model.waiting_requests x))
  in
  let loss_probability =
    expect (fun x -> if Sys_model.is_queue_full sys x then 1.0 else 0.0)
  in
  let loss_rate = lam *. loss_probability in
  let throughput =
    expect (fun x ->
        match x with
        | Sys_model.Stable (s, i) when i >= 1 -> Service_provider.service_rate sp s
        | Sys_model.Stable _ | Sys_model.Transfer _ -> 0.0)
  in
  let accepted = lam -. loss_rate in
  let avg_waiting_time =
    if accepted > 0.0 then avg_waiting_requests /. accepted else Float.nan
  in
  let avg_waiting_time_paper = avg_waiting_requests /. lam in
  let mode_residency = Array.make (Service_provider.num_modes sp) 0.0 in
  Array.iteri
    (fun k x -> mode_residency.(Sys_model.mode x) <- mode_residency.(Sys_model.mode x) +. p.(k))
    states;
  {
    power;
    avg_waiting_requests;
    throughput;
    loss_rate;
    loss_probability;
    avg_waiting_time;
    avg_waiting_time_paper;
    mode_residency;
    state_probabilities = p;
  }

let of_actions sys ~actions =
  let g = Sys_model.generator_of_actions sys ~actions in
  of_generator sys ~gen:g ~power_of_index:(fun k ->
      let x = Sys_model.state_of_index sys k in
      Sys_model.power_cost sys x ~action:(actions x))

let of_mixed sys ~gen ~power_rates =
  if Dpm_linalg.Vec.dim power_rates <> Sys_model.num_states sys then
    invalid_arg "Analytic.of_mixed: power vector dimension mismatch";
  of_generator sys ~gen ~power_of_index:(fun k -> power_rates.(k))

let of_action_array sys actions =
  if Array.length actions <> Sys_model.num_states sys then
    invalid_arg "Analytic.of_action_array: dimension mismatch";
  of_actions sys ~actions:(fun x -> actions.(Sys_model.index sys x))

let energy_per_request m =
  if m.throughput > 0.0 then m.power /. m.throughput else Float.nan

let pp ppf m =
  Format.fprintf ppf
    "power=%.4g W, waiting=%.4g req, wait=%.4g s, loss=%.3g%%, throughput=%.4g/s"
    m.power m.avg_waiting_requests m.avg_waiting_time
    (100.0 *. m.loss_probability)
    m.throughput
