let mode_name sys s = Service_provider.name (Sys_model.sp sys) s

let table sys policy =
  let sp = Sys_model.sp sys in
  let q = Sys_model.queue_capacity sys in
  let buf = Buffer.create 1024 in
  let pad width s =
    if String.length s >= width then s else s ^ String.make (width - String.length s) ' '
  in
  let width =
    2
    + Array.fold_left
        (fun acc name -> max acc (String.length name))
        6
        (Array.init (Service_provider.num_modes sp) (Service_provider.name sp))
  in
  Buffer.add_string buf (pad width "state");
  for i = 0 to q do
    Buffer.add_string buf (pad width (Printf.sprintf "q%d" i))
  done;
  Buffer.add_char buf '\n';
  for s = 0 to Service_provider.num_modes sp - 1 do
    Buffer.add_string buf (pad width (mode_name sys s));
    for i = 0 to q do
      Buffer.add_string buf
        (pad width (mode_name sys (policy (Sys_model.Stable (s, i)))))
    done;
    Buffer.add_char buf '\n'
  done;
  List.iter
    (fun s ->
      Buffer.add_string buf (pad width (mode_name sys s ^ ">"));
      Buffer.add_string buf (pad width "-");
      for i = 1 to q do
        Buffer.add_string buf
          (pad width (mode_name sys (policy (Sys_model.Transfer (s, i)))))
      done;
      Buffer.add_char buf '\n')
    (Service_provider.active_modes sp);
  Buffer.contents buf

let to_csv sys policy =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "state_kind,mode,queue,command\n";
  Array.iter
    (fun x ->
      let kind, s, i =
        match x with
        | Sys_model.Stable (s, i) -> ("stable", s, i)
        | Sys_model.Transfer (s, i) -> ("transfer", s, i)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%d,%s\n" kind (mode_name sys s) i
           (mode_name sys (policy x))))
    (Sys_model.states sys);
  Buffer.contents buf

let to_dot sys policy =
  let g = Sys_model.generator_of_actions sys ~actions:policy in
  Dpm_ctmc.Dot.of_generator ~name:"closed_loop"
    ~state_label:(fun k ->
      Format.asprintf "%a" (Sys_model.pp_state sys) (Sys_model.state_of_index sys k))
    g

let diff sys a b =
  Array.to_list (Sys_model.states sys)
  |> List.filter_map (fun x ->
         let ca = a x and cb = b x in
         if ca <> cb then Some (x, ca, cb) else None)

let agreement sys a b =
  let n = Sys_model.num_states sys in
  let same = n - List.length (diff sys a b) in
  float_of_int same /. float_of_int n
