open Dpm_linalg
open Dpm_ctmc

type state = Stable of int | Transfer of int

let check_capacity capacity =
  if capacity <= 0 then
    invalid_arg "Service_queue: capacity must be at least 1"

let dim ~capacity =
  check_capacity capacity;
  (2 * capacity) + 1

let index ~capacity = function
  | Stable i ->
      check_capacity capacity;
      if i < 0 || i > capacity then
        invalid_arg (Printf.sprintf "Service_queue: stable state q_%d out of range" i);
      i
  | Transfer i ->
      check_capacity capacity;
      if i < 1 || i > capacity then
        invalid_arg
          (Printf.sprintf "Service_queue: transfer state q_{%d->%d} out of range" i
             (i - 1));
      capacity + i

let state_of_index ~capacity k =
  check_capacity capacity;
  if k < 0 || k >= dim ~capacity then
    invalid_arg (Printf.sprintf "Service_queue: index %d out of range" k);
  if k <= capacity then Stable k else Transfer (k - capacity)

let waiting_requests = function
  | Stable i -> i
  | Transfer i -> i - 1

let check_rates ~arrival_rate ~service_rate ~switch_out_rate =
  if arrival_rate < 0.0 || not (Float.is_finite arrival_rate) then
    invalid_arg "Service_queue: invalid arrival rate";
  if service_rate < 0.0 || not (Float.is_finite service_rate) then
    invalid_arg "Service_queue: invalid service rate";
  if switch_out_rate < 0.0 || not (Float.is_finite switch_out_rate) then
    invalid_arg "Service_queue: invalid switch-out rate"

let rate_list ~capacity ~arrival_rate ~service_rate ~switch_out_rate =
  check_capacity capacity;
  check_rates ~arrival_rate ~service_rate ~switch_out_rate;
  let idx = index ~capacity in
  let rates = ref [] in
  let push i j r = if r > 0.0 then rates := (i, j, r) :: !rates in
  for i = 0 to capacity do
    (* (1) arrivals between stable states *)
    if i < capacity then push (idx (Stable i)) (idx (Stable (i + 1))) arrival_rate;
    (* (2) service completion into the transfer state *)
    if i >= 1 then push (idx (Stable i)) (idx (Transfer i)) service_rate
  done;
  for i = 1 to capacity do
    (* (3) switch completion resolves the transfer *)
    push (idx (Transfer i)) (idx (Stable (i - 1))) switch_out_rate;
    (* (4) arrivals between transfer states *)
    if i < capacity then push (idx (Transfer i)) (idx (Transfer (i + 1))) arrival_rate
  done;
  !rates

let generator ~capacity ~arrival_rate ~service_rate ~switch_out_rate =
  Generator.of_rates ~dim:(dim ~capacity)
    (rate_list ~capacity ~arrival_rate ~service_rate ~switch_out_rate)

let blocks ~capacity ~arrival_rate ~service_rate ~switch_out_rate =
  let g = generator ~capacity ~arrival_rate ~service_rate ~switch_out_rate in
  let q = capacity in
  let full = Generator.to_matrix g in
  let ss = Matrix.init (q + 1) (q + 1) (fun i j -> Matrix.get full i j) in
  let st = Matrix.init (q + 1) q (fun i j -> Matrix.get full i (q + 1 + j)) in
  let ts = Matrix.init q (q + 1) (fun i j -> Matrix.get full (q + 1 + i) j) in
  let tt = Matrix.init q q (fun i j -> Matrix.get full (q + 1 + i) (q + 1 + j)) in
  (ss, st, ts, tt)

let to_dot ~capacity ~arrival_rate ~service_rate ~switch_out_rate =
  let g = generator ~capacity ~arrival_rate ~service_rate ~switch_out_rate in
  Dot.of_generator ~name:"service_queue"
    ~state_label:(fun k ->
      match state_of_index ~capacity k with
      | Stable i -> Printf.sprintf "q%d" i
      | Transfer i -> Printf.sprintf "q%d>%d" i (i - 1))
    g
