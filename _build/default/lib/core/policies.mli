(** Named policy families (Section V's comparison baselines).

    A policy here is a plain function [Sys_model.state -> int] giving
    the commanded mode; {!to_ctmdp_policy} converts it to a solver
    policy when an evaluation against a {!Dpm_ctmdp.Model} is needed.

    The {e time-out} family of Section V is deliberately absent: a
    time-out decision depends on how long the SP has been idle, which
    is not a function of the SYS state, so it is not a stationary
    Markov policy in this state space.  Time-outs live in the
    simulator ({!Dpm_sim.Controller.timeout}) only. *)

val always_on : Sys_model.t -> Sys_model.state -> int
(** Never power down: inactive modes are told to wake to the fastest
    active mode; active modes hold. *)

val greedy : ?sleep_mode:int -> ?active_mode:int -> Sys_model.t -> Sys_model.state -> int
(** Section V's greedy baseline: deactivate the instant the system
    empties (the transfer state that leaves the queue empty commands
    [sleep_mode], default {!Service_provider.deepest_sleep}), activate
    the instant a request waits ([active_mode], default
    {!Service_provider.fastest_active}). *)

val n_policy :
  ?sleep_mode:int -> ?active_mode:int -> Sys_model.t -> n:int -> Sys_model.state -> int
(** The N-policy of Heyman [12] (Section V): deactivate when the
    system empties; activate when [n] requests wait.  [n] is clamped
    to [[1, Q]] ([q_Q] forces a wake-up by constraint (2) anyway).
    Serves exhaustively while active. *)

val actions_array : Sys_model.t -> (Sys_model.state -> int) -> int array
(** Tabulate a policy over the state space, indexed by state index. *)

val check_valid : Sys_model.t -> (Sys_model.state -> int) -> (unit, string) result
(** Check the policy respects every state's
    {!Sys_model.valid_actions}; [Error] names the first offending
    state. *)

val to_ctmdp_policy :
  Sys_model.t -> Dpm_ctmdp.Model.t -> (Sys_model.state -> int) -> Dpm_ctmdp.Policy.t
(** Resolve the policy's action labels against a model built by
    {!Sys_model.to_ctmdp} (any weight).  Raises [Invalid_argument] if
    the policy commands an action outside a state's valid set. *)
