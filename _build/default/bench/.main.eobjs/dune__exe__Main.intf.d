bench/main.mli:
