bench/ablations.ml: Analytic Dpm_core Dpm_ctmc Dpm_ctmdp Dpm_linalg Float Iterative List Matrix Optimize Paper_instance Policies Printf Steady_state String Sys_model Unix Vec
