bench/experiments.ml: Analytic Array Controller Dpm_core Dpm_sim Float Format Hashtbl List Optimize Paper_instance Policies Power_sim Printf Service_provider String Summary Sys_model Workload
