bench/extensions.ml: Analytic Array Controller Discrete_baseline Dpm_core Dpm_ctmdp Dpm_sim Float List Optimize Paper_instance Power_sim Printf String Sys_model Workload
