(* Extension experiments beyond the paper's own tables: quantify the
   introduction's criticisms of the discrete-time baseline [11]. *)

open Dpm_core
open Dpm_sim

let line = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* EXT1: continuous-time (asynchronous) vs discrete-time (per-slice)
   power management.  Three axes, all from the paper's introduction:
   (a) objective achieved, (b) model prediction accuracy, (c) PM
   signal traffic and its energy overhead. *)

let ext1 () =
  header
    "EXT1  CTMDP policy vs the discrete-time baseline of [11]\n\
     (weight w = 1; 50,000 requests; decision overhead swept)";
  let sys = Paper_instance.system () in
  let weight = 1.0 in
  let requests = Paper_instance.num_requests in
  let run ?(decision_energy = 0.0) controller =
    Power_sim.run ~seed:77L ~sys ~decision_energy
      ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate sys))
      ~controller ~stop:(Power_sim.Requests requests) ()
  in
  let ct_sol = Optimize.solve ~weight sys in
  let entries =
    ( "ctmdp (async)",
      (fun () -> Controller.of_solution sys ct_sol),
      ct_sol.Optimize.metrics.Analytic.power )
    :: List.map
         (fun slice ->
           let dt = Discrete_baseline.build sys ~slice ~weight in
           let rdt = Discrete_baseline.solve dt in
           let predicted, _ = Discrete_baseline.predicted_metrics dt rdt in
           ( Printf.sprintf "dtmdp L=%.2gs" slice,
             (fun () ->
               Controller.periodic ~period:slice ~decide:(fun ~mode ~queue ->
                   Discrete_baseline.action_of dt rdt ~mode ~queue)),
             predicted ))
         [ 1.0; 0.5; 0.1 ]
  in
  Printf.printf "%-16s %8s | %9s %9s %7s | %9s %9s | %10s\n" "policy" "eps(J)"
    "power(W)" "wait(req)" "loss%" "P_model" "err%" "decisions";
  List.iter
    (fun (name, make_ctl, predicted) ->
      List.iter
        (fun eps ->
          let r = run ~decision_energy:eps (make_ctl ()) in
          Printf.printf "%-16s %8g | %9.3f %9.4f %6.2f%% | %9.3f %+8.2f%% | %10d\n"
            name eps r.Power_sim.avg_power r.Power_sim.avg_waiting_requests
            (100.0 *. r.Power_sim.loss_probability)
            predicted
            ((predicted -. r.Power_sim.avg_power) /. r.Power_sim.avg_power *. 100.0)
            r.Power_sim.controller_decisions)
        [ 0.0; 0.01 ];
      Printf.printf "%s\n" (String.make 70 '.'))
    entries;
  Printf.printf
    "notes: 'err%%' compares each model's own power prediction against its\n\
     simulated truth (criticisms 2-3 of [11]); 'decisions' is the PM signal\n\
     traffic (criticism 4); eps charges that traffic at 10 mJ per decision.\n"

(* ------------------------------------------------------------------ *)
(* EXT2: finite-horizon planning on a well-scaled model — the optimal
   policy becomes more aggressive as the horizon shrinks. *)

let ext2 () =
  header
    "EXT2  Finite-horizon CTMDP (Miller [8]): schedule vs horizon\n\
     (speed-control model; change points of the piecewise policy)";
  let m =
    Dpm_ctmdp.Model.create ~num_states:3 (fun i ->
        let arrivals = if i < 2 then [ (i + 1, 1.0) ] else [] in
        let serve rate = if i > 0 then [ (i - 1, rate) ] else [] in
        let hold = 3.0 *. float_of_int i in
        [
          { Dpm_ctmdp.Model.action = 0; rates = arrivals @ serve 1.5; cost = hold +. 1.0 };
          { Dpm_ctmdp.Model.action = 1; rates = arrivals @ serve 4.0; cost = hold +. 2.2 };
        ])
  in
  let pi = Dpm_ctmdp.Policy_iteration.solve m in
  Printf.printf "infinite-horizon optimal actions: %s (gain %.4f)\n"
    (String.concat ""
       (Array.to_list
          (Array.map string_of_int
             (Dpm_ctmdp.Policy.actions m pi.Dpm_ctmdp.Policy_iteration.policy))))
    pi.Dpm_ctmdp.Policy_iteration.gain;
  List.iter
    (fun horizon ->
      let r = Dpm_ctmdp.Finite_horizon.solve ~steps_per_mean:16 m ~horizon in
      Printf.printf "horizon %6.2f: v0=%8.4f, %d policy segments:" horizon
        (Dpm_ctmdp.Finite_horizon.value_at r ~state:0)
        (List.length r.Dpm_ctmdp.Finite_horizon.schedule);
      List.iter
        (fun (tt, p) ->
          Printf.printf " [%.2f: %s]" tt
            (String.concat ""
               (Array.to_list
                  (Array.map string_of_int (Dpm_ctmdp.Policy.actions m p)))))
        r.Dpm_ctmdp.Finite_horizon.schedule;
      print_newline ())
    [ 0.5; 2.0; 10.0 ]

(* ------------------------------------------------------------------ *)
(* EXT3: the paper's Section IV constrained problem solved exactly.
   Weight bisection only reaches deterministic policies on the lower
   convex hull of the power/delay frontier; the occupation-measure LP
   reaches every hull point by randomizing in (at most) one state.
   Where the deterministic frontier has a concave gap — rate 1/3 —
   the saving is dramatic.  The mixture is then realized in the
   simulator by time-sharing between the two adjacent deterministic
   policies. *)

let ext3 () =
  header
    "EXT3  Constrained optimum: weight bisection vs exact LP (Section IV)\n\
     (bound: average waiting <= 1 request, i.e. waiting time <= 1/lambda)";
  Printf.printf "%-8s | %10s %8s | %10s %8s %9s %6s\n" "rate" "bisect(W)"
    "L" "exactLP(W)" "L" "lambda*" "mixes";
  List.iter
    (fun rate ->
      let sys = Paper_instance.system_at ~arrival_rate:rate in
      match
        ( Optimize.constrained sys ~max_waiting_requests:1.0,
          Optimize.constrained_exact sys ~max_waiting_requests:1.0 )
      with
      | Some b, Some e ->
          Printf.printf "1/%-6.0f | %10.3f %8.4f | %10.3f %8.4f %9.3f %6d\n"
            (1.0 /. rate) b.Optimize.metrics.Analytic.power
            b.Optimize.metrics.Analytic.avg_waiting_requests
            e.Optimize.metrics.Analytic.power
            e.Optimize.metrics.Analytic.avg_waiting_requests
            e.Optimize.lagrange_multiplier
            (List.length e.Optimize.randomized_states)
      | _ -> Printf.printf "1/%-6.0f | infeasible\n" (1.0 /. rate))
    Paper_instance.sweep_rates;
  (* Realize the rate-1/3 mixture by time-sharing the two hull
     policies (the sleepy optimum and always-on) and confirm by
     simulation. *)
  let rate = 1.0 /. 3.0 in
  let sys = Paper_instance.system_at ~arrival_rate:rate in
  match Optimize.constrained_exact sys ~max_waiting_requests:1.0 with
  | None -> ()
  | Some e ->
      (* The hull neighbours: the weighted optimum just below lambda*
         (sleepy) and just above (fast). *)
      let lam = e.Optimize.lagrange_multiplier in
      let sleepy = Optimize.solve ~weight:(0.98 *. lam) sys in
      let fast = Optimize.solve ~weight:(1.02 *. lam) sys in
      (* Mixing fraction from matching the waiting-request bound. *)
      let l_a = sleepy.Optimize.metrics.Analytic.avg_waiting_requests in
      let l_b = fast.Optimize.metrics.Analytic.avg_waiting_requests in
      let alpha =
        if Float.abs (l_a -. l_b) < 1e-9 then 1.0
        else Float.max 0.0 (Float.min 1.0 ((1.0 -. l_b) /. (l_a -. l_b)))
      in
      let ctl =
        Controller.time_shared ~period:5_000.0 ~fraction:alpha
          (Controller.of_solution sys sleepy)
          (Controller.of_solution sys fast)
      in
      let r =
        Power_sim.run ~seed:71L ~sys
          ~workload:(Workload.poisson ~rate)
          ~controller:ctl
          ~stop:(Power_sim.Requests 100_000)
          ()
      in
      Printf.printf
        "\nrate 1/3 realization: time-share %.2f of (%.2f W, L=%.3f) with \n\
        \ %.2f of (%.2f W, L=%.3f) -> simulated %.2f W, L=%.3f (LP predicted \n\
        \ %.2f W, L=%.3f; bisection needed %.2f W)\n"
        alpha sleepy.Optimize.metrics.Analytic.power l_a (1.0 -. alpha)
        fast.Optimize.metrics.Analytic.power l_b r.Power_sim.avg_power
        r.Power_sim.avg_waiting_requests e.Optimize.metrics.Analytic.power
        e.Optimize.metrics.Analytic.avg_waiting_requests
        (match Optimize.constrained sys ~max_waiting_requests:1.0 with
        | Some b -> b.Optimize.metrics.Analytic.power
        | None -> Float.nan)

let all () =
  ext1 ();
  ext2 ();
  ext3 ()
