open Dpm_core

let t = Alcotest.test_case

let sys () = Paper_instance.system ()

let regret_nonnegative_and_zero_on_diagonal () =
  let s = sys () in
  (* No mismatch: the design policy IS the optimal one. *)
  Test_util.check_close ~tol:1e-9 "zero at design rate" 0.0
    (Sensitivity.mismatch_regret s ~weight:1.0 ~design_rate:(1.0 /. 6.0)
       ~true_rate:(1.0 /. 6.0));
  List.iter
    (fun true_rate ->
      let r =
        Sensitivity.mismatch_regret s ~weight:1.0 ~design_rate:(1.0 /. 6.0)
          ~true_rate
      in
      if r < -1e-9 then
        Alcotest.failf "negative regret %g at rate %g" r true_rate)
    [ 1.0 /. 12.0; 1.0 /. 8.0; 1.0 /. 4.0; 1.0 /. 3.0 ]

let large_mismatch_hurts () =
  let s = sys () in
  let small =
    Sensitivity.mismatch_regret s ~weight:1.0 ~design_rate:(1.0 /. 6.0)
      ~true_rate:(1.05 /. 6.0)
  in
  let large =
    Sensitivity.mismatch_regret s ~weight:1.0 ~design_rate:(1.0 /. 6.0)
      ~true_rate:(1.0 /. 2.5)
  in
  Alcotest.(check bool)
    (Printf.sprintf "2.4x rate error (%.4f) costs more than 5%% error (%.4f)"
       large small)
    true (large > small)

let rate_sweep_shape () =
  let s = sys () in
  let sol = Optimize.solve ~weight:1.0 s in
  let rates = Paper_instance.sweep_rates in
  let points =
    Sensitivity.rate_sweep s ~actions:sol.Optimize.actions ~weight:1.0 ~rates
  in
  Alcotest.(check int) "one point per rate" (List.length rates)
    (List.length points);
  List.iter
    (fun p ->
      if p.Sensitivity.regret < -1e-9 then Alcotest.fail "negative regret";
      Alcotest.(check bool) "objective >= optimal" true
        (p.Sensitivity.objective >= p.Sensitivity.optimal_objective -. 1e-9))
    points;
  (* At the design rate itself the regret vanishes. *)
  let at_design =
    List.find (fun p -> Float.abs (p.Sensitivity.rate -. (1.0 /. 6.0)) < 1e-9) points
  in
  Test_util.check_close ~tol:1e-9 "zero regret at design rate" 0.0
    at_design.Sensitivity.regret

let rate_sweep_validation () =
  let s = sys () in
  Test_util.check_raises_invalid "wrong table size" (fun () ->
      ignore (Sensitivity.rate_sweep s ~actions:[| 0 |] ~weight:1.0 ~rates:[ 0.1 ]));
  let sol = Optimize.solve ~weight:1.0 s in
  Test_util.check_raises_invalid "bad rate" (fun () ->
      ignore
        (Sensitivity.rate_sweep s ~actions:sol.Optimize.actions ~weight:1.0
           ~rates:[ -1.0 ]))

let break_even_is_meaningful () =
  let s = sys () in
  let e =
    Sensitivity.break_even_estimation_error s ~weight:1.0
      ~design_rate:(1.0 /. 6.0) ~tolerance:0.05
  in
  (* A 0.05 W-equivalent tolerance should survive small estimation
     errors (the paper's 5%-after-50-events remark) but not arbitrary
     ones. *)
  Alcotest.(check bool)
    (Printf.sprintf "break-even error %.3f in a sane band" e)
    true
    (e > 0.02 && e <= 8.0);
  let tight =
    Sensitivity.break_even_estimation_error s ~weight:1.0
      ~design_rate:(1.0 /. 6.0) ~tolerance:0.005
  in
  Alcotest.(check bool) "tighter tolerance, smaller tolerated error" true
    (tight <= e +. 1e-9)

let suite =
  [
    t "regret sign/diagonal" `Quick regret_nonnegative_and_zero_on_diagonal;
    t "large mismatch hurts" `Quick large_mismatch_hurts;
    t "rate sweep" `Quick rate_sweep_shape;
    t "validation" `Quick rate_sweep_validation;
    t "break-even error" `Quick break_even_is_meaningful;
  ]
