open Dpm_ctmdp

let t = Alcotest.test_case

(* Two-state DTMDP: in state 0 choose to jump with probability 0.5
   (cheap) or 0.9 (expensive); state 1 returns with probability 1. *)
let toy () =
  Dtmdp.create ~num_states:2 (fun i ->
      if i = 0 then
        [
          { Dtmdp.action = 0; probs = [ (0, 0.5); (1, 0.5) ]; cost = 1.0 };
          { Dtmdp.action = 1; probs = [ (0, 0.1); (1, 0.9) ]; cost = 3.0 };
        ]
      else [ { Dtmdp.action = 0; probs = [ (0, 1.0) ]; cost = 0.0 } ])

let validation () =
  let bad f = Test_util.check_raises_invalid "invalid dtmdp" f in
  bad (fun () -> Dtmdp.create ~num_states:0 (fun _ -> []));
  bad (fun () ->
      Dtmdp.create ~num_states:1 (fun _ ->
          [ { Dtmdp.action = 0; probs = [ (0, 0.5) ]; cost = 0.0 } ]));
  bad (fun () ->
      Dtmdp.create ~num_states:1 (fun _ ->
          [ { Dtmdp.action = 0; probs = [ (0, 1.5); (0, -0.5) ]; cost = 0.0 } ]));
  bad (fun () ->
      Dtmdp.create ~num_states:2 (fun _ ->
          [ { Dtmdp.action = 0; probs = [ (5, 1.0) ]; cost = 0.0 } ]))

let duplicates_merged () =
  let m =
    Dtmdp.create ~num_states:2 (fun i ->
        if i = 0 then
          [ { Dtmdp.action = 0; probs = [ (1, 0.3); (1, 0.2); (0, 0.5) ]; cost = 0.0 } ]
        else [ { Dtmdp.action = 0; probs = [ (0, 1.0) ]; cost = 0.0 } ])
  in
  match (Dtmdp.choice m 0 0).Dtmdp.probs with
  | [ (0, half); (1, other) ] ->
      Test_util.check_close "self" 0.5 half;
      Test_util.check_close "merged" 0.5 other
  | _ -> Alcotest.fail "expected two merged entries"

let evaluation_hand_checked () =
  (* Fixed policy (action 0): chain P = [[.5 .5];[1 0]].
     Stationary: pi = (2/3, 1/3); gain = 2/3 * 1 = 2/3. *)
  let m = toy () in
  let p = Dtmdp.policy_of_actions m [| 0; 0 |] in
  let e = Dtmdp.evaluate m p in
  Test_util.check_close ~tol:1e-10 "gain" (2.0 /. 3.0) e.Dtmdp.gain;
  let pi = Dtmdp.stationary_distribution m p in
  Test_util.check_vec ~tol:1e-10 "stationary" [| 2.0 /. 3.0; 1.0 /. 3.0 |] pi

let solve_picks_cheaper_action () =
  (* Action 1 costs 3 per slice to avoid... nothing worth avoiding:
     staying with action 0 is plainly cheaper. *)
  let m = toy () in
  let r = Dtmdp.solve m in
  Alcotest.(check (array int)) "optimal actions" [| 0; 0 |]
    (Dtmdp.actions_of_policy m r.Dtmdp.policy);
  Test_util.check_close ~tol:1e-10 "optimal gain" (2.0 /. 3.0) r.Dtmdp.gain

let solve_brute_force_small () =
  (* Randomized 3-state models: PI must match exhaustive search. *)
  let rng = Test_util.rng () in
  for _ = 1 to 30 do
    let rand_row () =
      let a = Dpm_prob.Rng.float rng +. 0.1 in
      let b = Dpm_prob.Rng.float rng +. 0.1 in
      let c = Dpm_prob.Rng.float rng +. 0.1 in
      let z = a +. b +. c in
      [ (0, a /. z); (1, b /. z); (2, c /. z) ]
    in
    let m =
      Dtmdp.create ~num_states:3 (fun _ ->
          [
            { Dtmdp.action = 0; probs = rand_row (); cost = Dpm_prob.Rng.float rng *. 5.0 };
            { Dtmdp.action = 1; probs = rand_row (); cost = Dpm_prob.Rng.float rng *. 5.0 };
          ])
    in
    let r = Dtmdp.solve m in
    (* Exhaustive: 2^3 policies. *)
    let best = ref infinity in
    for a0 = 0 to 1 do
      for a1 = 0 to 1 do
        for a2 = 0 to 1 do
          let e = Dtmdp.evaluate m [| a0; a1; a2 |] in
          if e.Dtmdp.gain < !best then best := e.Dtmdp.gain
        done
      done
    done;
    Test_util.check_close ~tol:1e-8 "matches brute force" !best r.Dtmdp.gain
  done

let discretized_ctmc_gain_converges () =
  (* Discretizing a 2-state CTMC with slice L: the DT gain per unit
     time approaches the CT average cost as L -> 0. *)
  let lam = 1.0 and mu = 3.0 in
  let ct_gain =
    (* pi = (0.75, 0.25); costs 4, 8 -> 5. *)
    5.0
  in
  List.iter
    (fun slice ->
      let p01 = 1.0 -. exp (-.lam *. slice) in
      let p10 = 1.0 -. exp (-.mu *. slice) in
      let m =
        Dtmdp.create ~num_states:2 (fun i ->
            if i = 0 then
              [ { Dtmdp.action = 0; probs = [ (0, 1.0 -. p01); (1, p01) ]; cost = 4.0 *. slice } ]
            else
              [ { Dtmdp.action = 0; probs = [ (1, 1.0 -. p10); (0, p10) ]; cost = 8.0 *. slice } ])
      in
      let e = Dtmdp.evaluate m [| 0; 0 |] in
      let tolerance = 0.8 *. slice (* first-order discretization error *) in
      if Float.abs ((e.Dtmdp.gain /. slice) -. ct_gain) > tolerance +. 0.02 then
        Alcotest.failf "slice %g: DT gain %g vs CT %g" slice (e.Dtmdp.gain /. slice)
          ct_gain)
    [ 0.5; 0.1; 0.02 ]

let suite =
  [
    t "validation" `Quick validation;
    t "duplicates merged" `Quick duplicates_merged;
    t "evaluation hand-checked" `Quick evaluation_hand_checked;
    t "solve picks cheaper" `Quick solve_picks_cheaper_action;
    t "solve matches brute force" `Quick solve_brute_force_small;
    t "discretization converges" `Quick discretized_ctmc_gain_converges;
  ]
