open Dpm_core

let t = Alcotest.test_case

let sp () = Paper_instance.service_provider ()

let paper_instance_shape () =
  let sp = sp () in
  Alcotest.(check int) "modes" 3 (Service_provider.num_modes sp);
  Alcotest.(check string) "name" "waiting" (Service_provider.name sp 1);
  Alcotest.(check int) "resolve name" 2 (Service_provider.mode_of_name sp "sleeping");
  Alcotest.(check bool) "active is active" true
    (Service_provider.is_active sp Paper_instance.active);
  Alcotest.(check bool) "sleeping is inactive" false
    (Service_provider.is_active sp Paper_instance.sleeping);
  Alcotest.(check (list int)) "active set" [ 0 ] (Service_provider.active_modes sp);
  Alcotest.(check (list int)) "inactive set" [ 1; 2 ]
    (Service_provider.inactive_modes sp)

let paper_numbers () =
  let sp = sp () in
  Test_util.check_close "mu" (1.0 /. 1.5) (Service_provider.service_rate sp 0);
  Test_util.check_close "active power" 40.0 (Service_provider.power sp 0);
  Test_util.check_close "sleep power" 0.1 (Service_provider.power sp 2);
  Test_util.check_close "switch time W->S" 0.1 (Service_provider.switch_time sp 1 2);
  Test_util.check_close "switch rate S->A" (1.0 /. 1.1)
    (Service_provider.switch_rate sp 2 0);
  Test_util.check_close "energy S->A" 11.0 (Service_provider.switch_energy sp 2 0);
  Test_util.check_close "energy S->W" 25.0 (Service_provider.switch_energy sp 2 1);
  Test_util.check_close "self energy zero" 0.0 (Service_provider.switch_energy sp 1 1)

let derived_quantities () =
  let sp = sp () in
  Test_util.check_close "wakeup of waiting" 0.5 (Service_provider.wakeup_time sp 1);
  Test_util.check_close "wakeup of sleeping" 1.1 (Service_provider.wakeup_time sp 2);
  Test_util.check_close "wakeup of active" 0.0 (Service_provider.wakeup_time sp 0);
  Alcotest.(check int) "fastest active" 0 (Service_provider.fastest_active sp);
  Alcotest.(check int) "deepest sleep" 2 (Service_provider.deepest_sleep sp)

let generator_under_command_map () =
  let sp = sp () in
  (* Example 4.1's policy: A -> wait, W -> sleep, S -> wakeup. *)
  let action_of = function 0 -> 1 | 1 -> 2 | _ -> 0 in
  let g = Service_provider.generator sp ~action_of in
  Test_util.check_close "A->W rate" 10.0 (Dpm_ctmc.Generator.get g 0 1);
  Test_util.check_close "W->S rate" 10.0 (Dpm_ctmc.Generator.get g 1 2);
  Test_util.check_close "S->A rate" (1.0 /. 1.1) (Dpm_ctmc.Generator.get g 2 0);
  Test_util.check_close "no other edge" 0.0 (Dpm_ctmc.Generator.get g 0 2);
  Alcotest.(check bool) "irreducible under this policy" true
    (Dpm_ctmc.Structure.is_irreducible g)

let dot_mentions_mode_names () =
  let sp = sp () in
  let s = Service_provider.to_dot sp ~action_of:(fun _ -> 0) in
  List.iter
    (fun name ->
      let contains =
        let rec scan i =
          if i + String.length name > String.length s then false
          else if String.sub s i (String.length name) = name then true
          else scan (i + 1)
        in
        scan 0
      in
      Alcotest.(check bool) (name ^ " appears") true contains)
    [ "active"; "waiting"; "sleeping" ]

let validation () =
  let bad f = Test_util.check_raises_invalid "invalid sp" f in
  let names = [| "a"; "b" |] in
  let time = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let ene = [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  (* one mode *)
  bad (fun () ->
      ignore
        (Service_provider.create ~names:[| "x" |] ~switch_time:[| [| 0.0 |] |]
           ~service_rate:[| 1.0 |] ~power:[| 1.0 |] ~switch_energy:[| [| 0.0 |] |]));
  (* duplicate names *)
  bad (fun () ->
      ignore
        (Service_provider.create ~names:[| "a"; "a" |] ~switch_time:time
           ~service_rate:[| 1.0; 0.0 |] ~power:[| 1.0; 0.0 |] ~switch_energy:ene));
  (* zero switch time *)
  bad (fun () ->
      ignore
        (Service_provider.create ~names
           ~switch_time:[| [| 0.0; 0.0 |]; [| 1.0; 0.0 |] |]
           ~service_rate:[| 1.0; 0.0 |] ~power:[| 1.0; 0.0 |] ~switch_energy:ene));
  (* all modes inactive *)
  bad (fun () ->
      ignore
        (Service_provider.create ~names ~switch_time:time
           ~service_rate:[| 0.0; 0.0 |] ~power:[| 1.0; 0.0 |] ~switch_energy:ene));
  (* negative power *)
  bad (fun () ->
      ignore
        (Service_provider.create ~names ~switch_time:time
           ~service_rate:[| 1.0; 0.0 |] ~power:[| -1.0; 0.0 |] ~switch_energy:ene));
  (* negative energy *)
  bad (fun () ->
      ignore
        (Service_provider.create ~names ~switch_time:time
           ~service_rate:[| 1.0; 0.0 |] ~power:[| 1.0; 0.0 |]
           ~switch_energy:[| [| 0.0; -0.5 |]; [| 0.0; 0.0 |] |]))

let immutability () =
  let names = [| "a"; "b" |] in
  let time = [| [| 0.0; 1.0 |]; [| 2.0; 0.0 |] |] in
  let ene = [| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |] in
  let sp =
    Service_provider.create ~names ~switch_time:time ~service_rate:[| 1.0; 0.0 |]
      ~power:[| 1.0; 0.0 |] ~switch_energy:ene
  in
  time.(0).(1) <- 99.0;
  names.(0) <- "mutated";
  Test_util.check_close "switch time copied" 1.0 (Service_provider.switch_time sp 0 1);
  Alcotest.(check string) "names copied" "a" (Service_provider.name sp 0)

let multi_speed_provider () =
  (* Two active speeds: fastest_active must pick the higher mu. *)
  let sp =
    Service_provider.create
      ~names:[| "slow"; "fast"; "off" |]
      ~switch_time:[| [| 0.0; 0.2; 0.3 |]; [| 0.2; 0.0; 0.3 |]; [| 1.0; 1.5; 0.0 |] |]
      ~service_rate:[| 0.5; 2.0; 0.0 |]
      ~power:[| 10.0; 30.0; 0.2 |]
      ~switch_energy:[| [| 0.0; 1.0; 1.0 |]; [| 1.0; 0.0; 1.0 |]; [| 5.0; 8.0; 0.0 |] |]
  in
  Alcotest.(check int) "fastest" 1 (Service_provider.fastest_active sp);
  Alcotest.(check (list int)) "two active" [ 0; 1 ] (Service_provider.active_modes sp);
  Test_util.check_close "wakeup of off = min over active" 1.0
    (Service_provider.wakeup_time sp 2)

let suite =
  [
    t "paper instance shape" `Quick paper_instance_shape;
    t "paper numbers (Eqn 4.1)" `Quick paper_numbers;
    t "derived quantities" `Quick derived_quantities;
    t "generator under command map" `Quick generator_under_command_map;
    t "dot export" `Quick dot_mentions_mode_names;
    t "validation" `Quick validation;
    t "immutability" `Quick immutability;
    t "multi-speed provider" `Quick multi_speed_provider;
  ]
