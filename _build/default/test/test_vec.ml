open Dpm_linalg

let t = Alcotest.test_case

let basic_construction () =
  Test_util.check_vec "create is zero" [| 0.0; 0.0; 0.0 |] (Vec.create 3);
  Test_util.check_vec "make fills" [| 2.5; 2.5 |] (Vec.make 2 2.5);
  Test_util.check_vec "init indexes" [| 0.0; 1.0; 2.0 |]
    (Vec.init 3 float_of_int);
  Alcotest.(check int) "dim" 4 (Vec.dim (Vec.create 4));
  Test_util.check_vec "of_list" [| 1.0; 2.0 |] (Vec.of_list [ 1.0; 2.0 ]);
  Alcotest.(check (list (float 0.0))) "to_list" [ 1.0; 2.0 ]
    (Vec.to_list [| 1.0; 2.0 |])

let copy_is_fresh () =
  let v = [| 1.0; 2.0 |] in
  let c = Vec.copy v in
  c.(0) <- 9.0;
  Test_util.check_vec "original untouched" [| 1.0; 2.0 |] v

let arithmetic () =
  let u = [| 1.0; 2.0; 3.0 |] and v = [| 4.0; 5.0; 6.0 |] in
  Test_util.check_vec "add" [| 5.0; 7.0; 9.0 |] (Vec.add u v);
  Test_util.check_vec "sub" [| -3.0; -3.0; -3.0 |] (Vec.sub u v);
  Test_util.check_vec "scale" [| 2.0; 4.0; 6.0 |] (Vec.scale 2.0 u);
  Test_util.check_close "dot" 32.0 (Vec.dot u v);
  Test_util.check_close "sum" 6.0 (Vec.sum u)

let axpy_inplace () =
  let x = [| 1.0; 2.0 |] and y = [| 10.0; 20.0 |] in
  Vec.axpy 3.0 x y;
  Test_util.check_vec "y <- 3x + y" [| 13.0; 26.0 |] y;
  Test_util.check_vec "x untouched" [| 1.0; 2.0 |] x

let norms () =
  let v = [| 3.0; -4.0 |] in
  Test_util.check_close "norm2" 5.0 (Vec.norm2 v);
  Test_util.check_close "norm1" 7.0 (Vec.norm1 v);
  Test_util.check_close "norm_inf" 4.0 (Vec.norm_inf v);
  Test_util.check_close "span" 7.0 (Vec.span v);
  Test_util.check_close "span singleton" 0.0 (Vec.span [| 42.0 |]);
  Test_util.check_close "span empty" 0.0 (Vec.span [||])

let extrema () =
  let v = [| 1.0; 5.0; 5.0; -2.0 |] in
  Alcotest.(check int) "max_index first tie" 1 (Vec.max_index v);
  Alcotest.(check int) "min_index" 3 (Vec.min_index v);
  Test_util.check_raises_invalid "max_index empty" (fun () -> Vec.max_index [||])

let normalization () =
  Test_util.check_vec "normalize1" [| 0.25; 0.75 |] (Vec.normalize1 [| 1.0; 3.0 |]);
  Test_util.check_raises_invalid "normalize1 zero sum" (fun () ->
      Vec.normalize1 [| 1.0; -1.0 |])

let dimension_mismatch () =
  Test_util.check_raises_invalid "add" (fun () -> Vec.add [| 1.0 |] [| 1.0; 2.0 |]);
  Test_util.check_raises_invalid "dot" (fun () -> Vec.dot [| 1.0 |] [| 1.0; 2.0 |]);
  Test_util.check_raises_invalid "axpy" (fun () ->
      Vec.axpy 1.0 [| 1.0 |] [| 1.0; 2.0 |])

let approx_equal () =
  Alcotest.(check bool) "within tol" true
    (Vec.approx_equal ~tol:1e-6 [| 1.0 |] [| 1.0 +. 1e-7 |]);
  Alcotest.(check bool) "outside tol" false
    (Vec.approx_equal ~tol:1e-9 [| 1.0 |] [| 1.0 +. 1e-7 |]);
  Alcotest.(check bool) "shape mismatch" false
    (Vec.approx_equal [| 1.0 |] [| 1.0; 2.0 |])

let small_float = QCheck2.Gen.float_range (-100.0) 100.0

let vec_gen =
  QCheck2.Gen.(map Array.of_list (list_size (int_range 1 12) small_float))

let pair_gen =
  QCheck2.Gen.(
    vec_gen >>= fun u ->
    map (fun l -> (u, Array.of_list l)) (list_repeat (Array.length u) small_float))

let prop_dot_symmetric =
  Test_util.qtest "dot is symmetric" pair_gen (fun (u, v) ->
      Float.abs (Vec.dot u v -. Vec.dot v u) <= 1e-9 *. (1.0 +. Float.abs (Vec.dot u v)))

let prop_triangle =
  Test_util.qtest "norm2 triangle inequality" pair_gen (fun (u, v) ->
      Vec.norm2 (Vec.add u v) <= Vec.norm2 u +. Vec.norm2 v +. 1e-9)

let prop_scale_norm =
  Test_util.qtest "norm1 is 1-homogeneous" vec_gen (fun v ->
      Float.abs (Vec.norm1 (Vec.scale 3.0 v) -. (3.0 *. Vec.norm1 v)) <= 1e-9 *. (1.0 +. Vec.norm1 v))

let prop_normalize_sums_to_one =
  Test_util.qtest "normalize1 sums to 1 for positive vectors"
    QCheck2.Gen.(map Array.of_list (list_size (int_range 1 12) (float_range 0.01 50.0)))
    (fun v -> Float.abs (Vec.sum (Vec.normalize1 v) -. 1.0) <= 1e-12)

let suite =
  [
    t "construction" `Quick basic_construction;
    t "copy is fresh" `Quick copy_is_fresh;
    t "arithmetic" `Quick arithmetic;
    t "axpy in place" `Quick axpy_inplace;
    t "norms" `Quick norms;
    t "extrema" `Quick extrema;
    t "normalization" `Quick normalization;
    t "dimension mismatch" `Quick dimension_mismatch;
    t "approx_equal" `Quick approx_equal;
    prop_dot_symmetric;
    prop_triangle;
    prop_scale_norm;
    prop_normalize_sums_to_one;
  ]
