open Dpm_linalg

let t = Alcotest.test_case

let a2 = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]
let b2 = Matrix.of_arrays [| [| 0.0; 5.0 |]; [| 6.0; 7.0 |] |]

let product_definition () =
  (* Definition 4.4 of the paper: C = [a11 B, a12 B; a21 B, a22 B]. *)
  let c = Tensor.product a2 b2 in
  Alcotest.(check int) "shape" 4 (Matrix.rows c);
  Test_util.check_close "a11*b01" 5.0 (Matrix.get c 0 1);
  Test_util.check_close "a12*b10" 12.0 (Matrix.get c 1 2);
  Test_util.check_close "a21*b11" 21.0 (Matrix.get c 3 1);
  Test_util.check_close "a22*b11" 28.0 (Matrix.get c 3 3)

let sum_definition () =
  (* A (+) B = A (x) I + I (x) B *)
  let c = Tensor.sum a2 b2 in
  let expected =
    Matrix.add
      (Tensor.product a2 (Matrix.identity 2))
      (Tensor.product (Matrix.identity 2) b2)
  in
  Alcotest.(check bool) "matches definition" true (Matrix.approx_equal c expected);
  Test_util.check_raises_invalid "sum wants square" (fun () ->
      Tensor.sum (Matrix.create 2 3) b2)

let indexing_roundtrip () =
  let k = Tensor.pair_index ~inner_dim:7 3 5 in
  Alcotest.(check (pair int int)) "split inverts pair" (3, 5)
    (Tensor.split_index ~inner_dim:7 k)

let sparse_matches_dense () =
  let sa = Sparse.of_dense a2 and sb = Sparse.of_dense b2 in
  Alcotest.(check bool) "sparse product" true
    (Matrix.approx_equal (Tensor.product a2 b2)
       (Sparse.to_dense (Tensor.sparse_product sa sb)));
  Alcotest.(check bool) "sparse sum" true
    (Matrix.approx_equal (Tensor.sum a2 b2)
       (Sparse.to_dense (Tensor.sparse_sum sa sb)))

let square_gen n =
  QCheck2.Gen.(
    map
      (fun l ->
        let a = Array.of_list l in
        Matrix.init n n (fun i j -> a.((i * n) + j)))
      (list_repeat (n * n) (float_range (-5.0) 5.0)))

let pair_small =
  QCheck2.Gen.(
    int_range 1 3 >>= fun n1 ->
    int_range 1 3 >>= fun n2 ->
    pair (square_gen n1) (square_gen n2))

let prop_mixed_product =
  (* (A (x) B)(u (x) v) = (Au) (x) (Bv) for vectors. *)
  Test_util.qtest "Kronecker mixed-product with vectors" pair_small
    (fun (a, b) ->
      let na = Matrix.rows a and nb = Matrix.rows b in
      let u = Vec.init na (fun i -> float_of_int (i + 1)) in
      let v = Vec.init nb (fun i -> 2.0 -. float_of_int i) in
      let uv =
        Vec.init (na * nb) (fun k ->
            let i, j = Tensor.split_index ~inner_dim:nb k in
            u.(i) *. v.(j))
      in
      let lhs = Matrix.mul_vec (Tensor.product a b) uv in
      let au = Matrix.mul_vec a u and bv = Matrix.mul_vec b v in
      let rhs =
        Vec.init (na * nb) (fun k ->
            let i, j = Tensor.split_index ~inner_dim:nb k in
            au.(i) *. bv.(j))
      in
      Vec.approx_equal ~tol:1e-7 lhs rhs)

let prop_sum_row_sums =
  (* Row sums of A (+) B are the sums of the operands' row sums —
     which is why a Kronecker sum of generators is a generator. *)
  Test_util.qtest "Kronecker sum row sums add" pair_small (fun (a, b) ->
      let ra = Matrix.row_sums a and rb = Matrix.row_sums b in
      let rc = Matrix.row_sums (Tensor.sum a b) in
      let nb = Matrix.rows b in
      let ok = ref true in
      Array.iteri
        (fun k s ->
          let i, j = Tensor.split_index ~inner_dim:nb k in
          if Float.abs (s -. (ra.(i) +. rb.(j))) > 1e-8 then ok := false)
        rc;
      !ok)

let prop_product_dims =
  Test_util.qtest "product shape multiplies" pair_small (fun (a, b) ->
      let c = Tensor.product a b in
      Matrix.rows c = Matrix.rows a * Matrix.rows b
      && Matrix.cols c = Matrix.cols a * Matrix.cols b)

let suite =
  [
    t "product definition" `Quick product_definition;
    t "sum definition" `Quick sum_definition;
    t "pair indexing" `Quick indexing_roundtrip;
    t "sparse matches dense" `Quick sparse_matches_dense;
    prop_mixed_product;
    prop_sum_row_sums;
    prop_product_dims;
  ]
