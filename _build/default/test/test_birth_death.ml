open Dpm_ctmc
open Dpm_linalg

let t = Alcotest.test_case

let product_form_matches_solver () =
  let births = [| 1.0; 0.8; 0.6; 0.4 |] and deaths = [| 2.0; 2.0; 1.5; 3.0 |] in
  let closed = Birth_death.stationary ~births ~deaths in
  let solved = Steady_state.solve (Birth_death.generator ~births ~deaths) in
  Test_util.check_vec ~tol:1e-12 "product form" closed solved

let validation () =
  Test_util.check_raises_invalid "length mismatch" (fun () ->
      ignore (Birth_death.generator ~births:[| 1.0 |] ~deaths:[| 1.0; 2.0 |]));
  Test_util.check_raises_invalid "zero rate" (fun () ->
      ignore (Birth_death.generator ~births:[| 0.0 |] ~deaths:[| 1.0 |]));
  Test_util.check_raises_invalid "empty" (fun () ->
      ignore (Birth_death.generator ~births:[||] ~deaths:[||]))

let mm1k_against_solver () =
  let lambda = 0.7 and mu = 1.1 and k = 6 in
  let m = Birth_death.Mm1k.eval ~lambda ~mu ~k in
  let g =
    Birth_death.generator ~births:(Array.make k lambda) ~deaths:(Array.make k mu)
  in
  Test_util.check_vec ~tol:1e-12 "occupancy" (Steady_state.solve g)
    m.Birth_death.Mm1k.occupancy;
  (* Flow identities. *)
  Test_util.check_relative ~rel:1e-12 "throughput = mu * utilization"
    (mu *. m.Birth_death.Mm1k.utilization)
    m.Birth_death.Mm1k.throughput;
  Test_util.check_relative ~rel:1e-12 "Little" m.Birth_death.Mm1k.mean_sojourn
    (m.Birth_death.Mm1k.mean_number /. m.Birth_death.Mm1k.throughput)

let mm1k_rho_one () =
  let m = Birth_death.Mm1k.eval ~lambda:1.0 ~mu:1.0 ~k:4 in
  (* Uniform occupancy over 5 levels. *)
  Test_util.check_vec ~tol:1e-12 "uniform" (Vec.make 5 0.2)
    m.Birth_death.Mm1k.occupancy;
  Test_util.check_close ~tol:1e-12 "mean" 2.0 m.Birth_death.Mm1k.mean_number

let mm1k_converges_to_mm1 () =
  (* For large K and rho < 1 the finite queue approaches M/M/1. *)
  let lambda = 0.5 and mu = 1.0 in
  let m = Birth_death.Mm1k.eval ~lambda ~mu ~k:80 in
  Test_util.check_relative ~rel:1e-9 "L" (Birth_death.Mm1.mean_number ~lambda ~mu)
    m.Birth_death.Mm1k.mean_number;
  Test_util.check_relative ~rel:1e-9 "W" (Birth_death.Mm1.mean_sojourn ~lambda ~mu)
    m.Birth_death.Mm1k.mean_sojourn

let mm1_identities () =
  let lambda = 0.3 and mu = 0.9 in
  (* L = lambda W (Little). *)
  Test_util.check_relative ~rel:1e-12 "Little"
    (lambda *. Birth_death.Mm1.mean_sojourn ~lambda ~mu)
    (Birth_death.Mm1.mean_number ~lambda ~mu);
  (* Geometric occupancy sums to 1. *)
  let total = ref 0.0 in
  for n = 0 to 200 do
    total := !total +. Birth_death.Mm1.prob_n ~lambda ~mu n
  done;
  Test_util.check_close ~tol:1e-9 "mass" 1.0 !total;
  Test_util.check_raises_invalid "instability" (fun () ->
      ignore (Birth_death.Mm1.mean_number ~lambda:2.0 ~mu:1.0))

let prop_product_form =
  Test_util.qtest ~count:60 "product form equals linear solve"
    QCheck2.Gen.(
      int_range 1 10 >>= fun n ->
      pair
        (map Array.of_list (list_repeat n (float_range 0.05 4.0)))
        (map Array.of_list (list_repeat n (float_range 0.05 4.0))))
    (fun (births, deaths) ->
      Vec.approx_equal ~tol:1e-9
        (Birth_death.stationary ~births ~deaths)
        (Steady_state.solve (Birth_death.generator ~births ~deaths)))

let suite =
  [
    t "product form" `Quick product_form_matches_solver;
    t "validation" `Quick validation;
    t "M/M/1/K vs solver" `Quick mm1k_against_solver;
    t "M/M/1/K at rho=1" `Quick mm1k_rho_one;
    t "M/M/1/K -> M/M/1" `Quick mm1k_converges_to_mm1;
    t "M/M/1 identities" `Quick mm1_identities;
    prop_product_form;
  ]
