open Dpm_core
open Dpm_linalg

let t = Alcotest.test_case

let indexing_roundtrip () =
  let capacity = 4 in
  Alcotest.(check int) "dim" 9 (Service_queue.dim ~capacity);
  for k = 0 to Service_queue.dim ~capacity - 1 do
    let s = Service_queue.state_of_index ~capacity k in
    Alcotest.(check int)
      (Printf.sprintf "roundtrip %d" k)
      k
      (Service_queue.index ~capacity s)
  done;
  Alcotest.(check int) "stable 0" 0 (Service_queue.index ~capacity (Stable 0));
  Alcotest.(check int) "transfer 1" 5 (Service_queue.index ~capacity (Transfer 1));
  Test_util.check_raises_invalid "stable out of range" (fun () ->
      ignore (Service_queue.index ~capacity (Stable 5)));
  Test_util.check_raises_invalid "transfer 0 invalid" (fun () ->
      ignore (Service_queue.index ~capacity (Transfer 0)))

let waiting_requests_cost () =
  (* C_sq = i for q_i and i-1 for q_{i->i-1} (Section III). *)
  Alcotest.(check int) "stable" 3 (Service_queue.waiting_requests (Stable 3));
  Alcotest.(check int) "transfer" 2 (Service_queue.waiting_requests (Transfer 3))

let four_transition_families () =
  let capacity = 3 in
  let lam = 0.4 and mu = 1.2 and chi = 2.0 in
  let g =
    Service_queue.generator ~capacity ~arrival_rate:lam ~service_rate:mu
      ~switch_out_rate:chi
  in
  let idx s = Service_queue.index ~capacity s in
  let get a b = Dpm_ctmc.Generator.get g (idx a) (idx b) in
  (* (1) stable arrivals *)
  Test_util.check_close "q0 -> q1" lam (get (Stable 0) (Stable 1));
  Test_util.check_close "q2 -> q3" lam (get (Stable 2) (Stable 3));
  Test_util.check_close "no overflow arrival" 0.0
    (Dpm_ctmc.Generator.exit_rate g (idx (Stable 3)) -. mu);
  (* (2) service completion into transfer *)
  Test_util.check_close "q2 -> q2>1" mu (get (Stable 2) (Transfer 2));
  Test_util.check_close "q0 has no service" 0.0
    (Dpm_ctmc.Generator.exit_rate g (idx (Stable 0)) -. lam);
  (* (3) transfer resolution *)
  Test_util.check_close "q2>1 -> q1" chi (get (Transfer 2) (Stable 1));
  (* (4) transfer arrivals *)
  Test_util.check_close "q2>1 -> q3>2" lam (get (Transfer 2) (Transfer 3));
  (* boundary: full transfer state only resolves *)
  Test_util.check_close "q3>2 exit" chi
    (Dpm_ctmc.Generator.exit_rate g (idx (Transfer 3)))

let inactive_mode_has_no_service_family () =
  let g =
    Service_queue.generator ~capacity:2 ~arrival_rate:1.0 ~service_rate:0.0
      ~switch_out_rate:3.0
  in
  let idx s = Service_queue.index ~capacity:2 s in
  Test_util.check_close "no q1 -> transfer" 0.0
    (Dpm_ctmc.Generator.get g (idx (Stable 1)) (idx (Transfer 1)))

let blocks_reassemble () =
  let capacity = 3 in
  let ss, st, ts, tt =
    Service_queue.blocks ~capacity ~arrival_rate:0.5 ~service_rate:1.5
      ~switch_out_rate:2.5
  in
  Alcotest.(check int) "ss shape" 4 (Matrix.rows ss);
  Alcotest.(check int) "st cols" 3 (Matrix.cols st);
  Alcotest.(check int) "ts rows" 3 (Matrix.rows ts);
  Alcotest.(check int) "tt shape" 3 (Matrix.rows tt);
  let full =
    Dpm_ctmc.Generator.to_matrix
      (Service_queue.generator ~capacity ~arrival_rate:0.5 ~service_rate:1.5
         ~switch_out_rate:2.5)
  in
  let reassembled =
    Matrix.init 7 7 (fun i j ->
        match (i <= 3, j <= 3) with
        | true, true -> Matrix.get ss i j
        | true, false -> Matrix.get st i (j - 4)
        | false, true -> Matrix.get ts (i - 4) j
        | false, false -> Matrix.get tt (i - 4) (j - 4))
  in
  Alcotest.(check bool) "blocks tile the generator" true
    (Matrix.approx_equal full reassembled)

let queue_is_connected_with_service () =
  let g =
    Service_queue.generator ~capacity:5 ~arrival_rate:0.2 ~service_rate:0.7
      ~switch_out_rate:1.0
  in
  Alcotest.(check bool) "irreducible" true (Dpm_ctmc.Structure.is_irreducible g)

let validation () =
  Test_util.check_raises_invalid "capacity 0" (fun () ->
      ignore
        (Service_queue.generator ~capacity:0 ~arrival_rate:1.0 ~service_rate:1.0
           ~switch_out_rate:1.0));
  Test_util.check_raises_invalid "negative rate" (fun () ->
      ignore
        (Service_queue.generator ~capacity:2 ~arrival_rate:(-1.0)
           ~service_rate:1.0 ~switch_out_rate:1.0))

let prop_row_sums_zero =
  Test_util.qtest ~count:80 "SQ generator rows sum to zero"
    QCheck2.Gen.(
      quad (int_range 1 10) (float_range 0.01 3.0) (float_range 0.0 3.0)
        (float_range 0.01 5.0))
    (fun (capacity, lam, mu, chi) ->
      let g =
        Service_queue.generator ~capacity ~arrival_rate:lam ~service_rate:mu
          ~switch_out_rate:chi
      in
      Vec.norm_inf (Matrix.row_sums (Dpm_ctmc.Generator.to_matrix g)) <= 1e-9)

let suite =
  [
    t "indexing" `Quick indexing_roundtrip;
    t "waiting requests" `Quick waiting_requests_cost;
    t "four transition families" `Quick four_transition_families;
    t "inactive mode" `Quick inactive_mode_has_no_service_family;
    t "blocks reassemble" `Quick blocks_reassemble;
    t "connected" `Quick queue_is_connected_with_service;
    t "validation" `Quick validation;
    prop_row_sums_zero;
  ]
