open Dpm_core
open Dpm_sim

let t = Alcotest.test_case

let sys () = Paper_instance.system ()

let shapes_and_validation () =
  let s = sys () in
  let dt = Discrete_baseline.build s ~slice:0.5 ~weight:1.0 in
  Alcotest.(check int) "S*(Q+1) states" 18 (Discrete_baseline.num_states dt);
  Test_util.check_close "slice" 0.5 (Discrete_baseline.slice dt);
  Test_util.check_raises_invalid "bad slice" (fun () ->
      ignore (Discrete_baseline.build s ~slice:0.0 ~weight:1.0));
  Test_util.check_raises_invalid "slice too long" (fun () ->
      ignore (Discrete_baseline.build s ~slice:10.0 ~weight:1.0))

let dt_gain_approaches_ct_gain () =
  (* As the slice shrinks, the discrete optimum approaches the
     continuous one from the paper's model.  They never coincide (the
     DT model lacks transfer states), but the gap must shrink and stay
     moderate. *)
  let s = sys () in
  let ct = (Optimize.solve ~weight:1.0 s).Optimize.gain in
  let gap slice =
    let dt = Discrete_baseline.build s ~slice ~weight:1.0 in
    let r = Discrete_baseline.solve dt in
    Float.abs (Discrete_baseline.gain_per_unit_time dt r -. ct) /. ct
  in
  let g_coarse = gap 1.0 and g_fine = gap 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "finer slice closer (%.3f vs %.3f)" g_fine g_coarse)
    true (g_fine <= g_coarse +. 0.01);
  Alcotest.(check bool) "within 15%" true (g_fine < 0.15)

let dt_policy_wakes_under_pressure () =
  let s = sys () in
  let dt = Discrete_baseline.build s ~slice:0.2 ~weight:5.0 in
  let r = Discrete_baseline.solve dt in
  (* With a strong delay weight, the sleeping SP must be told to wake
     once requests queue up. *)
  Alcotest.(check int) "wake at q5" Paper_instance.active
    (Discrete_baseline.action_of dt r ~mode:Paper_instance.sleeping ~queue:5);
  Alcotest.(check int) "wake at q1" Paper_instance.active
    (Discrete_baseline.action_of dt r ~mode:Paper_instance.sleeping ~queue:1)

let periodic_controller_issues_per_slice () =
  let s = sys () in
  let dt = Discrete_baseline.build s ~slice:0.5 ~weight:1.0 in
  let r = Discrete_baseline.solve dt in
  let ctl =
    Controller.periodic ~period:(Discrete_baseline.slice dt)
      ~decide:(fun ~mode ~queue -> Discrete_baseline.action_of dt r ~mode ~queue)
  in
  let res =
    Power_sim.run ~seed:21L ~sys:s
      ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate s))
      ~controller:ctl
      ~stop:(Power_sim.Sim_time 1000.0)
      ()
  in
  (* ~2000 slices in 1000 s: the decision count must be dominated by
     the timer, not by the other events (~1000/6 arrivals). *)
  Alcotest.(check bool)
    (Printf.sprintf "decision count %d ~ slice count" res.Power_sim.controller_decisions)
    true
    (res.Power_sim.controller_decisions > 1900
    && res.Power_sim.controller_decisions < 3200)

let event_driven_policy_decides_less () =
  (* The paper's criticism (4): per-slice managers generate far more
     PM traffic than the asynchronous CTMDP policy. *)
  let s = sys () in
  let sol = Optimize.solve ~weight:1.0 s in
  let run ctl =
    Power_sim.run ~seed:22L ~sys:s
      ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate s))
      ~controller:ctl
      ~stop:(Power_sim.Sim_time 5000.0)
      ()
  in
  let ct = run (Controller.of_solution s sol) in
  let dt = Discrete_baseline.build s ~slice:0.2 ~weight:1.0 in
  let rdt = Discrete_baseline.solve dt in
  let dt_res =
    run
      (Controller.periodic ~period:0.2 ~decide:(fun ~mode ~queue ->
           Discrete_baseline.action_of dt rdt ~mode ~queue))
  in
  Alcotest.(check bool)
    (Printf.sprintf "CT %d decisions << DT %d" ct.Power_sim.controller_decisions
       dt_res.Power_sim.controller_decisions)
    true
    (ct.Power_sim.controller_decisions * 5 < dt_res.Power_sim.controller_decisions)

let decision_energy_charged () =
  let s = sys () in
  let run energy =
    Power_sim.run ~seed:23L ~sys:s ~decision_energy:energy
      ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate s))
      ~controller:(Controller.greedy s)
      ~stop:(Power_sim.Requests 5_000)
      ()
  in
  let free = run 0.0 in
  let taxed = run 0.01 in
  (* Same seed, same trajectory; power differs by exactly
     decisions * energy / duration. *)
  Alcotest.(check int) "same decisions" free.Power_sim.controller_decisions
    taxed.Power_sim.controller_decisions;
  Test_util.check_relative ~rel:1e-6 "energy accounted"
    (free.Power_sim.avg_power
    +. (0.01 *. float_of_int free.Power_sim.controller_decisions
       /. free.Power_sim.duration))
    taxed.Power_sim.avg_power

let dt_model_mispredicts_vs_simulation () =
  (* Criticisms (2)/(3): the DT model's own metric predictions are
     worse than the CT model's, measured against the simulator. *)
  let s = sys () in
  let sol = Optimize.solve ~weight:1.0 s in
  let ct_pred = sol.Optimize.metrics.Analytic.power in
  let ct_sim =
    (Power_sim.run ~seed:24L ~sys:s
       ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate s))
       ~controller:(Controller.of_solution s sol)
       ~stop:(Power_sim.Requests 50_000) ())
      .Power_sim.avg_power
  in
  let dt = Discrete_baseline.build s ~slice:0.5 ~weight:1.0 in
  let rdt = Discrete_baseline.solve dt in
  let dt_pred, _ = Discrete_baseline.predicted_metrics dt rdt in
  let dt_sim =
    (Power_sim.run ~seed:24L ~sys:s
       ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate s))
       ~controller:
         (Controller.periodic ~period:0.5 ~decide:(fun ~mode ~queue ->
              Discrete_baseline.action_of dt rdt ~mode ~queue))
       ~stop:(Power_sim.Requests 50_000) ())
      .Power_sim.avg_power
  in
  let ct_err = Float.abs (ct_pred -. ct_sim) /. ct_sim in
  let dt_err = Float.abs (dt_pred -. dt_sim) /. dt_sim in
  Alcotest.(check bool)
    (Printf.sprintf "CT err %.2f%% < DT err %.2f%%" (100. *. ct_err)
       (100. *. dt_err))
    true (ct_err < dt_err)

let suite =
  [
    t "shapes and validation" `Quick shapes_and_validation;
    t "DT gain approaches CT" `Quick dt_gain_approaches_ct_gain;
    t "DT policy wakes" `Quick dt_policy_wakes_under_pressure;
    t "periodic decision count" `Quick periodic_controller_issues_per_slice;
    t "CT decides less than DT" `Slow event_driven_policy_decides_less;
    t "decision energy" `Quick decision_energy_charged;
    t "DT model less accurate" `Slow dt_model_mispredicts_vs_simulation;
  ]
