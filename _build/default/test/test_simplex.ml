open Dpm_linalg

let t = Alcotest.test_case

(* max x + y s.t. x + 2y <= 4, 3x + y <= 6  (classic textbook LP)
   in standard form with slacks: variables (x, y, s1, s2). *)
let textbook () =
  let a =
    Matrix.of_arrays [| [| 1.0; 2.0; 1.0; 0.0 |]; [| 3.0; 1.0; 0.0; 1.0 |] |]
  in
  let c = [| -1.0; -1.0; 0.0; 0.0 |] in
  let b = [| 4.0; 6.0 |] in
  (a, b, c)

let textbook_optimum () =
  let a, b, c = textbook () in
  match Simplex.minimize ~c ~a b with
  | Simplex.Optimal { x; objective; _ } ->
      (* Optimum at the constraint intersection x = 8/5, y = 6/5. *)
      Test_util.check_close ~tol:1e-9 "objective" (-2.8) objective;
      Test_util.check_close ~tol:1e-9 "x" 1.6 x.(0);
      Test_util.check_close ~tol:1e-9 "y" 1.2 x.(1);
      Alcotest.(check bool) "feasible" true (Simplex.check_feasible ~a ~b x)
  | _ -> Alcotest.fail "expected Optimal"

let duals_satisfy_complementarity () =
  let a, b, c = textbook () in
  match Simplex.minimize ~c ~a b with
  | Simplex.Optimal { x; objective; dual } ->
      (* Strong duality: b . y = c . x at the optimum. *)
      Test_util.check_close ~tol:1e-9 "strong duality" objective (Vec.dot b dual);
      (* Reduced costs nonnegative for every column. *)
      for j = 0 to 3 do
        let col = Matrix.col a j in
        Alcotest.(check bool)
          (Printf.sprintf "reduced cost %d" j)
          true
          (c.(j) -. Vec.dot col dual >= -1e-9)
      done;
      ignore x
  | _ -> Alcotest.fail "expected Optimal"

let infeasible_detected () =
  (* x = 1 and x = 2 simultaneously. *)
  let a = Matrix.of_arrays [| [| 1.0 |]; [| 1.0 |] |] in
  match Simplex.minimize ~c:[| 1.0 |] ~a [| 1.0; 2.0 |] with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let unbounded_detected () =
  (* minimize -x - y  s.t.  x - y = 0: the ray x = y -> infinity. *)
  let a = Matrix.of_arrays [| [| 1.0; -1.0 |] |] in
  match Simplex.minimize ~c:[| -1.0; -1.0 |] ~a [| 0.0 |] with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected Unbounded"

let negative_rhs_handled () =
  (* -x = -3 -> x = 3. *)
  let a = Matrix.of_arrays [| [| -1.0 |] |] in
  match Simplex.minimize ~c:[| 2.0 |] ~a [| -3.0 |] with
  | Simplex.Optimal { x; objective; _ } ->
      Test_util.check_close ~tol:1e-9 "x" 3.0 x.(0);
      Test_util.check_close ~tol:1e-9 "objective" 6.0 objective
  | _ -> Alcotest.fail "expected Optimal"

let degenerate_vertex () =
  (* Three constraints meeting at one vertex (classic degeneracy):
     min -x1 s.t. x1 + s1 = 1; x1 + x2 + s2 = 1; x1 - x2 + s3 = 1. *)
  let a =
    Matrix.of_arrays
      [|
        [| 1.0; 0.0; 1.0; 0.0; 0.0 |];
        [| 1.0; 1.0; 0.0; 1.0; 0.0 |];
        [| 1.0; -1.0; 0.0; 0.0; 1.0 |];
      |]
  in
  match Simplex.minimize ~c:[| -1.0; 0.0; 0.0; 0.0; 0.0 |] ~a [| 1.0; 1.0; 1.0 |] with
  | Simplex.Optimal { objective; _ } ->
      Test_util.check_close ~tol:1e-9 "degenerate optimum" (-1.0) objective
  | _ -> Alcotest.fail "expected Optimal"

let badly_scaled_problem () =
  (* Mix 1e6 and 1e-3 coefficients; equilibration must cope.
     x/1000 + 1e6 y = 1, x + y + s = 1000 -> push x up. *)
  let a =
    Matrix.of_arrays [| [| 1e-3; 1e6; 0.0 |]; [| 1.0; 1.0; 1.0 |] |]
  in
  match Simplex.minimize ~c:[| -1.0; 0.0; 0.0 |] ~a [| 1.0; 1000.0 |] with
  | Simplex.Optimal { x; _ } ->
      Alcotest.(check bool) "feasible" true
        (Simplex.check_feasible ~a ~b:[| 1.0; 1000.0 |] x);
      (* x = 1000 - tiny y contribution; certainly > 990. *)
      Alcotest.(check bool) "x nearly 1000" true (x.(0) > 990.0)
  | _ -> Alcotest.fail "expected Optimal"

let validation () =
  Test_util.check_raises_invalid "shape" (fun () ->
      ignore (Simplex.minimize ~c:[| 1.0 |] ~a:(Matrix.create 1 2) [| 0.0 |]))

(* Random LPs built around a known feasible point: the solver must
   return a feasible answer at least as good. *)
let random_lp_gen =
  QCheck2.Gen.(
    int_range 1 5 >>= fun m ->
    int_range 1 6 >>= fun extra ->
    let n = m + extra in
    list_repeat (m * n) (float_range (-3.0) 3.0) >>= fun entries ->
    list_repeat n (float_range 0.0 2.0) >>= fun point ->
    list_repeat n (float_range 0.0 4.0) >>= fun cost ->
    let a =
      let e = Array.of_list entries in
      Matrix.init m n (fun i j -> e.((i * n) + j))
    in
    let x0 = Array.of_list point in
    let b = Matrix.mul_vec a x0 in
    return (a, b, Array.of_list cost, x0))

let prop_sound_on_random_feasible =
  Test_util.qtest ~count:120 "optimal is feasible and beats the witness"
    random_lp_gen
    (fun (a, b, c, x0) ->
      match Simplex.minimize ~c ~a b with
      | Simplex.Optimal { x; objective; _ } ->
          Simplex.check_feasible ~tol:1e-5 ~a ~b x
          && objective <= Vec.dot c x0 +. 1e-6 *. (1.0 +. Float.abs (Vec.dot c x0))
      | Simplex.Unbounded -> true (* possible: costs >= 0 but recession rays exist *)
      | Simplex.Infeasible -> false (* impossible: x0 is feasible *))

let prop_strong_duality =
  Test_util.qtest ~count:120 "strong duality on random LPs" random_lp_gen
    (fun (a, b, c, _) ->
      match Simplex.minimize ~c ~a b with
      | Simplex.Optimal { objective; dual; _ } ->
          Float.abs (objective -. Vec.dot b dual)
          <= 1e-6 *. (1.0 +. Float.abs objective)
      | Simplex.Unbounded | Simplex.Infeasible -> true)

let suite =
  [
    t "textbook optimum" `Quick textbook_optimum;
    t "duals / strong duality" `Quick duals_satisfy_complementarity;
    t "infeasible" `Quick infeasible_detected;
    t "unbounded" `Quick unbounded_detected;
    t "negative rhs" `Quick negative_rhs_handled;
    t "degenerate vertex" `Quick degenerate_vertex;
    t "badly scaled" `Quick badly_scaled_problem;
    t "validation" `Quick validation;
    prop_sound_on_random_feasible;
    prop_strong_duality;
  ]
