open Dpm_ctmdp

let t = Alcotest.test_case

(* A two-state machine: state 0 can run fast (high cost, fast exit) or
   slow; state 1 always returns. *)
let toy () =
  Model.create ~num_states:2 (fun i ->
      if i = 0 then
        [
          { Model.action = 10; rates = [ (1, 2.0) ]; cost = 5.0 };
          { Model.action = 20; rates = [ (1, 0.5) ]; cost = 1.0 };
        ]
      else [ { Model.action = 0; rates = [ (0, 1.0) ]; cost = 0.0 } ])

let shape () =
  let m = toy () in
  Alcotest.(check int) "states" 2 (Model.num_states m);
  Alcotest.(check int) "choices at 0" 2 (Model.num_choices m 0);
  Alcotest.(check int) "choices at 1" 1 (Model.num_choices m 1);
  Alcotest.(check int) "total" 3 (Model.total_choices m);
  Test_util.check_close "max exit" 2.0 (Model.max_exit_rate m)

let lookup () =
  let m = toy () in
  let c = Model.choice m 0 1 in
  Alcotest.(check int) "label" 20 c.Model.action;
  Alcotest.(check (option int)) "find by label" (Some 1)
    (Model.find_choice m 0 ~action:20);
  Alcotest.(check (option int)) "missing label" None
    (Model.find_choice m 1 ~action:99);
  Test_util.check_raises_invalid "choice out of range" (fun () ->
      ignore (Model.choice m 1 3))

let validation () =
  let bad f = Test_util.check_raises_invalid "invalid model" f in
  bad (fun () -> Model.create ~num_states:0 (fun _ -> []));
  bad (fun () -> Model.create ~num_states:1 (fun _ -> []));
  bad (fun () ->
      Model.create ~num_states:1 (fun _ ->
          [ { Model.action = 0; rates = [ (0, 1.0) ]; cost = 0.0 } ]));
  bad (fun () ->
      Model.create ~num_states:2 (fun _ ->
          [ { Model.action = 0; rates = [ (5, 1.0) ]; cost = 0.0 } ]));
  bad (fun () ->
      Model.create ~num_states:2 (fun _ ->
          [ { Model.action = 0; rates = [ (1, -1.0) ]; cost = 0.0 } ]));
  bad (fun () ->
      Model.create ~num_states:2 (fun _ ->
          [ { Model.action = 0; rates = [ (1, 1.0) ]; cost = Float.nan } ]));
  bad (fun () ->
      Model.create ~num_states:2 (fun i ->
          if i = 0 then
            [
              { Model.action = 7; rates = [ (1, 1.0) ]; cost = 0.0 };
              { Model.action = 7; rates = [ (1, 2.0) ]; cost = 0.0 };
            ]
          else [ { Model.action = 0; rates = [ (0, 1.0) ]; cost = 0.0 } ]))

let map_costs_reweights () =
  let m = toy () in
  let m2 = Model.map_costs (fun _ c -> c.Model.cost *. 10.0) m in
  Test_util.check_close "scaled" 50.0 (Model.choice m2 0 0).Model.cost;
  Test_util.check_close "original intact" 5.0 (Model.choice m 0 0).Model.cost

let policy_roundtrips () =
  let m = toy () in
  let p = Policy.of_actions m [| 20; 0 |] in
  Alcotest.(check int) "action at 0" 20 (Policy.action m p 0);
  Alcotest.(check int) "choice index" 1 (Policy.choice_index p 0);
  Alcotest.(check bool) "round trip equal" true
    (Policy.equal p (Policy.of_choice_indices m [| 1; 0 |]));
  Test_util.check_raises_invalid "unknown label" (fun () ->
      ignore (Policy.of_actions m [| 99; 0 |]));
  Test_util.check_raises_invalid "bad index" (fun () ->
      ignore (Policy.of_choice_indices m [| 0; 5 |]))

let induced_chain () =
  let m = toy () in
  let p = Policy.of_actions m [| 10; 0 |] in
  let g = Policy.generator m p in
  Test_util.check_close "rate 0->1" 2.0 (Dpm_ctmc.Generator.get g 0 1);
  Test_util.check_close "rate 1->0" 1.0 (Dpm_ctmc.Generator.get g 1 0);
  Test_util.check_vec "costs" [| 5.0; 0.0 |] (Policy.cost_vector m p)

let enumeration_counts () =
  let m = toy () in
  Test_util.check_close "count" 2.0 (Policy.count m);
  let seen = List.of_seq (Policy.enumerate m) in
  Alcotest.(check int) "enumerated" 2 (List.length seen);
  (* All distinct. *)
  match seen with
  | [ a; b ] -> Alcotest.(check bool) "distinct" false (Policy.equal a b)
  | _ -> Alcotest.fail "expected exactly two policies"

let uniform_first_picks_index_zero () =
  let m = toy () in
  let p = Policy.uniform_first m in
  Alcotest.(check int) "first choice" 10 (Policy.action m p 0)

let suite =
  [
    t "shape" `Quick shape;
    t "lookup" `Quick lookup;
    t "validation" `Quick validation;
    t "map_costs" `Quick map_costs_reweights;
    t "policy roundtrips" `Quick policy_roundtrips;
    t "induced chain" `Quick induced_chain;
    t "enumeration" `Quick enumeration_counts;
    t "uniform_first" `Quick uniform_first_picks_index_zero;
  ]
