open Dpm_ctmc
open Dpm_linalg

let t = Alcotest.test_case

let ring n =
  Generator.of_rates ~dim:n (List.init n (fun i -> (i, (i + 1) mod n, 1.0)))

let normalize_classes cs = List.sort compare (List.map (List.sort compare) cs)

let irreducible_ring () =
  Alcotest.(check bool) "ring irreducible" true (Structure.is_irreducible (ring 5));
  Alcotest.(check int) "single class" 1
    (List.length (Structure.communicating_classes (ring 5)))

let two_classes () =
  (* 0 <-> 1 feeding into the closed pair 2 <-> 3. *)
  let g =
    Generator.of_rates ~dim:4
      [ (0, 1, 1.0); (1, 0, 1.0); (1, 2, 0.5); (2, 3, 1.0); (3, 2, 1.0) ]
  in
  Alcotest.(check bool) "not irreducible" false (Structure.is_irreducible g);
  Alcotest.(check (list (list int)))
    "classes" [ [ 0; 1 ]; [ 2; 3 ] ]
    (normalize_classes (Structure.communicating_classes g));
  Alcotest.(check (list (list int))) "closed classes" [ [ 2; 3 ] ]
    (normalize_classes (Structure.recurrent_classes g));
  Alcotest.(check (list int)) "transient" [ 0; 1 ] (Structure.transient_states g)

let reachability () =
  let g = Generator.of_rates ~dim:4 [ (0, 1, 1.0); (1, 2, 1.0); (3, 0, 1.0) ] in
  let from0 = Structure.reachable_from g 0 in
  Alcotest.(check (array bool)) "from 0" [| true; true; true; false |] from0;
  let from3 = Structure.reachable_from g 3 in
  Alcotest.(check (array bool)) "from 3" [| true; true; true; true |] from3

let absorbing_states_are_their_own_class () =
  let g = Generator.of_rates ~dim:3 [ (0, 1, 1.0); (0, 2, 1.0) ] in
  Alcotest.(check (list (list int)))
    "two absorbing classes" [ [ 1 ]; [ 2 ] ]
    (normalize_classes (Structure.recurrent_classes g))

let connected_graph () =
  let adj rows cols ts = Sparse.of_triplets ~rows ~cols ts in
  Alcotest.(check bool) "directed chain weakly connected" true
    (Structure.is_connected_graph (adj 3 3 [ (0, 1, 1.0); (0, 2, 1.0) ]));
  Alcotest.(check bool) "isolated node disconnects" false
    (Structure.is_connected_graph (adj 3 3 [ (0, 1, 1.0) ]));
  Alcotest.(check bool) "empty graph connected" true
    (Structure.is_connected_graph (adj 0 0 []))

let deep_chain_no_stack_overflow () =
  (* The iterative Tarjan must survive a 50k-state path graph. *)
  let n = 50_000 in
  let rates = List.init (n - 1) (fun i -> (i, i + 1, 1.0)) in
  let g = Generator.of_rates ~dim:n rates in
  let classes = Structure.communicating_classes g in
  Alcotest.(check int) "all singleton classes" n (List.length classes)

let big_cycle_single_class () =
  let n = 50_000 in
  let g = ring n in
  Alcotest.(check bool) "huge ring irreducible" true (Structure.is_irreducible g)

let class_partition_gen =
  QCheck2.Gen.(
    int_range 2 9 >>= fun n ->
    map
      (fun entries ->
        let rates =
          List.filter (fun (i, j, _) -> i <> j)
            (List.map (fun (i, j) -> (i mod n, j mod n, 1.0)) entries)
        in
        (n, Generator.of_rates ~dim:n rates))
      (list_size (int_range 0 25) (pair (int_range 0 8) (int_range 0 8))))

let prop_classes_partition =
  Test_util.qtest "communicating classes partition the states"
    class_partition_gen (fun (n, g) ->
      let members =
        List.sort compare (List.concat (Structure.communicating_classes g))
      in
      members = List.init n (fun i -> i))

let prop_closed_classes_have_no_exits =
  Test_util.qtest "closed classes have no leaving edges" class_partition_gen
    (fun (_, g) ->
      List.for_all
        (fun members ->
          List.for_all
            (fun v ->
              let ok = ref true in
              Generator.iter_row g v (fun j _ ->
                  if not (List.mem j members) then ok := false);
              !ok)
            members)
        (Structure.recurrent_classes g))

let suite =
  [
    t "irreducible ring" `Quick irreducible_ring;
    t "two classes" `Quick two_classes;
    t "reachability" `Quick reachability;
    t "absorbing classes" `Quick absorbing_states_are_their_own_class;
    t "connected graph" `Quick connected_graph;
    t "deep chain (iterative tarjan)" `Slow deep_chain_no_stack_overflow;
    t "huge ring" `Slow big_cycle_single_class;
    prop_classes_partition;
    prop_closed_classes_have_no_exits;
  ]
