open Dpm_linalg
open Dpm_ctmc

let t = Alcotest.test_case

let g2 = Generator.of_rates ~dim:2 [ (0, 1, 1.0); (1, 0, 3.0) ]

let earning_rates_combine () =
  (* r_i = r_ii + sum_j s_ij r_ij  (Section II). *)
  let r =
    Reward.create g2 ~rate_rewards:[| 10.0; 2.0 |]
      ~transition_rewards:[ (0, 1, 5.0); (1, 0, 1.0) ]
  in
  Test_util.check_close "state 0" (10.0 +. (1.0 *. 5.0)) (Reward.earning_rate r 0);
  Test_util.check_close "state 1" (2.0 +. (3.0 *. 1.0)) (Reward.earning_rate r 1);
  Test_util.check_vec "vector" [| 15.0; 5.0 |] (Reward.earning_rates r)

let validation () =
  Test_util.check_raises_invalid "dimension" (fun () ->
      ignore (Reward.create g2 ~rate_rewards:[| 1.0 |]));
  Test_util.check_raises_invalid "self transition reward" (fun () ->
      ignore
        (Reward.create g2 ~rate_rewards:[| 0.0; 0.0 |]
           ~transition_rewards:[ (0, 0, 1.0) ]))

let long_run_average_is_stationary_mix () =
  (* pi = (0.75, 0.25); average = 0.75*4 + 0.25*8 = 5. *)
  let r = Reward.create g2 ~rate_rewards:[| 4.0; 8.0 |] in
  Test_util.check_close ~tol:1e-10 "average" 5.0 (Reward.long_run_average r)

let expected_total_grows_linearly_in_steady_state () =
  (* Starting from the stationary distribution, v(t) = g * t exactly. *)
  let r = Reward.create g2 ~rate_rewards:[| 4.0; 8.0 |] in
  let pi = Steady_state.solve g2 in
  let v = Reward.expected_total r ~t0:pi ~horizon:11.0 in
  Test_util.check_close ~tol:1e-7 "linear growth" (5.0 *. 11.0) v

let value_trajectory_monotone_for_positive_rewards () =
  let r = Reward.create g2 ~rate_rewards:[| 1.0; 2.0 |] in
  match Reward.value_trajectory r ~state:0 ~times:[ 1.0; 2.0; 4.0 ] with
  | [ v1; v2; v4 ] ->
      Alcotest.(check bool) "monotone" true (0.0 < v1 && v1 < v2 && v2 < v4);
      (* Slope approaches the long-run average. *)
      Test_util.check_relative ~rel:0.2 "eventual slope" (Reward.long_run_average r)
        ((v4 -. v2) /. 2.0)
  | _ -> Alcotest.fail "expected three values"

let discounted_values_closed_form () =
  (* v = (aI - G)^{-1} r; check against a direct 2x2 solve. *)
  let a = 0.5 in
  let r = Reward.create g2 ~rate_rewards:[| 4.0; 8.0 |] in
  let m =
    Matrix.of_arrays [| [| a +. 1.0; -1.0 |]; [| -3.0; a +. 3.0 |] |]
  in
  let expected = Lu.solve m [| 4.0; 8.0 |] in
  Test_util.check_vec ~tol:1e-10 "discounted" expected
    (Reward.discounted_values r ~discount:a)

let discounted_approaches_average_over_a () =
  (* a * v_dis(a) -> long-run average as a -> 0 (Abelian limit). *)
  let r = Reward.create g2 ~rate_rewards:[| 4.0; 8.0 |] in
  let v = Reward.discounted_values r ~discount:1e-6 in
  Test_util.check_relative ~rel:1e-3 "Abelian limit" (Reward.long_run_average r)
    (1e-6 *. v.(0))

let dot_output_shape () =
  let s = Dot.of_generator ~name:"toy" g2 in
  Alcotest.(check bool) "digraph header" true
    (String.length s > 10 && String.sub s 0 7 = "digraph");
  (* two off-diagonal edges -> two arrows *)
  let arrows = ref 0 in
  String.iteri
    (fun i c ->
      if c = '>' && i > 0 && s.[i - 1] = '-' then incr arrows)
    s;
  Alcotest.(check int) "edges" 2 !arrows

let dot_escaping () =
  let s =
    Dot.of_edges ~name:"quote\"test" ~nodes:[ (0, "a\"b") ] ~edges:[] ()
  in
  Alcotest.(check bool) "escaped quotes" true
    (String.length s > 0
    &&
    (* the raw quote must not terminate the string early: look for a
       backslash-quote pair *)
    let found = ref false in
    String.iteri (fun i c -> if c = '\\' && i + 1 < String.length s && s.[i + 1] = '"' then found := true) s;
    !found)

let suite =
  [
    t "earning rates" `Quick earning_rates_combine;
    t "validation" `Quick validation;
    t "long-run average" `Quick long_run_average_is_stationary_mix;
    t "expected total from stationarity" `Quick expected_total_grows_linearly_in_steady_state;
    t "value trajectory" `Quick value_trajectory_monotone_for_positive_rewards;
    t "discounted closed form" `Quick discounted_values_closed_form;
    t "Abelian limit" `Quick discounted_approaches_average_over_a;
    t "dot output" `Quick dot_output_shape;
    t "dot escaping" `Quick dot_escaping;
  ]
