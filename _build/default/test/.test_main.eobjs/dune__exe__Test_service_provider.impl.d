test/test_service_provider.ml: Alcotest Array Dpm_core Dpm_ctmc List Paper_instance Service_provider String Test_util
