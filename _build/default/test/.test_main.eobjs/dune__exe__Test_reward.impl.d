test/test_reward.ml: Alcotest Array Dot Dpm_ctmc Dpm_linalg Generator Lu Matrix Reward Steady_state String Test_util
