test/test_summary.ml: Alcotest Analytic Controller Dpm_core Dpm_sim Float Format Int64 List Paper_instance Policies Power_sim Summary Sys_model Test_util Workload
