test/test_constrained_lp.ml: Alcotest Analytic Array Constrained_lp Dpm_core Dpm_ctmdp Dpm_sim List Optimize Paper_instance Printf Sys_model Test_util
