test/test_controller.ml: Alcotest Controller Dpm_core Dpm_sim Paper_instance Sys_model Test_util
