test/test_dtmdp.ml: Alcotest Dpm_ctmdp Dpm_prob Dtmdp Float List Test_util
