test/test_trace.ml: Alcotest Controller Dpm_core Dpm_sim List Paper_instance Power_sim String Sys_model Test_util Trace Workload
