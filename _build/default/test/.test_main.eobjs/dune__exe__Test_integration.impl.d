test/test_integration.ml: Alcotest Analytic Array Controller Dpm_core Dpm_sim Float List Optimize Paper_instance Policies Power_sim Presets Printf Service_provider Sys_model Test_util Workload
