test/test_expm.ml: Alcotest Array Dpm_ctmc Dpm_linalg Expm Generator List Matrix Printf QCheck2 Test_util Transient Vec
