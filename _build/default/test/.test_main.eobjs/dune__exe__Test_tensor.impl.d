test/test_tensor.ml: Alcotest Array Dpm_linalg Float Matrix QCheck2 Sparse Tensor Test_util Vec
