test/test_analytic.ml: Alcotest Analytic Array Dpm_core List Paper_instance Policies Sys_model Test_util
