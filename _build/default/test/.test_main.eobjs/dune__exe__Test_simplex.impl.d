test/test_simplex.ml: Alcotest Array Dpm_linalg Float Matrix Printf QCheck2 Simplex Test_util Vec
