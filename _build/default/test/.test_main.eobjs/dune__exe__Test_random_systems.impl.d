test/test_random_systems.ml: Analytic Array Dpm_core Dpm_ctmc Dpm_linalg Dpm_prob Dpm_sim Float Format List Matrix Optimize Policies Printf QCheck2 Service_provider String Sys_model Test_util Vec
