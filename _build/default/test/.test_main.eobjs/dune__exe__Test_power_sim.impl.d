test/test_power_sim.ml: Alcotest Analytic Array Controller Dpm_core Dpm_sim List Optimize Paper_instance Policies Power_sim Sys_model Test_util Workload
