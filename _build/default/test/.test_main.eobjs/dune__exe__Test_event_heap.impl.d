test/test_event_heap.ml: Alcotest Dpm_sim Event_heap Float List QCheck2 Test_util
