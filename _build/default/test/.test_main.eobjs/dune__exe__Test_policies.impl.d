test/test_policies.ml: Alcotest Array Dpm_core Dpm_ctmdp Format Paper_instance Policies Printf Service_provider Sys_model Test_util
