test/test_workload.ml: Alcotest Array Dpm_prob Dpm_sim List Rng Stat Test_util Workload
