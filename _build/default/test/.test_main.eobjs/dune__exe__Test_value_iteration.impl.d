test/test_value_iteration.ml: Alcotest Dpm_ctmdp List Model Policy_iteration Printf Test_util Value_iteration
