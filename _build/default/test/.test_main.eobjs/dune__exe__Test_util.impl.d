test/test_util.ml: Alcotest Dpm_linalg Dpm_prob Float QCheck2 QCheck_alcotest Random String
