test/test_sensitivity.ml: Alcotest Dpm_core Float List Optimize Paper_instance Printf Sensitivity Test_util
