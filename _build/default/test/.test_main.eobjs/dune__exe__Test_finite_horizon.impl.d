test/test_finite_horizon.ml: Alcotest Array Dpm_core Dpm_ctmc Dpm_ctmdp Dpm_linalg Finite_horizon Float List Model Policy Policy_iteration Seq Test_util Vec
