test/test_stat.ml: Alcotest Dpm_prob Float List QCheck2 Stat Test_util
