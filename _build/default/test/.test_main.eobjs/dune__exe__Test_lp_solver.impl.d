test/test_lp_solver.ml: Alcotest Array Dpm_core Dpm_ctmc Dpm_ctmdp Float List Lp_solver Model Policy Policy_iteration Printf QCheck2 Test_util
