test/test_optimize.ml: Alcotest Analytic Array Dpm_core List Optimize Paper_instance Policies Printf Sys_model Test_util
