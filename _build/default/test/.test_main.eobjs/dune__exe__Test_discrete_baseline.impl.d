test/test_discrete_baseline.ml: Alcotest Analytic Controller Discrete_baseline Dpm_core Dpm_sim Float Optimize Paper_instance Power_sim Printf Sys_model Test_util Workload
