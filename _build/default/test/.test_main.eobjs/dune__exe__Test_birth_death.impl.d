test/test_birth_death.ml: Alcotest Array Birth_death Dpm_ctmc Dpm_linalg QCheck2 Steady_state Test_util Vec
