test/test_policy_iteration.ml: Alcotest Array Dpm_ctmc Dpm_ctmdp Dpm_linalg Float List Model Policy Policy_iteration Printf QCheck2 Seq Test_util
