test/test_lu.ml: Alcotest Array Dpm_linalg Float Lu Matrix QCheck2 Test_util Vec
