test/test_policy_export.ml: Alcotest Dpm_core List Paper_instance Policies Policy_export Service_provider String Sys_model Test_util
