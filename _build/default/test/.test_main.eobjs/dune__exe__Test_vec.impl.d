test/test_vec.ml: Alcotest Array Dpm_linalg Float QCheck2 Test_util Vec
