test/test_discounted.ml: Alcotest Array Discounted Dpm_ctmdp Model Policy Policy_iteration Printf QCheck2 Seq Test_util
