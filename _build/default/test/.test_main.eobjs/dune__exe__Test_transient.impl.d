test/test_transient.ml: Alcotest Array Dpm_ctmc Dpm_linalg Generator List Matrix Printf QCheck2 Steady_state Test_util Transient Vec
