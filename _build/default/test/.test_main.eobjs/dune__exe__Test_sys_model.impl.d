test/test_sys_model.ml: Alcotest Array Dpm_core Dpm_ctmc Dpm_ctmdp Dpm_linalg Format List Matrix Paper_instance Printf Seq Service_provider Sys_model Test_util Vec
