test/test_structure.ml: Alcotest Dpm_ctmc Dpm_linalg Generator List QCheck2 Sparse Structure Test_util
