test/test_lumping.ml: Alcotest Array Dpm_ctmc Float Generator List Lumping QCheck2 Steady_state Test_util
