test/test_steady_state.ml: Alcotest Array Dpm_ctmc Dpm_linalg Float Generator Iterative List QCheck2 Steady_state Test_util Vec
