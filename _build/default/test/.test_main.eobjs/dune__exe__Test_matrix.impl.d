test/test_matrix.ml: Alcotest Array Dpm_linalg Matrix QCheck2 Test_util Vec
