test/test_sparse.ml: Alcotest Dpm_linalg List Matrix QCheck2 Sparse Test_util Vec
