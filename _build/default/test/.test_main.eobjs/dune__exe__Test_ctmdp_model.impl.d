test/test_ctmdp_model.ml: Alcotest Dpm_ctmc Dpm_ctmdp Float List Model Policy Test_util
