test/test_rng.ml: Alcotest Array Dpm_prob Printf Rng Test_util
