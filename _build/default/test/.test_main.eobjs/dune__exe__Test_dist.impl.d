test/test_dist.ml: Alcotest Array Dist Dpm_prob Printf Stat Test_util
