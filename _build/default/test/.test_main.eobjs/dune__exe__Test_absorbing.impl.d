test/test_absorbing.ml: Absorbing Alcotest Array Dpm_core Dpm_ctmc Dpm_linalg Float Generator List Matrix Paper_instance Policies Printf Sys_model Test_util
