test/test_service_queue.ml: Alcotest Dpm_core Dpm_ctmc Dpm_linalg Matrix Printf QCheck2 Service_queue Test_util Vec
