test/test_generator.ml: Alcotest Dpm_ctmc Dpm_linalg Float Generator List Matrix QCheck2 Sparse Test_util Vec
