test/test_iterative.ml: Alcotest Array Dpm_linalg Float Iterative List Lu QCheck2 Sparse Test_util Vec
