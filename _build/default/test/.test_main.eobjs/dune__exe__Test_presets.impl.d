test/test_presets.ml: Alcotest Dpm_core List Paper_instance Presets Printf Service_provider Test_util
