open Dpm_linalg
open Dpm_ctmc

let t = Alcotest.test_case

(* Two-state chain has a closed-form transient solution:
   p_0(t) = mu/(l+m) + (p0(0) - mu/(l+m)) e^{-(l+m)t}. *)
let two_state_closed_form lam mu p0_start tt =
  let total = lam +. mu in
  let pi0 = mu /. total in
  let p0 = pi0 +. ((p0_start -. pi0) *. exp (-.total *. tt)) in
  [| p0; 1.0 -. p0 |]

let g2 lam mu = Generator.of_rates ~dim:2 [ (0, 1, lam); (1, 0, mu) ]

let transient_two_state () =
  let lam = 0.7 and mu = 1.9 in
  List.iter
    (fun tt ->
      let p = Transient.probabilities (g2 lam mu) ~p0:[| 1.0; 0.0 |] ~t:tt in
      Test_util.check_vec ~tol:1e-8
        (Printf.sprintf "t = %g" tt)
        (two_state_closed_form lam mu 1.0 tt)
        p)
    [ 0.0; 0.01; 0.3; 1.0; 5.0; 50.0 ]

let converges_to_steady_state () =
  let g = g2 0.5 1.5 in
  let p = Transient.probabilities g ~p0:[| 0.0; 1.0 |] ~t:200.0 in
  Test_util.check_vec ~tol:1e-9 "long horizon = stationary"
    (Steady_state.solve g) p

let distribution_properties () =
  let g =
    Generator.of_rates ~dim:4
      [ (0, 1, 1.0); (1, 2, 0.5); (2, 3, 2.0); (3, 0, 0.7); (1, 0, 0.2) ]
  in
  let p = Transient.probabilities g ~p0:[| 0.25; 0.25; 0.25; 0.25 |] ~t:3.7 in
  Test_util.check_close ~tol:1e-9 "sums to one" 1.0 (Vec.sum p);
  Array.iter
    (fun x -> if x < 0.0 then Alcotest.failf "negative probability %g" x)
    p

let no_transitions_stay_put () =
  let g = Generator.of_matrix (Matrix.create 2 2) in
  let p = Transient.probabilities g ~p0:[| 0.3; 0.7 |] ~t:9.0 in
  Test_util.check_vec ~tol:1e-12 "frozen chain" [| 0.3; 0.7 |] p

let trajectory_matches_pointwise () =
  let g = g2 1.0 1.0 in
  let times = [ 0.5; 1.5; 3.0 ] in
  let traj = Transient.probability_trajectory g ~p0:[| 1.0; 0.0 |] ~times in
  List.iter2
    (fun tt p ->
      Test_util.check_vec ~tol:1e-10
        (Printf.sprintf "trajectory t=%g" tt)
        (Transient.probabilities g ~p0:[| 1.0; 0.0 |] ~t:tt)
        p)
    times traj

let occupancy_sums_to_t () =
  let g = g2 0.8 1.2 in
  let occ = Transient.mean_state_occupancy g ~p0:[| 1.0; 0.0 |] ~t:7.0 in
  Test_util.check_close ~tol:1e-9 "occupancy total" 7.0 (Vec.sum occ);
  Array.iter (fun x -> if x < 0.0 then Alcotest.fail "negative occupancy") occ

let occupancy_two_state_closed_form () =
  (* Integrate the closed-form p_0(u) over [0, T]. *)
  let lam = 0.7 and mu = 1.9 and horizon = 4.0 in
  let total = lam +. mu in
  let pi0 = mu /. total in
  let integral_p0 =
    (pi0 *. horizon) +. ((1.0 -. pi0) /. total *. (1.0 -. exp (-.total *. horizon)))
  in
  let occ = Transient.mean_state_occupancy (g2 lam mu) ~p0:[| 1.0; 0.0 |] ~t:horizon in
  Test_util.check_close ~tol:1e-7 "occupancy state 0" integral_p0 occ.(0);
  Test_util.check_close ~tol:1e-7 "occupancy state 1" (horizon -. integral_p0) occ.(1)

let accumulated_rewards_linear () =
  let g = g2 1.0 2.0 in
  let r1 = Transient.accumulated_rewards g ~p0:[| 1.0; 0.0 |] ~rewards:[| 2.0; 0.0 |] ~t:5.0 in
  let r2 = Transient.accumulated_rewards g ~p0:[| 1.0; 0.0 |] ~rewards:[| 0.0; 3.0 |] ~t:5.0 in
  let r12 = Transient.accumulated_rewards g ~p0:[| 1.0; 0.0 |] ~rewards:[| 2.0; 3.0 |] ~t:5.0 in
  Test_util.check_close ~tol:1e-8 "linearity in rewards" (r1 +. r2) r12

let input_validation () =
  let g = g2 1.0 1.0 in
  Test_util.check_raises_invalid "negative time" (fun () ->
      ignore (Transient.probabilities g ~p0:[| 1.0; 0.0 |] ~t:(-1.0)));
  Test_util.check_raises_invalid "bad p0 dimension" (fun () ->
      ignore (Transient.probabilities g ~p0:[| 1.0 |] ~t:1.0));
  Test_util.check_raises_invalid "negative p0" (fun () ->
      ignore (Transient.probabilities g ~p0:[| 2.0; -1.0 |] ~t:1.0))

let prop_chapman_kolmogorov =
  (* p(t+s) = evolve(evolve(p0, t), s). *)
  Test_util.qtest ~count:50 "Chapman-Kolmogorov"
    QCheck2.Gen.(pair (float_range 0.01 3.0) (float_range 0.01 3.0))
    (fun (t1, t2) ->
      let g =
        Generator.of_rates ~dim:3
          [ (0, 1, 1.0); (1, 2, 0.5); (2, 0, 0.9); (0, 2, 0.2) ]
      in
      let p0 = [| 1.0; 0.0; 0.0 |] in
      let direct = Transient.probabilities g ~p0 ~t:(t1 +. t2) in
      let mid = Transient.probabilities g ~p0 ~t:t1 in
      let stepped = Transient.probabilities g ~p0:mid ~t:t2 in
      Vec.approx_equal ~tol:1e-7 direct stepped)

let suite =
  [
    t "two-state closed form" `Quick transient_two_state;
    t "converges to steady state" `Quick converges_to_steady_state;
    t "distribution properties" `Quick distribution_properties;
    t "frozen chain" `Quick no_transitions_stay_put;
    t "trajectory" `Quick trajectory_matches_pointwise;
    t "occupancy sums to t" `Quick occupancy_sums_to_t;
    t "occupancy closed form" `Quick occupancy_two_state_closed_form;
    t "accumulated rewards linear" `Quick accumulated_rewards_linear;
    t "input validation" `Quick input_validation;
    prop_chapman_kolmogorov;
  ]
