open Dpm_core
open Dpm_sim

let t = Alcotest.test_case

let sys () = Paper_instance.system ()

let obs ?(time = 0.0) ?(switching = None) ?(in_transfer = false) ~mode ~queue () =
  {
    Controller.time;
    mode;
    switching_to = switching;
    queue_length = queue;
    in_transfer;
  }

let greedy_commands () =
  let s = sys () in
  let c = Controller.greedy s in
  let d = c.Controller.decide (obs ~mode:Paper_instance.sleeping ~queue:1 ()) Controller.Arrival in
  Alcotest.(check (option int)) "wake on demand" (Some Paper_instance.active)
    d.Controller.target;
  let d =
    c.Controller.decide
      (obs ~mode:Paper_instance.active ~queue:0 ~in_transfer:true ())
      (Controller.Service_completed 1)
  in
  Alcotest.(check (option int)) "sleep when empty" (Some Paper_instance.sleeping)
    d.Controller.target

let n_policy_commands () =
  let s = sys () in
  let c = Controller.n_policy s ~n:3 in
  let d = c.Controller.decide (obs ~mode:Paper_instance.sleeping ~queue:2 ()) Controller.Arrival in
  Alcotest.(check (option int)) "below threshold holds" None d.Controller.target;
  let d = c.Controller.decide (obs ~mode:Paper_instance.sleeping ~queue:3 ()) Controller.Arrival in
  Alcotest.(check (option int)) "threshold wakes" (Some Paper_instance.active)
    d.Controller.target;
  (* Serving exhaustively: active with backlog re-commands itself. *)
  let d =
    c.Controller.decide
      (obs ~mode:Paper_instance.active ~queue:1 ~in_transfer:true ())
      (Controller.Service_completed 2)
  in
  Alcotest.(check (option int)) "exhaustive service" (Some Paper_instance.active)
    d.Controller.target;
  Test_util.check_raises_invalid "n >= 1" (fun () ->
      ignore (Controller.n_policy s ~n:0))

let timeout_sequence () =
  let s = sys () in
  let c = Controller.timeout s ~delay:2.0 in
  (* Queue empties at t = 10 with the server up: a timer is armed,
     no immediate switch. *)
  let d =
    c.Controller.decide
      (obs ~time:10.0 ~mode:Paper_instance.active ~queue:0 ())
      (Controller.Service_completed 1)
  in
  Alcotest.(check (option int)) "no switch yet" None d.Controller.target;
  Alcotest.(check (option (float 1e-9))) "timer armed" (Some 2.0) d.Controller.timer;
  (* Timer fires with the queue still empty: sleep. *)
  let d =
    c.Controller.decide
      (obs ~time:12.0 ~mode:Paper_instance.active ~queue:0 ())
      Controller.Timer
  in
  Alcotest.(check (option int)) "sleep after timeout" (Some Paper_instance.sleeping)
    d.Controller.target

let timeout_cancelled_by_arrival () =
  let s = sys () in
  let c = Controller.timeout s ~delay:2.0 in
  ignore
    (c.Controller.decide
       (obs ~time:10.0 ~mode:Paper_instance.active ~queue:0 ())
       (Controller.Service_completed 1));
  (* An arrival resets idleness... *)
  let d =
    c.Controller.decide
      (obs ~time:11.0 ~mode:Paper_instance.active ~queue:1 ())
      Controller.Arrival
  in
  Alcotest.(check (option int)) "stay up for the request" (Some Paper_instance.active)
    d.Controller.target;
  (* ... so the stale timer at t = 12 must not sleep even if the
     queue is empty again only since t = 11.5. *)
  ignore
    (c.Controller.decide
       (obs ~time:11.5 ~mode:Paper_instance.active ~queue:0 ())
       (Controller.Service_completed 1));
  let d =
    c.Controller.decide
      (obs ~time:12.0 ~mode:Paper_instance.active ~queue:0 ())
      Controller.Timer
  in
  Alcotest.(check (option int)) "stale timer ignored" None d.Controller.target

let of_policy_transfer_lookup () =
  let s = sys () in
  (* A policy distinguishing transfer from stable states. *)
  let policy = function
    | Sys_model.Transfer (_, _) -> Paper_instance.waiting
    | Sys_model.Stable (_, _) -> Paper_instance.active
  in
  let c = Controller.of_policy s policy in
  let d =
    c.Controller.decide
      (obs ~mode:Paper_instance.active ~queue:2 ~in_transfer:true ())
      (Controller.Service_completed 3)
  in
  Alcotest.(check (option int)) "transfer state lookup" (Some Paper_instance.waiting)
    d.Controller.target;
  let d =
    c.Controller.decide (obs ~mode:Paper_instance.sleeping ~queue:2 ()) Controller.Arrival
  in
  Alcotest.(check (option int)) "stable lookup" (Some Paper_instance.active)
    d.Controller.target;
  (* Queue length beyond capacity clamps instead of crashing. *)
  let d =
    c.Controller.decide (obs ~mode:Paper_instance.sleeping ~queue:99 ()) Controller.Arrival
  in
  Alcotest.(check (option int)) "clamped" (Some Paper_instance.active) d.Controller.target

let always_on_commands_fastest () =
  let s = sys () in
  let c = Controller.always_on s in
  let d = c.Controller.decide (obs ~mode:Paper_instance.sleeping ~queue:0 ()) Controller.Init in
  Alcotest.(check (option int)) "wake at init" (Some Paper_instance.active)
    d.Controller.target

let suite =
  [
    t "greedy" `Quick greedy_commands;
    t "n-policy" `Quick n_policy_commands;
    t "timeout sequence" `Quick timeout_sequence;
    t "timeout stale timer" `Quick timeout_cancelled_by_arrival;
    t "of_policy lookups" `Quick of_policy_transfer_lookup;
    t "always-on" `Quick always_on_commands_fastest;
  ]
