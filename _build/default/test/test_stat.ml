open Dpm_prob

let t = Alcotest.test_case

let welford_known_values () =
  let w = Stat.Welford.create () in
  List.iter (Stat.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Stat.Welford.count w);
  Test_util.check_close ~tol:1e-12 "mean" 5.0 (Stat.Welford.mean w);
  (* Sample variance with Bessel correction: 32 / 7. *)
  Test_util.check_close ~tol:1e-12 "variance" (32.0 /. 7.0) (Stat.Welford.variance w)

let welford_empty_and_single () =
  let w = Stat.Welford.create () in
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Stat.Welford.mean w));
  Stat.Welford.add w 3.0;
  Test_util.check_close "single mean" 3.0 (Stat.Welford.mean w);
  Alcotest.(check bool) "single variance is nan" true
    (Float.is_nan (Stat.Welford.variance w))

let welford_merge_matches_sequential () =
  let all = Stat.Welford.create () in
  let a = Stat.Welford.create () and b = Stat.Welford.create () in
  for i = 1 to 50 do
    let x = Float.sin (float_of_int i) *. 10.0 in
    Stat.Welford.add all x;
    Stat.Welford.add (if i mod 2 = 0 then a else b) x
  done;
  let merged = Stat.Welford.merge a b in
  Alcotest.(check int) "count" 50 (Stat.Welford.count merged);
  Test_util.check_close ~tol:1e-10 "mean" (Stat.Welford.mean all)
    (Stat.Welford.mean merged);
  Test_util.check_close ~tol:1e-10 "variance" (Stat.Welford.variance all)
    (Stat.Welford.variance merged)

let confidence_interval_brackets_mean () =
  let w = Stat.Welford.create () in
  for i = 0 to 99 do
    Stat.Welford.add w (float_of_int (i mod 10))
  done;
  let lo, hi = Stat.Welford.confidence95 w in
  let m = Stat.Welford.mean w in
  Alcotest.(check bool) "lo < mean < hi" true (lo < m && m < hi)

let time_weighted_average () =
  let tw = Stat.Time_weighted.create 10.0 in
  Stat.Time_weighted.update tw ~at:2.0 20.0;
  Stat.Time_weighted.update tw ~at:3.0 0.0;
  (* integral = 10*2 + 20*1 + 0 = 40 over 4 time units. *)
  Test_util.check_close "integral" 40.0 (Stat.Time_weighted.integral tw ~upto:4.0);
  Test_util.check_close "average" 10.0 (Stat.Time_weighted.average tw ~upto:4.0);
  Test_util.check_close "current" 0.0 (Stat.Time_weighted.current tw)

let time_weighted_impulse () =
  let tw = Stat.Time_weighted.create 0.0 in
  Stat.Time_weighted.add_impulse tw 5.0;
  Test_util.check_close "impulse only" 5.0 (Stat.Time_weighted.integral tw ~upto:10.0);
  Test_util.check_close "impulse average" 0.5 (Stat.Time_weighted.average tw ~upto:10.0)

let time_weighted_guards () =
  let tw = Stat.Time_weighted.create ~at:5.0 1.0 in
  Test_util.check_raises_invalid "backwards clock" (fun () ->
      Stat.Time_weighted.update tw ~at:4.0 0.0);
  Alcotest.(check bool) "no elapsed time is nan" true
    (Float.is_nan (Stat.Time_weighted.average tw ~upto:5.0))

let histogram_counting () =
  let h = Stat.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stat.Histogram.add h) [ -1.0; 0.0; 0.5; 5.5; 9.99; 10.0; 42.0 ];
  Alcotest.(check int) "total" 7 (Stat.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Stat.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stat.Histogram.overflow h);
  Alcotest.(check int) "bin 0" 2 (Stat.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 5" 1 (Stat.Histogram.bin_count h 5);
  Alcotest.(check int) "bin 9" 1 (Stat.Histogram.bin_count h 9)

let histogram_quantile () =
  let h = Stat.Histogram.create ~lo:0.0 ~hi:100.0 ~bins:100 in
  for i = 0 to 999 do
    Stat.Histogram.add h (float_of_int (i mod 100))
  done;
  let median = Stat.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median near 50" true (Float.abs (median -. 50.0) < 2.0);
  Alcotest.(check bool) "empty quantile nan" true
    (Float.is_nan
       (Stat.Histogram.quantile (Stat.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2) 0.5))

let helpers () =
  Test_util.check_close "mean of list" 2.0 (Stat.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check bool) "mean of empty" true (Float.is_nan (Stat.mean []));
  Test_util.check_close "relative error" (-10.0)
    (Stat.relative_error ~actual:10.0 ~approx:9.0)

let prop_welford_mean_matches_naive =
  Test_util.qtest "welford mean equals naive mean"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let w = Stat.Welford.create () in
      List.iter (Stat.Welford.add w) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stat.Welford.mean w -. naive) <= 1e-9 *. (1.0 +. Float.abs naive))

let prop_time_weighted_constant =
  Test_util.qtest "constant signal averages to itself"
    QCheck2.Gen.(pair (float_range (-5.0) 5.0) (float_range 0.1 100.0))
    (fun (v, horizon) ->
      let tw = Stat.Time_weighted.create v in
      Float.abs (Stat.Time_weighted.average tw ~upto:horizon -. v) <= 1e-9)

let suite =
  [
    t "welford known values" `Quick welford_known_values;
    t "welford empty/single" `Quick welford_empty_and_single;
    t "welford merge" `Quick welford_merge_matches_sequential;
    t "confidence interval" `Quick confidence_interval_brackets_mean;
    t "time-weighted average" `Quick time_weighted_average;
    t "time-weighted impulse" `Quick time_weighted_impulse;
    t "time-weighted guards" `Quick time_weighted_guards;
    t "histogram counting" `Quick histogram_counting;
    t "histogram quantile" `Quick histogram_quantile;
    t "helpers" `Quick helpers;
    prop_welford_mean_matches_naive;
    prop_time_weighted_constant;
  ]
