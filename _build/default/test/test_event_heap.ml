open Dpm_sim

let t = Alcotest.test_case

let pop_in_time_order () =
  let h = Event_heap.create () in
  List.iter
    (fun (time, v) -> ignore (Event_heap.push h ~time v))
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (5.0, "e"); (4.0, "d") ];
  let order = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "d"; "e" ]
    (List.rev !order)

let ties_fire_in_insertion_order () =
  let h = Event_heap.create () in
  for i = 0 to 9 do
    ignore (Event_heap.push h ~time:1.0 i)
  done;
  for i = 0 to 9 do
    match Event_heap.pop h with
    | Some (_, v) -> Alcotest.(check int) "FIFO at equal times" i v
    | None -> Alcotest.fail "heap exhausted early"
  done

let size_tracks_live_events () =
  let h = Event_heap.create () in
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h);
  let k1 = Event_heap.push h ~time:1.0 () in
  let _k2 = Event_heap.push h ~time:2.0 () in
  Alcotest.(check int) "two live" 2 (Event_heap.size h);
  Event_heap.cancel h k1;
  Alcotest.(check int) "one live after cancel" 1 (Event_heap.size h);
  Event_heap.cancel h k1;
  Alcotest.(check int) "double cancel no-op" 1 (Event_heap.size h)

let cancelled_events_never_fire () =
  let h = Event_heap.create () in
  let k1 = Event_heap.push h ~time:1.0 "dead" in
  ignore (Event_heap.push h ~time:2.0 "alive");
  Event_heap.cancel h k1;
  (match Event_heap.pop h with
  | Some (time, v) ->
      Alcotest.(check string) "skips cancelled" "alive" v;
      Test_util.check_close "time" 2.0 time
  | None -> Alcotest.fail "expected an event");
  Alcotest.(check bool) "now empty" true (Event_heap.is_empty h)

let cancel_after_fire_is_noop () =
  let h = Event_heap.create () in
  let k = Event_heap.push h ~time:1.0 () in
  ignore (Event_heap.pop h);
  Event_heap.cancel h k;
  Alcotest.(check int) "size stays zero" 0 (Event_heap.size h)

let peek_skips_cancelled () =
  let h = Event_heap.create () in
  let k = Event_heap.push h ~time:1.0 "dead" in
  ignore (Event_heap.push h ~time:3.0 "alive");
  Event_heap.cancel h k;
  Alcotest.(check (option (float 0.0))) "peek" (Some 3.0) (Event_heap.peek_time h);
  Alcotest.(check int) "peek did not consume" 1 (Event_heap.size h)

let nan_rejected () =
  let h = Event_heap.create () in
  Test_util.check_raises_invalid "NaN time" (fun () ->
      ignore (Event_heap.push h ~time:Float.nan ()))

let prop_heap_sorts_random_streams =
  Test_util.qtest "random pushes pop sorted"
    QCheck2.Gen.(list_size (int_range 0 200) (float_range 0.0 1000.0))
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun time -> ignore (Event_heap.push h ~time time)) times;
      let rec drain acc =
        match Event_heap.pop h with
        | Some (_, v) -> drain (v :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare times)

let prop_cancel_half =
  Test_util.qtest "cancelling odd-indexed events leaves the rest"
    QCheck2.Gen.(list_size (int_range 0 100) (float_range 0.0 100.0))
    (fun times ->
      let h = Event_heap.create () in
      let handles = List.map (fun time -> Event_heap.push h ~time time) times in
      List.iteri (fun i k -> if i mod 2 = 1 then Event_heap.cancel h k) handles;
      let expected =
        List.sort compare
          (List.filteri (fun i _ -> i mod 2 = 0) times)
      in
      let rec drain acc =
        match Event_heap.pop h with
        | Some (_, v) -> drain (v :: acc)
        | None -> List.rev acc
      in
      drain [] = expected)

let suite =
  [
    t "pop order" `Quick pop_in_time_order;
    t "tie-break by insertion" `Quick ties_fire_in_insertion_order;
    t "size tracking" `Quick size_tracks_live_events;
    t "cancellation" `Quick cancelled_events_never_fire;
    t "cancel after fire" `Quick cancel_after_fire_is_noop;
    t "peek skips cancelled" `Quick peek_skips_cancelled;
    t "NaN rejected" `Quick nan_rejected;
    prop_heap_sorts_random_streams;
    prop_cancel_half;
  ]
