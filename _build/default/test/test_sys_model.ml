open Dpm_core
open Dpm_linalg

let t = Alcotest.test_case

let sys ?(q = 5) ?(lam = 1.0 /. 6.0) () =
  Sys_model.create ~sp:(Paper_instance.service_provider ()) ~queue_capacity:q
    ~arrival_rate:lam ()

let state_space_size () =
  let s = sys () in
  (* |X| = S (Q+1) + |S_active| Q = 3*6 + 1*5 = 23. *)
  Alcotest.(check int) "paper instance size" 23 (Sys_model.num_states s);
  Alcotest.(check int) "states array" 23 (Array.length (Sys_model.states s))

let indexing_roundtrip () =
  let s = sys () in
  Array.iteri
    (fun k x ->
      Alcotest.(check int) (Format.asprintf "%a" (Sys_model.pp_state s) x) k
        (Sys_model.index s x))
    (Sys_model.states s);
  Test_util.check_raises_invalid "transfer of inactive mode" (fun () ->
      ignore (Sys_model.index s (Sys_model.Transfer (Paper_instance.sleeping, 1))));
  Test_util.check_raises_invalid "queue out of range" (fun () ->
      ignore (Sys_model.index s (Sys_model.Stable (0, 6))))

let cost_components () =
  let s = sys () in
  Alcotest.(check int) "stable waiting" 3
    (Sys_model.waiting_requests (Sys_model.Stable (0, 3)));
  Alcotest.(check int) "transfer waiting" 2
    (Sys_model.waiting_requests (Sys_model.Transfer (0, 3)));
  (* Power cost: pow(s) + chi * ene for a commanded switch. *)
  Test_util.check_close "stay cost is pow" 40.0
    (Sys_model.power_cost s (Sys_model.Stable (0, 0)) ~action:0);
  (* active -> waiting: 40 + (1/0.1)*0.2 = 42. *)
  Test_util.check_close "switch cost adds energy rate" 42.0
    (Sys_model.power_cost s (Sys_model.Stable (0, 0)) ~action:1);
  (* sleeping -> active: 0.1 + (1/1.1)*11 = 10.1. *)
  Test_util.check_close "wakeup power" (0.1 +. (11.0 /. 1.1))
    (Sys_model.power_cost s (Sys_model.Stable (2, 1)) ~action:0);
  (* Weighted total, Eqn 3.1. *)
  Test_util.check_close "weighted cost" (40.0 +. (2.0 *. 3.0))
    (Sys_model.cost s ~weight:2.0 (Sys_model.Stable (0, 3)) ~action:0)

let constraint_1_stable_active () =
  let s = sys () in
  for i = 0 to 5 do
    Alcotest.(check (list int))
      (Printf.sprintf "active stable q%d" i)
      [ 0 ]
      (Sys_model.valid_actions s (Sys_model.Stable (0, i)))
  done

let constraint_2_full_queue_inactive () =
  let s = sys () in
  (* waiting (wakeup 0.5) at q5: active, or nothing slower. *)
  Alcotest.(check (list int)) "waiting at full queue" [ 0 ]
    (Sys_model.valid_actions s (Sys_model.Stable (1, 5)));
  (* sleeping (wakeup 1.1) at q5: active or the faster-waking waiting. *)
  Alcotest.(check (list int)) "sleeping at full queue" [ 0; 1 ]
    (Sys_model.valid_actions s (Sys_model.Stable (2, 5)));
  (* below full, anything goes for inactive modes *)
  Alcotest.(check (list int)) "sleeping below full" [ 0; 1; 2 ]
    (Sys_model.valid_actions s (Sys_model.Stable (2, 4)))

let constraint_3_full_transfer () =
  let s = sys () in
  (* Single active mode: staying (equal speed) and inactive targets
     are legal even in the full transfer state. *)
  Alcotest.(check (list int)) "full transfer" [ 0; 1; 2 ]
    (Sys_model.valid_actions s (Sys_model.Transfer (0, 5)))

let constraint_3_multi_speed () =
  let sp =
    Service_provider.create
      ~names:[| "slow"; "fast"; "off" |]
      ~switch_time:[| [| 0.0; 0.2; 0.3 |]; [| 0.2; 0.0; 0.3 |]; [| 1.0; 1.5; 0.0 |] |]
      ~service_rate:[| 0.5; 2.0; 0.0 |]
      ~power:[| 10.0; 30.0; 0.2 |]
      ~switch_energy:
        [| [| 0.0; 1.0; 1.0 |]; [| 1.0; 0.0; 1.0 |]; [| 5.0; 8.0; 0.0 |] |]
  in
  let s = Sys_model.create ~sp ~queue_capacity:3 ~arrival_rate:1.0 () in
  (* In the full transfer state the fast server may not downshift. *)
  Alcotest.(check (list int)) "fast in full transfer" [ 1; 2 ]
    (Sys_model.valid_actions s (Sys_model.Transfer (1, 3)));
  Alcotest.(check (list int)) "slow in full transfer may upshift" [ 0; 1; 2 ]
    (Sys_model.valid_actions s (Sys_model.Transfer (0, 3)));
  (* Constraint 1 with two active modes: active stable states offer
     both speeds. *)
  Alcotest.(check (list int)) "stable active choices" [ 0; 1 ]
    (Sys_model.valid_actions s (Sys_model.Stable (0, 2)))

let transition_structure () =
  let s = sys () in
  let idx = Sys_model.index s in
  let lam = 1.0 /. 6.0 and mu = 1.0 /. 1.5 in
  (* Stable active with queue: arrival + service (+ no switch for stay). *)
  let row = Sys_model.transitions s (Sys_model.Stable (0, 2)) ~action:0 in
  Alcotest.(check int) "two transitions" 2 (List.length row);
  Test_util.check_close "arrival" lam
    (List.assoc (idx (Sys_model.Stable (0, 3))) row);
  Test_util.check_close "service" mu
    (List.assoc (idx (Sys_model.Transfer (0, 2))) row);
  (* Stable inactive commanded to wake. *)
  let row = Sys_model.transitions s (Sys_model.Stable (2, 1)) ~action:0 in
  Test_util.check_close "wakeup rate" (1.0 /. 1.1)
    (List.assoc (idx (Sys_model.Stable (0, 1))) row);
  (* Transfer resolving to sleep. *)
  let row = Sys_model.transitions s (Sys_model.Transfer (0, 1)) ~action:2 in
  Test_util.check_close "transfer resolution" (1.0 /. 0.2)
    (List.assoc (idx (Sys_model.Stable (2, 0))) row);
  (* Transfer staying: big-M self switch. *)
  let row = Sys_model.transitions s (Sys_model.Transfer (0, 3)) ~action:0 in
  Test_util.check_close "self switch big-M" (Sys_model.self_switch_rate s)
    (List.assoc (idx (Sys_model.Stable (0, 2))) row);
  (* Full stable state: no arrival transition. *)
  let row = Sys_model.transitions s (Sys_model.Stable (0, 5)) ~action:0 in
  Alcotest.(check int) "only service at q_Q" 1 (List.length row)

let queue_full_flags () =
  let s = sys () in
  Alcotest.(check bool) "stable full" true
    (Sys_model.is_queue_full s (Sys_model.Stable (1, 5)));
  Alcotest.(check bool) "transfer full" true
    (Sys_model.is_queue_full s (Sys_model.Transfer (0, 5)));
  Alcotest.(check bool) "not full" false
    (Sys_model.is_queue_full s (Sys_model.Stable (1, 4)))

let ctmdp_respects_constraints () =
  let s = sys () in
  let m = Sys_model.to_ctmdp s ~weight:1.0 in
  Alcotest.(check int) "state count" 23 (Dpm_ctmdp.Model.num_states m);
  Array.iteri
    (fun k x ->
      let labels =
        List.map (fun c -> c.Dpm_ctmdp.Model.action) (Dpm_ctmdp.Model.choices m k)
      in
      Alcotest.(check (list int))
        (Format.asprintf "choices of %a" (Sys_model.pp_state s) x)
        (Sys_model.valid_actions s x) labels)
    (Sys_model.states s)

(* --- The Section III tensor formula vs the direct builder ---------- *)

let tensor_matches_direct () =
  List.iter
    (fun action ->
      List.iter
        (fun q ->
          let s = sys ~q () in
          let direct = Sys_model.uniform_generator s ~action in
          let tensor = Sys_model.tensor_generator s ~action in
          if not (Matrix.approx_equal ~tol:1e-9 direct tensor) then
            Alcotest.failf "action %d, Q=%d: tensor formula disagrees@.%a@.vs@.%a"
              action q Matrix.pp direct Matrix.pp tensor)
        [ 1; 2; 5 ])
    [ 0; 1; 2 ]

let tensor_rejects_multi_active () =
  let sp =
    Service_provider.create
      ~names:[| "slow"; "fast"; "off" |]
      ~switch_time:[| [| 0.0; 0.2; 0.3 |]; [| 0.2; 0.0; 0.3 |]; [| 1.0; 1.5; 0.0 |] |]
      ~service_rate:[| 0.5; 2.0; 0.0 |]
      ~power:[| 10.0; 30.0; 0.2 |]
      ~switch_energy:
        [| [| 0.0; 1.0; 1.0 |]; [| 1.0; 0.0; 1.0 |]; [| 5.0; 8.0; 0.0 |] |]
  in
  let s = Sys_model.create ~sp ~queue_capacity:2 ~arrival_rate:1.0 () in
  Test_util.check_raises_invalid "multi-active unsupported" (fun () ->
      ignore (Sys_model.tensor_generator s ~action:0))

let every_valid_policy_is_unichain () =
  (* Exhaustively enumerate constraint-respecting policies on a small
     instance and check each induces a chain with a unique closed
     class (the paper's connectivity argument). *)
  let s = sys ~q:2 () in
  let m = Sys_model.to_ctmdp s ~weight:1.0 in
  let count = ref 0 in
  Seq.iter
    (fun p ->
      incr count;
      let g = Dpm_ctmdp.Policy.generator m p in
      match Dpm_ctmc.Structure.recurrent_classes g with
      | [ _ ] -> ()
      | cs ->
          Alcotest.failf "policy %d: %d closed classes" !count (List.length cs))
    (Dpm_ctmdp.Policy.enumerate m);
  Alcotest.(check bool) "checked many policies" true (!count > 1000)

let with_arrival_rate_rebuilds () =
  let s = sys () in
  let s2 = Sys_model.with_arrival_rate s 0.5 in
  Test_util.check_close "new rate" 0.5 (Sys_model.arrival_rate s2);
  Test_util.check_close "old rate intact" (1.0 /. 6.0) (Sys_model.arrival_rate s);
  Test_util.check_raises_invalid "bad rate" (fun () ->
      ignore (Sys_model.with_arrival_rate s 0.0))

let generator_row_sums_zero_for_all_policies () =
  let s = sys ~q:2 () in
  let m = Sys_model.to_ctmdp s ~weight:0.3 in
  let r = Dpm_ctmdp.Policy_iteration.solve m in
  let g =
    Sys_model.generator_of_actions s ~actions:(fun x ->
        r.Dpm_ctmdp.Policy_iteration.policy
        |> fun p -> Dpm_ctmdp.Policy.action m p (Sys_model.index s x))
  in
  Test_util.check_close "row sums" 0.0
    (Vec.norm_inf (Matrix.row_sums (Dpm_ctmc.Generator.to_matrix g)))

let suite =
  [
    t "state space size" `Quick state_space_size;
    t "indexing roundtrip" `Quick indexing_roundtrip;
    t "cost components (Eqn 3.1)" `Quick cost_components;
    t "constraint 1" `Quick constraint_1_stable_active;
    t "constraint 2" `Quick constraint_2_full_queue_inactive;
    t "constraint 3" `Quick constraint_3_full_transfer;
    t "constraint 3 multi-speed" `Quick constraint_3_multi_speed;
    t "transition structure" `Quick transition_structure;
    t "queue full flags" `Quick queue_full_flags;
    t "ctmdp respects constraints" `Quick ctmdp_respects_constraints;
    t "tensor formula matches direct builder" `Quick tensor_matches_direct;
    t "tensor rejects multi-active" `Quick tensor_rejects_multi_active;
    t "every valid policy is unichain" `Slow every_valid_policy_is_unichain;
    t "with_arrival_rate" `Quick with_arrival_rate_rebuilds;
    t "policy generator row sums" `Quick generator_row_sums_zero_for_all_policies;
  ]
