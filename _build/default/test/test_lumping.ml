open Dpm_ctmc

let t = Alcotest.test_case

(* Two interchangeable middle states: 0 -> {1, 2} -> 3 -> 0 with
   symmetric rates; {1, 2} lump. *)
let symmetric_chain () =
  Generator.of_rates ~dim:4
    [
      (0, 1, 1.0); (0, 2, 1.0);
      (1, 3, 2.0); (2, 3, 2.0);
      (3, 0, 0.5);
    ]

let symmetric_partition = [| 0; 1; 1; 2 |]

let trivial_partition_is_lumpable () =
  (* Every rate is internal to the single block, so the one-block
     partition always lumps (to a single absorbing macro-state). *)
  let g = symmetric_chain () in
  Alcotest.(check bool) "all-in-one lumps" true
    (Lumping.is_lumpable g [| 0; 0; 0; 0 |]);
  Alcotest.(check int) "quotient is one state" 1
    (Generator.dim (Lumping.quotient g [| 0; 0; 0; 0 |]))

let lumpable_detected () =
  let g = symmetric_chain () in
  Alcotest.(check bool) "symmetric pair lumps" true
    (Lumping.is_lumpable g symmetric_partition);
  (* Breaking the symmetry breaks lumpability. *)
  let g' =
    Generator.of_rates ~dim:4
      [ (0, 1, 1.0); (0, 2, 1.0); (1, 3, 2.0); (2, 3, 3.0); (3, 0, 0.5) ]
  in
  Alcotest.(check bool) "asymmetric pair does not lump" false
    (Lumping.is_lumpable g' symmetric_partition)

let quotient_preserves_steady_state () =
  let g = symmetric_chain () in
  let q = Lumping.quotient g symmetric_partition in
  Alcotest.(check int) "3 blocks" 3 (Generator.dim q);
  let pi_full = Steady_state.solve g in
  let pi_quot = Steady_state.solve q in
  (* Block probabilities = summed member probabilities. *)
  Test_util.check_close ~tol:1e-10 "block 0" pi_full.(0) pi_quot.(0);
  Test_util.check_close ~tol:1e-10 "block 1" (pi_full.(1) +. pi_full.(2)) pi_quot.(1);
  Test_util.check_close ~tol:1e-10 "block 2" pi_full.(3) pi_quot.(2)

let quotient_rejects_non_lumpable () =
  let g =
    Generator.of_rates ~dim:4
      [ (0, 1, 1.0); (0, 2, 1.0); (1, 3, 2.0); (2, 3, 3.0); (3, 0, 0.5) ]
  in
  Test_util.check_raises_invalid "not lumpable" (fun () ->
      ignore (Lumping.quotient g symmetric_partition))

let partition_validation () =
  let g = symmetric_chain () in
  Test_util.check_raises_invalid "length" (fun () ->
      ignore (Lumping.is_lumpable g [| 0; 1 |]));
  Test_util.check_raises_invalid "non-contiguous ids" (fun () ->
      ignore (Lumping.is_lumpable g [| 0; 2; 2; 3 |]))

let coarsest_refinement_finds_symmetry () =
  let g = symmetric_chain () in
  (* Starting from {0,3} vs {1,2} (say, states grouped by power
     class), the refinement must split 0 from 3 (their dynamics
     differ) but keep the genuinely symmetric pair together. *)
  let p = Lumping.coarsest_refinement g [| 0; 1; 1; 0 |] in
  Alcotest.(check bool) "result is lumpable" true (Lumping.is_lumpable g p);
  Alcotest.(check bool) "1 and 2 share a block" true (p.(1) = p.(2));
  Alcotest.(check bool) "0 separate" true (p.(0) <> p.(1));
  Alcotest.(check bool) "3 separate" true (p.(3) <> p.(1) && p.(3) <> p.(0))

let refinement_respects_initial_blocks () =
  let g = symmetric_chain () in
  (* Forcing 1 and 2 apart initially must keep them apart. *)
  let p = Lumping.coarsest_refinement g [| 0; 1; 2; 0 |] in
  Alcotest.(check bool) "lumpable" true (Lumping.is_lumpable g p);
  Alcotest.(check bool) "1 and 2 still apart" true (p.(1) <> p.(2))

let dpm_duplicate_mode_lumps () =
  (* Two indistinguishable sleep modes reached and left with equal
     rates: refinement from the trivial partition must merge them. *)
  let g =
    Generator.of_rates ~dim:3
      [
        (0, 1, 0.5); (0, 2, 0.5);
        (1, 0, 0.5); (2, 0, 0.5);
      ]
  in
  let p = Lumping.coarsest_refinement g [| 0; 1; 1 |] in
  Alcotest.(check bool) "identical sleeps lump" true (p.(1) = p.(2));
  let q = Lumping.quotient g p in
  Alcotest.(check int) "reduced to 2 states" 2 (Generator.dim q)

let lift_expands () =
  let lifted = Lumping.lift [| 0; 1; 1; 2 |] [| 0.5; 0.3; 0.2 |] in
  Test_util.check_vec "lift" [| 0.5; 0.3; 0.3; 0.2 |] lifted

let prop_quotient_steady_state_consistent =
  (* Random chains with an artificially duplicated state: duplicate
     and original must lump, and the quotient's stationary mass must
     match the block sums. *)
  Test_util.qtest ~count:60 "quotient preserves stationary block mass"
    QCheck2.Gen.(
      int_range 3 7 >>= fun n ->
      list_repeat (n * 2) (float_range 0.1 3.0) >>= fun rs ->
      return (n, Array.of_list rs))
    (fun (n, rs) ->
      (* Ring chain 0..n-1, then duplicate state 1 as state n (same
         in/out structure). *)
      let rates = ref [] in
      for i = 0 to n - 1 do
        rates := (i, (i + 1) mod n, rs.(i)) :: !rates
      done;
      (* add a second ring direction for richness *)
      for i = 0 to n - 1 do
        rates := (i, (i + n - 1) mod n, rs.(n + i)) :: !rates
      done;
      (* duplicate state 1: n behaves exactly like 1; split inflows
         into 1 evenly between 1 and n. *)
      let dup = n in
      let adjusted =
        List.concat_map
          (fun (i, j, r) ->
            if j = 1 then [ (i, 1, r /. 2.0); (i, dup, r /. 2.0) ]
            else [ (i, j, r) ])
          !rates
      in
      let dup_out =
        List.filter_map
          (fun (i, j, r) -> if i = 1 && j <> 1 then Some (dup, j, r) else None)
          adjusted
      in
      let g = Dpm_ctmc.Generator.of_rates ~dim:(n + 1) (adjusted @ dup_out) in
      let partition = Array.init (n + 1) (fun s -> if s = dup then 1 else s) in
      Lumping.is_lumpable g partition
      &&
      let q = Lumping.quotient g partition in
      let pi_full = Steady_state.solve g in
      let pi_quot = Steady_state.solve q in
      let ok = ref true in
      for b = 0 to n - 1 do
        let mass =
          if b = 1 then pi_full.(1) +. pi_full.(dup) else pi_full.(b)
        in
        if Float.abs (mass -. pi_quot.(b)) > 1e-8 then ok := false
      done;
      !ok)

let suite =
  [
    t "trivial partition" `Quick trivial_partition_is_lumpable;
    t "lumpable detection" `Quick lumpable_detected;
    t "quotient steady state" `Quick quotient_preserves_steady_state;
    t "quotient rejects" `Quick quotient_rejects_non_lumpable;
    t "partition validation" `Quick partition_validation;
    t "coarsest refinement" `Quick coarsest_refinement_finds_symmetry;
    t "refinement respects blocks" `Quick refinement_respects_initial_blocks;
    t "duplicate sleep modes lump" `Quick dpm_duplicate_mode_lumps;
    t "lift" `Quick lift_expands;
    prop_quotient_steady_state_consistent;
  ]
