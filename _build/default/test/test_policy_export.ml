open Dpm_core

let t = Alcotest.test_case

let sys () = Paper_instance.system ()

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let table_mentions_every_mode () =
  let s = sys () in
  let txt = Policy_export.table s (Policies.greedy s) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (contains txt name))
    [ "active"; "waiting"; "sleeping"; "q0"; "q5" ];
  (* Grid shape: header + 3 stable rows + 1 transfer row. *)
  Alcotest.(check int) "rows" 5
    (List.length (String.split_on_char '\n' (String.trim txt)))

let csv_row_count () =
  let s = sys () in
  let csv = Policy_export.to_csv s (Policies.greedy s) in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + |X| rows" (Sys_model.num_states s + 1)
    (List.length lines)

let dot_parses_superficially () =
  let s = sys () in
  let dot = Policy_export.to_dot s (Policies.greedy s) in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "paper label" true (contains dot "(active, q1>0)")

let diff_and_agreement () =
  let s = sys () in
  let greedy = Policies.greedy s in
  Alcotest.(check int) "self diff empty" 0
    (List.length (Policy_export.diff s greedy greedy));
  Test_util.check_close "self agreement" 1.0
    (Policy_export.agreement s greedy greedy);
  let n3 = Policies.n_policy s ~n:3 in
  let d = Policy_export.diff s greedy n3 in
  (* They differ exactly on the sleeping/waiting stable states with
     1 <= queue < 3 (greedy wakes, N=3 does not). *)
  Alcotest.(check int) "expected disagreements" 4 (List.length d);
  List.iter
    (fun (x, a, b) ->
      (match x with
      | Sys_model.Stable (s_mode, i) ->
          Alcotest.(check bool) "inactive mode" false
            (Service_provider.is_active (Sys_model.sp s) s_mode);
          Alcotest.(check bool) "below threshold" true (i >= 1 && i < 3)
      | Sys_model.Transfer _ -> Alcotest.fail "transfer states agree");
      Alcotest.(check int) "greedy wakes" Paper_instance.active a;
      Alcotest.(check bool) "n3 stays down" true (b <> Paper_instance.active))
    d;
  Test_util.check_close ~tol:1e-9 "agreement fraction" (19.0 /. 23.0)
    (Policy_export.agreement s greedy n3)

let suite =
  [
    t "table" `Quick table_mentions_every_mode;
    t "csv" `Quick csv_row_count;
    t "dot" `Quick dot_parses_superficially;
    t "diff and agreement" `Quick diff_and_agreement;
  ]
