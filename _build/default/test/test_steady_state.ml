open Dpm_linalg
open Dpm_ctmc

let t = Alcotest.test_case

let birth_death n lam mu =
  let rates = ref [] in
  for i = 0 to n - 2 do
    rates := (i, i + 1, lam) :: (i + 1, i, mu) :: !rates
  done;
  Generator.of_rates ~dim:n !rates

let mm1k_closed_form n lam mu =
  let rho = lam /. mu in
  Vec.normalize1 (Vec.init n (fun i -> rho ** float_of_int i))

let two_state_closed_form () =
  (* pi = (mu, lam) / (lam + mu) *)
  let g = Generator.of_rates ~dim:2 [ (0, 1, 1.0); (1, 0, 4.0) ] in
  let expected = [| 0.8; 0.2 |] in
  Test_util.check_vec ~tol:1e-12 "gth" expected (Steady_state.gth g);
  Test_util.check_vec ~tol:1e-12 "lu" expected (Steady_state.lu_solve g);
  Test_util.check_vec ~tol:1e-9 "iterative" expected
    (Steady_state.iterative g).Iterative.solution;
  Test_util.check_vec ~tol:1e-12 "solve" expected (Steady_state.solve g)

let mm1k_all_solvers () =
  let n = 9 and lam = 0.4 and mu = 1.1 in
  let g = birth_death n lam mu in
  let expected = mm1k_closed_form n lam mu in
  Test_util.check_vec ~tol:1e-12 "gth" expected (Steady_state.gth g);
  Test_util.check_vec ~tol:1e-10 "lu" expected (Steady_state.lu_solve g);
  Test_util.check_vec ~tol:1e-9 "iterative" expected
    (Steady_state.iterative g).Iterative.solution

let transient_states_get_zero () =
  (* 0 -> 1 <-> 2: state 0 is transient. *)
  let g = Generator.of_rates ~dim:3 [ (0, 1, 1.0); (1, 2, 1.0); (2, 1, 1.0) ] in
  let p = Steady_state.solve g in
  Test_util.check_vec ~tol:1e-12 "mass on the closed pair" [| 0.0; 0.5; 0.5 |] p;
  Test_util.check_close ~tol:1e-12 "residual" 0.0 (Steady_state.residual g p)

let multichain_rejected () =
  let g = Generator.of_rates ~dim:4 [ (0, 1, 1.0); (1, 0, 1.0); (2, 3, 1.0); (3, 2, 1.0) ] in
  match Steady_state.solve g with
  | exception Steady_state.Not_irreducible _ -> ()
  | _ -> Alcotest.fail "expected Not_irreducible"

let stiff_rates_gth_stable () =
  (* Mix big-M (1e8) self-switch-style rates with small ones; GTH must
     keep full relative accuracy. *)
  let g =
    Generator.of_rates ~dim:4
      [ (0, 1, 0.1667); (1, 2, 1e8); (2, 3, 0.667); (3, 0, 0.9) ]
  in
  let p = Steady_state.gth g in
  (* Cycle chain: pi_i proportional to 1/exit_rate. *)
  let expected =
    Vec.normalize1 [| 1.0 /. 0.1667; 1e-8; 1.0 /. 0.667; 1.0 /. 0.9 |]
  in
  Test_util.check_vec ~tol:1e-12 "stiff cycle" expected p;
  (* The tiny-probability state must be right in *relative* terms,
     which subtractive elimination would lose. *)
  Test_util.check_relative ~rel:1e-10 "tiny state exact" expected.(1) p.(1)

let expected_value_reads_costs () =
  let p = [| 0.25; 0.75 |] in
  Test_util.check_close "expectation" 7.5
    (Steady_state.expected_value p (fun i -> if i = 0 then 0.0 else 10.0))

let random_irreducible_gen =
  QCheck2.Gen.(
    int_range 2 10 >>= fun n ->
    map
      (fun entries ->
        let ring = List.init n (fun i -> (i, (i + 1) mod n, 0.3)) in
        let extra =
          List.filter (fun (i, j, _) -> i <> j)
            (List.map (fun (i, j, v) -> (i mod n, j mod n, v)) entries)
        in
        Generator.of_rates ~dim:n (ring @ extra))
      (list_size (int_range 0 20)
         (map3 (fun i j v -> (i, j, v)) (int_range 0 9) (int_range 0 9)
            (float_range 0.0 4.0))))

let prop_gth_lu_agree =
  Test_util.qtest "GTH and LU agree on irreducible chains"
    random_irreducible_gen (fun g ->
      Vec.approx_equal ~tol:1e-8 (Steady_state.gth g) (Steady_state.lu_solve g))

let prop_solution_is_stationary =
  Test_util.qtest "solve gives pG = 0, sum p = 1" random_irreducible_gen
    (fun g ->
      let p = Steady_state.solve g in
      Steady_state.residual g p <= 1e-8
      && Float.abs (Vec.sum p -. 1.0) <= 1e-9
      && Array.for_all (fun x -> x >= -1e-12) p)

let prop_time_scaling_invariance =
  Test_util.qtest "steady state invariant to time rescaling"
    random_irreducible_gen (fun g ->
      Vec.approx_equal ~tol:1e-8 (Steady_state.solve g)
        (Steady_state.solve (Generator.scale 7.5 g)))

let suite =
  [
    t "two-state closed form" `Quick two_state_closed_form;
    t "M/M/1/K closed form" `Quick mm1k_all_solvers;
    t "transient states zero" `Quick transient_states_get_zero;
    t "multichain rejected" `Quick multichain_rejected;
    t "stiff rates (GTH stability)" `Quick stiff_rates_gth_stable;
    t "expected_value" `Quick expected_value_reads_costs;
    prop_gth_lu_agree;
    prop_solution_is_stationary;
    prop_time_scaling_invariance;
  ]
