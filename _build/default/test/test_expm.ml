open Dpm_linalg
open Dpm_ctmc

let t = Alcotest.test_case

let exp_zero_is_identity () =
  let e = Expm.expm (Matrix.create 3 3) in
  Alcotest.(check bool) "identity" true (Matrix.approx_equal (Matrix.identity 3) e)

let exp_diagonal () =
  let e = Expm.expm (Matrix.diag [| 1.0; -2.0; 0.5 |]) in
  Test_util.check_close ~tol:1e-12 "e^1" (exp 1.0) (Matrix.get e 0 0);
  Test_util.check_close ~tol:1e-12 "e^-2" (exp (-2.0)) (Matrix.get e 1 1);
  Test_util.check_close ~tol:1e-12 "e^.5" (exp 0.5) (Matrix.get e 2 2);
  Test_util.check_close "off-diagonal" 0.0 (Matrix.get e 0 1)

let exp_nilpotent () =
  (* N = [[0,1],[0,0]]: e^N = I + N exactly. *)
  let n = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let e = Expm.expm n in
  Alcotest.(check bool) "I + N" true
    (Matrix.approx_equal ~tol:1e-14
       (Matrix.of_arrays [| [| 1.0; 1.0 |]; [| 0.0; 1.0 |] |])
       e)

let exp_rotation () =
  (* exp([[0,-t],[t,0]]) is the rotation matrix by angle t. *)
  let theta = 0.7 in
  let a = Matrix.of_arrays [| [| 0.0; -.theta |]; [| theta; 0.0 |] |] in
  let e = Expm.expm a in
  Test_util.check_close ~tol:1e-12 "cos" (cos theta) (Matrix.get e 0 0);
  Test_util.check_close ~tol:1e-12 "-sin" (-.sin theta) (Matrix.get e 0 1);
  Test_util.check_close ~tol:1e-12 "sin" (sin theta) (Matrix.get e 1 0)

let semigroup_property () =
  let a =
    Matrix.of_arrays [| [| -1.0; 1.0; 0.0 |]; [| 2.0; -3.0; 1.0 |]; [| 0.5; 0.0; -0.5 |] |]
  in
  let e1 = Expm.transition_matrix a ~t:0.8 in
  let e2 = Expm.transition_matrix a ~t:1.3 in
  let e12 = Expm.transition_matrix a ~t:2.1 in
  Alcotest.(check bool) "exp((s+t)A) = exp(sA) exp(tA)" true
    (Matrix.approx_equal ~tol:1e-10 e12 (Matrix.mul e1 e2))

let generator_rows_stay_stochastic () =
  let g =
    Generator.of_rates ~dim:4
      [ (0, 1, 1.0); (1, 2, 0.5); (2, 3, 2.0); (3, 0, 0.7); (1, 0, 0.2) ]
  in
  let p = Expm.transition_matrix (Generator.to_matrix g) ~t:3.0 in
  Test_util.check_vec ~tol:1e-10 "row sums one" (Vec.make 4 1.0) (Matrix.row_sums p);
  Matrix.fold (fun () x -> if x < -1e-12 then Alcotest.fail "negative prob") () p

let matches_uniformization () =
  (* The two transient solvers are entirely independent; agreement is
     strong evidence both are right. *)
  let g =
    Generator.of_rates ~dim:5
      [ (0, 1, 0.4); (1, 2, 1.1); (2, 0, 0.6); (2, 3, 0.8); (3, 4, 2.0); (4, 2, 0.3); (4, 0, 0.9) ]
  in
  List.iter
    (fun tt ->
      let p_exp = Expm.transition_matrix (Generator.to_matrix g) ~t:tt in
      let p0 = [| 1.0; 0.0; 0.0; 0.0; 0.0 |] in
      let p_uni = Transient.probabilities ~eps:1e-13 g ~p0 ~t:tt in
      let row0 = Matrix.row p_exp 0 in
      Test_util.check_vec ~tol:1e-8
        (Printf.sprintf "t = %g" tt)
        row0 p_uni)
    [ 0.1; 1.0; 5.0; 20.0 ]

let validation () =
  Test_util.check_raises_invalid "not square" (fun () ->
      ignore (Expm.expm (Matrix.create 2 3)));
  Test_util.check_raises_invalid "negative time" (fun () ->
      ignore (Expm.transition_matrix (Matrix.identity 2) ~t:(-1.0)))

let prop_inverse =
  Test_util.qtest ~count:50 "exp(A) exp(-A) = I"
    QCheck2.Gen.(
      int_range 1 5 >>= fun n ->
      map
        (fun l ->
          let a = Array.of_list l in
          Matrix.init n n (fun i j -> a.((i * n) + j)))
        (list_repeat (n * n) (float_range (-2.0) 2.0)))
    (fun a ->
      Matrix.approx_equal ~tol:1e-8
        (Matrix.identity (Matrix.rows a))
        (Matrix.mul (Expm.expm a) (Expm.expm (Matrix.scale (-1.0) a))))

let suite =
  [
    t "exp(0) = I" `Quick exp_zero_is_identity;
    t "diagonal" `Quick exp_diagonal;
    t "nilpotent" `Quick exp_nilpotent;
    t "rotation" `Quick exp_rotation;
    t "semigroup" `Quick semigroup_property;
    t "stochastic rows" `Quick generator_rows_stay_stochastic;
    t "matches uniformization" `Quick matches_uniformization;
    t "validation" `Quick validation;
    prop_inverse;
  ]
