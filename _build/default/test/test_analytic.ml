open Dpm_core

let t = Alcotest.test_case

let sys () = Paper_instance.system ()

let always_on_matches_mm1k () =
  (* Under always-on the composed chain behaves like an M/M/1/Q queue
     plus (collapsed) transfer states: power is the active mode's
     constant draw, and the queue statistics follow M/M/1/K up to the
     big-M transfer-state correction. *)
  let s = sys () in
  let m = Analytic.of_actions s ~actions:(Policies.always_on s) in
  Test_util.check_relative ~rel:1e-4 "constant power" 40.0 m.Analytic.power;
  let lam = Sys_model.arrival_rate s and mu = Paper_instance.service_rate in
  let rho = lam /. mu in
  let k = 5 in
  (* M/M/1/K with K+1 levels: pi_i = rho^i (1-rho)/(1-rho^{K+1}). *)
  let z = (1.0 -. (rho ** float_of_int (k + 1))) /. (1.0 -. rho) in
  let expected_l =
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. (float_of_int i *. (rho ** float_of_int i) /. z)
    done;
    !acc
  in
  Test_util.check_relative ~rel:1e-3 "M/M/1/K queue length" expected_l
    m.Analytic.avg_waiting_requests;
  let expected_loss = (rho ** float_of_int k) /. z in
  Test_util.check_relative ~rel:1e-3 "M/M/1/K loss" expected_loss
    m.Analytic.loss_probability

let flow_conservation () =
  let s = sys () in
  List.iter
    (fun actions ->
      let m = Analytic.of_actions s ~actions in
      let accepted =
        Sys_model.arrival_rate s *. (1.0 -. m.Analytic.loss_probability)
      in
      Test_util.check_relative ~rel:1e-6 "throughput = accepted arrivals"
        accepted m.Analytic.throughput)
    [ Policies.always_on s; Policies.greedy s; Policies.n_policy s ~n:3 ]

let littles_law_consistency () =
  let s = sys () in
  let m = Analytic.of_actions s ~actions:(Policies.n_policy s ~n:2) in
  (* avg_waiting_time uses the accepted rate; the paper's variant the
     raw rate.  Both must relate back to L. *)
  let accepted = Sys_model.arrival_rate s *. (1.0 -. m.Analytic.loss_probability) in
  Test_util.check_relative ~rel:1e-9 "Little (accepted)"
    (m.Analytic.avg_waiting_requests /. accepted)
    m.Analytic.avg_waiting_time;
  Test_util.check_relative ~rel:1e-9 "Little (paper)"
    (m.Analytic.avg_waiting_requests /. Sys_model.arrival_rate s)
    m.Analytic.avg_waiting_time_paper

let residency_sums_to_one () =
  let s = sys () in
  let m = Analytic.of_actions s ~actions:(Policies.greedy s) in
  Test_util.check_close ~tol:1e-9 "mode residency mass" 1.0
    (Array.fold_left ( +. ) 0.0 m.Analytic.mode_residency);
  (* Greedy sleeps most of the time at rho = 0.25. *)
  Alcotest.(check bool) "mostly sleeping" true
    (m.Analytic.mode_residency.(Paper_instance.sleeping) > 0.5)

let greedy_saves_power_but_adds_delay () =
  let s = sys () in
  let on = Analytic.of_actions s ~actions:(Policies.always_on s) in
  let gr = Analytic.of_actions s ~actions:(Policies.greedy s) in
  Alcotest.(check bool) "greedy cheaper" true (gr.Analytic.power < on.Analytic.power);
  Alcotest.(check bool) "greedy slower" true
    (gr.Analytic.avg_waiting_requests > on.Analytic.avg_waiting_requests)

let n_policy_monotone_in_n () =
  (* Larger N: less power (fewer wakeups), more delay.  The paper's
     Figure 4 N-policy curve. *)
  let s = sys () in
  let metrics =
    List.map (fun n -> Analytic.of_actions s ~actions:(Policies.n_policy s ~n))
      [ 1; 2; 3; 4; 5 ]
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "power decreases" true
          (b.Analytic.power <= a.Analytic.power +. 1e-9);
        Alcotest.(check bool) "delay increases" true
          (b.Analytic.avg_waiting_requests >= a.Analytic.avg_waiting_requests -. 1e-9);
        check rest
    | _ -> ()
  in
  check metrics

let self_switch_rate_insensitivity () =
  (* DESIGN.md decision 1: the big-M approximation must not move the
     metrics. *)
  let mk rate =
    Sys_model.create ~self_switch_rate:rate
      ~sp:(Paper_instance.service_provider ())
      ~queue_capacity:5 ~arrival_rate:(1.0 /. 6.0) ()
  in
  let m6 = Analytic.of_actions (mk 1e6) ~actions:(Policies.greedy (mk 1e6)) in
  let m9 = Analytic.of_actions (mk 1e9) ~actions:(Policies.greedy (mk 1e9)) in
  Test_util.check_relative ~rel:1e-4 "power stable" m9.Analytic.power
    m6.Analytic.power;
  Test_util.check_relative ~rel:1e-4 "queue stable"
    m9.Analytic.avg_waiting_requests m6.Analytic.avg_waiting_requests

let energy_per_request () =
  let s = sys () in
  let m = Analytic.of_actions s ~actions:(Policies.greedy s) in
  Test_util.check_relative ~rel:1e-9 "definition"
    (m.Analytic.power /. m.Analytic.throughput)
    (Analytic.energy_per_request m)

let of_action_array_matches_function () =
  let s = sys () in
  let f = Policies.n_policy s ~n:2 in
  let a = Analytic.of_actions s ~actions:f in
  let b = Analytic.of_action_array s (Policies.actions_array s f) in
  Test_util.check_close ~tol:1e-12 "same power" a.Analytic.power b.Analytic.power;
  Test_util.check_raises_invalid "wrong length" (fun () ->
      ignore (Analytic.of_action_array s [| 0 |]))

let suite =
  [
    t "always-on matches M/M/1/K" `Quick always_on_matches_mm1k;
    t "flow conservation" `Quick flow_conservation;
    t "Little's law" `Quick littles_law_consistency;
    t "mode residency" `Quick residency_sums_to_one;
    t "greedy vs always-on" `Quick greedy_saves_power_but_adds_delay;
    t "N-policy monotone" `Quick n_policy_monotone_in_n;
    t "big-M insensitivity" `Quick self_switch_rate_insensitivity;
    t "energy per request" `Quick energy_per_request;
    t "of_action_array" `Quick of_action_array_matches_function;
  ]
