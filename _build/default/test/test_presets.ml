open Dpm_core

let t = Alcotest.test_case

let all_presets_well_formed () =
  List.iter
    (fun (name, sp) ->
      Alcotest.(check bool)
        (name ^ " has at least 2 modes")
        true
        (Service_provider.num_modes sp >= 2);
      Alcotest.(check bool)
        (name ^ " has an active mode")
        true
        (Service_provider.active_modes sp <> []);
      Alcotest.(check bool)
        (name ^ " has an inactive mode")
        true
        (Service_provider.inactive_modes sp <> []);
      (* Power ordering: every inactive mode draws less than the
         fastest active mode (otherwise sleeping is pointless). *)
      let p_active =
        Service_provider.power sp (Service_provider.fastest_active sp)
      in
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s cheaper than active" name
               (Service_provider.name sp s))
            true
            (Service_provider.power sp s < p_active))
        (Service_provider.inactive_modes sp);
      (* Deeper sleep (less power) should wake slower — the defining
         trade-off of a power-mode ladder. *)
      let inactive = Service_provider.inactive_modes sp in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if
                a <> b
                && Service_provider.power sp a < Service_provider.power sp b
              then
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s (deeper) wakes no faster than %s" name
                     (Service_provider.name sp a) (Service_provider.name sp b))
                  true
                  (Service_provider.wakeup_time sp a
                  >= Service_provider.wakeup_time sp b -. 1e-9))
            inactive)
        inactive)
    (Presets.all ())

let lookup () =
  Alcotest.(check int) "four presets" 4 (List.length (Presets.all ()));
  Alcotest.(check int) "paper preset is the paper instance" 3
    (Service_provider.num_modes (Presets.find "paper"));
  (match Presets.find "nonsense" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found")

let paper_preset_matches_paper_instance () =
  let a = Presets.paper () and b = Paper_instance.service_provider () in
  for s = 0 to 2 do
    Alcotest.(check string) "names" (Service_provider.name b s)
      (Service_provider.name a s);
    Test_util.check_close "powers" (Service_provider.power b s)
      (Service_provider.power a s);
    Test_util.check_close "rates" (Service_provider.service_rate b s)
      (Service_provider.service_rate a s)
  done

let dvs_cpu_has_two_speeds () =
  let sp = Presets.dvs_cpu () in
  Alcotest.(check int) "two active modes" 2
    (List.length (Service_provider.active_modes sp));
  Alcotest.(check int) "fastest is full" 0 (Service_provider.fastest_active sp)

let suite =
  [
    t "well-formed" `Quick all_presets_well_formed;
    t "lookup" `Quick lookup;
    t "paper preset" `Quick paper_preset_matches_paper_instance;
    t "dvs cpu speeds" `Quick dvs_cpu_has_two_speeds;
  ]
