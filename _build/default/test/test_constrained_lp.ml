open Dpm_core
open Dpm_ctmdp

let t = Alcotest.test_case

let sys_at rate = Paper_instance.system_at ~arrival_rate:rate

let meets_bound_exactly_when_binding () =
  List.iter
    (fun rate ->
      let sys = sys_at rate in
      match Optimize.constrained_exact sys ~max_waiting_requests:1.0 with
      | None -> Alcotest.failf "rate %g infeasible" rate
      | Some r ->
          (* The unconstrained power optimum has L > 1 at these rates,
             so the constraint binds and the optimum saturates it. *)
          Test_util.check_close ~tol:1e-6 "bound saturated" 1.0
            r.Optimize.metrics.Analytic.avg_waiting_requests;
          Alcotest.(check bool) "positive shadow price" true
            (r.Optimize.lagrange_multiplier > 0.0))
    [ 1.0 /. 6.0; 1.0 /. 4.0 ]

let never_worse_than_bisection () =
  List.iter
    (fun rate ->
      let sys = sys_at rate in
      match
        ( Optimize.constrained sys ~max_waiting_requests:1.0,
          Optimize.constrained_exact sys ~max_waiting_requests:1.0 )
      with
      | Some b, Some e ->
          Alcotest.(check bool)
            (Printf.sprintf "rate %g: LP %.3f <= bisection %.3f" rate
               e.Optimize.metrics.Analytic.power
               b.Optimize.metrics.Analytic.power)
            true
            (e.Optimize.metrics.Analytic.power
            <= b.Optimize.metrics.Analytic.power +. 1e-6)
      | _ -> Alcotest.failf "rate %g infeasible" rate)
    Paper_instance.sweep_rates

let duality_gap_closed_at_high_load () =
  (* At rate 1/3 the deterministic frontier has a concave gap: the
     bisection returns always-on (40 W), the LP mixes and saves
     substantially. *)
  let sys = sys_at (1.0 /. 3.0) in
  match
    ( Optimize.constrained sys ~max_waiting_requests:1.0,
      Optimize.constrained_exact sys ~max_waiting_requests:1.0 )
  with
  | Some b, Some e ->
      Alcotest.(check bool)
        (Printf.sprintf "LP %.2f W well below bisection %.2f W"
           e.Optimize.metrics.Analytic.power b.Optimize.metrics.Analytic.power)
        true
        (e.Optimize.metrics.Analytic.power
        < b.Optimize.metrics.Analytic.power -. 4.0)
  | _ -> Alcotest.fail "infeasible"

let single_randomized_state () =
  (* One linear constraint: at most one state mixes (Ross's classic
     result), barring degeneracy. *)
  List.iter
    (fun rate ->
      match
        Optimize.constrained_exact (sys_at rate) ~max_waiting_requests:1.0
      with
      | None -> Alcotest.fail "infeasible"
      | Some r ->
          Alcotest.(check bool)
            (Printf.sprintf "rate %g mixes in <= 1 state" rate)
            true
            (List.length r.Optimize.randomized_states <= 1);
          (* Distributions are proper. *)
          Array.iter
            (fun dist ->
              let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 dist in
              Test_util.check_close ~tol:1e-6 "row sums 1" 1.0 total)
            r.Optimize.distributions)
    [ 1.0 /. 6.0; 1.0 /. 3.0 ]

let infeasible_bound_returns_none () =
  let sys = sys_at (1.0 /. 3.0) in
  Alcotest.(check bool) "absurd bound infeasible" true
    (Optimize.constrained_exact sys ~max_waiting_requests:0.01 = None)

let unconstrained_bound_matches_power_optimum () =
  (* A bound so loose it never binds: the LP must land on the pure
     power optimum (weight 0). *)
  let sys = sys_at (1.0 /. 6.0) in
  let unconstrained = Optimize.solve ~weight:0.0 sys in
  match Optimize.constrained_exact sys ~max_waiting_requests:100.0 with
  | None -> Alcotest.fail "infeasible"
  | Some r ->
      Test_util.check_relative ~rel:1e-6 "same power"
        unconstrained.Optimize.metrics.Analytic.power
        r.Optimize.metrics.Analytic.power;
      Test_util.check_close ~tol:1e-6 "zero shadow price" 0.0
        r.Optimize.lagrange_multiplier

let mixed_generator_consistency () =
  (* The mixed chain's analytic metrics must equal the LP's own
     objective/secondary values. *)
  let sys = sys_at (1.0 /. 4.0) in
  let model = Sys_model.to_ctmdp sys ~weight:0.0 in
  let secondary i _ =
    float_of_int (Sys_model.waiting_requests (Sys_model.state_of_index sys i))
  in
  match Constrained_lp.solve model ~secondary ~bound:1.0 with
  | None -> Alcotest.fail "infeasible"
  | Some r ->
      let gen, costs =
        Constrained_lp.mixed_generator model r.Constrained_lp.distributions
      in
      let m = Analytic.of_mixed sys ~gen ~power_rates:costs in
      Test_util.check_relative ~rel:1e-6 "objective = mixed power"
        r.Constrained_lp.objective m.Analytic.power;
      Test_util.check_relative ~rel:1e-6 "secondary = mixed waiting"
        r.Constrained_lp.secondary m.Analytic.avg_waiting_requests

let time_sharing_realizes_the_mixture () =
  (* Mix greedy (cheap, slow) and always-on (dear, fast) 50/50 with a
     long period: simulated metrics must approach the average of the
     two controllers' own simulated metrics. *)
  let sys = Paper_instance.system () in
  let run ctl =
    Dpm_sim.Power_sim.run ~seed:61L ~sys
      ~workload:(Dpm_sim.Workload.poisson ~rate:(Sys_model.arrival_rate sys))
      ~controller:ctl
      ~stop:(Dpm_sim.Power_sim.Requests 60_000)
      ()
  in
  let a = run (Dpm_sim.Controller.greedy sys) in
  let b = run (Dpm_sim.Controller.always_on sys) in
  let mixed =
    run
      (Dpm_sim.Controller.time_shared ~period:2_000.0 ~fraction:0.5
         (Dpm_sim.Controller.greedy sys)
         (Dpm_sim.Controller.always_on sys))
  in
  let expect f = 0.5 *. (f a +. f b) in
  Test_util.check_relative ~rel:0.05 "power mixes"
    (expect (fun r -> r.Dpm_sim.Power_sim.avg_power))
    mixed.Dpm_sim.Power_sim.avg_power;
  Test_util.check_relative ~rel:0.08 "waiting mixes"
    (expect (fun r -> r.Dpm_sim.Power_sim.avg_waiting_requests))
    mixed.Dpm_sim.Power_sim.avg_waiting_requests

let time_shared_validation () =
  let sys = Paper_instance.system () in
  Test_util.check_raises_invalid "fraction" (fun () ->
      ignore
        (Dpm_sim.Controller.time_shared ~period:1.0 ~fraction:1.5
           (Dpm_sim.Controller.greedy sys)
           (Dpm_sim.Controller.always_on sys)));
  Test_util.check_raises_invalid "period" (fun () ->
      ignore
        (Dpm_sim.Controller.time_shared ~period:0.0 ~fraction:0.5
           (Dpm_sim.Controller.greedy sys)
           (Dpm_sim.Controller.always_on sys)))

let suite =
  [
    t "bound saturated when binding" `Quick meets_bound_exactly_when_binding;
    t "never worse than bisection" `Quick never_worse_than_bisection;
    t "closes the duality gap" `Quick duality_gap_closed_at_high_load;
    t "single randomized state" `Quick single_randomized_state;
    t "infeasible bound" `Quick infeasible_bound_returns_none;
    t "loose bound = power optimum" `Quick unconstrained_bound_matches_power_optimum;
    t "mixed generator consistency" `Quick mixed_generator_consistency;
    t "time sharing realizes mixture" `Slow time_sharing_realizes_the_mixture;
    t "time-shared validation" `Quick time_shared_validation;
  ]
