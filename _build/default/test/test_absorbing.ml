open Dpm_ctmc
open Dpm_linalg

let t = Alcotest.test_case

(* Pure death chain 2 -> 1 -> 0 at rate mu: hitting time of 0 from
   state k is k / mu exactly. *)
let death_chain mu n =
  Generator.of_rates ~dim:n (List.init (n - 1) (fun i -> (i + 1, i, mu)))

let death_chain_hitting_times () =
  let mu = 2.0 in
  let g = death_chain mu 4 in
  let h = Absorbing.mean_hitting_times g ~targets:[ 0 ] in
  Test_util.check_vec ~tol:1e-10 "k/mu" [| 0.0; 0.5; 1.0; 1.5 |] h

let two_state_round_trip () =
  (* 0 <-> 1; expected time from 0 to 1 is 1/lam. *)
  let g = Generator.of_rates ~dim:2 [ (0, 1, 0.25); (1, 0, 5.0) ] in
  let h = Absorbing.mean_hitting_times g ~targets:[ 1 ] in
  Test_util.check_close ~tol:1e-12 "1/lam" 4.0 h.(0);
  Test_util.check_close "target itself" 0.0 h.(1)

let unreachable_targets_are_infinite () =
  (* 0 -> 1 (absorbing), target 2 unreachable from both. *)
  let g = Generator.of_rates ~dim:3 [ (0, 1, 1.0); (2, 1, 1.0) ] in
  let h = Absorbing.mean_hitting_times g ~targets:[ 2 ] in
  Alcotest.(check bool) "state 0 never arrives" true (h.(0) = infinity);
  Alcotest.(check bool) "state 1 never arrives" true (h.(1) = infinity);
  Test_util.check_close "target zero" 0.0 h.(2)

let gambler_ruin_probabilities () =
  (* Symmetric random walk on 0..4 with absorbing ends: probability
     of hitting 4 before 0 from k is k/4. *)
  let rates = ref [] in
  for i = 1 to 3 do
    rates := (i, i + 1, 1.0) :: (i, i - 1, 1.0) :: !rates
  done;
  let g = Generator.of_rates ~dim:5 !rates in
  let h = Absorbing.hitting_probabilities g ~targets:[ 4 ] ~avoid:[ 0 ] in
  Test_util.check_vec ~tol:1e-10 "k/4" [| 0.0; 0.25; 0.5; 0.75; 1.0 |] h

let biased_walk_probabilities () =
  (* Up rate 2, down rate 1 on 0..3: h_k = (1 - r^k) / (1 - r^3) with
     r = down/up = 1/2. *)
  let rates = ref [] in
  for i = 1 to 2 do
    rates := (i, i + 1, 2.0) :: (i, i - 1, 1.0) :: !rates
  done;
  let g = Generator.of_rates ~dim:4 !rates in
  let h = Absorbing.hitting_probabilities g ~targets:[ 3 ] ~avoid:[ 0 ] in
  let r = 0.5 in
  let expect k = (1.0 -. (r ** float_of_int k)) /. (1.0 -. (r ** 3.0)) in
  Test_util.check_close ~tol:1e-10 "h1" (expect 1) h.(1);
  Test_util.check_close ~tol:1e-10 "h2" (expect 2) h.(2)

let hitting_prob_validation () =
  let g = Generator.of_rates ~dim:2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  Test_util.check_raises_invalid "intersecting sets" (fun () ->
      ignore (Absorbing.hitting_probabilities g ~targets:[ 0 ] ~avoid:[ 0 ]));
  Test_util.check_raises_invalid "empty targets" (fun () ->
      ignore (Absorbing.mean_hitting_times g ~targets:[]));
  Test_util.check_raises_invalid "out of range" (fun () ->
      ignore (Absorbing.mean_hitting_times g ~targets:[ 7 ]))

let expected_visits_row_sums_are_hitting_times () =
  (* sum_j N_ij = E[absorption time from i]. *)
  let g =
    Generator.of_rates ~dim:4
      [ (1, 0, 1.0); (1, 2, 2.0); (2, 1, 1.0); (2, 3, 0.5); (3, 2, 2.0); (3, 0, 0.3) ]
  in
  let visits = Absorbing.expected_visits g ~targets:[ 0 ] in
  let hits = Absorbing.mean_hitting_times g ~targets:[ 0 ] in
  for i = 1 to 3 do
    let row_sum = ref 0.0 in
    for j = 0 to 3 do
      row_sum := !row_sum +. Matrix.get visits i j
    done;
    Test_util.check_close ~tol:1e-9
      (Printf.sprintf "row %d" i)
      hits.(i) !row_sum
  done

let dpm_wakeup_latency () =
  (* Domain sanity check: from (sleeping, q1) under the greedy
     policy, the mean time to reach any empty-queue state must be at
     least the wake-up time plus one service. *)
  let open Dpm_core in
  let sys = Paper_instance.system () in
  let g = Sys_model.generator_of_actions sys ~actions:(Policies.greedy sys) in
  let empty_states =
    List.filter_map
      (fun x ->
        match x with
        | Sys_model.Stable (_, 0) -> Some (Sys_model.index sys x)
        | Sys_model.Stable _ | Sys_model.Transfer _ -> None)
      (Array.to_list (Sys_model.states sys))
  in
  let h = Absorbing.mean_hitting_times g ~targets:empty_states in
  let from_sleep_q1 = h.(Sys_model.index sys (Sys_model.Stable (2, 1))) in
  Alcotest.(check bool) "at least wake + service" true
    (from_sleep_q1 >= 1.1 +. 1.5);
  Alcotest.(check bool) "finite" true (Float.is_finite from_sleep_q1)

let suite =
  [
    t "death chain hitting times" `Quick death_chain_hitting_times;
    t "two-state" `Quick two_state_round_trip;
    t "unreachable is infinite" `Quick unreachable_targets_are_infinite;
    t "gambler's ruin" `Quick gambler_ruin_probabilities;
    t "biased walk" `Quick biased_walk_probabilities;
    t "validation" `Quick hitting_prob_validation;
    t "visits row sums" `Quick expected_visits_row_sums_are_hitting_times;
    t "DPM wakeup latency" `Quick dpm_wakeup_latency;
  ]
