open Dpm_linalg

let t = Alcotest.test_case

let m_abcd = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |]

let construction () =
  let z = Matrix.create 2 3 in
  Alcotest.(check int) "rows" 2 (Matrix.rows z);
  Alcotest.(check int) "cols" 3 (Matrix.cols z);
  Test_util.check_close "zero entry" 0.0 (Matrix.get z 1 2);
  let i3 = Matrix.identity 3 in
  Test_util.check_close "identity diag" 1.0 (Matrix.get i3 2 2);
  Test_util.check_close "identity off" 0.0 (Matrix.get i3 0 2);
  let d = Matrix.diag [| 5.0; 6.0 |] in
  Test_util.check_close "diag" 6.0 (Matrix.get d 1 1);
  Test_util.check_raises_invalid "ragged rows" (fun () ->
      Matrix.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]);
  Test_util.check_raises_invalid "empty" (fun () -> Matrix.of_arrays [||])

let get_set () =
  let m = Matrix.copy m_abcd in
  Matrix.set m 0 1 9.0;
  Test_util.check_close "set/get" 9.0 (Matrix.get m 0 1);
  Matrix.update m 0 1 (fun x -> x +. 1.0);
  Test_util.check_close "update" 10.0 (Matrix.get m 0 1);
  Test_util.check_raises_invalid "out of range" (fun () -> Matrix.get m 2 0);
  Test_util.check_close "original untouched" 2.0 (Matrix.get m_abcd 0 1)

let rows_cols_access () =
  Test_util.check_vec "row" [| 3.0; 4.0 |] (Matrix.row m_abcd 1);
  Test_util.check_vec "col" [| 2.0; 4.0 |] (Matrix.col m_abcd 1);
  Test_util.check_vec "row_sums" [| 3.0; 7.0 |] (Matrix.row_sums m_abcd)

let transpose_involution () =
  let mt = Matrix.transpose m_abcd in
  Test_util.check_close "transposed entry" 3.0 (Matrix.get mt 0 1);
  Alcotest.(check bool) "double transpose" true
    (Matrix.approx_equal m_abcd (Matrix.transpose mt))

let products () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let ab = Matrix.mul a b in
  Alcotest.(check bool) "mul" true
    (Matrix.approx_equal ab
       (Matrix.of_arrays [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]));
  Test_util.check_vec "mul_vec" [| 5.0; 11.0 |] (Matrix.mul_vec a [| 1.0; 2.0 |]);
  Test_util.check_vec "vec_mul" [| 7.0; 10.0 |] (Matrix.vec_mul [| 1.0; 2.0 |] a);
  Test_util.check_raises_invalid "mul shapes" (fun () ->
      Matrix.mul a (Matrix.create 3 2))

let arithmetic () =
  Alcotest.(check bool) "add/sub roundtrip" true
    (Matrix.approx_equal m_abcd (Matrix.sub (Matrix.add m_abcd m_abcd) m_abcd));
  Test_util.check_close "scale" 8.0 (Matrix.get (Matrix.scale 2.0 m_abcd) 1 1);
  Test_util.check_close "max_abs" 4.0 (Matrix.max_abs m_abcd);
  Test_util.check_close "fold sum" 10.0 (Matrix.fold ( +. ) 0.0 m_abcd)

let mapi_indexes () =
  let m = Matrix.mapi (fun i j _ -> float_of_int ((10 * i) + j)) m_abcd in
  Test_util.check_close "mapi" 11.0 (Matrix.get m 1 1)

let square_gen =
  QCheck2.Gen.(
    int_range 1 6 >>= fun n ->
    map
      (fun l ->
        let a = Array.of_list l in
        Matrix.init n n (fun i j -> a.((i * n) + j)))
      (list_repeat (n * n) (float_range (-10.0) 10.0)))

let prop_mul_identity =
  Test_util.qtest "A * I = A" square_gen (fun a ->
      Matrix.approx_equal ~tol:1e-9 a (Matrix.mul a (Matrix.identity (Matrix.rows a))))

let prop_transpose_product =
  Test_util.qtest "(AB)^T = B^T A^T"
    (QCheck2.Gen.pair square_gen square_gen)
    (fun (a, b) ->
      Matrix.rows a <> Matrix.rows b
      || Matrix.approx_equal ~tol:1e-6
           (Matrix.transpose (Matrix.mul a b))
           (Matrix.mul (Matrix.transpose b) (Matrix.transpose a)))

let prop_mul_vec_linear =
  Test_util.qtest "M(u+v) = Mu + Mv" square_gen (fun m ->
      let n = Matrix.rows m in
      let u = Vec.init n (fun i -> float_of_int i +. 0.5) in
      let v = Vec.init n (fun i -> 2.0 -. float_of_int i) in
      Vec.approx_equal ~tol:1e-6
        (Matrix.mul_vec m (Vec.add u v))
        (Vec.add (Matrix.mul_vec m u) (Matrix.mul_vec m v)))

let prop_vec_mul_is_transpose_mul =
  Test_util.qtest "v M = (M^T v)" square_gen (fun m ->
      let n = Matrix.rows m in
      let v = Vec.init n (fun i -> float_of_int (i + 1)) in
      Vec.approx_equal ~tol:1e-6 (Matrix.vec_mul v m)
        (Matrix.mul_vec (Matrix.transpose m) v))

let suite =
  [
    t "construction" `Quick construction;
    t "get/set/update" `Quick get_set;
    t "row/col access" `Quick rows_cols_access;
    t "transpose" `Quick transpose_involution;
    t "products" `Quick products;
    t "arithmetic" `Quick arithmetic;
    t "mapi" `Quick mapi_indexes;
    prop_mul_identity;
    prop_transpose_product;
    prop_mul_vec_linear;
    prop_vec_mul_is_transpose_mul;
  ]
