open Dpm_linalg

let t = Alcotest.test_case

let solve_known_system () =
  (* 2x + y = 5, x + 3y = 10  ->  x = 1, y = 3 *)
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Lu.solve a [| 5.0; 10.0 |] in
  Test_util.check_vec ~tol:1e-12 "solution" [| 1.0; 3.0 |] x

let pivoting_needed () =
  (* Leading zero pivot forces a row swap. *)
  let a = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve a [| 2.0; 3.0 |] in
  Test_util.check_vec ~tol:1e-12 "swap solution" [| 3.0; 2.0 |] x

let singular_detected () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  (match Lu.solve a [| 1.0; 2.0 |] with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular");
  Test_util.check_raises_invalid "not square" (fun () ->
      Lu.decompose (Matrix.create 2 3))

let determinant () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Test_util.check_close ~tol:1e-12 "det" (-2.0) (Lu.det (Lu.decompose a));
  let swap = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  Test_util.check_close ~tol:1e-12 "det permutation" (-1.0)
    (Lu.det (Lu.decompose swap))

let inverse_roundtrip () =
  let a = Matrix.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Lu.inverse a in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Matrix.approx_equal ~tol:1e-12 (Matrix.identity 2) (Matrix.mul a inv))

let solve_many_shares_factorization () =
  let a = Matrix.of_arrays [| [| 2.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  match Lu.solve_many a [ [| 2.0; 4.0 |]; [| 4.0; 8.0 |] ] with
  | [ x1; x2 ] ->
      Test_util.check_vec "first rhs" [| 1.0; 1.0 |] x1;
      Test_util.check_vec "second rhs" [| 2.0; 2.0 |] x2
  | _ -> Alcotest.fail "expected two solutions"

(* Diagonally dominant random systems are comfortably nonsingular. *)
let dominant_gen =
  QCheck2.Gen.(
    int_range 1 8 >>= fun n ->
    map
      (fun l ->
        let a = Array.of_list l in
        let m =
          Matrix.init n n (fun i j ->
              let base = a.((i * n) + j) in
              if i = j then base +. (20.0 *. Float.max 1.0 (Float.abs base))
              else base)
        in
        m)
      (list_repeat (n * n) (float_range (-5.0) 5.0)))

let prop_residual_small =
  Test_util.qtest "Ax = b residual small" dominant_gen (fun a ->
      let n = Matrix.rows a in
      let b = Vec.init n (fun i -> float_of_int ((i * i) - 3)) in
      let x = Lu.solve a b in
      Lu.residual_norm a x b <= 1e-8)

let prop_det_product =
  Test_util.qtest "det(AB) = det(A) det(B)"
    (QCheck2.Gen.pair dominant_gen dominant_gen)
    (fun (a, b) ->
      Matrix.rows a <> Matrix.rows b
      ||
      let da = Lu.det (Lu.decompose a) and db = Lu.det (Lu.decompose b) in
      let dab = Lu.det (Lu.decompose (Matrix.mul a b)) in
      Float.abs (dab -. (da *. db)) <= 1e-6 *. Float.abs (da *. db))

let prop_inverse_roundtrip =
  Test_util.qtest "A^-1 A = I" dominant_gen (fun a ->
      Matrix.approx_equal ~tol:1e-8
        (Matrix.identity (Matrix.rows a))
        (Matrix.mul (Lu.inverse a) a))

let suite =
  [
    t "known system" `Quick solve_known_system;
    t "partial pivoting" `Quick pivoting_needed;
    t "singular detection" `Quick singular_detected;
    t "determinant" `Quick determinant;
    t "inverse" `Quick inverse_roundtrip;
    t "solve_many" `Quick solve_many_shares_factorization;
    prop_residual_small;
    prop_det_product;
    prop_inverse_roundtrip;
  ]
