(* End-to-end pipelines: reduced-size versions of the paper's
   experiments, plus the extra device presets. *)

open Dpm_core
open Dpm_sim

let t = Alcotest.test_case

let simulate ?(seed = 3L) ?(n = 20_000) sys controller =
  Power_sim.run ~seed ~sys
    ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate sys))
    ~controller ~stop:(Power_sim.Requests n) ()

(* FIG4 pipeline: the simulated optimal frontier must weakly dominate
   the simulated N-policy points (allowing simulation noise). *)
let fig4_dominance () =
  let sys = Paper_instance.system () in
  let optimal =
    List.map
      (fun w ->
        let sol = Optimize.solve ~weight:w sys in
        let r = simulate sys (Controller.of_solution sys sol) in
        (r.Power_sim.avg_power, r.Power_sim.avg_waiting_requests))
      [ 0.1; 0.3; 0.5; 1.0; 2.0; 5.0 ]
  in
  List.iter
    (fun n ->
      let r = simulate sys (Controller.n_policy sys ~n) in
      let np = r.Power_sim.avg_power and nl = r.Power_sim.avg_waiting_requests in
      (* Some optimal point must be at least as good in both metrics,
         within 3% simulation noise. *)
      let dominated =
        List.exists
          (fun (p, l) -> p <= np *. 1.03 && l <= nl *. 1.03)
          optimal
      in
      if not dominated then
        Alcotest.failf "N=%d point (%.2f W, %.3f req) escapes the frontier" n np
          nl)
    [ 1; 3; 5 ]

(* TAB1 pipeline: Little's law approximation error below 5% for the
   paper's input rates (reduced request count). *)
let table1_errors_small () =
  List.iter
    (fun rate ->
      let sys = Paper_instance.system_at ~arrival_rate:rate in
      match Optimize.constrained sys ~max_waiting_requests:1.0 with
      | None -> Alcotest.failf "rate %g infeasible" rate
      | Some sol ->
          let r = simulate ~n:30_000 sys (Controller.of_solution sys sol) in
          let approx = rate *. r.Power_sim.avg_waiting_time in
          let actual = r.Power_sim.avg_waiting_requests in
          let err = Float.abs ((approx -. actual) /. actual) *. 100.0 in
          if err > 6.0 then
            Alcotest.failf "rate %g: approximation error %.1f%%" rate err;
          (* The constraint itself must hold in simulation. *)
          if r.Power_sim.avg_waiting_time > 1.15 /. rate then
            Alcotest.failf "rate %g: waiting time %.2f exceeds budget %.2f" rate
              r.Power_sim.avg_waiting_time (1.0 /. rate))
    [ 1.0 /. 8.0; 1.0 /. 6.0; 1.0 /. 4.0 ]

(* FIG5 pipeline: ours gives the lowest power among policies that meet
   the waiting-time budget. *)
let fig5_ours_best_feasible () =
  List.iter
    (fun rate ->
      let sys = Paper_instance.system_at ~arrival_rate:rate in
      let period = 1.0 /. rate in
      let ours =
        match Optimize.constrained sys ~max_waiting_requests:1.0 with
        | Some sol -> simulate sys (Controller.of_solution sys sol)
        | None -> Alcotest.failf "rate %g infeasible" rate
      in
      Alcotest.(check bool) "ours meets the budget" true
        (ours.Power_sim.avg_waiting_time <= 1.15 *. period);
      List.iter
        (fun ctl ->
          let r = simulate sys ctl in
          let feasible = r.Power_sim.avg_waiting_time <= period in
          if feasible && r.Power_sim.avg_power < ours.Power_sim.avg_power *. 0.97
          then
            Alcotest.failf "rate %g: %s is feasible and cheaper (%.2f < %.2f W)"
              rate r.Power_sim.controller r.Power_sim.avg_power
              ours.Power_sim.avg_power)
        [
          Controller.greedy sys;
          Controller.timeout sys ~delay:1.0;
          Controller.timeout sys ~delay:period;
          Controller.timeout sys ~delay:(0.5 *. period);
        ])
    [ 1.0 /. 8.0; 1.0 /. 5.0 ]

(* The presets all compose, optimize and simulate. *)
let presets_pipeline () =
  List.iter
    (fun (name, sp) ->
      let rate = 0.3 *. Service_provider.service_rate sp (Service_provider.fastest_active sp) in
      let sys = Sys_model.create ~sp ~queue_capacity:4 ~arrival_rate:rate () in
      let sol = Optimize.solve ~weight:1.0 sys in
      Alcotest.(check bool)
        (name ^ " finite gain")
        true
        (Float.is_finite sol.Optimize.gain);
      let r = simulate ~n:5_000 sys (Controller.of_solution sys sol) in
      Test_util.check_relative ~rel:0.25
        (name ^ " sim power tracks analytic")
        sol.Optimize.metrics.Analytic.power r.Power_sim.avg_power)
    (Presets.all ())

(* Multi-active preset: the optimizer must use the slow speed under
   light load when it pays off, and the model constraints hold. *)
let dvs_cpu_multi_active () =
  let sp = Presets.dvs_cpu () in
  let sys = Sys_model.create ~sp ~queue_capacity:4 ~arrival_rate:5.0 () in
  let sol = Optimize.solve ~weight:0.05 sys in
  (match
     Policies.check_valid sys (fun x -> sol.Optimize.actions.(Sys_model.index sys x))
   with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* With cheap half-speed service and a light delay weight, at least
     one state should command the half-speed mode. *)
  let half = Service_provider.mode_of_name sp "half" in
  Alcotest.(check bool) "half speed used somewhere" true
    (Array.exists (fun a -> a = half) sol.Optimize.actions)

let cross_check_sim_analytic_all_presets () =
  (* The model and the simulator must agree for an arbitrary valid
     policy on an arbitrary preset (here: greedy on the disk). *)
  let sp = Presets.disk () in
  let sys = Sys_model.create ~sp ~queue_capacity:6 ~arrival_rate:1.0 () in
  let a = Analytic.of_actions sys ~actions:(Policies.greedy sys) in
  let r = simulate ~n:40_000 sys (Controller.of_policy sys (Policies.greedy sys)) in
  Test_util.check_relative ~rel:0.05 "disk greedy power" a.Analytic.power
    r.Power_sim.avg_power;
  Test_util.check_relative ~rel:0.06 "disk greedy waiting"
    a.Analytic.avg_waiting_requests r.Power_sim.avg_waiting_requests

(* The boundary case the paper skips "for brevity": an arrival while
   the SQ sits in the full transfer state q_{Q->Q-1}.  The model drops
   it (no state can represent it); the physical simulator accepts it
   (the queue has a free slot).  At Q = 1 with switch times comparable
   to the inter-arrival time the effect is maximal and directional:
   the simulator must see no more loss and no less waiting than the
   model predicts. *)
let transfer_boundary_artifact () =
  let sp =
    Service_provider.create
      ~names:[| "on"; "off" |]
      ~switch_time:[| [| 0.0; 0.8 |]; [| 0.85; 0.0 |] |]
      ~service_rate:[| 2.6; 0.0 |]
      ~power:[| 0.1; 0.0 |]
      ~switch_energy:[| [| 0.0; 0.0 |]; [| 0.0; 0.0 |] |]
  in
  let sys = Sys_model.create ~sp ~queue_capacity:1 ~arrival_rate:0.34 () in
  let sol = Optimize.solve ~weight:1.0 sys in
  let r =
    Power_sim.run ~seed:41L ~sys
      ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate sys))
      ~controller:(Controller.of_solution sys sol)
      ~stop:(Power_sim.Requests 60_000) ()
  in
  let m = sol.Optimize.metrics in
  Alcotest.(check bool)
    (Printf.sprintf "sim loses at most the model's share (%.4f vs %.4f)"
       r.Power_sim.loss_probability m.Analytic.loss_probability)
    true
    (r.Power_sim.loss_probability <= m.Analytic.loss_probability +. 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "sim waits at least the model's share (%.4f vs %.4f)"
       r.Power_sim.avg_waiting_requests m.Analytic.avg_waiting_requests)
    true
    (r.Power_sim.avg_waiting_requests >= m.Analytic.avg_waiting_requests -. 0.02)

let suite =
  [
    t "fig4: optimal dominates N-policy" `Slow fig4_dominance;
    t "transfer boundary artifact" `Quick transfer_boundary_artifact;
    t "tab1: Little approximation" `Slow table1_errors_small;
    t "fig5: ours best feasible" `Slow fig5_ours_best_feasible;
    t "presets pipeline" `Slow presets_pipeline;
    t "dvs cpu multi-active" `Quick dvs_cpu_multi_active;
    t "disk sim vs analytic" `Slow cross_check_sim_analytic_all_presets;
  ]
