open Dpm_core
open Dpm_sim

let t = Alcotest.test_case

let sys () = Paper_instance.system ()

let run ?(seed = 7L) ?(n = 50_000) ?(sys = sys ()) controller =
  Power_sim.run ~seed ~sys
    ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate sys))
    ~controller ~stop:(Power_sim.Requests n) ()

let always_on_matches_mm1k () =
  let s = sys () in
  let r = run ~sys:s (Controller.always_on s) in
  let lam = Sys_model.arrival_rate s and mu = Paper_instance.service_rate in
  let rho = lam /. mu in
  let z = (1.0 -. (rho ** 6.0)) /. (1.0 -. rho) in
  let expected_l =
    let acc = ref 0.0 in
    for i = 0 to 5 do
      acc := !acc +. (float_of_int i *. (rho ** float_of_int i) /. z)
    done;
    !acc
  in
  Test_util.check_relative ~rel:0.03 "M/M/1/K queue length" expected_l
    r.Power_sim.avg_waiting_requests;
  Test_util.check_relative ~rel:1e-6 "constant power" 40.0 r.Power_sim.avg_power;
  Alcotest.(check int) "never switches" 0 r.Power_sim.switch_count

let littles_law_in_simulation () =
  let s = sys () in
  let r = run ~sys:s (Controller.n_policy s ~n:2) in
  (* L = lambda_effective * W with W the sojourn of completed
     requests. *)
  let lam_eff = float_of_int r.Power_sim.accepted /. r.Power_sim.duration in
  Test_util.check_relative ~rel:0.03 "Little's law"
    (lam_eff *. r.Power_sim.avg_waiting_time)
    r.Power_sim.avg_waiting_requests

let accounting_identities () =
  let s = sys () in
  let r = run ~sys:s (Controller.greedy s) in
  Alcotest.(check int) "generated = accepted + lost" r.Power_sim.generated
    (r.Power_sim.accepted + r.Power_sim.lost);
  Alcotest.(check bool) "completed <= accepted" true
    (r.Power_sim.completed <= r.Power_sim.accepted);
  Alcotest.(check bool) "most accepted complete" true
    (r.Power_sim.accepted - r.Power_sim.completed
    <= Sys_model.queue_capacity s + 1);
  Test_util.check_close ~tol:1e-9 "residency fractions" 1.0
    (Array.fold_left ( +. ) 0.0 r.Power_sim.mode_residency)

let deterministic_given_seed () =
  let s = sys () in
  let r1 = run ~seed:11L ~n:5_000 ~sys:s (Controller.greedy s) in
  let r2 = run ~seed:11L ~n:5_000 ~sys:s (Controller.greedy s) in
  Alcotest.(check bool) "identical runs" true (r1 = r2);
  let r3 = run ~seed:12L ~n:5_000 ~sys:s (Controller.greedy s) in
  Alcotest.(check bool) "seed matters" true (r1 <> r3)

let sim_agrees_with_analytic_for_policies () =
  let s = sys () in
  List.iter
    (fun (name, actions) ->
      let analytic = Analytic.of_actions s ~actions in
      let r = run ~sys:s (Controller.of_policy s actions) in
      Test_util.check_relative ~rel:0.05 (name ^ " power")
        analytic.Analytic.power r.Power_sim.avg_power;
      Test_util.check_relative ~rel:0.06 (name ^ " waiting")
        analytic.Analytic.avg_waiting_requests r.Power_sim.avg_waiting_requests)
    [
      ("greedy", Policies.greedy s);
      ("n=2", Policies.n_policy s ~n:2);
      ("n=4", Policies.n_policy s ~n:4);
      ("optimal w=1", fun x ->
        (Optimize.solve ~weight:1.0 s).Optimize.actions.(Sys_model.index s x));
    ]

let heuristic_controllers_match_their_policy_counterparts () =
  (* The direct n-policy controller and the Markov-policy version of
     the same rule must produce statistically identical behavior. *)
  let s = sys () in
  let direct = run ~sys:s (Controller.n_policy s ~n:3) in
  let via_policy = run ~sys:s (Controller.of_policy s (Policies.n_policy s ~n:3)) in
  Test_util.check_relative ~rel:0.03 "power agrees" direct.Power_sim.avg_power
    via_policy.Power_sim.avg_power;
  Test_util.check_relative ~rel:0.05 "waiting agrees"
    direct.Power_sim.avg_waiting_requests via_policy.Power_sim.avg_waiting_requests

let timeout_interpolates_greedy_and_always_on () =
  let s = sys () in
  let greedy = run ~sys:s (Controller.greedy s) in
  let t0 = run ~sys:s (Controller.timeout s ~delay:0.0) in
  let t2 = run ~sys:s (Controller.timeout s ~delay:2.0) in
  let t20 = run ~sys:s (Controller.timeout s ~delay:20.0) in
  let on = run ~sys:s (Controller.always_on s) in
  (* Zero timeout = greedy (up to the race with arrivals). *)
  Test_util.check_relative ~rel:0.05 "timeout(0) is greedy"
    greedy.Power_sim.avg_power t0.Power_sim.avg_power;
  Alcotest.(check bool) "longer timeout more power" true
    (t0.Power_sim.avg_power < t2.Power_sim.avg_power
    && t2.Power_sim.avg_power < t20.Power_sim.avg_power
    && t20.Power_sim.avg_power < on.Power_sim.avg_power +. 1e-6)

let stop_by_time () =
  let s = sys () in
  let r =
    Power_sim.run ~sys:s
      ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate s))
      ~controller:(Controller.greedy s) ~stop:(Power_sim.Sim_time 1000.0) ()
  in
  Test_util.check_close ~tol:1e-6 "clock stops at horizon" 1000.0
    r.Power_sim.duration;
  Test_util.check_relative ~rel:0.3 "roughly lambda * T arrivals"
    (1000.0 /. 6.0)
    (float_of_int r.Power_sim.generated)

let trace_workload_drains () =
  let s = sys () in
  let r =
    Power_sim.run ~sys:s
      ~workload:(Workload.trace [ 1.0; 2.0; 3.0 ])
      ~controller:(Controller.always_on s) ~stop:(Power_sim.Requests 100) ()
  in
  Alcotest.(check int) "all trace arrivals" 3 r.Power_sim.generated;
  Alcotest.(check int) "all complete" 3 r.Power_sim.completed

let lost_requests_under_pressure () =
  (* Arrival rate far above service rate: the queue must overflow. *)
  let s = Paper_instance.system_at ~arrival_rate:2.0 in
  let r = run ~sys:s ~n:20_000 (Controller.always_on s) in
  Alcotest.(check bool) "significant loss" true (r.Power_sim.loss_probability > 0.4)

let validation () =
  let s = sys () in
  Test_util.check_raises_invalid "bad stop" (fun () ->
      ignore
        (Power_sim.run ~sys:s
           ~workload:(Workload.poisson ~rate:1.0)
           ~controller:(Controller.greedy s) ~stop:(Power_sim.Requests 0) ()));
  Test_util.check_raises_invalid "bad initial mode" (fun () ->
      ignore
        (Power_sim.run ~initial_mode:9 ~sys:s
           ~workload:(Workload.poisson ~rate:1.0)
           ~controller:(Controller.greedy s) ~stop:(Power_sim.Requests 1) ()))

let replicate_gives_independent_runs () =
  let s = sys () in
  let rs =
    Power_sim.replicate ~seeds:[ 1L; 2L; 3L ] ~sys:s
      ~workload:(fun () -> Workload.poisson ~rate:(Sys_model.arrival_rate s))
      ~controller:(fun () -> Controller.greedy s)
      ~stop:(Power_sim.Requests 2_000) ()
  in
  Alcotest.(check int) "three runs" 3 (List.length rs);
  match rs with
  | [ a; b; _ ] -> Alcotest.(check bool) "distinct" true (a <> b)
  | _ -> Alcotest.fail "unexpected"

let suite =
  [
    t "always-on matches M/M/1/K" `Slow always_on_matches_mm1k;
    t "Little's law" `Slow littles_law_in_simulation;
    t "accounting identities" `Slow accounting_identities;
    t "deterministic" `Quick deterministic_given_seed;
    t "sim vs analytic" `Slow sim_agrees_with_analytic_for_policies;
    t "controller vs policy heuristics" `Slow heuristic_controllers_match_their_policy_counterparts;
    t "timeout interpolates" `Slow timeout_interpolates_greedy_and_always_on;
    t "stop by time" `Quick stop_by_time;
    t "trace workload" `Quick trace_workload_drains;
    t "overload loses requests" `Slow lost_requests_under_pressure;
    t "validation" `Quick validation;
    t "replicate" `Quick replicate_gives_independent_runs;
  ]
