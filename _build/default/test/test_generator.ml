open Dpm_linalg
open Dpm_ctmc

let t = Alcotest.test_case

let two_state lam mu = Generator.of_rates ~dim:2 [ (0, 1, lam); (1, 0, mu) ]

let of_rates_diagonal () =
  let g = two_state 1.0 3.0 in
  Test_util.check_close "diagonal 0" (-1.0) (Generator.get g 0 0);
  Test_util.check_close "diagonal 1" (-3.0) (Generator.get g 1 1);
  Test_util.check_close "exit rate" 3.0 (Generator.exit_rate g 1);
  Alcotest.(check int) "dim" 2 (Generator.dim g)

let of_rates_duplicates_sum () =
  let g = Generator.of_rates ~dim:2 [ (0, 1, 1.0); (0, 1, 2.0); (1, 0, 1.0) ] in
  Test_util.check_close "summed rate" 3.0 (Generator.get g 0 1)

let of_rates_validation () =
  let invalid f = match f () with
    | exception Generator.Invalid _ -> ()
    | _ -> Alcotest.fail "expected Generator.Invalid"
  in
  invalid (fun () -> Generator.of_rates ~dim:0 []);
  invalid (fun () -> Generator.of_rates ~dim:2 [ (0, 0, 1.0) ]);
  invalid (fun () -> Generator.of_rates ~dim:2 [ (0, 2, 1.0) ]);
  invalid (fun () -> Generator.of_rates ~dim:2 [ (0, 1, -1.0) ]);
  invalid (fun () -> Generator.of_rates ~dim:2 [ (0, 1, Float.nan) ])

let of_matrix_validation () =
  let good =
    Matrix.of_arrays [| [| -1.0; 1.0 |]; [| 2.0; -2.0 |] |]
  in
  let g = Generator.of_matrix good in
  Test_util.check_close "entry" 2.0 (Generator.get g 1 0);
  let invalid m = match Generator.of_matrix m with
    | exception Generator.Invalid _ -> ()
    | _ -> Alcotest.fail "expected Generator.Invalid"
  in
  invalid (Matrix.of_arrays [| [| -1.0; 2.0 |]; [| 2.0; -2.0 |] |]);
  invalid (Matrix.of_arrays [| [| 1.0; -1.0 |]; [| 2.0; -2.0 |] |]);
  invalid (Matrix.create 2 3)

let sparse_backing_for_large () =
  let n = 300 in
  let rates = List.init (n - 1) (fun i -> (i, i + 1, 1.0)) in
  let g = Generator.of_rates ~dim:n ((n - 1, 0, 1.0) :: rates) in
  Alcotest.(check bool) "large generator is sparse-backed" false
    (Generator.is_dense_backed g);
  Test_util.check_close "rate present" 1.0 (Generator.get g 5 6);
  Test_util.check_close "diagonal" (-1.0) (Generator.get g 5 5)

let dense_sparse_roundtrip () =
  let g = two_state 1.5 2.5 in
  Alcotest.(check bool) "to_sparse/to_matrix agree" true
    (Matrix.approx_equal (Generator.to_matrix g)
       (Sparse.to_dense (Generator.to_sparse g)))

let iteration_visits_positive_rates () =
  let g = Generator.of_rates ~dim:3 [ (0, 1, 1.0); (1, 2, 2.0); (2, 0, 3.0) ] in
  let seen = ref [] in
  Generator.iter_off_diagonal g (fun i j r -> seen := (i, j, r) :: !seen);
  Alcotest.(check int) "three edges" 3 (List.length !seen);
  let row = ref [] in
  Generator.iter_row g 1 (fun j r -> row := (j, r) :: !row);
  Alcotest.(check (list (pair int (float 0.0)))) "row 1" [ (2, 2.0) ] !row

let uniformization () =
  let g = two_state 1.0 3.0 in
  Test_util.check_close "uniformization rate" 3.0 (Generator.uniformization_rate g);
  let p = Generator.uniformized ~rate:4.0 g in
  Test_util.check_vec "stochastic rows" [| 1.0; 1.0 |] (Matrix.row_sums p);
  Test_util.check_close "p01" 0.25 (Matrix.get p 0 1);
  Test_util.check_close "p11" 0.25 (Matrix.get p 1 1);
  Alcotest.(check bool) "sparse matches dense" true
    (Matrix.approx_equal p (Sparse.to_dense (Generator.uniformized_sparse ~rate:4.0 g)));
  Test_util.check_raises_invalid "rate too small" (fun () ->
      ignore (Generator.uniformized ~rate:2.0 g))

let embedded_dtmc () =
  let g = Generator.of_rates ~dim:3 [ (0, 1, 1.0); (0, 2, 3.0); (1, 0, 2.0); (2, 1, 5.0) ] in
  let p = Generator.embedded_dtmc g in
  Test_util.check_close "jump probability" 0.75 (Matrix.get p 0 2);
  Test_util.check_close "no self-loop" 0.0 (Matrix.get p 0 0);
  Test_util.check_vec "rows stochastic" [| 1.0; 1.0; 1.0 |] (Matrix.row_sums p)

let embedded_dtmc_absorbing () =
  (* State 1 has no exits: the jump chain self-loops there. *)
  let m = Matrix.of_arrays [| [| -1.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let g = Generator.of_matrix m in
  let p = Generator.embedded_dtmc g in
  Test_util.check_close "absorbing self-loop" 1.0 (Matrix.get p 1 1)

let scaling () =
  let g = two_state 1.0 3.0 in
  let g2 = Generator.scale 2.0 g in
  Test_util.check_close "scaled rate" 2.0 (Generator.get g2 0 1);
  Test_util.check_raises_invalid "nonpositive factor" (fun () ->
      ignore (Generator.scale 0.0 g))

let random_generator_gen =
  QCheck2.Gen.(
    int_range 2 8 >>= fun n ->
    map
      (fun entries ->
        let rates =
          List.filteri (fun _ (i, j, _) -> i <> j)
            (List.map (fun (i, j, v) -> (i mod n, j mod n, v)) entries)
        in
        (* Ring guarantees at least one exit everywhere. *)
        let ring = List.init n (fun i -> (i, (i + 1) mod n, 0.5)) in
        Generator.of_rates ~dim:n (ring @ rates))
      (list_size (int_range 0 20)
         (map3 (fun i j v -> (i, j, v)) (int_range 0 7) (int_range 0 7)
            (float_range 0.0 5.0))))

let prop_rows_sum_zero =
  Test_util.qtest "generator rows sum to zero" random_generator_gen (fun g ->
      let sums = Matrix.row_sums (Generator.to_matrix g) in
      Vec.norm_inf sums <= 1e-9)

let prop_uniformized_stochastic =
  Test_util.qtest "uniformized matrix is stochastic" random_generator_gen (fun g ->
      let p = Generator.uniformized g in
      let sums = Matrix.row_sums p in
      let ok = ref (Vec.norm_inf (Vec.map (fun s -> s -. 1.0) sums) <= 1e-9) in
      Matrix.fold (fun acc x -> acc && x >= -1e-12) !ok p)

let suite =
  [
    t "of_rates diagonal" `Quick of_rates_diagonal;
    t "of_rates duplicates" `Quick of_rates_duplicates_sum;
    t "of_rates validation" `Quick of_rates_validation;
    t "of_matrix validation" `Quick of_matrix_validation;
    t "sparse backing" `Quick sparse_backing_for_large;
    t "dense/sparse roundtrip" `Quick dense_sparse_roundtrip;
    t "iteration" `Quick iteration_visits_positive_rates;
    t "uniformization" `Quick uniformization;
    t "embedded dtmc" `Quick embedded_dtmc;
    t "embedded dtmc absorbing" `Quick embedded_dtmc_absorbing;
    t "scaling" `Quick scaling;
    prop_rows_sum_zero;
    prop_uniformized_stochastic;
  ]
