open Dpm_prob

let t = Alcotest.test_case

let deterministic_across_instances () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d equal" i)
      (Rng.next_uint64 a) (Rng.next_uint64 b)
  done

let different_seeds_differ () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_uint64 a = Rng.next_uint64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let copy_preserves_state () =
  let a = Rng.create 99L in
  ignore (Rng.next_uint64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_uint64 a)
    (Rng.next_uint64 b)

let split_is_independent () =
  let a = Rng.create 5L in
  let b = Rng.split a in
  (* The split stream must differ from the parent's continuation. *)
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_uint64 a = Rng.next_uint64 b then incr matches
  done;
  Alcotest.(check int) "no collisions" 0 !matches

let float_in_unit_interval () =
  let r = Rng.create 3L in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of [0,1): %g" x
  done

let float_positive_never_zero () =
  let r = Rng.create 3L in
  for _ = 1 to 10_000 do
    let x = Rng.float_positive r in
    if x <= 0.0 || x > 1.0 then Alcotest.failf "float_positive out of (0,1]: %g" x
  done

let float_mean_near_half () =
  let r = Rng.create 11L in
  let acc = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.float r
  done;
  Test_util.check_relative ~rel:0.02 "uniform mean" 0.5 (!acc /. float_of_int n)

let int_bounds_and_uniformity () =
  let r = Rng.create 13L in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Rng.int r 10 in
    if k < 0 || k >= 10 then Alcotest.failf "int out of range: %d" k;
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun k c ->
      Test_util.check_relative ~rel:0.05
        (Printf.sprintf "bucket %d near uniform" k)
        (float_of_int n /. 10.0)
        (float_of_int c))
    counts;
  Test_util.check_raises_invalid "nonpositive bound" (fun () ->
      ignore (Rng.int r 0))

let bool_balanced () =
  let r = Rng.create 17L in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool r then incr trues
  done;
  Test_util.check_relative ~rel:0.03 "coin balance" 0.5
    (float_of_int !trues /. float_of_int n)

let zero_seed_works () =
  let r = Rng.create 0L in
  let x = Rng.next_uint64 r and y = Rng.next_uint64 r in
  Alcotest.(check bool) "state evolves from zero seed" true (x <> y)

let suite =
  [
    t "deterministic" `Quick deterministic_across_instances;
    t "seeds differ" `Quick different_seeds_differ;
    t "copy" `Quick copy_preserves_state;
    t "split independence" `Quick split_is_independent;
    t "float range" `Quick float_in_unit_interval;
    t "float_positive range" `Quick float_positive_never_zero;
    t "float mean" `Slow float_mean_near_half;
    t "int uniformity" `Slow int_bounds_and_uniformity;
    t "bool balance" `Slow bool_balanced;
    t "zero seed" `Quick zero_seed_works;
  ]
