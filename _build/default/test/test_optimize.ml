open Dpm_core

let t = Alcotest.test_case

let sys () = Paper_instance.system ()

let gain_equals_weighted_metrics () =
  let s = sys () in
  let w = 1.7 in
  let sol = Optimize.solve ~weight:w s in
  (* The PI gain is the weighted objective; Analytic recomputes the
     two terms separately from the stationary distribution. *)
  Test_util.check_relative ~rel:1e-6 "gain = power + w * waiting"
    (sol.Optimize.metrics.Analytic.power
    +. (w *. sol.Optimize.metrics.Analytic.avg_waiting_requests))
    sol.Optimize.gain

let optimal_beats_named_policies () =
  let s = sys () in
  List.iter
    (fun w ->
      let sol = Optimize.solve ~weight:w s in
      let objective m =
        m.Analytic.power +. (w *. m.Analytic.avg_waiting_requests)
      in
      List.iter
        (fun (name, actions) ->
          let m = Analytic.of_actions s ~actions in
          if sol.Optimize.gain > objective m +. 1e-6 then
            Alcotest.failf "w=%g: optimizer (%g) worse than %s (%g)" w
              sol.Optimize.gain name (objective m))
        [
          ("always_on", Policies.always_on s);
          ("greedy", Policies.greedy s);
          ("n=2", Policies.n_policy s ~n:2);
          ("n=4", Policies.n_policy s ~n:4);
        ])
    [ 0.1; 1.0; 10.0; 200.0 ]

let optimal_actions_respect_constraints () =
  let s = sys () in
  let sol = Optimize.solve ~weight:0.7 s in
  match
    Policies.check_valid s (fun x -> sol.Optimize.actions.(Sys_model.index s x))
  with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let sweep_traces_monotone_frontier () =
  let s = sys () in
  let sols = Optimize.sweep s ~weights:[ 0.05; 0.2; 1.0; 5.0; 25.0; 125.0 ] in
  let rec check : Optimize.solution list -> unit = function
    | a :: (b :: _ as rest) ->
        (* Heavier delay weight: less waiting, at least as much power. *)
        Alcotest.(check bool) "waiting non-increasing" true
          (b.Optimize.metrics.Analytic.avg_waiting_requests
          <= a.Optimize.metrics.Analytic.avg_waiting_requests +. 1e-9);
        Alcotest.(check bool) "power non-decreasing" true
          (b.Optimize.metrics.Analytic.power
          >= a.Optimize.metrics.Analytic.power -. 1e-9);
        check rest
    | _ -> ()
  in
  check sols

let pareto_filter () =
  let s = sys () in
  let sols = Optimize.sweep s ~weights:Optimize.default_weights in
  let front = Optimize.pareto sols in
  Alcotest.(check bool) "front nonempty" true (List.length front > 0);
  (* No member of the front is dominated by any solution. *)
  List.iter
    (fun (a : Optimize.solution) ->
      List.iter
        (fun (b : Optimize.solution) ->
          let strictly_better =
            b.Optimize.metrics.Analytic.power < a.Optimize.metrics.Analytic.power -. 1e-12
            && b.Optimize.metrics.Analytic.avg_waiting_requests
               < a.Optimize.metrics.Analytic.avg_waiting_requests -. 1e-12
          in
          if strictly_better then Alcotest.fail "dominated point on the front")
        sols)
    front;
  (* Front sorted by power. *)
  let rec sorted : Optimize.solution list -> bool = function
    | a :: (b :: _ as rest) ->
        a.Optimize.metrics.Analytic.power <= b.Optimize.metrics.Analytic.power
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by power" true (sorted front)

let constrained_meets_bound () =
  let s = sys () in
  List.iter
    (fun bound ->
      match Optimize.constrained s ~max_waiting_requests:bound with
      | None -> Alcotest.failf "bound %g should be feasible" bound
      | Some sol ->
          Alcotest.(check bool)
            (Printf.sprintf "bound %g met" bound)
            true
            (sol.Optimize.metrics.Analytic.avg_waiting_requests <= bound +. 1e-9))
    [ 0.6; 1.0; 2.0; 4.0 ]

let constrained_tighter_bound_costs_more () =
  let s = sys () in
  match
    ( Optimize.constrained s ~max_waiting_requests:0.6,
      Optimize.constrained s ~max_waiting_requests:3.0 )
  with
  | Some tight, Some loose ->
      Alcotest.(check bool) "tight bound costs at least as much" true
        (tight.Optimize.metrics.Analytic.power
        >= loose.Optimize.metrics.Analytic.power -. 1e-9)
  | _ -> Alcotest.fail "both bounds feasible"

let constrained_infeasible_returns_none () =
  let s = sys () in
  (* The wake-up pipeline bounds waiting below ~0.3 even always-on;
     an absurd bound is infeasible. *)
  Alcotest.(check bool) "infeasible" true
    (Optimize.constrained s ~max_waiting_requests:0.01 = None);
  Test_util.check_raises_invalid "bad bound" (fun () ->
      ignore (Optimize.constrained s ~max_waiting_requests:0.0))

let action_of_reads_solution () =
  let s = sys () in
  let sol = Optimize.solve ~weight:1.0 s in
  Array.iteri
    (fun k x ->
      Alcotest.(check int) "action_of" sol.Optimize.actions.(k)
        (Optimize.action_of s sol x))
    (Sys_model.states s)

let default_weights_shape () =
  Alcotest.(check int) "20 points" 20 (List.length Optimize.default_weights);
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "increasing ladder" true
    (increasing Optimize.default_weights)

let suite =
  [
    t "gain equals weighted metrics" `Quick gain_equals_weighted_metrics;
    t "beats named policies" `Quick optimal_beats_named_policies;
    t "respects constraints" `Quick optimal_actions_respect_constraints;
    t "sweep monotone frontier" `Quick sweep_traces_monotone_frontier;
    t "pareto filter" `Quick pareto_filter;
    t "constrained meets bound" `Quick constrained_meets_bound;
    t "constrained monotone" `Quick constrained_tighter_bound_costs_more;
    t "constrained infeasible" `Quick constrained_infeasible_returns_none;
    t "action_of" `Quick action_of_reads_solution;
    t "default weights" `Quick default_weights_shape;
  ]
