open Dpm_ctmdp
open Dpm_linalg

let t = Alcotest.test_case

let single_action_chain () =
  Model.create ~num_states:2 (fun i ->
      if i = 0 then [ { Model.action = 0; rates = [ (1, 1.0) ]; cost = 4.0 } ]
      else [ { Model.action = 0; rates = [ (0, 3.0) ]; cost = 8.0 } ])

let speed_control ~holding ~fast_cost =
  let lam = 1.0 in
  Model.create ~num_states:3 (fun i ->
      let arrivals = if i < 2 then [ (i + 1, lam) ] else [] in
      let serve rate = if i > 0 then [ (i - 1, rate) ] else [] in
      let hold = holding *. float_of_int i in
      [
        { Model.action = 0; rates = arrivals @ serve 1.5; cost = hold +. 1.0 };
        { Model.action = 1; rates = arrivals @ serve 4.0; cost = hold +. fast_cost };
      ])

let matches_transient_accumulation () =
  (* One action: the finite-horizon value is just the accumulated
     cost, computable independently by uniformization. *)
  let m = single_action_chain () in
  let horizon = 5.0 in
  let r = Finite_horizon.solve ~steps_per_mean:64 m ~horizon in
  let g =
    Dpm_ctmc.Generator.of_rates ~dim:2 [ (0, 1, 1.0); (1, 0, 3.0) ]
  in
  let expect state =
    let p0 = Vec.create 2 in
    p0.(state) <- 1.0;
    Dpm_ctmc.Transient.accumulated_rewards g ~p0 ~rewards:[| 4.0; 8.0 |] ~t:horizon
  in
  Test_util.check_relative ~rel:0.01 "value from 0" (expect 0)
    (Finite_horizon.value_at r ~state:0);
  Test_util.check_relative ~rel:0.01 "value from 1" (expect 1)
    (Finite_horizon.value_at r ~state:1)

let terminal_cost_added () =
  let m = single_action_chain () in
  let base = Finite_horizon.solve ~steps_per_mean:16 m ~horizon:1.0 in
  let bumped =
    Finite_horizon.solve ~steps_per_mean:16 ~terminal:[| 10.0; 10.0 |] m
      ~horizon:1.0
  in
  (* A constant terminal cost shifts every value by exactly that
     constant. *)
  Test_util.check_close ~tol:1e-9 "constant shift" 10.0
    (bumped.Finite_horizon.values.(0) -. base.Finite_horizon.values.(0));
  Test_util.check_close ~tol:1e-9 "constant shift state 1" 10.0
    (bumped.Finite_horizon.values.(1) -. base.Finite_horizon.values.(1))

let long_horizon_gain_matches_average () =
  let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
  let pi = Policy_iteration.solve m in
  let horizon = 200.0 in
  let r = Finite_horizon.solve ~steps_per_mean:8 m ~horizon in
  (* v(T)/T -> optimal average gain. *)
  Test_util.check_relative ~rel:0.02 "average rate"
    pi.Policy_iteration.gain
    (Finite_horizon.value_at r ~state:0 /. horizon);
  (* Far from the horizon the schedule's first policy is the
     average-optimal one. *)
  (match r.Finite_horizon.schedule with
  | (t0, p0) :: _ ->
      Test_util.check_close "schedule starts at 0" 0.0 t0;
      Alcotest.(check (array int)) "turnpike policy"
        (Policy.actions m pi.Policy_iteration.policy)
        (Policy.actions m p0)
  | [] -> Alcotest.fail "empty schedule")

let schedule_is_sorted_and_starts_at_zero () =
  let m = speed_control ~holding:5.0 ~fast_cost:1.2 in
  let r = Finite_horizon.solve ~steps_per_mean:8 m ~horizon:20.0 in
  let times = List.map fst r.Finite_horizon.schedule in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a < b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted change points" true (sorted times);
  (match times with
  | t0 :: _ -> Test_util.check_close "first at 0" 0.0 t0
  | [] -> Alcotest.fail "empty schedule")

let finite_horizon_beats_any_fixed_policy () =
  (* The piecewise-stationary optimum can only improve on stationary
     policies over a finite horizon. *)
  let m = speed_control ~holding:3.0 ~fast_cost:2.0 in
  let horizon = 4.0 in
  let r = Finite_horizon.solve ~steps_per_mean:32 m ~horizon in
  Seq.iter
    (fun p ->
      (* Expected cost of the fixed policy over the horizon. *)
      let g = Policy.generator m p in
      let c = Policy.cost_vector m p in
      let p0 = Vec.create (Model.num_states m) in
      p0.(0) <- 1.0;
      let fixed =
        Dpm_ctmc.Transient.accumulated_rewards g ~p0 ~rewards:c ~t:horizon
      in
      if Finite_horizon.value_at r ~state:0 > fixed +. 0.02 *. Float.abs fixed
      then
        Alcotest.failf "fixed policy beats the finite-horizon optimum: %g < %g"
          fixed
          (Finite_horizon.value_at r ~state:0))
    (Policy.enumerate m)

let stiff_model_rejected () =
  let sys = Dpm_core.Paper_instance.system () in
  let m = Dpm_core.Sys_model.to_ctmdp sys ~weight:1.0 in
  (* Big-M rates make the step count explode; the solver must refuse
     loudly instead of looping for hours. *)
  Test_util.check_raises_invalid "stiffness guard" (fun () ->
      ignore (Finite_horizon.solve m ~horizon:100.0))

let validation () =
  let m = single_action_chain () in
  Test_util.check_raises_invalid "bad horizon" (fun () ->
      ignore (Finite_horizon.solve m ~horizon:0.0));
  Test_util.check_raises_invalid "bad terminal" (fun () ->
      ignore (Finite_horizon.solve ~terminal:[| 1.0 |] m ~horizon:1.0));
  Test_util.check_raises_invalid "value_at range" (fun () ->
      ignore
        (Finite_horizon.value_at
           (Finite_horizon.solve ~steps_per_mean:2 m ~horizon:0.5)
           ~state:9))

let suite =
  [
    t "matches transient accumulation" `Quick matches_transient_accumulation;
    t "terminal cost" `Quick terminal_cost_added;
    t "long horizon = average" `Slow long_horizon_gain_matches_average;
    t "schedule sorted" `Quick schedule_is_sorted_and_starts_at_zero;
    t "beats fixed policies" `Quick finite_horizon_beats_any_fixed_policy;
    t "stiffness guard" `Quick stiff_model_rejected;
    t "validation" `Quick validation;
  ]
