open Dpm_ctmdp

let t = Alcotest.test_case

let speed_control ~holding ~fast_cost =
  let lam = 1.0 in
  Model.create ~num_states:3 (fun i ->
      let arrivals = if i < 2 then [ (i + 1, lam) ] else [] in
      let serve rate = if i > 0 then [ (i - 1, rate) ] else [] in
      let hold = holding *. float_of_int i in
      [
        { Model.action = 0; rates = arrivals @ serve 1.5; cost = hold +. 1.0 };
        { Model.action = 1; rates = arrivals @ serve 4.0; cost = hold +. fast_cost };
      ])

let matches_policy_iteration_small () =
  List.iter
    (fun (h, f) ->
      let m = speed_control ~holding:h ~fast_cost:f in
      let pi = Policy_iteration.solve m in
      let lp = Lp_solver.solve m in
      Test_util.check_close ~tol:1e-8
        (Printf.sprintf "gain h=%g f=%g" h f)
        pi.Policy_iteration.gain lp.Lp_solver.gain;
      (* On this nondegenerate model the duals are the relative
         values. *)
      Test_util.check_vec ~tol:1e-7 "bias" pi.Policy_iteration.bias
        lp.Lp_solver.bias)
    [ (0.1, 3.0); (1.0, 3.0); (5.0, 3.0); (5.0, 1.2) ]

let occupation_measure_is_distribution () =
  let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
  let lp = Lp_solver.solve m in
  let total =
    Array.fold_left
      (fun acc row -> Array.fold_left ( +. ) acc row)
      0.0 lp.Lp_solver.occupation
  in
  Test_util.check_close ~tol:1e-9 "mass one" 1.0 total;
  Array.iter
    (Array.iter (fun x -> if x < -1e-9 then Alcotest.fail "negative measure"))
    lp.Lp_solver.occupation;
  (* The measure matches the stationary distribution of the extracted
     policy. *)
  let g = Policy.generator m lp.Lp_solver.policy in
  let pi = Dpm_ctmc.Steady_state.solve g in
  Array.iteri
    (fun i row ->
      Test_util.check_close ~tol:1e-7
        (Printf.sprintf "state %d measure" i)
        pi.(i)
        (Array.fold_left ( +. ) 0.0 row))
    lp.Lp_solver.occupation

let paper_instance_agreement () =
  (* The stiff (big-M) DPM model: the LP must still match policy
     iteration, and its extracted policy must achieve the LP gain. *)
  let sys = Dpm_core.Paper_instance.system () in
  List.iter
    (fun w ->
      let m = Dpm_core.Sys_model.to_ctmdp sys ~weight:w in
      let pi = Policy_iteration.solve m in
      let lp = Lp_solver.solve m in
      Test_util.check_relative ~rel:1e-7
        (Printf.sprintf "gain at w=%g" w)
        pi.Policy_iteration.gain lp.Lp_solver.gain;
      let e = Policy_iteration.evaluate_robust m lp.Lp_solver.policy in
      Test_util.check_relative ~rel:1e-7
        (Printf.sprintf "extracted policy gain at w=%g" w)
        pi.Policy_iteration.gain e.Policy_iteration.gain)
    [ 0.1; 1.0; 5.0; 50.0 ]

let prop_lp_equals_pi_on_random_models =
  let random_mdp_gen =
    QCheck2.Gen.(
      int_range 2 4 >>= fun n ->
      let choice_gen state =
        map2
          (fun cost extra ->
            { Model.action = 0;
              rates = [ ((state + 1) mod n, 0.4 +. Float.abs extra) ];
              cost })
          (float_range 0.0 10.0) (float_range 0.1 3.0)
      in
      let alt_gen state =
        map2
          (fun cost r ->
            let second =
              if (state + 2) mod n <> state then [ ((state + 2) mod n, r) ] else []
            in
            { Model.action = 1; rates = ((state + 1) mod n, 0.2) :: second; cost })
          (float_range 0.0 10.0) (float_range 0.1 3.0)
      in
      map
        (fun rows -> Model.create ~num_states:n (fun i -> List.nth rows i))
        (flatten_l
           (List.init n (fun i ->
                map2 (fun a b -> [ a; b ]) (choice_gen i) (alt_gen i)))))
  in
  Test_util.qtest ~count:80 "LP gain equals PI gain on random CTMDPs"
    random_mdp_gen
    (fun m ->
      let pi = Policy_iteration.solve m in
      let lp = Lp_solver.solve m in
      Float.abs (pi.Policy_iteration.gain -. lp.Lp_solver.gain)
      <= 1e-6 *. (1.0 +. Float.abs pi.Policy_iteration.gain))

let suite =
  [
    t "matches PI (small)" `Quick matches_policy_iteration_small;
    t "occupation measure" `Quick occupation_measure_is_distribution;
    t "paper instance (stiff)" `Quick paper_instance_agreement;
    prop_lp_equals_pi_on_random_models;
  ]
