open Dpm_ctmdp

let t = Alcotest.test_case

let speed_control ~holding ~fast_cost =
  let lam = 1.0 in
  Model.create ~num_states:3 (fun i ->
      let arrivals = if i < 2 then [ (i + 1, lam) ] else [] in
      let serve rate = if i > 0 then [ (i - 1, rate) ] else [] in
      let hold = holding *. float_of_int i in
      [
        { Model.action = 0; rates = arrivals @ serve 1.5; cost = hold +. 1.0 };
        { Model.action = 1; rates = arrivals @ serve 4.0; cost = hold +. fast_cost };
      ])

let evaluate_two_state_closed_form () =
  (* v = (aI - G)^{-1} c on the 2-state chain, checked by hand:
     (a+1) v0 - v1 = 4;  -3 v0 + (a+3) v1 = 8 with a = 1:
     2 v0 - v1 = 4; -3 v0 + 4 v1 = 8 -> v0 = 24/5, v1 = 28/5. *)
  let m =
    Model.create ~num_states:2 (fun i ->
        if i = 0 then [ { Model.action = 0; rates = [ (1, 1.0) ]; cost = 4.0 } ]
        else [ { Model.action = 0; rates = [ (0, 3.0) ]; cost = 8.0 } ])
  in
  let v = Discounted.evaluate m ~discount:1.0 (Policy.uniform_first m) in
  Test_util.check_vec ~tol:1e-10 "closed form" [| 4.8; 5.6 |] v

let optimal_values_dominate () =
  (* The solver's value vector must be pointwise <= any fixed
     policy's. *)
  let m = speed_control ~holding:3.0 ~fast_cost:2.0 in
  let r = Discounted.solve m ~discount:0.4 in
  Seq.iter
    (fun p ->
      let v = Discounted.evaluate m ~discount:0.4 p in
      Array.iteri
        (fun i vi ->
          if r.Discounted.values.(i) > vi +. 1e-8 then
            Alcotest.failf "state %d: optimal %g > policy %g" i
              r.Discounted.values.(i) vi)
        v)
    (Policy.enumerate m)

let vanishing_discount_approaches_average_optimal () =
  (* Theorem 2.3: the a-optimal policy for small a maximizes the
     average criterion. *)
  let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
  let avg = Policy_iteration.solve m in
  let dis = Discounted.solve m ~discount:1e-5 in
  let gain_of_dis_policy =
    (Policy_iteration.evaluate m dis.Discounted.policy).Policy_iteration.gain
  in
  Test_util.check_close ~tol:1e-6 "same average gain"
    avg.Policy_iteration.gain gain_of_dis_policy;
  (* And a * v_dis(a) -> optimal average gain. *)
  Test_util.check_relative ~rel:1e-3 "Abelian limit"
    avg.Policy_iteration.gain
    (1e-5 *. dis.Discounted.values.(0))

let myopic_at_huge_discount () =
  (* As a -> infinity only the immediate cost rate matters: the
     cheapest action per state wins. *)
  let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
  let r = Discounted.solve m ~discount:1e7 in
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "cheapest action in state %d" i)
      0 (* slow costs 1.0 < fast *)
      (Policy.action m r.Discounted.policy i)
  done

let validation () =
  let m = speed_control ~holding:1.0 ~fast_cost:2.0 in
  Test_util.check_raises_invalid "nonpositive discount" (fun () ->
      ignore (Discounted.solve m ~discount:0.0))

let prop_monotone_in_discount =
  (* Discounted total cost decreases as the discount rate grows
     (costs are nonnegative). *)
  Test_util.qtest ~count:40 "values decrease in the discount rate"
    QCheck2.Gen.(pair (float_range 0.05 2.0) (float_range 0.1 2.0))
    (fun (a, delta) ->
      let m = speed_control ~holding:2.0 ~fast_cost:3.0 in
      let v1 = Discounted.solve m ~discount:a in
      let v2 = Discounted.solve m ~discount:(a +. delta) in
      let ok = ref true in
      Array.iteri
        (fun i x -> if v2.Discounted.values.(i) > x +. 1e-8 then ok := false)
        v1.Discounted.values;
      !ok)

let suite =
  [
    t "evaluate closed form" `Quick evaluate_two_state_closed_form;
    t "optimal dominates all policies" `Quick optimal_values_dominate;
    t "vanishing discount" `Quick vanishing_discount_approaches_average_optimal;
    t "myopic at huge discount" `Quick myopic_at_huge_discount;
    t "validation" `Quick validation;
    prop_monotone_in_discount;
  ]
