open Dpm_linalg

let t = Alcotest.test_case

(* Random birth-death generator: irreducible, nice diagonals. *)
let birth_death n lam mu =
  let ts = ref [] in
  for i = 0 to n - 1 do
    if i < n - 1 then ts := (i, i + 1, lam) :: !ts;
    if i > 0 then ts := (i, i - 1, mu) :: !ts
  done;
  let out = Array.make n 0.0 in
  List.iter (fun (i, _, r) -> out.(i) <- out.(i) +. r) !ts;
  let diag = List.init n (fun i -> (i, i, -.out.(i))) in
  Sparse.of_triplets ~rows:n ~cols:n (diag @ !ts)

let mm1k_closed_form n lam mu =
  let rho = lam /. mu in
  Vec.normalize1 (Vec.init n (fun i -> rho ** float_of_int i))

let power_method_birth_death () =
  (* Uniformize a birth-death generator and find its fixed point. *)
  let q = birth_death 6 1.0 2.0 in
  let lam_max = 3.5 in
  let p =
    Sparse.add (Sparse.identity 6) (Sparse.scale (1.0 /. lam_max) q)
  in
  let r = Iterative.power_method ~tol:1e-13 p in
  Alcotest.(check bool) "converged" true r.Iterative.converged;
  Test_util.check_vec ~tol:1e-8 "stationary" (mm1k_closed_form 6 1.0 2.0)
    r.Iterative.solution

let gauss_seidel_steady_birth_death () =
  let q = birth_death 8 0.7 1.3 in
  let r = Iterative.gauss_seidel_steady ~tol:1e-14 q in
  Alcotest.(check bool) "converged" true r.Iterative.converged;
  Alcotest.(check bool) "residual tiny" true (r.Iterative.residual < 1e-9);
  Test_util.check_vec ~tol:1e-8 "stationary" (mm1k_closed_form 8 0.7 1.3)
    r.Iterative.solution

let steady_rejects_zero_diagonal () =
  let q = Sparse.of_triplets ~rows:2 ~cols:2 [ (0, 1, 1.0); (0, 0, -1.0) ] in
  Test_util.check_raises_invalid "absorbing state" (fun () ->
      ignore (Iterative.gauss_seidel_steady q))

let dominant_system n =
  let ts = ref [] in
  for i = 0 to n - 1 do
    ts := (i, i, 10.0 +. float_of_int i) :: !ts;
    if i > 0 then ts := (i, i - 1, 1.5) :: !ts;
    if i < n - 1 then ts := (i, i + 1, -2.0) :: !ts
  done;
  Sparse.of_triplets ~rows:n ~cols:n !ts

let jacobi_solves () =
  let a = dominant_system 7 in
  let b = Vec.init 7 (fun i -> float_of_int (i - 3)) in
  let r = Iterative.jacobi ~tol:1e-12 a b in
  Alcotest.(check bool) "converged" true r.Iterative.converged;
  Alcotest.(check bool) "residual" true
    (Vec.norm_inf (Vec.sub (Sparse.mul_vec a r.Iterative.solution) b) < 1e-10)

let gauss_seidel_solves_and_matches_lu () =
  let a = dominant_system 7 in
  let b = Vec.init 7 (fun i -> 1.0 +. float_of_int i) in
  let r = Iterative.gauss_seidel ~tol:1e-13 a b in
  Alcotest.(check bool) "converged" true r.Iterative.converged;
  let x_lu = Lu.solve (Sparse.to_dense a) b in
  Test_util.check_vec ~tol:1e-8 "matches LU" x_lu r.Iterative.solution

let iteration_cap_reported () =
  let a = dominant_system 7 in
  let b = Vec.make 7 1.0 in
  let r = Iterative.jacobi ~tol:1e-16 ~max_iter:2 a b in
  Alcotest.(check bool) "not converged" false r.Iterative.converged;
  Alcotest.(check int) "stopped at cap" 2 r.Iterative.iterations

let prop_gs_matches_lu =
  Test_util.qtest ~count:60 "Gauss-Seidel matches LU on dominant systems"
    QCheck2.Gen.(int_range 2 9)
    (fun n ->
      let a = dominant_system n in
      let b = Vec.init n (fun i -> Float.sin (float_of_int i)) in
      let r = Iterative.gauss_seidel ~tol:1e-13 a b in
      r.Iterative.converged
      && Vec.approx_equal ~tol:1e-7 (Lu.solve (Sparse.to_dense a) b)
           r.Iterative.solution)

let suite =
  [
    t "power method on birth-death" `Quick power_method_birth_death;
    t "gauss-seidel steady state" `Quick gauss_seidel_steady_birth_death;
    t "steady rejects zero diagonal" `Quick steady_rejects_zero_diagonal;
    t "jacobi" `Quick jacobi_solves;
    t "gauss-seidel linear solve" `Quick gauss_seidel_solves_and_matches_lu;
    t "iteration cap" `Quick iteration_cap_reported;
    prop_gs_matches_lu;
  ]
