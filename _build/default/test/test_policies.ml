open Dpm_core

let t = Alcotest.test_case

let sys () = Paper_instance.system ()

let all_named_policies_valid () =
  let s = sys () in
  let check name policy =
    match Policies.check_valid s policy with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s: %s" name msg
  in
  check "always_on" (Policies.always_on s);
  check "greedy" (Policies.greedy s);
  for n = 1 to 5 do
    check (Printf.sprintf "n_policy %d" n) (Policies.n_policy s ~n)
  done

let greedy_decisions () =
  let s = sys () in
  let p = Policies.greedy s in
  (* Transfer emptying the queue -> deepest sleep. *)
  Alcotest.(check int) "sleep when emptied" Paper_instance.sleeping
    (p (Sys_model.Transfer (Paper_instance.active, 1)));
  (* Transfer with backlog -> keep serving. *)
  Alcotest.(check int) "keep serving" Paper_instance.active
    (p (Sys_model.Transfer (Paper_instance.active, 3)));
  (* Sleeping with one request -> wake. *)
  Alcotest.(check int) "wake on demand" Paper_instance.active
    (p (Sys_model.Stable (Paper_instance.sleeping, 1)));
  (* Sleeping with empty queue -> stay. *)
  Alcotest.(check int) "stay asleep" Paper_instance.sleeping
    (p (Sys_model.Stable (Paper_instance.sleeping, 0)))

let n_policy_threshold () =
  let s = sys () in
  let p = Policies.n_policy s ~n:3 in
  Alcotest.(check int) "below threshold stays down" Paper_instance.sleeping
    (p (Sys_model.Stable (Paper_instance.sleeping, 2)));
  Alcotest.(check int) "at threshold wakes" Paper_instance.active
    (p (Sys_model.Stable (Paper_instance.sleeping, 3)));
  Alcotest.(check int) "exhaustive service" Paper_instance.active
    (p (Sys_model.Transfer (Paper_instance.active, 2)))

let n_policy_clamped () =
  let s = sys () in
  let p99 = Policies.n_policy s ~n:99 in
  (* Clamped to Q = 5: the full queue must wake. *)
  Alcotest.(check int) "clamped to capacity" Paper_instance.active
    (p99 (Sys_model.Stable (Paper_instance.sleeping, 5)));
  match Policies.check_valid s p99 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "clamped policy invalid: %s" msg

let n1_equals_greedy () =
  let s = sys () in
  let a = Policies.actions_array s (Policies.greedy s) in
  let b = Policies.actions_array s (Policies.n_policy s ~n:1) in
  Alcotest.(check (array int)) "N=1 is greedy" a b

let always_on_never_sleeps () =
  let s = sys () in
  let p = Policies.always_on s in
  Array.iter
    (fun x ->
      let a = p x in
      if not (Service_provider.is_active (Sys_model.sp s) a) then
        Alcotest.failf "always_on commands inactive mode in %s"
          (Format.asprintf "%a" (Sys_model.pp_state s) x))
    (Sys_model.states s)

let check_valid_detects_violations () =
  let s = sys () in
  (* Command the active server to sleep in a stable state: violates
     constraint 1. *)
  let bad = function
    | Sys_model.Stable (0, _) -> Paper_instance.sleeping
    | x -> Policies.always_on s x
  in
  match Policies.check_valid s bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected a constraint violation"

let to_ctmdp_policy_roundtrip () =
  let s = sys () in
  let m = Sys_model.to_ctmdp s ~weight:1.0 in
  let p = Policies.to_ctmdp_policy s m (Policies.greedy s) in
  Array.iteri
    (fun k x ->
      Alcotest.(check int)
        (Format.asprintf "action at %a" (Sys_model.pp_state s) x)
        (Policies.greedy s x)
        (Dpm_ctmdp.Policy.action m p k))
    (Sys_model.states s);
  Test_util.check_raises_invalid "invalid policy rejected" (fun () ->
      ignore
        (Policies.to_ctmdp_policy s m (function
          | Sys_model.Stable (0, _) -> Paper_instance.sleeping
          | x -> Policies.always_on s x)))

let custom_modes_respected () =
  let s = sys () in
  let p =
    Policies.greedy ~sleep_mode:Paper_instance.waiting
      ~active_mode:Paper_instance.active s
  in
  Alcotest.(check int) "waiting as shallow sleep" Paper_instance.waiting
    (p (Sys_model.Transfer (Paper_instance.active, 1)));
  Test_util.check_raises_invalid "active mode must be active" (fun () ->
      ignore (Policies.greedy ~active_mode:Paper_instance.sleeping s
                (Sys_model.Stable (0, 0))))

let suite =
  [
    t "named policies valid" `Quick all_named_policies_valid;
    t "greedy decisions" `Quick greedy_decisions;
    t "n-policy threshold" `Quick n_policy_threshold;
    t "n-policy clamped" `Quick n_policy_clamped;
    t "N=1 equals greedy" `Quick n1_equals_greedy;
    t "always-on never sleeps" `Quick always_on_never_sleeps;
    t "check_valid detects violations" `Quick check_valid_detects_violations;
    t "to_ctmdp_policy roundtrip" `Quick to_ctmdp_policy_roundtrip;
    t "custom modes" `Quick custom_modes_respected;
  ]
