open Dpm_prob

let t = Alcotest.test_case

let exponential_moments () =
  let r = Test_util.rng () in
  let rate = 0.667 in
  let n = 200_000 in
  let w = Stat.Welford.create () in
  for _ = 1 to n do
    Stat.Welford.add w (Dist.exponential_sample r ~rate)
  done;
  Test_util.check_relative ~rel:0.02 "mean = 1/rate" (1.0 /. rate)
    (Stat.Welford.mean w);
  Test_util.check_relative ~rel:0.05 "variance = 1/rate^2"
    (1.0 /. (rate *. rate))
    (Stat.Welford.variance w)

let exponential_pdf_cdf () =
  Test_util.check_close "pdf at 0" 2.0 (Dist.exponential_pdf ~rate:2.0 0.0);
  Test_util.check_close "pdf negative" 0.0 (Dist.exponential_pdf ~rate:2.0 (-1.0));
  Test_util.check_close ~tol:1e-12 "cdf" (1.0 -. exp (-2.0))
    (Dist.exponential_cdf ~rate:2.0 1.0);
  Test_util.check_raises_invalid "nonpositive rate" (fun () ->
      Dist.exponential_pdf ~rate:0.0 1.0)

let memorylessness () =
  (* P(X > s + t | X > s) = P(X > t): estimate both sides. *)
  let r = Test_util.rng () in
  let rate = 1.0 and s = 0.7 and tt = 0.9 in
  let beyond_s = ref 0 and beyond_st = ref 0 in
  for _ = 1 to 300_000 do
    let x = Dist.exponential_sample r ~rate in
    if x > s then begin
      incr beyond_s;
      if x > s +. tt then incr beyond_st
    end
  done;
  let conditional = float_of_int !beyond_st /. float_of_int !beyond_s in
  Test_util.check_relative ~rel:0.03 "memoryless" (exp (-.rate *. tt)) conditional

let uniform_bounds () =
  let r = Test_util.rng () in
  for _ = 1 to 10_000 do
    let x = Dist.uniform_sample r ~lo:(-2.0) ~hi:3.0 in
    if x < -2.0 || x >= 3.0 then Alcotest.failf "uniform out of range: %g" x
  done;
  Test_util.check_raises_invalid "hi < lo" (fun () ->
      Dist.uniform_sample r ~lo:1.0 ~hi:0.0)

let poisson_pmf_sums_to_one () =
  let mean = 7.3 in
  let total = ref 0.0 in
  for k = 0 to 100 do
    total := !total +. Dist.poisson_pmf ~mean k
  done;
  Test_util.check_close ~tol:1e-9 "pmf mass" 1.0 !total;
  Test_util.check_close "pmf negative k" 0.0 (Dist.poisson_pmf ~mean (-1));
  Test_util.check_close "zero mean at 0" 1.0 (Dist.poisson_pmf ~mean:0.0 0)

let poisson_pmf_recurrence () =
  (* p(k+1)/p(k) = mean/(k+1) *)
  let mean = 4.2 in
  for k = 0 to 20 do
    let ratio = Dist.poisson_pmf ~mean (k + 1) /. Dist.poisson_pmf ~mean k in
    Test_util.check_close ~tol:1e-9
      (Printf.sprintf "recurrence at %d" k)
      (mean /. float_of_int (k + 1))
      ratio
  done

let poisson_sampler_moments mean () =
  let r = Test_util.rng () in
  let w = Stat.Welford.create () in
  for _ = 1 to 100_000 do
    Stat.Welford.add w (float_of_int (Dist.poisson_sample r ~mean))
  done;
  Test_util.check_relative ~rel:0.03 "mean" mean (Stat.Welford.mean w);
  Test_util.check_relative ~rel:0.06 "variance = mean" mean (Stat.Welford.variance w)

let poisson_weights_window () =
  let k_lo, w = Dist.poisson_weights ~mean:25.0 ~eps:1e-10 in
  let mass = Array.fold_left ( +. ) 0.0 w in
  Alcotest.(check bool) "captures 1 - eps" true (mass >= 1.0 -. 1e-10);
  Alcotest.(check bool) "window starts at or below mode" true (k_lo <= 25);
  Array.iteri
    (fun i wi ->
      Test_util.check_relative ~rel:1e-9
        (Printf.sprintf "weight %d is the pmf" i)
        (Dist.poisson_pmf ~mean:25.0 (k_lo + i))
        wi)
    w

let geometric_mean () =
  let r = Test_util.rng () in
  let p = 0.3 in
  let w = Stat.Welford.create () in
  for _ = 1 to 100_000 do
    Stat.Welford.add w (float_of_int (Dist.geometric_sample r ~p))
  done;
  Test_util.check_relative ~rel:0.03 "failures before success" ((1.0 -. p) /. p)
    (Stat.Welford.mean w);
  let r2 = Test_util.rng () in
  Alcotest.(check int) "p = 1 is constant 0" 0 (Dist.geometric_sample r2 ~p:1.0)

let categorical_frequencies () =
  let r = Test_util.rng () in
  let weights = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Dist.categorical_sample r weights in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  Test_util.check_relative ~rel:0.04 "weight 1/4" (0.25 *. float_of_int n)
    (float_of_int counts.(0));
  Test_util.check_raises_invalid "all-zero weights" (fun () ->
      ignore (Dist.categorical_sample r [| 0.0; 0.0 |]))

let erlang_moments () =
  let r = Test_util.rng () in
  let k = 4 and rate = 2.0 in
  let w = Stat.Welford.create () in
  for _ = 1 to 100_000 do
    Stat.Welford.add w (Dist.erlang_sample r ~k ~rate)
  done;
  Test_util.check_relative ~rel:0.02 "mean k/rate" (float_of_int k /. rate)
    (Stat.Welford.mean w);
  Test_util.check_relative ~rel:0.05 "variance k/rate^2"
    (float_of_int k /. (rate *. rate))
    (Stat.Welford.variance w)

let suite =
  [
    t "exponential moments" `Slow exponential_moments;
    t "exponential pdf/cdf" `Quick exponential_pdf_cdf;
    t "memorylessness" `Slow memorylessness;
    t "uniform bounds" `Quick uniform_bounds;
    t "poisson pmf mass" `Quick poisson_pmf_sums_to_one;
    t "poisson pmf recurrence" `Quick poisson_pmf_recurrence;
    t "poisson sampler small mean" `Slow (poisson_sampler_moments 3.7);
    t "poisson sampler large mean" `Slow (poisson_sampler_moments 80.0);
    t "poisson weights window" `Quick poisson_weights_window;
    t "geometric mean" `Slow geometric_mean;
    t "categorical frequencies" `Slow categorical_frequencies;
    t "erlang moments" `Slow erlang_moments;
  ]
