(* Section III of the paper remarks that the mean inter-arrival time
   of a Poisson stream can be estimated within ~5% after observing 50
   events, so a power manager facing a slowly varying workload can
   re-estimate the input rate online and adapt its policy.

   This example demonstrates exactly that: a piecewise-stationary
   workload alternates between a quiet phase (1 request / 12 s) and a
   busy phase (1 request / 3 s).  An adaptive controller re-estimates
   lambda over a sliding window of 50 inter-arrival gaps, re-optimizes
   (caching solutions by rate bucket), and is compared against static
   optimal policies tuned to each extreme and to the average rate. *)

open Dpm_core
open Dpm_sim

let quiet_rate = 1.0 /. 12.0
let busy_rate = 1.0 /. 3.0
let phase_length = 3_000.0 (* seconds per phase *)
let weight = 1.0 (* power/delay trade-off for every optimization *)

let workload () =
  (* Alternate phases over the whole run via explicit segments. *)
  let segments =
    List.init 40 (fun k ->
        ( float_of_int (k + 1) *. phase_length,
          if k mod 2 = 0 then quiet_rate else busy_rate ))
  in
  Workload.piecewise ~segments ~final_rate:quiet_rate

(* An adaptive controller: estimates lambda from the last [window]
   inter-arrival gaps and delegates to the optimal policy for the
   estimated rate (bucketed to limit re-solves). *)
let adaptive_controller sys0 ~window =
  let arrivals = Queue.create () in
  let last_arrival = ref None in
  let cache : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let current = ref (Optimize.solve ~weight sys0).Optimize.actions in
  let solves = ref 0 in
  let bucket_of rate = int_of_float (Float.round (log rate *. 8.0)) in
  let policy_for rate =
    let bucket = bucket_of rate in
    match Hashtbl.find_opt cache bucket with
    | Some actions -> actions
    | None ->
        incr solves;
        let sys = Sys_model.with_arrival_rate sys0 rate in
        let actions = (Optimize.solve ~weight sys).Optimize.actions in
        Hashtbl.replace cache bucket actions;
        actions
  in
  let base = Controller.of_policy sys0 (fun x -> !current.(Sys_model.index sys0 x)) in
  let decide obs reason =
    (match reason with
    | Controller.Arrival | Controller.Arrival_lost ->
        (match !last_arrival with
        | Some prev ->
            Queue.add (obs.Controller.time -. prev) arrivals;
            if Queue.length arrivals > window then ignore (Queue.pop arrivals)
        | None -> ());
        last_arrival := Some obs.Controller.time;
        if Queue.length arrivals >= window then begin
          let total = Queue.fold ( +. ) 0.0 arrivals in
          let rate = float_of_int (Queue.length arrivals) /. total in
          current := policy_for rate
        end
    | Controller.Init | Controller.Service_completed _
    | Controller.Switch_completed | Controller.Timer ->
        ());
    base.Controller.decide obs reason
  in
  ({ Controller.name = "adaptive"; decide }, solves)

let run_with name controller sys =
  let r =
    Power_sim.run ~seed:99L ~sys ~workload:(workload ()) ~controller
      ~stop:(Power_sim.Sim_time (40.0 *. phase_length))
      ()
  in
  Format.printf "  %-22s %a@." name Power_sim.pp r;
  r

let () =
  let sys = Paper_instance.system_at ~arrival_rate:quiet_rate in
  Format.printf
    "Piecewise-stationary workload: %g s phases alternating 1/12 and 1/3 req/s@."
    phase_length;
  Format.printf "All policies optimized with weight w = %g@.@." weight;
  let static rate = Controller.of_solution sys (Optimize.solve ~weight (Sys_model.with_arrival_rate sys rate)) in
  let adaptive, solves = adaptive_controller sys ~window:50 in
  let r_adaptive = run_with "adaptive (window 50)" adaptive sys in
  let r_quiet = run_with "static @ quiet rate" (static quiet_rate) sys in
  let r_busy = run_with "static @ busy rate" (static busy_rate) sys in
  let avg_rate = 0.5 *. (quiet_rate +. busy_rate) in
  let r_avg = run_with "static @ average rate" (static avg_rate) sys in
  Format.printf "@.adaptive controller re-optimized %d times (cached buckets)@."
    !solves;
  let objective r =
    r.Power_sim.avg_power +. (weight *. r.Power_sim.avg_waiting_requests)
  in
  Format.printf "@.weighted objective (power + w * waiting):@.";
  List.iter
    (fun (name, r) -> Format.printf "  %-22s %.4f@." name (objective r))
    [
      ("adaptive", r_adaptive);
      ("static quiet", r_quiet);
      ("static busy", r_busy);
      ("static average", r_avg);
    ];
  if
    objective r_adaptive <= objective r_quiet
    && objective r_adaptive <= objective r_busy
  then Format.printf "@.adaptive beats both static extremes, as expected@."
