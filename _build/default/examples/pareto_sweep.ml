(* Trace the power/delay trade-off curve of the paper instance
   (Figure 4's optimal-policy series) and emit it as CSV, together
   with the N-policy points, suitable for plotting.

   Usage: dune exec examples/pareto_sweep.exe [> curve.csv] *)

open Dpm_core

let () =
  let sys = Paper_instance.system () in
  Printf.printf "family,parameter,weight,power_w,waiting_requests,waiting_time_s,loss_probability\n";
  (* Optimal frontier: dense weight ladder, deduplicated policies,
     non-dominated filter. *)
  let sweep = Optimize.sweep sys ~weights:Optimize.default_weights in
  List.iter
    (fun (sol : Optimize.solution) ->
      let m = sol.Optimize.metrics in
      Printf.printf "optimal,,%g,%.6f,%.6f,%.6f,%.8f\n" sol.Optimize.weight
        m.Analytic.power m.Analytic.avg_waiting_requests
        m.Analytic.avg_waiting_time m.Analytic.loss_probability)
    (Optimize.pareto sweep);
  (* N-policy curve. *)
  for n = 1 to Sys_model.queue_capacity sys do
    let m = Analytic.of_actions sys ~actions:(Policies.n_policy sys ~n) in
    Printf.printf "n_policy,%d,,%.6f,%.6f,%.6f,%.8f\n" n m.Analytic.power
      m.Analytic.avg_waiting_requests m.Analytic.avg_waiting_time
      m.Analytic.loss_probability
  done;
  (* Reference points. *)
  let named name actions =
    let m = Analytic.of_actions sys ~actions in
    Printf.printf "%s,,,%.6f,%.6f,%.6f,%.8f\n" name m.Analytic.power
      m.Analytic.avg_waiting_requests m.Analytic.avg_waiting_time
      m.Analytic.loss_probability
  in
  named "always_on" (Policies.always_on sys);
  named "greedy" (Policies.greedy sys)
