examples/pareto_sweep.ml: Analytic Dpm_core List Optimize Paper_instance Policies Printf Sys_model
