examples/wlan_bursty.ml: Controller Dpm_core Dpm_sim Format List Optimize Policy_export Power_sim Presets Service_provider Sys_model Trace Workload
