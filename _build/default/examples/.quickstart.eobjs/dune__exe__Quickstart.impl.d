examples/quickstart.ml: Analytic Dpm_core Format List Optimize Paper_instance Policy_export Service_provider Sys_model
