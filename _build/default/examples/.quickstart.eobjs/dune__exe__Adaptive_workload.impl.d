examples/adaptive_workload.ml: Array Controller Dpm_core Dpm_sim Float Format Hashtbl List Optimize Paper_instance Power_sim Queue Sys_model Workload
