examples/pareto_sweep.mli:
