examples/disk_drive.ml: Analytic Array Controller Dpm_core Dpm_sim Format List Optimize Power_sim Service_provider Sys_model Workload
