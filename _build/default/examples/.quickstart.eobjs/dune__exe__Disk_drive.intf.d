examples/disk_drive.mli:
