examples/wlan_bursty.mli:
