examples/quickstart.mli:
