(* A wireless NIC under bursty (Markov-modulated) traffic.

   Frames arrive as a two-phase MMPP: long quiet stretches at 2
   frames/s punctuated by bursts at 80 frames/s.  The CTMDP policy is
   optimized against the *average* rate (a Poisson approximation —
   the model's workload is a single-mode SR), and the example
   quantifies how much that approximation costs under real bursts by
   comparing against the same policy under plain Poisson traffic, plus a
   timeout heuristic under both.  A short event trace of the burst
   behavior is printed at the end. *)

open Dpm_core
open Dpm_sim

let quiet_rate = 2.0
let burst_rate = 80.0
let phase_switch = 0.02 (* phases last ~50 s on average *)
let avg_rate = 0.5 *. (quiet_rate +. burst_rate)

let mmpp () =
  Workload.mmpp ~rates:[| quiet_rate; burst_rate |]
    ~switch_rate:[| [| 0.0; phase_switch |]; [| phase_switch; 0.0 |] |]

let () =
  let sp = Presets.wlan_nic () in
  let sys = Sys_model.create ~sp ~queue_capacity:16 ~arrival_rate:avg_rate () in
  Format.printf "WLAN NIC under MMPP bursts (%g / %g frames/s, mean %g):@.%a@.@."
    quiet_rate burst_rate avg_rate Service_provider.pp sp;
  let sol = Optimize.solve ~weight:0.5 sys in
  Format.printf "policy optimized at the mean rate (w = 0.5):@.%s@."
    (Policy_export.table sys (Optimize.action_of sys sol));
  let run name workload controller =
    let r =
      Power_sim.run ~seed:7L ~sys ~workload ~controller
        ~stop:(Power_sim.Requests 200_000) ()
    in
    Format.printf "  %-26s %a@." name Power_sim.pp r;
    r
  in
  Format.printf "simulated (200k frames):@.";
  let bursty = run "ctmdp policy / MMPP" (mmpp ()) (Controller.of_solution sys sol) in
  let poisson =
    run "ctmdp policy / Poisson"
      (Workload.poisson ~rate:avg_rate)
      (Controller.of_solution sys sol)
  in
  let _ = run "timeout 0.1s / MMPP" (mmpp ()) (Controller.timeout sys ~delay:0.1) in
  let _ =
    run "timeout 0.1s / Poisson"
      (Workload.poisson ~rate:avg_rate)
      (Controller.timeout sys ~delay:0.1)
  in
  Format.printf
    "@.burstiness penalty for the Poisson-fitted policy: waiting %.3f -> %.3f \
     frames (x%.1f)@."
    poisson.Power_sim.avg_waiting_requests bursty.Power_sim.avg_waiting_requests
    (bursty.Power_sim.avg_waiting_requests
    /. poisson.Power_sim.avg_waiting_requests);
  (* A peek at the trace around burst onsets. *)
  let trace = Trace.create ~capacity:200 () in
  ignore
    (Power_sim.run ~seed:7L ~sys ~observer:(Trace.observer trace) ~workload:(mmpp ())
       ~controller:(Controller.of_solution sys sol)
       ~stop:(Power_sim.Requests 2_000) ());
  Format.printf "@.last %d trace events (see Trace.to_csv for the full log):@."
    (min 12 (Trace.length trace));
  List.iteri
    (fun i snap ->
      if i >= Trace.length trace - 12 then
        Format.printf "  t=%9.4f %-13s mode=%s queue=%d@."
          snap.Power_sim.snap_time snap.Power_sim.snap_event
          (Service_provider.name sp snap.Power_sim.snap_mode)
          snap.Power_sim.snap_queue)
    (Trace.snapshots trace)
