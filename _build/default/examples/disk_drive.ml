(* A four-mode disk drive (active / idle / standby / sleep), the
   classic DPM target device: two servicing speeds are modeled as the
   disk serving from cache (active) vs spun down buffers, and the two
   low-power modes trade wake-up latency against power.

   The example optimizes the policy for three latency budgets and
   shows how the chosen mode deepens as the budget relaxes. *)

open Dpm_core
open Dpm_sim

let disk () =
  Service_provider.create
    ~names:[| "active"; "idle"; "standby"; "sleep" |]
      (* Mean switch times (s): spinning down is fast, spinning up is
         slow and gets slower the deeper the mode. *)
    ~switch_time:
      [|
        [| 0.0; 0.05; 0.6; 1.0 |];
        [| 0.04; 0.0; 0.5; 0.9 |];
        [| 1.2; 1.0; 0.0; 0.3 |];
        [| 2.5; 2.2; 0.4; 0.0 |];
      |]
    ~service_rate:[| 8.0; 0.0; 0.0; 0.0 |] (* 125 ms per request *)
    ~power:[| 2.5; 1.0; 0.4; 0.05 |] (* watts *)
    ~switch_energy:
      [|
        [| 0.0; 0.05; 0.3; 0.6 |];
        [| 0.1; 0.0; 0.25; 0.5 |];
        [| 3.0; 2.6; 0.0; 0.2 |];
        [| 6.5; 6.0; 0.7; 0.0 |];
      |]

let () =
  let sp = disk () in
  let sys = Sys_model.create ~sp ~queue_capacity:8 ~arrival_rate:0.4 () in
  Format.printf "Disk drive model:@.%a@." Service_provider.pp sp;
  Format.printf "Requests: Poisson at %g/s; queue capacity %d; |X| = %d@.@."
    (Sys_model.arrival_rate sys) (Sys_model.queue_capacity sys)
    (Sys_model.num_states sys);
  List.iter
    (fun budget ->
      match Optimize.constrained sys ~max_waiting_requests:budget with
      | None ->
          Format.printf "latency budget %.2f waiting requests: infeasible@." budget
      | Some sol ->
          Format.printf
            "== budget <= %.2f waiting requests (weight w = %.3f) ==@." budget
            sol.Optimize.weight;
          Format.printf "   analytic: %a@." Analytic.pp sol.Optimize.metrics;
          (* Which mode does the policy park in when the system is
             empty?  Walk the empty-queue stable states. *)
          Array.iter
            (fun x ->
              match x with
              | Sys_model.Stable (s, 0) ->
                  Format.printf "   empty system, disk %s -> command %s@."
                    (Service_provider.name sp s)
                    (Service_provider.name sp (Optimize.action_of sys sol x))
              | Sys_model.Stable _ | Sys_model.Transfer _ -> ())
            (Sys_model.states sys);
          let r =
            Power_sim.run ~seed:5L ~sys
              ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate sys))
              ~controller:(Controller.of_solution sys sol)
              ~stop:(Power_sim.Requests 30_000) ()
          in
          Format.printf "   simulated: %a@.@." Power_sim.pp r)
    [ 0.2; 1.0; 4.0 ]
