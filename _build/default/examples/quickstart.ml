(* Quickstart: build the paper's three-mode server, optimize the
   power/delay trade-off at a few weights, and print the resulting
   policies with their analytic metrics. *)

open Dpm_core

let print_solution sys (s : Optimize.solution) =
  Format.printf "@.== weight w = %g (policy iteration: %d sweeps) ==@." s.weight
    s.iterations;
  Format.printf "   %a@." Analytic.pp s.metrics;
  Format.printf "   policy (rows: SP mode, '>' rows: transfer states):@.%s"
    (Policy_export.table sys (Optimize.action_of sys s))

let () =
  let sys = Paper_instance.system () in
  Format.printf "Paper instance: lambda=%g, mu=%g, Q=%d, |X|=%d states@."
    (Sys_model.arrival_rate sys) Paper_instance.service_rate
    (Sys_model.queue_capacity sys) (Sys_model.num_states sys);
  Format.printf "%a@." Service_provider.pp (Sys_model.sp sys);
  List.iter (fun w -> print_solution sys (Optimize.solve ~weight:w sys)) [ 0.5; 5.0; 50.0 ]
