(* Multicore scaling of the two embarrassingly-parallel workloads:
   replicated simulation and rate-sweep re-optimization.  Each
   workload runs at several domain counts; besides wall clock and
   throughput we check the results are bit-identical across counts —
   the Dpm_par determinism contract, measured rather than assumed.

   Gauges land in bench_metrics.json under bench.scaling.*:
     bench.scaling.<workload>.d<k>.seconds
     bench.scaling.<workload>.d<k>.throughput   (items/s)
     bench.scaling.<workload>.d<k>.speedup      (vs d=1)
     bench.scaling.<workload>.identical         (1 = bit-identical)

   On a single-core host the interesting number is the overhead: the
   d>1 rows then measure what the pool costs when it cannot help. *)

open Dpm_core
open Dpm_sim

let line = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

let time_it f =
  let start = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. start)

let domain_counts =
  (* 1, 2, 4, ... up to one step past the hardware, so the saturation
     knee is visible in the recorded curve. *)
  let rec grow d acc =
    if d >= 2 * Dpm_par.recommended_domains () then List.rev acc
    else grow (2 * d) (d :: acc)
  in
  grow 1 [] @ [ 2 * Dpm_par.recommended_domains () ]

let run_workload ~name ~items f =
  Printf.printf "%-14s %8s | %10s %14s %9s %10s\n" name "domains" "t (s)"
    "items/s" "speedup" "identical";
  let baseline = ref None in
  let reference = ref None in
  let all_identical = ref true in
  List.iter
    (fun d ->
      let v, t = time_it (fun () -> f d) in
      let t1 = match !baseline with None -> baseline := Some t; t | Some t1 -> t1 in
      let identical =
        match !reference with
        | None ->
            reference := Some v;
            true
        | Some r -> v = r
      in
      if not identical then all_identical := false;
      let throughput = float_of_int items /. t in
      let tag k = Printf.sprintf "bench.scaling.%s.d%d.%s" name d k in
      Dpm_obs.Probe.set (tag "seconds") t;
      Dpm_obs.Probe.set (tag "throughput") throughput;
      Dpm_obs.Probe.set (tag "speedup") (t1 /. t);
      Printf.printf "%-14s %8d | %10.3f %14.1f %8.2fx %10s\n" "" d t throughput
        (t1 /. t)
        (if identical then "yes" else "NO"))
    domain_counts;
  Dpm_obs.Probe.set
    (Printf.sprintf "bench.scaling.%s.identical" name)
    (if !all_identical then 1.0 else 0.0);
  if not !all_identical then
    Printf.printf "WARNING: %s results differ across domain counts\n" name

(* --- implicit operator vs materialized CSR ------------------------ *)

(* State-space scaling of the stationary solve: the same paper SP at
   growing queue capacities, solved through the materialized pipeline
   (generator_of_actions -> Generator.to_sparse -> CSR Gauss-Seidel)
   and through the lazy Kronecker operator (Sys_model.operator ->
   Operator.gauss_seidel_steady), both at the same tolerance.  Each
   path climbs a doubling capacity ladder until one solve exceeds the
   per-solve time budget; the headline series is how much deeper the
   implicit path gets on the same budget.

   Gauges land in bench_metrics.json under bench.scaling.kron.*:
     bench.scaling.kron.q<Q>.<path>.seconds
     bench.scaling.kron.q<Q>.<path>.iterations
     bench.scaling.kron.q<Q>.speedup          (sparse time / implicit time)
     bench.scaling.kron.q<Q>.nnz              (CSR nonzeros, materialized)
     bench.scaling.kron.q<Q>.stored_floats    (operator factor storage)
     bench.scaling.kron.max_q.<path>          (deepest Q within budget)
     bench.scaling.kron.capacity_speedup      (max_q implicit / sparse)
     bench.scaling.kron.agreement_norm_inf    (pi difference at base Q) *)

let budget_s = 1.0
let base_q = 250
let hard_cap_q = 1 lsl 21 (* runaway backstop, ~8.4M states *)

let sys_at q =
  Sys_model.create
    ~sp:(Paper_instance.service_provider ())
    ~queue_capacity:q ~arrival_rate:Paper_instance.arrival_rate ()

let solve_sparse sys =
  let g =
    Sys_model.generator_of_actions sys ~actions:(fun _ -> Paper_instance.active)
  in
  Dpm_linalg.Iterative.gauss_seidel_steady (Dpm_ctmc.Generator.to_sparse g)

let solve_implicit sys =
  Dpm_ctmc.Steady_state.implicit
    ~init:(Sys_model.stationary_hint sys ~action:Paper_instance.active)
    ~order:(Sys_model.sweep_order sys)
    (Sys_model.operator sys ~action:Paper_instance.active)

(* Climb the doubling ladder; returns (max_q, per-Q times).  A rung is
   recorded even when it blows the budget (it is the evidence), but
   the climb stops there. *)
let climb name solve =
  let rec go q acc =
    let sys = sys_at q in
    let r, t = time_it (fun () -> solve sys) in
    let times =
      (q, t, r.Dpm_linalg.Iterative.iterations, r.Dpm_linalg.Iterative.converged)
      :: acc
    in
    if t <= budget_s && 2 * q <= hard_cap_q then go (2 * q) times
    else (q, List.rev times)
  in
  let _, times = go base_q [] in
  let max_q =
    (* The deepest rung *within* budget; the over-budget probe rung
       does not count toward capacity. *)
    List.fold_left
      (fun best (q, t, _, converged) ->
        if t <= budget_s && converged then max best q else best)
      0 times
  in
  Dpm_obs.Probe.set (Printf.sprintf "bench.scaling.kron.max_q.%s" name)
    (float_of_int max_q);
  (max_q, times)

let kron () =
  header
    (Printf.sprintf
       "SCALING  implicit Kronecker operator vs materialized CSR\n\
        stationary solve of the paper SP under the uniform active \
        command,\n\
        doubling queue capacity from %d, %.1f s budget per solve" base_q
       budget_s);
  (* Cross-check once at the base capacity before timing anything. *)
  let sys0 = sys_at base_q in
  let p_sparse = (solve_sparse sys0).Dpm_linalg.Iterative.solution in
  let p_implicit = (solve_implicit sys0).Dpm_linalg.Iterative.solution in
  let agreement =
    Dpm_linalg.Vec.norm_inf (Dpm_linalg.Vec.sub p_sparse p_implicit)
  in
  Dpm_obs.Probe.set "bench.scaling.kron.agreement_norm_inf" agreement;
  Printf.printf "agreement at Q=%d: |pi_sparse - pi_implicit|_inf = %.3g\n\n"
    base_q agreement;
  let max_sparse, sparse_times = climb "sparse" solve_sparse in
  let max_implicit, implicit_times = climb "implicit" solve_implicit in
  Printf.printf "%-10s %8s | %12s %12s %7s %9s %12s %14s\n" "path" "Q" "states"
    "t (s)" "iters" "speedup" "csr nnz" "stored floats";
  let sparse_at q =
    List.find_map
      (fun (q', t, _, _) -> if q' = q then Some t else None)
      sparse_times
  in
  let report name times =
    List.iter
      (fun (q, t, iters, converged) ->
        let sys = sys_at q in
        let op = Sys_model.operator sys ~action:Paper_instance.active in
        let stored = Dpm_linalg.Operator.stored_floats op in
        let nnz = Dpm_linalg.Operator.materialized_nnz op in
        let tag k = Printf.sprintf "bench.scaling.kron.q%d.%s" q k in
        Dpm_obs.Probe.set (tag (name ^ ".seconds")) t;
        Dpm_obs.Probe.set (tag (name ^ ".iterations")) (float_of_int iters);
        Dpm_obs.Probe.set (tag "nnz") (float_of_int nnz);
        Dpm_obs.Probe.set (tag "stored_floats") (float_of_int stored);
        let speedup =
          if name = "implicit" then
            match sparse_at q with
            | Some ts when t > 0.0 ->
                let s = ts /. t in
                Dpm_obs.Probe.set (tag "speedup") s;
                Printf.sprintf "%8.2fx" s
            | _ -> Printf.sprintf "%9s" "-"
          else Printf.sprintf "%9s" "-"
        in
        Printf.printf "%-10s %8d | %12d %12.3f %7d %s %12d %14d%s\n" name q
          (Sys_model.num_states sys) t iters speedup nnz stored
          (if converged then "" else "  (no convergence)"))
      times
  in
  report "sparse" sparse_times;
  report "implicit" implicit_times;
  let capacity_speedup =
    if max_sparse > 0 then float_of_int max_implicit /. float_of_int max_sparse
    else 0.0
  in
  Dpm_obs.Probe.set "bench.scaling.kron.capacity_speedup" capacity_speedup;
  Printf.printf
    "\nmax Q within %.1f s: sparse %d, implicit %d  (capacity speedup %.1fx)\n"
    budget_s max_sparse max_implicit capacity_speedup

let all () =
  header
    (Printf.sprintf
       "SCALING  Dpm_par domains vs throughput (%d hardware core(s))\n\
        replicate: 20 simulation replications x 5,000 requests\n\
        rate_sweep: 16-point arrival-rate grid, one CTMDP solve per point"
       (Dpm_par.recommended_domains ()));
  let sys = Paper_instance.system () in
  let replications = 20 in
  run_workload ~name:"replicate" ~items:replications (fun d ->
      Power_sim.replicate ~n:replications ~seed:7L ~domains:d ~sys
        ~workload:(fun () ->
          Workload.poisson ~rate:(Sys_model.arrival_rate sys))
        ~controller:(fun () -> Controller.greedy sys)
        ~stop:(Power_sim.Requests 5_000) ());
  let rates =
    List.init 16 (fun k -> 1.0 /. (3.0 +. (float_of_int k *. (5.0 /. 15.0))))
  in
  let sol = Optimize.solve ~weight:1.0 sys in
  (* Cache capacity 0 for the timed region: with memoization on, every
     domain count after the first would be served from the cache and
     the scaling curve would measure nothing. *)
  run_workload ~name:"rate_sweep" ~items:(List.length rates) (fun d ->
      Dpm_cache.Solve_cache.with_capacity 0 (fun () ->
          List.map
            (fun (p : Sensitivity.point) ->
              (p.Sensitivity.rate, p.Sensitivity.objective, p.Sensitivity.regret))
            (Sensitivity.rate_sweep ~domains:d sys
               ~actions:sol.Optimize.actions ~weight:1.0 ~rates)))
