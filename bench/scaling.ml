(* Multicore scaling of the two embarrassingly-parallel workloads:
   replicated simulation and rate-sweep re-optimization.  Each
   workload runs at several domain counts; besides wall clock and
   throughput we check the results are bit-identical across counts —
   the Dpm_par determinism contract, measured rather than assumed.

   Gauges land in bench_metrics.json under bench.scaling.*:
     bench.scaling.<workload>.d<k>.seconds
     bench.scaling.<workload>.d<k>.throughput   (items/s)
     bench.scaling.<workload>.d<k>.speedup      (vs d=1)
     bench.scaling.<workload>.identical         (1 = bit-identical)

   On a single-core host the interesting number is the overhead: the
   d>1 rows then measure what the pool costs when it cannot help. *)

open Dpm_core
open Dpm_sim

let line = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

let time_it f =
  let start = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. start)

let domain_counts =
  (* 1, 2, 4, ... up to one step past the hardware, so the saturation
     knee is visible in the recorded curve. *)
  let rec grow d acc =
    if d >= 2 * Dpm_par.recommended_domains () then List.rev acc
    else grow (2 * d) (d :: acc)
  in
  grow 1 [] @ [ 2 * Dpm_par.recommended_domains () ]

let run_workload ~name ~items f =
  Printf.printf "%-14s %8s | %10s %14s %9s %10s\n" name "domains" "t (s)"
    "items/s" "speedup" "identical";
  let baseline = ref None in
  let reference = ref None in
  let all_identical = ref true in
  List.iter
    (fun d ->
      let v, t = time_it (fun () -> f d) in
      let t1 = match !baseline with None -> baseline := Some t; t | Some t1 -> t1 in
      let identical =
        match !reference with
        | None ->
            reference := Some v;
            true
        | Some r -> v = r
      in
      if not identical then all_identical := false;
      let throughput = float_of_int items /. t in
      let tag k = Printf.sprintf "bench.scaling.%s.d%d.%s" name d k in
      Dpm_obs.Probe.set (tag "seconds") t;
      Dpm_obs.Probe.set (tag "throughput") throughput;
      Dpm_obs.Probe.set (tag "speedup") (t1 /. t);
      Printf.printf "%-14s %8d | %10.3f %14.1f %8.2fx %10s\n" "" d t throughput
        (t1 /. t)
        (if identical then "yes" else "NO"))
    domain_counts;
  Dpm_obs.Probe.set
    (Printf.sprintf "bench.scaling.%s.identical" name)
    (if !all_identical then 1.0 else 0.0);
  if not !all_identical then
    Printf.printf "WARNING: %s results differ across domain counts\n" name

let all () =
  header
    (Printf.sprintf
       "SCALING  Dpm_par domains vs throughput (%d hardware core(s))\n\
        replicate: 20 simulation replications x 5,000 requests\n\
        rate_sweep: 16-point arrival-rate grid, one CTMDP solve per point"
       (Dpm_par.recommended_domains ()));
  let sys = Paper_instance.system () in
  let replications = 20 in
  run_workload ~name:"replicate" ~items:replications (fun d ->
      Power_sim.replicate ~n:replications ~seed:7L ~domains:d ~sys
        ~workload:(fun () ->
          Workload.poisson ~rate:(Sys_model.arrival_rate sys))
        ~controller:(fun () -> Controller.greedy sys)
        ~stop:(Power_sim.Requests 5_000) ());
  let rates =
    List.init 16 (fun k -> 1.0 /. (3.0 +. (float_of_int k *. (5.0 /. 15.0))))
  in
  let sol = Optimize.solve ~weight:1.0 sys in
  (* Cache capacity 0 for the timed region: with memoization on, every
     domain count after the first would be served from the cache and
     the scaling curve would measure nothing. *)
  run_workload ~name:"rate_sweep" ~items:(List.length rates) (fun d ->
      Dpm_cache.Solve_cache.with_capacity 0 (fun () ->
          List.map
            (fun (p : Sensitivity.point) ->
              (p.Sensitivity.rate, p.Sensitivity.objective, p.Sensitivity.regret))
            (Sensitivity.rate_sweep ~domains:d sys
               ~actions:sol.Optimize.actions ~weight:1.0 ~rates)))
