(* Ablations for the design decisions called out in DESIGN.md. *)

open Dpm_core
open Dpm_ctmc
open Dpm_linalg

let line = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

let time_it f =
  let start = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. start)

(* Grid rows are independent; compute them on the Dpm_par pool and
   print in order.  At the default domain count (1) this is exactly
   the old sequential loop, so the per-row timings stay exact;
   opting in with --domains/DPM_DOMAINS trades per-row timing
   fidelity (rows then share cores) for wall-clock throughput. *)
let grid_rows f xs = Dpm_par.parallel_map_list f xs

(* ------------------------------------------------------------------ *)
(* Steady-state solver comparison on the closed-loop paper chain at
   growing queue capacities: GTH vs LU vs sparse Gauss-Seidel. *)

let solvers () =
  header
    "ABL1  Steady-state solvers: classify+GTH (solve) vs LU vs Gauss-Seidel\n\
     (policy-induced chains have transient states, so raw GTH is not\n\
     applicable; 'solve' isolates the closed class first)";
  Printf.printf "%6s %6s | %10s %10s %10s | %12s %12s\n" "Q" "|X|"
    "t_solve(ms)" "t_lu(ms)" "t_gs(ms)" "solve-lu" "gs residual";
  grid_rows
    (fun q ->
      let sys =
        Sys_model.create
          ~sp:(Paper_instance.service_provider ())
          ~queue_capacity:q ~arrival_rate:(1.0 /. 6.0) ()
      in
      let g = Sys_model.generator_of_actions sys ~actions:(Policies.n_policy sys ~n:(max 1 (q / 2))) in
      let p_solve, t_solve = time_it (fun () -> Steady_state.solve g) in
      let p_lu, t_lu = time_it (fun () -> Steady_state.lu_solve g) in
      let r_gs, t_gs = time_it (fun () -> Steady_state.iterative ~tol:1e-12 g) in
      (q, Sys_model.num_states sys, t_solve, t_lu, t_gs,
       Vec.norm_inf (Vec.sub p_solve p_lu), r_gs.Iterative.residual))
    [ 5; 10; 20; 40; 80 ]
  |> List.iter (fun (q, n, t_solve, t_lu, t_gs, diff, res) ->
         Printf.printf "%6d %6d | %10.2f %10.2f %10.2f | %12.2e %12.2e\n" q n
           (1e3 *. t_solve) (1e3 *. t_lu) (1e3 *. t_gs) diff res)

(* ------------------------------------------------------------------ *)
(* Tensor-formula builder vs the direct enumerative builder. *)

let builders () =
  header "ABL2  SYS generator: Section III tensor formula vs direct builder";
  Printf.printf "%6s %8s | %12s %12s | %12s\n" "Q" "action" "t_direct(ms)"
    "t_tensor(ms)" "max |diff|";
  List.iter
    (fun q ->
      let sys =
        Sys_model.create
          ~sp:(Paper_instance.service_provider ())
          ~queue_capacity:q ~arrival_rate:(1.0 /. 6.0) ()
      in
      List.iter
        (fun action ->
          let direct, t_d = time_it (fun () -> Sys_model.uniform_generator sys ~action) in
          let tensor, t_t = time_it (fun () -> Sys_model.tensor_generator sys ~action) in
          Printf.printf "%6d %8d | %12.3f %12.3f | %12.2e\n" q action
            (1e3 *. t_d) (1e3 *. t_t)
            (Matrix.max_abs (Matrix.sub direct tensor)))
        [ 0; 2 ])
    [ 5; 20; 50 ]

(* ------------------------------------------------------------------ *)
(* Policy iteration vs relative value iteration. *)

let pi_vs_vi () =
  header
    "ABL3  Policy iteration vs relative value iteration\n\
     (the big-M self-switch rate makes the uniformized chain stiff:\n\
     per-sweep contraction is O(rates/M), so VI stalls at M = 1e6 while\n\
     PI is unaffected -- the finding that motivates the paper's choice\n\
     of policy iteration.  At M = 1e3 VI converges and agrees.)";
  Printf.printf "%8s %10s | %8s %12s | %9s %12s | %8s\n" "w" "M" "PI iters"
    "PI gain" "VI iters" "VI gain-mid" "agree";
  List.iter
    (fun m_rate ->
      List.iter
        (fun w ->
          let sys =
            Sys_model.create ~self_switch_rate:m_rate
              ~sp:(Paper_instance.service_provider ())
              ~queue_capacity:5 ~arrival_rate:(1.0 /. 6.0) ()
          in
          let m = Sys_model.to_ctmdp sys ~weight:w in
          let pi = Dpm_ctmdp.Policy_iteration.solve m in
          let vi = Dpm_ctmdp.Value_iteration.solve ~tol:1e-10 ~max_iter:200_000 m in
          let mid =
            0.5
            *. (vi.Dpm_ctmdp.Value_iteration.gain_lower
               +. vi.Dpm_ctmdp.Value_iteration.gain_upper)
          in
          Printf.printf "%8g %10g | %8d %12.6f | %9d %12.6f | %8s\n" w m_rate
            pi.Dpm_ctmdp.Policy_iteration.iterations
            pi.Dpm_ctmdp.Policy_iteration.gain
            vi.Dpm_ctmdp.Value_iteration.iterations mid
            (if
               vi.Dpm_ctmdp.Value_iteration.converged
               && Float.abs (mid -. pi.Dpm_ctmdp.Policy_iteration.gain) < 1e-4
             then "yes"
             else if not vi.Dpm_ctmdp.Value_iteration.converged then "VI-stall"
             else "NO"))
        [ 0.5; 5.0 ])
    [ 1e3; 1e6 ]

(* ------------------------------------------------------------------ *)
(* Sensitivity to the big-M self-switch rate (DESIGN.md decision 1). *)

let self_switch () =
  header "ABL4  Big-M self-switch rate sensitivity (greedy policy metrics)";
  Printf.printf "%12s | %12s %14s\n" "M (1/s)" "power (W)" "waiting (req)";
  List.iter
    (fun m_rate ->
      let sys =
        Sys_model.create ~self_switch_rate:m_rate
          ~sp:(Paper_instance.service_provider ())
          ~queue_capacity:5 ~arrival_rate:(1.0 /. 6.0) ()
      in
      let m = Analytic.of_actions sys ~actions:(Policies.greedy sys) in
      Printf.printf "%12g | %12.6f %14.6f\n" m_rate m.Analytic.power
        m.Analytic.avg_waiting_requests)
    [ 1e2; 1e3; 1e4; 1e6; 1e8 ]

(* ------------------------------------------------------------------ *)
(* Queue-capacity scaling of the full optimization pipeline. *)

let queue_scaling () =
  header "ABL5  Optimization cost vs queue capacity";
  Printf.printf "%6s %6s | %10s %8s | %12s\n" "Q" "|X|" "t_solve(ms)" "iters"
    "gain";
  grid_rows
    (fun q ->
      let sys =
        Sys_model.create
          ~sp:(Paper_instance.service_provider ())
          ~queue_capacity:q ~arrival_rate:(1.0 /. 6.0) ()
      in
      (* Capacity 0: a bench section earlier in the run may already
         have solved the small instances, and a cache hit would time
         the lookup instead of the solve. *)
      let sol, t =
        Dpm_cache.Solve_cache.with_capacity 0 (fun () ->
            time_it (fun () -> Optimize.solve ~weight:1.0 sys))
      in
      (q, Sys_model.num_states sys, t, sol.Optimize.iterations, sol.Optimize.gain))
    [ 5; 10; 20; 40; 80; 120 ]
  |> List.iter (fun (q, n, t, iters, gain) ->
         Printf.printf "%6d %6d | %10.1f %8d | %12.6f\n" q n (1e3 *. t) iters gain)

(* ------------------------------------------------------------------ *)
(* The paper, Section I: "A policy iteration algorithm is used to
   solve the policy optimization problem.  The new algorithm tends to
   be more efficient than the linear programming method."  Measure
   exactly that: policy iteration vs the occupation-measure LP
   (revised simplex) on growing instances of the paper's model. *)

let pi_vs_lp () =
  header
    "ABL6  Policy iteration vs linear programming (the paper's efficiency claim)";
  Printf.printf "%6s %6s %8s | %10s %10s %8s | %12s\n" "Q" "|X|" "LP vars"
    "t_PI(ms)" "t_LP(ms)" "speedup" "gain diff";
  grid_rows
    (fun q ->
      let sys =
        Sys_model.create
          ~sp:(Paper_instance.service_provider ())
          ~queue_capacity:q ~arrival_rate:(1.0 /. 6.0) ()
      in
      let m = Sys_model.to_ctmdp sys ~weight:1.0 in
      let pi, t_pi = time_it (fun () -> Dpm_ctmdp.Policy_iteration.solve m) in
      let lp, t_lp = time_it (fun () -> Dpm_ctmdp.Lp_solver.solve m) in
      (q, Sys_model.num_states sys, Dpm_ctmdp.Model.total_choices m, t_pi, t_lp,
       Float.abs
         (pi.Dpm_ctmdp.Policy_iteration.gain -. lp.Dpm_ctmdp.Lp_solver.gain)))
    [ 3; 5; 8; 12; 16; 20 ]
  |> List.iter (fun (q, n, vars, t_pi, t_lp, diff) ->
         Printf.printf "%6d %6d %8d | %10.2f %10.2f %7.1fx | %12.2e\n" q n vars
           (1e3 *. t_pi) (1e3 *. t_lp) (t_lp /. t_pi) diff)

let all () =
  solvers ();
  builders ();
  pi_vs_vi ();
  self_switch ();
  queue_scaling ();
  pi_vs_lp ()
