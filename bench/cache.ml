(* Cold-vs-warm benchmark of the Dpm_cache layer on the paper
   instance: (1) the warm-start wavefront's iteration savings on an
   11-point weight sweep, with capacity 0 so memoization cannot mask
   the warm-start effect, and (2) the memoized repeat of the same
   sweep against a bounded cache, which must be (almost) all hits.

   Gauges land in bench_metrics.json under bench.cache.*:
     bench.cache.sweep.{cold,warm}.pi_iterations
     bench.cache.sweep.{cold,warm}.seconds
     bench.cache.sweep.iteration_reduction      (fraction, 0..1)
     bench.cache.sweep.identical                (1 = same policies)
     bench.cache.sweep.max_gain_delta
     bench.cache.{hits,misses,hit_ratio,repeat_speedup} *)

open Dpm_core

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

let time_it f =
  let start = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. start)

(* An 11-point geometric ladder over the same 0.1..500 span as
   Optimize.default_weights. *)
let weights =
  List.init 11 (fun k ->
      0.1 *. ((500.0 /. 0.1) ** (float_of_int k /. 10.0)))

let total_iterations sols =
  List.fold_left
    (fun acc (s : Optimize.solution) -> acc + s.Optimize.iterations)
    0 sols

let all () =
  header
    "CACHE  warm-started vs cold weight sweep (11-point ladder), then a\n\
     memoized repeat sweep against a 64-entry cache";
  let sys = Paper_instance.system () in
  let cold, t_cold =
    Dpm_cache.Solve_cache.with_capacity 0 (fun () ->
        time_it (fun () -> Optimize.sweep ~warm:false sys ~weights))
  in
  let warm, t_warm =
    Dpm_cache.Solve_cache.with_capacity 0 (fun () ->
        time_it (fun () -> Optimize.sweep sys ~weights))
  in
  let it_cold = total_iterations cold and it_warm = total_iterations warm in
  let reduction = 1.0 -. (float_of_int it_warm /. float_of_int it_cold) in
  let max_gain_delta =
    List.fold_left2
      (fun acc (c : Optimize.solution) (w : Optimize.solution) ->
        Float.max acc (Float.abs (c.Optimize.gain -. w.Optimize.gain)))
      0.0 cold warm
  in
  let identical =
    List.for_all2
      (fun (c : Optimize.solution) (w : Optimize.solution) ->
        c.Optimize.actions = w.Optimize.actions)
      cold warm
  in
  Printf.printf "%-28s %10s %10s\n" "" "cold" "warm";
  Printf.printf "%-28s %10d %10d\n" "total PI iterations" it_cold it_warm;
  Printf.printf "%-28s %10.4f %10.4f\n" "wall time (s)" t_cold t_warm;
  Printf.printf
    "iteration reduction %.1f%%; policies identical: %s; max |gain delta| = \
     %.2e\n"
    (100.0 *. reduction)
    (if identical then "yes" else "NO")
    max_gain_delta;
  Dpm_obs.Probe.set "bench.cache.sweep.cold.pi_iterations"
    (float_of_int it_cold);
  Dpm_obs.Probe.set "bench.cache.sweep.warm.pi_iterations"
    (float_of_int it_warm);
  Dpm_obs.Probe.set "bench.cache.sweep.cold.seconds" t_cold;
  Dpm_obs.Probe.set "bench.cache.sweep.warm.seconds" t_warm;
  Dpm_obs.Probe.set "bench.cache.sweep.iteration_reduction" reduction;
  Dpm_obs.Probe.set "bench.cache.sweep.identical"
    (if identical then 1.0 else 0.0);
  Dpm_obs.Probe.set "bench.cache.sweep.max_gain_delta" max_gain_delta;
  Dpm_cache.Solve_cache.with_capacity 64 (fun () ->
      let _, t_first = time_it (fun () -> Optimize.sweep sys ~weights) in
      let _, t_second = time_it (fun () -> Optimize.sweep sys ~weights) in
      let s = Dpm_cache.Solve_cache.stats () in
      let ratio = Dpm_cache.Solve_cache.hit_ratio () in
      Printf.printf
        "memoized repeat sweep: %.4fs then %.4fs  (hits=%d misses=%d hit \
         ratio %.2f)\n"
        t_first t_second s.Dpm_cache.Lru.hits s.Dpm_cache.Lru.misses ratio;
      Dpm_obs.Probe.set "bench.cache.hits" (float_of_int s.Dpm_cache.Lru.hits);
      Dpm_obs.Probe.set "bench.cache.misses"
        (float_of_int s.Dpm_cache.Lru.misses);
      Dpm_obs.Probe.set "bench.cache.hit_ratio" ratio;
      Dpm_obs.Probe.set "bench.cache.repeat_speedup"
        (t_first /. Float.max 1e-9 t_second))
