(* Scenario-library benchmark: the three workload families of
   lib/scenario solved end to end through the shared
   robust/cache/provenance stack, with the cross-checks that make the
   numbers trustworthy run as part of the gate.

   Three sweeps:
     - phased: the paper SP with its service time refit at fixed mean
       over an SCV ladder (Erlang through hyperexponential), weight 1;
     - polling: a 2-queue and a 3-queue polling system with
       switch-over times;
     - batching: the paper SYS with batch sizes 1..6 under a
       sublinearly scaling batch completion rate.

   Every solve is cross-checked against the GTH stationary gain of its
   own closed loop (a numerical path disjoint from policy iteration),
   and the two degenerate corners are pinned: Erlang-1 phased and
   batch-1 batching must be pure cache hits on the base paper system's
   entry, and the batch-1 gain must equal the golden weight-1 pin.

   Gauges land in bench_metrics.json under bench.scenario.*:
     bench.scenario.solve_wall_s     (all cold solves, lower better)
     bench.scenario.states_per_sec   (sum of state counts / wall, higher better)
     bench.scenario.cross_check_gap  (max relative PI-vs-GTH gap; informational)
     bench.scenario.phased_gain_scv4 (informational)
     bench.scenario.polling_gain_k3  (informational)
     bench.scenario.batching_gain_b6 (informational)
     bench.scenario.dedup_hits       (informational; gate = 2)
     bench.scenario.ok               (1 = all gates held) *)

open Dpm_core
module Phase_type = Dpm_scenario.Phase_type
module Phased = Dpm_scenario.Phased
module Polling = Dpm_scenario.Polling
module Batching = Dpm_scenario.Batching
module Solve = Dpm_scenario.Solve

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* test_golden.ml's weight-1 pin for the paper instance; batch-1 under
   the device rate is the same decision process bit for bit, so its
   gain must reproduce this to solver tolerance. *)
let golden_gain_w1 = 11.951281331062688
let rel_gap a b = Float.abs (a -. b) /. Float.max 1.0 (Float.abs b)

let solve_checked label model =
  match Solve.solve model with
  | Error e ->
      failwith
        (Printf.sprintf "bench scenario %s: %s" label
           (Dpm_robust.Error.to_string e))
  | Ok s ->
      let gap = rel_gap (Solve.stationary_gain model ~actions:s.Solve.actions) s.Solve.gain in
      (s, gap)

let phased_ladder () =
  Printf.printf "phased: paper SP, service refit at mean %.2f (scv ladder)\n"
    (1.0 /. Paper_instance.service_rate);
  Printf.printf "  %-6s %-22s %7s %6s %16s\n" "scv" "distribution" "states"
    "iters" "gain";
  List.fold_left
    (fun (states, gap_acc, _last) scv ->
      let service =
        Phase_type.fit ~mean:(1.0 /. Paper_instance.service_rate) ~scv
      in
      let ph =
        Phased.create
          ~sp:(Paper_instance.service_provider ())
          ~queue_capacity:Paper_instance.queue_capacity
          ~arrival_rate:Paper_instance.arrival_rate ~service ()
      in
      let m = Phased.to_ctmdp ph ~weight:1.0 in
      let s, gap = solve_checked (Printf.sprintf "phased scv=%g" scv) m in
      Printf.printf "  %-6g %-22s %7d %6d %16.9f\n" scv
        (Phase_type.to_spec service)
        (Phased.num_states ph) s.Solve.iterations s.Solve.gain;
      (states + Phased.num_states ph, Float.max gap_acc gap, s.Solve.gain))
    (0, 0.0, nan)
    [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let polling_queue ~arrival_rate ~capacity ~weight =
  Polling.queue ~weight ~arrival_rate ~capacity
    ~service:(Phase_type.exp_ 1.0)
    ~switch_over:(Phase_type.exp_ 5.0)
    ()

let polling_pair () =
  Printf.printf "\npolling: K queues, exp switch-over, loss penalty 0.5\n";
  Printf.printf "  %-4s %7s %6s %16s  %s\n" "K" "states" "iters" "gain"
    "policy";
  List.fold_left
    (fun (states, gap_acc, _last) specs ->
      let p = Polling.create ~loss_penalty:0.5 specs in
      let m = Polling.to_ctmdp p in
      let k = Polling.num_queues p in
      let s, gap = solve_checked (Printf.sprintf "polling K=%d" k) m in
      let count pred = Array.fold_left (fun n a -> if pred a then n + 1 else n) 0 s.Solve.actions in
      Printf.printf "  %-4d %7d %6d %16.9f  serve %d | goto %d | sleep %d | stay %d\n"
        k (Polling.num_states p) s.Solve.iterations s.Solve.gain
        (count (fun a -> a = Polling.action_serve p))
        (count (fun a -> a >= 1 && a <= k))
        (count (fun a -> a = Polling.action_sleep p))
        (count (fun a -> a = Polling.action_stay));
      (states + Polling.num_states p, Float.max gap_acc gap, s.Solve.gain))
    (0, 0.0, nan)
    [
      [
        polling_queue ~arrival_rate:0.25 ~capacity:3 ~weight:1.0;
        polling_queue ~arrival_rate:0.4 ~capacity:3 ~weight:2.0;
      ];
      [
        polling_queue ~arrival_rate:0.2 ~capacity:2 ~weight:1.0;
        polling_queue ~arrival_rate:0.3 ~capacity:2 ~weight:1.5;
        polling_queue ~arrival_rate:0.4 ~capacity:2 ~weight:2.0;
      ];
    ]

let batching_ladder () =
  Printf.printf "\nbatching: paper SYS, rate(b) = mu * b^0.7, energy 0.2/batch\n";
  Printf.printf "  %-4s %6s %16s %14s\n" "B" "iters" "gain" "largest batch";
  let sys = Paper_instance.system () in
  List.fold_left
    (fun (states, gap_acc, _last) max_batch ->
      let b =
        Batching.create ~sys ~max_batch
          ~service_rate:(fun k ->
            Paper_instance.service_rate *. (float_of_int k ** 0.7))
          ~batch_energy:(fun _ -> 0.2)
          ()
      in
      let m = Batching.to_ctmdp b ~weight:1.0 in
      let s, gap = solve_checked (Printf.sprintf "batching B=%d" max_batch) m in
      let largest =
        Array.fold_left
          (fun acc a -> max acc (Batching.batch_of_action b a))
          1 s.Solve.actions
      in
      Printf.printf "  %-4d %6d %16.9f %14d\n" max_batch s.Solve.iterations
        s.Solve.gain largest;
      ( states + Dpm_ctmdp.Model.num_states m,
        Float.max gap_acc gap,
        s.Solve.gain ))
    (0, 0.0, nan) [ 1; 2; 4; 6 ]

(* The exact degenerate encoding — batch cap 1, the device rate, no
   per-batch energy — is the paper decision process bit for bit, so
   its cold gain must reproduce test_golden's weight-1 pin. *)
let pinned_batch1_gain () =
  let b =
    Batching.create
      ~sys:(Paper_instance.system ())
      ~max_batch:1
      ~service_rate:(fun _ -> Paper_instance.service_rate)
      ()
  in
  let s, _ = solve_checked "batching pin" (Batching.to_ctmdp b ~weight:1.0) in
  s.Solve.gain

(* The structural-dedup corner: after warming the cache with the base
   paper solve, the two degenerate scenario encodings must land on the
   same fingerprint and come back as cache hits. *)
let dedup_hits () =
  Dpm_cache.Solve_cache.with_capacity 8 @@ fun () ->
  let sys = Paper_instance.system () in
  let _base = Optimize.solve ~weight:1.0 sys in
  let hit model =
    match Solve.solve model with
    | Ok s
      when s.Solve.provenance.Dpm_trace.Provenance.origin
           = Dpm_trace.Provenance.Cache_hit ->
        1
    | _ -> 0
  in
  let ph =
    Phased.create
      ~sp:(Paper_instance.service_provider ())
      ~queue_capacity:Paper_instance.queue_capacity
      ~arrival_rate:Paper_instance.arrival_rate
      ~service:(Phase_type.exp_ Paper_instance.service_rate)
      ()
  in
  let b =
    Batching.create ~sys ~max_batch:1
      ~service_rate:(fun _ -> Paper_instance.service_rate)
      ()
  in
  hit (Phased.to_ctmdp ph ~weight:1.0) + hit (Batching.to_ctmdp b ~weight:1.0)

let all () =
  header
    "SCENARIOS  phase-type / polling / batching families through the\n\
     shared solver stack, GTH cross-checked, degenerate corners pinned";
  (* Cold solves: the wall clock measures the solver, not the cache. *)
  let t0 = Unix.gettimeofday () in
  let ph_states, ph_gap, ph_gain_scv4 =
    Dpm_cache.Solve_cache.with_capacity 0 phased_ladder
  in
  let po_states, po_gap, po_gain_k3 =
    Dpm_cache.Solve_cache.with_capacity 0 polling_pair
  in
  let ba_states, ba_gap, ba_gain_b6 =
    Dpm_cache.Solve_cache.with_capacity 0 batching_ladder
  in
  let b1_gain = Dpm_cache.Solve_cache.with_capacity 0 pinned_batch1_gain in
  let solve_wall = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let total_states = ph_states + po_states + ba_states in
  let states_per_sec = float_of_int total_states /. solve_wall in
  let cross_gap = Float.max ph_gap (Float.max po_gap ba_gap) in
  let hits = dedup_hits () in
  let pin_gap = rel_gap b1_gain golden_gain_w1 in
  let ok = cross_gap <= 1e-6 && pin_gap <= 1e-9 && hits = 2 in
  Printf.printf
    "\nwall: %.2f s for %d model-states (%.0f states/s)\n\
     cross-check: max |PI - GTH| relative gap %.3e (gate <= 1e-6)\n\
     degenerate corners: batch-1 vs golden pin gap %.3e, dedup hits %d/2 -> %s\n"
    solve_wall total_states states_per_sec cross_gap pin_gap hits
    (if ok then "OK" else "FAIL");
  Dpm_obs.Probe.set "bench.scenario.solve_wall_s" solve_wall;
  Dpm_obs.Probe.set "bench.scenario.states_per_sec" states_per_sec;
  Dpm_obs.Probe.set "bench.scenario.cross_check_gap" cross_gap;
  Dpm_obs.Probe.set "bench.scenario.phased_gain_scv4" ph_gain_scv4;
  Dpm_obs.Probe.set "bench.scenario.polling_gain_k3" po_gain_k3;
  Dpm_obs.Probe.set "bench.scenario.batching_gain_b6" ba_gain_b6;
  Dpm_obs.Probe.set "bench.scenario.dedup_hits" (float_of_int hits);
  Dpm_obs.Probe.set "bench.scenario.ok" (if ok then 1.0 else 0.0)
