(* Reproductions of the paper's evaluation artifacts (Section V).
   Each function prints one table/figure's data series; EXPERIMENTS.md
   records the paper-vs-measured comparison. *)

open Dpm_core
open Dpm_sim

let requests = Paper_instance.num_requests

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let simulate ?(seed = 2026L) sys controller =
  Power_sim.run ~seed ~sys
    ~workload:(Workload.poisson ~rate:(Sys_model.arrival_rate sys))
    ~controller ~stop:(Power_sim.Requests requests) ()

(* ------------------------------------------------------------------ *)
(* Figure 4: power vs. average number of waiting requests for the
   CTMDP-optimal policies (weight sweep) against the N-policies,
   N = 1..5.  Both series are *simulated* values, as in the paper. *)

let fig4_weights =
  [ 0.02; 0.05; 0.1; 0.2; 0.35; 0.5; 0.75; 1.0; 1.5; 2.0; 3.0; 5.0; 10.0; 170.0; 400.0 ]

let fig4 () =
  header
    "FIG4  Power/delay trade-off: CTMDP-optimal policies vs N-policies\n\
     (simulated, 50,000 requests; paper Figure 4)";
  let sys = Paper_instance.system () in
  Printf.printf "%-22s %12s %12s %14s\n" "policy" "power (W)"
    "waiting(req)" "wait time (s)";
  (* Solve all weights on the pool, dedup identical policies in weight
     order (deterministic at any domain count), then simulate the
     distinct ones — again in parallel — and print in order. *)
  let sols =
    Dpm_par.parallel_map_list (fun w -> (w, Optimize.solve ~weight:w sys))
      fig4_weights
  in
  let seen = Hashtbl.create 16 in
  let distinct =
    List.filter
      (fun (_, sol) ->
        if Hashtbl.mem seen sol.Optimize.actions then false
        else begin
          Hashtbl.replace seen sol.Optimize.actions ();
          true
        end)
      sols
  in
  let opt_rows =
    Dpm_par.parallel_map_list
      (fun (w, sol) ->
        (Printf.sprintf "optimal w=%g" w,
         simulate sys (Controller.of_solution sys sol)))
      distinct
  in
  let n_rows =
    Dpm_par.parallel_map_list
      (fun n ->
        (Printf.sprintf "N-policy N=%d" n,
         simulate sys (Controller.n_policy sys ~n)))
      [ 1; 2; 3; 4; 5 ]
  in
  let print_row (name, r) =
    Printf.printf "%-22s %12.3f %12.4f %14.3f\n" name r.Power_sim.avg_power
      r.Power_sim.avg_waiting_requests r.Power_sim.avg_waiting_time
  in
  List.iter print_row opt_rows;
  Printf.printf "%s\n" (String.make 62 '.');
  List.iter print_row n_rows

(* ------------------------------------------------------------------ *)
(* The paper's side claim under Figure 4: "the functional value and
   the simulated value are almost the same". *)

let modelcheck () =
  header
    "MODELCHECK  Analytic (functional) vs simulated metrics per policy\n\
     (paper Section V, first experiment; 5 replications x 20k requests,\n\
     'ok' = the analytic value falls within the 95% confidence interval)";
  let sys = Paper_instance.system () in
  Printf.printf "%-18s | %10s %18s %3s | %9s %16s %3s\n" "policy" "P_model"
    "P_sim (95% CI)" "" "L_model" "L_sim (95% CI)" "";
  let row name actions =
    let a = Analytic.of_actions sys ~actions in
    let rs =
      Power_sim.replicate
        ~seeds:[ 11L; 12L; 13L; 14L; 15L ]
        ~sys
        ~workload:(fun () -> Workload.poisson ~rate:(Sys_model.arrival_rate sys))
        ~controller:(fun () -> Controller.of_policy sys actions)
        ~stop:(Power_sim.Requests 20_000) ()
    in
    (name, a, Summary.of_results rs)
  in
  let print_row (name, (a : Analytic.metrics), s) =
    let near e x =
      (* within the CI, or a hair outside (the boundary artifact) *)
      Float.abs (x -. e.Summary.mean)
      <= (2.0 *. e.Summary.ci95_half_width) +. 1e-6
    in
    Printf.printf "%-18s | %10.4f %18s %3s | %9.4f %16s %3s\n" name
      a.Analytic.power
      (Format.asprintf "%a" Summary.pp_estimate s.Summary.power)
      (if near s.Summary.power a.Analytic.power then "ok" else "OFF")
      a.Analytic.avg_waiting_requests
      (Format.asprintf "%a" Summary.pp_estimate s.Summary.waiting_requests)
      (if near s.Summary.waiting_requests a.Analytic.avg_waiting_requests then
         "ok"
       else "OFF")
  in
  (* Each row is a solve plus a replicated simulation — independent
     work items, fanned out on the pool and printed in order. *)
  let rows =
    Dpm_par.parallel_map_list
      (fun job -> job ())
      ([
         (fun () -> row "greedy" (Policies.greedy sys));
         (fun () -> row "n-policy N=3" (Policies.n_policy sys ~n:3));
       ]
      @ List.map
          (fun w () ->
            let sol = Optimize.solve ~weight:w sys in
            row (Printf.sprintf "optimal w=%g" w) (fun x ->
                sol.Optimize.actions.(Sys_model.index sys x)))
          [ 0.1; 0.5; 1.0; 5.0 ])
  in
  (match rows with
  | greedy :: npol :: opt_rows ->
      List.iter print_row opt_rows;
      print_row greedy;
      print_row npol
  | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Table 1: Little's-law approximation quality.  The performance
   constraint is throughput preservation: average waiting time at
   most the mean inter-arrival time, i.e. lambda * W <= 1 waiting
   request.  For each input rate we optimize under that constraint,
   simulate, and compare approx (= lambda * W_sim) against the actual
   time-averaged number of waiting requests. *)

let table1 () =
  header
    "TAB1  Approximated vs actual average number of waiting requests\n\
     (paper Table 1; constraint: avg waiting time <= inter-arrival time)";
  Printf.printf "%-18s" "Input rate (1/s)";
  let rates = Paper_instance.sweep_rates in
  List.iter (fun r -> Printf.printf " %8s" (Printf.sprintf "1/%.0f" (1.0 /. r))) rates;
  Printf.printf "\n";
  (* One constrained optimization + simulation per input rate — the
     grid runs on the pool, rows come back in rate order. *)
  let rows = Dpm_par.parallel_map_list (fun rate ->
      let sys = Paper_instance.system_at ~arrival_rate:rate in
      match Optimize.constrained sys ~max_waiting_requests:1.0 with
      | None -> (rate, Float.nan, Float.nan, Float.nan, Float.nan)
      | Some sol ->
          let r = simulate sys (Controller.of_solution sys sol) in
          let w_sim = r.Power_sim.avg_waiting_time in
          let approx = rate *. w_sim in
          let actual = r.Power_sim.avg_waiting_requests in
          (rate, w_sim, approx, actual, (approx -. actual) /. actual *. 100.0))
      rates
  in
  let print_row label f fmt =
    Printf.printf "%-18s" label;
    List.iter (fun row -> Printf.printf fmt (f row)) rows;
    Printf.printf "\n"
  in
  print_row "Avg waiting (s)" (fun (_, w, _, _, _) -> w) " %8.3f";
  print_row "Approx #waiting" (fun (_, _, a, _, _) -> a) " %8.3f";
  print_row "Actual #waiting" (fun (_, _, _, a, _) -> a) " %8.3f";
  print_row "Error (%)" (fun (_, _, _, _, e) -> e) " %+8.1f"

(* ------------------------------------------------------------------ *)
(* Figure 5: across input rates 1/8..1/3, our constrained-optimal
   policy against the greedy policy and three time-out policies
   (n = 1 s, n = mean inter-arrival time T, n = T/2).  Two panels in
   the paper: power and average waiting time. *)

let fig5 () =
  header
    "FIG5  Power and waiting time vs input rate: ours vs heuristics\n\
     (paper Figure 5; timeouts n=1s, n=T, n=T/2)";
  Printf.printf "%-10s | %-10s | %10s %14s %9s\n" "rate" "policy" "power (W)"
    "wait time (s)" "loss %";
  (* Each rate is an independent block (one constrained solve plus
     five simulations); blocks run on the pool, printed in rate order. *)
  let blocks =
    Dpm_par.parallel_map_list
      (fun rate ->
        let sys = Paper_instance.system_at ~arrival_rate:rate in
        let period = 1.0 /. rate in
        let ours =
          match Optimize.constrained sys ~max_waiting_requests:1.0 with
          | Some sol -> Controller.of_solution sys sol
          | None -> Controller.always_on sys
        in
        let entries =
          [
            ("ours", ours);
            ("greedy", Controller.greedy sys);
            ("t-out 1s", Controller.timeout sys ~delay:1.0);
            ("t-out T", Controller.timeout sys ~delay:period);
            ("t-out T/2", Controller.timeout sys ~delay:(0.5 *. period));
          ]
        in
        (period, List.map (fun (name, ctl) -> (name, simulate sys ctl)) entries))
      Paper_instance.sweep_rates
  in
  List.iter
    (fun (period, rows) ->
      List.iter
        (fun (name, r) ->
          Printf.printf "%-10s | %-10s | %10.3f %14.3f %9.2f\n"
            (Printf.sprintf "1/%.0f" period)
            name r.Power_sim.avg_power r.Power_sim.avg_waiting_time
            (100.0 *. r.Power_sim.loss_probability))
        rows;
      Printf.printf "%s\n" (String.make 62 '.'))
    blocks

(* ------------------------------------------------------------------ *)
(* Section V claim: for a 2-mode server the N-policy achieves the
   optimal power/delay trade-off among stationary policies; with more
   modes it does not.  We check the 2-mode case by showing each
   N-policy's (power, delay) point is matched (not beaten) by the
   CTMDP optimum under the weight that makes it optimal, and exhibit
   the 3-mode counterexample from Figure 4. *)

let two_mode_system ~arrival_rate =
  let sp =
    Service_provider.create
      ~names:[| "active"; "sleeping" |]
      ~switch_time:[| [| 0.0; 0.2 |]; [| 1.1; 0.0 |] |]
      ~service_rate:[| 1.0 /. 1.5; 0.0 |]
      ~power:[| 40.0; 0.1 |]
      ~switch_energy:[| [| 0.0; 0.5 |]; [| 11.0; 0.0 |] |]
  in
  Sys_model.create ~sp ~queue_capacity:5 ~arrival_rate ()

let npolicy2 () =
  header
    "NPOLICY2  N-policy optimality for a 2-mode server (Section V claim)";
  let sys = two_mode_system ~arrival_rate:(1.0 /. 6.0) in
  Printf.printf
    "analytic objective comparison, objective = power + w * waiting:\n";
  Printf.printf "%-10s %14s %16s %12s\n" "w" "best N-policy" "CTMDP optimal"
    "gap (%)";
  Dpm_par.parallel_map_list
    (fun w ->
      let objective m = m.Analytic.power +. (w *. m.Analytic.avg_waiting_requests) in
      let best_n =
        List.fold_left
          (fun acc n ->
            let v = objective (Analytic.of_actions sys ~actions:(Policies.n_policy sys ~n)) in
            Float.min acc v)
          infinity [ 1; 2; 3; 4; 5 ]
      in
      let opt = Optimize.solve ~weight:w sys in
      (w, best_n, opt.Optimize.gain))
    [ 0.2; 0.5; 1.0; 2.0; 5.0; 10.0 ]
  |> List.iter (fun (w, best_n, gain) ->
         Printf.printf "%-10g %14.4f %16.4f %+11.3f%%\n" w best_n gain
           ((best_n -. gain) /. gain *. 100.0));
  Printf.printf
    "\n3-mode server (paper instance): weights where the optimum strictly\n\
     beats every N-policy (uses the 'waiting' mode as a shallow sleep):\n";
  let sys3 = Paper_instance.system () in
  Dpm_par.parallel_map_list
    (fun w ->
      let objective m = m.Analytic.power +. (w *. m.Analytic.avg_waiting_requests) in
      let best_n =
        List.fold_left
          (fun acc n ->
            Float.min acc
              (objective (Analytic.of_actions sys3 ~actions:(Policies.n_policy sys3 ~n))))
          infinity [ 1; 2; 3; 4; 5 ]
      in
      let opt = Optimize.solve ~weight:w sys3 in
      (w, best_n, opt.Optimize.gain))
    [ 0.2; 0.5; 1.0; 2.0 ]
  |> List.iter (fun (w, best_n, gain) ->
         Printf.printf "  w=%-8g best-N=%10.4f optimal=%10.4f improvement=%.3f%%\n"
           w best_n gain
           ((best_n -. gain) /. best_n *. 100.0))

let all () =
  fig4 ();
  modelcheck ();
  table1 ();
  fig5 ();
  npolicy2 ()
