(* Fleet-scale benchmark: the full hierarchical pipeline at data-center
   size.  120 servers in 3 heterogeneous groups (the paper SP with
   three different queue capacities, so exactly 3 distinct per-server
   models per arrival rate), a 3-phase day/night arrival plan sized to
   push more than a million arrivals through the event simulator, and
   per-tier energy accounting from the PR-5 segment summaries.

   The dedup claim is load-bearing: the cluster table warms every
   distinct (group, routed-rate) solve, so the deploy phase must be
   pure cache hits — ratio >= (N - k) / N for k distinct models, and
   in practice 1.0.

   Gauges land in bench_metrics.json under bench.fleet.*:
     bench.fleet.events_per_second (sim events / sim wall, higher better)
     bench.fleet.cache_hit_ratio   (deploy-phase dedup, higher better)
     bench.fleet.solve_wall_s      (cluster + deploy solves, lower better)
     bench.fleet.sim_wall_s        (event simulation, lower better)
     bench.fleet.arrivals          (informational; gate >= 1e6)
     bench.fleet.servers           (informational; gate >= 100)
     bench.fleet.server_energy_j   (informational)
     bench.fleet.off_energy_j      (informational)
     bench.fleet.cluster_energy_j  (informational)
     bench.fleet.ok                (1 = all gates held) *)

open Dpm_core
module Spec = Dpm_fleet.Spec
module Cluster = Dpm_fleet.Cluster
module Fleet_sim = Dpm_fleet.Fleet_sim

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line
let num_servers = 120
let distinct_models = 3
let horizon = 60_000.0

let spec () =
  let per_group = num_servers / distinct_models in
  Spec.create ~weight:1.0 ~boot_rate:0.5 ~boot_energy:50.0 ~shutdown_rate:1.0
    ~shutdown_energy:10.0 ~min_active:4 ~loss_penalty:100.0
    (List.init distinct_models (fun i ->
         Spec.group
           ~name:(Printf.sprintf "tier%d" i)
           ~sp:(Paper_instance.service_provider ())
           ~queue_capacity:(Paper_instance.queue_capacity + i)
           ~count:per_group ~off_power:0.1 ()))

let all () =
  header
    (Printf.sprintf
       "FLEET  hierarchical %d-server simulation: cluster CTMDP over a\n\
        3-phase arrival plan, cached per-server solves, >1e6 arrivals"
       num_servers);
  let spec = spec () in
  let segments = [ (24_000.0, 25.0); (42_000.0, 10.0) ] in
  let final_rate = 20.0 in
  (* Expected offered load: 25*24k + 10*18k + 20*18k = 1.14e6.  A
     scoped cache big enough for every distinct (group, routed-rate)
     job in the cluster table — the global default (512) would evict
     mid-warmup at this fleet size and poison the dedup measurement. *)
  Dpm_cache.Solve_cache.with_capacity 4096 @@ fun () ->
  (* Cold hierarchical solve: every distinct per-server model plus the
     cluster CTMDP itself. *)
  let s0 = Unix.gettimeofday () in
  let load =
    Cluster.cyclic_load [ (25.0, 24_000.0); (10.0, 18_000.0); (20.0, 18_000.0) ]
  in
  let c = Cluster.solve spec ~load in
  let solve_wall = Unix.gettimeofday () -. s0 in
  (* Warm full pipeline: the run's own cluster/deploy passes are now
     pure cache hits, so this wall clock is the event simulation. *)
  let t0 = Unix.gettimeofday () in
  let r = Fleet_sim.run ~seed:1L spec ~segments ~final_rate ~horizon in
  let sim_wall = Float.max 1e-9 (Unix.gettimeofday () -. t0) in
  let total_wall = solve_wall +. sim_wall in
  let events_per_second = float_of_int r.Fleet_sim.events /. sim_wall in
  let lookups = r.Fleet_sim.cache_hits + r.Fleet_sim.cache_misses in
  let hit_ratio =
    if lookups = 0 then 0.0
    else float_of_int r.Fleet_sim.cache_hits /. float_of_int lookups
  in
  let floor =
    float_of_int (num_servers - distinct_models) /. float_of_int num_servers
  in
  let conserved = r.Fleet_sim.generated = r.Fleet_sim.accepted + r.Fleet_sim.lost in
  let ok =
    r.Fleet_sim.generated >= 1_000_000
    && r.Fleet_sim.num_servers >= 100
    && hit_ratio >= floor
    && r.Fleet_sim.resolve_failures = 0
    && conserved
    && c.Cluster.failures = []
  in
  Format.printf "%a" Fleet_sim.pp r;
  Printf.printf
    "wall: %.2f s total (%.2f s cold solve, %.2f s warm sim) -> %.0f events/s\n\
     dedup: %d hits / %d misses (ratio %.4f, floor %.4f)  -> %s\n"
    total_wall solve_wall sim_wall events_per_second r.Fleet_sim.cache_hits
    r.Fleet_sim.cache_misses hit_ratio floor
    (if ok then "OK" else "FAIL");
  Dpm_obs.Probe.set "bench.fleet.events_per_second" events_per_second;
  Dpm_obs.Probe.set "bench.fleet.cache_hit_ratio" hit_ratio;
  Dpm_obs.Probe.set "bench.fleet.solve_wall_s" solve_wall;
  Dpm_obs.Probe.set "bench.fleet.sim_wall_s" sim_wall;
  Dpm_obs.Probe.set "bench.fleet.arrivals" (float_of_int r.Fleet_sim.generated);
  Dpm_obs.Probe.set "bench.fleet.servers" (float_of_int r.Fleet_sim.num_servers);
  Dpm_obs.Probe.set "bench.fleet.server_energy_j" r.Fleet_sim.server_energy_j;
  Dpm_obs.Probe.set "bench.fleet.off_energy_j" r.Fleet_sim.off_energy_j;
  Dpm_obs.Probe.set "bench.fleet.cluster_energy_j" r.Fleet_sim.cluster_energy_j;
  Dpm_obs.Probe.set "bench.fleet.ok" (if ok then 1.0 else 0.0)
