(* Benchmark harness.

   Usage:  dune exec bench/main.exe [--domains N] [sections...]

   Sections: fig4 modelcheck tab1 fig5 npolicy2 ablations extensions
   scaling kron cache adapt serve fleet scenarios perf all
   (default: all).  The experiment sections regenerate the paper's
   tables/figures (see EXPERIMENTS.md); the scaling section measures
   Dpm_par speedup at several domain counts; the perf section runs one
   Bechamel micro-benchmark per experiment's computational kernel.
   [--domains N] (or DPM_DOMAINS) runs the experiment grids on an
   N-domain pool — results are identical, only wall clock changes. *)

open Bechamel
open Dpm_core

(* --- Bechamel micro-benchmarks ------------------------------------ *)

let perf_tests () =
  let sys = Paper_instance.system () in
  let model = Sys_model.to_ctmdp sys ~weight:1.0 in
  let greedy_chain =
    Sys_model.generator_of_actions sys ~actions:(Policies.greedy sys)
  in
  let greedy_actions = Policies.actions_array sys (Policies.greedy sys) in
  let sim_once () =
    Dpm_sim.Power_sim.run ~seed:9L ~sys
      ~workload:(Dpm_sim.Workload.poisson ~rate:(Sys_model.arrival_rate sys))
      ~controller:(Dpm_sim.Controller.greedy sys)
      ~stop:(Dpm_sim.Power_sim.Requests 2_000) ()
  in
  Test.make_grouped ~name:"dpm"
    [
      (* FIG4 kernel: one policy-iteration solve of the paper CTMDP. *)
      Test.make ~name:"fig4/policy_iteration"
        (Staged.stage (fun () -> Dpm_ctmdp.Policy_iteration.solve model));
      (* MODELCHECK kernel: the GTH steady-state solve. *)
      Test.make ~name:"modelcheck/steady_state_gth"
        (Staged.stage (fun () -> Dpm_ctmc.Steady_state.gth greedy_chain));
      (* TAB1 kernel: one full analytic metric evaluation. *)
      Test.make ~name:"tab1/analytic_metrics"
        (Staged.stage (fun () -> Analytic.of_action_array sys greedy_actions));
      (* FIG5 kernel: event-driven simulation (2k requests). *)
      Test.make ~name:"fig5/simulate_2k_requests" (Staged.stage sim_once);
      (* NPOLICY2 kernel: model construction. *)
      Test.make ~name:"npolicy2/build_ctmdp"
        (Staged.stage (fun () -> Sys_model.to_ctmdp sys ~weight:1.0));
      (* ABL2 kernel: the Section III tensor assembly. *)
      Test.make ~name:"abl2/tensor_generator"
        (Staged.stage (fun () -> Sys_model.tensor_generator sys ~action:0));
    ]

let perf () =
  Printf.printf "\n%s\nPERF  Bechamel micro-benchmarks (one per experiment kernel)\n%s\n"
    (String.make 78 '-') (String.make 78 '-');
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] (perf_tests ()) in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  Printf.printf "%-40s %16s\n" "kernel" "time per run";
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] ->
          Dpm_obs.Probe.set ("bench.perf." ^ name ^ ".ns_per_run") ns;
          let pretty =
            if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
            else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
            else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
            else Printf.sprintf "%.0f ns" ns
          in
          Printf.printf "%-40s %16s\n" name pretty
      | Some _ | None -> Printf.printf "%-40s %16s\n" name "(no estimate)")
    (List.sort compare rows)

(* --- Metrics stamping --------------------------------------------- *)

(* Every bench run writes a self-describing metrics document: the
   Report.to_json series wrapped in a meta envelope (git SHA, UTC
   timestamp, sections run) so tools/bench_diff.exe can compare runs
   from different commits and bench_history.jsonl stays greppable. *)

let git_sha () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ | (exception _) -> "unknown")

let utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let stamped_metrics registry ~sections =
  let open Dpm_trace.Json in
  let metrics =
    match parse (Dpm_obs.Report.to_json registry) with
    | Ok j -> j
    | Error _ -> Obj [] (* unreachable: Report.to_json emits valid JSON *)
  in
  Obj
    [
      ( "meta",
        Obj
          [
            ("git_sha", Str (git_sha ()));
            ("utc", Str (utc_now ()));
            ("sections", Arr (List.map (fun s -> Str s) sections));
          ] );
      ("metrics", metrics);
    ]

(* --- Section dispatch --------------------------------------------- *)

let sections =
  [
    ("fig4", Experiments.fig4);
    ("modelcheck", Experiments.modelcheck);
    ("tab1", Experiments.table1);
    ("fig5", Experiments.fig5);
    ("npolicy2", Experiments.npolicy2);
    ("ablations", Ablations.all);
    ("extensions", Extensions.all);
    ("scaling", Scaling.all);
    ("kron", Scaling.kron);
    ("cache", Cache.all);
    ("adapt", Adapt.all);
    ("serve", Serve.all);
    ("fleet", Fleet.all);
    ("scenarios", Scenarios.all);
    ("perf", perf);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: args -> args | [] -> []
  in
  let rec parse_domains acc = function
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some d when d >= 1 ->
            Dpm_par.set_default_domains d;
            parse_domains acc rest
        | _ ->
            Printf.eprintf "--domains expects a positive integer, got %S\n" v;
            exit 1)
    | "--domains" :: [] ->
        Printf.eprintf "--domains expects a value\n";
        exit 1
    | x :: rest -> parse_domains (x :: acc) rest
    | [] -> List.rev acc
  in
  let requested =
    match parse_domains [] args with [] -> [ "all" ] | names -> names
  in
  (* Collect solver/simulator counters and per-section wall clock for
     the whole run; the JSON dump makes perf trajectories comparable
     across PRs. *)
  let registry = Dpm_obs.Metrics.create () in
  Dpm_obs.Probe.set_active (Some registry);
  let timed name f = Dpm_obs.Span.with_ ("bench_" ^ name) f in
  let run name =
    match List.assoc_opt name sections with
    | Some f -> timed name f
    | None ->
        Printf.eprintf "unknown section %S; known: %s all\n" name
          (String.concat " " (List.map fst sections));
        exit 1
  in
  List.iter
    (fun name ->
      if name = "all" then List.iter (fun (n, f) -> timed n f) sections
      else run name)
    requested;
  Dpm_obs.Probe.set_active None;
  let line = Dpm_trace.Json.to_string (stamped_metrics registry ~sections:requested) in
  let oc = open_out "bench_metrics.json" in
  output_string oc line;
  output_char oc '\n';
  close_out oc;
  (* The history file accumulates one line per run for trend plots;
     bench_metrics.json is always the latest run. *)
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "bench_history.jsonl"
  in
  output_string oc line;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nmetrics: wrote bench_metrics.json and appended bench_history.jsonl \
     (%d series)\n"
    (List.length (Dpm_obs.Metrics.samples registry))
