(* Serving-path benchmark: the daemon engine under load and under
   injected failure, measured in-process (the process-level kill -9
   drill lives in tools/serve_chaos.ml; this section produces the
   regression-gated series for bench_metrics.json).

   Three scenarios on the paper instance:
   - ingest: arrivals offered/pumped through the bounded queue and the
     estimator at full speed -> bench.serve.throughput (events/s);
   - query: O(1) decide calls over the whole state space ->
     bench.serve.p99_latency_us;
   - chaos: a stall fault plan plus a zero watchdog budget makes every
     re-solve fail, then a checkpoint/restore cycle stands a fresh
     engine up -> bench.serve.degraded_fraction (must stay below 1:
     the engine kept serving) and bench.serve.recovery_ms
     (checkpoint-load-to-first-answer).

   Gauges land in bench_metrics.json under bench.serve.*:
     bench.serve.throughput        (events/s, higher better)
     bench.serve.p99_latency_us    (decide round-trip, lower better)
     bench.serve.recovery_ms       (restore to first answer)
     bench.serve.degraded_fraction (sim-time not Healthy under faults)
     bench.serve.ok                (1 = engine answered everything) *)

open Dpm_core
module Engine = Dpm_serve.Engine

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line
let events = 20_000
let queries = 50_000

let p99 latencies =
  let a = Array.copy latencies in
  Array.sort compare a;
  a.(min (Array.length a - 1) (int_of_float (0.99 *. float_of_int (Array.length a))))

let all () =
  header
    "SERVE  daemon engine: ingest throughput, decide latency, and the\n\
     degrade/checkpoint/restore cycle under a stall-fault storm";
  let sys = Paper_instance.system () in
  let ok = ref true in

  (* Ingest throughput: offer + pump in batches of the queue size. *)
  let engine = Engine.create ~weight:1.0 ~queue_capacity:1024 sys in
  let t0 = Unix.gettimeofday () in
  let at = ref 0.0 in
  let remaining = ref events in
  while !remaining > 0 do
    let batch = min 1024 !remaining in
    for _ = 1 to batch do
      at := !at +. 0.1;
      ignore (Engine.offer_arrival engine ~at:!at : bool)
    done;
    Engine.pump engine;
    remaining := !remaining - batch
  done;
  let ingest_s = Unix.gettimeofday () -. t0 in
  let throughput = float_of_int events /. ingest_s in

  (* Decide latency: cycle the whole state space. *)
  let states = Sys_model.states sys in
  let lat = Array.make queries 0.0 in
  for i = 0 to queries - 1 do
    let st = states.(i mod Array.length states) in
    let q0 = Unix.gettimeofday () in
    ignore (Engine.decide engine st : int);
    lat.(i) <- (Unix.gettimeofday () -. q0) *. 1e6
  done;
  let p99_us = p99 lat in

  (* Chaos: every re-solve dies by watchdog; the engine must degrade,
     not fail, and still answer every state. *)
  let ck = Filename.temp_file "bench_serve_ck" ".json" in
  let chaos =
    Engine.create ~weight:1.0 ~min_observations:10 ~cooldown:5.0
      ~deadline_s:0.0
      ~faults:(Dpm_robust.Fault.plan [ Dpm_robust.Fault.Stall ])
      ~checkpoint_path:ck sys
  in
  for i = 1 to 500 do
    ignore (Engine.offer_arrival chaos ~at:(float_of_int i) : bool)
  done;
  Engine.pump chaos;
  Array.iter
    (fun st ->
      let a = Engine.decide chaos st in
      if not (List.mem a (Sys_model.valid_actions sys st)) then ok := false)
    states;
  let s = Engine.stats chaos in
  if s.Engine.resolves = 0 || s.Engine.resolve_failures <> s.Engine.resolves
  then ok := false;
  let degraded = Engine.degraded_fraction chaos in
  if degraded <= 0.0 || degraded >= 1.0 then ok := false;

  (* Recovery: checkpoint, then stand a fresh engine up from it and
     answer one query. *)
  (match Engine.checkpoint chaos with Ok _ -> () | Error _ -> ok := false);
  let r0 = Unix.gettimeofday () in
  let restoredE =
    Engine.create ~weight:1.0 ~min_observations:10 ~cooldown:5.0
      ~checkpoint_path:ck sys
  in
  ignore (Engine.decide restoredE states.(0) : int);
  let recovery_ms = (Unix.gettimeofday () -. r0) *. 1e3 in
  if not (Engine.restored restoredE) then ok := false;
  (try Sys.remove ck with Sys_error _ -> ());

  Printf.printf
    "ingest: %d events in %.3f s (%.0f events/s)\n\
     decide: %d queries, p99 %.2f us\n\
     chaos:  %d/%d re-solves failed by watchdog, degraded fraction %.3f\n\
     restore: %.2f ms to first answer  -> %s\n"
    events ingest_s throughput queries p99_us s.Engine.resolve_failures
    s.Engine.resolves degraded recovery_ms
    (if !ok then "OK" else "FAIL");
  Dpm_obs.Probe.set "bench.serve.throughput" throughput;
  Dpm_obs.Probe.set "bench.serve.p99_latency_us" p99_us;
  Dpm_obs.Probe.set "bench.serve.recovery_ms" recovery_ms;
  Dpm_obs.Probe.set "bench.serve.degraded_fraction" degraded;
  Dpm_obs.Probe.set "bench.serve.ok" (if !ok then 1.0 else 0.0)
