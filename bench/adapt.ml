(* Adaptive-vs-static-vs-oracle comparison on a 3-segment drifting
   workload (pinned seed): the quantitative claim of the Dpm_adapt
   layer.  The adaptive controller must strictly beat the best single
   static CTMDP policy and land within 10% of the per-segment oracle.

   Gauges land in bench_metrics.json under bench.adapt.*:
     bench.adapt.cost.{adaptive,static_best,oracle}
     bench.adapt.cost.<label> for every entry
     bench.adapt.{resolves,policy_switches,resolve_failures}
     bench.adapt.adaptive_vs_static_gain   (fraction, > 0 = better)
     bench.adapt.oracle_gap                (fraction, < 0.10 wanted)
     bench.adapt.ok                        (1 = both criteria hold) *)

open Dpm_core
module H = Dpm_adapt.Harness

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* Quiet (1/12), busy (1/3), settle (1/8): the same drift the
   examples use, long enough per phase for the 50-gap window to lock
   on even in the quiet phase (~330 expected quiet arrivals). *)
let segments = [ (4000.0, 1.0 /. 12.0); (8000.0, 1.0 /. 3.0) ]
let final_rate = 1.0 /. 8.0
let horizon = 12_000.0

let all () =
  header
    "ADAPT  adaptive vs static-optimal vs per-segment oracle on a\n\
     3-segment drifting workload (quiet 1/12 -> busy 1/3 -> 1/8)";
  let sys = Paper_instance.system () in
  let c =
    H.compare ~seed:7L ~weight:1.0 ~window:50 ~min_observations:30
      ~cooldown:150.0 ~sys ~segments ~final_rate ~horizon ()
  in
  Format.printf "%a@." H.pp c;
  let gain = (c.H.static_best.H.cost -. c.H.adaptive.H.cost) /. c.H.static_best.H.cost in
  let oracle_gap = (c.H.adaptive.H.cost -. c.H.oracle.H.cost) /. c.H.oracle.H.cost in
  let ok = gain > 0.0 && oracle_gap < 0.10 in
  Printf.printf
    "adaptive gain over best static: %.2f%%; gap to oracle: %.2f%%  -> %s\n"
    (100.0 *. gain) (100.0 *. oracle_gap)
    (if ok then "OK" else "FAIL");
  List.iter
    (fun (e : H.entry) ->
      Dpm_obs.Probe.set ("bench.adapt.cost." ^ e.H.label) e.H.cost)
    c.H.entries;
  Dpm_obs.Probe.set "bench.adapt.cost.adaptive" c.H.adaptive.H.cost;
  Dpm_obs.Probe.set "bench.adapt.cost.static_best" c.H.static_best.H.cost;
  Dpm_obs.Probe.set "bench.adapt.cost.oracle" c.H.oracle.H.cost;
  Dpm_obs.Probe.set "bench.adapt.resolves" (float_of_int c.H.resolves);
  Dpm_obs.Probe.set "bench.adapt.policy_switches"
    (float_of_int c.H.policy_switches);
  Dpm_obs.Probe.set "bench.adapt.resolve_failures"
    (float_of_int c.H.resolve_failures);
  Dpm_obs.Probe.set "bench.adapt.adaptive_vs_static_gain" gain;
  Dpm_obs.Probe.set "bench.adapt.oracle_gap" oracle_gap;
  Dpm_obs.Probe.set "bench.adapt.ok" (if ok then 1.0 else 0.0)
