open Dpm_prob

type estimate = {
  mean : float;
  std_error : float;
  ci95_half_width : float;
  n : int;
}

type t = {
  power : estimate;
  waiting_requests : estimate;
  waiting_time : estimate;
  loss_probability : estimate;
  switch_count : estimate;
}

let estimate_of values =
  let w = Stat.Welford.create () in
  List.iter (Stat.Welford.add w) values;
  let n = Stat.Welford.count w in
  (* A single replication carries no dispersion information; report a
     zero-width interval rather than Welford's NaN so serializers
     (notably JSON, which has no NaN literal) always see finite
     numbers. *)
  let se = if n < 2 then 0.0 else Stat.Welford.std_error w in
  {
    mean = Stat.Welford.mean w;
    std_error = se;
    ci95_half_width = 1.959964 *. se;
    n;
  }

let of_results results =
  if results = [] then invalid_arg "Summary.of_results: no replications";
  let pick f = estimate_of (List.map f results) in
  {
    power = pick (fun r -> r.Power_sim.avg_power);
    waiting_requests = pick (fun r -> r.Power_sim.avg_waiting_requests);
    waiting_time = pick (fun r -> r.Power_sim.avg_waiting_time);
    loss_probability = pick (fun r -> r.Power_sim.loss_probability);
    switch_count = pick (fun r -> float_of_int r.Power_sim.switch_count);
  }

let of_segment_results results =
  if results = [] then invalid_arg "Summary.of_segment_results: no replications";
  let n_segments =
    match results with
    | r :: rest ->
        let n = Array.length r.Power_sim.segments in
        if n = 0 then
          invalid_arg
            "Summary.of_segment_results: results carry no segments (pass \
             ?segments to Power_sim.run/replicate)";
        List.iter
          (fun r' ->
            if Array.length r'.Power_sim.segments <> n then
              invalid_arg
                "Summary.of_segment_results: replications disagree on segment \
                 count")
          rest;
        n
    | [] -> assert false
  in
  Array.init n_segments (fun i ->
      let pick f =
        estimate_of (List.map (fun r -> f r.Power_sim.segments.(i)) results)
      in
      let seg_loss s =
        if s.Power_sim.seg_generated = 0 then 0.0
        else float_of_int s.Power_sim.seg_lost /. float_of_int s.Power_sim.seg_generated
      in
      {
        power = pick (fun s -> s.Power_sim.seg_power);
        waiting_requests = pick (fun s -> s.Power_sim.seg_waiting_requests);
        waiting_time = pick (fun s -> s.Power_sim.seg_waiting_time);
        loss_probability = pick seg_loss;
        switch_count = pick (fun s -> float_of_int s.Power_sim.seg_switches);
      })

let contains e x =
  (not (Float.is_nan e.ci95_half_width))
  && Float.abs (x -. e.mean) <= e.ci95_half_width

let pp_estimate ppf e =
  if Float.is_nan e.ci95_half_width then Format.fprintf ppf "%.4g" e.mean
  else Format.fprintf ppf "%.4g +/- %.2g" e.mean e.ci95_half_width
