(** Replication statistics.

    A single simulation gives point estimates; independent
    replications ({!Power_sim.replicate}) give confidence intervals.
    This module folds a list of results into per-metric estimates the
    experiment tables can print as [mean +/- half-width]. *)

type estimate = {
  mean : float;
  std_error : float;
  ci95_half_width : float;  (** normal-approximation 95% interval *)
  n : int;  (** replications *)
}

type t = {
  power : estimate;  (** average power (W) *)
  waiting_requests : estimate;
  waiting_time : estimate;
  loss_probability : estimate;
  switch_count : estimate;
}

val of_results : Power_sim.result list -> t
(** [of_results rs] summarizes the replications.  Raises
    [Invalid_argument] on an empty list.  With a single replication
    the dispersion fields ([std_error], [ci95_half_width]) are [0.]
    — a zero-width interval, never [nan] — so exporting estimates to
    formats without a NaN literal (JSON) is always safe; [contains]
    then accepts only the exact mean. *)

val of_segment_results : Power_sim.result list -> t array
(** [of_segment_results rs] summarizes replications {e per segment}:
    element [i] folds segment [i] of every replication, exactly as
    {!of_results} folds the whole runs.  On a non-stationary workload
    this is the statistically meaningful summary — the whole-run
    averages of {!of_results} mix phases with different rates, so
    comparing them against any single stationary model is a category
    error.  All replications must have been run with the same
    [?segments] boundaries ({!Power_sim.run}); raises
    [Invalid_argument] on an empty list, segment-free results, or a
    segment-count mismatch. *)

val contains : estimate -> float -> bool
(** [contains e x] tests whether [x] lies inside the 95% interval —
    the check the model-vs-simulation tables use. *)

val pp_estimate : Format.formatter -> estimate -> unit
(** ["12.34 +/- 0.05"]. *)
