(** Bounded event-trace recording.

    Plug {!observer} into {!Power_sim.run} to keep the last [capacity]
    event snapshots of a simulation — enough to debug a policy's
    behavior or to render a mode/queue timeline — without unbounded
    memory on multi-million-event runs. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ()] allocates a ring buffer for [capacity] (default
    65_536) snapshots. *)

val observer : t -> Power_sim.snapshot -> unit
(** The callback to pass as [?observer] to {!Power_sim.run}. *)

val length : t -> int
(** Snapshots currently retained. *)

val dropped : t -> int
(** Snapshots evicted because the buffer was full. *)

val snapshots : t -> Power_sim.snapshot list
(** Retained snapshots in chronological order. *)

val mode_intervals : t -> (float * float * int) list
(** [(start, stop, mode)] runs of constant SP mode over the retained
    window — the data behind a power-state timeline plot. *)

val to_csv : ?server:int -> t -> string
(** CSV rendering: [time,event,mode,queue,switching_to,in_transfer].
    The first line is a comment, [# length=N dropped=M], so a
    downstream plot can detect ring-buffer truncation ([dropped > 0]
    means the file starts mid-run) instead of silently rendering a
    clipped trace.  [server], when given, appends a [server] column
    carrying that fleet server id on every row (the CLI's
    [--csv-server-id]); without it the shape is unchanged, keeping
    existing golden CSVs byte-identical. *)
