open Dpm_prob

type kind =
  | Poisson of float
  | Piecewise of { segments : (float * float) list; final_rate : float }
  | Mmpp of {
      rates : float array;
      switch_rate : float array array;
      mutable phase : int;
      mutable phase_until : float option;
          (* time of the next phase switch, sampled lazily *)
    }
  | Trace of { mutable remaining : float list }

type t = { kind : kind; mutable last_now : float }

let check_rate r =
  if r <= 0.0 || not (Float.is_finite r) then
    invalid_arg "Workload: rates must be positive and finite"

(* Piecewise segments may be silent: a fleet dispatcher routes rate 0
   to a server while it is deactivated. *)
let check_rate_nonneg r =
  if r < 0.0 || not (Float.is_finite r) then
    invalid_arg "Workload: rates must be nonnegative and finite"

let poisson ~rate =
  check_rate rate;
  { kind = Poisson rate; last_now = neg_infinity }

let piecewise ~segments ~final_rate =
  check_rate_nonneg final_rate;
  let rec check_boundaries prev = function
    | [] -> ()
    | (until, rate) :: rest ->
        check_rate_nonneg rate;
        if until <= prev then
          invalid_arg "Workload.piecewise: boundaries must increase";
        check_boundaries until rest
  in
  check_boundaries 0.0 segments;
  { kind = Piecewise { segments; final_rate }; last_now = neg_infinity }

let mmpp ~rates ~switch_rate =
  if Array.length rates < 2 then invalid_arg "Workload.mmpp: need >= 2 phases";
  Array.iter check_rate rates;
  let n = Array.length rates in
  if Array.length switch_rate <> n then
    invalid_arg "Workload.mmpp: switch_rate shape mismatch";
  Array.iteri
    (fun i row ->
      if Array.length row <> n then
        invalid_arg "Workload.mmpp: switch_rate shape mismatch";
      Array.iteri
        (fun j r ->
          if i <> j && (r < 0.0 || not (Float.is_finite r)) then
            invalid_arg "Workload.mmpp: negative switch rate")
        row)
    switch_rate;
  {
    kind = Mmpp { rates; switch_rate; phase = 0; phase_until = None };
    last_now = neg_infinity;
  }

let trace times =
  let rec check prev = function
    | [] -> ()
    | t :: rest ->
        if t <= prev then invalid_arg "Workload.trace: times must increase";
        check t rest
  in
  check 0.0 times;
  { kind = Trace { remaining = times }; last_now = neg_infinity }

let of_intervals gaps =
  List.iter
    (fun g ->
      if g <= 0.0 || not (Float.is_finite g) then
        invalid_arg "Workload.of_intervals: gaps must be positive and finite")
    gaps;
  let _, times =
    List.fold_left (fun (t, acc) g -> (t +. g, (t +. g) :: acc)) (0.0, []) gaps
  in
  trace (List.rev times)

let load_trace ?(intervals = false) path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let rec read acc =
        match input_line ic with
        | line -> (
            let line = String.trim line in
            if line = "" || line.[0] = '#' then read acc
            else
              match float_of_string_opt line with
              | Some t -> read (t :: acc)
              | None ->
                  Error (Printf.sprintf "bad timestamp %S in %s" line path))
        | exception End_of_file -> Ok (List.rev acc)
      in
      let r = read [] in
      close_in ic;
      Result.bind r (fun values ->
          match if intervals then of_intervals values else trace values with
          | w -> Ok w
          | exception Invalid_argument msg -> Error msg)

(* The piecewise grammar shared by `dpm_cli simulate --workload
   piecewise:...`, `dpm_cli adapt --segments ...` and the bench adapt
   section: comma-separated [rate@until] entries (strictly increasing
   boundaries) with a bare trailing [rate] as the final rate. *)
let segments_of_spec spec =
  let entries = String.split_on_char ',' (String.trim spec) in
  let parse_entry e =
    match String.split_on_char '@' (String.trim e) with
    | [ r ] -> (
        match float_of_string_opt r with
        | Some r -> Ok (r, None)
        | None -> Error (Printf.sprintf "bad rate %S" r))
    | [ r; u ] -> (
        match (float_of_string_opt r, float_of_string_opt u) with
        | Some r, Some u -> Ok (r, Some u)
        | _ -> Error (Printf.sprintf "bad segment %S (want RATE@UNTIL)" e))
    | _ -> Error (Printf.sprintf "bad segment %S (want RATE@UNTIL)" e)
  in
  let rec build acc = function
    | [] -> Error "empty segment list"
    | [ last ] -> (
        match parse_entry last with
        | Error _ as e -> e
        | Ok (r, None) -> Ok (List.rev acc, r)
        | Ok (_, Some _) ->
            Error
              (Printf.sprintf
                 "last entry %S must be a bare final rate (no @)" last))
    | e :: rest -> (
        match parse_entry e with
        | Error _ as err -> err
        | Ok (_, None) ->
            Error (Printf.sprintf "entry %S needs a boundary (RATE@UNTIL)" e)
        | Ok (r, Some u) -> build ((u, r) :: acc) rest)
  in
  Result.bind (build [] entries) (fun (segments, final_rate) ->
      match piecewise ~segments ~final_rate with
      | _ -> Ok (segments, final_rate)
      | exception Invalid_argument msg -> Error msg)

let of_spec ~rate spec =
  let prefix p s =
    let lp = String.length p in
    if String.length s >= lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  match spec with
  | "poisson" -> (
      match poisson ~rate with
      | w -> Ok w
      | exception Invalid_argument msg -> Error msg)
  | s -> (
      match prefix "piecewise:" s with
      | Some body ->
          Result.map
            (fun (segments, final_rate) -> piecewise ~segments ~final_rate)
            (segments_of_spec body)
      | None -> (
          match prefix "mmpp:" s with
          | Some body -> (
              match String.split_on_char ':' body with
              | [ r1; r2; sw ] -> (
                  match
                    ( float_of_string_opt r1,
                      float_of_string_opt r2,
                      float_of_string_opt sw )
                  with
                  | Some r1, Some r2, Some sw
                    when r1 > 0.0 && r2 > 0.0 && sw > 0.0 ->
                      Ok
                        (mmpp ~rates:[| r1; r2 |]
                           ~switch_rate:[| [| 0.0; sw |]; [| sw; 0.0 |] |])
                  | _ ->
                      Error
                        (Printf.sprintf
                           "bad mmpp spec %S (mmpp:<r1>:<r2>:<switch>)" spec))
              | _ ->
                  Error
                    (Printf.sprintf "bad mmpp spec %S (mmpp:<r1>:<r2>:<switch>)"
                       spec))
          | None -> (
              match prefix "trace-file:" s with
              | Some path -> load_trace path
              | None -> (
                  match prefix "intervals-file:" s with
                  | Some path -> load_trace ~intervals:true path
                  | None ->
                      Error
                        (Printf.sprintf
                           "unknown workload %S (try: poisson, \
                            piecewise:<r1>@<t1>,...,<rfinal>, \
                            mmpp:<r1>:<r2>:<switch>, trace-file:<path>, \
                            intervals-file:<path>)"
                           spec)))))

let rate_at segments final_rate t =
  let rec scan = function
    | [] -> final_rate
    | (until, rate) :: rest -> if t < until then rate else scan rest
  in
  scan segments

let next_arrival w rng ~now =
  if now < w.last_now then
    invalid_arg "Workload.next_arrival: time moved backwards";
  w.last_now <- now;
  match w.kind with
  | Poisson rate -> Some (now +. Dist.exponential_sample rng ~rate)
  | Piecewise { segments; final_rate } ->
      (* Thinning against the maximum rate keeps the stream exact for
         the inhomogeneous process.  Zero-rate segments reject every
         candidate ([ratio > 0.0] — [Rng.float] can return exactly 0,
         which must not sneak an arrival through), and once the
         clock passes the last boundary of an all-quiet tail the
         stream ends instead of thinning forever. *)
      let max_rate =
        List.fold_left (fun acc (_, r) -> Float.max acc r) final_rate segments
      in
      if max_rate <= 0.0 then None
      else begin
        let last_boundary =
          List.fold_left (fun _ (until, _) -> until) 0.0 segments
        in
        let rec draw t =
          let t = t +. Dist.exponential_sample rng ~rate:max_rate in
          if final_rate <= 0.0 && t >= last_boundary then None
          else
            let ratio = rate_at segments final_rate t /. max_rate in
            if ratio > 0.0 && Rng.float rng <= ratio then Some t else draw t
        in
        draw now
      end
  | Mmpp m ->
      (* Race the next arrival (at the phase's rate) against the next
         phase switch; iterate across switches until an arrival wins. *)
      let rec walk t =
        let phase_exit =
          Array.fold_left ( +. ) 0.0 m.switch_rate.(m.phase)
          -. m.switch_rate.(m.phase).(m.phase)
        in
        let switch_at =
          match m.phase_until with
          | Some u when u > t -> u
          | _ ->
              if phase_exit <= 0.0 then infinity
              else t +. Dist.exponential_sample rng ~rate:phase_exit
        in
        let arrival_at = t +. Dist.exponential_sample rng ~rate:m.rates.(m.phase) in
        if arrival_at <= switch_at then begin
          m.phase_until <- (if switch_at = infinity then None else Some switch_at);
          Some arrival_at
        end
        else begin
          (* Jump phases; pick the destination by rate weights. *)
          let weights =
            Array.mapi
              (fun j r -> if j = m.phase then 0.0 else r)
              m.switch_rate.(m.phase)
          in
          m.phase <- Dist.categorical_sample rng weights;
          m.phase_until <- None;
          walk switch_at
        end
      in
      walk now
  | Trace t -> (
      match t.remaining with
      | [] -> None
      | x :: rest ->
          if x <= now then
            invalid_arg "Workload.next_arrival: trace time not after now"
          else begin
            t.remaining <- rest;
            Some x
          end)

let mean_rate_hint w =
  match w.kind with
  | Poisson rate -> rate
  | Piecewise { segments; final_rate } ->
      (* Time-weighted mean over the declared horizon, then the final
         rate dominates; a hint, not an exact statistic. *)
      let rec fold prev acc = function
        | [] -> (acc, prev)
        | (until, rate) :: rest -> fold until (acc +. (rate *. (until -. prev))) rest
      in
      let weighted, horizon = fold 0.0 0.0 segments in
      if horizon > 0.0 then
        (weighted +. final_rate *. horizon) /. (2.0 *. horizon)
      else final_rate
  | Mmpp m ->
      Array.fold_left ( +. ) 0.0 m.rates /. float_of_int (Array.length m.rates)
  | Trace { remaining } -> (
      match remaining with
      | [] | [ _ ] -> 0.0
      | first :: rest ->
          let last = List.fold_left (fun _ x -> x) first rest in
          if last > first then
            float_of_int (List.length rest) /. (last -. first)
          else 0.0)
