(** Request workloads (the Service Requestor of the paper, and
    richer sources for the examples).

    The paper's SR is a single-mode Poisson source.  Beyond it we
    provide a piecewise-stationary source (the paper's Section III
    remark about a PM estimating the input rate of a slowly varying
    workload), a two-phase MMPP (bursty traffic), and trace replay.
    A workload is a stateful stream of absolute arrival times. *)

open Dpm_prob

type t

val poisson : rate:float -> t
(** Stationary Poisson arrivals; [rate > 0]. *)

val piecewise : segments:(float * float) list -> final_rate:float -> t
(** [piecewise ~segments ~final_rate] changes rate over time:
    [(until, rate)] pairs with strictly increasing [until] apply
    [rate] up to each boundary; [final_rate] applies afterwards.
    Rates must be nonnegative (a zero-rate segment is silent — a
    fleet dispatcher routes rate 0 to a deactivated server); with a
    zero [final_rate] the stream {e ends} after the last boundary.
    Sampling is by thinning against the maximum rate, so boundaries
    need not align with arrivals. *)

val mmpp : rates:float array -> switch_rate:float array array -> t
(** A Markov-modulated Poisson process: [rates.(k)] while the
    modulating chain occupies phase [k], [switch_rate] its generator
    off-diagonals (diagonal ignored).  Starts in phase 0. *)

val trace : float list -> t
(** Replay absolute arrival times (strictly increasing, positive).
    The stream ends when the trace does. *)

val of_intervals : float list -> t
(** Replay a trace given as inter-arrival {e gaps} (each positive and
    finite); the first arrival lands at the first gap.  The common
    on-disk form of measured request logs. *)

val load_trace : ?intervals:bool -> string -> (t, string) result
(** [load_trace path] reads one float per line ([#] comments and
    blank lines ignored) as absolute arrival times, or, with
    [~intervals:true], as inter-arrival gaps ({!of_intervals}).
    [Error] on I/O failure, an unparsable line, or non-monotone /
    non-positive values. *)

val segments_of_spec : string -> ((float * float) list * float, string) result
(** Parse the piecewise-rate grammar shared by the CLI and the
    adaptive harness: comma-separated [RATE@UNTIL] entries with
    strictly increasing boundaries, ending in a bare final [RATE] —
    e.g. ["0.083@4000,0.333@8000,0.125"].  Returns the
    [(segments, final_rate)] pair accepted by {!piecewise}. *)

val of_spec : rate:float -> string -> (t, string) result
(** Build a workload from the CLI spec grammar: [poisson] (at
    [rate]), [piecewise:<r1>@<t1>,...,<rfinal>]
    ({!segments_of_spec}), [mmpp:<r1>:<r2>:<switch>] (two phases,
    symmetric switching), [trace-file:<path>] (absolute times), or
    [intervals-file:<path>] (inter-arrival gaps). *)

val next_arrival : t -> Rng.t -> now:float -> float option
(** [next_arrival w rng ~now] draws the first arrival strictly after
    [now]; [None] when the source is exhausted (only for {!trace}).
    Calls must have nondecreasing [now] — the workload is a stream,
    not a random-access process. *)

val mean_rate_hint : t -> float
(** A representative rate (exact for {!poisson}; time- or
    phase-averaged otherwise) — used by examples to size time-out
    values the way the paper does (n = inter-arrival time, n = half
    of it). *)
