type t = {
  buffer : Power_sim.snapshot option array;
  mutable next : int; (* slot for the next write *)
  mutable total : int; (* snapshots ever seen *)
}

let create ?(capacity = 65_536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buffer = Array.make capacity None; next = 0; total = 0 }

let observer t snap =
  t.buffer.(t.next) <- Some snap;
  t.next <- (t.next + 1) mod Array.length t.buffer;
  t.total <- t.total + 1

let length t = min t.total (Array.length t.buffer)
let dropped t = max 0 (t.total - Array.length t.buffer)

let snapshots t =
  let cap = Array.length t.buffer in
  let n = length t in
  let start = if t.total <= cap then 0 else t.next in
  List.filter_map
    (fun k -> t.buffer.((start + k) mod cap))
    (List.init n (fun k -> k))

let mode_intervals t =
  match snapshots t with
  | [] -> []
  | first :: rest ->
      (* Runs of constant mode; the final run closes at the last
         snapshot's time. *)
      let rec walk start mode last acc = function
        | [] -> List.rev ((start, last, mode) :: acc)
        | s :: tail ->
            if s.Power_sim.snap_mode = mode then
              walk start mode s.Power_sim.snap_time acc tail
            else
              walk s.Power_sim.snap_time s.Power_sim.snap_mode
                s.Power_sim.snap_time
                ((start, s.Power_sim.snap_time, mode) :: acc)
                tail
      in
      walk first.Power_sim.snap_time first.Power_sim.snap_mode
        first.Power_sim.snap_time [] rest

let to_csv ?server t =
  let buf = Buffer.create 4096 in
  (* Truncation marker: plots can tell a clipped ring from a short
     run without counting rows. *)
  Buffer.add_string buf
    (Printf.sprintf "# length=%d dropped=%d\n" (length t) (dropped t));
  (* The server column is opt-in: single-server golden CSVs stay
     byte-identical. *)
  let server_header, server_cell =
    match server with
    | None -> ("", "")
    | Some id -> (",server", Printf.sprintf ",%d" id)
  in
  Buffer.add_string buf
    (Printf.sprintf "time,event,mode,queue,switching_to,in_transfer%s\n"
       server_header);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%s,%d,%d,%s,%b%s\n" s.Power_sim.snap_time
           s.Power_sim.snap_event s.Power_sim.snap_mode s.Power_sim.snap_queue
           (match s.Power_sim.snap_switching_to with
           | Some m -> string_of_int m
           | None -> "")
           s.Power_sim.snap_in_transfer server_cell))
    (snapshots t);
  Buffer.contents buf
