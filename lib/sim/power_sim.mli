(** Event-driven simulation of the power-managed system — the
    experimental apparatus of Section V.

    The simulator mirrors the physical system rather than the Markov
    model: requests arrive from a {!Workload}, join a FIFO queue of
    capacity [Q] (lost when it is full), and are served one at a time
    whenever the SP is settled in an active mode; service times are
    exponential at the mode's rate, switch times exponential at the
    commanded switch's rate, and each completed switch deposits its
    energy impulse.  After every event the {!Controller} is consulted
    and its command applied under the paper's semantics:

    - a command to leave an active mode is deferred while a service
      is in progress (constraint (1): service is never interrupted;
      the controller is re-consulted at the next event anyway);
    - after a service completion the system is {e in transfer}: no
      new service starts until the commanded switch completes —
      commanding the current mode resolves the transfer instantly
      (the paper's [chi(s,s) = infinity], exactly, with no big-M
      approximation);
    - re-commanding during a pending switch resamples the switch
      (memoryless), and commanding the current mode cancels it.

    All randomness flows from one seed through independent
    substreams (arrivals / services / switches), so runs are
    reproducible and low-variance comparisons across controllers
    reuse the same arrival sequence. *)

type stop = Requests of int | Sim_time of float
(** Stop after the N-th generated request (the paper uses 50,000) or
    at a fixed simulated time. *)

type snapshot = {
  snap_time : float;  (** clock at the instant after the event *)
  snap_event : string;  (** "arrival", "arrival_lost", "service_done", "switch_done", "timer" *)
  snap_mode : int;  (** SP mode (source mode while switching) *)
  snap_queue : int;  (** requests in the system *)
  snap_switching_to : int option;  (** pending switch target *)
  snap_in_transfer : bool;  (** inside a transfer period *)
}
(** One line of the event log passed to [observer] (see {!run}); the
    {!Trace} module records these into a bounded buffer. *)

type segment = {
  seg_start : float;  (** segment start time (s) *)
  seg_end : float;  (** segment end time (s) *)
  seg_power : float;  (** time-averaged power over the segment (W) *)
  seg_waiting_requests : float;
      (** time-averaged number of requests in the system over the
          segment *)
  seg_waiting_time : float;
      (** mean sojourn of requests {e completed} inside the segment
          (0 when none completed) *)
  seg_generated : int;  (** arrivals drawn inside the segment *)
  seg_lost : int;  (** arrivals dropped inside the segment *)
  seg_completed : int;  (** services finished inside the segment *)
  seg_switches : int;  (** mode switches completed inside the segment *)
}
(** Metrics of one time segment of a run (see [?segments] on {!run}).
    Segment metrics are exact differences of the same accumulators
    the global metrics use, so they sum/average back to the global
    result.  On a non-stationary workload the per-segment rows are
    the meaningful ones — the global mean mixes phases (see
    {!Summary.of_segment_results}). *)

type result = {
  controller : string;  (** controller name *)
  duration : float;  (** simulated seconds *)
  generated : int;  (** arrivals drawn from the workload *)
  accepted : int;  (** arrivals that entered the queue *)
  lost : int;  (** arrivals dropped on a full queue *)
  completed : int;  (** services finished *)
  avg_power : float;
      (** time-averaged power including switch-energy impulses (W) *)
  avg_waiting_requests : float;
      (** time-averaged number of requests in the system — the
          simulated counterpart of the model's [C_sq] average *)
  avg_waiting_time : float;
      (** mean sojourn (arrival to completion) of completed requests
          (s) *)
  waiting_time_stderr : float;
      (** standard error of the sojourn mean *)
  loss_probability : float;  (** [lost / generated] *)
  controller_decisions : int;
      (** how many times the controller was consulted — the paper's
          "signal traffic" criticism of per-time-slice power managers
          is this number (compare an event-driven policy with a
          {!Controller.periodic} one) *)
  switch_count : int;  (** completed mode switches *)
  switch_energy : float;  (** total switching energy (J) *)
  mode_residency : float array;  (** fraction of time per mode *)
  segments : segment array;
      (** per-segment metrics when [?segments] was given (always
          [length boundaries + 1] entries — boundaries past the
          horizon yield zero-width segments); empty otherwise *)
}

val run :
  ?seed:int64 ->
  ?initial_mode:int ->
  ?decision_energy:float ->
  ?observer:(snapshot -> unit) ->
  ?segments:float list ->
  sys:Dpm_core.Sys_model.t ->
  workload:Workload.t ->
  controller:Controller.t ->
  stop:stop ->
  unit ->
  result
(** [run ~sys ~workload ~controller ~stop ()] simulates one run.
    [sys] supplies the SP and the queue capacity (its arrival rate is
    ignored — the workload drives arrivals).  [initial_mode] defaults
    to the fastest active mode.  [seed] defaults to 1.
    [segments] (strictly increasing positive boundary times, e.g. the
    phase boundaries of a {!Workload.piecewise} source) requests
    per-segment accounting in the result's [segments] field; it never
    affects the dynamics, only the reporting.
    [decision_energy] (default 0) charges an energy impulse per
    controller consultation — the PM overhead of the paper's
    criticism (4) of time-sliced power managers.  [observer], when
    given, receives a {!snapshot} after every handled event (used by
    {!Trace}).  A controller that returns no command after a service
    completion leaves the SP in place, and an unswitching SP resumes
    service immediately (no artificial stall).  Raises
    [Invalid_argument] on a non-positive request count / horizon or a
    bad initial mode. *)

val replicate :
  ?seeds:int64 list ->
  ?seed:int64 ->
  ?n:int ->
  ?domains:int ->
  ?segments:float list ->
  sys:Dpm_core.Sys_model.t ->
  workload:(unit -> Workload.t) ->
  controller:(unit -> Controller.t) ->
  stop:stop ->
  unit ->
  result list
(** [replicate] runs independent replications (fresh workload and
    controller per run) — used to put confidence intervals on the
    experiment tables.  By default it runs [n] (default 5)
    replications whose seeds are derived from the base [seed]
    (default 1) by the splitmix64 stream ({!Dpm_prob.Rng.seed_stream}),
    so any replication count needs only one seed; pass [?seeds] to
    pin the exact seed list (then [?seed] is ignored, and a
    contradicting [?n] raises [Invalid_argument]).

    [domains] sets the parallelism (default
    {!Dpm_par.default_domains}, i.e. sequential unless [DPM_DOMAINS]
    or the CLI's [--domains] opted in).  Results are returned in seed
    order and are bit-identical whatever the domain count: every
    replication derives all its randomness from its own seed.  The
    [workload]/[controller] thunks may be called concurrently. *)

val pp : Format.formatter -> result -> unit
(** One-line summary. *)
