(** Power-manager controllers for the event-driven simulator.

    The simulator calls the controller after every state-changing
    event; the controller answers with the mode the SP should head
    for (the PM "command" of the paper) and may request a timer
    callback (how time-out policies observe idleness).

    Included controllers: the stationary-policy controller (wraps any
    policy produced by the optimizer or {!Dpm_core.Policies}), the
    greedy, N-, and time-out heuristics of Section V. *)

type reason =
  | Init  (** simulation start *)
  | Arrival  (** a request was accepted into the queue *)
  | Arrival_lost  (** a request found the queue full *)
  | Service_completed of int
      (** a service finished; payload is the queue length {e at the
          completion instant, including the finishing request} — the
          [i] of the transfer state [q_{i -> i-1}] *)
  | Switch_completed  (** the SP settled in a new mode *)
  | Timer  (** a previously requested timer fired *)

type observation = {
  time : float;  (** current simulation clock *)
  mode : int;  (** the SP's current (source, if switching) mode *)
  switching_to : int option;  (** pending switch target, if any *)
  queue_length : int;  (** requests in the system right now *)
  in_transfer : bool;
      (** a service has completed and the next one has not started —
          the simulated counterpart of the model's transfer states *)
}

type decision = {
  target : int option;
      (** mode to head for; [None] or [Some current] mean no change.
          A new target overrides a pending switch. *)
  timer : float option;  (** request a [Timer] callback after this delay *)
}

type t = {
  name : string;
  decide : observation -> reason -> decision;
}
(** Controllers may close over mutable state (timeout controllers
    track idleness), so a fresh controller must be built per
    simulation run. *)

val no_change : decision
(** [{ target = None; timer = None }]. *)

val of_dynamic_policy :
  ?name:string ->
  Dpm_core.Sys_model.t ->
  policy:(unit -> Dpm_core.Sys_model.state -> int) ->
  t
(** [of_dynamic_policy sys ~policy] is {!of_policy} for a policy that
    may change between decisions: [policy ()] is consulted at every
    event, so a controller that re-optimizes online (see
    [Dpm_adapt.Adaptive]) can swap the deployed policy by mutating
    whatever [policy] reads.  The observation-to-state mapping is
    identical to {!of_policy}. *)

val of_time_policy :
  ?name:string ->
  ?wake:float list ->
  Dpm_core.Sys_model.t ->
  policy:(float -> Dpm_core.Sys_model.state -> int) ->
  t
(** [of_time_policy sys ~policy] executes a {e time-indexed} family
    of stationary policies: [policy time state] is consulted at every
    event with the current clock, so a piecewise deployment plan (the
    fleet simulator's per-segment policies) runs inside one
    simulation.  [wake] lists absolute times at which the policy must
    be re-consulted even if no event occurs — plan segment
    boundaries, where a server may be parked or woken during a quiet
    stretch; the controller chains a single timer through them.  The
    observation-to-state mapping is identical to {!of_policy}.
    Raises [Invalid_argument] on a negative or non-finite wake
    time. *)

val of_policy : Dpm_core.Sys_model.t -> (Dpm_core.Sys_model.state -> int) -> t
(** [of_policy sys policy] executes a stationary Markov policy: on a
    service completion with [i] requests present it consults
    [Transfer (mode, i)]; on every other event, [Stable (mode, queue)]
    (with the queue clamped to the model's capacity).  While the SP
    is switching, the policy is re-consulted on each event and may
    redirect the switch, mirroring the memoryless rate semantics of
    the Markov model. *)

val of_solution : Dpm_core.Sys_model.t -> Dpm_core.Optimize.solution -> t
(** Convenience: {!of_policy} on an optimizer solution. *)

val always_on : Dpm_core.Sys_model.t -> t
(** Drive to the fastest active mode and stay there. *)

val greedy : ?sleep_mode:int -> ?active_mode:int -> Dpm_core.Sys_model.t -> t
(** Sleep the instant the system empties; wake the instant a request
    arrives. *)

val n_policy : ?sleep_mode:int -> ?active_mode:int -> Dpm_core.Sys_model.t -> n:int -> t
(** Sleep when the system empties; wake when [n] requests have
    accumulated. *)

val timeout :
  ?sleep_mode:int -> ?active_mode:int -> Dpm_core.Sys_model.t -> delay:float -> t
(** Section V's time-out family: wake on the first waiting request;
    after the system empties, stay in the active mode for [delay]
    seconds and then sleep if still idle. *)

val periodic : period:float -> decide:(mode:int -> queue:int -> int) -> t
(** A time-slice power manager in the style of the discrete-time
    baseline [11]: it observes the system and issues a command only on
    a [period] timer, ignoring events in between.  Wire it to a
    solved {!Dpm_core.Discrete_baseline} via its [action_of].  The
    per-slice decision cost that the paper's criticism (4) is about is
    charged through {!Power_sim.run}'s [decision_energy]. *)

val time_shared : period:float -> fraction:float -> t -> t -> t
(** [time_shared ~period ~fraction a b] alternates between two
    controllers: [a] drives the system for [fraction * period]
    seconds, then [b] for the rest, repeating.  For periods much
    longer than the system's mixing time the long-run metrics
    converge to the [fraction]-weighted mixture of the two
    controllers' own metrics — the practical realization of the
    randomized policies produced by
    {!Dpm_core.Optimize.constrained_exact}.  Timer requests from the
    inactive controller are serviced when it next holds the reins;
    both controllers see every event (so their internal state stays
    coherent), but only the active one's commands are applied.
    Raises [Invalid_argument] unless [0 <= fraction <= 1] and
    [period > 0]. *)
