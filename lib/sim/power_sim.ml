open Dpm_core
open Dpm_prob

type stop = Requests of int | Sim_time of float

type segment = {
  seg_start : float;
  seg_end : float;
  seg_power : float;
  seg_waiting_requests : float;
  seg_waiting_time : float;
  seg_generated : int;
  seg_lost : int;
  seg_completed : int;
  seg_switches : int;
}

type result = {
  controller : string;
  duration : float;
  generated : int;
  accepted : int;
  lost : int;
  completed : int;
  avg_power : float;
  avg_waiting_requests : float;
  avg_waiting_time : float;
  waiting_time_stderr : float;
  loss_probability : float;
  controller_decisions : int;
  switch_count : int;
  switch_energy : float;
  mode_residency : float array;
  segments : segment array;
}

type snapshot = {
  snap_time : float;
  snap_event : string;
  snap_mode : int;
  snap_queue : int;
  snap_switching_to : int option;
  snap_in_transfer : bool;
}

type event = Arrival | Service_done | Switch_done of int | Timer_fired

(* Metric handles resolved once per run from the active Dpm_obs
   registry, so per-event accounting is a field mutation — no name
   lookup, no allocation.  [None] (metrics disabled) reduces the whole
   hot-loop instrumentation to one match on an immediate. *)
type probes = {
  ev_arrival : Dpm_obs.Metrics.counter;
  ev_arrival_lost : Dpm_obs.Metrics.counter;
  ev_service_done : Dpm_obs.Metrics.counter;
  ev_switch_done : Dpm_obs.Metrics.counter;
  ev_timer : Dpm_obs.Metrics.counter;
  ev_total : Dpm_obs.Metrics.counter;
  heap_depth_max : Dpm_obs.Metrics.gauge;
}

(* Per-segment accumulators: cumulative-integral marks taken at each
   boundary crossing, so segment metrics are exact differences of the
   same accumulators the global metrics use. *)
type seg_state = {
  bounds : float array;
  mutable seg_idx : int;
  mutable seg_open : float; (* start time of the open segment *)
  mutable power_mark : float;
  mutable count_mark : float;
  mutable gen_mark : int;
  mutable lost_mark : int;
  mutable comp_mark : int;
  mutable switch_mark : int;
  mutable seg_waiting : Stat.Welford.t;
  mutable closed : segment list; (* reverse order *)
}

type sim = {
  sp : Service_provider.t;
  capacity : int;
  ctl : Controller.t;
  decision_energy : float;
  observer : (snapshot -> unit) option;
  events : event Event_heap.t;
  arrival_rng : Rng.t;
  service_rng : Rng.t;
  switch_rng : Rng.t;
  workload : Workload.t;
  (* dynamic state *)
  mutable now : float;
  mutable mode : int;
  mutable switching : (int * Event_heap.handle) option;
  mutable in_transfer : bool;
  queue : float Queue.t; (* arrival timestamps, head = in service (if any) *)
  mutable serving : Event_heap.handle option;
  (* statistics *)
  power : Stat.Time_weighted.t;
  count : Stat.Time_weighted.t;
  waiting : Stat.Welford.t;
  residency : float array;
  mutable residency_mark : float;
  mutable generated : int;
  mutable accepted : int;
  mutable lost : int;
  mutable completed : int;
  mutable switch_count : int;
  mutable switch_energy : float;
  mutable decisions : int;
  mutable events_processed : int;
  probes : probes option;
  seg : seg_state option;
}

let close_segment s g ~upto =
  let width = upto -. g.seg_open in
  let power_now = Stat.Time_weighted.integral s.power ~upto in
  let count_now = Stat.Time_weighted.integral s.count ~upto in
  let avg integral = if width > 0.0 then integral /. width else 0.0 in
  let wt =
    if Stat.Welford.count g.seg_waiting = 0 then 0.0
    else Stat.Welford.mean g.seg_waiting
  in
  g.closed <-
    {
      seg_start = g.seg_open;
      seg_end = upto;
      seg_power = avg (power_now -. g.power_mark);
      seg_waiting_requests = avg (count_now -. g.count_mark);
      seg_waiting_time = wt;
      seg_generated = s.generated - g.gen_mark;
      seg_lost = s.lost - g.lost_mark;
      seg_completed = s.completed - g.comp_mark;
      seg_switches = s.switch_count - g.switch_mark;
    }
    :: g.closed;
  g.seg_open <- upto;
  g.power_mark <- power_now;
  g.count_mark <- count_now;
  g.gen_mark <- s.generated;
  g.lost_mark <- s.lost;
  g.comp_mark <- s.completed;
  g.switch_mark <- s.switch_count;
  g.seg_waiting <- Stat.Welford.create ()

(* Close every segment whose boundary is at or before [upto]; called
   before handling an event at [upto], so the accumulators still hold
   the pre-event signal and the integral up to the boundary is
   exact. *)
let flush_segments s ~upto =
  match s.seg with
  | None -> ()
  | Some g ->
      while
        g.seg_idx < Array.length g.bounds && g.bounds.(g.seg_idx) <= upto
      do
        close_segment s g ~upto:g.bounds.(g.seg_idx);
        g.seg_idx <- g.seg_idx + 1
      done

(* At end of run: remaining boundaries (past the horizon) all collapse
   to zero-width segments at [duration], so every run over the same
   boundary list reports the same number of segments. *)
let finalize_segments s ~duration =
  match s.seg with
  | None -> [||]
  | Some g ->
      while g.seg_idx < Array.length g.bounds do
        close_segment s g ~upto:(Float.min g.bounds.(g.seg_idx) duration);
        g.seg_idx <- g.seg_idx + 1
      done;
      close_segment s g ~upto:duration;
      Array.of_list (List.rev g.closed)

let observation s =
  {
    Controller.time = s.now;
    mode = s.mode;
    switching_to = Option.map fst s.switching;
    queue_length = Queue.length s.queue;
    in_transfer = s.in_transfer;
  }

let settle_residency s =
  s.residency.(s.mode) <- s.residency.(s.mode) +. (s.now -. s.residency_mark);
  s.residency_mark <- s.now

let cancel_switch s =
  match s.switching with
  | None -> ()
  | Some (_, h) ->
      Event_heap.cancel s.events h;
      s.switching <- None

let start_switch s target =
  cancel_switch s;
  let rate = Service_provider.switch_rate s.sp s.mode target in
  let delay = Dist.exponential_sample s.switch_rng ~rate in
  let h = Event_heap.push s.events ~time:(s.now +. delay) (Switch_done target) in
  s.switching <- Some (target, h)

let maybe_start_service s =
  if
    s.serving = None
    && (not s.in_transfer)
    && (not (Queue.is_empty s.queue))
    && Service_provider.is_active s.sp s.mode
  then begin
    let rate = Service_provider.service_rate s.sp s.mode in
    let delay = Dist.exponential_sample s.service_rng ~rate in
    s.serving <- Some (Event_heap.push s.events ~time:(s.now +. delay) Service_done)
  end

let apply_decision s (d : Controller.decision) =
  (match d.timer with
  | Some delay when delay >= 0.0 ->
      ignore (Event_heap.push s.events ~time:(s.now +. delay) Timer_fired)
  | Some _ | None -> ());
  (match d.target with
  | None -> ()
  | Some t when t < 0 || t >= Service_provider.num_modes s.sp ->
      invalid_arg "Power_sim: controller commanded an unknown mode"
  | Some t ->
      if t = s.mode then begin
        (* "Stay": cancel any pending switch; a transfer resolves
           instantly (the paper's infinite self-switch rate). *)
        cancel_switch s;
        s.in_transfer <- false
      end
      else begin
        let already = match s.switching with Some (t', _) -> t' = t | None -> false in
        if not already then begin
          (* Constraint (1): never pull an active SP off a request in
             flight.  The command is dropped; the controller will be
             consulted again on the next event. *)
          let service_in_progress = s.serving <> None in
          let target_inactive = not (Service_provider.is_active s.sp t) in
          if not (service_in_progress && target_inactive) then start_switch s t
        end
      end);
  maybe_start_service s

let consult s reason =
  s.decisions <- s.decisions + 1;
  if s.decision_energy > 0.0 then
    Stat.Time_weighted.add_impulse s.power s.decision_energy;
  apply_decision s (s.ctl.Controller.decide (observation s) reason)

let notify_observer s label =
  match s.observer with
  | None -> ()
  | Some f ->
      f
        {
          snap_time = s.now;
          snap_event = label;
          snap_mode = s.mode;
          snap_queue = Queue.length s.queue;
          snap_switching_to = Option.map fst s.switching;
          snap_in_transfer = s.in_transfer;
        }

let schedule_next_arrival s =
  match Workload.next_arrival s.workload s.arrival_rng ~now:s.now with
  | None -> ()
  | Some t -> ignore (Event_heap.push s.events ~time:t Arrival)

let handle_event s event =
  let label =
    match event with
  | Arrival ->
      s.generated <- s.generated + 1;
      schedule_next_arrival s;
      if Queue.length s.queue >= s.capacity then begin
        s.lost <- s.lost + 1;
        consult s Controller.Arrival_lost;
        "arrival_lost"
      end
      else begin
        Queue.add s.now s.queue;
        s.accepted <- s.accepted + 1;
        Stat.Time_weighted.update s.count ~at:s.now
          (float_of_int (Queue.length s.queue));
        consult s Controller.Arrival;
        "arrival"
      end
  | Service_done ->
      let level = Queue.length s.queue in
      let arrived = Queue.pop s.queue in
      Stat.Welford.add s.waiting (s.now -. arrived);
      (match s.seg with
      | Some g -> Stat.Welford.add g.seg_waiting (s.now -. arrived)
      | None -> ());
      s.completed <- s.completed + 1;
      s.serving <- None;
      s.in_transfer <- true;
      Stat.Time_weighted.update s.count ~at:s.now
        (float_of_int (Queue.length s.queue));
      consult s (Controller.Service_completed level);
      (* A controller that issues no command leaves the SP where it
         is, and an SP that is not switching keeps serving: resolve
         the transfer instantly rather than stall the server. *)
      if s.in_transfer && s.switching = None then begin
        s.in_transfer <- false;
        maybe_start_service s
      end;
      "service_done"
  | Switch_done target ->
      settle_residency s;
      s.switch_energy <-
        s.switch_energy +. Service_provider.switch_energy s.sp s.mode target;
      Stat.Time_weighted.add_impulse s.power
        (Service_provider.switch_energy s.sp s.mode target);
      s.switch_count <- s.switch_count + 1;
      s.mode <- target;
      s.switching <- None;
      s.in_transfer <- false;
      Stat.Time_weighted.update s.power ~at:s.now (Service_provider.power s.sp target);
      consult s Controller.Switch_completed;
      "switch_done"
  | Timer_fired ->
      consult s Controller.Timer;
      "timer"
  in
  s.events_processed <- s.events_processed + 1;
  (match s.probes with
  | None -> ()
  | Some p ->
      Dpm_obs.Metrics.incr p.ev_total;
      (* +1: the event just handled was already popped off the heap. *)
      Dpm_obs.Metrics.set_max p.heap_depth_max
        (float_of_int (Event_heap.size s.events + 1));
      Dpm_obs.Metrics.incr
        (match event with
        | Arrival ->
            if String.equal label "arrival_lost" then p.ev_arrival_lost
            else p.ev_arrival
        | Service_done -> p.ev_service_done
        | Switch_done _ -> p.ev_switch_done
        | Timer_fired -> p.ev_timer));
  notify_observer s label

let run ?(seed = 1L) ?initial_mode ?(decision_energy = 0.0) ?observer ?segments
    ~sys ~workload ~controller ~stop () =
  let sp = Sys_model.sp sys in
  let initial_mode =
    match initial_mode with
    | Some m ->
        if m < 0 || m >= Service_provider.num_modes sp then
          invalid_arg "Power_sim.run: bad initial mode";
        m
    | None -> Service_provider.fastest_active sp
  in
  (match stop with
  | Requests n when n <= 0 -> invalid_arg "Power_sim.run: request count must be positive"
  | Sim_time t when t <= 0.0 -> invalid_arg "Power_sim.run: horizon must be positive"
  | Requests _ | Sim_time _ -> ());
  let seg =
    match segments with
    | None | Some [] -> None
    | Some bounds ->
        let rec check prev = function
          | [] -> ()
          | b :: rest ->
              if b <= prev || not (Float.is_finite b) then
                invalid_arg
                  "Power_sim.run: segment boundaries must be positive, \
                   finite and strictly increasing";
              check b rest
        in
        check 0.0 bounds;
        Some
          {
            bounds = Array.of_list bounds;
            seg_idx = 0;
            seg_open = 0.0;
            power_mark = 0.0;
            count_mark = 0.0;
            gen_mark = 0;
            lost_mark = 0;
            comp_mark = 0;
            switch_mark = 0;
            seg_waiting = Stat.Welford.create ();
            closed = [];
          }
  in
  let probes =
    match Dpm_obs.Probe.current () with
    | None -> None
    | Some r ->
        let c = Dpm_obs.Metrics.counter r in
        Some
          {
            ev_arrival = c "sim.events.arrival";
            ev_arrival_lost = c "sim.events.arrival_lost";
            ev_service_done = c "sim.events.service_done";
            ev_switch_done = c "sim.events.switch_done";
            ev_timer = c "sim.events.timer";
            ev_total = c "sim.events.total";
            heap_depth_max = Dpm_obs.Metrics.gauge r "sim.heap_depth_max";
          }
  in
  let wall_start = if probes = None then 0.0 else Dpm_obs.Probe.now () in
  let root = Rng.create seed in
  let s =
    {
      sp;
      capacity = Sys_model.queue_capacity sys;
      ctl = controller;
      decision_energy;
      observer;
      events = Event_heap.create ();
      arrival_rng = Rng.split root;
      service_rng = Rng.split root;
      switch_rng = Rng.split root;
      workload;
      now = 0.0;
      mode = initial_mode;
      switching = None;
      in_transfer = false;
      queue = Queue.create ();
      serving = None;
      power = Stat.Time_weighted.create (Service_provider.power sp initial_mode);
      count = Stat.Time_weighted.create 0.0;
      waiting = Stat.Welford.create ();
      residency = Array.make (Service_provider.num_modes sp) 0.0;
      residency_mark = 0.0;
      generated = 0;
      accepted = 0;
      lost = 0;
      completed = 0;
      switch_count = 0;
      switch_energy = 0.0;
      decisions = 0;
      events_processed = 0;
      probes;
      seg;
    }
  in
  consult s Controller.Init;
  schedule_next_arrival s;
  let stop_now () =
    match stop with
    | Requests n -> s.generated >= n
    | Sim_time t -> s.now >= t
  in
  let horizon = match stop with Sim_time t -> Some t | Requests _ -> None in
  let rec loop () =
    if not (stop_now ()) then begin
      match Event_heap.pop s.events with
      | None -> () (* workload exhausted and nothing pending *)
      | Some (t, event) -> (
          match horizon with
          | Some h when t > h -> s.now <- h
          | Some _ | None ->
              flush_segments s ~upto:t;
              s.now <- t;
              handle_event s event;
              loop ())
    end
  in
  loop ();
  settle_residency s;
  if probes <> None then begin
    let wall = Dpm_obs.Probe.now () -. wall_start in
    Dpm_obs.Probe.incr "sim.runs";
    Dpm_obs.Probe.add "sim.decisions" s.decisions;
    Dpm_obs.Probe.record "sim.run_seconds" wall;
    Dpm_obs.Probe.record
      ("sim.controller." ^ s.ctl.Controller.name ^ ".run_seconds")
      wall;
    if wall > 0.0 then
      Dpm_obs.Probe.set "sim.events_per_second"
        (float_of_int s.events_processed /. wall)
  end;
  let duration = s.now in
  let residency_total = Array.fold_left ( +. ) 0.0 s.residency in
  {
    controller = s.ctl.Controller.name;
    duration;
    generated = s.generated;
    accepted = s.accepted;
    lost = s.lost;
    completed = s.completed;
    avg_power = Stat.Time_weighted.average s.power ~upto:duration;
    avg_waiting_requests = Stat.Time_weighted.average s.count ~upto:duration;
    avg_waiting_time = Stat.Welford.mean s.waiting;
    waiting_time_stderr = Stat.Welford.std_error s.waiting;
    loss_probability =
      (if s.generated > 0 then float_of_int s.lost /. float_of_int s.generated
       else 0.0);
    controller_decisions = s.decisions;
    switch_count = s.switch_count;
    switch_energy = s.switch_energy;
    mode_residency =
      (if residency_total > 0.0 then
         Array.map (fun x -> x /. residency_total) s.residency
       else s.residency);
    segments = finalize_segments s ~duration;
  }

let replicate ?seeds ?(seed = 1L) ?n ?domains ?segments ~sys ~workload
    ~controller ~stop () =
  let seeds =
    match (seeds, n) with
    | Some [], _ -> invalid_arg "Power_sim.replicate: empty seed list"
    | Some seeds, Some n when List.length seeds <> n ->
        invalid_arg
          (Printf.sprintf
             "Power_sim.replicate: ~n:%d contradicts the %d explicit seeds" n
             (List.length seeds))
    | Some seeds, _ -> seeds
    | None, n ->
        let n = Option.value n ~default:5 in
        if n <= 0 then
          invalid_arg "Power_sim.replicate: need at least one replication";
        Rng.seed_stream ~base:seed n
  in
  (* Each replication owns its RNG, workload, and controller, so runs
     are independent of scheduling and the parallel result is
     bit-identical to the sequential order.  The thunks are invoked
     from pool domains: they must be safe to call concurrently (all
     constructors in this repository are). *)
  Dpm_par.parallel_map_list ?domains
    (fun seed ->
      run ~seed ?segments ~sys ~workload:(workload ()) ~controller:(controller ())
        ~stop ())
    seeds

let pp ppf r =
  Format.fprintf ppf
    "%-14s power=%7.3f W  waiting=%6.4f req  wait=%6.3f s  loss=%5.2f%%  \
     switches=%d"
    r.controller r.avg_power r.avg_waiting_requests r.avg_waiting_time
    (100.0 *. r.loss_probability)
    r.switch_count
