open Dpm_core

type reason =
  | Init
  | Arrival
  | Arrival_lost
  | Service_completed of int
  | Switch_completed
  | Timer

type observation = {
  time : float;
  mode : int;
  switching_to : int option;
  queue_length : int;
  in_transfer : bool;
}

type decision = { target : int option; timer : float option }

type t = { name : string; decide : observation -> reason -> decision }

let no_change = { target = None; timer = None }

(* During the whole transfer period (service done, next not started)
   the model state is q_{i -> i-1} with i - 1 = current queue length;
   arrivals inside the transfer move between transfer states, so the
   lookup stays there. *)
let state_of_observation sys obs =
  let q_cap = Sys_model.queue_capacity sys in
  let sp = Sys_model.sp sys in
  if obs.in_transfer && Service_provider.is_active sp obs.mode then
    Sys_model.Transfer (obs.mode, max 1 (min (obs.queue_length + 1) q_cap))
  else Sys_model.Stable (obs.mode, min obs.queue_length q_cap)

let of_dynamic_policy ?(name = "ctmdp-policy") sys ~policy =
  let decide obs _reason =
    { target = Some ((policy ()) (state_of_observation sys obs)); timer = None }
  in
  { name; decide }

let of_time_policy ?(name = "time-policy") ?(wake = []) sys ~policy =
  List.iter
    (fun t ->
      if t < 0.0 || not (Float.is_finite t) then
        invalid_arg "Controller.of_time_policy: wake times must be >= 0 and finite")
    wake;
  let remaining = ref (List.sort_uniq compare wake) in
  let decide obs reason =
    let timer =
      (* Chain one timer through the wake list: Init requests the
         first boundary, each fired timer the next — so the policy is
         re-consulted at every boundary even during quiet stretches
         (a fleet plan parks or wakes servers there), and the heap
         carries at most one wake timer at a time. *)
      match reason with
      | Init | Timer ->
          let rec pop () =
            match !remaining with
            | t :: rest when t <= obs.time +. 1e-12 ->
                remaining := rest;
                pop ()
            | t :: _ -> Some (t -. obs.time)
            | [] -> None
          in
          pop ()
      | Arrival | Arrival_lost | Service_completed _ | Switch_completed -> None
    in
    { target = Some (policy obs.time (state_of_observation sys obs)); timer }
  in
  { name; decide }

let of_policy sys policy = of_dynamic_policy sys ~policy:(fun () -> policy)

let of_solution sys (s : Optimize.solution) = of_policy sys (Optimize.action_of sys s)

let heuristic_modes ?sleep_mode ?active_mode sys =
  let sp = Sys_model.sp sys in
  let sleep =
    match sleep_mode with Some m -> m | None -> Service_provider.deepest_sleep sp
  in
  let active =
    match active_mode with Some m -> m | None -> Service_provider.fastest_active sp
  in
  (sleep, active)

let always_on sys =
  let active = Service_provider.fastest_active (Sys_model.sp sys) in
  { name = "always-on"; decide = (fun _ _ -> { target = Some active; timer = None }) }

let greedy ?sleep_mode ?active_mode sys =
  let sleep, active = heuristic_modes ?sleep_mode ?active_mode sys in
  let decide obs _reason =
    if obs.queue_length > 0 then { target = Some active; timer = None }
    else { target = Some sleep; timer = None }
  in
  { name = "greedy"; decide }

let n_policy ?sleep_mode ?active_mode sys ~n =
  if n < 1 then invalid_arg "Controller.n_policy: n must be >= 1";
  let sleep, active = heuristic_modes ?sleep_mode ?active_mode sys in
  let sp = Sys_model.sp sys in
  let decide obs _reason =
    if obs.queue_length = 0 then { target = Some sleep; timer = None }
    else if obs.queue_length >= n then { target = Some active; timer = None }
    else if Service_provider.is_active sp obs.mode && obs.switching_to = None then
      (* 1 <= queue < n with the server up: serve exhaustively —
         explicitly re-command the current mode so a pending transfer
         resolves and the next service starts. *)
      { target = Some obs.mode; timer = None }
    else (* server down (or heading down): wait for the N-th request *)
      no_change
  in
  { name = Printf.sprintf "n-policy(%d)" n; decide }

let timeout ?sleep_mode ?active_mode sys ~delay =
  if delay < 0.0 || not (Float.is_finite delay) then
    invalid_arg "Controller.timeout: delay must be nonnegative and finite";
  let sleep, active = heuristic_modes ?sleep_mode ?active_mode sys in
  let sp = Sys_model.sp sys in
  (* [idle_since] is the clock value at which the system last became
     empty with the SP up; a fired timer compares against it so stale
     timers (the queue refilled meanwhile) are ignored. *)
  let idle_since = ref None in
  let decide obs reason =
    if obs.queue_length > 0 then begin
      idle_since := None;
      { target = Some active; timer = None }
    end
    else begin
      let is_up = Service_provider.is_active sp obs.mode && obs.switching_to = None in
      match reason with
      | Timer -> (
          match !idle_since with
          | Some since when obs.time -. since >= delay -. 1e-12 ->
              idle_since := None;
              { target = Some sleep; timer = None }
          | Some _ | None -> no_change)
      | Init | Arrival | Arrival_lost | Service_completed _ | Switch_completed ->
          if is_up && !idle_since = None then begin
            idle_since := Some obs.time;
            { target = None; timer = Some delay }
          end
          else no_change
    end
  in
  { name = Printf.sprintf "timeout(%g)" delay; decide }

let periodic ~period ~decide =
  if period <= 0.0 || not (Float.is_finite period) then
    invalid_arg "Controller.periodic: period must be positive and finite";
  let decide obs reason =
    match reason with
    | Init -> { target = None; timer = Some period }
    | Timer ->
        {
          target = Some (decide ~mode:obs.mode ~queue:obs.queue_length);
          timer = Some period;
        }
    | Arrival | Arrival_lost | Service_completed _ | Switch_completed ->
        no_change
  in
  { name = Printf.sprintf "periodic(%g)" period; decide }

let time_shared ~period ~fraction a b =
  if period <= 0.0 || not (Float.is_finite period) then
    invalid_arg "Controller.time_shared: period must be positive and finite";
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Controller.time_shared: fraction must be in [0, 1]";
  let decide obs reason =
    let phase = Float.rem obs.time period /. period in
    let da = a.decide obs reason and db = b.decide obs reason in
    let active = if phase < fraction then da else db in
    (* Wake ourselves at every scheduled handover so the incoming
       controller is consulted promptly even during quiet stretches.
       The next boundary is whichever of (fraction, 1) * period comes
       after the current phase. *)
    let next_boundary =
      let into = Float.rem obs.time period in
      let to_switch = (fraction *. period) -. into in
      let to_wrap = period -. into in
      let candidates = List.filter (fun d -> d > 1e-9) [ to_switch; to_wrap ] in
      List.fold_left Float.min infinity candidates
    in
    let timer =
      match active.timer with
      | Some t -> Some (Float.min t next_boundary)
      | None -> (
          match reason with
          | Init | Timer ->
              if Float.is_finite next_boundary then Some next_boundary else None
          | Arrival | Arrival_lost | Service_completed _ | Switch_completed ->
              None)
    in
    { target = active.target; timer }
  in
  {
    name = Printf.sprintf "time-shared(%.2f:%s|%s)" fraction a.name b.name;
    decide;
  }
