exception Cycling of int

type outcome =
  | Optimal of { x : Vec.t; objective : float; dual : Vec.t }
  | Infeasible
  | Unbounded

let check_feasible ?(tol = 1e-7) ~a ~b x =
  Vec.dim x = Matrix.cols a
  && Vec.dim b = Matrix.rows a
  && Array.for_all (fun v -> v >= -.tol) x
  && Vec.norm_inf (Vec.sub (Matrix.mul_vec a x) b) <= tol *. (1.0 +. Vec.norm_inf b)

(* Revised simplex: every iteration refactorizes the basis from the
   original column data, so no error accumulates across pivots — at
   the problem sizes this library needs (tens of rows) the O(m^3)
   per-iteration cost is irrelevant and the robustness is decisive on
   the highly degenerate occupation-measure LPs it exists for. *)

type phase_result = POptimal | PUnbounded

(* [columns.(j)] is column j of the extended constraint matrix;
   [basis.(i)] names the column basic in row i.  Runs the
   smallest-index entering rule to optimality for the given costs;
   [bland] switches the ratio-test tie-break from
   best-conditioned-pivot to smallest-basis-index, which together with
   the entering rule is textbook Bland and provably cycle-free. *)
let run_phase ~bland ~guard ~columns ~cost ~allowed ~b ~basis ~tol ~max_pivots =
  let m = Vec.dim b in
  let ncols = Array.length columns in
  let in_basis = Array.make ncols false in
  Array.iter (fun j -> in_basis.(j) <- true) basis;
  let pivots = ref 0 in
  let rec step () =
    guard ();
    if !pivots > max_pivots then begin
      Dpm_obs.Probe.incr "simplex.cycling";
      raise (Cycling !pivots)
    end;
    let bmat = Matrix.init m m (fun i k -> columns.(basis.(k)).(i)) in
    (* A looser LU pivot threshold: occupation-measure bases are badly
       scaled but genuinely nonsingular; partial pivoting still picks
       the best row. *)
    let lu = Lu.decompose ~pivot_tol:1e-18 bmat in
    let x_b = Lu.solve_factored lu b in
    (* Duals: B^T y = c_B. *)
    let y =
      Lu.solve (Matrix.init m m (fun i k -> columns.(basis.(i)).(k)))
        (Vec.init m (fun i -> cost.(basis.(i))))
    in
    (* Bland: the smallest-index improving non-basic column enters. *)
    let entering = ref (-1) in
    (try
       for j = 0 to ncols - 1 do
         if allowed j && not in_basis.(j) then begin
           let r = cost.(j) -. Vec.dot columns.(j) y in
           if r < -.tol then begin
             entering := j;
             raise Exit
           end
         end
       done
     with Exit -> ());
    if !entering < 0 then POptimal
    else begin
      let j = !entering in
      let d = Lu.solve_factored lu columns.(j) in
      (* Ratio test.  Ties (ubiquitous on the degenerate
         occupation-measure LPs) break toward the LARGEST pivot
         element: unlike textbook Bland this is not provably
         cycle-free, but it keeps every successive basis
         well-conditioned, and the pivot cap backstops the (never
         observed) cycling case. *)
      let leave = ref (-1) and best_ratio = ref infinity in
      (* Exact ratio test (every positive pivot is admissible — an
         exclusion threshold would let excluded basics go negative);
         ties break toward the largest pivot element for conditioning.
         Cycling is prevented by the deterministic perturbation of b
         in [minimize_core], which makes exact ratio ties
         vanishingly rare. *)
      for i = 0 to m - 1 do
        if d.(i) > tol then begin
          let ratio = Float.max 0.0 x_b.(i) /. d.(i) in
          let tie_break =
            !leave < 0
            || if bland then basis.(i) < basis.(!leave) else d.(i) > d.(!leave)
          in
          if
            ratio < !best_ratio -. 1e-12
            || (Float.abs (ratio -. !best_ratio) <= 1e-12 && tie_break)
          then begin
            leave := i;
            best_ratio := ratio
          end
        end
      done;
      if !leave < 0 then PUnbounded
      else begin
        in_basis.(basis.(!leave)) <- false;
        in_basis.(j) <- true;
        basis.(!leave) <- j;
        incr pivots;
        Dpm_obs.Probe.incr "simplex.pivots";
        Dpm_trace.Provenance.note_pivot ();
        step ()
      end
    end
  in
  step ()

(* A phase that blows its pivot budget with the conditioning-friendly
   tie-break is retried once under strict Bland (cycle-free in exact
   arithmetic) with a fresh budget; the basis reached so far is still
   feasible, so the retry resumes from it rather than starting over.
   A second blow-out is genuine numerical cycling: the typed
   [Cycling] escapes to the caller. *)
let run_phase_anticycling ~guard ~columns ~cost ~allowed ~b ~basis ~tol
    ~max_pivots =
  try
    run_phase ~bland:false ~guard ~columns ~cost ~allowed ~b ~basis ~tol
      ~max_pivots
  with Cycling _ ->
    Dpm_obs.Probe.incr "simplex.bland_retries";
    run_phase ~bland:true ~guard ~columns ~cost ~allowed ~b ~basis ~tol
      ~max_pivots

let minimize_core ?(max_pivots = 100_000) ?(tol = 1e-9) ~guard ~c ~a b =
  let m = Matrix.rows a and n = Matrix.cols a in
  if Vec.dim c <> n then invalid_arg "Simplex.minimize: cost dimension mismatch";
  if Vec.dim b <> m then invalid_arg "Simplex.minimize: rhs dimension mismatch";
  if m = 0 || n = 0 then invalid_arg "Simplex.minimize: empty program";
  (* Deterministic right-hand-side perturbation (classic degeneracy
     cure): distinct golden-ratio offsets make exact ratio-test ties
     — and hence cycling — practically impossible.  The final basic
     values are recomputed against the unperturbed b below. *)
  let b_exact = b in
  let b =
    Vec.init m (fun i ->
        let phi = Float.rem (float_of_int (i + 1) *. 0.618033988749895) 1.0 in
        b.(i) +. (1e-9 *. (0.5 +. phi)))
  in
  (* Extended columns: structural then artificial.  Artificial i has
     sign(b_i) at row i so the initial basic solution is |b| >= 0. *)
  let columns =
    Array.init (n + m) (fun j ->
        if j < n then Matrix.col a j
        else
          Vec.init m (fun i ->
              if i = j - n then if b.(i) < 0.0 then -1.0 else 1.0 else 0.0))
  in
  let basis = Array.init m (fun i -> n + i) in
  (* Phase 1: minimize the artificial mass. *)
  let phase1_cost = Array.init (n + m) (fun j -> if j >= n then 1.0 else 0.0) in
  (match
     run_phase_anticycling ~guard ~columns ~cost:phase1_cost
       ~allowed:(fun _ -> true)
       ~b ~basis ~tol ~max_pivots
   with
  | PUnbounded -> failwith "Simplex: phase 1 unbounded (impossible)"
  | POptimal -> ());
  let basic_values rhs =
    let bmat = Matrix.init m m (fun i k -> columns.(basis.(k)).(i)) in
    Lu.solve bmat rhs
  in
  let x_b = basic_values b in
  let artificial_mass = ref 0.0 in
  Array.iteri
    (fun k j -> if j >= n then artificial_mass := !artificial_mass +. Float.abs x_b.(k))
    basis;
  if !artificial_mass > 1e-7 *. (1.0 +. Vec.norm_inf b) then Infeasible
  else begin
    (* Drive zero-valued artificials out of the basis. *)
    for k = 0 to m - 1 do
      if basis.(k) >= n then begin
        let bmat = Matrix.init m m (fun i k' -> columns.(basis.(k')).(i)) in
        let lu = Lu.decompose bmat in
        let found = ref false in
        let in_basis j = Array.exists (fun bj -> bj = j) basis in
        for j = 0 to n - 1 do
          if (not !found) && not (in_basis j) then begin
            let d = Lu.solve_factored lu columns.(j) in
            if Float.abs d.(k) > 1e-7 then begin
              basis.(k) <- j;
              found := true
            end
          end
        done;
        if not !found then
          failwith
            "Simplex: redundant constraint row (drop dependent constraints \
             before calling)"
      end
    done;
    (* Phase 2 on the real costs; artificial columns are banned. *)
    let phase2_cost = Array.init (n + m) (fun j -> if j < n then c.(j) else 0.0) in
    match
      run_phase_anticycling ~guard ~columns ~cost:phase2_cost
        ~allowed:(fun j -> j < n)
        ~b ~basis ~tol ~max_pivots
    with
    | PUnbounded -> Unbounded
    | POptimal ->
        (* Evaluate the final basis against the exact rhs, undoing the
           anti-degeneracy perturbation. *)
        let x_b = basic_values b_exact in
        let x = Vec.create n in
        Array.iteri (fun k j -> if j < n then x.(j) <- Float.max 0.0 x_b.(k)) basis;
        let dual =
          match
            Lu.solve
              (Matrix.init m m (fun i k -> columns.(basis.(i)).(k)))
              (Vec.init m (fun i -> phase2_cost.(basis.(i))))
          with
          | y -> y
          | exception Lu.Singular _ -> Vec.create m
        in
        Optimal { x; objective = Vec.dot c x; dual }
  end

(* Public entry: Ruiz equilibration (alternating row/column scaling)
   before the core solve.  Equality constraints make row scaling
   exact; the column scaling is the substitution x = D_c x'.  The
   solution, objective and duals are mapped back to the original
   problem, so callers never see the scaling. *)
let minimize ?max_pivots ?tol ?(guard = fun () -> ()) ~c ~a b =
  let m = Matrix.rows a and n = Matrix.cols a in
  if Vec.dim c <> n then invalid_arg "Simplex.minimize: cost dimension mismatch";
  if Vec.dim b <> m then invalid_arg "Simplex.minimize: rhs dimension mismatch";
  if m = 0 || n = 0 then invalid_arg "Simplex.minimize: empty program";
  let row_scale = Array.make m 1.0 and col_scale = Array.make n 1.0 in
  let scaled = Matrix.copy a in
  for _ = 1 to 4 do
    for r = 0 to m - 1 do
      let biggest = ref 0.0 in
      for v = 0 to n - 1 do
        biggest := Float.max !biggest (Float.abs (Matrix.get scaled r v))
      done;
      if !biggest > 0.0 then begin
        let f = sqrt !biggest in
        row_scale.(r) <- row_scale.(r) *. f;
        for v = 0 to n - 1 do
          Matrix.set scaled r v (Matrix.get scaled r v /. f)
        done
      end
    done;
    for v = 0 to n - 1 do
      let biggest = ref 0.0 in
      for r = 0 to m - 1 do
        biggest := Float.max !biggest (Float.abs (Matrix.get scaled r v))
      done;
      if !biggest > 0.0 then begin
        let f = sqrt !biggest in
        col_scale.(v) <- col_scale.(v) *. f;
        for r = 0 to m - 1 do
          Matrix.set scaled r v (Matrix.get scaled r v /. f)
        done
      end
    done
  done;
  let b' = Vec.init m (fun r -> b.(r) /. row_scale.(r)) in
  let c' = Vec.init n (fun v -> c.(v) /. col_scale.(v)) in
  match minimize_core ?max_pivots ?tol ~guard ~c:c' ~a:scaled b' with
  | Infeasible -> Infeasible
  | Unbounded -> Unbounded
  | Optimal { x = x'; objective = _; dual = y' } ->
      let x = Vec.init n (fun v -> x'.(v) /. col_scale.(v)) in
      let dual = Vec.init m (fun r -> y'.(r) /. row_scale.(r)) in
      Optimal { x; objective = Vec.dot c x; dual }
