(** Linear programming: dense two-phase primal simplex.

    Built to reproduce the paper's efficiency claim against the linear
    programming formulation of policy optimization used by the
    DAC'98 baseline [11] (see {!Dpm_ctmdp.Lp_solver}); the problems
    there are small (tens of variables), so a dense tableau method
    with Bland's anti-cycling rule is entirely adequate — and easy to
    verify.

    Problems are in standard equality form:

    {v minimize c . x   subject to   A x = b,  x >= 0 v}

    Inequalities are the caller's business (add slack variables). *)

exception Cycling of int
(** Raised (with the pivot count) when a phase exhausts its pivot
    budget {e twice}: once under the default conditioning-friendly
    ratio-test tie-break and once more after the automatic retry under
    strict Bland's rule.  Exact-arithmetic cycling is impossible under
    Bland, so this signals floating-point cycling or a budget far too
    small for the problem. *)

type outcome =
  | Optimal of {
      x : Vec.t;  (** an optimal vertex *)
      objective : float;  (** [c . x] at the optimum *)
      dual : Vec.t;
          (** one dual variable per equality constraint; for the MDP
              LP these are the relative values / gain *)
    }
  | Infeasible  (** no [x >= 0] satisfies [A x = b] *)
  | Unbounded  (** the objective decreases without bound *)

val minimize :
  ?max_pivots:int ->
  ?tol:float ->
  ?guard:(unit -> unit) ->
  c:Vec.t ->
  a:Matrix.t ->
  Vec.t ->
  outcome
(** [minimize ~c ~a b] solves the standard-form program.  [tol]
    (default 1e-9) separates zero from nonzero in ratio tests and
    feasibility checks; [max_pivots] (default 100_000) bounds each
    phase.  A phase that blows the budget is retried once from its
    current (still feasible) basis under strict Bland's anti-cycling
    rule with a fresh budget; a second blow-out raises {!Cycling}.
    [guard] (default a no-op) is invoked before every pivot and may
    raise to abort the solve — the deadline hook used by
    [Dpm_robust].  Raises [Invalid_argument] on shape mismatches. *)

val check_feasible : ?tol:float -> a:Matrix.t -> b:Vec.t -> Vec.t -> bool
(** [check_feasible ~a ~b x] tests [A x = b] (within [tol], default
    1e-7) and [x >= -tol] — used by the tests and available to
    callers wanting a posteriori verification. *)
