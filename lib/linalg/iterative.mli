(** Iterative solvers for sparse systems.

    The dense LU path covers the paper's instance sizes; the
    queue-capacity ablation and any large composed model run through
    these matrix-free style iterations instead.  All iterations report
    convergence through the {!result} record rather than raising, so
    callers can decide how to treat a hit iteration cap.

    Every solver takes an optional [guard] callback, invoked once at
    the top of each sweep; it may raise to abort the iteration — the
    wall-clock-deadline hook threaded down by [Dpm_robust]. *)

type result = {
  solution : Vec.t;  (** last iterate *)
  iterations : int;  (** sweeps performed *)
  residual : float;  (** final convergence measure (see each solver) *)
  converged : bool;  (** whether [residual <= tol] was reached *)
}

val power_method :
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  ?init:Vec.t ->
  Sparse.t ->
  result
(** [power_method p] iterates [x <- x P] on a row-stochastic matrix
    [p] until the L1 change falls below [tol] (default [1e-12]), from
    [init] (default uniform).  The iterate is renormalized to sum 1
    every sweep, so the fixed point is the stationary distribution of
    the chain.  [residual] is the last L1 change. *)

val gauss_seidel_steady :
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  ?init:Vec.t ->
  Sparse.t ->
  result
(** [gauss_seidel_steady q] solves [p q = 0, sum p = 1] for an
    irreducible CTMC generator [q] by Gauss-Seidel sweeps on the
    normal form [p_j = (sum_{i<>j} p_i q_ij) / (-q_jj)].  Diagonal
    entries must be strictly negative (every state has an exit);
    a zero diagonal raises [Invalid_argument].  [residual] is
    [norm_inf (p q)] of the final normalized iterate. *)

val jacobi :
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  ?init:Vec.t ->
  Sparse.t ->
  Vec.t ->
  result
(** [jacobi a b] solves [a x = b] by Jacobi iteration (requires a
    nonzero diagonal; raises [Invalid_argument] otherwise).
    [residual] is [norm_inf (a x - b)]. *)

val gauss_seidel :
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  ?init:Vec.t ->
  Sparse.t ->
  Vec.t ->
  result
(** [gauss_seidel a b] solves [a x = b] by forward Gauss-Seidel
    sweeps; same diagonal requirement and residual as {!jacobi}. *)
