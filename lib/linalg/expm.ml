let one_norm m =
  (* Maximum absolute column sum. *)
  let n = Matrix.rows m and cols = Matrix.cols m in
  let best = ref 0.0 in
  for j = 0 to cols - 1 do
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. Float.abs (Matrix.get m i j)
    done;
    best := Float.max !best !acc
  done;
  !best

(* Pade(6,6) coefficients for exp. *)
let pade_coeffs = [| 1.0; 0.5; 5.0 /. 44.0; 1.0 /. 66.0; 1.0 /. 792.0; 1.0 /. 15840.0; 1.0 /. 665280.0 |]

(* Scaling-and-squaring at an explicit scaling parameter [s]; raises
   [Lu.Singular] when the Pade denominator cannot be factorized. *)
let expm_with_s a ~s =
  let n = Matrix.rows a in
  let scaled = Matrix.scale (1.0 /. (2.0 ** float_of_int s)) a in
  (* Evaluate numerator U + V and denominator U - V style split:
     p(A) = sum c_k A^k; q(A) = p(-A); exp(A) ~ q(A)^{-1} p(A). *)
  let p = ref (Matrix.scale pade_coeffs.(0) (Matrix.identity n)) in
  let q = ref (Matrix.scale pade_coeffs.(0) (Matrix.identity n)) in
  let power = ref (Matrix.identity n) in
  for k = 1 to Array.length pade_coeffs - 1 do
    power := Matrix.mul !power scaled;
    let term = Matrix.scale pade_coeffs.(k) !power in
    p := Matrix.add !p term;
    q :=
      (if k mod 2 = 0 then Matrix.add !q term
       else Matrix.sub !q term)
  done;
  (* Solve q X = p column by column. *)
  let x =
    let f = Lu.decompose !q in
    let dst = Matrix.create n n in
    for j = 0 to n - 1 do
      let col = Lu.solve_factored f (Matrix.col !p j) in
      for i = 0 to n - 1 do
        Matrix.set dst i j col.(i)
      done
    done;
    dst
  in
  (* Undo the scaling by repeated squaring. *)
  let result = ref x in
  for _ = 1 to s do
    result := Matrix.mul !result !result
  done;
  !result

let expm a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Expm.expm: matrix not square";
  if n = 0 then invalid_arg "Expm.expm: empty matrix";
  (* Scale so the norm is small enough for the Pade approximant. *)
  let norm = one_norm a in
  let s =
    if norm <= 0.5 then 0
    else int_of_float (Float.ceil (Float.log (norm /. 0.5) /. Float.log 2.0))
  in
  match expm_with_s a ~s with
  | x -> x
  | exception Lu.Singular _ ->
      (* A singular Pade denominator means the scaled norm was still
         too large for the approximant (wildly mixed magnitudes defeat
         the 1-norm estimate).  Scaling 16x further shrinks the
         denominator toward the identity; if even that factorization
         fails, the typed [Lu.Singular] escapes to the caller. *)
      Dpm_obs.Probe.incr "expm.rescale_retries";
      expm_with_s a ~s:(s + 4)

let transition_matrix g ~t =
  if t < 0.0 then invalid_arg "Expm.transition_matrix: negative time";
  expm (Matrix.scale t g)
