type t = {
  rows : int;
  cols : int;
  row_start : int array; (* length rows+1 *)
  col_index : int array; (* length nnz, sorted within each row *)
  values : float array; (* length nnz *)
}

type triplet = int * int * float

let rows s = s.rows
let cols s = s.cols
let nnz s = Array.length s.values

let of_triplets ~rows ~cols ts =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triplets: negative shape";
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= rows || j < 0 || j >= cols then
        invalid_arg
          (Printf.sprintf "Sparse.of_triplets: (%d,%d) out of shape %dx%d" i j
             rows cols))
    ts;
  (* Sort by (row, col) then merge duplicates, dropping exact zeros. *)
  let arr = Array.of_list ts in
  Array.sort
    (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then compare i1 i2 else compare j1 j2)
    arr;
  let merged = ref [] and count = ref 0 in
  let flush (i, j, v) = if v <> 0.0 then begin merged := (i, j, v) :: !merged; incr count end in
  let pending = ref None in
  Array.iter
    (fun (i, j, v) ->
      match !pending with
      | None -> pending := Some (i, j, v)
      | Some (i', j', v') when i = i' && j = j' -> pending := Some (i, j, v +. v')
      | Some p ->
          flush p;
          pending := Some (i, j, v))
    arr;
  (match !pending with None -> () | Some p -> flush p);
  let entries = Array.of_list (List.rev !merged) in
  let n = Array.length entries in
  let row_start = Array.make (rows + 1) 0 in
  Array.iter (fun (i, _, _) -> row_start.(i + 1) <- row_start.(i + 1) + 1) entries;
  for i = 1 to rows do
    row_start.(i) <- row_start.(i) + row_start.(i - 1)
  done;
  let col_index = Array.make n 0 and values = Array.make n 0.0 in
  Array.iteri
    (fun k (_, j, v) ->
      col_index.(k) <- j;
      values.(k) <- v)
    entries;
  { rows; cols; row_start; col_index; values }

let of_dense m =
  let ts = ref [] in
  for i = Matrix.rows m - 1 downto 0 do
    for j = Matrix.cols m - 1 downto 0 do
      let x = Matrix.get m i j in
      if x <> 0.0 then ts := (i, j, x) :: !ts
    done
  done;
  of_triplets ~rows:(Matrix.rows m) ~cols:(Matrix.cols m) !ts

let to_dense s =
  let m = Matrix.create s.rows s.cols in
  for i = 0 to s.rows - 1 do
    for k = s.row_start.(i) to s.row_start.(i + 1) - 1 do
      Matrix.set m i s.col_index.(k) s.values.(k)
    done
  done;
  m

let identity n = of_triplets ~rows:n ~cols:n (List.init n (fun i -> (i, i, 1.0)))

let get s i j =
  if i < 0 || i >= s.rows || j < 0 || j >= s.cols then
    invalid_arg "Sparse.get: index out of shape";
  let lo = ref s.row_start.(i) and hi = ref (s.row_start.(i + 1) - 1) in
  let found = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = s.col_index.(mid) in
    if c = j then begin
      found := s.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_row s i f =
  if i < 0 || i >= s.rows then invalid_arg "Sparse.iter_row: bad row";
  for k = s.row_start.(i) to s.row_start.(i + 1) - 1 do
    f s.col_index.(k) s.values.(k)
  done

let iter s f =
  for i = 0 to s.rows - 1 do
    iter_row s i (fun j x -> f i j x)
  done

let triplets s =
  let acc = ref [] in
  iter s (fun i j x -> acc := (i, j, x) :: !acc);
  List.rev !acc

let map f s =
  of_triplets ~rows:s.rows ~cols:s.cols
    (List.map (fun (i, j, x) -> (i, j, f x)) (triplets s))

let scale a s = map (fun x -> a *. x) s

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Sparse.add: shape mismatch";
  of_triplets ~rows:a.rows ~cols:a.cols (triplets a @ triplets b)

let transpose s =
  of_triplets ~rows:s.cols ~cols:s.rows
    (List.map (fun (i, j, x) -> (j, i, x)) (triplets s))

let mul_vec_into s v ~dst =
  if Vec.dim v <> s.cols then
    invalid_arg "Sparse.mul_vec_into: dimension mismatch";
  if Vec.dim dst <> s.rows then
    invalid_arg "Sparse.mul_vec_into: destination dimension mismatch";
  (* Hoisted accumulator: the sweep allocates nothing. *)
  let acc = ref 0.0 in
  for i = 0 to s.rows - 1 do
    acc := 0.0;
    for k = s.row_start.(i) to s.row_start.(i + 1) - 1 do
      acc := !acc +. (s.values.(k) *. v.(s.col_index.(k)))
    done;
    dst.(i) <- !acc
  done

let mul_vec s v =
  if Vec.dim v <> s.cols then invalid_arg "Sparse.mul_vec: dimension mismatch";
  let dst = Vec.create s.rows in
  mul_vec_into s v ~dst;
  dst

let vec_mul v s =
  if Vec.dim v <> s.rows then invalid_arg "Sparse.vec_mul: dimension mismatch";
  let out = Vec.create s.cols in
  for i = 0 to s.rows - 1 do
    let vi = v.(i) in
    if vi <> 0.0 then iter_row s i (fun j x -> out.(j) <- out.(j) +. (vi *. x))
  done;
  out

let mul a b =
  if a.cols <> b.rows then invalid_arg "Sparse.mul: shape mismatch";
  (* Row-by-row accumulation into a hash table keyed by column. *)
  let ts = ref [] in
  for i = 0 to a.rows - 1 do
    let acc = Hashtbl.create 16 in
    iter_row a i (fun k aik ->
        iter_row b k (fun j bkj ->
            let prev = Option.value (Hashtbl.find_opt acc j) ~default:0.0 in
            Hashtbl.replace acc j (prev +. (aik *. bkj))));
    Hashtbl.iter (fun j x -> ts := (i, j, x) :: !ts) acc
  done;
  of_triplets ~rows:a.rows ~cols:b.cols !ts

let row_sums s =
  Vec.init s.rows (fun i ->
      let acc = ref 0.0 in
      iter_row s i (fun _ x -> acc := !acc +. x);
      !acc)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Matrix.approx_equal ~tol (to_dense a) (to_dense b)

let pp ppf s =
  Format.fprintf ppf "@[<hov>%dx%d nnz=%d:@ " s.rows s.cols (nnz s);
  iter s (fun i j x -> Format.fprintf ppf "(%d,%d)=%g;@ " i j x);
  Format.fprintf ppf "@]"
