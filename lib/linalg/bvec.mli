(** Flat [Bigarray] state vectors (float64, C layout).

    The Bigarray-backed counterpart of {!Vec} for the implicit-operator
    hot loops: unboxed storage outside the OCaml heap, so Gauss-Seidel
    sweeps and mat-vecs over millions of states neither box floats nor
    create GC pressure.  The type is exposed as a plain
    [Bigarray.Array1.t] so kernels can use [Array1.unsafe_get] directly
    where profiling justifies it. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** A flat float64 vector in C layout. *)

val create : int -> t
(** [create n] is a fresh zero-filled vector of dimension [n]. *)

val make : int -> float -> t
(** [make n x] is a fresh vector of dimension [n] filled with [x]. *)

val dim : t -> int
(** [dim v] is the number of entries. *)

val get : t -> int -> float
(** [get v i] is entry [i] (bounds-checked). *)

val set : t -> int -> float -> unit
(** [set v i x] stores [x] at entry [i] (bounds-checked). *)

val fill : t -> float -> unit
(** [fill v x] sets every entry to [x]. *)

val blit : src:t -> dst:t -> unit
(** [blit ~src ~dst] copies [src] into [dst].  Raises
    [Invalid_argument] on dimension mismatch. *)

val copy : t -> t
(** [copy v] is a fresh vector with the same entries. *)

val of_vec : Vec.t -> t
(** [of_vec v] copies a boxed {!Vec.t} into a fresh Bigarray vector. *)

val to_vec : t -> Vec.t
(** [to_vec v] copies back into a boxed {!Vec.t} (for interop with the
    dense/sparse solvers and result records). *)

val sum : t -> float
(** [sum v] is the entry sum, accumulated in index order (the same
    order as {!Vec.sum}, so normalizations agree bitwise). *)

val norm_inf : t -> float
(** [norm_inf v] is [max_i |v_i|]. *)

val norm1 : t -> float
(** [norm1 v] is [sum_i |v_i|], accumulated in index order. *)

val scale_inplace : float -> t -> unit
(** [scale_inplace a v] multiplies every entry by [a] in place. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison within absolute tolerance [tol] (default
    [1e-9]); [false] on dimension mismatch. *)

val pp : Format.formatter -> t -> unit
(** Prints as [[x0; x1; ...]]. *)
