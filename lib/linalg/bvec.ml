open Bigarray

type t = (float, float64_elt, c_layout) Array1.t

let create n =
  let v = Array1.create Float64 C_layout n in
  Array1.fill v 0.0;
  v

let make n x =
  let v = Array1.create Float64 C_layout n in
  Array1.fill v x;
  v

let dim = Array1.dim
let get v i = Array1.get v i
let set v i x = Array1.set v i x
let fill v x = Array1.fill v x

let blit ~src ~dst =
  if Array1.dim src <> Array1.dim dst then
    invalid_arg
      (Printf.sprintf "Bvec.blit: dimension mismatch (%d vs %d)"
         (Array1.dim src) (Array1.dim dst));
  Array1.blit src dst

let copy v =
  let w = Array1.create Float64 C_layout (Array1.dim v) in
  Array1.blit v w;
  w

let of_vec a =
  let n = Array.length a in
  let v = Array1.create Float64 C_layout n in
  for i = 0 to n - 1 do
    Array1.unsafe_set v i (Array.unsafe_get a i)
  done;
  v

let to_vec v =
  let n = Array1.dim v in
  Array.init n (fun i -> Array1.unsafe_get v i)

let sum v =
  let acc = ref 0.0 in
  for i = 0 to Array1.dim v - 1 do
    acc := !acc +. Array1.unsafe_get v i
  done;
  !acc

let norm_inf v =
  let m = ref 0.0 in
  for i = 0 to Array1.dim v - 1 do
    m := Float.max !m (Float.abs (Array1.unsafe_get v i))
  done;
  !m

let norm1 v =
  let acc = ref 0.0 in
  for i = 0 to Array1.dim v - 1 do
    acc := !acc +. Float.abs (Array1.unsafe_get v i)
  done;
  !acc

let scale_inplace a v =
  for i = 0 to Array1.dim v - 1 do
    Array1.unsafe_set v i (a *. Array1.unsafe_get v i)
  done

let approx_equal ?(tol = 1e-9) u v =
  Array1.dim u = Array1.dim v
  &&
  let ok = ref true in
  for i = 0 to Array1.dim u - 1 do
    if Float.abs (Array1.unsafe_get u i -. Array1.unsafe_get v i) > tol then
      ok := false
  done;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[";
  for i = 0 to Array1.dim v - 1 do
    if i > 0 then Format.fprintf ppf ";@ ";
    Format.fprintf ppf "%g" (Array1.get v i)
  done;
  Format.fprintf ppf "@]]"
