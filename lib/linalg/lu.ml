exception Singular of int

type t = {
  lu : Matrix.t; (* packed L (unit diagonal, below) and U (on/above) *)
  perm : int array; (* row permutation: row [i] of U came from [perm.(i)] *)
  sign : float; (* permutation parity, for determinants *)
}

let decompose ?(pivot_tol = 1e-13) a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.decompose: matrix not square";
  Dpm_obs.Probe.incr "lu.factorizations";
  let lu = Matrix.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  let scale = Float.max 1.0 (Matrix.max_abs a) in
  let threshold = pivot_tol *. scale in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry of column k
       to the diagonal. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Matrix.get lu i k) > Float.abs (Matrix.get lu !pivot_row k)
      then pivot_row := i
    done;
    if !pivot_row <> k then begin
      let rk = Matrix.row lu k and rp = Matrix.row lu !pivot_row in
      Matrix.set_row lu k rp;
      Matrix.set_row lu !pivot_row rk;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- t;
      sign := -. !sign
    end;
    let pivot = Matrix.get lu k k in
    if Float.abs pivot < threshold then begin
      Dpm_obs.Probe.incr "lu.singular";
      raise (Singular k)
    end;
    for i = k + 1 to n - 1 do
      let factor = Matrix.get lu i k /. pivot in
      Matrix.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Matrix.set lu i j (Matrix.get lu i j -. (factor *. Matrix.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_factored { lu; perm; _ } b =
  let n = Matrix.rows lu in
  if Vec.dim b <> n then invalid_arg "Lu.solve_factored: dimension mismatch";
  Dpm_obs.Probe.incr "lu.solves";
  (* Forward substitution with the permuted right-hand side. *)
  let y = Vec.init n (fun i -> b.(perm.(i))) in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      y.(i) <- y.(i) -. (Matrix.get lu i j *. y.(j))
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      y.(i) <- y.(i) -. (Matrix.get lu i j *. y.(j))
    done;
    y.(i) <- y.(i) /. Matrix.get lu i i
  done;
  y

let solve ?pivot_tol a b = solve_factored (decompose ?pivot_tol a) b

let solve_many ?pivot_tol a bs =
  let f = decompose ?pivot_tol a in
  List.map (solve_factored f) bs

let det { lu; sign; _ } =
  let n = Matrix.rows lu in
  let d = ref sign in
  for i = 0 to n - 1 do
    d := !d *. Matrix.get lu i i
  done;
  !d

let inverse ?pivot_tol a =
  let n = Matrix.rows a in
  let f = decompose ?pivot_tol a in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Vec.create n in
    e.(j) <- 1.0;
    let x = solve_factored f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j x.(i)
    done
  done;
  inv

let residual_norm a x b = Vec.norm_inf (Vec.sub (Matrix.mul_vec a x) b)
