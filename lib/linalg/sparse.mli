(** Compressed-sparse-row (CSR) matrices.

    Generator matrices of composed power-managed systems are sparse:
    each state has O(|S|) outgoing transitions while the state space
    grows as |S| * Q.  The queue-capacity ablation (Q up to thousands)
    runs on this representation.

    Construction goes through a list of [(row, col, value)] triplets;
    duplicate coordinates are summed, explicit zeros are dropped. *)

type t

type triplet = int * int * float
(** [(row, col, value)]. *)

val of_triplets : rows:int -> cols:int -> triplet list -> t
(** [of_triplets ~rows ~cols ts] builds a CSR matrix.  Triplets with
    out-of-range coordinates raise [Invalid_argument]; duplicates are
    summed; entries that sum to exactly [0.] are kept out of the
    structure — they contribute neither to {!nnz} nor to {!iter_row},
    an invariant the implicit-operator fallback paths rely on (pinned
    by a regression test). *)

val of_dense : Matrix.t -> t
(** [of_dense m] keeps the nonzero entries of [m]. *)

val to_dense : t -> Matrix.t
(** [to_dense s] expands to a dense matrix. *)

val identity : int -> t
(** [identity n] is the sparse [n x n] identity. *)

val rows : t -> int
(** Number of rows. *)

val cols : t -> int
(** Number of columns. *)

val nnz : t -> int
(** Number of structurally stored entries. *)

val get : t -> int -> int -> float
(** [get s i j] is entry [(i, j)] ([0.] when not stored).  Cost is
    O(log nnz(row i)) by binary search on the sorted column indices. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row s i f] applies [f j x] to the stored entries of row [i]
    in increasing column order. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** [iter s f] applies [f i j x] to every stored entry. *)

val map : (float -> float) -> t -> t
(** [map f s] applies [f] to stored entries only (structural zeros are
    untouched), dropping entries that become [0.]. *)

val scale : float -> t -> t
(** [scale a s] multiplies the stored entries by [a]. *)

val add : t -> t -> t
(** [add a b] is the sparse sum.  Raises [Invalid_argument] on shape
    mismatch. *)

val transpose : t -> t
(** [transpose s] is the CSR transpose. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec s v] is [s v] (allocates the result; see
    {!mul_vec_into} for the allocation-free form used in sweep inner
    loops). *)

val mul_vec_into : t -> Vec.t -> dst:Vec.t -> unit
(** [mul_vec_into s v ~dst] stores [s v] in [dst] without allocating.
    [dst] must not alias [v]; accumulation order matches {!mul_vec},
    so residuals computed either way agree bitwise.  Raises
    [Invalid_argument] on dimension mismatch. *)

val vec_mul : Vec.t -> t -> Vec.t
(** [vec_mul v s] is the row-vector product [v s]. *)

val mul : t -> t -> t
(** [mul a b] is the sparse matrix product. *)

val row_sums : t -> Vec.t
(** [row_sums s] is the vector of row sums. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison (over the union of the sparsity patterns)
    within absolute tolerance [tol], default [1e-9]. *)

val pp : Format.formatter -> t -> unit
(** Prints the triplet list, e.g. [(0,1) 3.5; (2,0) -1]. *)
