(* Lazy linear operators.  The representation is the expression tree
   itself; every kernel below works off [iter_row], which may emit the
   same column more than once (Kron_sum diagonals, overlapping sums) —
   all consumers accumulate. *)

open Bigarray

type t =
  | Dense of Matrix.t
  | Csr of Sparse.t
  | Diag of float array
  | Kron_prod of t * t
  | Kron_sum of t * t
  | Scaled of float * t
  | Shifted of t * float
  | Sum of t * t
  | Blocks of {
      row_off : int array; (* cumulative, length #block-rows + 1 *)
      col_off : int array;
      cells : t option array array;
    }
  | Rows of { r : int; c : int; iter : int -> (int -> float -> unit) -> unit }

let rec rows = function
  | Dense m -> Matrix.rows m
  | Csr s -> Sparse.rows s
  | Diag d -> Array.length d
  | Kron_prod (a, b) -> rows a * rows b
  | Kron_sum (a, b) -> rows a * rows b
  | Scaled (_, a) -> rows a
  | Shifted (a, _) -> rows a
  | Sum (a, _) -> rows a
  | Blocks { row_off; _ } -> row_off.(Array.length row_off - 1)
  | Rows { r; _ } -> r

let rec cols = function
  | Dense m -> Matrix.cols m
  | Csr s -> Sparse.cols s
  | Diag d -> Array.length d
  | Kron_prod (a, b) -> cols a * cols b
  | Kron_sum (a, b) -> cols a * cols b
  | Scaled (_, a) -> cols a
  | Shifted (a, _) -> cols a
  | Sum (a, _) -> cols a
  | Blocks { col_off; _ } -> col_off.(Array.length col_off - 1)
  | Rows { c; _ } -> c

(* --- constructors --------------------------------------------------- *)

let dense m = Dense m
let csr s = Csr s
let diag d = Diag d
let identity n = Diag (Array.make n 1.0)

let of_rows ~rows ~cols iter =
  if rows < 0 || cols < 0 then invalid_arg "Operator.of_rows: negative shape";
  Rows { r = rows; c = cols; iter }

let kron_prod a b = Kron_prod (a, b)

let require_square name op =
  if rows op <> cols op then
    invalid_arg (Printf.sprintf "Operator.%s: operator is not square" name)

let kron_sum a b =
  require_square "kron_sum" a;
  require_square "kron_sum" b;
  Kron_sum (a, b)

let scaled c a = Scaled (c, a)

let shifted a c =
  require_square "shifted" a;
  Shifted (a, c)

let sum a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg
      (Printf.sprintf "Operator.sum: shape mismatch (%dx%d vs %dx%d)" (rows a)
         (cols a) (rows b) (cols b));
  Sum (a, b)

let offsets_of dims =
  let off = Array.make (Array.length dims + 1) 0 in
  Array.iteri
    (fun k d ->
      if d < 0 then invalid_arg "Operator.blocks: negative block dimension";
      off.(k + 1) <- off.(k) + d)
    dims;
  off

let blocks ~row_dims ~col_dims cells =
  if Array.length cells <> Array.length row_dims then
    invalid_arg "Operator.blocks: cell grid height mismatch";
  Array.iteri
    (fun bi row ->
      if Array.length row <> Array.length col_dims then
        invalid_arg "Operator.blocks: ragged cell grid";
      Array.iteri
        (fun bj cell ->
          match cell with
          | None -> ()
          | Some op ->
              if rows op <> row_dims.(bi) || cols op <> col_dims.(bj) then
                invalid_arg
                  (Printf.sprintf
                     "Operator.blocks: cell (%d,%d) is %dx%d, expected %dx%d"
                     bi bj (rows op) (cols op) row_dims.(bi) col_dims.(bj)))
        row)
    cells;
  Blocks { row_off = offsets_of row_dims; col_off = offsets_of col_dims; cells }

(* --- row access ----------------------------------------------------- *)

let rec iter_row op i f =
  match op with
  | Dense m ->
      for j = 0 to Matrix.cols m - 1 do
        let x = Matrix.get m i j in
        if x <> 0.0 then f j x
      done
  | Csr s -> Sparse.iter_row s i f
  | Diag d ->
      let x = d.(i) in
      if x <> 0.0 then f i x
  | Kron_prod (a, b) ->
      let rb = rows b and cb = cols b in
      let ia = i / rb and ib = i mod rb in
      iter_row a ia (fun ja xa ->
          let base = ja * cb in
          iter_row b ib (fun jb xb -> f (base + jb) (xa *. xb)))
  | Kron_sum (a, b) ->
      let nb = rows b in
      let ia = i / nb and ib = i mod nb in
      iter_row a ia (fun ja xa -> f ((ja * nb) + ib) xa);
      let base = ia * nb in
      iter_row b ib (fun jb xb -> f (base + jb) xb)
  | Scaled (c, a) -> iter_row a i (fun j x -> f j (c *. x))
  | Shifted (a, c) ->
      iter_row a i f;
      if c <> 0.0 then f i c
  | Sum (a, b) ->
      iter_row a i f;
      iter_row b i f
  | Blocks { row_off; col_off; cells } ->
      let bi = ref 0 in
      while row_off.(!bi + 1) <= i do
        incr bi
      done;
      let li = i - row_off.(!bi) in
      Array.iteri
        (fun bj cell ->
          match cell with
          | None -> ()
          | Some op' ->
              let c0 = col_off.(bj) in
              iter_row op' li (fun j x -> f (c0 + j) x))
        cells.(!bi)
  | Rows { iter; _ } -> iter i f

let get op i j =
  if i < 0 || i >= rows op || j < 0 || j >= cols op then
    invalid_arg "Operator.get: index out of shape";
  let acc = ref 0.0 in
  iter_row op i (fun j' x -> if j' = j then acc := !acc +. x);
  !acc

let diagonal op =
  require_square "diagonal" op;
  let n = rows op in
  let d = Array.make n 0.0 in
  for i = 0 to n - 1 do
    iter_row op i (fun j x -> if j = i then d.(i) <- d.(i) +. x)
  done;
  d

let rec transpose = function
  | Dense m -> Dense (Matrix.transpose m)
  | Csr s -> Csr (Sparse.transpose s)
  | Diag d -> Diag d
  | Kron_prod (a, b) -> Kron_prod (transpose a, transpose b)
  | Kron_sum (a, b) -> Kron_sum (transpose a, transpose b)
  | Scaled (c, a) -> Scaled (c, transpose a)
  | Shifted (a, c) -> Shifted (transpose a, c)
  | Sum (a, b) -> Sum (transpose a, transpose b)
  | Blocks { row_off; col_off; cells } ->
      let nr = Array.length cells
      and nc = if Array.length cells = 0 then 0 else Array.length cells.(0) in
      let cells' =
        Array.init nc (fun bj ->
            Array.init nr (fun bi -> Option.map transpose cells.(bi).(bj)))
      in
      Blocks { row_off = col_off; col_off = row_off; cells = cells' }
  | Rows _ ->
      invalid_arg "Operator.transpose: of_rows leaves carry no column structure"

(* --- materialization and cost accounting ---------------------------- *)

let to_dense op =
  let m = Matrix.create (rows op) (cols op) in
  for i = 0 to rows op - 1 do
    iter_row op i (fun j x -> Matrix.update m i j (fun y -> y +. x))
  done;
  m

let to_sparse op =
  let ts = ref [] in
  for i = rows op - 1 downto 0 do
    iter_row op i (fun j x -> ts := (i, j, x) :: !ts)
  done;
  Sparse.of_triplets ~rows:(rows op) ~cols:(cols op) !ts

let rec stored_floats = function
  | Dense m -> Matrix.rows m * Matrix.cols m
  | Csr s -> Sparse.nnz s
  | Diag d -> Array.length d
  | Kron_prod (a, b) | Kron_sum (a, b) | Sum (a, b) ->
      stored_floats a + stored_floats b
  | Scaled (_, a) | Shifted (a, _) -> stored_floats a
  | Blocks { cells; _ } ->
      Array.fold_left
        (fun acc row ->
          Array.fold_left
            (fun acc cell ->
              match cell with None -> acc | Some op -> acc + stored_floats op)
            acc row)
        0 cells
  | Rows _ -> 0

let count_dense_nnz m =
  let n = ref 0 in
  for i = 0 to Matrix.rows m - 1 do
    for j = 0 to Matrix.cols m - 1 do
      if Matrix.get m i j <> 0.0 then incr n
    done
  done;
  !n

let rec materialized_nnz = function
  | Dense m -> count_dense_nnz m
  | Csr s -> Sparse.nnz s
  | Diag d -> Array.fold_left (fun acc x -> if x <> 0.0 then acc + 1 else acc) 0 d
  | Kron_prod (a, b) -> materialized_nnz a * materialized_nnz b
  | Kron_sum (a, b) ->
      (materialized_nnz a * rows b) + (rows a * materialized_nnz b)
  | Scaled (c, a) -> if c = 0.0 then 0 else materialized_nnz a
  | Shifted (a, c) ->
      materialized_nnz a + (if c = 0.0 then 0 else rows a)
  | Sum (a, b) -> materialized_nnz a + materialized_nnz b
  | Blocks { cells; _ } ->
      Array.fold_left
        (fun acc row ->
          Array.fold_left
            (fun acc cell ->
              match cell with
              | None -> acc
              | Some op -> acc + materialized_nnz op)
            acc row)
        0 cells
  | Rows ({ r; _ } as leaf) ->
      let n = ref 0 in
      for i = 0 to r - 1 do
        leaf.iter i (fun _ _ -> incr n)
      done;
      !n

(* --- kernels --------------------------------------------------------- *)

let count_matvec () = Dpm_obs.Probe.incr "operator.matvecs"
let count_sweeps n = Dpm_obs.Probe.add "operator.sweeps" n

let matvec op x ~dst =
  if Bvec.dim x <> cols op then
    invalid_arg "Operator.matvec: vector dimension mismatch";
  if Bvec.dim dst <> rows op then
    invalid_arg "Operator.matvec: destination dimension mismatch";
  count_matvec ();
  (* One accumulator closure for the whole product: no per-row
     allocation. *)
  let acc = ref 0.0 in
  let f j a = acc := !acc +. (a *. Array1.unsafe_get x j) in
  for i = 0 to rows op - 1 do
    acc := 0.0;
    iter_row op i f;
    Array1.unsafe_set dst i !acc
  done

(* Residual max_i |(op x)_i - b_i| off the live iterate; shares the
   accumulator-closure pattern with [matvec] (not counted as one). *)
let residual_against op x b =
  let acc = ref 0.0 in
  let f j a = acc := !acc +. (a *. Array1.unsafe_get x j) in
  let r = ref 0.0 in
  for i = 0 to rows op - 1 do
    acc := 0.0;
    iter_row op i f;
    r := Float.max !r (Float.abs (!acc -. Array.unsafe_get b i))
  done;
  !r

let nonzero_diagonal name op =
  let d = diagonal op in
  Array.iteri
    (fun i x ->
      if x = 0.0 then
        invalid_arg
          (Printf.sprintf "Operator.%s: zero accumulated diagonal at row %d"
             name i))
    d;
  d

(* A sweep order must visit every row exactly once. *)
let check_order name n = function
  | None -> Array.init n (fun i -> i)
  | Some order ->
      if Array.length order <> n then
        invalid_arg
          (Printf.sprintf "Operator.%s: sweep order has length %d, expected %d"
             name (Array.length order) n);
      let seen = Array.make n false in
      Array.iter
        (fun i ->
          if i < 0 || i >= n || seen.(i) then
            invalid_arg
              (Printf.sprintf "Operator.%s: sweep order is not a permutation"
                 name);
          seen.(i) <- true)
        order;
      order

let gauss_seidel ?(tol = 1e-10) ?(max_iter = 100_000) ?(guard = fun () -> ())
    ?init ?order op b =
  require_square "gauss_seidel" op;
  let n = rows op in
  if Vec.dim b <> n then
    invalid_arg "Operator.gauss_seidel: rhs dimension mismatch";
  let order = check_order "gauss_seidel" n order in
  let d = nonzero_diagonal "gauss_seidel" op in
  let x =
    match init with
    | Some v ->
        if Vec.dim v <> n then
          invalid_arg "Operator.gauss_seidel: init dimension mismatch";
        Bvec.of_vec v
    | None -> Bvec.create n
  in
  (* The row sum accumulates every emitted entry, including the
     (possibly repeated) diagonal; subtracting [d_i * x_i] afterwards
     recovers the off-diagonal sum Gauss-Seidel needs. *)
  let acc = ref 0.0 in
  let f j a = acc := !acc +. (a *. Array1.unsafe_get x j) in
  let update i =
    let xi = Array1.unsafe_get x i in
    acc := 0.0;
    iter_row op i f;
    let off = !acc -. (Array.unsafe_get d i *. xi) in
    Array1.unsafe_set x i ((Array.unsafe_get b i -. off) /. Array.unsafe_get d i)
  in
  let iterations = ref 0 and residual = ref infinity in
  while !residual > tol && !iterations < max_iter do
    guard ();
    (* Symmetric sweep along [order] — see [gauss_seidel_steady]. *)
    for k = 0 to n - 1 do
      update (Array.unsafe_get order k)
    done;
    for k = n - 1 downto 0 do
      update (Array.unsafe_get order k)
    done;
    residual := residual_against op x b;
    incr iterations
  done;
  count_sweeps !iterations;
  {
    Iterative.solution = Bvec.to_vec x;
    iterations = !iterations;
    residual = !residual;
    converged = !residual <= tol;
  }

let gauss_seidel_steady ?(tol = 1e-12) ?(max_iter = 100_000)
    ?(guard = fun () -> ()) ?init ?order op =
  require_square "gauss_seidel_steady" op;
  let n = rows op in
  let order = check_order "gauss_seidel_steady" n order in
  let d = nonzero_diagonal "gauss_seidel_steady" op in
  Array.iteri
    (fun i x ->
      if x >= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Operator.gauss_seidel_steady: nonnegative diagonal at row %d" i))
    d;
  (* Column access = rows of the structural transpose; stays lazy. *)
  let tr = transpose op in
  let p =
    match init with
    | Some v ->
        if Vec.dim v <> n then
          invalid_arg "Operator.gauss_seidel_steady: init dimension mismatch";
        Bvec.of_vec v
    | None -> Bvec.make n (1.0 /. float_of_int n)
  in
  let normalize () =
    let s = Bvec.sum p in
    if s = 0.0 || not (Float.is_finite s) then
      invalid_arg
        "Operator.gauss_seidel_steady: iterate sum is zero or not finite";
    Bvec.scale_inplace (1.0 /. s) p
  in
  normalize ();
  let prev = Bvec.create n in
  let acc = ref 0.0 in
  let f i a = acc := !acc +. (a *. Array1.unsafe_get p i) in
  let update j =
    let pj = Array1.unsafe_get p j in
    acc := 0.0;
    iter_row tr j f;
    let inflow = !acc -. (Array.unsafe_get d j *. pj) in
    Array1.unsafe_set p j (inflow /. -.Array.unsafe_get d j)
  in
  let iterations = ref 0 and change = ref infinity in
  while !change > tol && !iterations < max_iter do
    guard ();
    Bvec.blit ~src:p ~dst:prev;
    (* Symmetric sweep along [order], forward then backward.  On the
       birth-death-like chains the Kronecker compositions produce,
       probability cascades one position per sweep against the update
       order; sweeping a flow-aligned order both ways propagates each
       cascade across the whole chain every iteration, making the
       iteration count essentially depth-independent (the default
       index order only helps when it is itself flow-aligned). *)
    for k = 0 to n - 1 do
      update (Array.unsafe_get order k)
    done;
    for k = n - 1 downto 0 do
      update (Array.unsafe_get order k)
    done;
    normalize ();
    let c = ref 0.0 in
    for i = 0 to n - 1 do
      c := !c +. Float.abs (Array1.unsafe_get p i -. Array1.unsafe_get prev i)
    done;
    change := !c;
    incr iterations
  done;
  count_sweeps !iterations;
  (* residual = norm_inf (p op), computed column-wise off the
     transpose. *)
  let residual = ref 0.0 in
  for j = 0 to n - 1 do
    acc := 0.0;
    iter_row tr j f;
    residual := Float.max !residual (Float.abs !acc)
  done;
  {
    Iterative.solution = Bvec.to_vec p;
    iterations = !iterations;
    residual = !residual;
    converged = !change <= tol;
  }
