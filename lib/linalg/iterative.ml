type result = {
  solution : Vec.t;
  iterations : int;
  residual : float;
  converged : bool;
}

(* Log-spaced buckets covering the convergence range of interest; one
   observation per sweep gives the residual trajectory shape. *)
let residual_buckets =
  [| 1e-14; 1e-12; 1e-10; 1e-8; 1e-6; 1e-4; 1e-2; 1.0 |]

let observe_residual r = Dpm_obs.Probe.observe "iterative.residual" ~buckets:residual_buckets r
let count_sweeps n = Dpm_obs.Probe.add "iterative.sweeps" n

let default_init n = function
  | Some v ->
      if Vec.dim v <> n then invalid_arg "Iterative: init dimension mismatch";
      Vec.copy v
  | None -> Vec.make n (1.0 /. float_of_int n)

let power_method ?(tol = 1e-12) ?(max_iter = 100_000) ?(guard = fun () -> ())
    ?init p =
  let n = Sparse.rows p in
  if Sparse.cols p <> n then invalid_arg "Iterative.power_method: not square";
  let x = ref (Vec.normalize1 (default_init n init)) in
  let iterations = ref 0 and change = ref infinity in
  while !change > tol && !iterations < max_iter do
    guard ();
    let next = Vec.normalize1 (Sparse.vec_mul !x p) in
    change := Vec.norm1 (Vec.sub next !x);
    observe_residual !change;
    x := next;
    incr iterations
  done;
  count_sweeps !iterations;
  {
    solution = !x;
    iterations = !iterations;
    residual = !change;
    converged = !change <= tol;
  }

let diagonal_of name q =
  let n = Sparse.rows q in
  let d = Vec.create n in
  Sparse.iter q (fun i j x -> if i = j then d.(i) <- x);
  Array.iteri
    (fun i x ->
      if x = 0.0 then
        invalid_arg (Printf.sprintf "Iterative.%s: zero diagonal at row %d" name i))
    d;
  d

let gauss_seidel_steady ?(tol = 1e-12) ?(max_iter = 100_000)
    ?(guard = fun () -> ()) ?init q =
  let n = Sparse.rows q in
  if Sparse.cols q <> n then
    invalid_arg "Iterative.gauss_seidel_steady: not square";
  let diag = diagonal_of "gauss_seidel_steady" q in
  Array.iteri
    (fun i x ->
      if x >= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Iterative.gauss_seidel_steady: nonnegative diagonal at row %d" i))
    diag;
  (* Column access pattern: sweep over rows of the transpose. *)
  let qt = Sparse.transpose q in
  let p = Vec.normalize1 (default_init n init) in
  (* Buffers are preallocated and the accumulator hoisted: a sweep
     allocates nothing.  Arithmetic order matches the historical
     copy/normalize1/sub version bitwise. *)
  let prev = Vec.create n in
  let acc = ref 0.0 in
  let iterations = ref 0 and change = ref infinity in
  while !change > tol && !iterations < max_iter do
    guard ();
    Vec.blit ~src:p ~dst:prev;
    for j = 0 to n - 1 do
      acc := 0.0;
      Sparse.iter_row qt j (fun i qij -> if i <> j then acc := !acc +. (p.(i) *. qij));
      p.(j) <- !acc /. -.diag.(j)
    done;
    let s = Vec.sum p in
    if s = 0.0 || not (Float.is_finite s) then
      invalid_arg
        "Iterative.gauss_seidel_steady: iterate sum is zero or not finite";
    let inv = 1.0 /. s in
    for j = 0 to n - 1 do
      p.(j) <- inv *. p.(j)
    done;
    acc := 0.0;
    for j = 0 to n - 1 do
      acc := !acc +. Float.abs (p.(j) -. prev.(j))
    done;
    change := !acc;
    observe_residual !change;
    incr iterations
  done;
  count_sweeps !iterations;
  let residual = Vec.norm_inf (Sparse.vec_mul p q) in
  {
    solution = p;
    iterations = !iterations;
    residual;
    converged = !change <= tol;
  }

(* Updates write through preallocated buffers: [~src] is the current
   iterate, [~dst] a scratch vector the update may use, and the
   returned array is the new iterate (Jacobi returns [dst], the
   in-place Gauss-Seidel returns [src]).  Iterate values are bitwise
   those of the historical allocating versions. *)
let linear_sweep_solver name update ?(tol = 1e-10) ?(max_iter = 100_000)
    ?(guard = fun () -> ()) ?init a b =
  let n = Sparse.rows a in
  if Sparse.cols a <> n then
    invalid_arg (Printf.sprintf "Iterative.%s: not square" name);
  if Vec.dim b <> n then
    invalid_arg (Printf.sprintf "Iterative.%s: rhs dimension mismatch" name);
  let diag = diagonal_of name a in
  let x = ref (match init with Some v -> Vec.copy v | None -> Vec.create n) in
  let scratch = ref (Vec.create n) in
  let ax = Vec.create n in
  let iterations = ref 0 and residual = ref infinity in
  while !residual > tol && !iterations < max_iter do
    guard ();
    let next = update a b diag ~src:!x ~dst:!scratch in
    if next != !x then begin
      scratch := !x;
      x := next
    end;
    Sparse.mul_vec_into a !x ~dst:ax;
    let r = ref 0.0 in
    for i = 0 to n - 1 do
      r := Float.max !r (Float.abs (ax.(i) -. b.(i)))
    done;
    residual := !r;
    observe_residual !residual;
    incr iterations
  done;
  count_sweeps !iterations;
  {
    solution = !x;
    iterations = !iterations;
    residual = !residual;
    converged = !residual <= tol;
  }

let jacobi_update a b diag ~src ~dst =
  let acc = ref 0.0 in
  for i = 0 to Vec.dim src - 1 do
    acc := b.(i);
    Sparse.iter_row a i (fun j aij -> if j <> i then acc := !acc -. (aij *. src.(j)));
    dst.(i) <- !acc /. diag.(i)
  done;
  dst

(* In-place: reading [src.(j)] picks up updated values for [j < i] and
   the previous sweep's for [j > i] — exactly what the historical
   copy-then-update version computed. *)
let gauss_seidel_update a b diag ~src ~dst:_ =
  let acc = ref 0.0 in
  for i = 0 to Vec.dim src - 1 do
    acc := b.(i);
    Sparse.iter_row a i (fun j aij ->
        if j <> i then acc := !acc -. (aij *. src.(j)));
    src.(i) <- !acc /. diag.(i)
  done;
  src

let jacobi ?tol ?max_iter ?guard ?init a b =
  linear_sweep_solver "jacobi" jacobi_update ?tol ?max_iter ?guard ?init a b

let gauss_seidel ?tol ?max_iter ?guard ?init a b =
  linear_sweep_solver "gauss_seidel" gauss_seidel_update ?tol ?max_iter ?guard
    ?init a b
