(** Matrix exponential.

    [e^{tG}] of a generator gives the exact transition-probability
    matrix of a CTMC — an independent cross-check for the
    uniformization-based transient solver (they must agree to solver
    tolerance, and the test suite verifies they do).

    The implementation is the classic scaling-and-squaring method with
    a diagonal Pade(6,6) approximant: scale [A] by [2^-s] so its
    1-norm drops below 0.5, evaluate the Pade approximant, and square
    [s] times. *)

val expm : Matrix.t -> Matrix.t
(** [expm a] is [e^a] for a square matrix.  Raises [Invalid_argument]
    if [a] is not square.  If the Pade denominator cannot be
    factorized (entries of wildly mixed magnitude can defeat the
    1-norm scaling estimate), the evaluation is retried once at a
    16x larger scaling-and-squaring factor (counted as
    [expm.rescale_retries] by {!Dpm_obs}); a second breakdown raises
    the typed [Lu.Singular].  Generators scaled by reasonable times
    never need the retry. *)

val transition_matrix : Matrix.t -> t:float -> Matrix.t
(** [transition_matrix g ~t] is [e^{tG}] — for a generator [g], the
    matrix of transition probabilities over a window of length [t]. *)
