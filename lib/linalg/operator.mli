(** Lazy linear operators: Kronecker-structured generators without
    expansion.

    The composed SYS generator of a power-managed system is a tensor
    expression over small SP and SQ blocks (Section III).  Every
    materialized representation — dense [Matrix.t] or CSR [Sparse.t] —
    pays O(nnz) storage, triplet sorting, and transposition before the
    first sweep runs.  An {!t} instead stores the {e expression}: the
    small factor blocks plus the combinators ([Kron_prod], [Kron_sum],
    [Sum], [Scaled], [Shifted], block grids), and exposes exactly the
    access patterns iterative solvers need — row iteration, mat-vec
    into a preallocated {!Bvec.t}, and Gauss-Seidel sweeps that walk
    the Kronecker factors directly.  Storage is the sum of the factor
    sizes (typically O(|S|{^2} + Q) against O(|S|·Q) expanded nonzeros),
    and no per-sweep allocation occurs.

    Row iteration may visit the same column more than once (e.g. the
    diagonal of a [Kron_sum], or overlapping [Sum] terms); all
    consumers in this module {e accumulate} contributions, and callers
    of {!iter_row} must do the same.

    Probe counters: [operator.matvecs] (calls to {!matvec}),
    [operator.sweeps] (Gauss-Seidel sweeps executed by {!gauss_seidel}
    and {!gauss_seidel_steady}). *)

type t
(** A lazy linear operator over flat float64 state vectors. *)

(** {1 Leaves} *)

val dense : Matrix.t -> t
(** [dense m] wraps a dense block; row iteration skips zero entries. *)

val csr : Sparse.t -> t
(** [csr s] wraps a CSR block ({!Sparse.of_triplets} keeps zero-sum
    entries out of the structure, so its rows are genuinely sparse). *)

val diag : float array -> t
(** [diag d] is the square diagonal operator with entries [d]
    (zero entries are skipped on iteration).  The array is captured,
    not copied. *)

val identity : int -> t
(** [identity n] is the [n x n] identity as a diagonal leaf. *)

val of_rows : rows:int -> cols:int -> (int -> (int -> float -> unit) -> unit) -> t
(** [of_rows ~rows ~cols iter] wraps an arbitrary row-iteration
    closure: [iter i f] must call [f j x] for the (accumulating)
    entries of row [i].  Closure leaves are not transposable:
    {!transpose} raises [Invalid_argument] on them. *)

(** {1 Combinators} *)

val kron_prod : t -> t -> t
(** [kron_prod a b] is the Kronecker product [a (x) b]
    (Definition 4.4): entry [((i1,i2),(j1,j2)) = a_{i1 j1} * b_{i2 j2}]
    with the second factor's index minor, matching
    {!Tensor.pair_index}. *)

val kron_sum : t -> t -> t
(** [kron_sum a b] is the Kronecker sum
    [a (x) I + I (x) b] of two {e square} operators ([Invalid_argument]
    otherwise).  Diagonal entries of both factors are emitted
    separately (consumers accumulate). *)

val scaled : float -> t -> t
(** [scaled c a] is [c * a]. *)

val shifted : t -> float -> t
(** [shifted a c] is [a + c I] for square [a] ([Invalid_argument]
    otherwise); the shift is emitted as an extra diagonal
    contribution. *)

val sum : t -> t -> t
(** [sum a b] is [a + b].  Raises [Invalid_argument] on shape
    mismatch.  Overlapping entries are emitted separately. *)

val blocks : row_dims:int array -> col_dims:int array -> t option array array -> t
(** [blocks ~row_dims ~col_dims cells] is the block grid with
    [cells.(bi).(bj)] occupying block row [bi] (height
    [row_dims.(bi)]) and block column [bj] (width [col_dims.(bj)]);
    [None] cells are structurally zero.  Raises [Invalid_argument] if
    the grid is ragged or a cell's shape disagrees with its
    row/column dims. *)

(** {1 Shape and access} *)

val rows : t -> int
(** Number of rows. *)

val cols : t -> int
(** Number of columns. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** [iter_row op i f] applies [f j x] to the entries of row [i].
    Columns are {e not} necessarily sorted and {e may repeat};
    repeated contributions to one coordinate must be summed by the
    caller. *)

val get : t -> int -> int -> float
(** [get op i j] is entry [(i,j)], accumulated over repeats — O(row)
    via {!iter_row}; for tests and debugging, not for kernels. *)

val diagonal : t -> float array
(** [diagonal op] is the accumulated diagonal of a square operator
    (one full row sweep, O(nnz)). *)

val transpose : t -> t
(** [transpose op] is the structural transpose — factors are
    transposed, combinators preserved, so the result stays lazy.
    Raises [Invalid_argument] on {!of_rows} leaves, which carry no
    column structure. *)

(** {1 Kernels} *)

val matvec : t -> Bvec.t -> dst:Bvec.t -> unit
(** [matvec op x ~dst] stores [op x] in [dst] without allocating;
    [dst] must not alias [x].  Raises [Invalid_argument] on dimension
    mismatch.  Counted on [operator.matvecs]. *)

val gauss_seidel :
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  ?init:Vec.t ->
  ?order:int array ->
  t ->
  Vec.t ->
  Iterative.result
(** [gauss_seidel op b] solves [op x = b] by symmetric Gauss-Seidel
    sweeps walking {!iter_row} directly — same stopping rule,
    residual, and result record as {!Iterative.gauss_seidel} ([tol]
    default 1e-10 on the sup-norm residual, [max_iter] default 1e5,
    [guard] invoked before each sweep), but with no materialized
    matrix and no per-sweep allocation.  One iteration updates every
    row along [order] (default: index order; must be a permutation of
    the rows, [Invalid_argument] otherwise), then again in reverse —
    see {!gauss_seidel_steady} for why the order matters.  The
    accumulated diagonal must be nonzero ([Invalid_argument]
    otherwise). *)

val gauss_seidel_steady :
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  ?init:Vec.t ->
  ?order:int array ->
  t ->
  Iterative.result
(** [gauss_seidel_steady op] solves [p op = 0], [sum p = 1] for the
    stationary row vector of a generator presented implicitly — the
    matrix-free counterpart of {!Iterative.gauss_seidel_steady} (same
    defaults and result record; [tol] bounds the L1 change of the
    normalized iterate between sweeps).  Column access comes from the
    {e structural} {!transpose}, so the operator must be transposable,
    square, and have strictly negative accumulated diagonal
    ([Invalid_argument] otherwise).

    One iteration is a {e symmetric} sweep: every row along [order]
    (default: index order; must be a permutation, [Invalid_argument]
    otherwise), then the same rows in reverse.  Gauss-Seidel moves
    probability one update-position per sweep against the update
    order, so on chains with long directional cascades (a queue
    draining through interleaved transfer states) the iteration count
    is governed by how well [order] aligns with the flow: a
    flow-aligned order (e.g. [Sys_model.sweep_order], which follows
    the queue coordinate of the Kronecker structure) makes the count
    essentially depth-independent, while a misaligned one degrades to
    one position per iteration. *)

(** {1 Materialization and cost accounting} *)

val to_dense : t -> Matrix.t
(** [to_dense op] expands to a dense matrix (accumulating repeats) —
    for tests and small instances only. *)

val to_sparse : t -> Sparse.t
(** [to_sparse op] expands to CSR through the triplet path —
    the expansion an implicit solve avoids; used by tests and by the
    scaling bench to price the materialized alternative. *)

val stored_floats : t -> int
(** [stored_floats op] counts the float entries actually held by the
    expression tree (dense blocks count fully, CSR blocks their nnz,
    closure leaves 0) — the implicit representation's memory
    footprint. *)

val materialized_nnz : t -> int
(** [materialized_nnz op] is an upper bound on the nonzeros a CSR
    expansion of [op] would store ([nnz(A)·nnz(B)] for products,
    [nnz(A)·n_B + n_A·nnz(B)] for sums, …) — the memory the lazy
    representation saves; the peak-memory proxy reported by the
    scaling bench. *)
