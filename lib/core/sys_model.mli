(** The composed power-managed system (SYS) — Section III.

    The SYS is the joint controllable Markov process of the SP and the
    SQ over the state space

    {v X  =  S x Q_stable   U   S_active x Q_transfer v}

    (a transfer state remembers which active mode just finished the
    service, because the pending switch leaves from that mode).  The
    PM's command in every state is the SP mode to switch to; actions
    are therefore labeled by mode indices, and "stay" is commanding
    the current mode.

    {2 Action validity (Section III constraints)}

    + In a stable state, an {e active} SP may only be commanded to
      active modes (service must not be interrupted);
    + in the full stable state [q_Q], an {e inactive} SP may not be
      commanded to stay or to another inactive mode with an equal or
      longer wakeup time — it must make progress toward serving (the
      strict reading keeps every policy's chain unichain, which the
      paper's connectivity argument requires);
    + in the full transfer state [q_{Q -> Q-1}], the SP may not be
      commanded to an active mode with a strictly longer service time.

    {2 Instantaneous self-switches}

    The paper sets [chi(s, s) = infinity].  A finite generator cannot
    hold that, so commanding "stay" in a transfer state resolves the
    transfer at the configurable [self_switch_rate] (default [1e6],
    DESIGN.md decision 1).  The analytic error this introduces is
    O(service rate / self_switch_rate) and is measured by the test
    suite. *)

open Dpm_linalg

type state =
  | Stable of int * int
      (** [Stable (s, i)]: SP in mode [s], [i] requests queued *)
  | Transfer of int * int
      (** [Transfer (s, i)]: SP leaving active mode [s] after a
          completion that found [i] requests ([1 <= i <= Q]) *)

type t

val create :
  ?self_switch_rate:float ->
  sp:Service_provider.t ->
  queue_capacity:int ->
  arrival_rate:float ->
  unit ->
  t
(** [create ~sp ~queue_capacity ~arrival_rate ()] composes the system.
    Raises [Invalid_argument] on nonpositive capacity, nonpositive or
    non-finite arrival rate, or nonpositive [self_switch_rate]. *)

val sp : t -> Service_provider.t
(** The service provider. *)

val queue_capacity : t -> int
(** [Q]. *)

val arrival_rate : t -> float
(** [lambda]. *)

val self_switch_rate : t -> float
(** The big-M rate standing in for the paper's instantaneous
    self-switch. *)

val with_arrival_rate : t -> float -> t
(** [with_arrival_rate sys lambda] is [sys] under a different input
    rate — used by the input-rate sweeps of Table 1 / Figure 5 and by
    the adaptive-workload example. *)

val num_states : t -> int
(** [|X| = S (Q+1) + |S_active| Q]. *)

val states : t -> state array
(** All states in index order. *)

val index : t -> state -> int
(** Flat index of a state; raises [Invalid_argument] for states
    outside [X] (e.g. a transfer state of an inactive mode). *)

val state_of_index : t -> int -> state
(** Inverse of {!index}. *)

val mode : state -> int
(** The SP mode component. *)

val waiting_requests : state -> int
(** The delay cost [C_sq(x)]: queue length in stable states, one
    less in transfer states. *)

val is_queue_full : t -> state -> bool
(** True for [q_Q] stable and [q_{Q -> Q-1}] transfer states — the
    states in which an arriving request is lost. *)

val valid_actions : t -> state -> int list
(** The action set [A_x] after the three constraints, ascending by
    mode index.  Always nonempty. *)

val transitions : t -> state -> action:int -> (int * float) list
(** [transitions sys x ~action] is the SYS rate row out of [x] under
    [action] (no validity filtering — callers wanting only legal
    rows should consult {!valid_actions}).  Targets are flat
    indices. *)

val power_cost : t -> state -> action:int -> float
(** [C_pow(x, a) = pow(s) + sum_{s'} s_{s,s'}(a) ene(s, s')] — the
    expected power draw including the rate-weighted switching
    energy. *)

val cost : t -> weight:float -> state -> action:int -> float
(** The paper's Eqn. (3.1):
    [Cost(x, a) = C_pow(x, a) + weight * C_sq(x)]. *)

val to_ctmdp : t -> weight:float -> Dpm_ctmdp.Model.t
(** The decision process handed to the solvers: per state, one choice
    per valid action, with {!transitions} as rates and {!cost} as the
    cost rate. *)

val generator_of_actions : t -> actions:(state -> int) -> Dpm_ctmc.Generator.t
(** [generator_of_actions sys ~actions] is the closed-loop chain
    under an arbitrary (not validity-checked) state-to-action map. *)

val tensor_generator : t -> action:int -> Matrix.t
(** The generator under the uniform command [action], assembled by
    the {e tensor-block formula} of Section III
    ([G_SP + G_SQ blocks via Kronecker products]), then permuted to
    this module's state order.  Only supported for SPs with exactly
    one active mode (the formula's [I_{S_active} (x) G_SQ] blocks
    assume a common service rate); raises [Invalid_argument]
    otherwise.  Tested to coincide with the direct builder. *)

val uniform_generator : t -> action:int -> Matrix.t
(** The same matrix built directly from {!transitions} — the
    reference for {!tensor_generator}. *)

val operator : t -> action:int -> Operator.t
(** [operator sys ~action] is the SYS generator under the uniform
    command [action] as a {e lazy} {!Dpm_linalg.Operator.t}: the
    Section III tensor formula held as small SP/SQ factor blocks
    (switch matrix, arrival superdiagonal, service and resolution
    couplings) combined by Kronecker product/sum and a 2x2 block
    grid, plus the exit-rate diagonal — O(|S|{^2} + Q) stored floats
    against the O(|S| Q) nonzeros a materialized build stores, and no
    permutation (the canonical state order is already tensor-ordered).
    Unlike {!tensor_generator} this form supports any number of
    active modes.  Expanding it with {!Dpm_linalg.Operator.to_dense}
    reproduces {!uniform_generator} exactly (pinned by tests). *)

val sweep_order : t -> int array
(** [sweep_order sys] is the queue-level-major row permutation for
    {!Dpm_linalg.Operator.gauss_seidel_steady}'s [?order]: descending
    queue levels, each level's stable states followed by its transfer
    states, so both probability cascades (service/resolution draining
    down, arrivals climbing up) chain through a whole symmetric sweep
    instead of advancing one level per iteration.  Combined with the
    {!stationary_hint} starting iterate, the implicit stationary
    solve's iteration count is independent of the queue capacity
    (measured by the [kron] scaling bench); the flat index order
    degrades linearly. *)

val stationary_hint : t -> action:int -> Vec.t
(** [stationary_hint sys ~action] is a product-form guess at the
    stationary distribution under the uniform command [action],
    derived from the Kronecker factors alone: the queue coordinate of
    the closed loop is a birth-death chain (arrivals at [lambda],
    departures at [mu(action)]), so the guess places a geometric
    profile with ratio [rho = lambda / mu] on the commanded mode's
    stable states — decaying from the empty queue when [rho <= 1],
    piling up at the full queue otherwise (including [mu = 0]) — and
    nothing on the other states.  Pass it as the [?init] of
    {!Dpm_ctmc.Steady_state.implicit}: starting from this profile the
    sweeps only repair O(1)-level couplings, so the iteration count
    is independent of [Q], where the uniform default start pays a
    transient proportional to [Q] to drain its tail mass (measured by
    the [kron] scaling bench). *)

val pp_state : t -> Format.formatter -> state -> unit
(** E.g. [(active, q2)] or [(active, q3>2)]. *)
