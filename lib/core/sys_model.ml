open Dpm_linalg
open Dpm_ctmc

type state = Stable of int * int | Transfer of int * int

type t = {
  sp : Service_provider.t;
  queue_capacity : int;
  arrival_rate : float;
  self_switch_rate : float;
  active : int array; (* active modes, ascending *)
  active_pos : int array; (* mode -> position in [active], or -1 *)
}

let create ?(self_switch_rate = 1e6) ~sp ~queue_capacity ~arrival_rate () =
  if queue_capacity <= 0 then
    invalid_arg "Sys_model.create: queue capacity must be at least 1";
  if arrival_rate <= 0.0 || not (Float.is_finite arrival_rate) then
    invalid_arg "Sys_model.create: arrival rate must be positive and finite";
  if self_switch_rate <= 0.0 || not (Float.is_finite self_switch_rate) then
    invalid_arg "Sys_model.create: self-switch rate must be positive and finite";
  let active = Array.of_list (Service_provider.active_modes sp) in
  let active_pos = Array.make (Service_provider.num_modes sp) (-1) in
  Array.iteri (fun k s -> active_pos.(s) <- k) active;
  { sp; queue_capacity; arrival_rate; self_switch_rate; active; active_pos }

let sp sys = sys.sp
let queue_capacity sys = sys.queue_capacity
let arrival_rate sys = sys.arrival_rate
let self_switch_rate sys = sys.self_switch_rate

let with_arrival_rate sys lambda =
  if lambda <= 0.0 || not (Float.is_finite lambda) then
    invalid_arg "Sys_model.with_arrival_rate: rate must be positive and finite";
  { sys with arrival_rate = lambda }

let num_modes sys = Service_provider.num_modes sys.sp
let num_active sys = Array.length sys.active

let num_states sys =
  (num_modes sys * (sys.queue_capacity + 1)) + (num_active sys * sys.queue_capacity)

let index sys = function
  | Stable (s, i) ->
      if s < 0 || s >= num_modes sys then
        invalid_arg (Printf.sprintf "Sys_model.index: mode %d out of range" s);
      if i < 0 || i > sys.queue_capacity then
        invalid_arg (Printf.sprintf "Sys_model.index: queue length %d out of range" i);
      (s * (sys.queue_capacity + 1)) + i
  | Transfer (s, i) ->
      if s < 0 || s >= num_modes sys || sys.active_pos.(s) < 0 then
        invalid_arg
          (Printf.sprintf "Sys_model.index: transfer state of non-active mode %d" s);
      if i < 1 || i > sys.queue_capacity then
        invalid_arg
          (Printf.sprintf "Sys_model.index: transfer level %d out of range" i);
      (num_modes sys * (sys.queue_capacity + 1))
      + (sys.active_pos.(s) * sys.queue_capacity)
      + (i - 1)

let state_of_index sys k =
  let stable_count = num_modes sys * (sys.queue_capacity + 1) in
  if k < 0 || k >= num_states sys then
    invalid_arg (Printf.sprintf "Sys_model.state_of_index: %d out of range" k);
  if k < stable_count then
    Stable (k / (sys.queue_capacity + 1), k mod (sys.queue_capacity + 1))
  else begin
    let r = k - stable_count in
    Transfer (sys.active.(r / sys.queue_capacity), (r mod sys.queue_capacity) + 1)
  end

let states sys = Array.init (num_states sys) (state_of_index sys)

let mode = function Stable (s, _) -> s | Transfer (s, _) -> s

let waiting_requests = function Stable (_, i) -> i | Transfer (_, i) -> i - 1

let is_queue_full sys = function
  | Stable (_, i) -> i = sys.queue_capacity
  | Transfer (_, i) -> i = sys.queue_capacity

let all_modes sys = List.init (num_modes sys) (fun s -> s)

let valid_actions sys x =
  let sp = sys.sp in
  match x with
  | Stable (s, i) ->
      if Service_provider.is_active sp s then
        (* Constraint (1): no active -> inactive switch while stable. *)
        Service_provider.active_modes sp
      else if i < sys.queue_capacity then all_modes sys
      else
        (* Constraint (2), strict form: with a full queue an inactive
           SP must move toward service — to an active mode or to a
           strictly faster-waking inactive one. *)
        List.filter
          (fun a ->
            Service_provider.is_active sp a
            || (a <> s
               && Service_provider.wakeup_time sp a
                  < Service_provider.wakeup_time sp s))
          (all_modes sys)
  | Transfer (s, i) ->
      if i < sys.queue_capacity then all_modes sys
      else
        (* Constraint (3): in q_{Q->Q-1} no switch to a slower active
           mode. *)
        List.filter
          (fun a ->
            (not (Service_provider.is_active sp a))
            || Service_provider.service_rate sp a
               >= Service_provider.service_rate sp s)
          (all_modes sys)

let switch_out_rate sys s a =
  if a = s then sys.self_switch_rate else Service_provider.switch_rate sys.sp s a

let transitions sys x ~action =
  let sp = sys.sp in
  let q = sys.queue_capacity in
  let lam = sys.arrival_rate in
  if action < 0 || action >= num_modes sys then
    invalid_arg (Printf.sprintf "Sys_model.transitions: action %d out of range" action);
  match x with
  | Stable (s, i) ->
      let arrival = if i < q then [ (index sys (Stable (s, i + 1)), lam) ] else [] in
      let service =
        if Service_provider.is_active sp s && i >= 1 then
          [ (index sys (Transfer (s, i)), Service_provider.service_rate sp s) ]
        else []
      in
      let switch =
        if action <> s then
          [ (index sys (Stable (action, i)), Service_provider.switch_rate sp s action) ]
        else []
      in
      arrival @ service @ switch
  | Transfer (s, i) ->
      let arrival = if i < q then [ (index sys (Transfer (s, i + 1)), lam) ] else [] in
      let resolve = [ (index sys (Stable (action, i - 1)), switch_out_rate sys s action) ] in
      arrival @ resolve

let power_cost sys x ~action =
  let sp = sys.sp in
  let s = mode x in
  let base = Service_provider.power sp s in
  match x with
  | Stable _ ->
      if action = s then base
      else
        base
        +. (Service_provider.switch_rate sp s action
           *. Service_provider.switch_energy sp s action)
  | Transfer _ ->
      if action = s then base (* ene(s,s) = 0 *)
      else
        base
        +. (Service_provider.switch_rate sp s action
           *. Service_provider.switch_energy sp s action)

let cost sys ~weight x ~action =
  power_cost sys x ~action +. (weight *. float_of_int (waiting_requests x))

let to_ctmdp sys ~weight =
  if weight < 0.0 || not (Float.is_finite weight) then
    invalid_arg "Sys_model.to_ctmdp: weight must be nonnegative and finite";
  Dpm_ctmdp.Model.create ~num_states:(num_states sys) (fun k ->
      let x = state_of_index sys k in
      List.map
        (fun a ->
          {
            Dpm_ctmdp.Model.action = a;
            rates = transitions sys x ~action:a;
            cost = cost sys ~weight x ~action:a;
          })
        (valid_actions sys x))

let generator_of_actions sys ~actions =
  let rates = ref [] in
  for k = 0 to num_states sys - 1 do
    let x = state_of_index sys k in
    List.iter
      (fun (j, r) -> if r > 0.0 then rates := (k, j, r) :: !rates)
      (transitions sys x ~action:(actions x))
  done;
  Generator.of_rates ~dim:(num_states sys) !rates

let uniform_generator sys ~action =
  Generator.to_matrix (generator_of_actions sys ~actions:(fun _ -> action))

(* --- The tensor-block formula of Section III ------------------------- *)

let zero_diagonal m =
  Matrix.mapi (fun i j x -> if i = j then 0.0 else x) m

let tensor_generator sys ~action =
  let sp = sys.sp in
  let s_count = num_modes sys in
  let q = sys.queue_capacity in
  if num_active sys <> 1 then
    invalid_arg
      "Sys_model.tensor_generator: the literal Section III block formula \
       assumes a single active mode (I_{S_active} (x) G_SQ blocks share one \
       service rate)";
  if action < 0 || action >= s_count then
    invalid_arg "Sys_model.tensor_generator: action out of range";
  let s0 = sys.active.(0) in
  (* Permuted mode order: active modes first (the formula's block
     layout), inactive after. *)
  let pm =
    Array.of_list
      (Service_provider.active_modes sp @ Service_provider.inactive_modes sp)
  in
  (* Off-diagonal SP generator under the uniform action, permuted. *)
  let g_sp_off =
    Matrix.init s_count s_count (fun pi pj ->
        let s = pm.(pi) and s' = pm.(pj) in
        if s' = action && s <> s' then Service_provider.switch_rate sp s s' else 0.0)
  in
  (* SQ blocks conditioned on the active mode; diagonals recomputed at
     the end, so strip them here. *)
  let ss, st, _ts, tt =
    Service_queue.blocks ~capacity:q ~arrival_rate:sys.arrival_rate
      ~service_rate:(Service_provider.service_rate sp s0)
      ~switch_out_rate:(switch_out_rate sys s0 action)
  in
  let ss_off = zero_diagonal ss and tt_off = zero_diagonal tt in
  let stable_count = s_count * (q + 1) in
  let transfer_count = q (* one active mode *) in
  let dim = stable_count + transfer_count in
  let big = Matrix.create dim dim in
  let blit ~row0 ~col0 m =
    for i = 0 to Matrix.rows m - 1 do
      for j = 0 to Matrix.cols m - 1 do
        let x = Matrix.get m i j in
        if x <> 0.0 then Matrix.update big (row0 + i) (col0 + j) (fun y -> y +. x)
      done
    done
  in
  (* Top-left: G_SP(a) (+) G_SQ^SS — Kronecker sum on zero-diagonal
     blocks. *)
  blit ~row0:0 ~col0:0 (Tensor.product g_sp_off (Matrix.identity (q + 1)));
  blit ~row0:0 ~col0:0 (Tensor.product (Matrix.identity s_count) ss_off);
  (* Top-right: M = [ I_{S_active} (x) G_SQ^ST ; O_1 ] — the active
     mode occupies the first permuted block row. *)
  blit ~row0:0 ~col0:stable_count (Tensor.product (Matrix.identity 1) st);
  (* Bottom-left: G_SP^A(a) (x) N with N = [I_Q  O_2].  The SP row
     must use the extended switch rate chi-hat (self-switch = big M)
     because a transfer state resolving to its own mode is a genuine
     SYS transition. *)
  let d_a =
    Matrix.init 1 s_count (fun _ pj ->
        if pm.(pj) = action then switch_out_rate sys s0 action else 0.0)
  in
  let n_mat = Matrix.init q (q + 1) (fun i j -> if i = j then 1.0 else 0.0) in
  blit ~row0:stable_count ~col0:0 (Tensor.product d_a n_mat);
  (* Bottom-right: I_{S_active} (x) G_SQ^TT. *)
  blit ~row0:stable_count ~col0:stable_count
    (Tensor.product (Matrix.identity 1) tt_off);
  (* Diagonals: S_ii = -sum_{j<>i} S_ij. *)
  for i = 0 to dim - 1 do
    let out = ref 0.0 in
    for j = 0 to dim - 1 do
      if j <> i then out := !out +. Matrix.get big i j
    done;
    Matrix.set big i i (-. !out)
  done;
  (* Permute from the tensor layout back to this module's canonical
     state order. *)
  let canonical_of_tensor t =
    if t < stable_count then index sys (Stable (pm.(t / (q + 1)), t mod (q + 1)))
    else index sys (Transfer (s0, t - stable_count + 1))
  in
  let out = Matrix.create dim dim in
  for ti = 0 to dim - 1 do
    for tj = 0 to dim - 1 do
      Matrix.set out (canonical_of_tensor ti) (canonical_of_tensor tj)
        (Matrix.get big ti tj)
    done
  done;
  out

(* --- the same tensor formula, lazily --------------------------------- *)

(* The canonical state order is already tensor-ordered: stable states
   are [mode-major x queue-minor] (an S x (Q+1) grid) and transfer
   states [active-position-major x level-minor] (a |S_active| x Q
   grid), so no permutation is needed — unlike [tensor_generator],
   whose literal Section III layout puts active modes first.  And
   because each Kronecker factor carries its own rates, the lazy form
   generalizes to any number of active modes. *)
let operator sys ~action =
  let sp = sys.sp in
  let s_count = num_modes sys in
  let q = sys.queue_capacity in
  let k = num_active sys in
  let lam = sys.arrival_rate in
  if action < 0 || action >= s_count then
    invalid_arg "Sys_model.operator: action out of range";
  (* Arrival superdiagonal over [n] queue levels — O(n) stored floats. *)
  let arrival n =
    Operator.csr
      (Sparse.of_triplets ~rows:n ~cols:n
         (List.init (max 0 (n - 1)) (fun i -> (i, i + 1, lam))))
  in
  (* SS: G_SP_off(a) (+) arrivals — the Kronecker sum of the
     off-diagonal SP generator under the uniform command and the SQ
     arrival chain (diagonals are added globally below). *)
  let g_sp_off =
    Matrix.init s_count s_count (fun s s' ->
        if s' = action && s <> s' then Service_provider.switch_rate sp s action
        else 0.0)
  in
  let ss = Operator.kron_sum (Operator.dense g_sp_off) (arrival (q + 1)) in
  let off =
    if k = 0 then ss
    else begin
      (* ST: service completions Stable(s,i) -> Transfer(s,i) at
         mu(s), as [Mu (x) P] with Mu(s, pos(s)) = mu(s) and P the
         level map i -> i-1 (row 0 empty: no service on an empty
         queue). *)
      let mu = Matrix.create s_count k in
      Array.iteri
        (fun pos s -> Matrix.set mu s pos (Service_provider.service_rate sp s))
        sys.active;
      let p_drop =
        Operator.csr
          (Sparse.of_triplets ~rows:(q + 1) ~cols:q
             (List.init q (fun i -> (i + 1, i, 1.0))))
      in
      let st = Operator.kron_prod (Operator.dense mu) p_drop in
      (* TS: transfer resolution Transfer(s, i) -> Stable(a, i-1) at
         the extended rate chi-hat(s, a) (self-switch = big M), as
         [R (x) N] with R(pos(s), a) the resolution rate and N the
         level-preserving embedding. *)
      let r = Matrix.create k s_count in
      Array.iteri
        (fun pos s -> Matrix.set r pos action (switch_out_rate sys s action))
        sys.active;
      let n_keep =
        Operator.csr
          (Sparse.of_triplets ~rows:q ~cols:(q + 1)
             (List.init q (fun i -> (i, i, 1.0))))
      in
      let ts = Operator.kron_prod (Operator.dense r) n_keep in
      (* TT: arrivals within the transfer band. *)
      let tt = Operator.kron_prod (Operator.identity k) (arrival q) in
      Operator.blocks
        ~row_dims:[| s_count * (q + 1); k * q |]
        ~col_dims:[| s_count * (q + 1); k * q |]
        [| [| Some ss; Some st |]; [| Some ts; Some tt |] |]
    end
  in
  (* Diagonal: negated exit rates, summed in the same order as
     [transitions] builds each row (arrival, service, switch) so the
     expanded operator matches [uniform_generator] bitwise. *)
  let n = num_states sys in
  let d = Array.make n 0.0 in
  for kx = 0 to n - 1 do
    match state_of_index sys kx with
    | Stable (s, i) ->
        let e = ref 0.0 in
        if i < q then e := !e +. lam;
        if Service_provider.is_active sp s && i >= 1 then
          e := !e +. Service_provider.service_rate sp s;
        if action <> s then e := !e +. Service_provider.switch_rate sp s action;
        d.(kx) <- -. !e
    | Transfer (s, i) ->
        let e = ref 0.0 in
        if i < q then e := !e +. lam;
        e := !e +. switch_out_rate sys s action;
        d.(kx) <- -. !e
  done;
  Operator.sum off (Operator.diag d)

(* Queue-level-major update order for Gauss-Seidel sweeps: descending
   levels, each level's stable states followed by the transfer states
   that drain {e into the level below} it.  Probability flows down the
   queue as Stable(s,i) -service-> Transfer(s,i) -resolve->
   Stable(a,i-1); in flat index order those three states live in
   different regions (stables are mode-major, transfers sit after all
   stables), so an index-order sweep moves a draining cascade one
   level per iteration.  This order chains the whole cascade inside a
   single sweep; its reverse (the backward half of a symmetric sweep)
   chains the arrival cascade the same way. *)
let sweep_order sys =
  let order = Array.make (num_states sys) 0 in
  let k = ref 0 in
  let push x =
    order.(!k) <- index sys x;
    incr k
  in
  for i = sys.queue_capacity downto 1 do
    for s = 0 to num_modes sys - 1 do
      push (Stable (s, i))
    done;
    Array.iter (fun s -> push (Transfer (s, i))) sys.active
  done;
  for s = 0 to num_modes sys - 1 do
    push (Stable (s, 0))
  done;
  order

(* The closed-loop queue under a uniform command is a birth-death
   process in the queue coordinate (arrivals at lambda, departures at
   mu(action)), so its marginal is geometric with ratio
   rho = lambda / mu.  A Gauss-Seidel iterate started from this
   product-form profile only has to correct the O(1)-level coupling
   with the transfer states, whereas the uniform 1/n start plants
   mass in the far tail that a sweep front drains one batch of levels
   at a time — iteration counts then grow linearly with Q (measured
   by the kron scaling bench). *)
let stationary_hint sys ~action =
  let n = num_states sys in
  let q = sys.queue_capacity in
  let p = Vec.create n in
  let mu = Service_provider.service_rate sys.sp action in
  let rho = if mu > 0.0 then sys.arrival_rate /. mu else infinity in
  if rho <= 1.0 then begin
    (* Underloaded: mass decays geometrically from the empty queue.
       Underflow to zero deep in the tail is fine — the tail really
       does hold no mass at machine precision. *)
    let w = ref 1.0 in
    for i = 0 to q do
      p.(index sys (Stable (action, i))) <- !w;
      w := !w *. rho
    done
  end
  else begin
    (* Overloaded (or no service): mass piles up at the full queue;
       fill the profile from the top down with the reciprocal ratio. *)
    let w = ref 1.0 in
    for i = q downto 0 do
      p.(index sys (Stable (action, i))) <- !w;
      w := !w /. rho
    done
  end;
  Vec.normalize1 p

let pp_state sys ppf = function
  | Stable (s, i) ->
      Format.fprintf ppf "(%s, q%d)" (Service_provider.name sys.sp s) i
  | Transfer (s, i) ->
      Format.fprintf ppf "(%s, q%d>%d)" (Service_provider.name sys.sp s) i (i - 1)
