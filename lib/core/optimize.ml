type solution = {
  weight : float;
  actions : int array;
  gain : float;
  iterations : int;
  metrics : Analytic.metrics;
  provenance : Dpm_trace.Provenance.t;
}

let solve ?(weight = 0.0) ?init_actions ?guard
    ?(eval = Dpm_ctmdp.Policy_iteration.Auto) sys =
  let t0 = Dpm_obs.Probe.now () in
  let model = Sys_model.to_ctmdp sys ~weight in
  (* The cache key includes the evaluation path: results agree to
     solver tolerance across paths but are not bit-identical, and a
     caller pinning [eval] is usually measuring that very path. *)
  let config =
    { Dpm_cache.Fingerprint.default_config with Dpm_cache.Fingerprint.eval }
  in
  (* Identify the solve in provenance whatever path produced it; the
     hash is O(model) — noise next to any evaluation. *)
  let finish ~origin (result : Dpm_ctmdp.Policy_iteration.result) =
    {
      result.Dpm_ctmdp.Policy_iteration.provenance with
      Dpm_trace.Provenance.fingerprint = Dpm_cache.Fingerprint.model_hash model;
      origin;
      wall_s = Dpm_obs.Probe.now () -. t0;
      weight;
      arrival_rate = Sys_model.arrival_rate sys;
    }
  in
  match Dpm_cache.Solve_cache.find ~config model with
  | Some result ->
      let actions =
        Dpm_ctmdp.Policy.actions model result.Dpm_ctmdp.Policy_iteration.policy
      in
      {
        weight;
        actions;
        gain = result.Dpm_ctmdp.Policy_iteration.gain;
        iterations = result.Dpm_ctmdp.Policy_iteration.iterations;
        metrics = Analytic.of_action_array sys actions;
        provenance = finish ~origin:Dpm_trace.Provenance.Cache_hit result;
      }
  | None ->
      let solve_from init =
        let result = Dpm_ctmdp.Policy_iteration.solve ?init ?guard ~eval model in
        let actions =
          Dpm_ctmdp.Policy.actions model
            result.Dpm_ctmdp.Policy_iteration.policy
        in
        (result, actions)
      in
      let init =
        match init_actions with
        | None -> None
        | Some actions -> Dpm_cache.Warm.init_of_actions model actions
      in
      let result, actions = solve_from init in
      let result, actions, metrics =
        match Analytic.of_action_array sys actions with
        | metrics -> (result, actions, metrics)
        | exception Dpm_ctmc.Steady_state.Not_irreducible _ ->
            (* The converged policy can be multichain only on exact ties
               between self-sufficient orbits (e.g. two identical active
               speeds).  Restart policy iteration from the greedy policy,
               whose orbit structure is connected, to break the tie. *)
            let greedy =
              Policies.to_ctmdp_policy sys model (Policies.greedy sys)
            in
            let result, actions = solve_from (Some greedy) in
            (result, actions, Analytic.of_action_array sys actions)
      in
      (* Store only the post-retry result: the cache must never serve a
         multichain tie that the retry just worked around. *)
      Dpm_cache.Solve_cache.store ~config model result;
      {
        weight;
        actions;
        gain = result.Dpm_ctmdp.Policy_iteration.gain;
        iterations = result.Dpm_ctmdp.Policy_iteration.iterations;
        metrics;
        provenance =
          finish
            ~origin:result.Dpm_ctmdp.Policy_iteration.provenance
                      .Dpm_trace.Provenance.origin
            result;
      }

let action_of sys solution x = solution.actions.(Sys_model.index sys x)

let solve_at ?weight ?init_actions ?guard ?eval sys ~arrival_rate =
  let sys' = Sys_model.with_arrival_rate sys arrival_rate in
  match solve ?weight ?init_actions ?guard ?eval sys' with
  | solution -> Ok (sys', solution)
  | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
  | exception exn -> Error exn

let sweep_r ?domains ?guard ?(warm = true) sys ~weights =
  (* One policy-iteration solve per weight, fenced per grid point: a
     poisoned weight yields an [Error] slot while every other point
     still solves.  With [warm] (the default) points run in the
     {!Dpm_cache.Warm.waves} schedule, each seeded by an
     already-solved point's policy — the schedule and every seed are
     functions of the grid size alone, so results (iteration counts
     included) are identical at any domain count, and a failed or
     invalid seed just degrades that point to a cold start. *)
  let ws = Array.of_list weights in
  let n = Array.length ws in
  let results = Array.make n None in
  let solve_point (k, src) =
    let init_actions =
      match src with
      | None -> None
      | Some j -> (
          match results.(j) with
          | Some (Ok s) -> Some s.actions
          | Some (Error _) | None -> None)
    in
    solve ~weight:ws.(k) ?init_actions ?guard sys
  in
  let schedule =
    if warm then Dpm_cache.Warm.waves n
    else if n = 0 then []
    else [ Array.init n (fun k -> (k, None)) ]
  in
  List.iter
    (fun wave ->
      let out = Dpm_par.parallel_map_result ?domains solve_point wave in
      Array.iteri
        (fun slot r ->
          let k, _ = wave.(slot) in
          results.(k) <- Some r)
        out)
    schedule;
  List.combine weights
    (Array.to_list
       (Array.map
          (function Some r -> r | None -> assert false)
          results))

let sweep ?domains ?warm sys ~weights =
  List.map
    (fun (_, r) -> match r with Ok s -> s | Error exn -> raise exn)
    (sweep_r ?domains ?warm sys ~weights)

let default_weights =
  let lo = 0.1 and hi = 500.0 and n = 20 in
  List.init n (fun k ->
      lo *. ((hi /. lo) ** (float_of_int k /. float_of_int (n - 1))))

let pareto solutions =
  let dominated a b =
    (* b dominates a *)
    b.metrics.Analytic.power <= a.metrics.Analytic.power
    && b.metrics.Analytic.avg_waiting_requests
       <= a.metrics.Analytic.avg_waiting_requests
    && (b.metrics.Analytic.power < a.metrics.Analytic.power
       || b.metrics.Analytic.avg_waiting_requests
          < a.metrics.Analytic.avg_waiting_requests)
  in
  let survivors =
    List.filter
      (fun a -> not (List.exists (fun b -> dominated a b) solutions))
      solutions
  in
  List.sort_uniq
    (fun a b ->
      compare
        (a.metrics.Analytic.power, a.metrics.Analytic.avg_waiting_requests)
        (b.metrics.Analytic.power, b.metrics.Analytic.avg_waiting_requests))
    survivors

type randomized_solution = {
  bound : float;
  distributions : (int * float) list array;
  lagrange_multiplier : float;
  randomized_states : Sys_model.state list;
  metrics : Analytic.metrics;
}

let constrained_exact sys ~max_waiting_requests =
  if max_waiting_requests <= 0.0 then
    invalid_arg "Optimize.constrained_exact: bound must be positive";
  (* Primary cost: pure power (weight 0); secondary: C_sq. *)
  let model = Sys_model.to_ctmdp sys ~weight:0.0 in
  let secondary i _k =
    float_of_int (Sys_model.waiting_requests (Sys_model.state_of_index sys i))
  in
  match
    Dpm_ctmdp.Constrained_lp.solve model ~secondary ~bound:max_waiting_requests
  with
  | None -> None
  | Some r ->
      let gen, power_rates =
        Dpm_ctmdp.Constrained_lp.mixed_generator model
          r.Dpm_ctmdp.Constrained_lp.distributions
      in
      let metrics = Analytic.of_mixed sys ~gen ~power_rates in
      let distributions =
        Array.mapi
          (fun i dist ->
            let out = ref [] in
            Array.iteri
              (fun k p ->
                if p > 1e-6 then
                  out :=
                    ((Dpm_ctmdp.Model.choice model i k).Dpm_ctmdp.Model.action, p)
                    :: !out)
              dist;
            List.rev !out)
          r.Dpm_ctmdp.Constrained_lp.distributions
      in
      Some
        {
          bound = max_waiting_requests;
          distributions;
          lagrange_multiplier = r.Dpm_ctmdp.Constrained_lp.lagrange_multiplier;
          randomized_states =
            List.map (Sys_model.state_of_index sys)
              r.Dpm_ctmdp.Constrained_lp.randomized_states;
          metrics;
        }

let constrained ?(w_lo = 0.0) ?(w_hi = 1024.0) ?(bisection_steps = 40) sys
    ~max_waiting_requests =
  if max_waiting_requests <= 0.0 then
    invalid_arg "Optimize.constrained: bound must be positive";
  let feasible (s : solution) =
    s.metrics.Analytic.avg_waiting_requests <= max_waiting_requests
  in
  (* Grow the upper weight until the delay bound is met. *)
  let rec find_hi w attempts =
    let s = solve ~weight:w sys in
    if feasible s then Some (w, s)
    else if attempts = 0 then None
    else find_hi (w *. 2.0) (attempts - 1)
  in
  match find_hi w_hi 10 with
  | None -> None
  | Some (hi0, s_hi) ->
      let lo_solution = solve ~weight:w_lo sys in
      if feasible lo_solution then Some lo_solution
      else begin
        (* Invariant: lo infeasible, hi feasible with solution best. *)
        let rec bisect lo hi (best : solution) k =
          if k = 0 then Some best
          else begin
            let mid = 0.5 *. (lo +. hi) in
            let s = solve ~weight:mid sys in
            if feasible s then
              let best =
                if s.metrics.Analytic.power < best.metrics.Analytic.power then s
                else best
              in
              bisect lo mid best (k - 1)
            else bisect mid hi best (k - 1)
          end
        in
        bisect w_lo hi0 s_hi bisection_steps
      end
