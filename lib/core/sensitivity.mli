(** Robustness of policies to workload mismatch.

    Section III of the paper argues a power manager can estimate the
    input rate online and adapt.  The quantitative question behind
    that remark: how much does a policy designed for rate [lambda_0]
    lose when the true rate is [lambda]?  This module evaluates fixed
    policies across rate grids and computes the mismatch regret that
    the adaptive example ({!examples/adaptive_workload.ml}) exists to
    eliminate. *)

type point = {
  rate : float;  (** the true arrival rate *)
  metrics : Analytic.metrics;  (** the fixed policy under that rate *)
  objective : float;  (** [power + weight * waiting] at that rate *)
  optimal_objective : float;
      (** the same objective under the policy re-optimized for
          [rate] *)
  regret : float;  (** [objective - optimal_objective], [>= 0] *)
}

val rate_sweep_r :
  ?domains:int ->
  ?warm:bool ->
  Sys_model.t ->
  actions:int array ->
  weight:float ->
  rates:float list ->
  (float * (point, exn) result) list
(** [rate_sweep_r sys ~actions ~weight ~rates] evaluates the fixed
    policy [actions] (tabulated over [sys]'s state indexing, e.g. an
    {!Optimize.solution}'s) at each true rate, with per-point failure
    containment: a grid point whose evaluation raises yields
    [(r, Error exn)] while the rest of the grid still returns
    [(r, Ok point)] — no global abort; failures increment the
    [par.item_failures] {!Dpm_obs} counter.  The policy table is
    carried over by state (the state space does not depend on the
    rate).  Grid points are solved on the {!Dpm_par} pool ([domains]
    defaults to {!Dpm_par.default_domains}); results come back in
    [rates] order regardless of the domain count.  [warm] (default
    [true]) runs the grid in the {!Dpm_cache.Warm.waves} schedule and
    seeds each point's re-optimization with an already-solved
    neighbor's policy — the schedule is a function of the grid size
    only, so results stay domain-count-invariant; [~warm:false]
    restores independent cold solves.  Raises [Invalid_argument] on a
    wrong-sized action table or nonpositive rates. *)

val rate_sweep :
  ?domains:int ->
  ?warm:bool ->
  Sys_model.t ->
  actions:int array ->
  weight:float ->
  rates:float list ->
  point list
(** {!rate_sweep_r} with failures re-raised: the exception of the
    earliest failing rate propagates (after all other points
    finished). *)

val mismatch_regret :
  Sys_model.t -> weight:float -> design_rate:float -> true_rate:float -> float
(** [mismatch_regret sys ~weight ~design_rate ~true_rate] is the
    objective gap of the design-rate-optimal policy evaluated at the
    true rate, against the true-rate optimum.  Zero (up to solver
    tolerance) when the rates coincide; always [>= -epsilon]. *)

val break_even_estimation_error :
  ?domains:int ->
  Sys_model.t ->
  weight:float ->
  design_rate:float ->
  tolerance:float ->
  float
(** [break_even_estimation_error sys ~weight ~design_rate ~tolerance]
    searches (geometrically, factor 2 per step, then bisection) for
    the relative rate-estimation error at which the mismatch regret
    first exceeds [tolerance] (in objective units) — "how well must
    the PM estimate lambda before re-optimizing stops mattering?",
    the paper's 5%-after-50-events remark quantified.  Returns the
    relative error (e.g. [0.25] for 25%), capped at [8.0]. *)
