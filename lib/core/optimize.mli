(** Policy optimization — Section IV and Figure 3 of the paper.

    The workflow: build the CTMDP of the composed system with the
    weighted cost of Eqn. (3.1), run average-cost policy iteration,
    and read the optimal stationary policy off the result.  Sweeping
    the weight [w] traces the power/delay trade-off curve of
    Figure 4; the delay-constrained problem of Section IV (minimum
    power subject to a bound on the average number of waiting
    requests) is solved by bisection on [w] over that monotone
    frontier. *)

type solution = {
  weight : float;  (** the [w] of Eqn. (3.1) used *)
  actions : int array;  (** optimal action per state index *)
  gain : float;  (** optimal average total cost per unit time *)
  iterations : int;  (** policy-iteration sweeps *)
  metrics : Analytic.metrics;  (** analytic metrics of the policy *)
  provenance : Dpm_trace.Provenance.t;
      (** full solve provenance: the built CTMDP's structural
          fingerprint, cache-hit/warm/cold origin, eval path,
          iterations, final residual, robustness counters, wall
          clock, and the [weight]/[arrival_rate] the solve ran at. *)
}

val solve :
  ?weight:float ->
  ?init_actions:int array ->
  ?guard:(unit -> unit) ->
  ?eval:Dpm_ctmdp.Policy_iteration.eval_path ->
  Sys_model.t ->
  solution
(** [solve sys ~weight] minimizes
    [C_pow + weight * C_sq] (default weight 0, pure power).  The
    reported [gain] is the weighted objective; [metrics] carries the
    separated power and delay terms.  [guard] (default no-op) is
    threaded into the policy-iteration loop and may raise to abort —
    the [Dpm_robust] deadline hook.

    Results are memoized in {!Dpm_cache.Solve_cache} (keyed on the
    built CTMDP's structural fingerprint); a repeat solve of the same
    system and weight returns the cached policy, gain, and iteration
    count, with the analytic metrics recomputed.  Only post-retry
    results are stored, so the multichain tie-breaking below is never
    bypassed.  [init_actions] (e.g. a neighboring grid point's
    [actions]) warm-starts policy iteration; an action table that is
    the wrong size or requests a label some state lacks falls back to
    a cold start ({!Dpm_cache.Warm.init_of_actions}).

    [eval] (default [Auto]) selects the policy-evaluation backend
    (see {!Dpm_ctmdp.Policy_iteration.eval_path}; the CLI's
    [--eval] flag lands here).  The cache key includes it: results
    agree across backends to solver tolerance but are not
    bit-identical, and a caller pinning a backend is usually
    measuring that very path. *)

val action_of : Sys_model.t -> solution -> Sys_model.state -> int
(** Read a solution as a policy function. *)

val solve_at :
  ?weight:float ->
  ?init_actions:int array ->
  ?guard:(unit -> unit) ->
  ?eval:Dpm_ctmdp.Policy_iteration.eval_path ->
  Sys_model.t ->
  arrival_rate:float ->
  (Sys_model.t * solution, exn) result
(** [solve_at sys ~arrival_rate] rebuilds [sys] at a new arrival rate
    ({!Sys_model.with_arrival_rate}) and runs {!solve} on it, with
    failure containment: any solver exception (including a
    [Dpm_robust] deadline or injected fault raised through [guard])
    comes back as [Error] instead of propagating, so an online
    re-optimizer can fall back to its incumbent policy.  Asynchronous
    resource exhaustion ([Out_of_memory], [Stack_overflow]) is still
    re-raised.  The returned system shares the state indexing of
    [sys] — only rates change — so [init_actions] from a policy
    solved at another rate is a valid warm start, and the returned
    [actions] index into either system interchangeably. *)

val sweep_r :
  ?domains:int ->
  ?guard:(unit -> unit) ->
  ?warm:bool ->
  Sys_model.t ->
  weights:float list ->
  (float * (solution, exn) result) list
(** [sweep_r sys ~weights] solves for each weight (in the given
    order), with per-point failure containment: a grid point whose
    solve raises yields [(w, Error exn)] while every other point
    still returns [(w, Ok solution)] — there is no global abort, and
    each failure increments the [par.item_failures] {!Dpm_obs}
    counter (via {!Dpm_par.parallel_map_result}).  Weights are solved
    on the {!Dpm_par} pool ([domains] defaults to
    {!Dpm_par.default_domains}); the result order and every solution
    are identical whatever the domain count.

    [warm] (default [true]) runs the grid in the deterministic
    {!Dpm_cache.Warm.waves} schedule, warm-starting each point from
    an already-solved neighbor's policy — typically halving the total
    policy-iteration count of a sweep.  The schedule depends only on
    the grid size, never on the domain count, so determinism is
    preserved; a failed or invalid seed degrades that point to a cold
    start.  [~warm:false] restores fully independent cold solves. *)

val sweep :
  ?domains:int ->
  ?warm:bool ->
  Sys_model.t ->
  weights:float list ->
  solution list
(** [sweep sys ~weights] is {!sweep_r} with failures re-raised: the
    exception of the {e earliest} failing weight propagates (after
    all other points finished).  Figure 4 uses a geometric ladder of
    weights. *)

val default_weights : float list
(** A 20-point geometric ladder from 0.1 to 500 — a reasonable
    default for tracing the trade-off curve of a watts-scale SP. *)

val pareto : solution list -> solution list
(** Filter to the non-dominated set under
    [(power, avg_waiting_requests)], sorted by increasing power. *)

type randomized_solution = {
  bound : float;  (** the delay bound requested *)
  distributions : (int * float) list array;
      (** per state index: [(action, probability)] pairs (probability
          > 1e-6 only) *)
  lagrange_multiplier : float;
      (** shadow price of the bound — the [w] at which the weighted
          problem would produce this trade-off *)
  randomized_states : Sys_model.state list;
      (** where the policy genuinely mixes (at most one state for a
          single constraint, barring degeneracy) *)
  metrics : Analytic.metrics;  (** exact metrics of the mixed chain *)
}

val constrained_exact :
  Sys_model.t -> max_waiting_requests:float -> randomized_solution option
(** The paper's Section IV problem solved {e exactly} by linear
    programming over occupation measures
    ({!Dpm_ctmdp.Constrained_lp}): minimum average power subject to
    the average number of waiting requests staying within the bound.
    Unlike {!constrained} (weight bisection), which can only return
    deterministic policies on the frontier's lower convex hull, the
    LP optimum may randomize in one state and therefore reaches every
    point of the hull — it is never worse, and strictly better
    whenever the bound falls in a concave gap of the deterministic
    frontier.  Realize the mixture in practice with
    {!Dpm_sim.Controller.time_shared} between the two adjacent
    deterministic policies.  [None] when even full power cannot meet
    the bound. *)

val constrained :
  ?w_lo:float ->
  ?w_hi:float ->
  ?bisection_steps:int ->
  Sys_model.t ->
  max_waiting_requests:float ->
  solution option
(** [constrained sys ~max_waiting_requests] finds (approximately) the
    minimum-power policy whose stationary average number of waiting
    requests is at most the bound: it grows [w_hi] (default 1024,
    doubling up to 2^20) until feasible, then bisects [bisection_steps]
    times (default 40) and returns the cheapest feasible solution
    seen.  [None] when even the largest weight cannot meet the bound
    (the SP simply cannot keep up). *)
