type point = {
  rate : float;
  metrics : Analytic.metrics;
  objective : float;
  optimal_objective : float;
  regret : float;
}

let objective_of ~weight (m : Analytic.metrics) =
  m.Analytic.power +. (weight *. m.Analytic.avg_waiting_requests)

(* Returns the sensitivity point plus the re-optimized policy's action
   table, so sweeps can warm-start neighboring rates from it. *)
let point_at_warm sys ~actions ~weight ?init_actions rate =
  let sys' = Sys_model.with_arrival_rate sys rate in
  let metrics = Analytic.of_action_array sys' actions in
  let objective = objective_of ~weight metrics in
  let optimal = Optimize.solve ~weight ?init_actions sys' in
  let optimal_objective = objective_of ~weight optimal.Optimize.metrics in
  ( {
      rate;
      metrics;
      objective;
      optimal_objective;
      regret = objective -. optimal_objective;
    },
    optimal.Optimize.actions )

let point_at sys ~actions ~weight rate =
  fst (point_at_warm sys ~actions ~weight rate)

let check_sweep_args sys ~actions ~rates =
  if Array.length actions <> Sys_model.num_states sys then
    invalid_arg "Sensitivity.rate_sweep: action table size mismatch";
  List.iter
    (fun r ->
      if r <= 0.0 || not (Float.is_finite r) then
        invalid_arg "Sensitivity.rate_sweep: rates must be positive")
    rates

let rate_sweep_r ?domains ?(warm = true) sys ~actions ~weight ~rates =
  check_sweep_args sys ~actions ~rates;
  (* Each grid point re-solves the CTMDP — order-deterministic and
     fenced per point: one poisoned rate becomes an [Error] slot, the
     rest of the grid survives.  With [warm] (the default) the grid
     runs in the {!Dpm_cache.Warm.waves} schedule and each point's
     re-optimization is seeded by an already-solved neighbor's policy;
     the schedule depends only on the grid size, so results are
     identical at any domain count. *)
  let rs = Array.of_list rates in
  let n = Array.length rs in
  let results = Array.make n None in
  let solve_point (k, src) =
    let init_actions =
      match src with
      | None -> None
      | Some j -> (
          match results.(j) with
          | Some (Ok (_, opt_actions)) -> Some opt_actions
          | Some (Error _) | None -> None)
    in
    point_at_warm sys ~actions ~weight ?init_actions rs.(k)
  in
  let schedule =
    if warm then Dpm_cache.Warm.waves n
    else if n = 0 then []
    else [ Array.init n (fun k -> (k, None)) ]
  in
  List.iter
    (fun wave ->
      let out = Dpm_par.parallel_map_result ?domains solve_point wave in
      Array.iteri
        (fun slot r ->
          let k, _ = wave.(slot) in
          results.(k) <- Some r)
        out)
    schedule;
  List.combine rates
    (Array.to_list
       (Array.map
          (function
            | Some (Ok (point, _)) -> Ok point
            | Some (Error exn) -> Error exn
            | None -> assert false)
          results))

let rate_sweep ?domains ?warm sys ~actions ~weight ~rates =
  check_sweep_args sys ~actions ~rates;
  List.map
    (fun (_, r) -> match r with Ok p -> p | Error exn -> raise exn)
    (rate_sweep_r ?domains ?warm sys ~actions ~weight ~rates)

let mismatch_regret sys ~weight ~design_rate ~true_rate =
  let design_sys = Sys_model.with_arrival_rate sys design_rate in
  let sol = Optimize.solve ~weight design_sys in
  (point_at sys ~actions:sol.Optimize.actions ~weight true_rate).regret

let break_even_estimation_error ?domains sys ~weight ~design_rate ~tolerance =
  if tolerance <= 0.0 then
    invalid_arg "Sensitivity.break_even_estimation_error: tolerance must be positive";
  let regret_at rel_err =
    (* Test both under- and over-estimation (a pair of independent
       solves, run on the pool); take the worse. *)
    match
      Dpm_par.parallel_map_list ?domains
        (fun true_rate -> mismatch_regret sys ~weight ~design_rate ~true_rate)
        [ design_rate /. (1.0 +. rel_err); design_rate *. (1.0 +. rel_err) ]
    with
    | [ lo; hi ] -> Float.max lo hi
    | _ -> assert false
  in
  (* Geometric search for a bracketing error, then bisection. *)
  let cap = 8.0 in
  let rec grow e = if e >= cap then cap else if regret_at e > tolerance then e else grow (2.0 *. e) in
  let hi = grow 0.01 in
  if hi >= cap then cap
  else begin
    let rec bisect lo hi k =
      if k = 0 then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if regret_at mid > tolerance then bisect lo mid (k - 1)
        else bisect mid hi (k - 1)
      end
    in
    bisect (hi /. 2.0) hi 12
  end
