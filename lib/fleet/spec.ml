open Dpm_core

type group = {
  name : string;
  sp : Service_provider.t;
  queue_capacity : int;
  count : int;
  routing_weight : float;
  off_power : float;
}

type t = {
  groups : group array;
  weight : float;
  boot_rate : float;
  boot_energy : float;
  shutdown_rate : float;
  shutdown_energy : float;
  min_active : int;
  loss_penalty : float;
}

let check_finite ctx v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Dpm_fleet.Spec: %s must be finite (got %g)" ctx v)

let check_pos ctx v =
  check_finite ctx v;
  if v <= 0.0 then
    invalid_arg (Printf.sprintf "Dpm_fleet.Spec: %s must be positive (got %g)" ctx v)

let check_nonneg ctx v =
  check_finite ctx v;
  if v < 0.0 then
    invalid_arg
      (Printf.sprintf "Dpm_fleet.Spec: %s must be nonnegative (got %g)" ctx v)

let group ?(routing_weight = 1.0) ?(off_power = 0.0) ~name ~sp ~queue_capacity
    ~count () =
  if count < 1 then
    invalid_arg (Printf.sprintf "Dpm_fleet.Spec: group %S count must be >= 1" name);
  if queue_capacity < 1 then
    invalid_arg
      (Printf.sprintf "Dpm_fleet.Spec: group %S queue capacity must be >= 1" name);
  check_pos (Printf.sprintf "group %S routing_weight" name) routing_weight;
  check_nonneg (Printf.sprintf "group %S off_power" name) off_power;
  { name; sp; queue_capacity; count; routing_weight; off_power }

let create ?(weight = 1.0) ?(boot_rate = 1.0) ?(boot_energy = 0.0)
    ?(shutdown_rate = 1.0) ?(shutdown_energy = 0.0) ?(min_active = 1)
    ?(loss_penalty = 0.0) groups =
  if groups = [] then invalid_arg "Dpm_fleet.Spec.create: empty group list";
  check_nonneg "weight" weight;
  check_pos "boot_rate" boot_rate;
  check_nonneg "boot_energy" boot_energy;
  check_pos "shutdown_rate" shutdown_rate;
  check_nonneg "shutdown_energy" shutdown_energy;
  check_nonneg "loss_penalty" loss_penalty;
  let groups = Array.of_list groups in
  let names = Hashtbl.create 7 in
  Array.iter
    (fun g ->
      if Hashtbl.mem names g.name then
        invalid_arg
          (Printf.sprintf "Dpm_fleet.Spec.create: duplicate group name %S" g.name);
      Hashtbl.add names g.name ())
    groups;
  let n = Array.fold_left (fun acc g -> acc + g.count) 0 groups in
  if min_active < 1 || min_active > n then
    invalid_arg
      (Printf.sprintf "Dpm_fleet.Spec.create: min_active %d outside [1, %d]"
         min_active n);
  { groups; weight; boot_rate; boot_energy; shutdown_rate; shutdown_energy;
    min_active; loss_penalty }

let num_servers t = Array.fold_left (fun acc g -> acc + g.count) 0 t.groups
let num_groups t = Array.length t.groups

let group_of_server t i =
  let n = num_servers t in
  if i < 0 || i >= n then
    invalid_arg
      (Printf.sprintf "Dpm_fleet.Spec.group_of_server: %d outside [0, %d)" i n);
  let rec go g base =
    if i < base + t.groups.(g).count then g else go (g + 1) (base + t.groups.(g).count)
  in
  go 0 0

(* Number of servers of [group] inside the active flat prefix [0..active-1]. *)
let active_in_group t ~active ~group =
  if group < 0 || group >= num_groups t then
    invalid_arg "Dpm_fleet.Spec.active_in_group: bad group index";
  let base = ref 0 in
  for g = 0 to group - 1 do
    base := !base + t.groups.(g).count
  done;
  max 0 (min t.groups.(group).count (active - !base))

let total_active_weight t ~active =
  let acc = ref 0.0 in
  for g = 0 to num_groups t - 1 do
    acc :=
      !acc
      +. float_of_int (active_in_group t ~active ~group:g)
         *. t.groups.(g).routing_weight
  done;
  !acc

let group_rate t ~total_rate ~active ~group =
  let n = num_servers t in
  if active < 1 || active > n then
    invalid_arg
      (Printf.sprintf "Dpm_fleet.Spec.group_rate: active %d outside [1, %d]"
         active n);
  if active_in_group t ~active ~group = 0 then 0.0
  else
    (* share first, then scale: a single active server yields exactly
       [total_rate] (w /. w = 1.0), which the degenerate-fleet golden
       reduction relies on. *)
    total_rate *. (t.groups.(group).routing_weight /. total_active_weight t ~active)

let server_rate t ~total_rate ~active ~server =
  let g = group_of_server t server in
  if server >= active then 0.0
  else group_rate t ~total_rate ~active ~group:g

let base_system t g =
  let gr = t.groups.(g) in
  Sys_model.create ~sp:gr.sp ~queue_capacity:gr.queue_capacity ~arrival_rate:1.0 ()

let max_power t g =
  let sp = t.groups.(g).sp in
  let acc = ref neg_infinity in
  for s = 0 to Service_provider.num_modes sp - 1 do
    acc := Float.max !acc (Service_provider.power sp s)
  done;
  !acc

let pp fmt t =
  Format.fprintf fmt "%d servers in %d groups (w=%g, min_active=%d)"
    (num_servers t) (num_groups t) t.weight t.min_active
