(** The cluster-level CTMDP: how many servers to keep on.

    Following the multi-level decomposition of Chitsaz et al.
    (PAPERS.md), the cluster controller sees only an aggregate state
    [(load phase, active count)] and chooses a target count in
    [{k-1, k, k+1}]: a birth-death CTMDP whose per-state running cost
    is the sum of the {e optimal per-server gains} at the routed
    rates (one {!Dpm_core.Optimize} solve per distinct
    (group, rate) job, deduplicated through the solve cache and
    sharded over {!Dpm_par}), plus the off-power of deactivated
    servers, plus boot/shutdown energy at the transition rates.  The
    chain moves between counts at the spec's boot/shutdown rates and
    between load phases at the [load]'s switch rates. *)

type load = {
  rates : float array;  (** fleet-wide arrival rate per phase, [> 0] *)
  switch : float array array;
      (** phase-switch rates; [switch.(m).(m')] with [m <> m'] is the
          rate from phase [m] to [m'] ([>= 0]); diagonals ignored *)
}
(** A modulating fleet-load process (MMPP-style). *)

val uniform_load : rate:float -> load
(** A single stationary phase. *)

val cyclic_load : (float * float) list -> load
(** [cyclic_load [(rate, dwell); ...]] is a cyclic phase chain where
    phase [m] holds mean [dwell] seconds then moves to the next
    phase (wrapping).  A single pair degenerates to
    {!uniform_load}.  Raises [Invalid_argument] on non-positive
    rates or dwells. *)

type measures = {
  expected_active : float;  (** stationary mean active count *)
  fleet_power : float;
      (** stationary electrical power (W): active servers at their
          optimal-policy draw + off-power + transition energy rate *)
  fleet_waiting : float;  (** stationary mean requests in the fleet *)
  fleet_throughput : float;  (** stationary accepted requests per s *)
  fleet_waiting_time : float;
      (** completion-weighted mean sojourn, [waiting / throughput]
          by Little's law on the accepted rate (0 when idle) *)
}
(** Stationary fleet-level functionals of the optimal cluster
    policy. *)

type t = {
  spec : Spec.t;
  load : load;
  counts : int array;  (** admissible active counts, ascending *)
  stay_cost : float array array;
      (** [stay_cost.(m).(ki)]: weighted running cost of holding
          [counts.(ki)] servers in phase [m] — per-server optimal
          gains plus off-power plus [loss_penalty] times the shed
          rate *)
  power_tbl : float array array;
      (** per-cell electrical power (W): optimal-policy draw of the
          active servers plus off-power of the rest *)
  waiting_tbl : float array array;
      (** per-cell stationary mean requests in the fleet *)
  throughput_tbl : float array array;
      (** per-cell stationary accepted requests per second *)
  targets : int array;
      (** optimal target count per flat state [m * K + ki] *)
  gain : float;  (** optimal average cost of the cluster CTMDP *)
  iterations : int;  (** policy-iteration sweeps *)
  stationary : float array;
      (** stationary distribution of the closed-loop cluster chain,
          flat over [m * K + ki] *)
  failures : ((int * float) * Dpm_robust.Error.t) list;
      (** per-(group, routed rate) solve failures — those cells use a
          pessimistic finite cost instead *)
}
(** A solved cluster controller. *)

val solve : ?domains:int -> ?guard:(unit -> unit) -> Spec.t -> load:load -> t
(** [solve spec ~load] builds and solves the cluster CTMDP.  All
    distinct per-server (group, routed rate) solves run first, on
    the domain pool, through the solve cache; a failed solve is
    tallied and its cells priced at {!Spec.max_power} + weight * Q
    (pessimistic, finite — {!Dpm_ctmdp.Model.create} rejects
    infinities).  Results are bit-identical at any domain count.
    Raises [Invalid_argument] on a malformed load. *)

val num_phases : t -> int
(** Number of load phases. *)

val target : t -> phase:int -> active:int -> int
(** The optimal commanded count in state [(phase, active)]. *)

val static_best : t -> phase:int -> int
(** The count minimizing the stay cost of [phase] — the closed-form
    optimum when transitions are free and the phase is held
    forever. *)

val settle : t -> phase:int -> from:int -> int
(** Follow the optimal policy's count dynamics from [from] within a
    held [phase] until a fixed point (or a bounded number of steps):
    the count the cluster dwells at. *)

val measures : t -> measures
(** Stationary fleet functionals under the optimal policy (see
    {!measures}). *)
