(** Per-server policy deployment for a fixed active set.

    [resolve] solves one CTMDP per {e active} server — sharded over
    the {!Dpm_par} domain pool and deduplicated by the
    {!Dpm_cache.Solve_cache} structural fingerprint, so a fleet of
    [N] servers with [k] distinct (group, routed-rate) models costs
    [k] solves and [N - k] cache hits — and degrades gracefully: a
    server whose solve fails (deadline, injected fault, numerical
    breakdown) keeps its incumbent policy from [?prev] when one
    exists, or falls back to always-on, and the failure is tallied
    with its {!Dpm_robust.Error} class.  The same semantics as
    {!Dpm_core.Optimize.sweep_r}: no global abort, ever. *)

open Dpm_core

type server = {
  server : int;  (** flat server index *)
  group : int;  (** group index *)
  sys : Sys_model.t;  (** the SYS at this server's routed rate *)
  actions : int array;  (** deployed policy, by state index *)
  solution : Optimize.solution option;
      (** the fresh solve behind [actions]; [None] for a carried-over
          incumbent or an always-on fallback *)
  fresh : bool;  (** [true] iff this deployment solved it just now *)
}
(** One powered-on server and its deployed policy. *)

type t = {
  spec : Spec.t;
  total_rate : float;  (** fleet-wide arrival rate the solves used *)
  active : int;  (** size of the active prefix *)
  servers : server option array;
      (** length {!Spec.num_servers}; [None] = deactivated *)
  failures : (int * Dpm_robust.Error.t) list;
      (** per-server solve failures, ascending server index *)
}
(** A deployment: every active server carries a policy even when its
    solve failed. *)

val resolve :
  ?domains:int ->
  ?guard:(unit -> unit) ->
  ?prev:t ->
  Spec.t ->
  total_rate:float ->
  active:int ->
  t
(** [resolve spec ~total_rate ~active] routes [total_rate] over the
    active prefix ({!Spec.server_rate}) and solves every active
    server's CTMDP at its routed rate on the domain pool ([domains]
    defaults to {!Dpm_par.default_domains}; results are bit-identical
    at any domain count).  [guard] is threaded into each solve.  On a
    per-server failure the incumbent from [?prev] (same server index,
    if it was deployed) survives unchanged; without one the server
    gets the always-on policy.  Raises [Invalid_argument] on a
    non-positive rate or [active] outside
    [[spec.min_active, num_servers]]. *)

val active_servers : t -> server array
(** The powered-on servers, ascending index. *)

val gain : t -> float
(** Sum of per-server optimal gains over servers with a fresh or
    carried solution; fallback servers contribute their always-on
    analytic cost.  This is the hierarchical estimate the flat joint
    oracle ({!Joint.gain}) must match on tiny fleets. *)
