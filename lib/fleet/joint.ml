open Dpm_core
open Dpm_linalg
module Generator = Dpm_ctmc.Generator
module Steady_state = Dpm_ctmc.Steady_state

type t = {
  servers : Deploy.server array;
  weight : float;
  dims : int array;
  strides : int array;  (* stride of each server's coordinate, server 0 major *)
  op : Operator.t;
}

let max_states = 20_000

let build (d : Deploy.t) =
  let n = Spec.num_servers d.Deploy.spec in
  if d.Deploy.active <> n then
    invalid_arg "Dpm_fleet.Joint.build: every server must be active";
  let servers = Deploy.active_servers d in
  let dims = Array.map (fun s -> Sys_model.num_states s.Deploy.sys) servers in
  let total = Array.fold_left ( * ) 1 dims in
  if total > max_states then
    invalid_arg
      (Printf.sprintf "Dpm_fleet.Joint.build: %d joint states exceeds cap %d"
         total max_states);
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  let closed_loop s =
    let sys = s.Deploy.sys in
    Sys_model.generator_of_actions sys ~actions:(fun x ->
        s.Deploy.actions.(Sys_model.index sys x))
  in
  let op =
    Array.fold_left
      (fun acc s ->
        let g = Operator.dense (Generator.to_matrix (closed_loop s)) in
        match acc with None -> Some g | Some a -> Some (Operator.kron_sum a g))
      None servers
    |> Option.get
  in
  { servers; weight = d.Deploy.spec.Spec.weight; dims; strides; op }

let num_states t = Operator.rows t.op
let dims t = Array.copy t.dims
let operator t = t.op

let stationary ?guard t =
  let gen = Generator.of_matrix (Operator.to_dense t.op) in
  Steady_state.solve ?guard gen

let stationary_implicit ?(tol = 1e-12) ?guard t =
  let r = Steady_state.implicit ~tol ?guard t.op in
  if not r.Iterative.converged then
    failwith
      (Printf.sprintf
         "Dpm_fleet.Joint.stationary_implicit: no convergence (residual %g)"
         r.Iterative.residual);
  r.Iterative.solution

let server_stationary (s : Deploy.server) =
  match s.Deploy.solution with
  | Some sol -> sol.Optimize.metrics.Analytic.state_probabilities
  | None -> (Analytic.of_action_array s.Deploy.sys s.Deploy.actions).Analytic.state_probabilities

let product_stationary t =
  let pis = Array.map server_stationary t.servers in
  let n = num_states t in
  Vec.init n (fun x ->
      let acc = ref 1.0 in
      Array.iteri
        (fun i stride -> acc := !acc *. pis.(i).((x / stride) mod t.dims.(i)))
        t.strides;
      !acc)

let marginal t pi ~server =
  if server < 0 || server >= Array.length t.servers then
    invalid_arg "Dpm_fleet.Joint.marginal: bad server index";
  let out = Vec.create t.dims.(server) in
  let stride = t.strides.(server) in
  Array.iteri
    (fun x p -> out.((x / stride) mod t.dims.(server)) <- out.((x / stride) mod t.dims.(server)) +. p)
    pi;
  out

let gain t pi =
  (* Per-server weighted cost of each local state under its deployed
     action; the joint cost rate is separable. *)
  let costs =
    Array.map
      (fun s ->
        let sys = s.Deploy.sys in
        Array.init (Sys_model.num_states sys) (fun xi ->
            Sys_model.cost sys ~weight:t.weight (Sys_model.state_of_index sys xi)
              ~action:s.Deploy.actions.(xi)))
      t.servers
  in
  let acc = ref 0.0 in
  Array.iteri
    (fun x p ->
      if p <> 0.0 then begin
        let c = ref 0.0 in
        Array.iteri
          (fun i stride -> c := !c +. costs.(i).((x / stride) mod t.dims.(i)))
          t.strides;
        acc := !acc +. (p *. !c)
      end)
    pi;
  !acc
