open Dpm_core
module Power_sim = Dpm_sim.Power_sim
module Workload = Dpm_sim.Workload
module Controller = Dpm_sim.Controller

type plan_segment = {
  seg_from : float;
  seg_until : float;
  seg_rate : float;
  seg_active : int;
}

type result = {
  horizon : float;
  num_servers : int;
  plan : plan_segment array;
  generated : int;
  accepted : int;
  lost : int;
  completed : int;
  switches : int;
  events : int;
  avg_active_servers : float;
  server_energy_j : float;
  off_energy_j : float;
  cluster_energy_j : float;
  avg_power_w : float;
  avg_waiting_time_s : float;
  cache_hits : int;
  cache_misses : int;
  resolve_failures : int;
  cluster : Cluster.t;
  server_results : Power_sim.result option array;
}

let rate_after segments final_rate t =
  let rec scan = function
    | [] -> final_rate
    | (until, rate) :: rest -> if t < until then rate else scan rest
  in
  scan segments

let run ?domains ?(seed = 1L) ?guard spec ~segments ~final_rate ~horizon =
  if (not (Float.is_finite horizon)) || horizon <= 0.0 then
    invalid_arg "Dpm_fleet.Fleet_sim.run: horizon must be positive and finite";
  let check_rate r =
    if (not (Float.is_finite r)) || r <= 0.0 then
      invalid_arg
        (Printf.sprintf "Dpm_fleet.Fleet_sim.run: plan rates must be positive (got %g)" r)
  in
  check_rate final_rate;
  let rec check_bounds prev = function
    | [] -> ()
    | (until, rate) :: rest ->
        check_rate rate;
        if until <= prev then
          invalid_arg "Dpm_fleet.Fleet_sim.run: plan boundaries must increase";
        check_bounds until rest
  in
  check_bounds 0.0 segments;
  let n = Spec.num_servers spec in
  (* 1. The plan skeleton: one segment per rate stretch inside the
     horizon. *)
  let bounds =
    List.filter (fun u -> u < horizon) (List.map fst segments)
  in
  let starts = 0.0 :: bounds in
  let ends = bounds @ [ horizon ] in
  let seg_rates =
    List.map (fun s -> rate_after segments final_rate s) starts
  in
  (* 2. The cluster CTMDP over the plan's phases (dwell = segment
     width) picks how many servers each segment keeps on. *)
  let load =
    Cluster.cyclic_load
      (List.map2 (fun r (s, e) -> (r, e -. s)) seg_rates
         (List.combine starts ends))
  in
  let cluster = Cluster.solve ?domains ?guard spec ~load in
  let nseg = List.length starts in
  let seg_rates = Array.of_list seg_rates in
  let seg_starts = Array.of_list starts in
  let seg_ends = Array.of_list ends in
  let actives = Array.make nseg 0 in
  for j = 0 to nseg - 1 do
    (* cyclic_load collapses a single phase, so clamp the phase
       index; with one segment the settle point is phase 0's. *)
    let phase = if Cluster.num_phases cluster = 1 then 0 else j in
    let from =
      if j = 0 then Cluster.static_best cluster ~phase else actives.(j - 1)
    in
    actives.(j) <- Cluster.settle cluster ~phase ~from
  done;
  let plan =
    Array.init nseg (fun j ->
        {
          seg_from = seg_starts.(j);
          seg_until = seg_ends.(j);
          seg_rate = seg_rates.(j);
          seg_active = actives.(j);
        })
  in
  (* 3. Deploy per-server policies per segment.  Every solve goes
     through the solve cache (the cluster table above already warmed
     all distinct (group, rate) jobs); the stats delta is the
     dedup-effectiveness measurement the bench gates on. *)
  let stats0 = Dpm_cache.Solve_cache.stats () in
  let deployments = Array.make nseg None in
  for j = 0 to nseg - 1 do
    let prev = if j = 0 then None else deployments.(j - 1) in
    deployments.(j) <-
      Some
        (Deploy.resolve ?domains ?guard ?prev spec ~total_rate:seg_rates.(j)
           ~active:actives.(j))
  done;
  let deployments = Array.map Option.get deployments in
  let stats1 = Dpm_cache.Solve_cache.stats () in
  let cache_hits = stats1.Dpm_cache.Lru.hits - stats0.Dpm_cache.Lru.hits in
  let cache_misses = stats1.Dpm_cache.Lru.misses - stats0.Dpm_cache.Lru.misses in
  let resolve_failures =
    Array.fold_left
      (fun acc (d : Deploy.t) -> acc + List.length d.Deploy.failures)
      0 deployments
  in
  (* 4. One full-horizon simulation per server. *)
  let interior = Array.to_list (Array.sub seg_ends 0 (nseg - 1)) in
  let seg_index t =
    let j = ref 0 in
    while !j < nseg - 1 && t >= seg_ends.(!j) do
      incr j
    done;
    !j
  in
  let seeds = Array.of_list (Dpm_prob.Rng.seed_stream ~base:seed n) in
  let simulate i =
    let ever_on = Array.exists (fun k -> i < k) actives in
    if not ever_on then None
    else begin
      let g = Spec.group_of_server spec i in
      let sys = Spec.base_system spec g in
      let sp = Sys_model.sp sys in
      let park =
        match Service_provider.deepest_sleep sp with
        | m -> m
        | exception Not_found -> Service_provider.fastest_active sp
      in
      let server_rate j =
        if i < actives.(j) then
          Spec.server_rate spec ~total_rate:seg_rates.(j) ~active:actives.(j)
            ~server:i
        else 0.0
      in
      (* Routed piecewise rates; final rate 0 ends the stream at the
         horizon boundary instead of thinning forever. *)
      let workload =
        Workload.piecewise
          ~segments:(List.init nseg (fun j -> (seg_ends.(j), server_rate j)))
          ~final_rate:0.0
      in
      let policy t state =
        let j = seg_index t in
        if i < actives.(j) then
          let s = Option.get deployments.(j).Deploy.servers.(i) in
          s.Deploy.actions.(Sys_model.index sys state)
        else park
      in
      let controller =
        Controller.of_time_policy ~name:(Printf.sprintf "fleet-server-%d" i)
          ~wake:(interior @ [ horizon ])
          sys ~policy
      in
      let initial_mode =
        if i < actives.(0) then Service_provider.fastest_active sp else park
      in
      Some
        (Power_sim.run ~seed:seeds.(i) ~initial_mode ~sys ~workload ~controller
           ~segments:interior ~stop:(Power_sim.Sim_time horizon) ())
    end
  in
  let server_results =
    Dpm_par.parallel_map ?domains simulate (Array.init n (fun i -> i))
  in
  (* 5. Aggregate the tiers. *)
  let generated = ref 0 and accepted = ref 0 and lost = ref 0 in
  let completed = ref 0 and switches = ref 0 in
  let sojourn_weighted = ref 0.0 in
  let server_energy = ref 0.0 and off_energy = ref 0.0 in
  Array.iteri
    (fun i res ->
      let off_w = spec.Spec.groups.(Spec.group_of_server spec i).Spec.off_power in
      match res with
      | None -> off_energy := !off_energy +. (off_w *. horizon)
      | Some (r : Power_sim.result) ->
          generated := !generated + r.Power_sim.generated;
          accepted := !accepted + r.Power_sim.accepted;
          lost := !lost + r.Power_sim.lost;
          completed := !completed + r.Power_sim.completed;
          switches := !switches + r.Power_sim.switch_count;
          sojourn_weighted :=
            !sojourn_weighted
            +. (float_of_int r.Power_sim.completed *. r.Power_sim.avg_waiting_time);
          Array.iteri
            (fun j (sg : Power_sim.segment) ->
              let width = sg.Power_sim.seg_end -. sg.Power_sim.seg_start in
              if width > 0.0 then
                if i < actives.(j) then
                  server_energy := !server_energy +. (sg.Power_sim.seg_power *. width)
                else off_energy := !off_energy +. (off_w *. width))
            r.Power_sim.segments)
    server_results;
  let cluster_energy = ref 0.0 in
  for j = 1 to nseg - 1 do
    let d = actives.(j) - actives.(j - 1) in
    if d > 0 then
      cluster_energy :=
        !cluster_energy +. (float_of_int d *. spec.Spec.boot_energy)
    else if d < 0 then
      cluster_energy :=
        !cluster_energy +. (float_of_int (-d) *. spec.Spec.shutdown_energy)
  done;
  let avg_active =
    Array.fold_left ( +. ) 0.0
      (Array.init nseg (fun j ->
           float_of_int actives.(j) *. (seg_ends.(j) -. seg_starts.(j))))
    /. horizon
  in
  {
    horizon;
    num_servers = n;
    plan;
    generated = !generated;
    accepted = !accepted;
    lost = !lost;
    completed = !completed;
    switches = !switches;
    events = !generated + !completed + !switches;
    avg_active_servers = avg_active;
    server_energy_j = !server_energy;
    off_energy_j = !off_energy;
    cluster_energy_j = !cluster_energy;
    avg_power_w = (!server_energy +. !off_energy +. !cluster_energy) /. horizon;
    avg_waiting_time_s =
      (if !completed > 0 then !sojourn_weighted /. float_of_int !completed
       else 0.0);
    cache_hits;
    cache_misses;
    resolve_failures;
    cluster;
    server_results;
  }

let pp fmt r =
  Format.fprintf fmt
    "fleet: %d servers, horizon %gs, %d segments@." r.num_servers r.horizon
    (Array.length r.plan);
  Array.iter
    (fun s ->
      Format.fprintf fmt "  [%g, %g) rate=%g active=%d@." s.seg_from s.seg_until
        s.seg_rate s.seg_active)
    r.plan;
  Format.fprintf fmt
    "  arrivals=%d accepted=%d lost=%d completed=%d switches=%d@." r.generated
    r.accepted r.lost r.completed r.switches;
  Format.fprintf fmt
    "  energy: servers=%.1fJ off=%.1fJ cluster=%.1fJ (avg %.2fW)@."
    r.server_energy_j r.off_energy_j r.cluster_energy_j r.avg_power_w;
  Format.fprintf fmt "  mean sojourn=%.4fs mean active=%.2f@."
    r.avg_waiting_time_s r.avg_active_servers;
  Format.fprintf fmt "  cache: %d hits / %d misses; solve failures=%d@."
    r.cache_hits r.cache_misses r.resolve_failures
