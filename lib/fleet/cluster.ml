open Dpm_core
module Model = Dpm_ctmdp.Model
module Policy = Dpm_ctmdp.Policy
module Pi = Dpm_ctmdp.Policy_iteration
module Steady_state = Dpm_ctmc.Steady_state
module Generator = Dpm_ctmc.Generator

type load = { rates : float array; switch : float array array }

let uniform_load ~rate = { rates = [| rate |]; switch = [| [| 0.0 |] |] }

let cyclic_load pairs =
  if pairs = [] then invalid_arg "Dpm_fleet.Cluster.cyclic_load: empty phase list";
  List.iter
    (fun (rate, dwell) ->
      if (not (Float.is_finite rate)) || rate <= 0.0 then
        invalid_arg (Printf.sprintf "Dpm_fleet.Cluster.cyclic_load: bad rate %g" rate);
      if (not (Float.is_finite dwell)) || dwell <= 0.0 then
        invalid_arg
          (Printf.sprintf "Dpm_fleet.Cluster.cyclic_load: bad dwell %g" dwell))
    pairs;
  let m = List.length pairs in
  let rates = Array.of_list (List.map fst pairs) in
  if m = 1 then uniform_load ~rate:rates.(0)
  else begin
    let switch = Array.make_matrix m m 0.0 in
    List.iteri
      (fun i (_, dwell) -> switch.(i).((i + 1) mod m) <- 1.0 /. dwell)
      pairs;
    { rates; switch }
  end

type measures = {
  expected_active : float;
  fleet_power : float;
  fleet_waiting : float;
  fleet_throughput : float;
  fleet_waiting_time : float;
}

type t = {
  spec : Spec.t;
  load : load;
  counts : int array;
  stay_cost : float array array;
  power_tbl : float array array;
  waiting_tbl : float array array;
  throughput_tbl : float array array;
  targets : int array;
  gain : float;
  iterations : int;
  stationary : float array;
  failures : ((int * float) * Dpm_robust.Error.t) list;
}

let validate_load load =
  let m = Array.length load.rates in
  if m = 0 then invalid_arg "Dpm_fleet.Cluster: load has no phases";
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r <= 0.0 then
        invalid_arg (Printf.sprintf "Dpm_fleet.Cluster: bad phase rate %g" r))
    load.rates;
  if Array.length load.switch <> m then
    invalid_arg "Dpm_fleet.Cluster: switch matrix dimension mismatch";
  Array.iteri
    (fun i row ->
      if Array.length row <> m then
        invalid_arg "Dpm_fleet.Cluster: switch matrix dimension mismatch";
      Array.iteri
        (fun j r ->
          if i <> j && ((not (Float.is_finite r)) || r < 0.0) then
            invalid_arg
              (Printf.sprintf "Dpm_fleet.Cluster: bad switch rate %g" r))
        row)
    load.switch

(* Stationary distribution of the closed-loop cluster chain.  The
   optimal policy can leave several counts absorbing (e.g. distinct
   phases settling at distinct counts with no phase coupling); in
   that case restrict to the forward closure of [start] — closed
   under transitions by construction — and solve there. *)
let stationary_of ?guard gen ~start =
  try Steady_state.solve ?guard gen
  with Steady_state.Not_irreducible _ ->
    let n = Generator.dim gen in
    let mark = Array.make n false in
    let stack = Stack.create () in
    Stack.push start stack;
    mark.(start) <- true;
    while not (Stack.is_empty stack) do
      let i = Stack.pop stack in
      Generator.iter_row gen i (fun j _ ->
          if not mark.(j) then begin
            mark.(j) <- true;
            Stack.push j stack
          end)
    done;
    let idx = ref [] in
    for i = n - 1 downto 0 do
      if mark.(i) then idx := i :: !idx
    done;
    let idx = Array.of_list !idx in
    let pos = Array.make n (-1) in
    Array.iteri (fun r i -> pos.(i) <- r) idx;
    let rates = ref [] in
    Array.iteri
      (fun r i ->
        Generator.iter_row gen i (fun j rate -> rates := (r, pos.(j), rate) :: !rates))
      idx;
    let sub = Generator.of_rates ~dim:(Array.length idx) !rates in
    let p = Steady_state.solve ?guard sub in
    let full = Array.make n 0.0 in
    Array.iteri (fun r i -> full.(i) <- p.(r)) idx;
    full

let solve ?domains ?guard spec ~load =
  validate_load load;
  let m_phases = Array.length load.rates in
  let n = Spec.num_servers spec in
  let ng = Spec.num_groups spec in
  let kmin = spec.Spec.min_active in
  let nk = n - kmin + 1 in
  let counts = Array.init nk (fun i -> kmin + i) in
  let weight = spec.Spec.weight in
  (* Enumerate the distinct per-server solve jobs across every
     (phase, count) cell: (group, routed rate), deduplicated on the
     exact rate bits. *)
  let seen = Hashtbl.create 97 in
  let order = ref [] in
  for m = 0 to m_phases - 1 do
    for ki = 0 to nk - 1 do
      let k = counts.(ki) in
      for g = 0 to ng - 1 do
        if Spec.active_in_group spec ~active:k ~group:g > 0 then begin
          let rate = Spec.group_rate spec ~total_rate:load.rates.(m) ~active:k ~group:g in
          let key = (g, Int64.bits_of_float rate) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            order := key :: !order
          end
        end
      done
    done
  done;
  let jobs = Array.of_list (List.rev !order) in
  let bases = Array.init ng (fun g -> Spec.base_system spec g) in
  let results =
    Dpm_par.parallel_map ?domains
      (fun ((g, bits) as key) ->
        (key, Optimize.solve_at ~weight ?guard bases.(g)
                ~arrival_rate:(Int64.float_of_bits bits)))
      jobs
  in
  let solved = Hashtbl.create 97 in
  let failures = ref [] in
  Array.iter
    (fun ((g, bits), res) ->
      match res with
      | Ok (_, sol) -> Hashtbl.replace solved (g, bits) sol
      | Error exn -> (
          match Dpm_robust.Error.of_exn exn with
          | Some e -> failures := ((g, Int64.float_of_bits bits), e) :: !failures
          | None -> raise exn))
    results;
  let failures = List.rev !failures in
  (* Per-cell tables: weighted stay cost, electrical power, mean
     queue population, accepted throughput.  A failed solve prices
     its cells pessimistically but finitely (Model.create rejects
     infinite costs). *)
  let stay = Array.make_matrix m_phases nk 0.0 in
  let power = Array.make_matrix m_phases nk 0.0 in
  let waiting = Array.make_matrix m_phases nk 0.0 in
  let throughput = Array.make_matrix m_phases nk 0.0 in
  for m = 0 to m_phases - 1 do
    for ki = 0 to nk - 1 do
      let k = counts.(ki) in
      for g = 0 to ng - 1 do
        let gr = spec.Spec.groups.(g) in
        let n_act = Spec.active_in_group spec ~active:k ~group:g in
        let n_off = float_of_int (gr.Spec.count - n_act) in
        stay.(m).(ki) <- stay.(m).(ki) +. (n_off *. gr.Spec.off_power);
        power.(m).(ki) <- power.(m).(ki) +. (n_off *. gr.Spec.off_power);
        if n_act > 0 then begin
          let rate = Spec.group_rate spec ~total_rate:load.rates.(m) ~active:k ~group:g in
          let fa = float_of_int n_act in
          match Hashtbl.find_opt solved (g, Int64.bits_of_float rate) with
          | Some sol ->
              let mt = sol.Optimize.metrics in
              (* The per-server gain prices power and delay
                 (Eqn. 3.1); the cluster additionally prices shed
                 traffic, else overload is "optimally" absorbed by
                 rejection and the policy parks at min_active. *)
              stay.(m).(ki) <-
                stay.(m).(ki)
                +. (fa
                   *. (sol.Optimize.gain
                      +. (spec.Spec.loss_penalty *. mt.Analytic.loss_rate)));
              power.(m).(ki) <- power.(m).(ki) +. (fa *. mt.Analytic.power);
              waiting.(m).(ki) <-
                waiting.(m).(ki) +. (fa *. mt.Analytic.avg_waiting_requests);
              throughput.(m).(ki) <-
                throughput.(m).(ki) +. (fa *. mt.Analytic.throughput)
          | None ->
              (* Pessimistic but finite: full draw, full queue, and
                 every routed request lost. *)
              let penalty =
                Spec.max_power spec g
                +. (weight *. float_of_int gr.Spec.queue_capacity)
                +. (spec.Spec.loss_penalty *. rate)
              in
              stay.(m).(ki) <- stay.(m).(ki) +. (fa *. penalty);
              power.(m).(ki) <- power.(m).(ki) +. (fa *. Spec.max_power spec g);
              waiting.(m).(ki) <-
                waiting.(m).(ki) +. (fa *. float_of_int gr.Spec.queue_capacity)
        end
      done
    done
  done;
  (* The birth-death CTMDP over (phase, count). *)
  let num_states = m_phases * nk in
  let sid m ki = (m * nk) + ki in
  let boot_rate = spec.Spec.boot_rate in
  let shutdown_rate = spec.Spec.shutdown_rate in
  let model =
    Model.create ~num_states (fun s ->
        let m = s / nk and ki = s mod nk in
        let k = counts.(ki) in
        let phase_rates = ref [] in
        for m' = m_phases - 1 downto 0 do
          if m' <> m && load.switch.(m).(m') > 0.0 then
            phase_rates := (sid m' ki, load.switch.(m).(m')) :: !phase_rates
        done;
        let choice target =
          let rates, extra =
            if target > k then
              ( (sid m (ki + 1), boot_rate) :: !phase_rates,
                boot_rate *. spec.Spec.boot_energy )
            else if target < k then
              ( (sid m (ki - 1), shutdown_rate) :: !phase_rates,
                shutdown_rate *. spec.Spec.shutdown_energy )
            else (!phase_rates, 0.0)
          in
          { Model.action = target; rates; cost = stay.(m).(ki) +. extra }
        in
        let targets =
          (if ki > 0 then [ k - 1 ] else [])
          @ [ k ]
          @ (if ki + 1 < nk then [ k + 1 ] else [])
        in
        List.map choice targets)
  in
  (* Warm start from the drain-toward-static-optimum policy: it is
     unichain (every phase funnels into one count), which keeps the
     first evaluation well-posed; stay-everywhere inits are
     multichain. *)
  let score ki =
    let acc = ref 0.0 in
    for m = 0 to m_phases - 1 do
      acc := !acc +. stay.(m).(ki)
    done;
    !acc
  in
  let kstar_i = ref 0 in
  for ki = 1 to nk - 1 do
    if score ki < score !kstar_i then kstar_i := ki
  done;
  let init_actions =
    Array.init num_states (fun s ->
        let ki = s mod nk in
        let k = counts.(ki) in
        if ki > !kstar_i then k - 1 else if ki < !kstar_i then k + 1 else k)
  in
  let init = Policy.of_actions model init_actions in
  let res = Pi.solve ?guard ~init model in
  let targets = Policy.actions model res.Pi.policy in
  (* Settle point of phase 0 under the optimal policy — the start
     state for the reachability fallback when the closed-loop chain
     has several closed classes. *)
  let settle_ki =
    let ki = ref !kstar_i in
    let steps = ref 0 in
    let moving = ref true in
    while !moving && !steps <= nk do
      let k = counts.(!ki) in
      let tgt = targets.(sid 0 !ki) in
      if tgt > k then incr ki else if tgt < k then decr ki else moving := false;
      incr steps
    done;
    !ki
  in
  let gen = Policy.generator model res.Pi.policy in
  let stationary = stationary_of ?guard gen ~start:(sid 0 settle_ki) in
  { spec; load; counts; stay_cost = stay; power_tbl = power;
    waiting_tbl = waiting; throughput_tbl = throughput; targets;
    gain = res.Pi.gain; iterations = res.Pi.iterations; stationary; failures }

let num_phases t = Array.length t.load.rates

let target t ~phase ~active =
  let nk = Array.length t.counts in
  let kmin = t.counts.(0) in
  if phase < 0 || phase >= num_phases t then
    invalid_arg "Dpm_fleet.Cluster.target: bad phase";
  if active < kmin || active > t.counts.(nk - 1) then
    invalid_arg "Dpm_fleet.Cluster.target: bad count";
  t.targets.((phase * nk) + (active - kmin))

let static_best t ~phase =
  if phase < 0 || phase >= num_phases t then
    invalid_arg "Dpm_fleet.Cluster.static_best: bad phase";
  let best = ref 0 in
  Array.iteri
    (fun ki _ -> if t.stay_cost.(phase).(ki) < t.stay_cost.(phase).(!best) then best := ki)
    t.counts;
  t.counts.(!best)

let settle t ~phase ~from =
  let nk = Array.length t.counts in
  let kmin = t.counts.(0) in
  let k = ref (max kmin (min t.counts.(nk - 1) from)) in
  let steps = ref 0 in
  let moving = ref true in
  while !moving && !steps <= nk do
    let tgt = target t ~phase ~active:!k in
    if tgt > !k then incr k else if tgt < !k then decr k else moving := false;
    incr steps
  done;
  !k

let measures t =
  let nk = Array.length t.counts in
  let ea = ref 0.0 and pw = ref 0.0 and wt = ref 0.0 and tp = ref 0.0 in
  Array.iteri
    (fun s pi ->
      if pi > 0.0 then begin
        let m = s / nk and ki = s mod nk in
        let k = t.counts.(ki) in
        let tgt = t.targets.(s) in
        let trans =
          if tgt > k then t.spec.Spec.boot_rate *. t.spec.Spec.boot_energy
          else if tgt < k then
            t.spec.Spec.shutdown_rate *. t.spec.Spec.shutdown_energy
          else 0.0
        in
        ea := !ea +. (pi *. float_of_int k);
        pw := !pw +. (pi *. (t.power_tbl.(m).(ki) +. trans));
        wt := !wt +. (pi *. t.waiting_tbl.(m).(ki));
        tp := !tp +. (pi *. t.throughput_tbl.(m).(ki))
      end)
    t.stationary;
  {
    expected_active = !ea;
    fleet_power = !pw;
    fleet_waiting = !wt;
    fleet_throughput = !tp;
    fleet_waiting_time = (if !tp > 0.0 then !wt /. !tp else 0.0);
  }
