(** Fleet-scale event-driven simulation.

    [run] absorbs a piecewise fleet-wide arrival plan: it solves the
    cluster CTMDP over the plan's phases ({!Cluster.solve}), settles
    an active count per segment, deploys per-server policies per
    segment ({!Deploy.resolve}, all solves deduplicated through the
    solve cache), and then simulates {e every} server over the full
    horizon with one {!Dpm_sim.Power_sim} run each — per-server
    piecewise routed rates (rate 0 while deactivated), a
    time-indexed controller that parks deactivated servers at the
    segment boundaries ({!Dpm_sim.Controller.of_time_policy}), and
    exact per-segment accounting via the PR-5 segment summaries.
    Server runs are sharded over {!Dpm_par} with per-server seeds
    from the splitmix64 stream, so results are bit-identical at any
    domain count.

    Per-tier accounting: the {e server} tier integrates each active
    server's simulated power (switch impulses included) over its
    active segments; the {e off} tier charges the spec's per-group
    off-power for deactivated server-seconds (set it to the SP's
    sleep power to make the two tiers consistent); the {e cluster}
    tier charges boot/shutdown energy for the count changes between
    segments. *)

type plan_segment = {
  seg_from : float;  (** segment start (s) *)
  seg_until : float;  (** segment end (s) *)
  seg_rate : float;  (** fleet-wide arrival rate over the segment *)
  seg_active : int;  (** active server count the cluster settled at *)
}
(** One segment of the executed plan. *)

type result = {
  horizon : float;  (** simulated seconds (every server runs it all) *)
  num_servers : int;
  plan : plan_segment array;  (** covers [0, horizon] exactly *)
  generated : int;  (** arrivals drawn across the fleet *)
  accepted : int;
  lost : int;
  completed : int;
  switches : int;  (** completed per-server mode switches *)
  events : int;  (** generated + completed + switches *)
  avg_active_servers : float;  (** time-weighted mean of the plan *)
  server_energy_j : float;  (** active-tier energy (J) *)
  off_energy_j : float;  (** deactivated-tier energy (J) *)
  cluster_energy_j : float;  (** boot/shutdown transition energy (J) *)
  avg_power_w : float;  (** all three tiers divided by the horizon *)
  avg_waiting_time_s : float;
      (** completion-weighted mean sojourn across servers *)
  cache_hits : int;  (** solve-cache hits during the deploy phase *)
  cache_misses : int;  (** solve-cache misses during the deploy phase *)
  resolve_failures : int;
      (** per-server solve failures absorbed by incumbents/fallbacks *)
  cluster : Cluster.t;  (** the solved cluster controller *)
  server_results : Dpm_sim.Power_sim.result option array;
      (** per flat server; [None] = never active (not simulated,
          charged to the off tier for the whole horizon) *)
}
(** Aggregated fleet simulation result. *)

val run :
  ?domains:int ->
  ?seed:int64 ->
  ?guard:(unit -> unit) ->
  Spec.t ->
  segments:(float * float) list ->
  final_rate:float ->
  horizon:float ->
  result
(** [run spec ~segments ~final_rate ~horizon] simulates the fleet
    under the piecewise plan [(until, rate), ..., final_rate] (the
    {!Dpm_sim.Workload.piecewise} grammar) up to [horizon].  All
    rates must be positive and finite and the boundaries strictly
    increasing below the horizon.  [seed] (default 1) drives every
    stream; [guard] is threaded into all cluster and per-server
    solves (a failure degrades that server, never the run).  Raises
    [Invalid_argument] on a malformed plan. *)

val pp : Format.formatter -> result -> unit
(** Multi-line human summary (plan table + totals). *)
