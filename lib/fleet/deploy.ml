open Dpm_core

type server = {
  server : int;
  group : int;
  sys : Sys_model.t;
  actions : int array;
  solution : Optimize.solution option;
  fresh : bool;
}

type t = {
  spec : Spec.t;
  total_rate : float;
  active : int;
  servers : server option array;
  failures : (int * Dpm_robust.Error.t) list;
}

let fallback_server spec ~server ~rate =
  let g = Spec.group_of_server spec server in
  let sys = Sys_model.with_arrival_rate (Spec.base_system spec g) rate in
  let actions = Policies.actions_array sys (Policies.always_on sys) in
  { server; group = g; sys; actions; solution = None; fresh = false }

let resolve ?domains ?guard ?prev spec ~total_rate ~active =
  if (not (Float.is_finite total_rate)) || total_rate <= 0.0 then
    invalid_arg
      (Printf.sprintf "Dpm_fleet.Deploy.resolve: bad total rate %g" total_rate);
  let n = Spec.num_servers spec in
  if active < spec.Spec.min_active || active > n then
    invalid_arg
      (Printf.sprintf "Dpm_fleet.Deploy.resolve: active %d outside [%d, %d]"
         active spec.Spec.min_active n);
  let bases = Array.init (Spec.num_groups spec) (fun g -> Spec.base_system spec g) in
  let weight = spec.Spec.weight in
  let jobs =
    Array.init active (fun i ->
        (i, Spec.server_rate spec ~total_rate ~active ~server:i))
  in
  let results =
    Dpm_par.parallel_map ?domains
      (fun (i, rate) ->
        let g = Spec.group_of_server spec i in
        (i, rate, Optimize.solve_at ~weight ?guard bases.(g) ~arrival_rate:rate))
      jobs
  in
  let failures = ref [] in
  let servers = Array.make n None in
  Array.iter
    (fun (i, rate, res) ->
      match res with
      | Ok (sys, sol) ->
          servers.(i) <-
            Some
              { server = i; group = Spec.group_of_server spec i; sys;
                actions = sol.Optimize.actions; solution = Some sol; fresh = true }
      | Error exn -> (
          let err =
            match Dpm_robust.Error.of_exn exn with
            | Some e -> e
            | None -> raise exn
          in
          failures := (i, err) :: !failures;
          match prev with
          | Some p when i < Array.length p.servers && p.servers.(i) <> None ->
              let s = Option.get p.servers.(i) in
              servers.(i) <- Some { s with fresh = false }
          | _ -> servers.(i) <- Some (fallback_server spec ~server:i ~rate)))
    results;
  { spec; total_rate; active; servers; failures = List.rev !failures }

let active_servers t =
  Array.of_list
    (List.filter_map Fun.id (Array.to_list t.servers))

let gain t =
  Array.fold_left
    (fun acc s ->
      match s with
      | None -> acc
      | Some s -> (
          match s.solution with
          | Some sol -> acc +. sol.Optimize.gain
          | None ->
              let m = Analytic.of_action_array s.sys s.actions in
              acc
              +. m.Analytic.power
              +. (t.spec.Spec.weight *. m.Analytic.avg_waiting_requests)))
    0.0 t.servers
