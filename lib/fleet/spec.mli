(** Static description of a heterogeneous server fleet.

    A fleet is a list of {e groups} — identical servers sharing one
    service provider, queue capacity, and routing weight — plus the
    cluster-level economics: boot/shutdown transition rates and
    energies, the power a deactivated server still draws, and the
    delay weight [w] of Eqn. (3.1) applied to every per-server solve.

    Servers are numbered flat, [0 .. num_servers - 1], groups in
    declaration order and servers within a group contiguous.  When
    [k] servers are active, the active set is the flat prefix
    [0 .. k-1] and the dispatcher routes the total Poisson stream by
    Bernoulli thinning proportional to routing weights — so each
    active server sees an independent Poisson stream and the
    hierarchical decomposition is exact for a fixed active set
    (Chitsaz et al., PAPERS.md). *)

open Dpm_core

type group = private {
  name : string;  (** label for reports *)
  sp : Service_provider.t;  (** the servers' SP model *)
  queue_capacity : int;  (** per-server queue bound [Q >= 1] *)
  count : int;  (** number of identical servers [>= 1] *)
  routing_weight : float;  (** dispatcher share weight [> 0] *)
  off_power : float;
      (** power (W) a deactivated server of this group still draws *)
}
(** One homogeneous slice of the fleet. *)

type t = private {
  groups : group array;
  weight : float;  (** Eqn. (3.1) delay weight for per-server solves *)
  boot_rate : float;  (** rate of a commanded server boot [> 0] *)
  boot_energy : float;  (** energy (J) per completed boot *)
  shutdown_rate : float;  (** rate of a commanded shutdown [> 0] *)
  shutdown_energy : float;  (** energy (J) per completed shutdown *)
  min_active : int;  (** the cluster never drops below this [>= 1] *)
  loss_penalty : float;
      (** cluster-level cost (J) per rejected request — prices lost
          traffic into the stay cost so scaling out can beat shedding *)
}
(** A validated fleet description. *)

val group :
  ?routing_weight:float ->
  ?off_power:float ->
  name:string ->
  sp:Service_provider.t ->
  queue_capacity:int ->
  count:int ->
  unit ->
  group
(** Build one group.  [routing_weight] defaults to 1 (uniform
    dispatch), [off_power] to 0.  Raises [Invalid_argument] on a
    non-positive count, capacity, or weight, or a negative/non-finite
    power. *)

val create :
  ?weight:float ->
  ?boot_rate:float ->
  ?boot_energy:float ->
  ?shutdown_rate:float ->
  ?shutdown_energy:float ->
  ?min_active:int ->
  ?loss_penalty:float ->
  group list ->
  t
(** Assemble a fleet.  [weight] defaults to 1, the transition rates
    to 1, the transition energies to 0, [min_active] to 1,
    [loss_penalty] to 0 (lost requests are free, as in the
    single-server Eqn. (3.1) objective — set it to make the cluster
    scale out under overload instead of shedding).  Raises
    [Invalid_argument] on an empty group list, duplicate group names,
    non-finite economics, or [min_active] outside
    [[1, num_servers]]. *)

val num_servers : t -> int
(** Total server count across groups. *)

val num_groups : t -> int
(** Number of groups. *)

val group_of_server : t -> int -> int
(** [group_of_server t i] is the group index of flat server [i];
    raises [Invalid_argument] out of range. *)

val active_in_group : t -> active:int -> group:int -> int
(** How many servers of [group] are active when the flat prefix of
    [active] servers is on. *)

val group_rate : t -> total_rate:float -> active:int -> group:int -> float
(** The Poisson rate routed to {e each} active server of [group] when
    [active] servers are on and the fleet-wide arrival rate is
    [total_rate]: [total_rate * (w_g / sum of active weights)].
    [0] when the group has no active server.  Requires
    [1 <= active <= num_servers]. *)

val server_rate : t -> total_rate:float -> active:int -> server:int -> float
(** Same, for flat server [server]; [0] when [server >= active]. *)

val base_system : t -> int -> Sys_model.t
(** [base_system t g] is the composed SYS of group [g] at a
    placeholder arrival rate of 1 — feed it to
    {!Dpm_core.Optimize.solve_at} with the routed rate. *)

val max_power : t -> int -> float
(** [max_power t g] is the largest mode power of group [g]'s SP —
    the pessimistic per-server draw used when a solve fails. *)

val pp : Format.formatter -> t -> unit
(** One-line summary ([N servers in G groups, ...]). *)
