(** The flat joint CTMDP oracle for tiny fleets.

    For a fixed fully-active deployment, the per-server closed-loop
    chains are independent (Poisson thinning), so the exact joint
    generator is the Kronecker {e sum} of the per-server closed-loop
    generators — assembled lazily through
    {!Dpm_linalg.Operator.kron_sum} and solved flat.  The
    hierarchical decomposition must agree with this joint solve
    exactly (up to solver tolerance): joint stationary = product of
    per-server marginals, joint gain = sum of per-server gains.
    This is the cross-method oracle the fleet test suite pins, in
    the same discipline as the PI=VI=LP property tests. *)

type t
(** A built joint model over every server of a deployment. *)

val max_states : int
(** Joint state-space cap (the oracle solves dense). *)

val build : Deploy.t -> t
(** [build d] assembles the joint generator of a deployment in which
    {e every} server is active.  Raises [Invalid_argument] when some
    server is off or the joint state space exceeds {!max_states}. *)

val num_states : t -> int
(** Product state-space size. *)

val dims : t -> int array
(** Per-server state-space sizes, server 0 major in the flat joint
    index. *)

val operator : t -> Dpm_linalg.Operator.t
(** The lazy Kronecker-sum joint generator. *)

val stationary : ?guard:(unit -> unit) -> t -> Dpm_linalg.Vec.t
(** Exact stationary distribution of the flat joint chain:
    materializes the operator and runs the classified GTH solve
    ({!Dpm_ctmc.Steady_state.solve}). *)

val stationary_implicit : ?tol:float -> ?guard:(unit -> unit) -> t -> Dpm_linalg.Vec.t
(** Same distribution via matrix-free Gauss-Seidel sweeps on the
    lazy operator ({!Dpm_ctmc.Steady_state.implicit}) — the joint
    generator is never materialized.  Raises [Failure] when the
    sweeps do not converge. *)

val product_stationary : t -> Dpm_linalg.Vec.t
(** The hierarchical prediction: the product of the per-server
    stationary distributions. *)

val marginal : t -> Dpm_linalg.Vec.t -> server:int -> Dpm_linalg.Vec.t
(** [marginal t pi ~server] sums a joint distribution down to one
    server's state space. *)

val gain : t -> Dpm_linalg.Vec.t -> float
(** [gain t pi] is the stationary weighted cost rate of the joint
    chain under distribution [pi] — Eqn. (3.1) summed over servers.
    With the exact {!stationary} it must equal the sum of per-server
    gains ({!Deploy.gain}). *)
