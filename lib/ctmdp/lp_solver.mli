(** Policy optimization by linear programming.

    The approach of the DAC'98 baseline [11], transplanted to
    continuous time: over {e occupation measures} [x_{i,a} >= 0]
    (the long-run rate-weighted fraction of time spent in state [i]
    taking action [a]), the average-cost problem is the LP

    {v minimize    sum_{i,a} c_i^a x_{i,a}
       subject to  sum_{i,a} q^a_{ij} x_{i,a} = 0     (balance, j <> ref)
                   sum_{i,a} x_{i,a} = 1              (normalization)
                   x >= 0 v}

    (one balance constraint is dropped — they are linearly dependent —
    which pins the corresponding dual at zero, matching the
    [v_ref = 0] convention of policy iteration; the remaining duals
    are the relative values and the normalization dual is the gain).

    The paper states the policy-iteration algorithm "tends to be more
    efficient than the linear programming method"; the ABL6 bench
    measures exactly that on this implementation. *)

open Dpm_linalg

type result = {
  policy : Policy.t;
  gain : float;  (** optimal average cost (the LP objective) *)
  occupation : float array array;
      (** [occupation.(i).(k)]: measure of state [i], choice [k] *)
  bias : Vec.t;
      (** relative values recovered from the LP duals, [v_ref = 0] *)
  provenance : Dpm_trace.Provenance.t;
      (** method ["lp"], iterations = simplex pivots taken. *)
}

val solve :
  ?ref_state:int -> ?max_pivots:int -> ?guard:(unit -> unit) -> Model.t -> result
(** [solve m] builds and solves the occupation-measure LP.  The
    policy picks, per state, the choice carrying positive measure;
    states with zero measure (transient under every optimal policy)
    take the greedy action with respect to the recovered bias —
    exactly policy iteration's improvement rule, so the returned
    policy is average-cost optimal for unichain models.  Raises
    [Failure] if the LP is infeasible or unbounded (impossible for a
    well-formed model).  [max_pivots] and [guard] are forwarded to
    {!Dpm_linalg.Simplex.minimize}: exhausting the pivot budget twice
    (once under Dantzig pricing, once under the Bland anti-cycling
    retry) raises [Simplex.Cycling], and [guard] may raise to abort —
    the [Dpm_robust] deadline hook. *)
