open Dpm_linalg

type result = {
  policy : Policy.t;
  gain_lower : float;
  gain_upper : float;
  values : Vec.t;
  iterations : int;
  converged : bool;
  provenance : Dpm_trace.Provenance.t;
}

let solve ?(tol = 1e-9) ?(max_iter = 1_000_000) ?init_values
    ?(guard = fun () -> ()) m =
  Dpm_obs.Span.with_ "value_iteration" @@ fun () ->
  let t0 = Dpm_obs.Probe.now () in
  let origin =
    match init_values with
    | Some _ -> Dpm_trace.Provenance.Warm
    | None -> Dpm_trace.Provenance.Cold
  in
  let n = Model.num_states m in
  let u = Model.max_exit_rate m in
  (* Strictly above the max exit rate so every state keeps a self-loop
     and the uniformized chain is aperiodic. *)
  let lam = if u = 0.0 then 1.0 else 1.05 *. u in
  let backup v i k =
    let c = Model.choice m i k in
    (* c/L + v(i) + (1/L) sum_j rate_ij (v(j) - v(i)) *)
    List.fold_left
      (fun acc (j, r) -> acc +. (r /. lam *. (v.(j) -. v.(i))))
      ((c.Model.cost /. lam) +. v.(i))
      c.Model.rates
  in
  let v =
    ref
      (match init_values with
      | None -> Vec.create n
      | Some v0 ->
          if Vec.dim v0 <> n then
            invalid_arg "Value_iteration.solve: init_values dimension mismatch";
          Array.iter
            (fun x ->
              if not (Float.is_finite x) then
                invalid_arg
                  "Value_iteration.solve: init_values must be finite")
            v0;
          Dpm_obs.Probe.incr "value_iteration.warm_starts";
          (* Re-center on state 0 exactly as every sweep below does, so
             a warm start only shifts the starting point of the span
             contraction, never the invariant. *)
          let offset = v0.(0) in
          Vec.init n (fun i -> v0.(i) -. offset))
  in
  let iterations = ref 0 in
  let lower = ref neg_infinity and upper = ref infinity in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    guard ();
    let next =
      Vec.init n (fun i ->
          let best = ref (backup !v i 0) in
          for k = 1 to Model.num_choices m i - 1 do
            best := Float.min !best (backup !v i k)
          done;
          !best)
    in
    let diff = Vec.sub next !v in
    let span = Vec.span diff in
    (* Per-step gain bounds; scale by lam for continuous time. *)
    lower := lam *. Array.fold_left Float.min infinity diff;
    upper := lam *. Array.fold_left Float.max neg_infinity diff;
    (* Keep values bounded by re-centering on state 0. *)
    let offset = next.(0) in
    v := Vec.map (fun x -> x -. offset) next;
    incr iterations;
    if span < tol then converged := true
  done;
  Dpm_obs.Probe.incr "value_iteration.solves";
  Dpm_obs.Probe.add "value_iteration.iterations" !iterations;
  Dpm_obs.Probe.set "value_iteration.gain_span" (!upper -. !lower);
  let greedy =
    Array.init n (fun i ->
        let best = ref 0 and best_value = ref (backup !v i 0) in
        for k = 1 to Model.num_choices m i - 1 do
          let value = backup !v i k in
          if value < !best_value then begin
            best := k;
            best_value := value
          end
        done;
        !best)
  in
  {
    policy = Policy.of_choice_indices m greedy;
    gain_lower = !lower;
    gain_upper = !upper;
    values = !v;
    iterations = !iterations;
    converged = !converged;
    provenance =
      (* VI has no retry machinery; its counts are structurally empty. *)
      (let (), counts = Dpm_trace.Provenance.collect (fun () -> ()) in
       Dpm_trace.Provenance.of_counts ~method_:"value_iteration"
         ~iterations:!iterations ~origin
         ~wall_s:(Dpm_obs.Probe.now () -. t0)
         ~eval_path:"uniformized"
         ~residual:(!upper -. !lower)
         counts);
  }
