open Dpm_linalg
module A1 = Bigarray.Array1

type result = {
  policy : Policy.t;
  gain_lower : float;
  gain_upper : float;
  values : Vec.t;
  iterations : int;
  converged : bool;
  provenance : Dpm_trace.Provenance.t;
}

(* The implicit sweep: the model's choices are flattened once into
   flat cost/rate arrays and the relative value iteration runs over
   two Bigarray buffers, so a sweep allocates nothing.  Arithmetic is
   kept in exactly the boxed path's order (same fold seed, same
   association, same re-centering), so the two paths produce
   bit-identical iterates — pinned by a test. *)
let implicit_sweeps ~tol ~max_iter ~guard ~lam m v0 =
  let n = Model.num_states m in
  let total_choices = ref 0 in
  let choice_start = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    total_choices := !total_choices + Model.num_choices m i;
    choice_start.(i + 1) <- !total_choices
  done;
  let nc = !total_choices in
  let ccost = Array.make nc 0.0 in
  let crow_start = Array.make (nc + 1) 0 in
  let nnz = ref 0 in
  for i = 0 to n - 1 do
    for k = 0 to Model.num_choices m i - 1 do
      let c = Model.choice m i k in
      let idx = choice_start.(i) + k in
      ccost.(idx) <- c.Model.cost;
      nnz := !nnz + List.length c.Model.rates;
      crow_start.(idx + 1) <- !nnz
    done
  done;
  let ccol = Array.make (max 1 !nnz) 0 in
  let crate = Array.make (max 1 !nnz) 0.0 in
  let fill = ref 0 in
  for i = 0 to n - 1 do
    for k = 0 to Model.num_choices m i - 1 do
      let c = Model.choice m i k in
      List.iter
        (fun (j, r) ->
          ccol.(!fill) <- j;
          crate.(!fill) <- r;
          incr fill)
        c.Model.rates
    done
  done;
  let v = Bvec.of_vec v0 in
  let next = Bvec.create n in
  let backup c i =
    (* Same seed and association as the boxed fold:
       c/L + v(i) + sum_j (r/L) (v(j) - v(i)), left to right. *)
    let vi = A1.unsafe_get v i in
    let acc = ref ((ccost.(c) /. lam) +. vi) in
    for e = crow_start.(c) to crow_start.(c + 1) - 1 do
      acc :=
        !acc +. (crate.(e) /. lam *. (A1.unsafe_get v ccol.(e) -. vi))
    done;
    !acc
  in
  let iterations = ref 0 in
  let lower = ref neg_infinity and upper = ref infinity in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    guard ();
    for i = 0 to n - 1 do
      let c0 = choice_start.(i) in
      let best = ref (backup c0 i) in
      for c = c0 + 1 to choice_start.(i + 1) - 1 do
        best := Float.min !best (backup c i)
      done;
      A1.unsafe_set next i !best
    done;
    let lo = ref infinity and hi = ref neg_infinity in
    for i = 0 to n - 1 do
      let d = A1.unsafe_get next i -. A1.unsafe_get v i in
      lo := Float.min !lo d;
      hi := Float.max !hi d
    done;
    lower := lam *. !lo;
    upper := lam *. !hi;
    let offset = A1.unsafe_get next 0 in
    for i = 0 to n - 1 do
      A1.unsafe_set v i (A1.unsafe_get next i -. offset)
    done;
    incr iterations;
    if !hi -. !lo < tol then converged := true
  done;
  Dpm_obs.Probe.add "value_iteration.implicit_sweeps" !iterations;
  (Bvec.to_vec v, !iterations, !lower, !upper, !converged)

let solve ?(tol = 1e-9) ?(max_iter = 1_000_000) ?init_values
    ?(guard = fun () -> ()) ?(eval = Policy_iteration.Auto) m =
  Dpm_obs.Span.with_ "value_iteration" @@ fun () ->
  let t0 = Dpm_obs.Probe.now () in
  let origin =
    match init_values with
    | Some _ -> Dpm_trace.Provenance.Warm
    | None -> Dpm_trace.Provenance.Cold
  in
  let n = Model.num_states m in
  let u = Model.max_exit_rate m in
  (* Strictly above the max exit rate so every state keeps a self-loop
     and the uniformized chain is aperiodic. *)
  let lam = if u = 0.0 then 1.0 else 1.05 *. u in
  let backup v i k =
    let c = Model.choice m i k in
    (* c/L + v(i) + (1/L) sum_j rate_ij (v(j) - v(i)) *)
    List.fold_left
      (fun acc (j, r) -> acc +. (r /. lam *. (v.(j) -. v.(i))))
      ((c.Model.cost /. lam) +. v.(i))
      c.Model.rates
  in
  let v0 =
    match init_values with
    | None -> Vec.create n
    | Some v0 ->
        if Vec.dim v0 <> n then
          invalid_arg "Value_iteration.solve: init_values dimension mismatch";
        Array.iter
          (fun x ->
            if not (Float.is_finite x) then
              invalid_arg "Value_iteration.solve: init_values must be finite")
          v0;
        Dpm_obs.Probe.incr "value_iteration.warm_starts";
        (* Re-center on state 0 exactly as every sweep below does, so
           a warm start only shifts the starting point of the span
           contraction, never the invariant. *)
        let offset = v0.(0) in
        Vec.init n (fun i -> v0.(i) -. offset)
  in
  let values, iterations, lower, upper, converged, eval_path =
    match eval with
    | Policy_iteration.Implicit ->
        let values, iterations, lower, upper, converged =
          implicit_sweeps ~tol ~max_iter ~guard ~lam m v0
        in
        (values, iterations, lower, upper, converged, "uniformized-implicit")
    | Policy_iteration.Dense | Policy_iteration.Sparse | Policy_iteration.Auto
      ->
        let v = ref v0 in
        let iterations = ref 0 in
        let lower = ref neg_infinity and upper = ref infinity in
        let converged = ref false in
        while (not !converged) && !iterations < max_iter do
          guard ();
          let next =
            Vec.init n (fun i ->
                let best = ref (backup !v i 0) in
                for k = 1 to Model.num_choices m i - 1 do
                  best := Float.min !best (backup !v i k)
                done;
                !best)
          in
          let diff = Vec.sub next !v in
          let span = Vec.span diff in
          (* Per-step gain bounds; scale by lam for continuous time. *)
          lower := lam *. Array.fold_left Float.min infinity diff;
          upper := lam *. Array.fold_left Float.max neg_infinity diff;
          (* Keep values bounded by re-centering on state 0. *)
          let offset = next.(0) in
          v := Vec.map (fun x -> x -. offset) next;
          incr iterations;
          if span < tol then converged := true
        done;
        (!v, !iterations, !lower, !upper, !converged, "uniformized")
  in
  Dpm_obs.Probe.incr "value_iteration.solves";
  Dpm_obs.Probe.add "value_iteration.iterations" iterations;
  Dpm_obs.Probe.set "value_iteration.gain_span" (upper -. lower);
  let greedy =
    Array.init n (fun i ->
        let best = ref 0 and best_value = ref (backup values i 0) in
        for k = 1 to Model.num_choices m i - 1 do
          let value = backup values i k in
          if value < !best_value then begin
            best := k;
            best_value := value
          end
        done;
        !best)
  in
  {
    policy = Policy.of_choice_indices m greedy;
    gain_lower = lower;
    gain_upper = upper;
    values;
    iterations;
    converged;
    provenance =
      (* VI has no retry machinery; its counts are structurally empty. *)
      (let (), counts = Dpm_trace.Provenance.collect (fun () -> ()) in
       Dpm_trace.Provenance.of_counts ~method_:"value_iteration"
         ~iterations ~origin
         ~wall_s:(Dpm_obs.Probe.now () -. t0)
         ~eval_path ~residual:(upper -. lower) counts);
  }
