(** Average-cost policy iteration for CTMDPs — the paper's solver
    (Section IV, Figure 3; the algorithm of Howard [10] extended to
    continuous time by Miller [9]).

    The evaluation step solves the relative-value (bias) equations of
    the policy's chain,

    {v c_i - g + sum_j G^p_ij v_j = 0,   v_ref = 0 v}

    for the gain [g] (average cost per unit time) and relative values
    [v]; the improvement step replaces each state's action by one
    minimizing the test quantity [c_i^a + sum_j s^a_ij v_j], keeping
    the incumbent on ties.  On a finite unichain model this converges
    to an average-cost-optimal stationary policy in finitely many
    iterations. *)

open Dpm_linalg

type evaluation = {
  gain : float;  (** average cost per unit time, [g] *)
  bias : Vec.t;  (** relative values [v], [v_ref = 0] *)
}

type step = {
  iteration : int;
  policy_actions : int array;  (** action labels, by state *)
  evaluation : evaluation;
  changed_states : int;  (** states whose action the improvement changed *)
}

type result = {
  policy : Policy.t;
  gain : float;
  bias : Vec.t;
  iterations : int;
  trace : step list;  (** chronological *)
  provenance : Dpm_trace.Provenance.t;
      (** how this solve went: method, eval path, iterations, final
          residual, warm/cold origin, Tikhonov rungs, sparse
          fallbacks, wall clock.  The fingerprint is [0L] here; the
          cache layer ([Dpm_cache], [Optimize]) fills it in. *)
}

val evaluate : ?ref_state:int -> Model.t -> Policy.t -> evaluation
(** [evaluate m p] solves the relative-value equations of policy [p].
    [ref_state] (default 0) is the state pinned to bias 0.  Raises
    [Lu.Singular] if the policy's chain is not unichain (the DPM
    action constraints rule this out for models built by
    [Dpm_core]). *)

val evaluate_robust : ?ref_state:int -> Model.t -> Policy.t -> evaluation
(** Like {!evaluate}, but when the policy's chain is multichain (the
    exact system is singular) it re-solves through a Tikhonov
    escalation ladder: a restart rate toward the reference state
    (which restores unichain structure at an O(eps)-relative bias
    error) growing from 1e-9 to 1e-3 of the model's rate scale, one
    rung per failed attempt.  A rung is accepted only when its LU
    factorization succeeds {e and} the solution verifies — a small
    residual on the perturbed system plus an exact-system residual
    consistent with the deliberate O(eps * |x|) bias.  Exhausting the
    ladder re-raises [Lu.Singular].  {!solve} uses this internally so
    multichain policies encountered mid-iteration do not abort the
    optimization.  The system is assembled once, directly from
    [Model.choice]; rungs patch the assembled diagonal in place.
    Probe counters: [policy_iteration.robust_retries] (entries into
    the ladder), [policy_iteration.tikhonov_rungs] (rungs tried),
    gauge [policy_iteration.tikhonov_exact_residual]. *)

val evaluate_sparse :
  ?ref_state:int ->
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  Model.t ->
  Policy.t ->
  evaluation
(** Sparse counterpart of {!evaluate_robust}: assembles the policy's
    generator as a {!Dpm_linalg.Sparse.t} straight from the
    [Model.choice] rate lists (no O(n{^2}) dense scan) and solves the
    relative-value equations with Gauss-Seidel sweeps — the stationary
    distribution first (gain = pi . c), then the bias from the system
    with [v_ref] pinned to 0 (rows normalized by their exit rate so
    the sweep's residual test is per-row relative).  The candidate
    solution is verified against the exact bias equations with one
    sparse mat-vec; on a multichain policy (detected up front by a
    reverse reachability pass — the pinned system would be singular),
    a zero diagonal, stationary non-convergence, or a verification
    miss the call falls back to the dense-LU {!evaluate_robust} path,
    so the result is always within solver tolerance of the dense
    answer.  [tol] (default 1e-12, internally scaled to the system's
    magnitude) and [max_iter] (default [max 10_000 (50 n)]) tune the
    sweeps.  [guard] (default no-op) is ticked once per Gauss-Seidel
    sweep in both stages and may raise to abort — the [Dpm_robust]
    deadline/fault hook; its signal propagates out rather than
    triggering the dense fallback.  Probe counters:
    [policy_iteration.sparse_evals],
    [policy_iteration.sparse_fallbacks], gauge
    [policy_iteration.eval_path] (1 sparse, 0 dense). *)

val evaluate_implicit :
  ?ref_state:int ->
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  Model.t ->
  Policy.t ->
  evaluation
(** Matrix-free counterpart of {!evaluate_sparse}: the policy's rows
    are flattened once into flat index/rate arrays (no triplet sort,
    no CSR transpose — the costs that dominate {!evaluate_sparse} on
    large models) and the same two Gauss-Seidel stages sweep those
    arrays over allocation-free Bigarray iterates: stationary
    distribution first (gain = pi . c, in-edge access built by a
    counting sort), then the bias from the [v_ref]-pinned system with
    rows normalized by their exit rate.  The candidate is verified
    against the exact relative-value equations at the same acceptance
    threshold as the sparse path; any failure (multichain structure
    detected by the same reverse reachability pass, a zero exit rate,
    non-convergence, or a verification miss) falls back to
    {!evaluate_sparse} — and through it to dense LU — so the result is
    always within solver tolerance of the reference.  [tol] (default
    1e-12) and [max_iter] (default [max 10_000 (50 n)]) tune the
    sweeps.  [guard] (default no-op) is ticked once per sweep in both
    matrix-free stages — the same granularity as the materialized
    paths — so wall-clock deadlines and injected faults cover the
    implicit path too; its signal propagates out instead of falling
    back.  Probe counters: [policy_iteration.implicit_evals],
    [policy_iteration.implicit_fallbacks],
    [policy_iteration.implicit_sweeps] (total sweeps across both
    stages), gauge [policy_iteration.eval_path] (2 implicit). *)

type eval_path =
  | Dense  (** always dense LU ({!evaluate_robust}) *)
  | Sparse  (** always {!evaluate_sparse} (with its dense fallback) *)
  | Auto
      (** dense below ~200 states (LU wins on the paper's instances),
          sparse above (the composed state space of large queue
          capacities is >95% zeros).  Never selects {!Implicit}: the
          CSR path stays the cross-checked default (DESIGN.md
          decision 13). *)
  | Implicit
      (** always {!evaluate_implicit} (matrix-free sweeps, with the
          sparse-then-dense fallback ladder behind it) *)

val improve : Model.t -> evaluation -> incumbent:Policy.t -> Policy.t * int
(** [improve m eval ~incumbent] returns the greedy policy with
    respect to [eval.bias] and the number of states whose action
    changed.  Ties (within an absolute tolerance of 1e-9) keep the
    incumbent's choice, which guarantees termination. *)

val solve :
  ?ref_state:int ->
  ?max_iter:int ->
  ?init:Policy.t ->
  ?eval:eval_path ->
  ?guard:(unit -> unit) ->
  Model.t ->
  result
(** [solve m] runs policy iteration from [init] (default: each
    state's first choice) until the policy is stable.  [max_iter]
    defaults to 1000; exceeding it raises [Failure] (it indicates a
    modeling bug — PI must terminate on finite models).  [eval]
    (default {!Auto}) selects the evaluation backend per the
    {!eval_path} docs; every backend agrees to solver tolerance, so
    the returned policy and gain do not depend on the choice.
    [guard] (default no-op) is invoked at the top of every iteration
    {e and} threaded into the sparse/implicit evaluation sweeps, so a
    deadline fires mid-evaluation rather than only between policies —
    the [Dpm_robust] deadline hook. *)

val brute_force : Model.t -> Policy.t * float
(** [brute_force m] evaluates every stationary policy and returns a
    gain-minimal one.  Exponential; only for cross-checking tiny
    models in tests.  Policies whose chain is multichain (evaluation
    fails) are skipped. *)
