(** Relative value iteration on the uniformized chain.

    An independent route to the average-cost optimum, used to
    cross-check policy iteration (and benchmarked against it in the
    ablation suite).  The CTMDP is uniformized with a common rate
    [L >= max_{i,a} exit_rate], turning each choice into a stochastic
    row [P^a = I + Q^a/L] with per-step cost [c^a / L]; relative value
    iteration then contracts in span seminorm:

    {v v'(i) = min_a (c_i^a / L + sum_j P^a_ij v(j)),  v' := v' - v'(ref) v}

    The average cost per unit time is [L] times the per-step gain. *)

open Dpm_linalg

type result = {
  policy : Policy.t;
  gain_lower : float;  (** lower bound on the optimal average cost *)
  gain_upper : float;  (** upper bound on the optimal average cost *)
  values : Vec.t;      (** final relative values *)
  iterations : int;
  converged : bool;
  provenance : Dpm_trace.Provenance.t;
      (** method ["value_iteration"], residual = final gain-bound
          span, warm/cold origin from [init_values]. *)
}

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?init_values:Vec.t ->
  ?guard:(unit -> unit) ->
  ?eval:Policy_iteration.eval_path ->
  Model.t ->
  result
(** [solve m] iterates until the span of the value difference
    [v_{k+1} - v_k] falls below [tol] (default 1e-9) or [max_iter]
    (default 1e6) sweeps are spent.  The optimal gain lies in
    [[gain_lower, gain_upper]] (standard span bounds, scaled back to
    continuous time); the returned policy is greedy with respect to
    the final values.  [init_values] (default all zeros) warm-starts
    the sweep — e.g. with the [values] of a neighboring instance's
    result, which cuts iterations without changing the fixed point;
    it is re-centered on state 0 on entry and must be finite and of
    the model's dimension ([Invalid_argument] otherwise; counted on
    the [value_iteration.warm_starts] probe).  [guard] (default
    no-op) is invoked before each sweep and may raise to abort — the
    [Dpm_robust] deadline hook.  [eval] (default
    [Policy_iteration.Auto]) selects the sweep kernel:
    [Policy_iteration.Implicit] flattens the model once into flat
    rate arrays and sweeps over allocation-free Bigarray buffers
    (provenance eval path ["uniformized-implicit"], sweep count on
    the [value_iteration.implicit_sweeps] probe); every other value
    keeps the boxed reference sweep ([Dense]/[Sparse] make no sense
    here — VI never materializes a matrix — so they alias the
    default).  Both kernels perform the same arithmetic in the same
    order and return bit-identical results (pinned by a test). *)
