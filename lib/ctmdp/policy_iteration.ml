open Dpm_linalg

type evaluation = { gain : float; bias : Vec.t }

type step = {
  iteration : int;
  policy_actions : int array;
  evaluation : evaluation;
  changed_states : int;
}

type result = {
  policy : Policy.t;
  gain : float;
  bias : Vec.t;
  iterations : int;
  trace : step list;
  provenance : Dpm_trace.Provenance.t;
}

let check_ref_state m ref_state =
  if ref_state < 0 || ref_state >= Model.num_states m then
    invalid_arg "Policy_iteration.evaluate: bad reference state"

let exit_rate_of (c : Model.choice) =
  List.fold_left (fun acc (_, r) -> acc +. r) 0.0 c.Model.rates

(* Unknowns x: x.(j) = v_j for j <> ref_state, x.(ref_state) = gain.
   Equation for state i:  sum_j G_ij v_j - gain = -c_i,
   with v_{ref} = 0 substituted (so rates into the reference state
   drop out and its column carries the gain unknown instead).

   Both assemblies read the policy's transition structure straight
   off [Model.choice] — O(n + nnz), no intermediate [Generator] and
   no O(n^2) dense scan. *)

let dense_system ~ref_state m p =
  let n = Model.num_states m in
  let a = Matrix.create n n in
  let b = Vec.create n in
  for i = 0 to n - 1 do
    let c = Model.choice m i (Policy.choice_index p i) in
    b.(i) <- -.c.Model.cost;
    if i <> ref_state then Matrix.set a i i (-.(exit_rate_of c));
    List.iter
      (fun (j, r) ->
        if j <> ref_state then Matrix.update a i j (fun x -> x +. r))
      c.Model.rates;
    Matrix.set a i ref_state (-1.0)
  done;
  (a, b)

(* A positive [restart_rate] adds an epsilon-rate transition from
   every state to [ref_state], which makes any chain unichain — the
   perturbation used when a multichain policy turns up mid-iteration.
   It only moves the non-reference diagonal entries, so the retry
   patches the already-assembled matrix in place (the right-hand side
   is untouched) instead of rebuilding the system. *)
let apply_restart a ~ref_state ~restart_rate =
  for i = 0 to Matrix.rows a - 1 do
    if i <> ref_state then Matrix.update a i i (fun x -> x -. restart_rate)
  done

let evaluation_of ~ref_state x =
  let bias =
    Vec.init (Vec.dim x) (fun j -> if j = ref_state then 0.0 else x.(j))
  in
  { gain = x.(ref_state); bias }

let evaluate_gen ~ref_state ~restart_rate m p =
  check_ref_state m ref_state;
  let a, b = dense_system ~ref_state m p in
  if restart_rate > 0.0 then apply_restart a ~ref_state ~restart_rate;
  evaluation_of ~ref_state (Lu.solve a b)

let evaluate ?(ref_state = 0) m p = evaluate_gen ~ref_state ~restart_rate:0.0 m p

(* Multichain policies (possible when the model contains several
   self-sufficient "orbits" — e.g. two active server speeds whose
   states never command each other) make the exact evaluation
   singular.  Retrying with a tiny restart rate toward the reference
   state restores unichain structure at an O(eps) bias error.

   The retry is an escalation ladder: the restart perturbation (a
   Tikhonov-style diagonal shift) grows by three decades per rung
   until the factorization succeeds AND the solution verifies.  Each
   rung re-verifies against both systems: the residual of the
   {e perturbed} system catches an ill-conditioned factorization
   producing garbage, and the residual of the {e exact} unperturbed
   system must stay consistent with the deliberate O(eps * |x|) bias
   — no additional error is tolerated.  The system is assembled once
   and the diagonal patched incrementally; every rung is counted via
   [Dpm_obs]. *)
let tikhonov_ladder = [| 1e-9; 1e-6; 1e-3 |]

let evaluate_robust ?(ref_state = 0) m p =
  check_ref_state m ref_state;
  let a, b = dense_system ~ref_state m p in
  match Lu.decompose a with
  | lu -> evaluation_of ~ref_state (Lu.solve_factored lu b)
  | exception Lu.Singular first_pivot ->
      Dpm_obs.Probe.incr "policy_iteration.robust_retries";
      Dpm_trace.Provenance.note_robust_retry ();
      let scale = Float.max 1.0 (Model.max_exit_rate m) in
      (* Pristine copy for exact-residual re-verification ([a] is
         patched in place rung by rung). *)
      let exact_a, exact_b = dense_system ~ref_state m p in
      let applied = ref 0.0 in
      let last_singular = ref first_pivot in
      let rec attempt rung =
        if rung >= Array.length tikhonov_ladder then begin
          Logs.warn (fun k ->
              k "policy evaluation singular at every Tikhonov rung");
          raise (Lu.Singular !last_singular)
        end;
        let eps = tikhonov_ladder.(rung) *. scale in
        apply_restart a ~ref_state ~restart_rate:(eps -. !applied);
        applied := eps;
        Dpm_obs.Probe.incr "policy_iteration.tikhonov_rungs";
        Dpm_trace.Provenance.note_tikhonov_rung ();
        if Dpm_trace.Recorder.enabled () then
          Dpm_trace.Recorder.instant "pi.tikhonov_rung"
            ~args:
              [
                ("rung", Dpm_trace.Event.Int rung);
                ("restart_rate", Dpm_trace.Event.Float eps);
              ];
        Logs.debug (fun k ->
            k "policy evaluation singular (multichain policy?); Tikhonov \
               rung %d, restart rate %g" rung eps);
        match Lu.decompose a with
        | exception Lu.Singular pivot ->
            last_singular := pivot;
            attempt (rung + 1)
        | lu ->
            let x = Lu.solve_factored lu b in
            let x_norm = Vec.norm_inf x in
            if not (Float.is_finite x_norm) then attempt (rung + 1)
            else begin
              (* Garbage detector on the system actually factored. *)
              let r_pert = Lu.residual_norm a x b in
              let tol_pert = 1e-8 *. Matrix.max_abs a *. Float.max 1.0 x_norm in
              (* Exact-system consistency: the perturbation moves the
                 residual by at most [eps * |x|]; allow 10x headroom
                 plus the perturbed floor, nothing more. *)
              let r_exact = Lu.residual_norm exact_a x exact_b in
              Dpm_obs.Probe.set "policy_iteration.tikhonov_exact_residual"
                r_exact;
              let tol_exact = tol_pert +. (10.0 *. eps *. (1.0 +. x_norm)) in
              if r_pert <= tol_pert && r_exact <= tol_exact then begin
                Dpm_trace.Provenance.note_residual r_exact;
                evaluation_of ~ref_state x
              end
              else attempt (rung + 1)
            end
      in
      attempt 0

(* --- sparse evaluation --------------------------------------------- *)

(* The policy's generator as CSR, straight from the choice rates. *)
let sparse_generator m p =
  let n = Model.num_states m in
  let ts = ref [] in
  for i = 0 to n - 1 do
    let c = Model.choice m i (Policy.choice_index p i) in
    let exit = exit_rate_of c in
    if exit > 0.0 then ts := (i, i, -.exit) :: !ts;
    List.iter
      (fun (j, r) -> if r > 0.0 then ts := (i, j, r) :: !ts)
      c.Model.rates
  done;
  Sparse.of_triplets ~rows:n ~cols:n !ts

(* The bias equations with the gain folded into column [ref_state]
   (same system as [dense_system], CSR) — used to cross-check any
   candidate solution cheaply via one sparse mat-vec. *)
let sparse_system ~ref_state m p =
  let n = Model.num_states m in
  let ts = ref [] in
  let b = Vec.create n in
  for i = 0 to n - 1 do
    let c = Model.choice m i (Policy.choice_index p i) in
    b.(i) <- -.c.Model.cost;
    let exit = exit_rate_of c in
    if i <> ref_state && exit > 0.0 then ts := (i, i, -.exit) :: !ts;
    List.iter
      (fun (j, r) ->
        if j <> ref_state && r > 0.0 then ts := (i, j, r) :: !ts)
      c.Model.rates;
    ts := (i, ref_state, -1.0) :: !ts
  done;
  (Sparse.of_triplets ~rows:n ~cols:n !ts, b)

(* The bias system with the gain already known: row [ref_state] is
   pinned to [v_ref = 0] and column [ref_state] is dropped from every
   other row, which restores weak diagonal dominance — exactly the
   M-matrix structure Gauss-Seidel sweeps are reliable on.

   Rows are normalized by their exit rate (diagonal -1).  This leaves
   the solution and the Gauss-Seidel iterates untouched (each update
   solves its row for x_i) but turns the sweep's absolute residual
   test into a per-row relative one — essential because the big-M
   self-switch rates (1e6) put the raw residual's floating-point
   floor far above any absolute tolerance worth having. *)
let pinned_bias_system ~ref_state ~gain m p =
  let n = Model.num_states m in
  let ts = ref [ (ref_state, ref_state, 1.0) ] in
  let b = Vec.create n in
  for i = 0 to n - 1 do
    if i <> ref_state then begin
      let c = Model.choice m i (Policy.choice_index p i) in
      let exit = exit_rate_of c in
      if exit > 0.0 then begin
        b.(i) <- (gain -. c.Model.cost) /. exit;
        ts := (i, i, -1.0) :: !ts;
        List.iter
          (fun (j, r) ->
            if j <> ref_state && r > 0.0 then ts := (i, j, r /. exit) :: !ts)
          c.Model.rates
      end
      (* exit = 0: absorbing state — leave the zero diagonal; the
         sweep rejects it and the caller falls back to dense. *)
    end
  done;
  (Sparse.of_triplets ~rows:n ~cols:n !ts, b)

exception Sparse_failed of string

(* Every state must reach [ref_state] under the policy's chain, else
   the pinned bias system is singular (the policy is multichain) and
   the sweeps below stagnate at a nonzero residual forever.  The dense
   path owns the restart-perturbation machinery for that case, so
   detect it structurally — one reverse DFS, O(n + nnz), negligible
   next to a single sweep — and fall back before wasting any. *)
let check_reaches_ref ~ref_state m p =
  let n = Model.num_states m in
  let rev = Array.make n [] in
  for i = 0 to n - 1 do
    let c = Model.choice m i (Policy.choice_index p i) in
    List.iter
      (fun (j, r) -> if r > 0.0 && j <> i then rev.(j) <- i :: rev.(j))
      c.Model.rates
  done;
  let seen = Array.make n false in
  let stack = Stack.create () in
  seen.(ref_state) <- true;
  Stack.push ref_state stack;
  let count = ref 0 in
  while not (Stack.is_empty stack) do
    let j = Stack.pop stack in
    incr count;
    List.iter
      (fun i ->
        if not seen.(i) then begin
          seen.(i) <- true;
          Stack.push i stack
        end)
      rev.(j)
  done;
  if !count < n then
    raise
      (Sparse_failed
         (Printf.sprintf
            "multichain policy: %d of %d states cannot reach the reference \
             state"
            (n - !count) n))

let evaluate_sparse_exn ~ref_state ~tol ~max_iter ~guard m p =
  let n = Model.num_states m in
  check_reaches_ref ~ref_state m p;
  (* Stage 1: stationary distribution of the policy chain -> gain. *)
  let g = sparse_generator m p in
  let pi = Iterative.gauss_seidel_steady ~tol ~max_iter ~guard g in
  if not pi.Iterative.converged then
    raise (Sparse_failed "stationary sweep did not converge");
  let gain = ref 0.0 in
  for i = 0 to n - 1 do
    let c = Model.choice m i (Policy.choice_index p i) in
    gain := !gain +. (pi.Iterative.solution.(i) *. c.Model.cost)
  done;
  let gain = !gain in
  (* Stage 2: bias from the pinned system (gain known, v_ref = 0).
     The sweep's own convergence flag is advisory: its absolute
     residual test can stall at the floating-point noise floor even
     when the iterate is fully converged, so acceptance is decided by
     the exact-system verification below, not here. *)
  let a, b = pinned_bias_system ~ref_state ~gain m p in
  (* The sweep's stopping test is an absolute residual, so scale the
     tolerance with the system's magnitude — the bias itself can reach
     1e4 on deep queues, putting the attainable floor near eps*|bias|;
     an unscaled 1e-12 would spin to max_iter on converged iterates. *)
  let tol = tol *. Float.max 1.0 (Vec.norm_inf b) in
  let sol = Iterative.gauss_seidel ~tol ~max_iter ~guard a b in
  (* Verify against the exact relative-value equations: one sparse
     mat-vec.  This also catches multichain policies, where the
     stationary sweep converges to the wrong chain's gain. *)
  let ag, bg = sparse_system ~ref_state m p in
  let x =
    Vec.init n (fun j ->
        if j = ref_state then gain else sol.Iterative.solution.(j))
  in
  let residual = Vec.norm_inf (Vec.sub (Sparse.mul_vec ag x) bg) in
  let accept = 1e-7 *. Float.max 1.0 (Vec.norm_inf bg) in
  if residual > accept then
    raise
      (Sparse_failed
         (Printf.sprintf "verification residual %g above %g" residual accept));
  Dpm_trace.Provenance.note_residual residual;
  evaluation_of ~ref_state x

let evaluate_sparse ?(ref_state = 0) ?(tol = 1e-12) ?max_iter
    ?(guard = fun () -> ()) m p =
  check_ref_state m ref_state;
  let max_iter =
    match max_iter with
    | Some k -> k
    | None -> max 10_000 (50 * Model.num_states m)
  in
  match evaluate_sparse_exn ~ref_state ~tol ~max_iter ~guard m p with
  | e ->
      Dpm_obs.Probe.incr "policy_iteration.sparse_evals";
      Dpm_obs.Probe.set "policy_iteration.eval_path" 1.0;
      Dpm_trace.Provenance.note_eval_path "sparse";
      e
  | exception (Sparse_failed reason | Invalid_argument reason) ->
      (* Zero diagonals (absorbing states), non-convergence, or a
         verification miss: fall back to the exact dense LU path. *)
      Logs.debug (fun k ->
          k "sparse policy evaluation fell back to dense LU: %s" reason);
      Dpm_obs.Probe.incr "policy_iteration.sparse_fallbacks";
      Dpm_obs.Probe.set "policy_iteration.eval_path" 0.0;
      Dpm_trace.Provenance.note_sparse_fallback ();
      Dpm_trace.Provenance.note_eval_path "dense";
      if Dpm_trace.Recorder.enabled () then
        Dpm_trace.Recorder.instant "pi.sparse_fallback"
          ~args:[ ("reason", Dpm_trace.Event.Str reason) ];
      evaluate_robust ~ref_state m p

(* --- implicit (matrix-free) evaluation ------------------------------ *)

module A1 = Bigarray.Array1

(* The implicit path never materializes the policy's generator as a
   matrix: the rows are flattened once into plain int/float arrays
   (O(n + nnz) with a counting sort for column access — no triplet
   lists, no polymorphic-compare sort, no CSR transpose, all of which
   dominate [evaluate_sparse]'s cost on large models) and both
   Gauss-Seidel stages sweep those arrays over Bigarray iterates, so a
   sweep allocates nothing.  The numerical scheme is exactly the
   sparse path's: stationary distribution -> gain, then the pinned
   exit-rate-normalized bias system, then verification against the
   exact relative-value equations at the same acceptance threshold. *)
let evaluate_implicit_exn ~ref_state ~tol ~max_iter ~guard m p =
  let n = Model.num_states m in
  check_reaches_ref ~ref_state m p;
  (* Flatten the policy's rows: costs, exit rates, out-edges. *)
  let cost = Array.make n 0.0 and exit = Array.make n 0.0 in
  let row_start = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let c = Model.choice m i (Policy.choice_index p i) in
    cost.(i) <- c.Model.cost;
    exit.(i) <- exit_rate_of c;
    if exit.(i) <= 0.0 then
      raise (Sparse_failed "implicit: absorbing state (zero exit rate)");
    row_start.(i + 1) <- row_start.(i) + List.length c.Model.rates
  done;
  let nnz = row_start.(n) in
  let col = Array.make nnz 0 and rate = Array.make nnz 0.0 in
  let fill = ref 0 in
  for i = 0 to n - 1 do
    let c = Model.choice m i (Policy.choice_index p i) in
    List.iter
      (fun (j, r) ->
        col.(!fill) <- j;
        rate.(!fill) <- r;
        incr fill)
      c.Model.rates
  done;
  (* Reverse (in-edge) adjacency by counting sort — the column access
     stage 1 sweeps over, built without any comparison sort. *)
  let rstart = Array.make (n + 1) 0 in
  for e = 0 to nnz - 1 do
    rstart.(col.(e) + 1) <- rstart.(col.(e) + 1) + 1
  done;
  for j = 1 to n do
    rstart.(j) <- rstart.(j) + rstart.(j - 1)
  done;
  let rsrc = Array.make (max 1 nnz) 0 and rrate = Array.make (max 1 nnz) 0.0 in
  let cursor = Array.sub rstart 0 n in
  for i = 0 to n - 1 do
    for e = row_start.(i) to row_start.(i + 1) - 1 do
      let j = col.(e) in
      rsrc.(cursor.(j)) <- i;
      rrate.(cursor.(j)) <- rate.(e);
      cursor.(j) <- cursor.(j) + 1
    done
  done;
  let acc = ref 0.0 in
  (* Stage 1: stationary distribution of the policy chain -> gain. *)
  let pi = Bvec.make n (1.0 /. float_of_int n) in
  let prev = Bvec.create n in
  let sweeps = ref 0 and change = ref infinity in
  while !change > tol && !sweeps < max_iter do
    (* One guard tick per sweep — the same granularity as the
       materialized Gauss-Seidel loops, so wall-clock deadlines and
       injected stalls cover the matrix-free path too. *)
    guard ();
    Bvec.blit ~src:pi ~dst:prev;
    for j = 0 to n - 1 do
      acc := 0.0;
      for e = rstart.(j) to rstart.(j + 1) - 1 do
        let i = rsrc.(e) in
        if i <> j then acc := !acc +. (A1.unsafe_get pi i *. rrate.(e))
      done;
      A1.unsafe_set pi j (!acc /. exit.(j))
    done;
    let s = Bvec.sum pi in
    if s = 0.0 || not (Float.is_finite s) then
      raise (Sparse_failed "implicit: stationary iterate degenerated");
    Bvec.scale_inplace (1.0 /. s) pi;
    acc := 0.0;
    for i = 0 to n - 1 do
      acc := !acc +. Float.abs (A1.unsafe_get pi i -. A1.unsafe_get prev i)
    done;
    change := !acc;
    incr sweeps
  done;
  if !change > tol then
    raise (Sparse_failed "implicit: stationary sweep did not converge");
  let gain = ref 0.0 in
  for i = 0 to n - 1 do
    gain := !gain +. (A1.unsafe_get pi i *. cost.(i))
  done;
  let gain = !gain in
  (* Stage 2: the pinned bias system (v_ref = 0, gain known), rows
     normalized by their exit rate — the same per-row-relative
     residual test as the sparse path, with the same magnitude-scaled
     tolerance.  Convergence here is advisory; acceptance is decided
     by the exact-system verification below. *)
  let v = Bvec.create n in
  let b_inf = ref 0.0 in
  for i = 0 to n - 1 do
    if i <> ref_state then
      b_inf := Float.max !b_inf (Float.abs ((gain -. cost.(i)) /. exit.(i)))
  done;
  let tol2 = tol *. Float.max 1.0 !b_inf in
  let sweeps2 = ref 0 and residual = ref infinity in
  while !residual > tol2 && !sweeps2 < max_iter do
    guard ();
    for i = 0 to n - 1 do
      if i <> ref_state then begin
        acc := 0.0;
        for e = row_start.(i) to row_start.(i + 1) - 1 do
          let j = col.(e) in
          if j <> ref_state then acc := !acc +. (rate.(e) *. A1.unsafe_get v j)
        done;
        A1.unsafe_set v i ((cost.(i) -. gain +. !acc) /. exit.(i))
      end
    done;
    let r = ref 0.0 in
    for i = 0 to n - 1 do
      if i <> ref_state then begin
        acc := 0.0;
        for e = row_start.(i) to row_start.(i + 1) - 1 do
          let j = col.(e) in
          if j <> ref_state then acc := !acc +. (rate.(e) *. A1.unsafe_get v j)
        done;
        r :=
          Float.max !r
            (Float.abs
               ((!acc +. cost.(i) -. gain -. (exit.(i) *. A1.unsafe_get v i))
               /. exit.(i)))
      end
    done;
    residual := !r;
    incr sweeps2
  done;
  Dpm_obs.Probe.add "policy_iteration.implicit_sweeps" (!sweeps + !sweeps2);
  (* Verify against the exact relative-value equations — the same
     acceptance threshold as the sparse path's one-mat-vec check. *)
  let b_norm = ref 0.0 in
  for i = 0 to n - 1 do
    b_norm := Float.max !b_norm (Float.abs cost.(i))
  done;
  let verr = ref 0.0 in
  for i = 0 to n - 1 do
    acc := 0.0;
    for e = row_start.(i) to row_start.(i + 1) - 1 do
      let j = col.(e) in
      if j <> ref_state then acc := !acc +. (rate.(e) *. A1.unsafe_get v j)
    done;
    let diag = if i = ref_state then 0.0 else exit.(i) *. A1.unsafe_get v i in
    verr := Float.max !verr (Float.abs (!acc -. diag -. gain +. cost.(i)))
  done;
  let accept = 1e-7 *. Float.max 1.0 !b_norm in
  if !verr > accept then
    raise
      (Sparse_failed
         (Printf.sprintf "implicit verification residual %g above %g" !verr
            accept));
  Dpm_trace.Provenance.note_residual !verr;
  let bias =
    Vec.init n (fun j -> if j = ref_state then 0.0 else A1.unsafe_get v j)
  in
  { gain; bias }

let evaluate_implicit ?(ref_state = 0) ?(tol = 1e-12) ?max_iter
    ?(guard = fun () -> ()) m p =
  check_ref_state m ref_state;
  let max_iter =
    match max_iter with
    | Some k -> k
    | None -> max 10_000 (50 * Model.num_states m)
  in
  match evaluate_implicit_exn ~ref_state ~tol ~max_iter ~guard m p with
  | e ->
      Dpm_obs.Probe.incr "policy_iteration.implicit_evals";
      Dpm_obs.Probe.set "policy_iteration.eval_path" 2.0;
      Dpm_trace.Provenance.note_eval_path "implicit";
      e
  | exception (Sparse_failed reason | Invalid_argument reason) ->
      (* Multichain structure, absorbing states, non-convergence, or a
         verification miss: fall through the existing ladder — the
         sparse CSR reference first, dense LU behind it. *)
      Logs.debug (fun k ->
          k "implicit policy evaluation fell back to sparse: %s" reason);
      Dpm_obs.Probe.incr "policy_iteration.implicit_fallbacks";
      if Dpm_trace.Recorder.enabled () then
        Dpm_trace.Recorder.instant "pi.implicit_fallback"
          ~args:[ ("reason", Dpm_trace.Event.Str reason) ];
      evaluate_sparse ~ref_state ~guard m p

type eval_path = Dense | Sparse | Auto | Implicit

(* Dense LU is O(n^3) but rock solid; the sparse sweeps win once the
   composed state space outgrows the paper's instances.  The crossover
   on the queue-capacity ablation sits around a few hundred states.
   [Auto] deliberately never selects [Implicit]: the CSR sweeps stay
   the default reference until the implicit path has equivalent
   burn-in (DESIGN.md decision 13); callers opt in explicitly. *)
let sparse_auto_threshold = 192

let evaluate_auto ?ref_state ?guard ~path m p =
  match path with
  | Implicit -> evaluate_implicit ?ref_state ?guard m p
  | Sparse -> evaluate_sparse ?ref_state ?guard m p
  | Auto when Model.num_states m >= sparse_auto_threshold ->
      evaluate_sparse ?ref_state ?guard m p
  | Dense | Auto ->
      Dpm_obs.Probe.set "policy_iteration.eval_path" 0.0;
      Dpm_trace.Provenance.note_eval_path "dense";
      evaluate_robust ?ref_state m p

let test_quantity i (c : Model.choice) bias =
  (* c_i^a + sum_j s^a_ij v_j, with the diagonal folded in:
     sum_j q_ij v_j = sum_{j<>i} rate_ij (v_j - v_i). *)
  List.fold_left
    (fun acc (j, r) -> acc +. (r *. (bias.(j) -. bias.(i))))
    c.Model.cost c.Model.rates

let improve m (eval : evaluation) ~incumbent =
  let n = Model.num_states m in
  let tol = 1e-9 in
  let changed = ref 0 in
  let selection =
    Array.init n (fun i ->
        let current = Policy.choice_index incumbent i in
        let current_value = test_quantity i (Model.choice m i current) eval.bias in
        let best = ref current and best_value = ref current_value in
        for k = 0 to Model.num_choices m i - 1 do
          if k <> current then begin
            let v = test_quantity i (Model.choice m i k) eval.bias in
            if v < !best_value -. tol then begin
              best := k;
              best_value := v
            end
          end
        done;
        if !best <> current then incr changed;
        !best)
  in
  (Policy.of_choice_indices m selection, !changed)

let solve ?ref_state ?(max_iter = 1000) ?init ?(eval = Auto)
    ?(guard = fun () -> ()) m =
  Dpm_obs.Span.with_ "policy_iteration" @@ fun () ->
  let t0 = Dpm_obs.Probe.now () in
  let origin =
    match init with
    | Some _ -> Dpm_trace.Provenance.Warm
    | None -> Dpm_trace.Provenance.Cold
  in
  let init = match init with Some p -> p | None -> Policy.uniform_first m in
  let rec loop iteration policy trace =
    guard ();
    if iteration > max_iter then
      failwith
        (Printf.sprintf "Policy_iteration.solve: no convergence after %d iterations"
           max_iter);
    let evaluation =
      Dpm_obs.Probe.time "policy_iteration.eval_time_seconds" (fun () ->
          evaluate_auto ?ref_state ~guard ~path:eval m policy)
    in
    let next, changed =
      Dpm_obs.Probe.time "policy_iteration.improve_time_seconds" (fun () ->
          improve m evaluation ~incumbent:policy)
    in
    Dpm_obs.Probe.add "policy_iteration.changed_states" changed;
    let step =
      {
        iteration;
        policy_actions = Policy.actions m policy;
        evaluation;
        changed_states = changed;
      }
    in
    Logs.debug (fun k ->
        k "policy iteration %d: gain=%g changed=%d" iteration evaluation.gain
          changed);
    if changed = 0 then begin
      Dpm_obs.Probe.incr "policy_iteration.solves";
      Dpm_obs.Probe.add "policy_iteration.iterations" iteration;
      Dpm_obs.Probe.set "policy_iteration.gain" evaluation.gain;
      (policy, evaluation, iteration, List.rev (step :: trace))
    end
    else loop (iteration + 1) next (step :: trace)
  in
  let (policy, evaluation, iterations, trace), counts =
    Dpm_trace.Provenance.collect (fun () -> loop 1 init [])
  in
  {
    policy;
    gain = evaluation.gain;
    bias = evaluation.bias;
    iterations;
    trace;
    provenance =
      Dpm_trace.Provenance.of_counts ~method_:"policy_iteration" ~iterations
        ~origin
        ~wall_s:(Dpm_obs.Probe.now () -. t0)
        counts;
  }

let brute_force m =
  let best = ref None in
  Seq.iter
    (fun p ->
      match evaluate m p with
      | { gain; _ } -> (
          match !best with
          | Some (_, g) when g <= gain -> ()
          | _ -> best := Some (p, gain))
      | exception Lu.Singular _ -> ())
    (Policy.enumerate m);
  match !best with
  | Some (p, g) -> (p, g)
  | None -> failwith "Policy_iteration.brute_force: no evaluable policy"
