open Dpm_linalg
open Dpm_ctmc

type evaluation = { gain : float; bias : Vec.t }

type step = {
  iteration : int;
  policy_actions : int array;
  evaluation : evaluation;
  changed_states : int;
}

type result = {
  policy : Policy.t;
  gain : float;
  bias : Vec.t;
  iterations : int;
  trace : step list;
}

let evaluate_gen ~ref_state ~restart_rate m p =
  let n = Model.num_states m in
  if ref_state < 0 || ref_state >= n then
    invalid_arg "Policy_iteration.evaluate: bad reference state";
  let g = Policy.generator m p in
  let c = Policy.cost_vector m p in
  (* Unknowns x: x.(j) = v_j for j <> ref_state, x.(ref_state) = gain.
     Equation for state i:  sum_j G_ij v_j - gain = -c_i,
     with v_{ref} = 0 substituted.  A positive [restart_rate] adds an
     epsilon-rate transition from every state to [ref_state], which
     makes any chain unichain — the perturbation used when a
     multichain policy turns up mid-iteration. *)
  let a =
    Matrix.init n n (fun i j ->
        if j = ref_state then -1.0
        else begin
          let base = Generator.get g i j in
          if restart_rate = 0.0 || i = ref_state then base
          else if j = i then base -. restart_rate
          else base
        end)
  in
  let b = Vec.map (fun ci -> -.ci) c in
  let x = Lu.solve a b in
  let bias = Vec.init n (fun j -> if j = ref_state then 0.0 else x.(j)) in
  { gain = x.(ref_state); bias }

let evaluate ?(ref_state = 0) m p = evaluate_gen ~ref_state ~restart_rate:0.0 m p

(* Multichain policies (possible when the model contains several
   self-sufficient "orbits" — e.g. two active server speeds whose
   states never command each other) make the exact evaluation
   singular.  Retrying with a tiny restart rate toward the reference
   state restores unichain structure at an O(eps) bias error. *)
let evaluate_robust ?(ref_state = 0) m p =
  match evaluate_gen ~ref_state ~restart_rate:0.0 m p with
  | e -> e
  | exception Lu.Singular _ ->
      let eps = 1e-9 *. Float.max 1.0 (Model.max_exit_rate m) in
      Logs.debug (fun k ->
          k "policy evaluation singular (multichain policy); retrying with \
             restart rate %g" eps);
      evaluate_gen ~ref_state ~restart_rate:eps m p

let test_quantity i (c : Model.choice) bias =
  (* c_i^a + sum_j s^a_ij v_j, with the diagonal folded in:
     sum_j q_ij v_j = sum_{j<>i} rate_ij (v_j - v_i). *)
  List.fold_left
    (fun acc (j, r) -> acc +. (r *. (bias.(j) -. bias.(i))))
    c.Model.cost c.Model.rates

let improve m (eval : evaluation) ~incumbent =
  let n = Model.num_states m in
  let tol = 1e-9 in
  let changed = ref 0 in
  let selection =
    Array.init n (fun i ->
        let current = Policy.choice_index incumbent i in
        let current_value = test_quantity i (Model.choice m i current) eval.bias in
        let best = ref current and best_value = ref current_value in
        for k = 0 to Model.num_choices m i - 1 do
          if k <> current then begin
            let v = test_quantity i (Model.choice m i k) eval.bias in
            if v < !best_value -. tol then begin
              best := k;
              best_value := v
            end
          end
        done;
        if !best <> current then incr changed;
        !best)
  in
  (Policy.of_choice_indices m selection, !changed)

let solve ?ref_state ?(max_iter = 1000) ?init m =
  Dpm_obs.Span.with_ "policy_iteration" @@ fun () ->
  let init = match init with Some p -> p | None -> Policy.uniform_first m in
  let rec loop iteration policy trace =
    if iteration > max_iter then
      failwith
        (Printf.sprintf "Policy_iteration.solve: no convergence after %d iterations"
           max_iter);
    let evaluation =
      Dpm_obs.Probe.time "policy_iteration.eval_time_seconds" (fun () ->
          evaluate_robust ?ref_state m policy)
    in
    let next, changed =
      Dpm_obs.Probe.time "policy_iteration.improve_time_seconds" (fun () ->
          improve m evaluation ~incumbent:policy)
    in
    Dpm_obs.Probe.add "policy_iteration.changed_states" changed;
    let step =
      {
        iteration;
        policy_actions = Policy.actions m policy;
        evaluation;
        changed_states = changed;
      }
    in
    Logs.debug (fun k ->
        k "policy iteration %d: gain=%g changed=%d" iteration evaluation.gain
          changed);
    if changed = 0 then begin
      Dpm_obs.Probe.incr "policy_iteration.solves";
      Dpm_obs.Probe.add "policy_iteration.iterations" iteration;
      Dpm_obs.Probe.set "policy_iteration.gain" evaluation.gain;
      ( {
          policy;
          gain = evaluation.gain;
          bias = evaluation.bias;
          iterations = iteration;
          trace = List.rev (step :: trace);
        }
        : result )
    end
    else loop (iteration + 1) next (step :: trace)
  in
  loop 1 init []

let brute_force m =
  let best = ref None in
  Seq.iter
    (fun p ->
      match evaluate m p with
      | { gain; _ } -> (
          match !best with
          | Some (_, g) when g <= gain -> ()
          | _ -> best := Some (p, gain))
      | exception Lu.Singular _ -> ())
    (Policy.enumerate m);
  match !best with
  | Some (p, g) -> (p, g)
  | None -> failwith "Policy_iteration.brute_force: no evaluable policy"
