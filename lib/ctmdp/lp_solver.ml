open Dpm_linalg

type result = {
  policy : Policy.t;
  gain : float;
  occupation : float array array;
  bias : Vec.t;
  provenance : Dpm_trace.Provenance.t;
}

let solve ?(ref_state = 0) ?max_pivots ?guard m =
  let t0 = Dpm_obs.Probe.now () in
  let n = Model.num_states m in
  if ref_state < 0 || ref_state >= n then
    invalid_arg "Lp_solver.solve: bad reference state";
  (* Flatten the (state, choice) pairs into LP variables. *)
  let var_of = Array.make n [||] in
  let pairs = ref [] in
  let count = ref 0 in
  for i = 0 to n - 1 do
    var_of.(i) <-
      Array.init (Model.num_choices m i) (fun k ->
          let v = !count in
          incr count;
          pairs := (i, k) :: !pairs;
          v)
  done;
  let pairs = Array.of_list (List.rev !pairs) in
  let nv = !count in
  (* Constraint rows: balance for every state except [ref_state]
     (they are linearly dependent), then normalization. *)
  let row_of_state = Array.make n (-1) in
  let nrows = n in
  let next = ref 0 in
  for j = 0 to n - 1 do
    if j <> ref_state then begin
      row_of_state.(j) <- !next;
      incr next
    end
  done;
  let norm_row = n - 1 in
  let a = Matrix.create nrows nv in
  let c = Vec.create nv in
  Array.iteri
    (fun v (i, k) ->
      let choice = Model.choice m i k in
      c.(v) <- choice.Model.cost;
      (* Normalization. *)
      Matrix.set a norm_row v 1.0;
      (* Balance: q^a_{ij} for j <> i plus the diagonal -exit at i. *)
      let exit = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 choice.Model.rates in
      if i <> ref_state then
        Matrix.update a row_of_state.(i) v (fun x -> x -. exit);
      List.iter
        (fun (j, r) ->
          if j <> ref_state then
            Matrix.update a row_of_state.(j) v (fun x -> x +. r))
        choice.Model.rates)
    pairs;
  let b = Vec.create nrows in
  b.(norm_row) <- 1.0;
  let outcome, counts =
    Dpm_trace.Provenance.collect (fun () ->
        Simplex.minimize ?max_pivots ?guard ~c ~a b)
  in
  match outcome with
  | Simplex.Infeasible -> failwith "Lp_solver.solve: LP infeasible (model bug?)"
  | Simplex.Unbounded -> failwith "Lp_solver.solve: LP unbounded (model bug?)"
  | Simplex.Optimal { x; objective; dual } ->
      let occupation =
        Array.init n (fun i -> Array.map (fun v -> x.(v)) var_of.(i))
      in
      (* Duals: balance rows give the bias (v_ref pinned at 0 by the
         dropped row; sign flipped by the constraint orientation). *)
      let bias =
        Vec.init n (fun j ->
            if j = ref_state then 0.0 else -.dual.(row_of_state.(j)))
      in
      let choice_for i =
        (* Positive-measure choice if any; otherwise greedy in the
           recovered bias (the PI improvement rule). *)
        let k_star = ref (-1) in
        Array.iteri
          (fun k v -> if !k_star < 0 && x.(v) > 1e-9 then k_star := k)
          var_of.(i);
        if !k_star >= 0 then !k_star
        else begin
          let value k =
            let ch = Model.choice m i k in
            List.fold_left
              (fun acc (j, r) -> acc +. (r *. (bias.(j) -. bias.(i))))
              ch.Model.cost ch.Model.rates
          in
          let best = ref 0 and best_value = ref (value 0) in
          for k = 1 to Model.num_choices m i - 1 do
            let v = value k in
            if v < !best_value -. 1e-12 then begin
              best := k;
              best_value := v
            end
          done;
          !best
        end
      in
      {
        policy = Policy.of_choice_indices m (Array.init n choice_for);
        gain = objective;
        occupation;
        bias;
        provenance =
          Dpm_trace.Provenance.of_counts ~method_:"lp"
            ~iterations:counts.Dpm_trace.Provenance.pivots
            ~origin:Dpm_trace.Provenance.Cold
            ~wall_s:(Dpm_obs.Probe.now () -. t0)
            ~eval_path:"simplex" counts;
      }
