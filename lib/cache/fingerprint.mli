(** Canonical structural fingerprints of CTMDP models.

    Two models that describe the same decision process — same states,
    same action sets, same rates and costs — must map to the same
    cache key even when their choice lists or rate lists were built in
    a different order.  The fingerprint therefore encodes a canonical
    form: per state, choices sorted by action label (labels are unique
    within a state by {!Dpm_ctmdp.Model.create} validation); per
    choice, rates sorted by target state with zero rates dropped and
    duplicate targets merged by summation in bit-pattern order.
    Floats enter the encoding as their exact IEEE-754 bits
    ([Int64.bits_of_float]) — no rounding, so a model perturbed in the
    last ulp gets a different key.

    State {e indices} are part of the canonical form on purpose: a
    relabeling of states is a genuinely different model to every
    state-indexed consumer (policies, bias vectors, analytic
    metrics), so it must not collide.

    The solver configuration (reference state, iteration budget,
    evaluation backend) is folded into the key as a prefix: the same
    model solved under a different configuration may legitimately
    produce a different trace, so the cache keys on both. *)

type config = {
  ref_state : int;  (** bias reference state (solver default 0) *)
  max_iter : int;  (** policy-iteration budget (solver default 1000) *)
  eval : Dpm_ctmdp.Policy_iteration.eval_path;
      (** evaluation backend (solver default [Auto]) *)
}

val default_config : config
(** [{ ref_state = 0; max_iter = 1000; eval = Auto }] — mirrors the
    {!Dpm_ctmdp.Policy_iteration.solve} defaults. *)

val model : Dpm_ctmdp.Model.t -> string
(** The canonical binary encoding of a model (no configuration).
    Equal iff the models are structurally equal up to within-state
    choice/rate ordering. *)

val key : ?config:config -> Dpm_ctmdp.Model.t -> string
(** [key ~config m] is the full cache key: a format-version magic,
    the encoded configuration, then {!model}.  Keys are compared
    byte-for-byte by the cache, so a cache hit is collision-proof —
    the 64-bit hash below is only a diagnostic digest. *)

val hash64 : string -> int64
(** FNV-1a 64-bit hash of an arbitrary string. *)

val model_hash : Dpm_ctmdp.Model.t -> int64
(** [hash64 (model m)] — a compact digest for logs and tests. *)
