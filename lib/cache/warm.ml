module Model = Dpm_ctmdp.Model
module Policy = Dpm_ctmdp.Policy

let init_of_actions m actions =
  let n = Model.num_states m in
  let ok = ref (Array.length actions = n) in
  let idx = Array.make (max n 1) 0 in
  if !ok then
    for i = 0 to n - 1 do
      match Model.find_choice m i ~action:actions.(i) with
      | Some k -> idx.(i) <- k
      | None -> ok := false
    done;
  if !ok then begin
    Dpm_obs.Probe.incr "cache.warm_starts";
    Some (Policy.of_choice_indices m idx)
  end
  else begin
    Dpm_obs.Probe.incr "cache.warm_fallbacks";
    None
  end

let waves n =
  if n <= 0 then []
  else if n = 1 then [ [| (0, None) |] ]
  else begin
    let solved = Array.make n false in
    solved.(0) <- true;
    solved.(n - 1) <- true;
    let head = [ [| (n - 1, Some 0) |]; [| (0, None) |] ] in
    (* Split every gap between consecutive solved points at its
       midpoint; the midpoint's seed is the nearer endpoint (left on
       ties, since floor division puts the midpoint left of center). *)
    let rec subdivide acc =
      let wave = ref [] in
      let last_solved = ref 0 in
      for i = 1 to n - 1 do
        if solved.(i) then begin
          let l = !last_solved and r = i in
          if r - l >= 2 then begin
            let mid = (l + r) / 2 in
            let src = if mid - l <= r - mid then l else r in
            wave := (mid, Some src) :: !wave
          end;
          last_solved := i
        end
      done;
      match !wave with
      | [] -> List.rev acc
      | points ->
          let points = Array.of_list (List.rev points) in
          Array.iter (fun (k, _) -> solved.(k) <- true) points;
          subdivide (points :: acc)
    in
    subdivide head
  end
