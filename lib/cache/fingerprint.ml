module Model = Dpm_ctmdp.Model
module Pi = Dpm_ctmdp.Policy_iteration

type config = { ref_state : int; max_iter : int; eval : Pi.eval_path }

let default_config = { ref_state = 0; max_iter = 1000; eval = Pi.Auto }
let add_int buf i = Buffer.add_int64_le buf (Int64.of_int i)
let add_float buf x = Buffer.add_int64_le buf (Int64.bits_of_float x)

(* Canonical rate list: zero rates dropped (they cannot affect any
   solver), sorted by target then by the rate's bit pattern, duplicate
   targets summed left-to-right in that order.  Float addition is
   commutative but not associative, so fixing the summand order makes
   the merged value a function of the rate multiset alone. *)
let canonical_rates rates =
  let rates = List.filter (fun (_, r) -> r <> 0.0) rates in
  let rates =
    List.sort
      (fun (j1, r1) (j2, r2) ->
        match compare (j1 : int) j2 with
        | 0 -> Int64.compare (Int64.bits_of_float r1) (Int64.bits_of_float r2)
        | c -> c)
      rates
  in
  let rec merge = function
    | (j1, r1) :: (j2, r2) :: rest when j1 = j2 -> merge ((j1, r1 +. r2) :: rest)
    | pair :: rest -> pair :: merge rest
    | [] -> []
  in
  merge rates

let encode_model buf m =
  let n = Model.num_states m in
  add_int buf n;
  for i = 0 to n - 1 do
    let cs =
      List.sort
        (fun a b -> compare a.Model.action b.Model.action)
        (Model.choices m i)
    in
    add_int buf (List.length cs);
    List.iter
      (fun c ->
        add_int buf c.Model.action;
        add_float buf c.Model.cost;
        let rs = canonical_rates c.Model.rates in
        add_int buf (List.length rs);
        List.iter
          (fun (j, r) ->
            add_int buf j;
            add_float buf r)
          rs)
      cs
  done

let model m =
  let buf = Buffer.create 1024 in
  encode_model buf m;
  Buffer.contents buf

let eval_tag = function
  | Pi.Dense -> 0
  | Pi.Sparse -> 1
  | Pi.Auto -> 2
  | Pi.Implicit -> 3

let key ?(config = default_config) m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "dpmc1";
  add_int buf config.ref_state;
  add_int buf config.max_iter;
  add_int buf (eval_tag config.eval);
  encode_model buf m;
  Buffer.contents buf

let hash64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let model_hash m = hash64 (model m)
