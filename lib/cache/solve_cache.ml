module Model = Dpm_ctmdp.Model
module Policy = Dpm_ctmdp.Policy
module Pi = Dpm_ctmdp.Policy_iteration
module Probe = Dpm_obs.Probe

type entry = { actions : int array; result : Pi.result }

let default_capacity =
  match Sys.getenv_opt "DPM_CACHE" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some c when c >= 0 -> c
      | _ -> 512)
  | None -> 512

(* Swapped atomically as a whole; Lru guards its own internals, so
   readers racing a [set_capacity] simply finish against the cache
   they loaded. *)
let cache : entry Lru.t ref = ref (Lru.create ~capacity:default_capacity)
let capacity () = Lru.capacity !cache
let set_capacity c = cache := Lru.create ~capacity:c

let with_capacity c f =
  let previous = !cache in
  cache := Lru.create ~capacity:c;
  Fun.protect ~finally:(fun () -> cache := previous) f

let clear () = Lru.clear !cache
let stats () = Lru.stats !cache

let hit_ratio () =
  let s = stats () in
  let lookups = s.Lru.hits + s.Lru.misses in
  if lookups = 0 then 0.0 else float_of_int s.Lru.hits /. float_of_int lookups

let publish c =
  let s = Lru.stats c in
  Probe.set "cache.size" (float_of_int s.Lru.size);
  let lookups = s.Lru.hits + s.Lru.misses in
  Probe.set "cache.hit_ratio"
    (if lookups = 0 then 0.0
     else float_of_int s.Lru.hits /. float_of_int lookups)

let find ?(config = Fingerprint.default_config) m =
  let c = !cache in
  if Lru.capacity c = 0 then None
  else begin
    let key = Fingerprint.key ~config m in
    let hit =
      match Lru.find c key with
      | None -> None
      | Some e -> (
          (* Rebuild the policy for this model instance; a label the
             model does not offer means a fingerprint collision (or a
             caller bug) — treat it as a miss rather than serve a
             wrong policy. *)
          match Policy.of_actions m e.actions with
          | policy ->
              Some
                {
                  e.result with
                  Pi.policy;
                  Pi.bias = Dpm_linalg.Vec.copy e.result.Pi.bias;
                }
          | exception Invalid_argument _ -> None)
    in
    Probe.incr (if hit = None then "cache.misses" else "cache.hits");
    if Dpm_trace.Recorder.enabled () then
      Dpm_trace.Recorder.instant
        (if hit = None then "cache.miss" else "cache.hit")
        ~args:
          [
            ( "fingerprint",
              Dpm_trace.Event.Str
                (Printf.sprintf "%016Lx" (Fingerprint.hash64 key)) );
          ];
    publish c;
    hit
  end

let store ?(config = Fingerprint.default_config) m (result : Pi.result) =
  let c = !cache in
  if Lru.capacity c > 0 then begin
    let entry =
      {
        actions = Policy.actions m result.Pi.policy;
        result = { result with Pi.bias = Dpm_linalg.Vec.copy result.Pi.bias };
      }
    in
    if Lru.add c (Fingerprint.key ~config m) entry then
      Probe.incr "cache.evictions";
    publish c
  end

let solve ?(config = Fingerprint.default_config) ?init ?guard m =
  match find ~config m with
  | Some result -> result
  | None ->
      let result =
        Pi.solve ~ref_state:config.Fingerprint.ref_state
          ~max_iter:config.Fingerprint.max_iter ?init
          ~eval:config.Fingerprint.eval ?guard m
      in
      store ~config m result;
      result
