(** Warm-start plumbing for solver grids.

    Sweeps over a weight or rate grid solve a family of closely
    related models; seeding each grid point's policy iteration with a
    neighbor's optimal policy typically cuts the iteration count by
    half or more.  This module provides the two pieces that keep that
    trick deterministic and safe: validated translation of an action
    table into a policy for a {e different} model of the same state
    space, and a wave schedule that fixes, as a function of the grid
    size alone, which points solve in which order and who seeds whom
    — so results are bit-identical at any {!Dpm_par} domain count. *)

val init_of_actions :
  Dpm_ctmdp.Model.t -> int array -> Dpm_ctmdp.Policy.t option
(** [init_of_actions m actions] resolves per-state action labels
    against [m]'s choice table — the structural half of the
    [Dpm_robust] model validation (every state must offer the
    requested label).  [None] (a cold start) when the table has the
    wrong length or some state lacks the label; the outcome is
    counted on the [cache.warm_starts] / [cache.warm_fallbacks]
    {!Dpm_obs} probes. *)

val waves : int -> (int * int option) array list
(** [waves n] is a schedule for solving grid points [0 .. n-1] in
    waves of independent points: each element [(k, src)] solves point
    [k] warm-started from already-solved point [src] ([None] = cold).
    The schedule is binary subdivision — point 0 cold, point [n-1]
    from 0, then every remaining gap's midpoint from its nearest
    solved endpoint (ties to the left) — and depends only on [n], so
    a sweep's results cannot depend on how many domains executed each
    wave.  Points within a wave never depend on one another. *)
