(** The process-wide policy-iteration result cache.

    Memoizes {!Dpm_ctmdp.Policy_iteration.solve} results keyed on the
    {!Fingerprint} of the model plus solver configuration.  Entries
    store action {e labels}, not a [Policy.t]: a policy's internal
    choice indices are only meaningful for the exact model instance
    that produced it, so a hit rebuilds the policy against the
    requesting model through [Policy.of_actions] — valid for any
    structurally equal model whatever its choice-list ordering.

    The cache is a single mutex-guarded {!Lru} shared by every
    {!Dpm_par} domain.  Capacity resolves from the [DPM_CACHE]
    environment variable (a nonnegative integer) or defaults to 512;
    the CLI's [--cache] flag lands on {!set_capacity}.  Capacity 0
    disables the cache entirely: {!find} and {!store} become no-ops
    and touch no counters, so benchmarks can measure cold solves.

    {!Dpm_obs} instrumentation: counters [cache.hits],
    [cache.misses], [cache.evictions]; gauges [cache.size],
    [cache.hit_ratio]. *)

val default_capacity : int
(** [DPM_CACHE] if set to a nonnegative integer, else 512. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Replace the cache with a fresh one of the given capacity (raises
    [Invalid_argument] when negative).  Dropping to the same capacity
    still clears the contents. *)

val with_capacity : int -> (unit -> 'a) -> 'a
(** [with_capacity c f] runs [f] against a fresh cache of capacity
    [c], then restores the previous cache (contents included) even on
    exceptions.  The swap is process-wide, not scoped per domain — use
    it from the orchestrating domain around a whole parallel region
    (benchmarks use [with_capacity 0] to time cold solves). *)

val clear : unit -> unit
(** Drop every cached result and reset the counters ({!Lru.clear}). *)

val stats : unit -> Lru.stats
(** Hit/miss/eviction counters of the process-wide cache. *)

val hit_ratio : unit -> float
(** [hits / (hits + misses)], 0 when no lookups happened. *)

val find :
  ?config:Fingerprint.config ->
  Dpm_ctmdp.Model.t ->
  Dpm_ctmdp.Policy_iteration.result option
(** Cache lookup.  On a hit the returned result carries a policy
    rebuilt for (and validated against) the given model and a private
    copy of the bias vector; gain, iteration count, and trace are the
    original solve's. *)

val store :
  ?config:Fingerprint.config ->
  Dpm_ctmdp.Model.t ->
  Dpm_ctmdp.Policy_iteration.result ->
  unit
(** Insert a solve result.  Callers should store only results they
    would be happy to serve verbatim — [Dpm_core.Optimize] stores
    {e after} its multichain-retry path succeeds, so a degenerate
    first attempt is never memoized. *)

val solve :
  ?config:Fingerprint.config ->
  ?init:Dpm_ctmdp.Policy.t ->
  ?guard:(unit -> unit) ->
  Dpm_ctmdp.Model.t ->
  Dpm_ctmdp.Policy_iteration.result
(** Memoized {!Dpm_ctmdp.Policy_iteration.solve}: {!find}, else solve
    under [config] (with optional warm start [init] and [guard]) and
    {!store}.  The key deliberately excludes [init]: policy iteration
    converges to an average-cost optimum from any start, so any
    cached optimum is a valid answer; callers that need the {e path}
    (trace forensics) should bypass the cache. *)
