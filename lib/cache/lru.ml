type 'v node = { value : 'v; mutable last_used : int }

type 'v t = {
  cap : int;
  table : (string, 'v node) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

type stats = {
  capacity : int;
  size : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    mutex = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let capacity t = t.cap
let length t = locked t (fun () -> Hashtbl.length t.table)

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.tick <- t.tick + 1;
      node.last_used <- t.tick;
      t.hits <- t.hits + 1;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key node acc ->
        match acc with
        | Some (_, stamp) when stamp <= node.last_used -> acc
        | _ -> Some (key, node.last_used))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      true
  | None -> false

let add t key value =
  if t.cap = 0 then false
  else
    locked t @@ fun () ->
    t.tick <- t.tick + 1;
    match Hashtbl.find_opt t.table key with
    | Some _ ->
        Hashtbl.replace t.table key { value; last_used = t.tick };
        false
    | None ->
        let evicted =
          if Hashtbl.length t.table >= t.cap then evict_lru t else false
        in
        Hashtbl.replace t.table key { value; last_used = t.tick };
        evicted

let stats t =
  locked t @@ fun () ->
  {
    capacity = t.cap;
    size = Hashtbl.length t.table;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }

let clear t =
  locked t @@ fun () ->
  Hashtbl.reset t.table;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
