(** A mutex-guarded, string-keyed LRU map.

    The cache the solver layer needs is small (hundreds of entries)
    and contended only at grid-point granularity, so the
    implementation favors simplicity: a hash table of entries stamped
    with a logical clock, eviction by linear scan for the least
    recently used stamp.  Every operation takes the internal mutex,
    so a single instance can be shared by all {!Dpm_par} domains. *)

type 'v t

type stats = {
  capacity : int;
  size : int;  (** live entries *)
  hits : int;  (** [find] calls that returned an entry *)
  misses : int;  (** [find] calls that returned nothing *)
  evictions : int;  (** entries displaced by [add] at capacity *)
}

val create : capacity:int -> 'v t
(** A fresh cache holding at most [capacity] entries.  Capacity 0 is
    legal and means "always miss, never store".  Raises
    [Invalid_argument] for negative capacities. *)

val capacity : 'v t -> int
(** The maximum number of entries the cache will hold. *)

val length : 'v t -> int
(** The number of entries currently held. *)

val find : 'v t -> string -> 'v option
(** Look up a key, refreshing its recency on a hit and counting the
    outcome either way. *)

val add : 'v t -> string -> 'v -> bool
(** Insert (or refresh) a binding, evicting the least recently used
    entry when at capacity.  Returns [true] iff an eviction happened.
    At capacity 0 this is a no-op returning [false]. *)

val stats : 'v t -> stats
(** Hit/miss/eviction counters since creation (or the last {!clear}). *)

val clear : 'v t -> unit
(** Drop all entries and reset the counters. *)
