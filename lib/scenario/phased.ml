open Dpm_core

type state = Base of Sys_model.state | Serving of int * int

type t = {
  sys : Sys_model.t;
  service : Phase_type.t;
  active : int;  (** the unique active mode *)
}

let create ?self_switch_rate ~sp ~queue_capacity ~arrival_rate ~service () =
  (match Service_provider.active_modes sp with
  | [ _ ] -> ()
  | _ ->
      invalid_arg
        "Phased.create: the phase expansion requires exactly one active mode \
         (active-to-active switches cannot map phases between different \
          distributions)");
  let sys =
    Sys_model.create ?self_switch_rate ~sp ~queue_capacity ~arrival_rate ()
  in
  { sys; service; active = List.hd (Service_provider.active_modes sp) }

let sys t = t.sys
let service t = t.service
let base_states t = Sys_model.num_states t.sys
let queue_capacity t = Sys_model.queue_capacity t.sys

let num_states t =
  base_states t + ((Phase_type.phases t.service - 1) * queue_capacity t)

let index t = function
  | Base x -> Sys_model.index t.sys x
  | Serving (i, phase) ->
      let q = queue_capacity t in
      if i < 1 || i > q then
        invalid_arg (Printf.sprintf "Phased.index: queue length %d out of range" i);
      if phase < 1 || phase >= Phase_type.phases t.service then
        invalid_arg (Printf.sprintf "Phased.index: phase %d out of range" phase);
      base_states t + ((phase - 1) * q) + (i - 1)

let state_of_index t k =
  if k < 0 || k >= num_states t then
    invalid_arg (Printf.sprintf "Phased.state_of_index: %d out of range" k);
  if k < base_states t then Base (Sys_model.state_of_index t.sys k)
  else begin
    let r = k - base_states t in
    let q = queue_capacity t in
    Serving ((r mod q) + 1, (r / q) + 1)
  end

let waiting_requests = function
  | Base x -> Sys_model.waiting_requests x
  | Serving (i, _) -> i

(* Flat index of the serving state at queue level [i] and [phase]
   (phase 0 is the base Stable(active, i) slot). *)
let serving_index t i phase =
  if phase = 0 then Sys_model.index t.sys (Sys_model.Stable (t.active, i))
  else index t (Serving (i, phase))

let is_serving_target t tgt =
  let lo = Sys_model.index t.sys (Sys_model.Stable (t.active, 1)) in
  let hi =
    Sys_model.index t.sys (Sys_model.Stable (t.active, queue_capacity t))
  in
  if tgt >= lo && tgt <= hi then Some (tgt - lo + 1) else None

(* Rates entering a serving level split across the initial phase
   distribution; everything else passes through.  With one phase the
   split is the identity ([r *. 1.0]), keeping the k = 1 model
   bit-identical to the base system. *)
let patch_entering t rates =
  List.concat_map
    (fun (tgt, r) ->
      match is_serving_target t tgt with
      | None -> [ (tgt, r) ]
      | Some i ->
          List.map
            (fun (phase, a) -> (serving_index t i phase, r *. a))
            (Phase_type.init t.service))
    rates

let serving_row t i phase =
  let q = queue_capacity t in
  let lam = Sys_model.arrival_rate t.sys in
  let arrival = if i < q then [ (serving_index t (i + 1) phase, lam) ] else [] in
  let within =
    match Phase_type.advance t.service phase with
    | Some (next, r) -> [ (serving_index t i next, r) ]
    | None -> []
  in
  let c = Phase_type.completion_rate t.service phase in
  let complete =
    if c > 0.0 then
      [ (Sys_model.index t.sys (Sys_model.Transfer (t.active, i)), c) ]
    else []
  in
  arrival @ complete @ within

let to_ctmdp t ~weight =
  if weight < 0.0 || not (Float.is_finite weight) then
    invalid_arg "Phased.to_ctmdp: weight must be nonnegative and finite";
  let sys = t.sys in
  Dpm_ctmdp.Model.create ~num_states:(num_states t) (fun k ->
      match state_of_index t k with
      | Base (Sys_model.Stable (s, i)) when s = t.active && i >= 1 ->
          (* A phase-0 serving state: constraint (1) pins the action to
             the single active mode; the row is the phase dynamics. *)
          [
            {
              Dpm_ctmdp.Model.action = t.active;
              rates = serving_row t i 0;
              cost =
                Service_provider.power (Sys_model.sp sys) t.active
                +. (weight *. float_of_int i);
            };
          ]
      | Base x ->
          List.map
            (fun a ->
              {
                Dpm_ctmdp.Model.action = a;
                rates = patch_entering t (Sys_model.transitions sys x ~action:a);
                cost = Sys_model.cost sys ~weight x ~action:a;
              })
            (Sys_model.valid_actions sys x)
      | Serving (i, phase) ->
          [
            {
              Dpm_ctmdp.Model.action = t.active;
              rates = serving_row t i phase;
              cost =
                Service_provider.power (Sys_model.sp sys) t.active
                +. (weight *. float_of_int i);
            };
          ])

let pp_state t ppf = function
  | Base x -> Sys_model.pp_state t.sys ppf x
  | Serving (i, phase) ->
      Format.fprintf ppf "(%s, q%d, ph%d)"
        (Service_provider.name (Sys_model.sp t.sys) t.active)
        i phase
