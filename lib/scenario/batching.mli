(** Dynamic batching — batch size as a decision (after Xu et al.'s
    SMDP-based dynamic batching for inference serving; see PAPERS.md).

    The composed SYS is kept intact except in the {e serving} states
    [Stable(active, i >= 1)], where the single "keep serving" choice
    of the paper is replaced by one choice per feasible batch size
    [b in 1..min(i, max_batch)]: under batch [b] the whole batch
    completes at the batch service rate [mu(b)] (bulk departure — the
    transfer state resolves [b] requests down instead of one) and the
    cost rate gains the rate-weighted per-batch energy
    [mu(b) * energy(b)], exactly how the paper prices switching energy
    ([ene] weighted by the switch rate).  All other states, the action
    constraints, and the transfer machinery are delegated to the
    underlying [Sys_model].

    Because the batch is re-chosen at every decision epoch (CTMDPs
    are memoryless), this is the bulk-service control of an
    [M/M^(b)/1] queue rather than a literal admission-gated batch
    server; the latency-energy trade it exposes — bigger batches
    amortize per-batch energy against longer per-request sojourns —
    is the one the SMDP batching literature optimizes.

    {2 Degeneracy}

    With [max_batch = 1], [mu(1)] equal to the SP's service rate, and
    [energy(1) = 0], the construction is {e bit-identical} to
    [Sys_model.to_ctmdp]: same states, same action labels, same rate
    rows, same costs — hence the same fingerprint and shared cache
    entries (pinned by tests against the golden paper pins).

    {2 Action labels}

    The batch-[b] variant of serving in mode [s] is labeled
    [s + num_modes * (b - 1)]; [b = 1] therefore keeps the paper's
    plain mode labels.  Like the SP layer, the solvers treat labels as
    opaque. *)

type t

val create :
  ?batch_energy:(int -> float) ->
  sys:Dpm_core.Sys_model.t ->
  max_batch:int ->
  service_rate:(int -> float) ->
  unit ->
  t
(** [create ~sys ~max_batch ~service_rate ()] — [service_rate b] is
    the completion rate of a size-[b] batch (consulted for
    [1 <= b <= max_batch]; must be positive and finite);
    [batch_energy b] (default: 0 everywhere) the energy charged per
    completed size-[b] batch (nonnegative, finite).  The SP must have
    exactly one active mode.  Raises [Invalid_argument] otherwise. *)

val sys : t -> Dpm_core.Sys_model.t
(** The embedded base system — the batching model shares its state
    space and indexing. *)

val max_batch : int
(** A documentation anchor for the CLI default cap (8). *)

val max_batch_of : t -> int
(** The configured batch cap. *)

val service_rate : t -> int -> float
(** [mu(b)]. *)

val batch_energy : t -> int -> float
(** [energy(b)]. *)

val batch_of_action : t -> int -> int
(** Recover the batch size encoded in an action label (1 for plain
    mode labels). *)

val mode_of_action : t -> int -> int
(** Recover the commanded mode encoded in an action label. *)

val to_ctmdp : t -> weight:float -> Dpm_ctmdp.Model.t
(** The batching decision process under the Eqn. (3.1) weighted
    cost. *)
