open Dpm_core

type t = {
  sys : Sys_model.t;
  max_batch : int;
  mu : float array;  (** [mu.(b - 1)] is the size-[b] batch rate *)
  ene : float array;  (** [ene.(b - 1)] is the size-[b] batch energy *)
  active : int;  (** the unique active mode *)
}

let max_batch = 8

let create ?(batch_energy = fun _ -> 0.0) ~sys ~max_batch ~service_rate () =
  (match Service_provider.active_modes (Sys_model.sp sys) with
  | [ _ ] -> ()
  | _ ->
      invalid_arg
        "Batching.create: batching requires exactly one active mode (the \
         batch-size decision is a refinement of its service)");
  if max_batch < 1 then
    invalid_arg "Batching.create: max batch must be at least 1";
  let mu =
    Array.init max_batch (fun k ->
        let r = service_rate (k + 1) in
        if r <= 0.0 || not (Float.is_finite r) then
          invalid_arg
            (Printf.sprintf
               "Batching.create: service rate of batch %d must be positive \
                and finite"
               (k + 1));
        r)
  in
  let ene =
    Array.init max_batch (fun k ->
        let e = batch_energy (k + 1) in
        if e < 0.0 || not (Float.is_finite e) then
          invalid_arg
            (Printf.sprintf
               "Batching.create: energy of batch %d must be nonnegative and \
                finite"
               (k + 1));
        e)
  in
  {
    sys;
    max_batch;
    mu;
    ene;
    active = List.hd (Service_provider.active_modes (Sys_model.sp sys));
  }

let sys t = t.sys
let max_batch_of t = t.max_batch

let check_batch t b =
  if b < 1 || b > t.max_batch then
    invalid_arg (Printf.sprintf "Batching: batch size %d out of range" b)

let service_rate t b =
  check_batch t b;
  t.mu.(b - 1)

let batch_energy t b =
  check_batch t b;
  t.ene.(b - 1)

let batch_of_action t a =
  let s = Service_provider.num_modes (Sys_model.sp t.sys) in
  if a < 0 then invalid_arg "Batching.batch_of_action: negative action";
  (a / s) + 1

let mode_of_action t a =
  let s = Service_provider.num_modes (Sys_model.sp t.sys) in
  if a < 0 then invalid_arg "Batching.mode_of_action: negative action";
  a mod s

let to_ctmdp t ~weight =
  if weight < 0.0 || not (Float.is_finite weight) then
    invalid_arg "Batching.to_ctmdp: weight must be nonnegative and finite";
  let sys = t.sys in
  let sp = Sys_model.sp sys in
  let s_count = Service_provider.num_modes sp in
  let base_choice x a =
    {
      Dpm_ctmdp.Model.action = a;
      rates = Sys_model.transitions sys x ~action:a;
      cost = Sys_model.cost sys ~weight x ~action:a;
    }
  in
  Dpm_ctmdp.Model.create ~num_states:(Sys_model.num_states sys) (fun k ->
      match Sys_model.state_of_index sys k with
      | Sys_model.Stable (s, i) when s = t.active && i >= 1 ->
          (* Serving state: constraint (1) pins the commanded mode to
             the active one; the choice left is the batch size.  Batch
             [b] departs in bulk through the transfer band at level
             [i - b + 1] (resolving to [i - b] waiting).  At [b = 1]
             the row and cost are byte-for-byte the base system's. *)
          let q = Sys_model.queue_capacity sys in
          let lam = Sys_model.arrival_rate sys in
          let arrival =
            if i < q then
              [ (Sys_model.index sys (Sys_model.Stable (s, i + 1)), lam) ]
            else []
          in
          let pow = Service_provider.power sp s in
          List.init (min i t.max_batch) (fun k ->
              let b = k + 1 in
              {
                Dpm_ctmdp.Model.action = s + (s_count * (b - 1));
                rates =
                  arrival
                  @ [
                      ( Sys_model.index sys (Sys_model.Transfer (s, i - b + 1)),
                        t.mu.(b - 1) );
                    ];
                cost =
                  pow
                  +. (t.mu.(b - 1) *. t.ene.(b - 1))
                  +. (weight *. float_of_int i);
              })
      | x -> List.map (base_choice x) (Sys_model.valid_actions sys x))
