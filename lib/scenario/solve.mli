(** One solve driver for every scenario family.

    The scenario builders ({!Phased}, {!Polling}, {!Batching}) all
    compile to a plain {!Dpm_ctmdp.Model.t}, so one driver covers
    them: validation and guarded policy iteration through
    [Dpm_robust.Policy_iteration.solve_r], memoization through the
    process-wide [Dpm_cache.Solve_cache] (keyed on the structural
    fingerprint, so e.g. an Erlang-1 phased model and its base system
    share one entry), and provenance enriched with the model hash and
    origin exactly as [Dpm_core.Optimize] does for the paper system.

    {!stationary_gain} is the independent cross-check: it re-derives
    the average cost of a fixed policy from the closed-loop chain's
    stationary distribution (GTH elimination — a numerical path
    disjoint from policy iteration's bias equations), which the test
    suite and benches compare against the solver's gain. *)

type solution = {
  actions : int array;  (** optimal action label per state *)
  gain : float;  (** optimal average cost rate *)
  iterations : int;  (** policy-iteration count (0 on a cache hit) *)
  provenance : Dpm_trace.Provenance.t;
      (** solve provenance with the fingerprint and origin filled *)
}

val solve :
  ?deadline_s:float ->
  ?eval:Dpm_ctmdp.Policy_iteration.eval_path ->
  Dpm_ctmdp.Model.t ->
  (solution, Dpm_robust.Error.t) result
(** Validate, look up the cache, otherwise run guarded policy
    iteration (under the optional wall-clock budget) and memoize.
    All failures arrive as the robustness layer's typed errors —
    nothing raises but runtime-fatal exceptions. *)

val sweep :
  ?domains:int ->
  ?deadline_s:float ->
  ?eval:Dpm_ctmdp.Policy_iteration.eval_path ->
  weights:float list ->
  (float -> Dpm_ctmdp.Model.t) ->
  (float * (solution, Dpm_robust.Error.t) result) list
(** [sweep ~weights build] solves [build w] for every weight on the
    {!Dpm_par} pool ([?domains] as everywhere else; default
    sequential).  Results land in input order whatever the domain
    count, and each point is fenced: a failing weight yields its
    [Error] slot while the others still solve. *)

val closed_loop :
  Dpm_ctmdp.Model.t ->
  actions:int array ->
  Dpm_ctmc.Generator.t * Dpm_linalg.Vec.t
(** The chain and cost-rate vector induced by following the given
    action labels — the scenario-layer counterpart of the paper
    system's [generator_of_actions].  Raises [Invalid_argument] when
    some state does not offer its requested label. *)

val stationary_gain :
  ?guard:(unit -> unit) -> Dpm_ctmdp.Model.t -> actions:int array -> float
(** The average cost rate of the fixed policy, computed as [pi . c]
    from the closed-loop stationary distribution
    ({!Dpm_ctmc.Steady_state.solve} — GTH with transient-state
    classification).  Raises [Steady_state.Not_irreducible] when the
    closed loop has no unique limiting distribution. *)
