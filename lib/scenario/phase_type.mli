(** Phase-type distributions for state-space expansion.

    The DAC'99 model is exponential everywhere; the scenario layer
    escapes that by replacing a service or switch-over holding time
    with a small {e phase-type} (PH) distribution — an absorption time
    of a transient CTMC — and expanding the phase into the state
    space.  Three families cover every squared coefficient of
    variation (SCV):

    - [Exp rate] — the exponential baseline, SCV = 1 (one phase);
    - [Erlang (k, rate)] — [k] sequential phases at a common rate,
      SCV = 1/k < 1 (deterministic-ish services);
    - [Hyper2 (p, r1, r2)] — with probability [p] an [Exp r1] service,
      else [Exp r2]; SCV > 1 (bursty, heavy-tailed-ish services).

    A distribution is consumed by the expanders through three views:
    the number of phases, the initial phase distribution [init], and
    per-phase dynamics [advance]/[completion_rate].  [Erlang 1 r] and
    [Exp r] are deliberately the {e same} value, so an Erlang-1
    expansion is bit-identical to the unexpanded model (pinned by
    tests). *)

type t = private
  | Exp of float  (** rate *)
  | Erlang of int * float  (** phases, per-phase rate *)
  | Hyper2 of float * float * float  (** branch probability, rates *)

val exp_ : float -> t
(** [exp_ rate] — the exponential distribution.  Raises
    [Invalid_argument] unless the rate is positive and finite. *)

val erlang : int -> float -> t
(** [erlang k rate] — sum of [k] iid [Exp rate] phases.  [erlang 1 r]
    normalizes to [Exp r].  Raises [Invalid_argument] on [k < 1] or a
    non-positive rate. *)

val hyper2 : p:float -> rate1:float -> rate2:float -> t
(** [hyper2 ~p ~rate1 ~rate2] — an [Exp rate1] with probability [p],
    an [Exp rate2] otherwise.  Raises [Invalid_argument] unless
    [0 < p < 1] and both rates are positive and finite ([p] of 0 or 1
    is an [Exp]; write that directly). *)

val phases : t -> int
(** Number of transient phases (1, [k], or 2). *)

val init : t -> (int * float) list
(** The initial phase distribution [(phase, probability)], positive
    entries only, ascending by phase.  A transition {e entering}
    service splits its rate across this list. *)

val advance : t -> int -> (int * float) option
(** [advance d phase] is the within-distribution phase transition out
    of [phase] ([Some (next, rate)] for non-final Erlang phases,
    [None] elsewhere).  Raises [Invalid_argument] out of range. *)

val completion_rate : t -> int -> float
(** [completion_rate d phase] is the absorption (service completion)
    rate out of [phase] — 0 for non-final Erlang phases. *)

val mean : t -> float
(** Expected value. *)

val scv : t -> float
(** Squared coefficient of variation, [variance / mean^2]. *)

val fit : mean:float -> scv:float -> t
(** Moment fit: [scv = 1] gives [Exp], [scv < 1] an Erlang with
    [k = round (1 / scv)] phases (so only SCVs of the form [1/k] are
    matched exactly; the mean always is), [scv > 1] a balanced-means
    two-phase hyperexponential matching both moments exactly.  Raises
    [Invalid_argument] on a non-positive mean or SCV. *)

val of_spec : string -> (t, string) result
(** Parse the CLI grammar: ["exp:RATE"], ["erlang:K:RATE"],
    ["hyper2:P:R1:R2"], or ["fit:MEAN:SCV"]. *)

val to_spec : t -> string
(** Render back into the {!of_spec} grammar. *)

val pp : Format.formatter -> t -> unit
(** E.g. [erlang(k=4, rate=2) mean=2 scv=0.25]. *)
