(** K-queue polling with switch-over times — a CTMDP generalization of
    the single-queue SYS (after Solms' two-queue polling SMDP; see
    PAPERS.md).

    One server visits [K] bounded queues.  At any instant the server
    is {e idle at} a queue, {e serving} its head-of-line request,
    {e switching} toward a queue (the polling literature's switch-over
    time), or {e asleep} in a low-power mode.  Service and switch-over
    times are {!Phase_type} distributed (phases expanded into the
    state space); arrivals are per-queue Poisson; a request arriving
    at a full queue is lost (optionally priced by [loss_penalty]).

    {2 Decisions}

    Idle and asleep states are the decision epochs; service and
    switch-over are non-preemptive (their states carry the single
    [continue] action).  Action labels:

    - [action_stay] — keep idling / sleeping;
    - [action_goto j] — start switching toward queue [j];
    - [action_sleep] — power down;
    - [action_serve] — start serving the local queue (idle states
      with work only).

    Starting a service, a switch-over, or a sleep is the paper's
    "instantaneous" command: it is resolved at the big-M
    [dispatch_rate] (default 1e6, the same device as [Sys_model]'s
    self-switch — DESIGN.md decision 1), split across the target
    distribution's initial phases.

    {2 Progress constraints}

    Mirroring the paper's Section III constraint (2), [action_stay]
    is withheld from an idle server whose own queue is full and from a
    sleeping server when {e every} queue is full, so no policy can
    park the system in an absorbing overflow state. *)

type server =
  | Idle of int  (** parked at a queue *)
  | Serve of int * int  (** queue, service phase *)
  | Switch of int * int  (** target queue, switch-over phase *)
  | Asleep

type state = { server : server; queues : int array }
(** A server component plus the per-queue occupancy vector. *)

type queue = {
  arrival_rate : float;
  capacity : int;
  weight : float;  (** holding cost per waiting request per unit time *)
  service : Phase_type.t;
  switch_over : Phase_type.t;  (** time to switch {e toward} this queue *)
}

val queue :
  ?weight:float ->
  ?service:Phase_type.t ->
  ?switch_over:Phase_type.t ->
  arrival_rate:float ->
  capacity:int ->
  unit ->
  queue
(** Queue spec ([weight] defaults to 1, [service] to [exp:1],
    [switch_over] to [exp:10]).  Raises [Invalid_argument] on a
    non-positive arrival rate or capacity, or a negative weight. *)

type t

val create :
  ?dispatch_rate:float ->
  ?loss_penalty:float ->
  ?serve_power:float ->
  ?idle_power:float ->
  ?switch_power:float ->
  ?sleep_power:float ->
  queue list ->
  t
(** [create queues] validates and composes the polling system.
    Powers default to serve 2.3 / idle 0.95 / switch 0.95 / sleep 0.13
    (the paper SP's figures); [loss_penalty] (default 0) prices each
    lost request; [dispatch_rate] is the big-M decision resolution.
    Raises [Invalid_argument] on an empty queue list or bad
    numbers. *)

val queues : t -> queue array
(** The queue specs, in index order. *)

val num_queues : t -> int
(** [K]. *)

val num_states : t -> int
(** [(K idle + sum service phases + sum switch phases + 1 asleep) *
    prod (capacity_j + 1)]. *)

val index : t -> state -> int
(** Flat index of a state; raises [Invalid_argument] outside the
    space. *)

val state_of_index : t -> int -> state
(** Inverse of {!index}. *)

val action_stay : int
(** Label 0: keep idling / sleeping (also the forced [continue] of
    serve and switch states). *)

val action_goto : int -> int
(** [action_goto j] is label [1 + j]. *)

val action_sleep : t -> int
(** Label [K + 1]. *)

val action_serve : t -> int
(** Label [K + 2]. *)

val pp_action : t -> Format.formatter -> int -> unit
(** E.g. [serve], [goto q1], [sleep], [stay]. *)

val to_ctmdp : t -> Dpm_ctmdp.Model.t
(** The polling decision process: power draw plus weighted holding
    (and priced losses) as the cost rate, ready for any solver in the
    repository. *)

val pp_state : t -> Format.formatter -> state -> unit
(** E.g. [serve q0 ph1 | n=[2 0]]. *)
