type t =
  | Exp of float
  | Erlang of int * float
  | Hyper2 of float * float * float

let check_rate site r =
  if r <= 0.0 || not (Float.is_finite r) then
    invalid_arg (site ^ ": rate must be positive and finite")

let exp_ r =
  check_rate "Phase_type.exp_" r;
  Exp r

let erlang k r =
  check_rate "Phase_type.erlang" r;
  if k < 1 then invalid_arg "Phase_type.erlang: k must be at least 1";
  if k = 1 then Exp r else Erlang (k, r)

let hyper2 ~p ~rate1 ~rate2 =
  check_rate "Phase_type.hyper2" rate1;
  check_rate "Phase_type.hyper2" rate2;
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Phase_type.hyper2: p must lie strictly between 0 and 1";
  Hyper2 (p, rate1, rate2)

let phases = function Exp _ -> 1 | Erlang (k, _) -> k | Hyper2 _ -> 2

let init = function
  | Exp _ | Erlang _ -> [ (0, 1.0) ]
  | Hyper2 (p, _, _) -> [ (0, p); (1, 1.0 -. p) ]

let check_phase d phase =
  if phase < 0 || phase >= phases d then
    invalid_arg (Printf.sprintf "Phase_type: phase %d out of range" phase)

let advance d phase =
  check_phase d phase;
  match d with
  | Exp _ | Hyper2 _ -> None
  | Erlang (k, r) -> if phase < k - 1 then Some (phase + 1, r) else None

let completion_rate d phase =
  check_phase d phase;
  match d with
  | Exp r -> r
  | Erlang (k, r) -> if phase = k - 1 then r else 0.0
  | Hyper2 (_, r1, r2) -> if phase = 0 then r1 else r2

let mean = function
  | Exp r -> 1.0 /. r
  | Erlang (k, r) -> float_of_int k /. r
  | Hyper2 (p, r1, r2) -> (p /. r1) +. ((1.0 -. p) /. r2)

(* E[T^2]: exponential 2/r^2; Erlang k(k+1)/r^2; hyperexponential the
   mixture of the branch second moments. *)
let second_moment = function
  | Exp r -> 2.0 /. (r *. r)
  | Erlang (k, r) -> float_of_int (k * (k + 1)) /. (r *. r)
  | Hyper2 (p, r1, r2) ->
      (2.0 *. p /. (r1 *. r1)) +. (2.0 *. (1.0 -. p) /. (r2 *. r2))

let scv d =
  let m = mean d in
  (second_moment d -. (m *. m)) /. (m *. m)

let fit ~mean:m ~scv:c =
  if m <= 0.0 || not (Float.is_finite m) then
    invalid_arg "Phase_type.fit: mean must be positive and finite";
  if c <= 0.0 || not (Float.is_finite c) then
    invalid_arg "Phase_type.fit: scv must be positive and finite";
  if c = 1.0 then Exp (1.0 /. m)
  else if c < 1.0 then begin
    let k = max 1 (int_of_float (Float.round (1.0 /. c))) in
    erlang k (float_of_int k /. m)
  end
  else begin
    (* Balanced-means H2 (Tijms): both branches contribute half the
       mean; matches the first two moments exactly for any scv > 1. *)
    let p = 0.5 *. (1.0 +. sqrt ((c -. 1.0) /. (c +. 1.0))) in
    Hyper2 (p, 2.0 *. p /. m, 2.0 *. (1.0 -. p) /. m)
  end

let of_spec s =
  let fields = String.split_on_char ':' (String.trim s) in
  let num x =
    match float_of_string_opt x with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "not a number: %S" x)
  in
  let ( let* ) = Result.bind in
  let wrap f = try Ok (f ()) with Invalid_argument msg -> Error msg in
  match fields with
  | [ "exp"; r ] ->
      let* r = num r in
      wrap (fun () -> exp_ r)
  | [ "erlang"; k; r ] -> (
      match int_of_string_opt k with
      | Some k ->
          let* r = num r in
          wrap (fun () -> erlang k r)
      | None -> Error (Printf.sprintf "not an integer: %S" k))
  | [ "hyper2"; p; r1; r2 ] ->
      let* p = num p in
      let* rate1 = num r1 in
      let* rate2 = num r2 in
      wrap (fun () -> hyper2 ~p ~rate1 ~rate2)
  | [ "fit"; m; c ] ->
      let* m = num m in
      let* c = num c in
      wrap (fun () -> fit ~mean:m ~scv:c)
  | _ ->
      Error
        (Printf.sprintf
           "bad distribution %S (want exp:RATE, erlang:K:RATE, \
            hyper2:P:R1:R2, or fit:MEAN:SCV)"
           s)

(* Shortest float rendering that parses back to the same value, so
   [of_spec (to_spec d) = Ok d] holds exactly (fitted distributions
   carry full-precision parameters). *)
let flt x =
  let short = Printf.sprintf "%g" x in
  if float_of_string short = x then short else Printf.sprintf "%.17g" x

let to_spec = function
  | Exp r -> Printf.sprintf "exp:%s" (flt r)
  | Erlang (k, r) -> Printf.sprintf "erlang:%d:%s" k (flt r)
  | Hyper2 (p, r1, r2) ->
      Printf.sprintf "hyper2:%s:%s:%s" (flt p) (flt r1) (flt r2)

let pp ppf d =
  let kind =
    match d with
    | Exp r -> Printf.sprintf "exp(rate=%g)" r
    | Erlang (k, r) -> Printf.sprintf "erlang(k=%d, rate=%g)" k r
    | Hyper2 (p, r1, r2) ->
        Printf.sprintf "hyper2(p=%g, rates=%g/%g)" p r1 r2
  in
  Format.fprintf ppf "%s mean=%g scv=%g" kind (mean d) (scv d)
