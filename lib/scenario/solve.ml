type solution = {
  actions : int array;
  gain : float;
  iterations : int;
  provenance : Dpm_trace.Provenance.t;
}

let solve ?deadline_s ?(eval = Dpm_ctmdp.Policy_iteration.Auto) model =
  let t0 = Dpm_obs.Probe.now () in
  let config =
    { Dpm_cache.Fingerprint.default_config with Dpm_cache.Fingerprint.eval }
  in
  (* Same provenance contract as [Dpm_core.Optimize.solve]: whatever
     path answered, the record identifies the model and the origin. *)
  let finish ~origin (result : Dpm_ctmdp.Policy_iteration.result) =
    {
      actions =
        Dpm_ctmdp.Policy.actions model result.Dpm_ctmdp.Policy_iteration.policy;
      gain = result.Dpm_ctmdp.Policy_iteration.gain;
      iterations = result.Dpm_ctmdp.Policy_iteration.iterations;
      provenance =
        {
          result.Dpm_ctmdp.Policy_iteration.provenance with
          Dpm_trace.Provenance.fingerprint =
            Dpm_cache.Fingerprint.model_hash model;
          origin;
          wall_s = Dpm_obs.Probe.now () -. t0;
        };
    }
  in
  match Dpm_cache.Solve_cache.find ~config model with
  | Some result -> Ok (finish ~origin:Dpm_trace.Provenance.Cache_hit result)
  | None -> (
      match Dpm_robust.Policy_iteration.solve_r ?deadline_s ~eval model with
      | Error _ as e -> e
      | Ok result ->
          Dpm_cache.Solve_cache.store ~config model result;
          Ok
            (finish
               ~origin:
                 result.Dpm_ctmdp.Policy_iteration.provenance
                   .Dpm_trace.Provenance.origin result))

let sweep ?domains ?deadline_s ?eval ~weights build =
  (* Fenced per grid point like [Optimize.sweep_r]: [solve] already
     returns a result, so the pool maps plain values and order
     determinism gives bit-identical output at any domain count. *)
  let out =
    Dpm_par.parallel_map_list ?domains
      (fun w -> (w, solve ?deadline_s ?eval (build w)))
      weights
  in
  out

let closed_loop model ~actions =
  let policy = Dpm_ctmdp.Policy.of_actions model actions in
  ( Dpm_ctmdp.Policy.generator model policy,
    Dpm_ctmdp.Policy.cost_vector model policy )

let stationary_gain ?guard model ~actions =
  let gen, costs = closed_loop model ~actions in
  let pi = Dpm_ctmc.Steady_state.solve ?guard gen in
  Dpm_ctmc.Steady_state.expected_value pi (fun i -> costs.(i))
