(** Phase-type service expansion of the composed SYS.

    The paper's SYS (see {!Dpm_core.Sys_model}) serves requests in
    exponential time.  This builder replaces the active mode's service
    distribution with a {!Phase_type.t} by state-space expansion: each
    {e serving} state [Stable(active, i >= 1)] is replicated once per
    service phase, transitions {e entering} service split their rate
    across the initial phase distribution, and the completion
    transition to the transfer band fires at the current phase's
    absorption rate.  Everything else — inactive modes, transfer
    states, the Section III action constraints, the big-M self-switch
    — is delegated to the underlying [Sys_model], so the expanded
    decision process solves through the unmodified
    [Policy_iteration]/[Dpm_cache]/[Dpm_robust] stack.

    {2 Indexing}

    The first [Sys_model.num_states] indices are the base states in
    [Sys_model]'s canonical order, with serving states standing for
    phase 0; the [(phases - 1) * Q] extra phase copies are appended
    after.  With a one-phase distribution there are no extra states
    and the construction is {e bit-identical} to
    [Sys_model.to_ctmdp] — same fingerprint, so the two share cache
    entries (pinned by tests).

    {2 Restrictions}

    The SP must have exactly one active mode (the same restriction as
    [Sys_model.tensor_generator]): with several active modes an
    active-to-active switch would have to map phases between
    distributions of different shapes. *)

type state =
  | Base of Dpm_core.Sys_model.state
      (** a [Sys_model] state; serving states are phase 0 *)
  | Serving of int * int
      (** [Serving (i, phase)]: the active mode serving with [i]
          requests present, [phase >= 1] *)

type t

val create :
  ?self_switch_rate:float ->
  sp:Dpm_core.Service_provider.t ->
  queue_capacity:int ->
  arrival_rate:float ->
  service:Phase_type.t ->
  unit ->
  t
(** Compose the expanded system.  Raises [Invalid_argument] when the
    SP does not have exactly one active mode, or on the same bad
    parameters as [Sys_model.create]. *)

val sys : t -> Dpm_core.Sys_model.t
(** The embedded base system (its exponential service rate is only
    used when [service] has a single phase standing for it). *)

val service : t -> Phase_type.t
(** The service distribution. *)

val num_states : t -> int
(** [Sys_model.num_states + (phases - 1) * Q]. *)

val state_of_index : t -> int -> state
(** Decode a flat index. *)

val index : t -> state -> int
(** Inverse of {!state_of_index}; raises [Invalid_argument] outside
    the state space. *)

val waiting_requests : state -> int
(** The delay cost [C_sq(x)] of a state. *)

val to_ctmdp : t -> weight:float -> Dpm_ctmdp.Model.t
(** The decision process under the Eqn. (3.1) weighted cost, ready
    for any solver in the repository. *)

val pp_state : t -> Format.formatter -> state -> unit
(** E.g. [(active, q3, ph2)] for an expanded serving state. *)
