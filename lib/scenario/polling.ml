type server = Idle of int | Serve of int * int | Switch of int * int | Asleep
type state = { server : server; queues : int array }

type queue = {
  arrival_rate : float;
  capacity : int;
  weight : float;
  service : Phase_type.t;
  switch_over : Phase_type.t;
}

let queue ?(weight = 1.0) ?(service = Phase_type.exp_ 1.0)
    ?(switch_over = Phase_type.exp_ 10.0) ~arrival_rate ~capacity () =
  if arrival_rate <= 0.0 || not (Float.is_finite arrival_rate) then
    invalid_arg "Polling.queue: arrival rate must be positive and finite";
  if capacity < 1 then invalid_arg "Polling.queue: capacity must be at least 1";
  if weight < 0.0 || not (Float.is_finite weight) then
    invalid_arg "Polling.queue: weight must be nonnegative and finite";
  { arrival_rate; capacity; weight; service; switch_over }

type t = {
  queues : queue array;
  dispatch_rate : float;
  loss_penalty : float;
  serve_power : float;
  idle_power : float;
  switch_power : float;
  sleep_power : float;
  (* Derived layout: server components are enumerated Idle 0..K-1,
     Serve (queue-major, phase-minor), Switch likewise, Asleep last;
     the full state index is [component * vec_count + vec]. *)
  serve_offset : int array;  (** component index of Serve (j, 0) *)
  switch_offset : int array;  (** component index of Switch (j, 0) *)
  asleep_comp : int;
  num_components : int;
  strides : int array;  (** mixed-radix strides of the queue vector *)
  vec_count : int;
}

let check_power site p =
  if p < 0.0 || not (Float.is_finite p) then
    invalid_arg (site ^ ": power must be nonnegative and finite")

let create ?(dispatch_rate = 1e6) ?(loss_penalty = 0.0) ?(serve_power = 2.3)
    ?(idle_power = 0.95) ?(switch_power = 0.95) ?(sleep_power = 0.13) qs =
  if qs = [] then invalid_arg "Polling.create: at least one queue";
  if dispatch_rate <= 0.0 || not (Float.is_finite dispatch_rate) then
    invalid_arg "Polling.create: dispatch rate must be positive and finite";
  if loss_penalty < 0.0 || not (Float.is_finite loss_penalty) then
    invalid_arg "Polling.create: loss penalty must be nonnegative and finite";
  List.iter (check_power "Polling.create")
    [ serve_power; idle_power; switch_power; sleep_power ];
  let queues = Array.of_list qs in
  let k = Array.length queues in
  let serve_offset = Array.make k 0 in
  let switch_offset = Array.make k 0 in
  let comp = ref k in
  Array.iteri
    (fun j q ->
      serve_offset.(j) <- !comp;
      comp := !comp + Phase_type.phases q.service)
    queues;
  Array.iteri
    (fun j q ->
      switch_offset.(j) <- !comp;
      comp := !comp + Phase_type.phases q.switch_over)
    queues;
  let asleep_comp = !comp in
  let num_components = !comp + 1 in
  let strides = Array.make k 1 in
  for j = k - 2 downto 0 do
    strides.(j) <- strides.(j + 1) * (queues.(j + 1).capacity + 1)
  done;
  let vec_count = strides.(0) * (queues.(0).capacity + 1) in
  {
    queues;
    dispatch_rate;
    loss_penalty;
    serve_power;
    idle_power;
    switch_power;
    sleep_power;
    serve_offset;
    switch_offset;
    asleep_comp;
    num_components;
    strides;
    vec_count;
  }

let queues t = t.queues
let num_queues t = Array.length t.queues
let num_states t = t.num_components * t.vec_count

let component t = function
  | Idle j ->
      if j < 0 || j >= num_queues t then
        invalid_arg "Polling.index: idle queue out of range";
      j
  | Serve (j, phase) ->
      if j < 0 || j >= num_queues t then
        invalid_arg "Polling.index: serve queue out of range";
      if phase < 0 || phase >= Phase_type.phases t.queues.(j).service then
        invalid_arg "Polling.index: service phase out of range";
      t.serve_offset.(j) + phase
  | Switch (j, phase) ->
      if j < 0 || j >= num_queues t then
        invalid_arg "Polling.index: switch target out of range";
      if phase < 0 || phase >= Phase_type.phases t.queues.(j).switch_over then
        invalid_arg "Polling.index: switch-over phase out of range";
      t.switch_offset.(j) + phase
  | Asleep -> t.asleep_comp

let vec_index t n =
  if Array.length n <> num_queues t then
    invalid_arg "Polling.index: queue vector length mismatch";
  let acc = ref 0 in
  Array.iteri
    (fun j nj ->
      if nj < 0 || nj > t.queues.(j).capacity then
        invalid_arg
          (Printf.sprintf "Polling.index: queue %d occupancy %d out of range" j
             nj);
      acc := !acc + (nj * t.strides.(j)))
    n;
  !acc

let index t { server; queues = n } = (component t server * t.vec_count) + vec_index t n

let server_of_component t c =
  if c < num_queues t then Idle c
  else if c = t.asleep_comp then Asleep
  else begin
    let rec find j =
      if j < num_queues t then
        let q = t.queues.(j) in
        if c < t.serve_offset.(j) + Phase_type.phases q.service then
          Some (Serve (j, c - t.serve_offset.(j)))
        else find (j + 1)
      else None
    in
    match find 0 with
    | Some s -> s
    | None ->
        let rec find j =
          let q = t.queues.(j) in
          if c < t.switch_offset.(j) + Phase_type.phases q.switch_over then
            Switch (j, c - t.switch_offset.(j))
          else find (j + 1)
        in
        find 0
  end

let state_of_index t k =
  if k < 0 || k >= num_states t then
    invalid_arg (Printf.sprintf "Polling.state_of_index: %d out of range" k);
  let comp = k / t.vec_count and v = ref (k mod t.vec_count) in
  let n =
    Array.mapi
      (fun j _ ->
        let nj = !v / t.strides.(j) in
        v := !v mod t.strides.(j);
        nj)
      t.queues
  in
  { server = server_of_component t comp; queues = n }

let action_stay = 0
let action_goto j = 1 + j
let action_sleep t = num_queues t + 1
let action_serve t = num_queues t + 2

let pp_action t ppf a =
  if a = action_stay then Format.pp_print_string ppf "stay"
  else if a = action_sleep t then Format.pp_print_string ppf "sleep"
  else if a = action_serve t then Format.pp_print_string ppf "serve"
  else if a >= 1 && a <= num_queues t then Format.fprintf ppf "goto q%d" (a - 1)
  else Format.fprintf ppf "action %d" a

(* Arrival transitions common to every row: each non-full queue fills
   at its own rate, the server component unchanged. *)
let arrivals t server n =
  let out = ref [] in
  for j = num_queues t - 1 downto 0 do
    if n.(j) < t.queues.(j).capacity then begin
      let n' = Array.copy n in
      n'.(j) <- n.(j) + 1;
      out := (index t { server; queues = n' }, t.queues.(j).arrival_rate) :: !out
    end
  done;
  !out

(* Big-M dispatch into a phase-type's initial distribution. *)
let dispatch t n to_state dist =
  List.map
    (fun (phase, a) ->
      (index t { server = to_state phase; queues = n }, t.dispatch_rate *. a))
    (Phase_type.init dist)

let power t = function
  | Idle _ -> t.idle_power
  | Serve _ -> t.serve_power
  | Switch _ -> t.switch_power
  | Asleep -> t.sleep_power

let cost t { server; queues = n } =
  let holding = ref 0.0 in
  let loss = ref 0.0 in
  Array.iteri
    (fun j nj ->
      holding := !holding +. (t.queues.(j).weight *. float_of_int nj);
      if nj = t.queues.(j).capacity then
        loss := !loss +. t.queues.(j).arrival_rate)
    n;
  power t server +. !holding +. (t.loss_penalty *. !loss)

let all_full t n =
  let full = ref true in
  Array.iteri (fun j nj -> if nj < t.queues.(j).capacity then full := false) n;
  !full

let choices t x =
  let { server; queues = n } = x in
  let c = cost t x in
  let arr = arrivals t server n in
  let choice action rates = { Dpm_ctmdp.Model.action; rates; cost = c } in
  let goto_choices =
    List.filter_map
      (fun j ->
        let skip = match server with Idle i -> i = j | _ -> false in
        if skip then None
        else
          Some
            (choice (action_goto j)
               (arr
               @ dispatch t n (fun phase -> Switch (j, phase))
                   t.queues.(j).switch_over)))
      (List.init (num_queues t) (fun j -> j))
  in
  match server with
  | Idle j ->
      let stay =
        (* Progress constraint: no idling on a full local queue. *)
        if n.(j) < t.queues.(j).capacity then [ choice action_stay arr ]
        else []
      in
      let serve =
        if n.(j) >= 1 then
          [
            choice (action_serve t)
              (arr
              @ dispatch t n (fun phase -> Serve (j, phase)) t.queues.(j).service);
          ]
        else []
      in
      let sleep =
        [
          choice (action_sleep t)
            (arr @ [ (index t { server = Asleep; queues = n }, t.dispatch_rate) ]);
        ]
      in
      stay @ goto_choices @ sleep @ serve
  | Asleep ->
      let stay =
        (* Progress constraint: a sleeping server must wake once every
           queue is full. *)
        if all_full t n then [] else [ choice action_stay arr ]
      in
      stay @ goto_choices
  | Serve (j, phase) ->
      let q = t.queues.(j) in
      let within =
        match Phase_type.advance q.service phase with
        | Some (next, r) ->
            [ (index t { server = Serve (j, next); queues = n }, r) ]
        | None -> []
      in
      let cr = Phase_type.completion_rate q.service phase in
      let complete =
        if cr <= 0.0 then []
        else begin
          (* Serving states with an empty local queue are unreachable
             (service only dispatches on work); their completion keeps
             the vector so the row stays a valid generator row. *)
          let n' = Array.copy n in
          if n.(j) >= 1 then n'.(j) <- n.(j) - 1;
          [ (index t { server = Idle j; queues = n' }, cr) ]
        end
      in
      [ choice action_stay (arr @ complete @ within) ]
  | Switch (j, phase) ->
      let q = t.queues.(j) in
      let within =
        match Phase_type.advance q.switch_over phase with
        | Some (next, r) ->
            [ (index t { server = Switch (j, next); queues = n }, r) ]
        | None -> []
      in
      let cr = Phase_type.completion_rate q.switch_over phase in
      let complete =
        if cr <= 0.0 then []
        else [ (index t { server = Idle j; queues = n }, cr) ]
      in
      [ choice action_stay (arr @ complete @ within) ]

let to_ctmdp t =
  Dpm_ctmdp.Model.create ~num_states:(num_states t) (fun k ->
      choices t (state_of_index t k))

let pp_state t ppf { server; queues = n } =
  let comp =
    match server with
    | Idle j -> Printf.sprintf "idle q%d" j
    | Serve (j, phase) -> Printf.sprintf "serve q%d ph%d" j phase
    | Switch (j, phase) -> Printf.sprintf "switch->q%d ph%d" j phase
    | Asleep -> "asleep"
  in
  ignore t;
  Format.fprintf ppf "%s | n=[%s]" comp
    (String.concat " " (Array.to_list (Array.map string_of_int n)))
