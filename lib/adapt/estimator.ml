type kind =
  | Window of { gaps : float array; mutable filled : int; mutable next : int }
  | Ewma of {
      alpha : float;
      mutable mean : float;
      mutable sq_mean : float;
    }

type t = {
  kind : kind;
  z : float;
  mutable last_arrival : float option;
  mutable total : int;
}

let default_z = 1.959964

let sliding_window ?(z = default_z) ~window () =
  if window < 2 then invalid_arg "Estimator.sliding_window: window must be >= 2";
  if z <= 0.0 || not (Float.is_finite z) then
    invalid_arg "Estimator.sliding_window: z must be positive and finite";
  {
    kind = Window { gaps = Array.make window 0.0; filled = 0; next = 0 };
    z;
    last_arrival = None;
    total = 0;
  }

let ewma ?(z = default_z) ~alpha () =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Estimator.ewma: alpha must be in (0, 1)";
  if z <= 0.0 || not (Float.is_finite z) then
    invalid_arg "Estimator.ewma: z must be positive and finite";
  {
    kind = Ewma { alpha; mean = 0.0; sq_mean = 0.0 };
    z;
    last_arrival = None;
    total = 0;
  }

let observe_gap t gap =
  if gap <= 0.0 || not (Float.is_finite gap) then ()
  else begin
    t.total <- t.total + 1;
    match t.kind with
    | Window w ->
        w.gaps.(w.next) <- gap;
        w.next <- (w.next + 1) mod Array.length w.gaps;
        if w.filled < Array.length w.gaps then w.filled <- w.filled + 1
    | Ewma e ->
        if t.total = 1 then begin
          (* Seed with the first gap so the estimate does not drag a
             zero initial value through the warm-up. *)
          e.mean <- gap;
          e.sq_mean <- gap *. gap
        end
        else begin
          e.mean <- ((1.0 -. e.alpha) *. e.mean) +. (e.alpha *. gap);
          e.sq_mean <- ((1.0 -. e.alpha) *. e.sq_mean) +. (e.alpha *. gap *. gap)
        end
  end

let observe_arrival t ~now =
  (match t.last_arrival with
  | Some prev -> observe_gap t (now -. prev)
  | None -> ());
  t.last_arrival <- Some now

let observations t = t.total

(* Mean gap, standard error of the mean gap, and the sample count the
   error is based on.  [None] until two gaps have been seen. *)
let gap_stats t =
  if t.total < 2 then None
  else
    match t.kind with
    | Window w ->
        let n = w.filled in
        if n < 2 then None
        else begin
          let sum = ref 0.0 in
          for i = 0 to n - 1 do
            sum := !sum +. w.gaps.(i)
          done;
          let mean = !sum /. float_of_int n in
          let ss = ref 0.0 in
          for i = 0 to n - 1 do
            let d = w.gaps.(i) -. mean in
            ss := !ss +. (d *. d)
          done;
          let var = !ss /. float_of_int (n - 1) in
          Some (mean, sqrt (var /. float_of_int n), n)
        end
    | Ewma e ->
        let var = Float.max 0.0 (e.sq_mean -. (e.mean *. e.mean)) in
        (* Effective sample size of an exponential window, capped by
           the number of gaps actually folded in. *)
        let n_eff =
          Float.min (float_of_int t.total) ((2.0 -. e.alpha) /. e.alpha)
        in
        Some (e.mean, sqrt (var /. n_eff), t.total)

let rate t =
  match t.kind with
  | Window w ->
      if w.filled = 0 then None
      else begin
        let n = w.filled in
        let sum = ref 0.0 in
        for i = 0 to n - 1 do
          sum := !sum +. w.gaps.(i)
        done;
        let mean = !sum /. float_of_int n in
        if mean > 0.0 then Some (1.0 /. mean) else None
      end
  | Ewma e -> if t.total > 0 && e.mean > 0.0 then Some (1.0 /. e.mean) else None

(* --- checkpoint serialization --------------------------------------

   The serving daemon checkpoints its estimator so a crash loses no
   workload knowledge.  The encoding captures the *exact* mutable
   state — ring contents, cursor positions, EWMA moments, the pending
   last-arrival time — so a restore is bit-identical: the restored
   estimator produces the same rate, band, and future evolution as
   the original (pinned by round-trip property tests). *)

let to_json t =
  let open Dpm_trace.Json in
  let opt_float = function Some x -> Num x | None -> Null in
  let common =
    [
      ("z", Num t.z);
      ("last_arrival", opt_float t.last_arrival);
      ("total", Num (float_of_int t.total));
    ]
  in
  match t.kind with
  | Window w ->
      Obj
        (("kind", Str "window")
        :: ("gaps", Arr (Array.to_list (Array.map (fun g -> Num g) w.gaps)))
        :: ("filled", Num (float_of_int w.filled))
        :: ("next", Num (float_of_int w.next))
        :: common)
  | Ewma e ->
      Obj
        (("kind", Str "ewma")
        :: ("alpha", Num e.alpha)
        :: ("mean", Num e.mean)
        :: ("sq_mean", Num e.sq_mean)
        :: common)

let of_json j =
  let open Dpm_trace.Json in
  let ( let* ) = Result.bind in
  let field name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Estimator.of_json: missing field %S" name)
  in
  let num name =
    let* v = field name (member name j) in
    field name (to_float v)
  in
  let int name =
    let* v = num name in
    Ok (int_of_float v)
  in
  let* kind = field "kind" (Option.bind (member "kind" j) to_str) in
  let* z = num "z" in
  let* total = int "total" in
  let last_arrival =
    match member "last_arrival" j with
    | Some (Num x) -> Some x
    | Some _ | None -> None
  in
  let* kind =
    match kind with
    | "window" ->
        let* gaps = field "gaps" (member "gaps" j) in
        let* gaps =
          match gaps with
          | Arr xs ->
              let rec collect acc = function
                | [] -> Ok (Array.of_list (List.rev acc))
                | Num x :: rest -> collect (x :: acc) rest
                | _ -> Error "Estimator.of_json: non-numeric gap"
              in
              collect [] xs
          | _ -> Error "Estimator.of_json: gaps must be an array"
        in
        let* filled = int "filled" in
        let* next = int "next" in
        let window = Array.length gaps in
        if window < 2 then Error "Estimator.of_json: window below 2"
        else if filled < 0 || filled > window then
          Error "Estimator.of_json: filled out of range"
        else if next < 0 || next >= window then
          Error "Estimator.of_json: next out of range"
        else Ok (Window { gaps; filled; next })
    | "ewma" ->
        let* alpha = num "alpha" in
        let* mean = num "mean" in
        let* sq_mean = num "sq_mean" in
        if alpha <= 0.0 || alpha >= 1.0 then
          Error "Estimator.of_json: alpha out of (0, 1)"
        else Ok (Ewma { alpha; mean; sq_mean })
    | other -> Error (Printf.sprintf "Estimator.of_json: unknown kind %S" other)
  in
  if z <= 0.0 || not (Float.is_finite z) then
    Error "Estimator.of_json: z must be positive and finite"
  else if total < 0 then Error "Estimator.of_json: negative total"
  else Ok { kind; z; last_arrival; total }

let band t =
  match gap_stats t with
  | None -> None
  | Some (mean, se, _n) ->
      if mean <= 0.0 then None
      else begin
        let half = t.z *. se in
        let lo_gap = mean -. half and hi_gap = mean +. half in
        let lo_rate = 1.0 /. hi_gap in
        let hi_rate = if lo_gap <= 0.0 then infinity else 1.0 /. lo_gap in
        Some (lo_rate, hi_rate)
      end
