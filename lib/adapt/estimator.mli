(** Online arrival-rate estimation.

    The paper (Section III) notes that a power manager facing a
    slowly varying workload can estimate the input rate online and
    re-derive its policy; this module is that estimator.  It watches
    the inter-arrival {e gaps} of the request stream and maintains a
    running mean with a confidence band, either over a sliding window
    (bounded memory, abrupt forgetting) or as an EWMA (exponential
    forgetting).

    Rates are estimated through the gap mean: the band on the mean
    gap [m +/- z * se] is inverted to a rate band
    [(1/(m + z*se), 1/(m - z*se))], which is exact for the question
    the adaptive controller asks ("is the deployed rate plausible?")
    and avoids the bias of averaging reciprocal gaps. *)

type t
(** A stateful estimator.  Not thread-safe: each simulation run must
    own its estimator (the same discipline as {!Dpm_sim.Controller}). *)

val sliding_window : ?z:float -> window:int -> unit -> t
(** [sliding_window ~window ()] keeps the last [window] gaps (>= 2)
    and computes the exact sample mean/variance over them.  [z]
    (default 1.96) scales the confidence band.  Raises
    [Invalid_argument] on a window below 2 or a non-positive [z]. *)

val ewma : ?z:float -> alpha:float -> unit -> t
(** [ewma ~alpha ()] tracks exponentially weighted moments of the
    gaps; [alpha] in (0, 1) is the forgetting factor (larger = more
    reactive).  The band divides the variance by the window's
    effective sample size [(2 - alpha) / alpha], capped by the number
    of gaps actually seen. *)

val observe_arrival : t -> now:float -> unit
(** [observe_arrival t ~now] notes an arrival at absolute time [now];
    from the second call on, the gap since the previous arrival is
    folded in.  Non-positive or non-finite gaps (simultaneous
    arrivals, clock glitches) are ignored rather than poisoning the
    moments. *)

val observe_gap : t -> float -> unit
(** [observe_gap t g] folds in one inter-arrival gap directly —
    useful when replaying a gap trace without absolute times.
    Non-positive or non-finite gaps are ignored. *)

val observations : t -> int
(** Total gaps folded in since creation (not capped by the window). *)

val rate : t -> float option
(** The current rate estimate [1 / mean-gap]; [None] before the first
    gap. *)

val to_json : t -> Dpm_trace.Json.t
(** Serialize the estimator's {e exact} mutable state (ring contents
    and cursors, or EWMA moments, plus the pending last-arrival time)
    for a daemon checkpoint.  Floats are encoded round-trippably, so
    {!of_json} restores a bit-identical estimator: same rate, band,
    and future evolution. *)

val of_json : Dpm_trace.Json.t -> (t, string) result
(** Rebuild an estimator from {!to_json} output.  [Error] on a
    missing or malformed field, or on parameters no constructor would
    accept (window below 2, alpha outside (0, 1), ...). *)

val band : t -> (float * float) option
(** [band t] is the [(lo, hi)] rate band obtained by inverting the
    [z]-scaled confidence interval on the mean gap; [hi] is
    [infinity] when the interval's lower gap endpoint is
    non-positive.  [None] until two gaps have been seen (no
    dispersion information). *)
