(** Online policy adaptation: estimate the arrival rate, re-solve the
    CTMDP when it drifts, fall back to the incumbent when the solver
    fails.

    The paper's policies are optimal for one arrival rate; under a
    non-stationary workload any single policy is wrong most of the
    time.  This module closes the loop the paper sketches in
    Section III: an {!Estimator} watches the arrivals, and when the
    deployed rate leaves the estimate's confidence band the
    controller rebuilds the system at the estimated rate
    ({!Dpm_core.Sys_model.with_arrival_rate}) and re-solves through
    {!Dpm_core.Optimize.solve_at} — warm-started from the incumbent
    policy, memoized by {!Dpm_cache.Solve_cache}, and guarded by the
    [Dpm_robust] deadline/fault hooks.  A failed re-solve keeps the
    incumbent policy, so the controller degrades to a static one
    rather than stalling the simulation.

    Estimated rates are snapped to a logarithmic grid
    ({!quantize_log}) before solving, so a wandering estimate hits
    the solve cache instead of triggering a fresh policy iteration
    per drift epsilon.

    Determinism: adaptation is driven purely by the simulated event
    stream and the (deterministic) solver, so replications are
    bit-identical at any {!Dpm_par} domain count — the solve cache is
    shared across domains, and warm-started solves equal cold ones
    (a property [Dpm_cache] pins with tests). *)

type stats = {
  mutable resolves : int;  (** re-solve attempts issued *)
  mutable resolve_failures : int;
      (** attempts that returned [Error] (deadline, injected fault,
          solver failure) — the incumbent was kept *)
  mutable policy_switches : int;  (** successful policy deployments *)
  mutable deployed_rate : float;
      (** arrival rate the deployed policy was solved at *)
}

type t
(** One adaptive power manager.  Owns mutable state (estimator,
    deployed policy); build one per simulation run, like any
    {!Dpm_sim.Controller}. *)

val quantize_log : ?per_efold:int -> float -> float
(** [quantize_log rate] snaps [rate] to the nearest point of a
    logarithmic grid with [per_efold] (default 16) points per factor
    of [e] — about 6% spacing, finer than the estimator's typical
    band.  Raises [Invalid_argument] on a non-positive or non-finite
    rate. *)

val create :
  ?weight:float ->
  ?estimator:Estimator.t ->
  ?min_observations:int ->
  ?cooldown:float ->
  ?deadline_s:float ->
  ?quantize:(float -> float) ->
  Dpm_core.Sys_model.t ->
  t
(** [create sys] solves the incumbent policy at [sys]'s nominal
    arrival rate (unguarded — a failure here is a configuration
    error and propagates) and prepares the adaptation loop:

    - [weight] (default 0): the [w] of the weighted cost, passed to
      every solve;
    - [estimator] (default a 50-gap {!Estimator.sliding_window});
    - [min_observations] (default 30): gaps required before the first
      adaptation may trigger;
    - [cooldown] (default 100 simulated seconds): minimum time
      between re-solve {e attempts}, successful or not;
    - [deadline_s]: optional wall-clock budget per re-solve
      ({!Dpm_robust.Guard.of_deadline}); an expired deadline is a
      failed attempt, i.e. the incumbent stays;
    - [quantize] (default {!quantize_log}[ ~per_efold:16]): the
      rate-snapping function applied before solving.

    Re-solves also tick the ambient fault plan
    ({!Dpm_robust.Fault.of_env}), so [DPM_FAULTS=stall] exercises the
    fallback path deterministically. *)

val controller : ?name:string -> t -> Dpm_sim.Controller.t
(** [controller t] wraps [t] as a simulator controller
    ({!Dpm_sim.Controller.of_dynamic_policy}): every arrival feeds
    the estimator, every event gives the adaptation loop a chance to
    run, and decisions always come from the currently deployed
    policy.  [name] defaults to ["adaptive"]. *)

val stats : t -> stats
(** Live counters (the same numbers exported through the
    [adapt.*] {!Dpm_obs.Probe} metrics). *)

val estimator : t -> Estimator.t
(** The estimator driving [t] — e.g. to inspect {!Estimator.rate}
    after a run. *)

val deployed_actions : t -> int array
(** A copy of the currently deployed action table (indexed by
    {!Dpm_core.Sys_model.index}). *)

val last_provenance : t -> Dpm_trace.Provenance.t option
(** Provenance of the solve that produced the deployed policy — the
    incumbent's at creation, then the latest successful re-solve's
    (with [deadline_s] filled in from [create]).  A failed re-solve
    leaves it untouched, matching the policy it describes.  Each
    re-solve decision is also emitted as an [adapt.resolve] instant
    (with these fields as args) on the active [Dpm_trace.Recorder]. *)
