open Dpm_core

type stats = {
  mutable resolves : int;
  mutable resolve_failures : int;
  mutable policy_switches : int;
  mutable deployed_rate : float;
}

type t = {
  sys : Sys_model.t;
  weight : float;
  estimator : Estimator.t;
  min_observations : int;
  cooldown : float;
  deadline_s : float option;
  quantize : float -> float;
  mutable actions : int array;
  mutable last_attempt : float;
  mutable last_provenance : Dpm_trace.Provenance.t option;
  stats : stats;
}

let quantize_log ?(per_efold = 16) rate =
  if rate <= 0.0 || not (Float.is_finite rate) then
    invalid_arg "Adaptive.quantize_log: rate must be positive and finite";
  if per_efold < 1 then
    invalid_arg "Adaptive.quantize_log: per_efold must be >= 1";
  let k = float_of_int per_efold in
  Float.exp (Float.round (Float.log rate *. k) /. k)

let create ?(weight = 0.0) ?estimator ?(min_observations = 30)
    ?(cooldown = 100.0) ?deadline_s ?(quantize = quantize_log ~per_efold:16)
    sys =
  if min_observations < 2 then
    invalid_arg "Adaptive.create: min_observations must be >= 2";
  if cooldown < 0.0 || not (Float.is_finite cooldown) then
    invalid_arg "Adaptive.create: cooldown must be nonnegative and finite";
  let estimator =
    match estimator with
    | Some e -> e
    | None -> Estimator.sliding_window ~window:50 ()
  in
  (* The incumbent is solved unguarded at the system's nominal rate:
     a failure here is a configuration error the caller should see,
     not something to fall back from. *)
  let solution = Optimize.solve ~weight sys in
  {
    sys;
    weight;
    estimator;
    min_observations;
    cooldown;
    deadline_s;
    quantize;
    actions = solution.Optimize.actions;
    last_attempt = neg_infinity;
    last_provenance = Some solution.Optimize.provenance;
    stats =
      {
        resolves = 0;
        resolve_failures = 0;
        policy_switches = 0;
        deployed_rate = Sys_model.arrival_rate sys;
      };
  }

let stats t = t.stats
let estimator t = t.estimator
let last_provenance t = t.last_provenance
let deployed_actions t = Array.copy t.actions

let policy t state = t.actions.(Sys_model.index t.sys state)

(* The estimate worth re-solving for, or [None] while the deployed
   rate remains statistically plausible. *)
let drifted_estimate t =
  if Estimator.observations t.estimator < t.min_observations then None
  else
    match Estimator.band t.estimator with
    | None -> None
    | Some (lo, hi) ->
        if t.stats.deployed_rate < lo || t.stats.deployed_rate > hi then
          Estimator.rate t.estimator
        else None

let maybe_adapt t ~now =
  if now -. t.last_attempt >= t.cooldown then
    match drifted_estimate t with
    | None -> ()
    | Some estimate ->
        t.last_attempt <- now;
        Dpm_obs.Probe.set "adapt.estimated_rate" estimate;
        let target = t.quantize estimate in
        if target <> t.stats.deployed_rate then begin
          t.stats.resolves <- t.stats.resolves + 1;
          Dpm_obs.Probe.incr "adapt.resolves";
          let guard =
            Dpm_robust.Guard.compose
              [
                Dpm_robust.Fault.guard_opt (Dpm_robust.Fault.of_env ());
                Dpm_robust.Guard.of_deadline t.deadline_s;
              ]
          in
          match
            Optimize.solve_at ~weight:t.weight ~init_actions:t.actions ~guard
              t.sys ~arrival_rate:target
          with
          | Ok (_sys_at_target, solution) ->
              t.actions <- solution.Optimize.actions;
              t.stats.deployed_rate <- target;
              t.stats.policy_switches <- t.stats.policy_switches + 1;
              (* Pin the deadline the solve actually ran under; the
                 lower layers never see it (it lives in the guard). *)
              let provenance =
                {
                  solution.Optimize.provenance with
                  Dpm_trace.Provenance.deadline_s = t.deadline_s;
                }
              in
              t.last_provenance <- Some provenance;
              Dpm_obs.Probe.incr "adapt.policy_switches";
              Dpm_obs.Probe.set "adapt.deployed_rate" target;
              if Dpm_trace.Recorder.enabled () then
                Dpm_trace.Recorder.instant "adapt.resolve"
                  ~args:
                    (("outcome", Dpm_trace.Event.Str "deployed")
                     :: ("sim_time", Dpm_trace.Event.Float now)
                     :: ("rate", Dpm_trace.Event.Float target)
                     :: Dpm_trace.Provenance.to_args provenance)
          | Error _ ->
              (* Keep the incumbent policy; the cooldown spaces out
                 retries so a persistently failing solver degrades the
                 controller to a static one instead of stalling it. *)
              t.stats.resolve_failures <- t.stats.resolve_failures + 1;
              Dpm_obs.Probe.incr "adapt.resolve_failures";
              if Dpm_trace.Recorder.enabled () then
                Dpm_trace.Recorder.instant "adapt.resolve"
                  ~args:
                    [
                      ("outcome", Dpm_trace.Event.Str "failed");
                      ("sim_time", Dpm_trace.Event.Float now);
                      ("rate", Dpm_trace.Event.Float target);
                    ]
        end

let controller ?(name = "adaptive") t =
  let inner =
    Dpm_sim.Controller.of_dynamic_policy ~name t.sys ~policy:(fun () ->
        policy t)
  in
  let decide obs reason =
    (match reason with
    | Dpm_sim.Controller.Arrival | Dpm_sim.Controller.Arrival_lost ->
        Estimator.observe_arrival t.estimator
          ~now:obs.Dpm_sim.Controller.time
    | Dpm_sim.Controller.Init | Dpm_sim.Controller.Service_completed _
    | Dpm_sim.Controller.Switch_completed | Dpm_sim.Controller.Timer ->
        ());
    maybe_adapt t ~now:obs.Dpm_sim.Controller.time;
    inner.Dpm_sim.Controller.decide obs reason
  in
  { inner with Dpm_sim.Controller.decide }
