open Dpm_core
open Dpm_sim

type entry = { label : string; cost : float; result : Power_sim.result }

type comparison = {
  weight : float;
  horizon : float;
  entries : entry list;
  adaptive : entry;
  static_best : entry;
  oracle : entry;
  resolves : int;
  resolve_failures : int;
  policy_switches : int;
}

let cost_of ~weight (r : Power_sim.result) =
  r.Power_sim.avg_power +. (weight *. r.Power_sim.avg_waiting_requests)

let solve_actions sys ~weight rate =
  let sys' = Sys_model.with_arrival_rate sys rate in
  (sys', (Optimize.solve ~weight sys').Optimize.actions)

let oracle_controller sys ~weight ~segments ~final_rate =
  let solve rate = snd (solve_actions sys ~weight rate) in
  let pieces = List.map (fun (until, rate) -> (until, solve rate)) segments in
  let final_actions = solve final_rate in
  let actions_at time =
    let rec go = function
      | [] -> final_actions
      | (until, acts) :: rest -> if time < until then acts else go rest
    in
    go pieces
  in
  let current = ref (actions_at 0.0) in
  let inner =
    Controller.of_dynamic_policy ~name:"oracle" sys ~policy:(fun () state ->
        !current.(Sys_model.index sys state))
  in
  let next_boundary time =
    List.fold_left
      (fun acc (until, _) ->
        if until > time +. 1e-9 && until < acc then until else acc)
      infinity pieces
  in
  let decide obs reason =
    current := actions_at obs.Controller.time;
    let d = inner.Controller.decide obs reason in
    (* Wake at the next phase boundary so the policy handover is not
       delayed until a quiet phase's first arrival. *)
    let nb = next_boundary obs.Controller.time in
    let timer =
      match d.Controller.timer with
      | Some delay -> Some (Float.min delay (nb -. obs.Controller.time))
      | None ->
          if Float.is_finite nb then Some (nb -. obs.Controller.time)
          else None
    in
    { d with Controller.timer }
  in
  { inner with Controller.decide }

let mean_rate ~segments ~final_rate ~horizon =
  let rec go t0 acc = function
    | [] -> acc +. (final_rate *. Float.max 0.0 (horizon -. t0))
    | (until, rate) :: rest ->
        let hi = Float.min until horizon in
        let acc = acc +. (rate *. Float.max 0.0 (hi -. t0)) in
        go until acc rest
  in
  go 0.0 0.0 segments /. horizon

let compare ?(seed = 1L) ?(weight = 1.0) ?(window = 50)
    ?(min_observations = 30) ?(cooldown = 100.0) ?deadline_s
    ?(include_heuristics = true) ~sys ~segments ~final_rate ~horizon () =
  if horizon <= 0.0 || not (Float.is_finite horizon) then
    invalid_arg "Harness.compare: horizon must be positive and finite";
  ignore (Workload.piecewise ~segments ~final_rate);
  let boundaries = List.filter (fun b -> b < horizon) (List.map fst segments) in
  let run controller =
    Power_sim.run ~seed ~segments:boundaries ~sys
      ~workload:(Workload.piecewise ~segments ~final_rate)
      ~controller
      ~stop:(Power_sim.Sim_time horizon)
      ()
  in
  let entry label controller =
    let result = run controller in
    { label; cost = cost_of ~weight result; result }
  in
  let static_entry ?label rate =
    let sys', actions = solve_actions sys ~weight rate in
    let label =
      match label with Some l -> l | None -> Printf.sprintf "static@%.4g" rate
    in
    ignore sys';
    entry label
      (Controller.of_policy sys (fun state ->
           actions.(Sys_model.index sys state)))
  in
  let rates =
    List.sort_uniq Float.compare (final_rate :: List.map snd segments)
  in
  let statics = List.map (fun r -> static_entry r) rates in
  let mean = mean_rate ~segments ~final_rate ~horizon in
  let statics =
    if List.exists (fun r -> r = mean) rates then statics
    else statics @ [ static_entry ~label:(Printf.sprintf "static@mean(%.4g)" mean) mean ]
  in
  let adaptive_pm =
    Adaptive.create ~weight
      ~estimator:(Estimator.sliding_window ~window ())
      ~min_observations ~cooldown ?deadline_s sys
  in
  let adaptive = entry "adaptive" (Adaptive.controller adaptive_pm) in
  let oracle =
    entry "oracle" (oracle_controller sys ~weight ~segments ~final_rate)
  in
  let heuristics =
    if not include_heuristics then []
    else
      let delay = 1.0 /. mean in
      [
        entry "greedy" (Controller.greedy sys);
        entry "n-policy(2)" (Controller.n_policy sys ~n:2);
        entry (Printf.sprintf "timeout(%.3g)" delay)
          (Controller.timeout sys ~delay);
      ]
  in
  let static_best =
    match
      List.sort (fun a b -> Float.compare a.cost b.cost) statics
    with
    | best :: _ -> best
    | [] -> invalid_arg "Harness.compare: no static policies"
  in
  let st = Adaptive.stats adaptive_pm in
  {
    weight;
    horizon;
    entries = (adaptive :: oracle :: statics) @ heuristics;
    adaptive;
    static_best;
    oracle;
    resolves = st.Adaptive.resolves;
    resolve_failures = st.Adaptive.resolve_failures;
    policy_switches = st.Adaptive.policy_switches;
  }

let pp ppf c =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%-18s %10s %10s %10s %8s@," "controller" "cost" "power(W)" "E[queue]"
    "lost";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-18s %10.4f %10.4f %10.4f %8d@," e.label e.cost
        e.result.Power_sim.avg_power e.result.Power_sim.avg_waiting_requests
        e.result.Power_sim.lost)
    (List.sort (fun a b -> Float.compare a.cost b.cost) c.entries);
  Format.fprintf ppf
    "adaptive vs best static: %+.2f%%  |  vs oracle: %+.2f%%  (%d re-solves, %d switches, %d failures)@]"
    (100.0 *. (c.adaptive.cost -. c.static_best.cost) /. c.static_best.cost)
    (100.0 *. (c.adaptive.cost -. c.oracle.cost) /. c.oracle.cost)
    c.resolves c.policy_switches c.resolve_failures
