(** Evaluation harness: adaptive vs static vs oracle on a drifting
    workload.

    One call simulates the same piecewise-stationary arrival stream
    (same seed, hence the identical arrival sequence — a common
    random numbers comparison) under a bench of controllers:

    - the {!Adaptive} power manager;
    - one static CTMDP-optimal policy per distinct segment rate, plus
      one at the time-weighted mean rate — the best of these is what
      an offline designer who had to pick {e one} policy could do;
    - the {e oracle}: per-segment optimal policies switched exactly at
      the (unknowable online) phase boundaries — the upper bound on
      any adaptation scheme;
    - optionally the paper's heuristics (greedy, N-policy, time-out).

    Costs are the weighted objective [power + w * E\[queue\]] of
    Eqn. (3.1), evaluated over the whole run; per-segment metrics are
    attached to every entry's result ({!Dpm_sim.Power_sim.segment}). *)

type entry = {
  label : string;  (** controller label, e.g. ["static@0.125"] *)
  cost : float;  (** [avg_power + weight * avg_waiting_requests] *)
  result : Dpm_sim.Power_sim.result;
      (** full simulation result, segments included *)
}

type comparison = {
  weight : float;  (** the [w] the costs were evaluated at *)
  horizon : float;  (** simulated seconds per run *)
  entries : entry list;  (** every controller, adaptive first *)
  adaptive : entry;
  static_best : entry;
      (** cheapest {e static CTMDP} entry (heuristics excluded) *)
  oracle : entry;
  resolves : int;  (** adaptive re-solve attempts *)
  resolve_failures : int;  (** attempts that kept the incumbent *)
  policy_switches : int;  (** successful policy deployments *)
}

val cost_of : weight:float -> Dpm_sim.Power_sim.result -> float
(** The weighted objective of one run:
    [avg_power + weight * avg_waiting_requests]. *)

val compare :
  ?seed:int64 ->
  ?weight:float ->
  ?window:int ->
  ?min_observations:int ->
  ?cooldown:float ->
  ?deadline_s:float ->
  ?include_heuristics:bool ->
  sys:Dpm_core.Sys_model.t ->
  segments:(float * float) list ->
  final_rate:float ->
  horizon:float ->
  unit ->
  comparison
(** [compare ~sys ~segments ~final_rate ~horizon ()] runs the bench
    on the {!Dpm_sim.Workload.piecewise} source described by
    [(until, rate)] [segments] and [final_rate].  [seed] (default 1)
    drives every run identically; [weight] (default 1) is the cost
    weight used both to solve the policies and to score the runs;
    [window], [min_observations], [cooldown], [deadline_s] are passed
    to {!Adaptive.create}.  Segment boundaries are also passed to the
    simulator, so each entry's result carries per-segment metrics.
    Raises [Invalid_argument] on an invalid segment spec or a
    non-positive horizon. *)

val pp : Format.formatter -> comparison -> unit
(** A cost-sorted table plus the adaptive-vs-static and
    adaptive-vs-oracle relative gaps. *)
