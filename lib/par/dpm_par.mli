(** Multicore execution: a fixed-size OCaml 5 domain pool.

    The evaluation workloads of this repository are embarrassingly
    parallel — independent simulation replications, policy solves over
    rate/weight grids — and this module is the one place that turns
    that independence into wall-clock speedup.  It is deliberately
    dependency-free (no domainslib): a fixed set of worker domains
    blocks on a job queue, and each parallel call distributes indices
    through an atomic counter, with the calling domain always working
    alongside the pool.

    {2 Determinism}

    Every combinator here is {e order-deterministic}: results land at
    the index of their input regardless of which domain computed them
    or in which order, so for pure per-item functions the output is
    bit-identical to the sequential ([domains = 1]) run.
    {!parallel_reduce} fixes its chunk layout from the input size
    alone (never from the domain count), so even non-associative
    float reductions give the same answer at every pool size.

    {2 Sizing}

    The parallelism degree resolves, in order: the [?domains] argument
    of a call, {!set_default_domains}, the [DPM_DOMAINS] environment
    variable, and finally [1] (purely sequential — the fallback that
    keeps every existing entry point byte-for-byte unchanged until a
    caller opts in).  Pool workers are spawned lazily on the first
    parallel call and reused; nested parallel calls from inside a
    worker degrade to sequential execution rather than oversubscribe.

    {2 Instrumentation}

    When a {!Dpm_obs} registry is active, each worker accounts its
    busy time to [par.domain.<k>.busy_seconds] (the caller's lane is
    domain 0), and the pool maintains [par.pool_size], [par.jobs] and
    [par.parallel_calls].  Tasks may themselves probe metrics: the
    registry is domain-safe. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    the runtime suggests. *)

val default_domains : unit -> int
(** The parallelism used when a call omits [?domains]:
    {!set_default_domains} if called, else the [DPM_DOMAINS]
    environment variable (a positive integer; anything else is
    ignored), else [1]. *)

val set_default_domains : int -> unit
(** Override the default parallelism for the process (the CLI's
    [--domains] flag lands here).  Raises [Invalid_argument] for
    values below 1.  Shrinking below the current pool size does not
    kill spawned workers; they simply go unused. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f xs] is [Array.map f xs] computed on the pool.
    [f] must be safe to call from several domains at once (pure
    functions and functions touching only their own state qualify;
    everything in this repository's solver/simulator stack does).  If
    any application raises, the whole call raises the exception of
    the {e lowest-indexed} failing element — deterministic regardless
    of scheduling — after all other elements finished. *)

val parallel_map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!parallel_map} over lists, preserving order. *)

val parallel_map_result :
  ?domains:int -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** [parallel_map_result f xs] is {!parallel_map} with per-item
    exception containment: an application that raises yields
    [Error exn] in its own slot while every other element still
    completes — there is {e no} global abort.  Each failure increments
    the [par.item_failures] {!Dpm_obs} counter.  Order determinism is
    as in {!parallel_map}. *)

val parallel_map_result_list :
  ?domains:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** {!parallel_map_result} over lists, preserving order. *)

val parallel_for : ?domains:int -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f 0 .. f (n-1)] on the pool.  [chunk]
    (default 1) batches consecutive indices per queue pull to cut
    atomic-counter traffic for fine-grained bodies.  Exceptions
    propagate as in {!parallel_map}. *)

val parallel_reduce :
  ?domains:int ->
  ?chunk:int ->
  n:int ->
  map:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  unit ->
  'a
(** Deterministic chunked map-reduce over [0 .. n-1]:
    the index space is cut into fixed chunks (size [chunk], default
    [max 1 (n / 64)] — a function of [n] only), each chunk is folded
    left-to-right with [combine] starting from [init], and the chunk
    results are folded left-to-right in chunk order, again from
    [init].  Because the chunk layout ignores the domain count, the
    result is identical at every pool size even when [combine] is not
    associative (floating-point sums). *)

(** {1 Pool management}

    Normally implicit — the shared pool is created lazily and torn
    down at exit.  Exposed for tests and for embedders that want
    explicit control. *)

val pool_size : unit -> int
(** Workers currently spawned (0 until the first parallel call that
    needs any). *)

val ensure_pool : int -> unit
(** [ensure_pool d] grows the shared pool so calls at parallelism [d]
    have [d - 1] workers available.  Raises [Invalid_argument] for
    [d < 1]. *)

val shutdown : unit -> unit
(** Join all pool workers (idempotent; also registered [at_exit]).
    Subsequent parallel calls restart the pool. *)
