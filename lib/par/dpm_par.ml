(* A fixed-size domain pool with an index-stealing scheduler.

   Design notes:

   - Workers are plain [Domain.t]s blocked on one mutex-protected job
     queue; a "job" is an exception-proof thunk.  The pool is grown
     lazily and joined at exit, so programs that never opt into
     parallelism never spawn a domain.

   - A parallel call does not enqueue one job per item.  It enqueues
     [helpers] copies of a {e lane}: a loop pulling chunk indices from
     one [Atomic.t] counter.  The calling domain runs the same lane,
     so it always makes progress even if every worker is busy with
     other calls — which is also why nested calls cannot deadlock
     (they are additionally demoted to sequential execution to avoid
     oversubscription, see [in_worker]).

   - Determinism: item [i]'s result is written to slot [i]; the
     scheduling order is irrelevant.  Reduction chunking depends only
     on [n], never on the domain count. *)

(* --- defaults ------------------------------------------------------ *)

let recommended_domains () = Domain.recommended_domain_count ()

let env_domains () =
  match Sys.getenv_opt "DPM_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let forced_default : int option Atomic.t = Atomic.make None

let default_domains () =
  match Atomic.get forced_default with
  | Some n -> n
  | None -> ( match env_domains () with Some n -> n | None -> 1)

let set_default_domains n =
  if n < 1 then invalid_arg "Dpm_par.set_default_domains: need at least 1";
  Atomic.set forced_default (Some n)

(* --- the shared pool ----------------------------------------------- *)

type pool = {
  lock : Mutex.t;
  cond : Condition.t;  (* "a job arrived" / "shutting down" *)
  jobs : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let pool =
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    jobs = Queue.create ();
    workers = [];
    closed = false;
  }

(* Worker domains set this so nested parallel calls degrade to
   sequential execution instead of queueing jobs they would then have
   to wait on while holding a lane. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let timed_lane wid lane =
  if not (Dpm_obs.Probe.enabled ()) then lane ()
  else begin
    let t0 = Dpm_obs.Probe.now () in
    Fun.protect
      ~finally:(fun () ->
        Dpm_obs.Probe.record
          (Printf.sprintf "par.domain.%d.busy_seconds" wid)
          (Dpm_obs.Probe.now () -. t0))
      lane
  end

let worker_main wid () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.jobs && not pool.closed do
      Condition.wait pool.cond pool.lock
    done;
    let job = Queue.take_opt pool.jobs in
    Mutex.unlock pool.lock;
    match job with
    | None -> () (* closed and drained *)
    | Some job ->
        (try timed_lane wid job with _ -> ());
        loop ()
  in
  loop ()

let pool_size () =
  Mutex.lock pool.lock;
  let n = List.length pool.workers in
  Mutex.unlock pool.lock;
  n

let ensure_pool d =
  if d < 1 then invalid_arg "Dpm_par.ensure_pool: need at least 1";
  Mutex.lock pool.lock;
  pool.closed <- false;
  let have = List.length pool.workers in
  for wid = have + 1 to d - 1 do
    pool.workers <- Domain.spawn (worker_main wid) :: pool.workers
  done;
  let n = List.length pool.workers in
  Mutex.unlock pool.lock;
  Dpm_obs.Probe.set "par.pool_size" (float_of_int n)

let shutdown () =
  Mutex.lock pool.lock;
  let workers = pool.workers in
  pool.workers <- [];
  pool.closed <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.lock;
  List.iter Domain.join workers

let () = at_exit shutdown

let submit_jobs jobs =
  Mutex.lock pool.lock;
  List.iter (fun j -> Queue.add j pool.jobs) jobs;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.lock

(* --- the scheduler ------------------------------------------------- *)

let resolve = function
  | Some d ->
      if d < 1 then invalid_arg "Dpm_par: domains must be >= 1";
      d
  | None -> default_domains ()

(* Run [body 0 .. body (n-1)] at parallelism [d], capturing the
   exception of the lowest failing index.  [body] runs exactly once
   per index on some domain. *)
let run_indices ~domains ~chunk n body =
  let d = resolve domains in
  let seq () = for i = 0 to n - 1 do body i done in
  if n <= 0 then ()
  else if d = 1 || n = 1 || Domain.DLS.get in_worker then seq ()
  else begin
    let chunk = max 1 chunk in
    let nchunks = (n + chunk - 1) / chunk in
    let helpers = min (d - 1) (nchunks - 1) in
    if helpers <= 0 then seq ()
    else begin
      ensure_pool d;
      Dpm_obs.Probe.incr "par.parallel_calls";
      Dpm_obs.Probe.add "par.jobs" helpers;
      let next = Atomic.make 0 in
      let err_lock = Mutex.create () in
      let first_error = ref None in
      let record_error i exn bt =
        Mutex.lock err_lock;
        (match !first_error with
        | Some (j, _, _) when j <= i -> ()
        | Some _ | None -> first_error := Some (i, exn, bt));
        Mutex.unlock err_lock
      in
      let lane () =
        let rec go () =
          let c = Atomic.fetch_and_add next 1 in
          if c < nchunks then begin
            let lo = c * chunk in
            let hi = min n (lo + chunk) in
            for i = lo to hi - 1 do
              try body i
              with exn -> record_error i exn (Printexc.get_raw_backtrace ())
            done;
            go ()
          end
        in
        go ()
      in
      let latch_lock = Mutex.create () in
      let latch_cond = Condition.create () in
      let remaining = ref helpers in
      let helper () =
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock latch_lock;
            decr remaining;
            if !remaining = 0 then Condition.signal latch_cond;
            Mutex.unlock latch_lock)
          lane
      in
      submit_jobs (List.init helpers (fun _ -> helper));
      timed_lane 0 lane;
      Mutex.lock latch_lock;
      while !remaining > 0 do
        Condition.wait latch_cond latch_lock
      done;
      Mutex.unlock latch_lock;
      match !first_error with
      | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
      | None -> ()
    end
  end

(* --- combinators ---------------------------------------------------- *)

let parallel_map ?domains f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_indices ~domains ~chunk:1 n (fun i -> out.(i) <- Some (f xs.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map_list ?domains f xs =
  Array.to_list (parallel_map ?domains f (Array.of_list xs))

(* Per-item containment: each application is fenced on its own domain,
   so one poisoned item turns into an [Error] slot instead of aborting
   the whole call — the substrate Optimize/Sensitivity sweeps use to
   degrade gracefully. *)
let parallel_map_result ?domains f xs =
  parallel_map ?domains
    (fun x ->
      match f x with
      | v -> Ok v
      | exception exn ->
          Dpm_obs.Probe.incr "par.item_failures";
          Error exn)
    xs

let parallel_map_result_list ?domains f xs =
  Array.to_list (parallel_map_result ?domains f (Array.of_list xs))

let parallel_for ?domains ?(chunk = 1) n body =
  run_indices ~domains ~chunk n body

let parallel_reduce ?domains ?chunk ~n ~map ~combine ~init () =
  if n <= 0 then init
  else begin
    (* Chunk layout is a function of [n] only — see the interface's
       determinism contract. *)
    let chunk =
      match chunk with Some c -> max 1 c | None -> max 1 (n / 64)
    in
    let nchunks = (n + chunk - 1) / chunk in
    let partial = Array.make nchunks init in
    run_indices ~domains ~chunk:1 nchunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := combine !acc (map i)
        done;
        partial.(c) <- !acc);
    Array.fold_left combine init partial
  end
