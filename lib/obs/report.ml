(* %.12g is enough digits that distinct interesting values stay
   distinct, while common decimals (0.1, 2.5) print exactly. *)
let float_str x = Printf.sprintf "%.12g" x

let json_float x = if Float.is_finite x then float_str x else "null"

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* --- human-readable table ------------------------------------------ *)

let table_cell (v : Metrics.value) =
  match v with
  | Metrics.Counter_value n -> string_of_int n
  | Metrics.Gauge_value x -> float_str x
  | Metrics.Timer_value { events; seconds } ->
      Printf.sprintf "%s s / %d timing%s" (float_str seconds) events
        (if events = 1 then "" else "s")
  | Metrics.Histogram_value { bounds; counts; sum; observations } ->
      let b = Buffer.create 64 in
      Buffer.add_string b
        (Printf.sprintf "n=%d sum=%s |" observations (float_str sum));
      Array.iteri
        (fun i c ->
          if c > 0 then
            Buffer.add_string b
              (Printf.sprintf " le %s: %d;"
                 (if i < Array.length bounds then float_str bounds.(i)
                  else "+inf")
                 c))
        counts;
      Buffer.contents b

let to_table r =
  let samples = Metrics.samples r in
  if samples = [] then "(no metrics recorded)\n"
  else begin
    let width =
      List.fold_left
        (fun w (s : Metrics.sample) -> max w (String.length s.name))
        6 samples
    in
    let b = Buffer.create 1024 in
    Buffer.add_string b (Printf.sprintf "%-*s  %s\n" width "metric" "value");
    List.iter
      (fun (s : Metrics.sample) ->
        Buffer.add_string b
          (Printf.sprintf "%-*s  %s\n" width s.name (table_cell s.value)))
      samples;
    Buffer.contents b
  end

(* --- JSON ----------------------------------------------------------- *)

let json_value (v : Metrics.value) =
  match v with
  | Metrics.Counter_value n -> string_of_int n
  | Metrics.Gauge_value x -> json_float x
  | Metrics.Timer_value { events; seconds } ->
      Printf.sprintf "{\"events\": %d, \"seconds\": %s}" events
        (json_float seconds)
  | Metrics.Histogram_value { bounds; counts; sum; observations } ->
      let bucket i =
        let le =
          if i < Array.length bounds then json_float bounds.(i)
          else "\"+inf\""
        in
        Printf.sprintf "{\"le\": %s, \"count\": %d}" le counts.(i)
      in
      Printf.sprintf
        "{\"observations\": %d, \"sum\": %s, \"buckets\": [%s]}" observations
        (json_float sum)
        (String.concat ", " (List.init (Array.length counts) bucket))

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  let samples = Metrics.samples r in
  List.iteri
    (fun i (s : Metrics.sample) ->
      Buffer.add_string b
        (Printf.sprintf "  %s: %s%s\n" (json_string s.name)
           (json_value s.value)
           (if i = List.length samples - 1 then "" else ",")))
    samples;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* --- Prometheus text exposition ------------------------------------ *)

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else float_str x

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let prom_name name = "dpm_" ^ sanitize name

(* Exposition-format escaping (text format 0.0.4): HELP text escapes
   backslash and newline — a raw newline would start a bogus sample
   line; label values additionally escape double quotes. *)
let prom_escape ~quote s =
  let b = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_help = prom_escape ~quote:false
let prom_label_value = prom_escape ~quote:true

let to_prometheus r =
  let b = Buffer.create 1024 in
  let header name kind help =
    if help <> "" then
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" name (prom_help help));
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = prom_name s.name in
      match s.value with
      | Metrics.Counter_value n ->
          header name "counter" s.help;
          Buffer.add_string b (Printf.sprintf "%s %d\n" name n)
      | Metrics.Gauge_value x ->
          header name "gauge" s.help;
          Buffer.add_string b (Printf.sprintf "%s %s\n" name (prom_float x))
      | Metrics.Timer_value { events; seconds } ->
          let name =
            if Filename.check_suffix name "_seconds" then name
            else name ^ "_seconds"
          in
          header name "summary" s.help;
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" name (prom_float seconds));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" name events)
      | Metrics.Histogram_value { bounds; counts; sum; observations } ->
          header name "histogram" s.help;
          let cumulative = ref 0 in
          Array.iteri
            (fun i c ->
              cumulative := !cumulative + c;
              let le =
                if i < Array.length bounds then prom_float bounds.(i)
                else "+Inf"
              in
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                   (prom_label_value le) !cumulative))
            counts;
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" name (prom_float sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count %d\n" name observations))
    (Metrics.samples r);
  Buffer.contents b
