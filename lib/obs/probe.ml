let active : Metrics.t option ref = ref None

let set_active r = active := r
let current () = !active
let enabled () = Option.is_some !active

let with_active r f =
  let prev = !active in
  active := Some r;
  Fun.protect ~finally:(fun () -> active := prev) f

let now = Unix.gettimeofday

let incr name =
  match !active with None -> () | Some r -> Metrics.incr (Metrics.counter r name)

let add name n =
  match !active with None -> () | Some r -> Metrics.add (Metrics.counter r name) n

let set name v =
  match !active with None -> () | Some r -> Metrics.set (Metrics.gauge r name) v

let set_max name v =
  match !active with
  | None -> ()
  | Some r -> Metrics.set_max (Metrics.gauge r name) v

let observe name ~buckets v =
  match !active with
  | None -> ()
  | Some r -> Metrics.observe (Metrics.histogram r ~buckets name) v

let record name seconds =
  match !active with
  | None -> ()
  | Some r -> Metrics.record (Metrics.timer r name) seconds

let time name f =
  match !active with
  | None -> f ()
  | Some r ->
      let tm = Metrics.timer r name in
      let t0 = now () in
      Fun.protect ~finally:(fun () -> Metrics.record tm (now () -. t0)) f
