(* The active registry is read from every domain that runs
   instrumented library code (the Dpm_par pool workers included), so
   the sink is an [Atomic.t] rather than a plain ref: installs are
   rare, reads are a single atomic load. *)
let active : Metrics.t option Atomic.t = Atomic.make None

let set_active r = Atomic.set active r
let current () = Atomic.get active
let enabled () = Option.is_some (Atomic.get active)

let with_active r f =
  let prev = Atomic.get active in
  Atomic.set active (Some r);
  Fun.protect ~finally:(fun () -> Atomic.set active prev) f

let now = Unix.gettimeofday

let incr name =
  match Atomic.get active with
  | None -> ()
  | Some r -> Metrics.incr (Metrics.counter r name)

let add name n =
  match Atomic.get active with
  | None -> ()
  | Some r -> Metrics.add (Metrics.counter r name) n

let set name v =
  match Atomic.get active with
  | None -> ()
  | Some r -> Metrics.set (Metrics.gauge r name) v

let set_max name v =
  match Atomic.get active with
  | None -> ()
  | Some r -> Metrics.set_max (Metrics.gauge r name) v

let observe name ~buckets v =
  match Atomic.get active with
  | None -> ()
  | Some r -> Metrics.observe (Metrics.histogram r ~buckets name) v

let record name seconds =
  match Atomic.get active with
  | None -> ()
  | Some r -> Metrics.record (Metrics.timer r name) seconds

let time name f =
  match Atomic.get active with
  | None -> f ()
  | Some r ->
      let tm = Metrics.timer r name in
      let t0 = now () in
      Fun.protect ~finally:(fun () -> Metrics.record tm (now () -. t0)) f
