(* Innermost-first, so pushing a scope is a cons.  The stack is
   domain-local: spans opened by parallel workers (Dpm_par) nest
   within that worker's own scope chain instead of racing on one
   global stack. *)
let stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let path () = List.rev !(Domain.DLS.get stack)

let with_ name f =
  match Probe.current () with
  | None -> f ()
  | Some r ->
      let stack = Domain.DLS.get stack in
      let saved = !stack in
      let dotted =
        String.concat "." (List.rev_append saved [ name ]) |> ( ^ ) "span."
      in
      let tm = Metrics.timer r dotted in
      stack := name :: saved;
      let t0 = Probe.now () in
      Fun.protect
        ~finally:(fun () ->
          stack := saved;
          Metrics.record tm (Probe.now () -. t0))
        f
