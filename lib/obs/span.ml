(* Innermost-first, so pushing a scope is a cons. *)
let stack : string list ref = ref []

let path () = List.rev !stack

let with_ name f =
  match Probe.current () with
  | None -> f ()
  | Some r ->
      let saved = !stack in
      let dotted =
        String.concat "." (List.rev_append saved [ name ]) |> ( ^ ) "span."
      in
      let tm = Metrics.timer r dotted in
      stack := name :: saved;
      let t0 = Probe.now () in
      Fun.protect
        ~finally:(fun () ->
          stack := saved;
          Metrics.record tm (Probe.now () -. t0))
        f
