(* Innermost-first, so pushing a scope is a cons.  The stack is
   domain-local: spans opened by parallel workers (Dpm_par) nest
   within that worker's own scope chain instead of racing on one
   global stack. *)
let stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let path () = List.rev !(Domain.DLS.get stack)

let with_ name f =
  let metrics = Probe.current () in
  let tracing = Dpm_trace.Recorder.current () in
  match (metrics, tracing) with
  | None, None -> f ()
  | _ ->
      let stack = Domain.DLS.get stack in
      let saved = !stack in
      let tm =
        match metrics with
        | None -> None
        | Some r ->
            let dotted =
              String.concat "." (List.rev_append saved [ name ])
              |> ( ^ ) "span."
            in
            Some (Metrics.timer r dotted)
      in
      stack := name :: saved;
      (match tracing with
      | None -> ()
      | Some t -> Dpm_trace.Recorder.emit t Dpm_trace.Event.Begin name);
      let t0 = Probe.now () in
      Fun.protect
        ~finally:(fun () ->
          stack := saved;
          let dt = Probe.now () -. t0 in
          (match tracing with
          | None -> ()
          | Some t -> Dpm_trace.Recorder.emit t Dpm_trace.Event.End name);
          match tm with None -> () | Some tm -> Metrics.record tm dt)
        f
