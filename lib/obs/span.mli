(** Hierarchical wall-clock spans.

    A span is a named, nested timing scope: entering span ["evaluate"]
    inside span ["policy_iteration"] accumulates into the timer
    [span.policy_iteration.evaluate] of the active {!Probe} registry.
    Each distinct path gets one {!Metrics.timer}, so repeated passes
    through the same scope aggregate (count + total seconds) rather
    than producing a trace.

    Like all probes, spans are free when no registry is active: the
    body runs directly, with no clock read and no allocation. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside span [name], nested under the
    currently open spans.  The scope is closed (and the parent path
    restored) even if [f] raises.  [name] should not contain dots —
    they would be indistinguishable from nesting in the recorded
    path. *)

val path : unit -> string list
(** Currently open spans, outermost first.  Empty when disabled or at
    top level; useful in tests. *)
