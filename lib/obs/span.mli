(** Hierarchical wall-clock spans.

    A span is a named, nested timing scope with two sinks.  Into the
    active {!Probe} registry it {e aggregates}: entering span
    ["evaluate"] inside span ["policy_iteration"] accumulates into the
    timer [span.policy_iteration.evaluate], one {!Metrics.timer} per
    distinct path (count + total seconds).  Into the active
    [Dpm_trace.Recorder] — when one is installed — it additionally
    emits begin/end {e timeline events}, so the same instrumentation
    points appear as nested duration slices in a Chrome/Perfetto
    trace.  Either sink may be active without the other.

    Like all probes, spans are free when neither sink is active: the
    body runs directly, with no clock read and no allocation. *)

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside span [name], nested under the
    currently open spans.  The scope is closed (and the parent path
    restored) even if [f] raises.  [name] should not contain dots —
    they would be indistinguishable from nesting in the recorded
    path. *)

val path : unit -> string list
(** Currently open spans, outermost first.  Empty when disabled or at
    top level; useful in tests. *)
