type counter = { mutable count : int }
type gauge = { mutable value : float }
type timer = { mutable events : int; mutable seconds : float }

type histogram = {
  bounds : float array;
  counts : int array; (* length = Array.length bounds + 1; last = overflow *)
  mutable sum : float;
  mutable observations : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Timer of timer
  | Histogram of histogram

(* The hash table is the only structure shared across domains that is
   not safe to mutate concurrently, so registration and snapshots take
   [lock].  Updates through metric handles stay lock-free: they are
   single-word field mutations, memory-safe under the OCaml 5 memory
   model (concurrent updates to the *same* metric may lose increments,
   which is an accepted trade for a zero-cost hot path — the parallel
   layer gives each domain its own timers where exactness matters). *)
type t = { tbl : (string, string * metric) Hashtbl.t; lock : Mutex.t }

let create () = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let locked r f =
  Mutex.lock r.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock r.lock) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Timer _ -> "timer"
  | Histogram _ -> "histogram"

let register r name help make project =
  if name = "" then invalid_arg "Metrics: empty metric name";
  locked r @@ fun () ->
  match Hashtbl.find_opt r.tbl name with
  | Some (_, m) -> (
      match project m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a %s" name
               (kind_name m)))
  | None ->
      let m, v = make () in
      Hashtbl.replace r.tbl name (help, m);
      v

let counter r ?(help = "") name =
  register r name help
    (fun () ->
      let c = { count = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge r ?(help = "") name =
  register r name help
    (fun () ->
      let g = { value = 0.0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let timer r ?(help = "") name =
  register r name help
    (fun () ->
      let t = { events = 0; seconds = 0.0 } in
      (Timer t, t))
    (function Timer t -> Some t | _ -> None)

let histogram r ?(help = "") ~buckets name =
  register r name help
    (fun () ->
      let n = Array.length buckets in
      if n = 0 then invalid_arg "Metrics.histogram: no buckets";
      for i = 0 to n - 1 do
        if not (Float.is_finite buckets.(i)) then
          invalid_arg "Metrics.histogram: non-finite bucket bound";
        if i > 0 && buckets.(i) <= buckets.(i - 1) then
          invalid_arg "Metrics.histogram: bounds must be strictly increasing"
      done;
      let h =
        {
          bounds = Array.copy buckets;
          counts = Array.make (n + 1) 0;
          sum = 0.0;
          observations = 0;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let set g v = g.value <- v
let set_max g v = if v > g.value then g.value <- v

let record t seconds =
  t.events <- t.events + 1;
  t.seconds <- t.seconds +. seconds

let observe h v =
  h.sum <- h.sum +. v;
  h.observations <- h.observations + 1;
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1

type value =
  | Counter_value of int
  | Gauge_value of float
  | Timer_value of { events : int; seconds : float }
  | Histogram_value of {
      bounds : float array;
      counts : int array;
      sum : float;
      observations : int;
    }

type sample = { name : string; help : string; value : value }

let value_of = function
  | Counter c -> Counter_value c.count
  | Gauge g -> Gauge_value g.value
  | Timer t -> Timer_value { events = t.events; seconds = t.seconds }
  | Histogram h ->
      Histogram_value
        {
          bounds = Array.copy h.bounds;
          counts = Array.copy h.counts;
          sum = h.sum;
          observations = h.observations;
        }

let samples r =
  locked r (fun () ->
      Hashtbl.fold
        (fun name (help, m) acc -> { name; help; value = value_of m } :: acc)
        r.tbl [])
  |> List.sort (fun a b -> compare a.name b.name)

let find r name =
  locked r (fun () ->
      Option.map (fun (_, m) -> value_of m) (Hashtbl.find_opt r.tbl name))

let is_empty r = locked r (fun () -> Hashtbl.length r.tbl = 0)
