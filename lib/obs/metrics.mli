(** Metrics registry: counters, gauges, timers, and fixed-bucket
    histograms.

    A registry is a flat namespace of metrics keyed by dotted names
    ([lu.factorizations], [sim.events.arrival], ...).  Registration is
    idempotent: asking twice for the same name returns the same
    metric, so instrumentation sites can re-register on every call
    without coordination.  Registering a name as two different kinds
    raises [Invalid_argument].

    The registry itself is a hash table with mutable cells — updating
    a metric through its handle is a single field mutation and never
    allocates, which is what makes per-event instrumentation of the
    simulator's hot loop affordable.  Rendering is done by {!Report}
    from the {!samples} snapshot.

    Domain safety: registration and snapshots are serialized by a
    mutex, so instrumented code may run on {!Dpm_par} pool workers.
    Handle updates remain lock-free single-word mutations — always
    memory-safe, but concurrent updates of the {e same} metric from
    several domains may drop increments; use per-domain metric names
    (as the pool's [par.domain.<k>.*] timers do) where exact counts
    matter under parallelism. *)

type t
(** A metrics registry. *)

type counter
(** Monotone integer count (events, factorizations, pivots). *)

type gauge
(** Instantaneous float value (last gain, heap high-water mark). *)

type timer
(** Accumulated wall-clock: number of recordings and total seconds. *)

type histogram
(** Fixed-bucket distribution: observation [v] lands in the first
    bucket whose upper bound satisfies [v <= bound], or in the
    implicit overflow bucket. *)

val create : unit -> t
(** A fresh, empty registry. *)

val counter : t -> ?help:string -> string -> counter
(** Register (or re-fetch) the counter [name]. *)

val gauge : t -> ?help:string -> string -> gauge
(** Register (or re-fetch) the gauge [name]. *)

val timer : t -> ?help:string -> string -> timer
(** Register (or re-fetch) the timer [name]. *)

val histogram : t -> ?help:string -> buckets:float array -> string -> histogram
(** [buckets] are strictly increasing finite upper bounds; raises
    [Invalid_argument] otherwise.  On re-registration the existing
    histogram is returned and [buckets] is ignored. *)

val incr : counter -> unit
(** Add one. *)

val add : counter -> int -> unit
(** Add [n] (negative deltas are a programming error, not checked). *)

val set : gauge -> float -> unit
(** Overwrite the gauge value. *)

val set_max : gauge -> float -> unit
(** High-water mark: keeps the larger of the stored and given value. *)

val record : timer -> float -> unit
(** [record t seconds] adds one timed interval. *)

val observe : histogram -> float -> unit
(** Count [v] into its bucket and the running sum. *)

(** {1 Snapshots} *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Timer_value of { events : int; seconds : float }
  | Histogram_value of {
      bounds : float array;
      counts : int array;
          (** per-bucket (not cumulative); [counts.(Array.length bounds)]
              is the overflow bucket *)
      sum : float;
      observations : int;
    }

type sample = { name : string; help : string; value : value }

val samples : t -> sample list
(** All metrics, sorted by name.  Arrays in histogram values are
    copies; the snapshot is immutable. *)

val find : t -> string -> value option
(** Snapshot one metric by name. *)

val is_empty : t -> bool
(** [true] iff nothing has been registered. *)
