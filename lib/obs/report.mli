(** Render a {!Metrics} registry.

    Three formats, all deterministic (metrics sorted by name) so
    renderings of the same registry are directly diffable across
    runs:

    - {!to_table}: aligned human-readable text for terminals;
    - {!to_json}: a single JSON object keyed by metric name — the
      machine interchange format ([bench_metrics.json],
      [dpm_cli --metrics=json]).  Non-finite floats render as [null],
      never as the invalid literals [nan]/[inf];
    - {!to_prometheus}: Prometheus text exposition format (version
      0.0.4).  Names are sanitized ([a-zA-Z0-9_]) and prefixed with
      [dpm_]; timers render as summaries ([_seconds_sum]/
      [_seconds_count]), histograms with cumulative [_bucket{le=...}]
      series. *)

val to_table : Metrics.t -> string
(** Aligned two-column text table. *)

val to_json : Metrics.t -> string
(** One JSON object keyed by metric name. *)

val to_prometheus : Metrics.t -> string
(** Prometheus text exposition; help strings have backslashes and
    newlines escaped so hostile metric help cannot break the
    format. *)

val prom_help : string -> string
(** Escape a HELP text for the exposition format: backslash and
    newline become their backslash escapes; quotes stay bare. *)

val prom_label_value : string -> string
(** Escape a label value: like {!prom_help} plus double quotes. *)
