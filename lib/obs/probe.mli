(** Process-wide instrumentation sink.

    Library code (solvers, linear algebra, the simulator) is
    instrumented against this module rather than against an explicit
    registry, so callers that do not care about telemetry pay almost
    nothing: when no registry is active every probe is a single
    match on an immediate value — no allocation, no hash lookup, no
    clock read.  When a registry {e is} active (CLI [--metrics], the
    bench harness, tests) the probes resolve metrics by name in the
    active registry.

    Hot loops that fire many probes per event should resolve their
    metric handles once via {!current} + {!Metrics.counter} and
    update through the handles (see [Power_sim]). *)

val set_active : Metrics.t option -> unit
(** Install (or, with [None], remove) the process-wide registry. *)

val current : unit -> Metrics.t option
(** The active registry, if any. *)

val enabled : unit -> bool
(** [true] iff a registry is active. *)

val with_active : Metrics.t -> (unit -> 'a) -> 'a
(** Run a thunk with the given registry active, restoring the
    previous sink afterwards (also on exceptions). *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); exposed so instrumented
    libraries need not link [unix] themselves. *)

(** All of the following are silent no-ops when no registry is
    active. *)

val incr : string -> unit
(** Add one to counter [name]. *)

val add : string -> int -> unit
(** Add [n] to counter [name]. *)

val set : string -> float -> unit
(** Overwrite gauge [name]. *)

val set_max : string -> float -> unit
(** High-water-mark gauge [name]. *)

val observe : string -> buckets:float array -> float -> unit
(** Observe into histogram [name] (buckets fixed at first use). *)

val record : string -> float -> unit
(** Add one timed interval to timer [name]. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f], recording its wall-clock duration into
    timer [name] (also on exceptions).  Disabled: exactly [f ()]. *)
