open Dpm_linalg

exception Not_irreducible of string

let gth ?(guard = fun () -> ()) g =
  let n = Generator.dim g in
  if n = 1 then [| 1.0 |]
  else begin
    (* Work on the off-diagonal rates only; GTH never consults the
       diagonal and performs only additions/multiplications/divisions,
       hence its numerical robustness. *)
    let a = Generator.to_matrix g in
    for i = 0 to n - 1 do
      Matrix.set a i i 0.0
    done;
    (* Elimination: fold state k into states 0..k-1. *)
    for k = n - 1 downto 1 do
      guard ();
      let s = ref 0.0 in
      for j = 0 to k - 1 do
        s := !s +. Matrix.get a k j
      done;
      if !s > 0.0 then begin
        for i = 0 to k - 1 do
          Matrix.set a i k (Matrix.get a i k /. !s)
        done;
        for i = 0 to k - 1 do
          let aik = Matrix.get a i k in
          if aik > 0.0 then
            for j = 0 to k - 1 do
              if j <> i then
                Matrix.set a i j (Matrix.get a i j +. (aik *. Matrix.get a k j))
            done
        done
      end
    done;
    (* Back substitution. *)
    let p = Vec.create n in
    p.(0) <- 1.0;
    for k = 1 to n - 1 do
      let acc = ref 0.0 in
      for i = 0 to k - 1 do
        acc := !acc +. (p.(i) *. Matrix.get a i k)
      done;
      p.(k) <- !acc
    done;
    Vec.normalize1 p
  end

let lu_solve g =
  let n = Generator.dim g in
  (* Solve G^T p = 0 with the last equation replaced by sum p = 1. *)
  let a = Matrix.transpose (Generator.to_matrix g) in
  for j = 0 to n - 1 do
    Matrix.set a (n - 1) j 1.0
  done;
  let b = Vec.create n in
  b.(n - 1) <- 1.0;
  Lu.solve a b

let iterative ?tol ?max_iter ?guard g =
  Iterative.gauss_seidel_steady ?tol ?max_iter ?guard (Generator.to_sparse g)

let implicit ?tol ?max_iter ?guard ?init ?order op =
  Operator.gauss_seidel_steady ?tol ?max_iter ?guard ?init ?order op

let solve_irreducible ?guard g =
  if Generator.is_dense_backed g then gth ?guard g
  else begin
    let r = iterative ?guard g in
    if not r.Iterative.converged then begin
      (* Fall back on the exact dense path rather than return garbage;
         the fallback is counted so operators can see sweeps failing. *)
      Dpm_obs.Probe.incr "steady_state.gth_fallbacks";
      gth ?guard g
    end
    else r.Iterative.solution
  end

(* Restrict the generator to a subset of states (which must be closed:
   no rates leaving the subset). *)
let restrict g members =
  let members = Array.of_list (List.sort compare members) in
  let m = Array.length members in
  let local = Hashtbl.create m in
  Array.iteri (fun k s -> Hashtbl.replace local s k) members;
  let rates = ref [] in
  Array.iter
    (fun s ->
      Generator.iter_row g s (fun j r ->
          match Hashtbl.find_opt local j with
          | Some j' -> rates := (Hashtbl.find local s, j', r) :: !rates
          | None ->
              raise
                (Not_irreducible
                   (Printf.sprintf "class is not closed: %d -> %d leaves it" s j))))
    members;
  (Generator.of_rates ~dim:m !rates, members)

let solve ?(check = false) ?guard g =
  ignore check;
  (* GTH (and the iterative sweeps) assume an irreducible chain, but
     policy-induced chains routinely have transient states (states the
     closed-loop dynamics never revisit).  Classify first: a unique
     closed class gets solved in isolation and zero-extended; several
     closed classes mean the limiting distribution depends on the
     start state, which we refuse. *)
  match Structure.recurrent_classes g with
  | [] -> raise (Not_irreducible "chain has no closed class")
  | [ members ] ->
      if List.length members = Generator.dim g then solve_irreducible ?guard g
      else begin
        let sub, index_of = restrict g members in
        let p_sub = solve_irreducible ?guard sub in
        let p = Vec.create (Generator.dim g) in
        Array.iteri (fun k s -> p.(s) <- p_sub.(k)) index_of;
        p
      end
  | cs ->
      raise
        (Not_irreducible
           (Printf.sprintf "chain has %d closed classes; the limiting \
                            distribution is not unique"
              (List.length cs)))

let residual g p = Vec.norm_inf (Sparse.vec_mul p (Generator.to_sparse g))

let expected_value p f =
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. (pi *. f i)) p;
  !acc
