(** Limiting (steady-state) distributions — Theorem 2.1.

    For an irreducible positive-recurrent chain, the limiting
    distribution is the unique solution of [p G = 0], [sum p = 1].
    Three solvers are provided:

    - {!gth}: the Grassmann-Taksar-Heyman elimination, which performs
      no subtractions and is therefore backward stable even for the
      stiff generators produced by the big-M self-switch rate
      (DESIGN.md decision 1);
    - {!lu_solve}: replace one balance equation with the
      normalization and solve by LU — the textbook approach;
    - {!iterative}: sparse Gauss-Seidel for large state spaces.

    [solve] picks GTH for dense-backed generators and Gauss-Seidel
    for sparse-backed ones. *)

open Dpm_linalg

exception Not_irreducible of string
(** Raised by {!solve} when the chain has zero or several closed
    communicating classes, i.e. no start-state-independent limiting
    distribution exists (Theorem 2.1 requires a unique one). *)

val gth : ?guard:(unit -> unit) -> Generator.t -> Vec.t
(** [gth g] computes the stationary distribution by GTH elimination.
    [guard] (default no-op) is invoked before each elimination step
    and may raise to abort — the [Dpm_robust] deadline hook.
    O(n^3) time, O(n^2) space (densifies sparse inputs).  Exact up to
    rounding for {e irreducible} generators only — the back
    substitution anchors the measure at state 0, so a transient
    state 0 silently corrupts the result; use {!solve}, which
    classifies states first, on chains that may have transient
    states. *)

val lu_solve : Generator.t -> Vec.t
(** [lu_solve g] solves the transposed balance equations with the
    normalization row substituted.  Raises [Lu.Singular] when the
    chain has more than one closed class. *)

val iterative :
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  Generator.t ->
  Iterative.result
(** [iterative g] runs sparse Gauss-Seidel sweeps (see
    {!Dpm_linalg.Iterative.gauss_seidel_steady}). *)

val implicit :
  ?tol:float ->
  ?max_iter:int ->
  ?guard:(unit -> unit) ->
  ?init:Vec.t ->
  ?order:int array ->
  Operator.t ->
  Iterative.result
(** [implicit op] runs the same stationary Gauss-Seidel sweeps
    directly on a lazy operator (see
    {!Dpm_linalg.Operator.gauss_seidel_steady}) — the generator is
    never materialized, so a composed SYS from
    [Sys_model.operator] solves in O(stored factors) memory rather
    than O(nnz).  [op] must be a square generator (rows summing to
    zero); agreement with {!iterative} on the materialized form is
    pinned by tests.  [init] is the starting iterate (default
    uniform); a structure-informed guess such as
    [Sys_model.stationary_hint] removes the depth-proportional
    transient that draining the uniform iterate's tail mass costs.
    [order] is the sweep permutation — pass a flow-aligned order
    (e.g. [Sys_model.sweep_order]) to keep the per-sweep correction
    transport independent of the chain's depth. *)

val solve : ?check:bool -> ?guard:(unit -> unit) -> Generator.t -> Vec.t
(** [solve g] computes the limiting distribution of any chain with a
    unique closed class: it classifies states (Tarjan), solves the
    closed class in isolation (GTH for dense-backed generators,
    Gauss-Seidel with a GTH fallback for sparse ones — fallbacks are
    counted as [steady_state.gth_fallbacks]) and assigns probability
    zero to transient states.  Raises {!Not_irreducible} when the
    closed class is not unique.  [check] is kept for interface
    stability and ignored — classification always runs.  [guard] is
    threaded into the GTH elimination and the sweeps (see {!gth}). *)

val residual : Generator.t -> Vec.t -> float
(** [residual g p] is [norm_inf (p G)] — how well [p] balances. *)

val expected_value : Vec.t -> (int -> float) -> float
(** [expected_value p f] is [sum_i p_i * f i], the stationary
    expectation of a state function — used for the paper's
    "functional values" of power and queue length. *)
