(** Bounded FIFO ingestion queues with drop accounting.

    The serving daemon slurps arrival events in bursts (everything the
    transport has buffered) before it answers the next query.  An
    unbounded buffer would turn a misbehaving client into unbounded
    memory growth; this queue instead caps the burst and {e counts}
    what it sheds, so backpressure is visible in the daemon's stats
    rather than silent.

    Drop policy is drop-newest: a push against a full queue rejects
    the incoming element (the caller sees [false] and can propagate
    backpressure) and leaves the already-accepted elements intact —
    the estimator keeps the oldest evidence, which is the right bias
    for a rate estimator fed in arrival order. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] on a capacity below 1. *)

val push : 'a t -> 'a -> bool
(** [push q x] appends [x] and returns [true], or — when the queue
    already holds [capacity] elements — counts a drop and returns
    [false] without storing [x]. *)

val pop : 'a t -> 'a option
(** Oldest element, or [None] when empty. *)

val length : 'a t -> int
(** Elements currently held. *)

val capacity : 'a t -> int
(** The bound supplied at {!create}; pushes beyond it are dropped. *)

val accepted : 'a t -> int
(** Total elements ever accepted by {!push}. *)

val dropped : 'a t -> int
(** Total elements ever rejected by {!push} against a full queue. *)
