(** Exponential backoff with deterministic jitter for re-solve
    retries.

    A persistently failing re-solve (a wedged solver caught by the
    watchdog deadline, an injected fault storm) must not be retried on
    every arrival: each attempt burns a full deadline budget while the
    daemon should be answering queries.  The engine therefore spaces
    attempts by [cooldown + delay], where [delay] grows geometrically
    with consecutive failures and resets on the first success.

    Jitter is drawn from a seeded {!Dpm_prob.Rng} stream, so a fleet
    of restarting daemons does not retry in lockstep while any single
    configuration remains bit-for-bit reproducible. *)

type t

val create :
  ?base:float ->
  ?factor:float ->
  ?max_delay:float ->
  ?jitter:float ->
  ?seed:int64 ->
  unit ->
  t
(** [base] (default 1.0, sim-time units) is the delay after the first
    failure; each further consecutive failure multiplies it by
    [factor] (default 2.0) up to [max_delay] (default 64.0); the
    result is then scaled by a uniform factor in
    [[1 - jitter, 1 + jitter]] (default [jitter] 0.1).  Raises
    [Invalid_argument] on a non-positive [base]/[factor]/[max_delay]
    or a [jitter] outside [[0, 1)]. *)

val note_failure : t -> unit
(** Record a failed attempt: the current delay becomes
    [min max_delay (base * factor^(failures-1))], jittered. *)

val note_success : t -> unit
(** Reset: consecutive failures and delay return to zero. *)

val delay : t -> float
(** The extra wait (beyond the engine's cooldown) before the next
    attempt; 0 when the last attempt succeeded. *)

val failures : t -> int
(** Consecutive failures since the last success. *)
