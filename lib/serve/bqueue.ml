type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutable accepted : int;
  mutable dropped : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { capacity; q = Queue.create (); accepted = 0; dropped = 0 }

let push t x =
  if Queue.length t.q >= t.capacity then begin
    t.dropped <- t.dropped + 1;
    Dpm_obs.Probe.incr "serve.queue_drops";
    false
  end
  else begin
    Queue.push x t.q;
    t.accepted <- t.accepted + 1;
    true
  end

let pop t = Queue.take_opt t.q
let length t = Queue.length t.q
let capacity t = t.capacity
let accepted t = t.accepted
let dropped t = t.dropped
