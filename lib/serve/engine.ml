open Dpm_core

type stats = {
  events_ingested : int;
  queue_drops : int;
  decisions : int;
  resolves : int;
  resolve_failures : int;
  policy_switches : int;
  checkpoints : int;
  checkpoint_failures : int;
  health_transitions : int;
}

type t = {
  sys : Sys_model.t;
  weight : float;
  fingerprint : int64;
  mutable estimator : Dpm_adapt.Estimator.t;
  health : Health.t;
  backoff : Backoff.t;
  pending : float Bqueue.t;
  safe_actions : int array;
  mutable actions : int array;
  mutable deployed_rate : float;
  min_observations : int;
  cooldown : float;
  deadline_s : float option;
  quantize : float -> float;
  faults : Dpm_robust.Fault.plan option;
  checkpoint_path : string option;
  checkpoint_every : int;
  mutable events_since_checkpoint : int;
  mutable now : float;
  mutable last_attempt : float;
  mutable last_error : Dpm_robust.Error.t option;
  mutable last_provenance : Dpm_trace.Provenance.t option;
  (* counters restored from a checkpoint enter as bases so stats
     survive restarts *)
  mutable ingested_base : int;
  mutable drops_base : int;
  mutable decisions_count : int;
  mutable resolves_count : int;
  mutable resolve_failures_count : int;
  mutable policy_switches_count : int;
  mutable checkpoints_count : int;
  mutable checkpoint_failures_count : int;
  mutable restored : bool;
}

let src = Logs.Src.create "dpm.serve" ~doc:"serving engine"

module Log = (val Logs.src_log src : Logs.LOG)

let trace_resolve ~outcome ~now ~rate ~extra =
  if Dpm_trace.Recorder.enabled () then
    Dpm_trace.Recorder.instant "serve.resolve"
      ~args:
        (("outcome", Dpm_trace.Event.Str outcome)
         :: ("sim_time", Dpm_trace.Event.Float now)
         :: ("rate", Dpm_trace.Event.Float rate)
         :: extra)

(* A stored action table is only deployable if it indexes this state
   space and every entry is a legal command. *)
let actions_valid sys actions =
  Array.length actions = Sys_model.num_states sys
  && Array.for_all2
       (fun a st -> List.mem a (Sys_model.valid_actions sys st))
       actions (Sys_model.states sys)

let create ?(weight = 0.0) ?estimator ?(min_observations = 30)
    ?(cooldown = 100.0) ?deadline_s ?checkpoint_path ?(checkpoint_every = 64)
    ?(queue_capacity = 1024) ?backoff ?faults
    ?(quantize = Dpm_adapt.Adaptive.quantize_log ~per_efold:16) sys =
  if min_observations < 2 then
    invalid_arg "Engine.create: min_observations must be >= 2";
  if cooldown < 0.0 || not (Float.is_finite cooldown) then
    invalid_arg "Engine.create: cooldown must be nonnegative and finite";
  if checkpoint_every < 1 then
    invalid_arg "Engine.create: checkpoint_every must be >= 1";
  let faults =
    match faults with Some _ as f -> f | None -> Dpm_robust.Fault.of_env ()
  in
  let backoff = match backoff with Some b -> b | None -> Backoff.create () in
  let fingerprint =
    Dpm_cache.Fingerprint.model_hash (Sys_model.to_ctmdp sys ~weight)
  in
  let safe_actions = Policies.actions_array sys (Policies.always_on sys) in
  let fresh_estimator () =
    match estimator with
    | Some e -> e
    | None -> Dpm_adapt.Estimator.sliding_window ~window:50 ()
  in
  let make ~estimator ~health ~actions ~deployed_rate ~last_provenance
      ~ingested_base ~drops_base ~restored =
    {
      sys;
      weight;
      fingerprint;
      estimator;
      health;
      backoff;
      pending = Bqueue.create ~capacity:queue_capacity;
      safe_actions;
      actions;
      deployed_rate;
      min_observations;
      cooldown;
      deadline_s;
      quantize;
      faults;
      checkpoint_path;
      checkpoint_every;
      events_since_checkpoint = 0;
      now = 0.0;
      last_attempt = neg_infinity;
      last_error = None;
      last_provenance;
      ingested_base;
      drops_base;
      decisions_count = 0;
      resolves_count = 0;
      resolve_failures_count = 0;
      policy_switches_count = 0;
      checkpoints_count = 0;
      checkpoint_failures_count = 0;
      restored;
    }
  in
  let cold_start () =
    let guard = Dpm_robust.Fault.guard_opt faults in
    match
      Dpm_robust.Guard.run ~stage:"serve.cold_solve" (fun () ->
          Optimize.solve ~weight ~guard sys)
    with
    | Ok solution ->
        make ~estimator:(fresh_estimator ())
          ~health:(Health.create Health.Healthy)
          ~actions:solution.Optimize.actions
          ~deployed_rate:(Sys_model.arrival_rate sys)
          ~last_provenance:(Some solution.Optimize.provenance)
          ~ingested_base:0 ~drops_base:0 ~restored:false
    | Error e ->
        Log.warn (fun m ->
            m "cold solve failed (%s); starting in safe mode"
              (Dpm_robust.Error.to_string e));
        let t =
          make ~estimator:(fresh_estimator ())
            ~health:(Health.create Health.Safe_mode)
            ~actions:(Array.copy safe_actions)
            ~deployed_rate:(Sys_model.arrival_rate sys) ~last_provenance:None
            ~ingested_base:0 ~drops_base:0 ~restored:false
        in
        t.last_error <- Some e;
        t
  in
  let safe_start ~reason ~ingested_base ~drops_base =
    Log.warn (fun m -> m "checkpoint rejected (%s); pinning safe policy" reason);
    Dpm_obs.Probe.incr "serve.checkpoint_rejected";
    let health = Health.create Health.Healthy in
    Health.apply health Health.Checkpoint_invalid ~now:0.0;
    make ~estimator:(fresh_estimator ()) ~health
      ~actions:(Array.copy safe_actions)
      ~deployed_rate:(Sys_model.arrival_rate sys) ~last_provenance:None
      ~ingested_base ~drops_base ~restored:false
  in
  let t =
    match checkpoint_path with
    | Some path when Sys.file_exists path -> (
        match Checkpoint.load ~path with
        | Error msg ->
            Log.warn (fun m ->
                m "unreadable checkpoint %s (%s); cold start" path msg);
            cold_start ()
        | Ok cp ->
            if cp.Checkpoint.fingerprint <> fingerprint then
              safe_start ~reason:"fingerprint mismatch"
                ~ingested_base:cp.Checkpoint.events_ingested
                ~drops_base:cp.Checkpoint.drops
            else if not (actions_valid sys cp.Checkpoint.actions) then
              safe_start ~reason:"invalid action table"
                ~ingested_base:cp.Checkpoint.events_ingested
                ~drops_base:cp.Checkpoint.drops
            else (
              match Dpm_adapt.Estimator.of_json cp.Checkpoint.estimator with
              | Error msg ->
                  safe_start ~reason:msg
                    ~ingested_base:cp.Checkpoint.events_ingested
                    ~drops_base:cp.Checkpoint.drops
              | Ok est ->
                  Dpm_obs.Probe.incr "serve.restores";
                  if Dpm_trace.Recorder.enabled () then
                    Dpm_trace.Recorder.instant "serve.restore"
                      ~args:
                        [
                          ( "saved_at",
                            Dpm_trace.Event.Float cp.Checkpoint.saved_at );
                          ( "health",
                            Dpm_trace.Event.Str
                              (Health.state_to_string cp.Checkpoint.health) );
                        ];
                  make ~estimator:est
                    ~health:
                      (Health.create ~now:cp.Checkpoint.saved_at
                         cp.Checkpoint.health)
                    ~actions:(Array.copy cp.Checkpoint.actions)
                    ~deployed_rate:cp.Checkpoint.deployed_rate
                    ~last_provenance:None
                    ~ingested_base:cp.Checkpoint.events_ingested
                    ~drops_base:cp.Checkpoint.drops ~restored:true))
    | Some _ | None -> cold_start ()
  in
  Dpm_obs.Probe.set "serve.deployed_rate" t.deployed_rate;
  t

let events_ingested t = t.ingested_base + Bqueue.accepted t.pending
let queue_drops t = t.drops_base + Bqueue.dropped t.pending

let offer_arrival t ~at =
  if not (Float.is_finite at) then false
  else begin
    let accepted = Bqueue.push t.pending at in
    if accepted then Dpm_obs.Probe.incr "serve.events_ingested";
    accepted
  end

let checkpoint t =
  match t.checkpoint_path with
  | None -> Error "no checkpoint path configured"
  | Some path -> (
      let cp =
        {
          Checkpoint.saved_at = t.now;
          fingerprint = t.fingerprint;
          deployed_rate = t.deployed_rate;
          weight = t.weight;
          actions = Array.copy t.actions;
          health = Health.state t.health;
          estimator = Dpm_adapt.Estimator.to_json t.estimator;
          events_ingested = events_ingested t;
          drops = queue_drops t;
        }
      in
      match Checkpoint.save ~path cp with
      | Ok () ->
          t.checkpoints_count <- t.checkpoints_count + 1;
          t.events_since_checkpoint <- 0;
          Ok path
      | Error msg ->
          t.checkpoint_failures_count <- t.checkpoint_failures_count + 1;
          Dpm_obs.Probe.incr "serve.checkpoint_failures";
          Log.warn (fun m -> m "checkpoint to %s failed: %s" path msg);
          Error msg)

(* The estimate worth re-solving for.  Healthy/Degraded: drift-gated
   like [Dpm_adapt.Adaptive] — only when the deployed rate falls
   outside the estimator's confidence band.  Safe_mode: any attempt
   is worth making (the incumbent is the pinned safe table, not an
   optimum), at the estimate when one exists, else the nominal
   rate. *)
let resolve_target t =
  match Health.state t.health with
  | Health.Safe_mode ->
      let est =
        if
          Dpm_adapt.Estimator.observations t.estimator >= t.min_observations
        then Dpm_adapt.Estimator.rate t.estimator
        else None
      in
      Some
        (t.quantize (Option.value est ~default:(Sys_model.arrival_rate t.sys)))
  | Health.Healthy | Health.Degraded ->
      if Dpm_adapt.Estimator.observations t.estimator < t.min_observations
      then None
      else (
        match Dpm_adapt.Estimator.band t.estimator with
        | None -> None
        | Some (lo, hi) ->
            if t.deployed_rate < lo || t.deployed_rate > hi then (
              match Dpm_adapt.Estimator.rate t.estimator with
              | None -> None
              | Some est ->
                  let target = t.quantize est in
                  if target <> t.deployed_rate then Some target else None)
            else None)

let attempt_resolve t ~target =
  t.last_attempt <- t.now;
  t.resolves_count <- t.resolves_count + 1;
  Dpm_obs.Probe.incr "serve.resolves";
  Dpm_obs.Probe.set "serve.target_rate" target;
  let guard =
    Dpm_robust.Guard.compose
      [
        Dpm_robust.Fault.guard_opt t.faults;
        Dpm_robust.Guard.of_deadline t.deadline_s;
      ]
  in
  match
    Optimize.solve_at ~weight:t.weight ~init_actions:t.actions ~guard t.sys
      ~arrival_rate:target
  with
  | Ok (_sys_at_target, solution) ->
      t.actions <- solution.Optimize.actions;
      t.deployed_rate <- target;
      t.policy_switches_count <- t.policy_switches_count + 1;
      t.last_error <- None;
      let provenance =
        {
          solution.Optimize.provenance with
          Dpm_trace.Provenance.deadline_s = t.deadline_s;
        }
      in
      t.last_provenance <- Some provenance;
      Backoff.note_success t.backoff;
      Health.apply t.health Health.Resolve_ok ~now:t.now;
      Dpm_obs.Probe.incr "serve.policy_switches";
      Dpm_obs.Probe.set "serve.deployed_rate" target;
      trace_resolve ~outcome:"deployed" ~now:t.now ~rate:target
        ~extra:(Dpm_trace.Provenance.to_args provenance)
  | Error exn ->
      t.resolve_failures_count <- t.resolve_failures_count + 1;
      t.last_error <- Dpm_robust.Error.of_exn exn;
      Backoff.note_failure t.backoff;
      Health.apply t.health Health.Resolve_failed ~now:t.now;
      Dpm_obs.Probe.incr "serve.resolve_failures";
      let cls =
        match t.last_error with
        | Some e -> Dpm_robust.Error.class_name e
        | None -> "unknown"
      in
      Log.warn (fun m ->
          m "re-solve at rate %g failed (%s); %s, retry backoff %gs" target cls
            (Health.state_to_string (Health.state t.health))
            (Backoff.delay t.backoff));
      trace_resolve ~outcome:"failed" ~now:t.now ~rate:target
        ~extra:[ ("error", Dpm_trace.Event.Str cls) ]

let maybe_resolve t =
  if t.now -. t.last_attempt >= t.cooldown +. Backoff.delay t.backoff then
    match resolve_target t with
    | None -> ()
    | Some target -> attempt_resolve t ~target

let rec pump t =
  match Bqueue.pop t.pending with
  | None -> ()
  | Some at ->
      if at > t.now then t.now <- at;
      Dpm_adapt.Estimator.observe_arrival t.estimator ~now:at;
      Health.observe t.health ~now:t.now;
      maybe_resolve t;
      t.events_since_checkpoint <- t.events_since_checkpoint + 1;
      if
        t.checkpoint_path <> None
        && t.events_since_checkpoint >= t.checkpoint_every
      then ignore (checkpoint t : (string, string) result);
      pump t

let decide t state =
  t.decisions_count <- t.decisions_count + 1;
  Dpm_obs.Probe.incr "serve.decisions";
  t.actions.(Sys_model.index t.sys state)

let health t = Health.state t.health
let degraded_fraction t = Health.degraded_fraction t.health
let consecutive_failures t = Backoff.failures t.backoff
let last_error t = t.last_error
let last_provenance t = t.last_provenance
let deployed_rate t = t.deployed_rate
let deployed_actions t = Array.copy t.actions
let now t = t.now
let sys t = t.sys
let restored t = t.restored

let stats t =
  {
    events_ingested = events_ingested t;
    queue_drops = queue_drops t;
    decisions = t.decisions_count;
    resolves = t.resolves_count;
    resolve_failures = t.resolve_failures_count;
    policy_switches = t.policy_switches_count;
    checkpoints = t.checkpoints_count;
    checkpoint_failures = t.checkpoint_failures_count;
    health_transitions = Health.transitions t.health;
  }
