type t = {
  saved_at : float;
  fingerprint : int64;
  deployed_rate : float;
  weight : float;
  actions : int array;
  health : Health.state;
  estimator : Dpm_trace.Json.t;
  events_ingested : int;
  drops : int;
}

let version = 1

let to_json t =
  let open Dpm_trace.Json in
  Obj
    [
      ("version", Num (float_of_int version));
      ("saved_at", Num t.saved_at);
      ("fingerprint", Str (Printf.sprintf "%016Lx" t.fingerprint));
      ("deployed_rate", Num t.deployed_rate);
      ("weight", Num t.weight);
      ( "actions",
        Arr
          (Array.to_list
             (Array.map (fun a -> Num (float_of_int a)) t.actions)) );
      ("health", Str (Health.state_to_string t.health));
      ("estimator", t.estimator);
      ("events_ingested", Num (float_of_int t.events_ingested));
      ("drops", Num (float_of_int t.drops));
    ]

let of_json j =
  let open Dpm_trace.Json in
  let ( let* ) = Result.bind in
  let field name =
    match member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Checkpoint.of_json: missing field %S" name)
  in
  let num name =
    let* v = field name in
    match to_float v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "Checkpoint.of_json: field %S not a number" name)
  in
  let int name =
    let* x = num name in
    Ok (int_of_float x)
  in
  let str name =
    let* v = field name in
    match to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "Checkpoint.of_json: field %S not a string" name)
  in
  let* v = int "version" in
  if v <> version then
    Error (Printf.sprintf "Checkpoint.of_json: unknown version %d" v)
  else
    let* saved_at = num "saved_at" in
    let* fp_hex = str "fingerprint" in
    let* fingerprint =
      match Int64.of_string_opt ("0x" ^ fp_hex) with
      | Some fp when String.length fp_hex = 16 -> Ok fp
      | _ -> Error "Checkpoint.of_json: malformed fingerprint"
    in
    let* deployed_rate = num "deployed_rate" in
    let* weight = num "weight" in
    let* actions_json = field "actions" in
    let* actions =
      match actions_json with
      | Arr xs ->
          let rec collect acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | Num x :: rest when Float.is_integer x ->
                collect (int_of_float x :: acc) rest
            | _ -> Error "Checkpoint.of_json: non-integer action"
          in
          collect [] xs
      | _ -> Error "Checkpoint.of_json: actions must be an array"
    in
    let* health_slug = str "health" in
    let* health =
      match Health.state_of_string health_slug with
      | Some h -> Ok h
      | None ->
          Error (Printf.sprintf "Checkpoint.of_json: unknown health %S" health_slug)
    in
    let* estimator = field "estimator" in
    let* events_ingested = int "events_ingested" in
    let* drops = int "drops" in
    if events_ingested < 0 || drops < 0 then
      Error "Checkpoint.of_json: negative counter"
    else
      Ok
        {
          saved_at;
          fingerprint;
          deployed_rate;
          weight;
          actions;
          health;
          estimator;
          events_ingested;
          drops;
        }

let save ~path t =
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Dpm_trace.Json.to_string (to_json t));
        output_char oc '\n';
        flush oc);
    Sys.rename tmp path
  with
  | () ->
      Dpm_obs.Probe.incr "serve.checkpoints";
      Ok ()
  | exception Sys_error msg -> Error msg

let load ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (
      match Dpm_trace.Json.parse contents with
      | Ok j -> of_json j
      | Error e -> Error (Printf.sprintf "Checkpoint.load: parse error: %s" e))
  | exception Sys_error msg -> Error msg
