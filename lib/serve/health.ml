type state = Healthy | Degraded | Safe_mode
type outcome = Resolve_ok | Resolve_failed | Checkpoint_invalid

let transition state outcome =
  match (state, outcome) with
  | _, Checkpoint_invalid -> Safe_mode
  | _, Resolve_ok -> Healthy
  | Healthy, Resolve_failed -> Degraded
  | (Degraded | Safe_mode), Resolve_failed -> state

let state_to_string = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Safe_mode -> "safe-mode"

let state_of_string = function
  | "healthy" -> Some Healthy
  | "degraded" -> Some Degraded
  | "safe-mode" -> Some Safe_mode
  | _ -> None

let severity = function Healthy -> 0 | Degraded -> 1 | Safe_mode -> 2

let outcome_to_string = function
  | Resolve_ok -> "resolve-ok"
  | Resolve_failed -> "resolve-failed"
  | Checkpoint_invalid -> "checkpoint-invalid"

type t = {
  mutable state : state;
  mutable last_stamp : float;
  time_in : float array;  (* indexed by severity *)
  mutable transitions : int;
}

let create ?(now = 0.0) state =
  Dpm_obs.Probe.set "serve.health" (float_of_int (severity state));
  { state; last_stamp = now; time_in = Array.make 3 0.0; transitions = 0 }

let state t = t.state

let observe t ~now =
  if now > t.last_stamp then begin
    t.time_in.(severity t.state) <-
      t.time_in.(severity t.state) +. (now -. t.last_stamp);
    t.last_stamp <- now
  end

let apply t outcome ~now =
  observe t ~now;
  let next = transition t.state outcome in
  if next <> t.state then begin
    t.transitions <- t.transitions + 1;
    Dpm_obs.Probe.incr "serve.health_transitions";
    if Dpm_trace.Recorder.enabled () then
      Dpm_trace.Recorder.instant "serve.health"
        ~args:
          [
            ("from", Dpm_trace.Event.Str (state_to_string t.state));
            ("to", Dpm_trace.Event.Str (state_to_string next));
            ("outcome", Dpm_trace.Event.Str (outcome_to_string outcome));
            ("sim_time", Dpm_trace.Event.Float now);
          ]
  end;
  t.state <- next;
  Dpm_obs.Probe.set "serve.health" (float_of_int (severity next))

let time_in t state = t.time_in.(severity state)

let degraded_fraction t =
  let total = t.time_in.(0) +. t.time_in.(1) +. t.time_in.(2) in
  if total <= 0.0 then 0.0 else (t.time_in.(1) +. t.time_in.(2)) /. total

let transitions t = t.transitions
