(** The serving engine: incumbent policy, online re-optimization, and
    supervised degradation.

    An engine owns one configured system and answers state-to-action
    queries in O(1) off a deployed policy table, while a guarded
    re-solve loop keeps that table matched to the arrival rate the
    {!Dpm_adapt.Estimator} observes.  It is the daemon-grade sibling
    of {!Dpm_adapt.Adaptive}: the same drift-gated, warm-started,
    deadline-guarded re-solve path through {!Dpm_core.Optimize} and
    {!Dpm_cache}, plus the machinery a long-running process needs —

    - an explicit {!Health} state machine driven by re-solve
      outcomes, with the incumbent policy held on {e every} failure
      and the pinned always-on safe policy
      ({!Dpm_core.Policies.always_on}) deployed when no incumbent can
      be trusted: the engine never refuses a query;
    - exponential {!Backoff} with jitter spacing retries after
      failures, on top of the drift cooldown;
    - a watchdog deadline ([deadline_s], enforced through the solver
      [?guard] hooks and composed with {!Dpm_robust.Fault} injection)
      that aborts wedged re-solves;
    - a bounded ingestion queue ({!Bqueue}) with drop accounting;
    - periodic atomic {!Checkpoint}s and crash recovery on restart.

    Single-threaded by design, like the rest of the repo: callers
    interleave {!offer_arrival} / {!pump} / {!decide} from one
    thread. *)

open Dpm_core

type t

val create :
  ?weight:float ->
  ?estimator:Dpm_adapt.Estimator.t ->
  ?min_observations:int ->
  ?cooldown:float ->
  ?deadline_s:float ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  ?queue_capacity:int ->
  ?backoff:Backoff.t ->
  ?faults:Dpm_robust.Fault.plan ->
  ?quantize:(float -> float) ->
  Sys_model.t ->
  t
(** [create sys] builds an engine serving [sys].

    Startup resolves the incumbent policy in this order:
    + [checkpoint_path] names a readable checkpoint whose fingerprint
      matches [sys]/[weight], whose action table validates against
      {!Dpm_core.Sys_model.valid_actions}, and whose estimator
      decodes: {e full restore} — deployed policy, rate, health and
      estimator continue where the crashed daemon stopped;
    + the checkpoint exists but fails any of those checks: the engine
      starts in [Safe_mode] on the pinned always-on policy (the
      stored table cannot be trusted against this state space) with a
      fresh estimator — it still answers every query;
    + no (or an unparsable) checkpoint: a cold solve of [sys] at its
      nominal rate under fault injection only (no deadline — a
      failure here is a configuration problem, but the engine still
      starts, in [Safe_mode]).

    [weight] (default 0) is the Eqn. (3.1) trade-off weight served.
    [estimator] defaults to a 50-gap sliding window.
    [min_observations] (default 30) gates drift detection;
    [cooldown] (default 100, sim-time) spaces re-solve attempts;
    [deadline_s] (default none) is the per-re-solve wall-clock watchdog
    budget; [checkpoint_every] (default 64) is the arrival count
    between automatic checkpoints (only with [checkpoint_path]);
    [queue_capacity] (default 1024) bounds the ingestion queue;
    [backoff] defaults to {!Backoff.create}[ ()]; [faults] defaults
    to {!Dpm_robust.Fault.of_env}[ ()] so [DPM_FAULTS] reaches the
    daemon's re-solve guard; [quantize] (default
    {!Dpm_adapt.Adaptive.quantize_log} at 16 steps per e-fold) snaps
    re-solve targets for cache reuse.

    Raises [Invalid_argument] on [min_observations < 2], a negative
    or non-finite [cooldown], [checkpoint_every < 1], or
    [queue_capacity < 1]. *)

val offer_arrival : t -> at:float -> bool
(** Enqueue an arrival at absolute sim-time [at] for the next
    {!pump}.  [false] means the bounded queue was full and the event
    was dropped (counted), or [at] was not finite — backpressure the
    transport may surface.  O(1); never solves. *)

val pump : t -> unit
(** Drain the ingestion queue: fold each arrival into the estimator,
    advance the engine clock, and run the re-solve schedule (drift
    gate, cooldown + backoff, guarded [solve_at], health transition,
    periodic checkpoint).  Call before reading answers that should
    reflect all offered events. *)

val decide : t -> Sys_model.state -> int
(** The deployed action for [state] — one array read off the
    incumbent table.  Raises [Invalid_argument] for a state outside
    the system's state space. *)

val health : t -> Health.state
(** The health ladder's current state ({!Health.state}), advanced by
    the same sim-clock as {!now}. *)

val degraded_fraction : t -> float
(** See {!Health.degraded_fraction}; sim-time based. *)

val consecutive_failures : t -> int
(** {!Backoff.failures} of the re-solve retry ladder. *)

val last_error : t -> Dpm_robust.Error.t option
(** The typed error of the most recent failed re-solve; [None] after
    a success (or before any attempt). *)

val last_provenance : t -> Dpm_trace.Provenance.t option
(** Provenance of the solve that produced the deployed policy;
    [None] when serving the pinned safe policy. *)

val deployed_rate : t -> float
(** The arrival rate the deployed policy was solved at. *)

val deployed_actions : t -> int array
(** A copy of the deployed policy table. *)

val now : t -> float
(** The engine's sim-clock: the latest arrival time pumped. *)

val sys : t -> Sys_model.t
(** The system the engine decides over — the state space [decide]
    indexes and every re-solve rebuilds its model from. *)

val restored : t -> bool
(** Whether startup fully restored from a checkpoint. *)

type stats = {
  events_ingested : int;  (** arrivals accepted (incl. pre-restart) *)
  queue_drops : int;  (** arrivals shed by the bounded queue *)
  decisions : int;  (** queries answered *)
  resolves : int;  (** re-solve attempts *)
  resolve_failures : int;
  policy_switches : int;  (** attempts that deployed a new table *)
  checkpoints : int;  (** successful saves this process *)
  checkpoint_failures : int;
  health_transitions : int;
}

val stats : t -> stats
(** Lifetime counters, including those restored from a checkpoint. *)

val checkpoint : t -> (string, string) result
(** Save a checkpoint now; [Ok path] on success.  [Error] when no
    [checkpoint_path] was configured or the write failed (counted as
    a checkpoint failure; the engine keeps serving). *)
