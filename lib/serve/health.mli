(** The daemon's explicit health state machine.

    Three states order the daemon's degradation ladder:

    - [Healthy]: the deployed policy came from a successful solve at
      the current rate estimate;
    - [Degraded]: a re-solve failed, so the daemon is answering off a
      {e stale} incumbent policy — still optimal for some recent rate,
      just not re-validated against the latest estimate;
    - [Safe_mode]: the incumbent itself was invalidated (a checkpoint
      that does not match the configured system, or a failed cold
      solve), so the daemon pinned the always-on safe policy —
      conservative on power, but it answers every query.

    Transitions are driven by re-solve {!outcome}s; the pure
    {!transition} function is exported so tests can pin the whole
    matrix.  The machine also accounts wall-in-state sim-time, which
    is what the chaos bench reports as [degraded_fraction]. *)

type state = Healthy | Degraded | Safe_mode

type outcome =
  | Resolve_ok  (** a guarded re-solve deployed a fresh policy *)
  | Resolve_failed  (** the re-solve errored; incumbent policy held *)
  | Checkpoint_invalid
      (** the restored state could not be trusted (fingerprint
          mismatch, invalid action table); safe policy pinned *)

val transition : state -> outcome -> state
(** The full transition matrix: [Checkpoint_invalid] forces
    [Safe_mode] from anywhere; [Resolve_ok] restores [Healthy] from
    anywhere; [Resolve_failed] degrades [Healthy] to [Degraded] and
    leaves [Degraded]/[Safe_mode] where they are ([Safe_mode] only
    exits on a {e success} — a failure must not promote it to the
    milder [Degraded]). *)

val state_to_string : state -> string
(** ["healthy"], ["degraded"], ["safe-mode"] — stable slugs used by
    the protocol, checkpoints and telemetry. *)

val state_of_string : string -> state option
(** Inverse of {!state_to_string}; [None] on an unknown slug. *)

val severity : state -> int
(** 0, 1, 2 in ladder order — the value of the [serve.health]
    gauge. *)

type t
(** A stateful machine: current state plus per-state sim-time
    accounting. *)

val create : ?now:float -> state -> t
(** Start in the given state at sim-time [now] (default 0). *)

val state : t -> state
(** The ladder's current state. *)

val apply : t -> outcome -> now:float -> unit
(** Advance the sim-clock to [now] (crediting the elapsed interval to
    the {e outgoing} state), then take the {!transition}.  A state
    change emits a [serve.health] timeline instant (when tracing is
    active) and updates the [serve.health] gauge. *)

val observe : t -> now:float -> unit
(** Advance the sim-clock without an outcome, so time-in-state stays
    current between re-solve attempts.  [now] values below the last
    stamp are ignored (the clock never runs backwards). *)

val time_in : t -> state -> float
(** Accumulated sim-time credited to [state] so far. *)

val degraded_fraction : t -> float
(** Fraction of accumulated sim-time spent {e not} [Healthy]; 0 when
    no time has accumulated. *)

val transitions : t -> int
(** Number of state {e changes} so far (self-loops not counted). *)
