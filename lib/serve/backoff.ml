type t = {
  base : float;
  factor : float;
  max_delay : float;
  jitter : float;
  rng : Dpm_prob.Rng.t;
  mutable failures : int;
  mutable delay : float;
}

let create ?(base = 1.0) ?(factor = 2.0) ?(max_delay = 64.0) ?(jitter = 0.1)
    ?(seed = 0xB0FFL) () =
  if base <= 0.0 || not (Float.is_finite base) then
    invalid_arg "Backoff.create: base must be positive and finite";
  if factor <= 0.0 || not (Float.is_finite factor) then
    invalid_arg "Backoff.create: factor must be positive and finite";
  if max_delay <= 0.0 || not (Float.is_finite max_delay) then
    invalid_arg "Backoff.create: max_delay must be positive and finite";
  if jitter < 0.0 || jitter >= 1.0 then
    invalid_arg "Backoff.create: jitter must be in [0, 1)";
  {
    base;
    factor;
    max_delay;
    jitter;
    rng = Dpm_prob.Rng.create seed;
    failures = 0;
    delay = 0.0;
  }

let note_failure t =
  t.failures <- t.failures + 1;
  let raw =
    Float.min t.max_delay
      (t.base *. (t.factor ** float_of_int (t.failures - 1)))
  in
  let scale =
    1.0 +. (t.jitter *. ((2.0 *. Dpm_prob.Rng.float t.rng) -. 1.0))
  in
  t.delay <- raw *. scale

let note_success t =
  t.failures <- 0;
  t.delay <- 0.0

let delay t = t.delay
let failures t = t.failures
