open Dpm_core

let respond out fmt =
  Printf.ksprintf
    (fun line ->
      output_string out line;
      output_char out '\n';
      flush out)
    fmt

(* [mode] operand: an index or an SP mode name. *)
let parse_mode sys token =
  match int_of_string_opt token with
  | Some m -> Some m
  | None -> (
      match Service_provider.mode_of_name (Sys_model.sp sys) token with
      | m -> Some m
      | exception Not_found -> None)

let answer_decide engine out state =
  let sys = Engine.sys engine in
  match Engine.decide engine state with
  | action ->
      respond out "action %d %s" action
        (Service_provider.name (Sys_model.sp sys) action)
  | exception Invalid_argument _ -> respond out "error invalid state"

let answer_health engine out =
  let fails = Engine.consecutive_failures engine in
  let err =
    match Engine.last_error engine with
    | Some e -> " last_error=" ^ Dpm_robust.Error.class_name e
    | None -> ""
  in
  respond out "health %s failures=%d deployed_rate=%s degraded_fraction=%s%s"
    (Health.state_to_string (Engine.health engine))
    fails
    (Dpm_trace.Json.float_str (Engine.deployed_rate engine))
    (Dpm_trace.Json.float_str (Engine.degraded_fraction engine))
    err

let answer_stats engine out =
  let s = Engine.stats engine in
  respond out
    "stats events=%d drops=%d decisions=%d resolves=%d resolve_failures=%d \
     switches=%d checkpoints=%d checkpoint_failures=%d health_transitions=%d \
     health=%s restored=%b"
    s.Engine.events_ingested s.Engine.queue_drops s.Engine.decisions
    s.Engine.resolves s.Engine.resolve_failures s.Engine.policy_switches
    s.Engine.checkpoints s.Engine.checkpoint_failures
    s.Engine.health_transitions
    (Health.state_to_string (Engine.health engine))
    (Engine.restored engine)

let answer_metrics out =
  (match Dpm_obs.Probe.current () with
  | Some registry -> output_string out (Dpm_obs.Report.to_prometheus registry)
  | None -> output_string out "# metrics disabled (no active registry)\n");
  output_string out ".\n";
  flush out

let answer_provenance engine out =
  match Engine.last_provenance engine with
  | Some p -> respond out "%s" (Dpm_trace.Provenance.to_json p)
  | None -> respond out "none"

let final_checkpoint engine =
  match Engine.checkpoint engine with
  | Ok _ | Error _ -> ()

let split_words line =
  String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let run engine ~input ~output =
  let sys = Engine.sys engine in
  let continue = ref true in
  while !continue do
    match input_line input with
    | exception End_of_file ->
        Engine.pump engine;
        final_checkpoint engine;
        continue := false
    | line -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
          match split_words line with
          | [ t ] when float_of_string_opt t <> None ->
              ignore
                (Engine.offer_arrival engine ~at:(float_of_string t) : bool)
          | [ "arrival"; t ] -> (
              match float_of_string_opt t with
              | Some at -> ignore (Engine.offer_arrival engine ~at : bool)
              | None -> respond output "error malformed arrival time %s" t)
          | [ "decide"; mode; queue ] -> (
              Engine.pump engine;
              match (parse_mode sys mode, int_of_string_opt queue) with
              | Some m, Some q ->
                  answer_decide engine output (Sys_model.Stable (m, q))
              | None, _ -> respond output "error unknown mode %s" mode
              | _, None -> respond output "error malformed queue %s" queue)
          | [ "decide-transfer"; mode; i ] -> (
              Engine.pump engine;
              match (parse_mode sys mode, int_of_string_opt i) with
              | Some m, Some i ->
                  answer_decide engine output (Sys_model.Transfer (m, i))
              | None, _ -> respond output "error unknown mode %s" mode
              | _, None -> respond output "error malformed level %s" i)
          | [ "health" ] ->
              Engine.pump engine;
              answer_health engine output
          | [ "stats" ] ->
              Engine.pump engine;
              answer_stats engine output
          | [ "metrics" ] ->
              Engine.pump engine;
              answer_metrics output
          | [ "provenance" ] ->
              Engine.pump engine;
              answer_provenance engine output
          | [ "checkpoint" ] -> (
              Engine.pump engine;
              match Engine.checkpoint engine with
              | Ok path -> respond output "ok %s" path
              | Error msg ->
                  respond output "error %s" (String.map (function '\n' -> ' ' | c -> c) msg))
          | [ "quit" ] ->
              Engine.pump engine;
              respond output "bye";
              final_checkpoint engine;
              continue := false
          | cmd :: _ -> respond output "error unknown command %s" cmd
          | [] -> ())
  done
