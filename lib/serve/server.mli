(** The daemon's line protocol: newline-delimited commands over an
    input/output channel pair (stdin/stdout under [dpm_cli serve], or
    pipes under the chaos harness and tests).

    {2 Grammar}

    Arrival ingestion reuses the {!Dpm_sim.Workload.load_trace}
    grammar — one absolute arrival time per line, [#] comments and
    blank lines ignored — so a recorded trace file can be piped
    straight in; [arrival <t>] is an explicit synonym.  Ingestion
    lines get {e no} response (they are a stream, not RPCs); events
    beyond the engine's bounded queue are dropped and counted.

    Queries (each answered with exactly one line, except [metrics]):

    - [decide <mode> <queue>] — the deployed action for the stable
      state ([mode] is an index or an SP mode name):
      [action <idx> <name>];
    - [decide-transfer <mode> <i>] — likewise for a transfer state;
    - [health] — [health <state> failures=<n> deployed_rate=<r>
      degraded_fraction=<f>];
    - [stats] — one [key=value] line of the engine's {!Engine.stats};
    - [metrics] — the Prometheus text exposition of the active
      {!Dpm_obs} registry, terminated by a lone [.] sentinel line;
    - [provenance] — the deployed policy's solve provenance as one
      JSON line, or [none];
    - [checkpoint] — force a save: [ok <path>] or [error <msg>];
    - [quit] — [bye], then a final checkpoint and a clean return.

    Malformed commands answer [error <reason>] and the loop
    continues: a protocol error must never take the daemon down.
    Every query is answered off the deployed table even in
    [Safe_mode] — the availability contract the chaos harness
    checks.  All pending arrivals are pumped before a query is
    answered, so answers reflect everything offered so far.

    EOF behaves like [quit] (minus the [bye]): final checkpoint,
    clean return. *)

val run : Engine.t -> input:in_channel -> output:out_channel -> unit
(** Serve until [quit] or EOF.  Responses are flushed per command. *)
