(** Versioned, atomic daemon checkpoints.

    A checkpoint captures everything the daemon cannot recompute after
    a crash: the exact estimator state (ring contents / EWMA moments —
    the accumulated workload knowledge), the deployed policy table and
    the rate it was solved at, the health state, and the ingestion
    counters.  It deliberately does {e not} capture the solve cache —
    that is a performance artifact the restarted daemon rebuilds.

    {2 Format}

    One JSON object, guarded by a [version] field (readers reject
    versions they do not know) and a [fingerprint]: the structural
    hash of the configured system's CTMDP
    ({!Dpm_cache.Fingerprint.model_hash} at the nominal rate and
    serving weight, as 16 hex digits).  A restore only trusts the
    deployed policy when the fingerprint matches the system the daemon
    was started with — a checkpoint from a different SP or queue
    capacity would index actions against the wrong state space.
    Floats are encoded round-trippably ({!Dpm_trace.Json.float_str}),
    so a restore is bit-identical.

    {2 Atomicity}

    {!save} writes to a [<path>.tmp] sibling, flushes, then renames
    over [path] — a crash mid-write leaves the previous checkpoint
    intact, never a torn file.  (Rename within one directory is atomic
    on POSIX.) *)

type t = {
  saved_at : float;  (** sim-time of the save *)
  fingerprint : int64;  (** structural hash of the configured system *)
  deployed_rate : float;  (** arrival rate the policy was solved at *)
  weight : float;  (** serving weight (Eqn. 3.1 [w]) *)
  actions : int array;  (** deployed policy table, by state index *)
  health : Health.state;
  estimator : Dpm_trace.Json.t;
      (** opaque {!Dpm_adapt.Estimator.to_json} payload; the engine
          decodes it so the checkpoint layer stays estimator-agnostic *)
  events_ingested : int;
  drops : int;
}

val version : int
(** Current format version (1). *)

val to_json : t -> Dpm_trace.Json.t
(** The versioned wire form written by {!save} — a single JSON
    object, round-trippable through {!of_json}. *)

val of_json : Dpm_trace.Json.t -> (t, string) result
(** [Error] on an unknown version or a missing/malformed field. *)

val save : path:string -> t -> (unit, string) result
(** Atomic write-to-temp-and-rename; [Error] carries the system error
    message. *)

val load : path:string -> (t, string) result
(** Read and parse; [Error] on I/O failure or {!of_json} rejection. *)
