(** Deterministic pseudo-random number generation.

    The event-driven simulator must be reproducible bit-for-bit across
    runs and platforms, so we carry our own generator instead of the
    stdlib's: xoshiro256++ seeded through splitmix64, the standard
    modern combination.  Each simulation owns an explicit [t]; there is
    no global state.

    [split] derives an independent stream, so the workload generator,
    the service-time generator and the switch-time generator can each
    consume their own stream — adding a policy that draws more or fewer
    switch times does not perturb the arrival sequence. *)

type t

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed via
    splitmix64 state expansion.  Any seed (including 0) is valid. *)

val seed_stream : base:int64 -> int -> int64 list
(** [seed_stream ~base n] is a list of [n] well-mixed 64-bit seeds
    derived from [base] by the splitmix64 stream — the standard way
    to give each of [n] parallel replications its own statistically
    independent seed from one base seed.  Deterministic: the [i]-th
    element depends only on [base] and [i].  Raises
    [Invalid_argument] on a negative [n]. *)

val copy : t -> t
(** [copy r] is an independent generator with the same state. *)

val split : t -> t
(** [split r] draws from [r] to seed a fresh, statistically
    independent generator. *)

val next_uint64 : t -> int64
(** [next_uint64 r] is the next raw 64-bit output. *)

val float : t -> float
(** [float r] is uniform on [[0, 1)] with 53-bit resolution. *)

val float_positive : t -> float
(** [float_positive r] is uniform on [(0, 1]]; never returns [0.],
    which makes it safe as input to [log] in exponential sampling. *)

val int : t -> int -> int
(** [int r bound] is uniform on [[0, bound-1]].  Raises
    [Invalid_argument] if [bound <= 0]. *)

val bool : t -> bool
(** [bool r] is a fair coin flip. *)
