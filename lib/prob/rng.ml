type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: expands a single 64-bit seed into well-mixed state words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let seed_stream ~base n =
  if n < 0 then invalid_arg "Rng.seed_stream: negative count";
  let state = ref base in
  List.init n (fun _ -> splitmix64 state)

let create seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy r = { s0 = r.s0; s1 = r.s1; s2 = r.s2; s3 = r.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let next_uint64 r =
  let open Int64 in
  let result = add (rotl (add r.s0 r.s3) 23) r.s0 in
  let t = shift_left r.s1 17 in
  r.s2 <- logxor r.s2 r.s0;
  r.s3 <- logxor r.s3 r.s1;
  r.s1 <- logxor r.s1 r.s2;
  r.s0 <- logxor r.s0 r.s3;
  r.s2 <- logxor r.s2 t;
  r.s3 <- rotl r.s3 45;
  result

let split r = create (next_uint64 r)

let float r =
  (* Use the top 53 bits for a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (next_uint64 r) 11 in
  Int64.to_float bits *. 0x1p-53

let float_positive r = 1.0 -. float r

let int r bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let limit = Int64.mul (Int64.div Int64.max_int b) b in
  let rec draw () =
    let x = Int64.logand (next_uint64 r) Int64.max_int in
    if x >= limit then draw () else Int64.to_int (Int64.rem x b)
  in
  draw ()

let bool r = Int64.logand (next_uint64 r) 1L = 1L
