let arg_json = function
  | Event.Str s -> "\"" ^ Json.escape s ^ "\""
  | Event.Int i -> string_of_int i
  | Event.Float f -> Json.float_str f
  | Event.Bool b -> if b then "true" else "false"

let event_json ~epoch (e : Event.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\": \"%s\", \"cat\": \"dpm\", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d"
       (Json.escape e.name)
       (Event.phase_code e.phase)
       ((e.ts -. epoch) *. 1e6)
       e.tid);
  if e.phase = Event.Instant then Buffer.add_string buf ", \"s\": \"t\"";
  if e.args <> [] then begin
    Buffer.add_string buf ", \"args\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf ("\"" ^ Json.escape k ^ "\": " ^ arg_json v))
      e.args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf

let render ~epoch events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  List.iteri
    (fun i e ->
      Buffer.add_string buf (if i > 0 then ",\n  " else "\n  ");
      Buffer.add_string buf (event_json ~epoch e))
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let to_json t = render ~epoch:(Recorder.epoch t) (Recorder.events t)
