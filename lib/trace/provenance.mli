(** Solve provenance: where a solution came from and what it cost.

    Every solver result ([Policy_iteration], [Value_iteration],
    [Lp_solver], and [Optimize.solution] above them) carries one of
    these records, answering after the fact: which method and
    evaluation path ran, how many iterations, what residual it ended
    on, whether it was a cache hit / warm start / cold solve, how many
    robustness retries and injected faults it absorbed, and how much
    wall clock it spent against what deadline.

    Solvers do not thread a provenance value through their internals.
    Instead they wrap the solve in {!collect}, and the interesting
    sites ([Dpm_robust] retries, Tikhonov rungs, sparse fallbacks,
    simplex pivots, fault injection) call the [note_*] helpers, which
    tally into a domain-local collector — a no-op (one DLS read, no
    allocation) when no collection is in progress, so the notes are
    unconditional like [Dpm_obs.Probe] ticks. *)

(** How the solution was obtained: from scratch, warm-started from a
    prior policy/values, or returned by the structural solve cache. *)
type origin = Cold | Warm | Cache_hit

(** Tallies gathered while a solve runs (see {!collect}). *)
type counts = {
  mutable robust_retries : int;
  mutable tikhonov_rungs : int;
  mutable sparse_fallbacks : int;
  mutable faults_injected : int;
  mutable pivots : int;
  mutable residual : float;  (** last noted; nan until noted *)
  mutable eval_path : string option;  (** last noted *)
}

(** The provenance record.  [fingerprint] is the structural model hash
    ([Dpm_cache.Fingerprint.model_hash]); [0L] when the solver ran
    below the cache layer and nobody filled it in.  [residual],
    [weight] and [arrival_rate] use nan for "not applicable";
    [deadline_s] is the guard budget the caller ran under. *)
type t = {
  fingerprint : int64;
  method_ : string;
  eval_path : string;
  iterations : int;
  residual : float;
  origin : origin;
  robust_retries : int;
  tikhonov_rungs : int;
  sparse_fallbacks : int;
  faults_injected : int;
  deadline_s : float option;
  wall_s : float;
  weight : float;
  arrival_rate : float;
}

val collect : (unit -> 'a) -> 'a * counts
(** Run a solve under a fresh collector; returns the result with the
    tallies.  Nested collections are independent: the inner solve's
    notes land in the inner counts only, and the outer collector is
    restored afterwards (also on exceptions). *)

val note_robust_retry : unit -> unit
(** Tick the active collector's retry count (no-op without one). *)

val note_tikhonov_rung : unit -> unit
(** Tick the Tikhonov-regularization rung count. *)

val note_sparse_fallback : unit -> unit
(** Tick the sparse-to-dense evaluation fallback count. *)

val note_fault : unit -> unit
(** Tick the injected-fault count (called by [Dpm_robust.Fault]). *)

val note_pivot : unit -> unit
(** Tick the simplex pivot count (called by [Dpm_linalg.Simplex]). *)

val note_residual : float -> unit
(** Record the most recent convergence residual. *)

val note_eval_path : string -> unit
(** Record which evaluation path ran (e.g. ["dense"], ["sparse"]). *)

val of_counts :
  method_:string ->
  iterations:int ->
  origin:origin ->
  wall_s:float ->
  ?eval_path:string ->
  ?residual:float ->
  ?deadline_s:float ->
  counts ->
  t
(** Build a record from collected tallies.  [eval_path]/[residual]
    default to the noted values; [fingerprint], [weight] and
    [arrival_rate] start unknown for upper layers to fill in. *)

val origin_to_string : origin -> string
(** ["cold"], ["warm"], or ["cache_hit"]. *)

val fingerprint_hex : t -> string
(** The 16-digit lowercase hex of [fingerprint]. *)

val to_json : t -> string
(** One-line JSON object (fingerprint as a hex string; nan fields as
    [null]). *)

val of_json : string -> (t, string) result
(** Parse {!to_json} output back; unknown optional fields default. *)

val to_args : t -> (string * Event.arg) list
(** The record as typed trace-event arguments, for attaching to
    timeline instants. *)

val pp : Format.formatter -> t -> unit
(** Compact human-readable one-liner. *)
