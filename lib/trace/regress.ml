type direction = Lower_better | Higher_better | Informational
type verdict = Regression | Improvement | Unchanged | Only_old | Only_new

type row = {
  name : string;
  before : float option;
  after : float option;
  delta : float option;
  direction : direction;
  verdict : verdict;
}

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let direction_of name =
  let name = String.lowercase_ascii name in
  let any subs = List.exists (fun sub -> contains ~sub name) subs in
  if any [ "per_sec"; "throughput"; "hit_ratio"; "speedup" ] then
    Higher_better
  else if any [ ".seconds"; "ns_per_run"; "_time"; "wall"; "latency"; "duration" ]
  then Lower_better
  else Informational

let extract j =
  (* Unwrap the bench envelope when both halves are present. *)
  let j =
    match (Json.member "metrics" j, Json.member "meta" j) with
    | Some m, Some _ -> m
    | _ -> j
  in
  match j with
  | Json.Obj kvs ->
      List.concat_map
        (fun (k, v) ->
          match v with
          | Json.Num x when Float.is_finite x -> [ (k, x) ]
          | Json.Obj sub -> (
              match List.assoc_opt "seconds" sub with
              | Some (Json.Num s) -> [ (k ^ ".seconds", s) ]
              | _ -> (
                  match List.assoc_opt "sum" sub with
                  | Some (Json.Num s) -> [ (k ^ ".sum", s) ]
                  | _ -> []))
          | _ -> [])
        kvs
  | _ -> []

let compare_series ?(threshold = 0.10) ?(overrides = []) before after =
  let names =
    List.sort_uniq String.compare (List.map fst before @ List.map fst after)
  in
  List.map
    (fun name ->
      let b = List.assoc_opt name before
      and a = List.assoc_opt name after in
      let direction = direction_of name in
      let thr =
        match List.assoc_opt name overrides with
        | Some t -> t
        | None -> threshold
      in
      let delta =
        match (b, a) with
        | Some b, Some a when b <> 0.0 -> Some ((a -. b) /. Float.abs b)
        | _ -> None
      in
      let verdict =
        match (b, a, delta, direction) with
        | None, Some _, _, _ -> Only_new
        | Some _, None, _, _ -> Only_old
        | _, _, _, Informational -> Unchanged
        | _, _, None, _ -> Unchanged
        | _, _, Some d, Lower_better ->
            if d > thr then Regression
            else if d < -.thr then Improvement
            else Unchanged
        | _, _, Some d, Higher_better ->
            if d < -.thr then Regression
            else if d > thr then Improvement
            else Unchanged
      in
      { name; before = b; after = a; delta; direction; verdict })
    names

let regressions rows = List.filter (fun r -> r.verdict = Regression) rows

let verdict_str = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Unchanged -> "ok"
  | Only_old -> "removed"
  | Only_new -> "added"

let render rows =
  let buf = Buffer.create 1024 in
  let num = function Some x -> Json.float_str x | None -> "-" in
  let width =
    List.fold_left (fun acc r -> max acc (String.length r.name)) 6 rows
  in
  Buffer.add_string buf
    (Printf.sprintf "%-*s  %14s  %14s  %8s  %s\n" width "series" "before"
       "after" "delta" "verdict");
  List.iter
    (fun r ->
      let delta =
        match r.delta with
        | Some d -> Printf.sprintf "%+.1f%%" (100.0 *. d)
        | None -> "-"
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %14s  %14s  %8s  %s\n" width r.name
           (num r.before) (num r.after) delta (verdict_str r.verdict)))
    rows;
  let n = List.length (regressions rows) in
  Buffer.add_string buf
    (if n = 0 then
       Printf.sprintf "bench_diff: %d series compared, no regressions\n"
         (List.length rows)
     else
       Printf.sprintf "bench_diff: %d regression(s) in %d series\n" n
         (List.length rows));
  Buffer.contents buf
