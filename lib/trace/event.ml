type arg = Str of string | Int of int | Float of float | Bool of bool
type phase = Begin | End | Instant

type t = {
  ts : float;
  name : string;
  phase : phase;
  tid : int;
  args : (string * arg) list;
}

let compare_ts a b = Float.compare a.ts b.ts
let phase_code = function Begin -> "B" | End -> "E" | Instant -> "i"
